// Dynamic graphs: the paper's §5 working flow. A web-like graph evolves
// under a stream of edge/vertex additions and deletions (45/45/5/5); the
// HyVE layout absorbs them in O(1) through reserved slack space, while
// the GraphR adjacency-block layout must rewrite a block per change.
// After the stream, PageRank still runs correctly on the evolved graph.
//
//	go run ./examples/dynamic-graphs
package main

import (
	"fmt"
	"log"

	"repro/internal/algo"
	"repro/internal/dynamic"
	"repro/internal/graph"
	"repro/internal/partition"
)

func main() {
	g, err := graph.GenerateRMAT(50_000, 400_000, graph.DefaultRMAT, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial graph: %d vertices, %d edges\n", g.NumVertices, g.NumEdges())

	const numRequests = 300_000
	reqs, err := dynamic.GenerateRequests(g, numRequests, dynamic.PaperMix, 99)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("request stream: %d requests (45%% add-edge, 45%% delete-edge, 5%% add-vertex, 5%% delete-vertex)\n\n", len(reqs))

	// HyVE layout: P² blocks with 30% reserved slack.
	asg, err := partition.NewHashed(g.NumVertices, 16)
	if err != nil {
		log.Fatal(err)
	}
	hyve, err := dynamic.NewHyVEStore(g, asg, 0.3)
	if err != nil {
		log.Fatal(err)
	}
	tp, err := dynamic.Replay(hyve, reqs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("HyVE layout:   %.2f M edges/s (%d changes in %v)\n",
		tp.MillionEdgesPerSecond(), tp.EdgesChanged, tp.Elapsed.Round(0))
	fmt.Printf("               %d overflow extents linked, %d re-preprocessing passes\n",
		hyve.Overflows, hyve.Repreprocess)

	// GraphR layout: dense 8×8 adjacency blocks, rewritten per change.
	gr, err := dynamic.NewGraphRStore(g, 8)
	if err != nil {
		log.Fatal(err)
	}
	tpg, err := dynamic.Replay(gr, reqs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GraphR layout: %.2f M edges/s (%d block rewrites)\n",
		tpg.MillionEdgesPerSecond(), gr.Rewrites)
	fmt.Printf("\nHyVE/GraphR throughput: %.2fx (paper: 8.04x)\n",
		tp.EdgesPerSecond()/tpg.EdgesPerSecond())

	// The evolved graph is still a graph: run PageRank on it.
	evolved := &graph.Graph{NumVertices: hyve.NumVertices(), Edges: hyve.Edges()}
	if err := evolved.Validate(); err != nil {
		log.Fatal(err)
	}
	r, err := algo.Run(algo.NewPageRank(), evolved)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nPageRank on the evolved graph (%d vertices, %d edges): %d iterations ✓\n",
		evolved.NumVertices, evolved.NumEdges(), r.Iterations)
}

// Trace analysis: pull the HyVE controller's address-exact access trace
// for one PageRank iteration (§3.3/§3.4), fold the edge-memory accesses
// onto the bank map, and show why bank-level power gating works — the
// stream touches banks one after another, never all at once.
//
//	go run ./examples/trace-analysis
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/algo"
	"repro/internal/core"
	"repro/internal/graph"
)

func main() {
	d, err := graph.DatasetByName("LJ")
	if err != nil {
		log.Fatal(err)
	}
	w, err := core.WorkloadFor(d, algo.NewPageRank())
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.HyVEOpt()

	// Collect the trace of one iteration.
	var accesses []core.Access
	if err := core.TraceIteration(cfg, w, func(a core.Access) {
		accesses = append(accesses, a)
	}); err != nil {
		log.Fatal(err)
	}

	// Traffic by kind.
	kindBytes := map[core.AccessKind]int64{}
	kindCount := map[core.AccessKind]int64{}
	var edgeSpan int64
	for _, a := range accesses {
		kindBytes[a.Kind] += a.Bytes
		kindCount[a.Kind]++
		if a.Kind == core.EdgeBlockRead {
			if end := a.Addr + a.Bytes; end > edgeSpan {
				edgeSpan = end
			}
		}
	}
	fmt.Printf("one PR iteration on %s under %s: %d controller accesses\n\n", d.Name, cfg.Name, len(accesses))
	for _, k := range []core.AccessKind{core.EdgeBlockRead, core.SourceLoad, core.DestLoad, core.DestWriteback} {
		fmt.Printf("  %-16s %8d accesses %12d bytes\n", k, kindCount[k], kindBytes[k])
	}

	// Bank heat map: fold the edge stream onto 16 banks covering the
	// streamed span.
	const banks = 16
	bankBytes := (edgeSpan + banks - 1) / banks
	heat := make([]int64, banks)
	for _, a := range accesses {
		if a.Kind != core.EdgeBlockRead {
			continue
		}
		for b := a.Addr / bankBytes; b <= (a.Addr+a.Bytes-1)/bankBytes && b < banks; b++ {
			heat[b] += a.Bytes
		}
	}
	var max int64
	for _, h := range heat {
		if h > max {
			max = h
		}
	}
	fmt.Printf("\nedge-memory bank heat (one iteration, %d banks × %d bytes):\n", banks, bankBytes)
	for b, h := range heat {
		bar := 0
		if max > 0 {
			bar = int(h * 40 / max)
		}
		fmt.Printf("  bank %2d %s %d bytes\n", b, strings.Repeat("█", bar), h)
	}

	// Sequentiality: how often does the next edge access continue where
	// the previous one pointed? (The property bank gating relies on.)
	var jumps, steps int64
	var cursor int64 = -1
	for _, a := range accesses {
		if a.Kind != core.EdgeBlockRead {
			continue
		}
		if cursor >= 0 {
			if a.Addr >= cursor && a.Addr-cursor <= core.EdgeImageHeaderBytes {
				steps++
			} else {
				jumps++
			}
		}
		cursor = a.Addr + a.Bytes
	}
	fmt.Printf("\nstream sequentiality: %d contiguous block transitions, %d jumps (%.1f%% sequential)\n",
		steps, jumps, 100*float64(steps)/float64(steps+jumps))
	fmt.Println("every bank's traffic is concentrated in its own window → bank-level power gating (§4.1)")
}

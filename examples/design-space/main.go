// Design space: the §7.2 design decisions, replayed as an ablation. For
// one workload, sweep the ReRAM cell bits (SLC vs MLC), the bank output
// width and optimization objective (Table 3), and the on-chip SRAM
// capacity (Table 4), and report where the sweet spots fall — and why
// the paper's final design (SLC, energy-optimized 512-bit output, 2–4 MB
// SRAM) is the right one.
//
//	go run ./examples/design-space
package main

import (
	"fmt"
	"log"

	"repro/internal/algo"
	"repro/internal/core"
	"repro/internal/device/rram"
	"repro/internal/graph"
)

func main() {
	d, err := graph.DatasetByName("LJ")
	if err != nil {
		log.Fatal(err)
	}
	w, err := core.WorkloadFor(d, algo.NewPageRank())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: PageRank on %s (%d/%d full-scale vertices/edges)\n\n", d.Long, d.FullVertices, d.FullEdges)

	sim := func(cfg core.Config) float64 {
		r, err := core.Simulate(cfg, w)
		if err != nil {
			log.Fatal(err)
		}
		return r.Report.MTEPSPerWatt()
	}

	// --- ReRAM cell bits (Fig. 13's decision).
	fmt.Println("ReRAM cell bits (MTEPS/W):")
	for bits := 1; bits <= 3; bits++ {
		cfg := core.HyVEOpt()
		cfg.RRAM.Cell = rram.PaperCell(bits)
		fmt.Printf("  %d-bit: %8.0f\n", bits, sim(cfg))
	}

	// --- Bank output width × objective (Table 3's decision).
	fmt.Println("\nReRAM bank design (MTEPS/W):")
	for _, objective := range []rram.OptTarget{rram.EnergyOptimized, rram.LatencyOptimized} {
		for _, bits := range []int{64, 128, 256, 512} {
			cfg := core.HyVEOpt()
			cfg.RRAM.Optimize = objective
			cfg.RRAM.OutputBits = bits
			fmt.Printf("  %-18v %3d-bit: %8.0f\n", objective, bits, sim(cfg))
		}
	}

	// --- SRAM capacity (Table 4's decision).
	fmt.Println("\non-chip SRAM capacity (MTEPS/W, with sharing+gating):")
	best, bestMB := 0.0, int64(0)
	for _, mb := range []int64{1, 2, 4, 8, 16, 32} {
		cfg := core.HyVEOpt()
		cfg.SRAMBytes = mb << 20
		eff := sim(cfg)
		marker := ""
		if eff > best {
			best, bestMB = eff, mb
			marker = "  ←"
		}
		fmt.Printf("  %2d MB: %8.0f%s\n", mb, eff, marker)
	}
	fmt.Printf("\nsweet spot: %d MB (paper: 2 MB with data sharing, 4 MB without)\n", bestMB)
}

// PageRank energy study: the paper's motivating workload (§1: "over 60%
// of energy is consumed by memory for PageRank") across all five
// datasets and the full ladder of architectures — CPU software, the
// conventional accelerator hierarchies, HyVE, and HyVE with the §4
// optimizations — reproducing the Fig. 16/17 story for one algorithm.
//
//	go run ./examples/pagerank-energy
package main

import (
	"fmt"
	"log"

	"repro/internal/algo"
	"repro/internal/core"
	"repro/internal/cpusim"
	"repro/internal/energy"
	"repro/internal/graph"
)

func main() {
	fmt.Println("PageRank energy efficiency (MTEPS/W) and memory share of total energy")
	fmt.Printf("%-8s %-14s %12s %10s %10s\n", "dataset", "config", "MTEPS/W", "memory%", "time")
	for _, d := range graph.Datasets {
		w, err := core.WorkloadFor(d, algo.NewPageRank())
		if err != nil {
			log.Fatal(err)
		}

		// CPU software baseline (Intel PCM-style whole-package power).
		cpu, err := cpusim.Simulate(cpusim.NXgraph(), w)
		if err != nil {
			log.Fatal(err)
		}
		printRow(d.Name, cpu)

		// The accelerator ladder.
		for _, cfg := range core.Fig16Configs() {
			r, err := core.Simulate(cfg, w)
			if err != nil {
				log.Fatal(err)
			}
			printRow(d.Name, &r.Report)
		}
		fmt.Println()
	}
}

func printRow(dataset string, r *energy.Report) {
	memShare := 100 * float64(r.Energy.MemoryTotal()) / float64(r.Energy.Total())
	fmt.Printf("%-8s %-14s %12.1f %9.1f%% %10v\n",
		dataset, r.Config, r.MTEPSPerWatt(), memShare, r.Time)
}

// Quickstart: generate a small natural-looking graph, run PageRank
// through the HyVE architecture simulator, and print what the hybrid
// memory hierarchy buys over a conventional SRAM+DRAM design.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/algo"
	"repro/internal/core"
	"repro/internal/graph"
)

func main() {
	// 1. A synthetic social-network-like graph: 100k vertices, 800k
	// edges, R-MAT skew.
	g, err := graph.GenerateRMAT(100_000, 800_000, graph.DefaultRMAT, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges\n", g.NumVertices, g.NumEdges())

	// 2. The workload: 10 PageRank iterations, edge-centric.
	w := core.Workload{DatasetName: "quickstart", Graph: g, Program: algo.NewPageRank()}

	// 3. Simulate on HyVE-opt (ReRAM edge memory + DRAM vertex memory +
	// SRAM on-chip, with data sharing and bank-level power gating) and
	// on the conventional acc+SRAM+DRAM hierarchy.
	hyve, err := core.Simulate(core.HyVEOpt(), w)
	if err != nil {
		log.Fatal(err)
	}
	sd, err := core.Simulate(core.SRAMDRAM(), w)
	if err != nil {
		log.Fatal(err)
	}

	for _, r := range []*core.Result{sd, hyve} {
		fmt.Printf("\n%s\n", r.Report.Config)
		fmt.Printf("  time        %v\n", r.Report.Time)
		fmt.Printf("  energy      %v\n", r.Report.Energy.Total())
		fmt.Printf("  efficiency  %.0f MTEPS/W\n", r.Report.MTEPSPerWatt())
		fmt.Printf("  breakdown   %v\n", &r.Report.Energy)
	}

	fmt.Printf("\nHyVE-opt vs SRAM+DRAM: %.2fx energy efficiency, %.2fx energy reduction\n",
		hyve.Report.MTEPSPerWatt()/sd.Report.MTEPSPerWatt(),
		sd.Report.Energy.Total().Joules()/hyve.Report.Energy.Total().Joules())

	// 4. The simulated machine computes real answers: verify against the
	// flat edge-centric oracle.
	blocked, err := core.RunFunctional(core.HyVEOpt(), w)
	if err != nil {
		log.Fatal(err)
	}
	oracle, err := algo.Run(w.Program, g)
	if err != nil {
		log.Fatal(err)
	}
	for v := range oracle.Values {
		// The blocked schedule gathers in a different edge order, so
		// float64 sums may differ in the last bits; anything beyond
		// rounding noise is a real divergence.
		if d := blocked.Values[v] - oracle.Values[v]; d > 1e-12 || d < -1e-12 {
			log.Fatalf("vertex %d diverged: %g vs %g", v, blocked.Values[v], oracle.Values[v])
		}
	}
	fmt.Println("functional check: blocked schedule matches the flat oracle ✓")
}

package repro

// One testing.B benchmark per table and figure of the paper's
// evaluation, as indexed in DESIGN.md §3 — each drives the corresponding
// experiment runner — plus micro-benchmarks for the load-bearing
// substrate operations (generation, partitioning, simulation, dynamic
// updates).
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// Benchmarks use the Quick option (two datasets, reduced sweeps) so a
// full pass stays in CPU-minutes; `go run ./cmd/hyve-bench` regenerates
// the artifacts at full scale.

import (
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/algo"
	"repro/internal/core"
	"repro/internal/dynamic"
	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/partition"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	opt := experiments.Options{Quick: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Run(io.Discard, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table and figure benchmarks (one per paper artifact) --------------

func BenchmarkTable1Navg(b *testing.B)            { benchExperiment(b, "table1") }
func BenchmarkTable3BankConfigs(b *testing.B)     { benchExperiment(b, "table3") }
func BenchmarkTable4SRAMSweep(b *testing.B)       { benchExperiment(b, "table4") }
func BenchmarkFig9SeqAccess(b *testing.B)         { benchExperiment(b, "fig9") }
func BenchmarkFig10VertexEDP(b *testing.B)        { benchExperiment(b, "fig10") }
func BenchmarkFig11VertexStorage(b *testing.B)    { benchExperiment(b, "fig11") }
func BenchmarkFig12Preprocess(b *testing.B)       { benchExperiment(b, "fig12") }
func BenchmarkFig13CellBits(b *testing.B)         { benchExperiment(b, "fig13") }
func BenchmarkFig14DataSharing(b *testing.B)      { benchExperiment(b, "fig14") }
func BenchmarkFig15PowerGating(b *testing.B)      { benchExperiment(b, "fig15") }
func BenchmarkFig16EnergyEfficiency(b *testing.B) { benchExperiment(b, "fig16") }
func BenchmarkFig17Breakdown(b *testing.B)        { benchExperiment(b, "fig17") }
func BenchmarkFig18AbsolutePerf(b *testing.B)     { benchExperiment(b, "fig18") }
func BenchmarkFig19PrepCompare(b *testing.B)      { benchExperiment(b, "fig19") }
func BenchmarkFig20Dynamic(b *testing.B)          { benchExperiment(b, "fig20") }
func BenchmarkFig21GraphR(b *testing.B)           { benchExperiment(b, "fig21") }

// --- Substrate micro-benchmarks -----------------------------------------

func benchGraph(b *testing.B) *graph.Graph {
	b.Helper()
	g, err := graph.GenerateRMAT(65_536, 524_288, graph.DefaultRMAT, 11)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func BenchmarkRMATGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := graph.GenerateRMAT(65_536, 524_288, graph.DefaultRMAT, uint64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(524_288, "edges/op")
}

// BenchmarkRMATGenerateWorkers splits the serial and chunk-parallel
// generator paths; both produce bit-identical edge streams, so the
// delta is pure scheduling.
func BenchmarkRMATGenerateWorkers(b *testing.B) {
	for _, bc := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 0}} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := graph.GenerateRMATWorkers(65_536, 524_288, graph.DefaultRMAT, 11, bc.workers); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(524_288, "edges/op")
		})
	}
}

// BenchmarkGraphLoadV2 is the PR 9 headline: loading a prepared v2
// container (mmap, stored CSR and grid sections) versus regenerating
// the same graph and rebuilding its grid from scratch. The load side's
// allocs/op is the zero-copy pin — it must stay O(1) in |E|, not
// O(edges).
func BenchmarkGraphLoadV2(b *testing.B) {
	g := benchGraph(b)
	asg, err := partition.NewHashed(g.NumVertices, 32)
	if err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(b.TempDir(), "bench.hyve2")
	f, err := os.Create(path)
	if err != nil {
		b.Fatal(err)
	}
	w, err := graph.NewV2Writer(f, g.NumVertices, g.NumEdges())
	if err != nil {
		b.Fatal(err)
	}
	if err := graph.WriteV2Into(w, g, graph.V2Options{CSR: true, Seed: 11}); err != nil {
		b.Fatal(err)
	}
	if err := partition.StreamGridInto(w, g, asg, partition.StreamOptions{}); err != nil {
		b.Fatal(err)
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	if err := f.Close(); err != nil {
		b.Fatal(err)
	}

	b.Run("generate+build", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			gg, err := graph.GenerateRMAT(65_536, 524_288, graph.DefaultRMAT, 11)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := partition.BuildParallel(gg, asg, 0); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(g.NumEdges()), "edges/op")
	})
	b.Run("load+build", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c, err := graph.OpenV2(path)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := partition.BuildParallel(c.Graph(), asg, 0); err != nil {
				b.Fatal(err)
			}
			if err := c.Close(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(g.NumEdges()), "edges/op")
	})
}

// BenchmarkPartitionStream measures the bounded-memory grid builder:
// the in-memory single-run path and a budget small enough to spill and
// merge runs through the temp file.
func BenchmarkPartitionStream(b *testing.B) {
	g := benchGraph(b)
	asg, err := partition.NewHashed(g.NumVertices, 32)
	if err != nil {
		b.Fatal(err)
	}
	for _, bc := range []struct {
		name   string
		budget int64
	}{{"in-memory", 0}, {"spill-4MiB", 4 << 20}} {
		b.Run(bc.name, func(b *testing.B) {
			dir := b.TempDir()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, closer, err := partition.StreamBuild(g, asg, partition.StreamOptions{BudgetBytes: bc.budget, TmpDir: dir})
				if err != nil {
					b.Fatal(err)
				}
				if err := closer(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(g.NumEdges()), "edges/op")
		})
	}
}

func BenchmarkPartitionBuild(b *testing.B) {
	g := benchGraph(b)
	asg, err := partition.NewHashed(g.NumVertices, 32)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := partition.Build(g, asg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(g.NumEdges()), "edges/op")
}

func BenchmarkEdgeCentricIteration(b *testing.B) {
	g := benchGraph(b)
	s, err := algo.NewState(algo.NewPageRank(), g)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.RunIteration()
	}
	b.ReportMetric(float64(g.NumEdges()), "edges/op")
}

func BenchmarkSimulateHyVEOptPR(b *testing.B) {
	g := benchGraph(b)
	w := core.Workload{DatasetName: "bench", Graph: g, Program: algo.NewPageRank(), Iterations: 10}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Simulate(core.HyVEOpt(), w); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDynamicReplayHyVE(b *testing.B) {
	g := benchGraph(b)
	reqs, err := dynamic.GenerateRequests(g, 100_000, dynamic.PaperMix, 5)
	if err != nil {
		b.Fatal(err)
	}
	asg, err := partition.NewHashed(g.NumVertices, 16)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s, err := dynamic.NewHyVEStore(g, asg, 0.3)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := dynamic.Replay(s, reqs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(reqs)), "requests/op")
}

func BenchmarkDynamicReplayGraphR(b *testing.B) {
	g := benchGraph(b)
	reqs, err := dynamic.GenerateRequests(g, 100_000, dynamic.PaperMix, 5)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s, err := dynamic.NewGraphRStore(g, 8)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := dynamic.Replay(s, reqs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(reqs)), "requests/op")
}

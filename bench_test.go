package repro

// One testing.B benchmark per table and figure of the paper's
// evaluation, as indexed in DESIGN.md §3 — each drives the corresponding
// experiment runner — plus micro-benchmarks for the load-bearing
// substrate operations (generation, partitioning, simulation, dynamic
// updates).
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// Benchmarks use the Quick option (two datasets, reduced sweeps) so a
// full pass stays in CPU-minutes; `go run ./cmd/hyve-bench` regenerates
// the artifacts at full scale.

import (
	"io"
	"testing"

	"repro/internal/algo"
	"repro/internal/core"
	"repro/internal/dynamic"
	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/partition"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	opt := experiments.Options{Quick: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Run(io.Discard, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table and figure benchmarks (one per paper artifact) --------------

func BenchmarkTable1Navg(b *testing.B)            { benchExperiment(b, "table1") }
func BenchmarkTable3BankConfigs(b *testing.B)     { benchExperiment(b, "table3") }
func BenchmarkTable4SRAMSweep(b *testing.B)       { benchExperiment(b, "table4") }
func BenchmarkFig9SeqAccess(b *testing.B)         { benchExperiment(b, "fig9") }
func BenchmarkFig10VertexEDP(b *testing.B)        { benchExperiment(b, "fig10") }
func BenchmarkFig11VertexStorage(b *testing.B)    { benchExperiment(b, "fig11") }
func BenchmarkFig12Preprocess(b *testing.B)       { benchExperiment(b, "fig12") }
func BenchmarkFig13CellBits(b *testing.B)         { benchExperiment(b, "fig13") }
func BenchmarkFig14DataSharing(b *testing.B)      { benchExperiment(b, "fig14") }
func BenchmarkFig15PowerGating(b *testing.B)      { benchExperiment(b, "fig15") }
func BenchmarkFig16EnergyEfficiency(b *testing.B) { benchExperiment(b, "fig16") }
func BenchmarkFig17Breakdown(b *testing.B)        { benchExperiment(b, "fig17") }
func BenchmarkFig18AbsolutePerf(b *testing.B)     { benchExperiment(b, "fig18") }
func BenchmarkFig19PrepCompare(b *testing.B)      { benchExperiment(b, "fig19") }
func BenchmarkFig20Dynamic(b *testing.B)          { benchExperiment(b, "fig20") }
func BenchmarkFig21GraphR(b *testing.B)           { benchExperiment(b, "fig21") }

// --- Substrate micro-benchmarks -----------------------------------------

func benchGraph(b *testing.B) *graph.Graph {
	b.Helper()
	g, err := graph.GenerateRMAT(65_536, 524_288, graph.DefaultRMAT, 11)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func BenchmarkRMATGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := graph.GenerateRMAT(65_536, 524_288, graph.DefaultRMAT, uint64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(524_288, "edges/op")
}

func BenchmarkPartitionBuild(b *testing.B) {
	g := benchGraph(b)
	asg, err := partition.NewHashed(g.NumVertices, 32)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := partition.Build(g, asg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(g.NumEdges()), "edges/op")
}

func BenchmarkEdgeCentricIteration(b *testing.B) {
	g := benchGraph(b)
	s, err := algo.NewState(algo.NewPageRank(), g)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.RunIteration()
	}
	b.ReportMetric(float64(g.NumEdges()), "edges/op")
}

func BenchmarkSimulateHyVEOptPR(b *testing.B) {
	g := benchGraph(b)
	w := core.Workload{DatasetName: "bench", Graph: g, Program: algo.NewPageRank(), Iterations: 10}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Simulate(core.HyVEOpt(), w); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDynamicReplayHyVE(b *testing.B) {
	g := benchGraph(b)
	reqs, err := dynamic.GenerateRequests(g, 100_000, dynamic.PaperMix, 5)
	if err != nil {
		b.Fatal(err)
	}
	asg, err := partition.NewHashed(g.NumVertices, 16)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s, err := dynamic.NewHyVEStore(g, asg, 0.3)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := dynamic.Replay(s, reqs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(reqs)), "requests/op")
}

func BenchmarkDynamicReplayGraphR(b *testing.B) {
	g := benchGraph(b)
	reqs, err := dynamic.GenerateRequests(g, 100_000, dynamic.PaperMix, 5)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s, err := dynamic.NewGraphRStore(g, 8)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := dynamic.Replay(s, reqs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(reqs)), "requests/op")
}

// Command hyve-check runs the differential-conformance suite: seeded
// random (dataset, algorithm, configuration) points on which every
// model of the machine — cost simulator, controller trace, analytic
// equations, GraphR model and crossbar emulation, functional engines —
// must agree within documented tolerance.
//
// Usage:
//
//	hyve-check                       # 30s budget, seed 1
//	hyve-check -seed 42 -points 1 -v # reproduce one reported point
//	hyve-check -list                 # invariants and tolerances
//	hyve-check -cache-dir c          # share the on-disk result cache
//	hyve-check -no-cache             # private machine per point
//	hyve-check -pprof :6060          # serve pprof, /metrics, /debug/flight
//	hyve-check -points 16 -workers 4 # sweep through the cluster machinery
//
// By default the sweep resolves machines through a per-sweep in-memory
// cache scheduler; -cache-dir shares the persistent content-addressed
// store with hyve-bench, and -no-cache disables all sharing so every
// point assembles its own machine (the pre-cache behavior).
//
// Exit status is 0 when every invariant held at every point, 1 when a
// violation was found, 2 on setup failure — or when points hit
// -point-timeout and no violation was found, so an incomplete sweep
// can never pass silently.
//
// A point that times out automatically dumps the flight recorder's last
// events (what the point was doing when it wedged) to stderr; -pprof
// additionally serves the live introspection endpoints — /metrics with
// per-invariant latency histograms, /debug/flight, /debug/trace — on the
// given address while the sweep runs.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"repro/internal/cache"
	"repro/internal/check"
	"repro/internal/cluster/jobs"
	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	// Point timeouts and worker panics dump the flight recorder for
	// post-mortem context (the test harness, which calls run directly,
	// leaves the dump writer uninstalled and stays quiet).
	obs.SetFlightDump(os.Stderr)
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("hyve-check", flag.ContinueOnError)
	fs.SetOutput(errOut)
	seed := fs.Uint64("seed", 1, "base seed; point i uses seed+i")
	points := fs.Int("points", 0, "number of points to sweep (0 = until -duration)")
	duration := fs.Duration("duration", 30*time.Second, "wall-clock budget (0 = until -points)")
	pointTimeout := fs.Duration("point-timeout", 60*time.Second, "abandon any single point that runs longer than this, record its seed, and continue (0 = no limit)")
	verbose := fs.Bool("v", false, "print every point, not just failures")
	list := fs.Bool("list", false, "list invariants and tolerances, then exit")
	cacheDir := fs.String("cache-dir", "", "share the on-disk content-addressed result cache rooted here")
	noCache := fs.Bool("no-cache", false, "disable machine/result sharing; every point builds privately")
	pprof := fs.String("pprof", "", "serve pprof, expvar, /metrics, /debug/flight, and /debug/trace on this address (e.g. :6060)")
	workers := fs.Int("workers", -1, "run the sweep through the cluster machinery with this many in-process workers (requires -points; 0 = coordinator-local degradation path; -1 = sequential)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(errOut, "hyve-check: unexpected arguments %q\n", fs.Args())
		return 2
	}

	if *list {
		fmt.Fprintf(out, "%-22s %s\n", "invariant", "tolerance")
		for _, inv := range check.Invariants() {
			fmt.Fprintf(out, "%-22s %s\n", inv.Name, inv.Tolerance)
		}
		return 0
	}

	if *pprof != "" {
		// Configured server with header timeouts and a shutdown path,
		// replacing the old bare ListenAndServe on the default mux.
		srv := serve.DebugServer(*pprof)
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(errOut, "hyve-check: pprof server:", err)
			}
		}()
		defer serve.ShutdownServer(srv, 5*time.Second)
	}

	var sched *cache.Scheduler // nil = per-sweep in-memory default
	switch {
	case *noCache:
		sched = cache.Off()
	case *cacheDir != "":
		sched = cache.New(cache.Config{Dir: *cacheDir})
	}

	opt := check.Options{
		Seed:         *seed,
		Points:       *points,
		Duration:     *duration,
		Verbose:      *verbose,
		Out:          out,
		PointTimeout: *pointTimeout,
		Cache:        sched,
	}
	var sum *check.Summary
	var err error
	if *workers >= 0 {
		// The distributed path needs a dense index space up front, so a
		// duration-bounded sweep cannot ride it.
		if *points <= 0 {
			fmt.Fprintln(errOut, "hyve-check: -workers requires an explicit -points count")
			return 2
		}
		sum, err = jobs.RunCheckCluster(opt, *workers)
	} else {
		sum, err = check.Run(opt)
	}
	if err != nil {
		fmt.Fprintf(errOut, "hyve-check: %v\n", err)
		return 2
	}
	sum.WriteReport(out)
	if !sum.OK() {
		return 1
	}
	if !sum.Complete() {
		// No violation was observed, but abandoned points mean the sweep
		// did not check everything: refuse to pass silently.
		fmt.Fprintf(errOut, "hyve-check: %d point(s) timed out; sweep incomplete\n", len(sum.TimedOut))
		return 2
	}
	return 0
}

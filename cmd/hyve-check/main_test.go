package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSmallSweep(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-seed", "1", "-points", "2"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d; stderr: %s\nstdout: %s", code, errOut.String(), out.String())
	}
	if !strings.Contains(out.String(), "2 points") {
		t.Errorf("report does not mention point count:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "PASS") {
		t.Errorf("passing sweep has no PASS verdict:\n%s", out.String())
	}
}

func TestRunList(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d; stderr: %s", code, errOut.String())
	}
	for _, name := range []string{"engine-vs-reference", "cost-vs-trace", "graphr-vs-emulation", "artifact-roundtrip"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list omits %q:\n%s", name, out.String())
		}
	}
}

func TestRunBadFlags(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-bogus"}, &out, &errOut); code != 2 {
		t.Errorf("unknown flag exited %d, want 2", code)
	}
	if code := run([]string{"stray"}, &out, &errOut); code != 2 {
		t.Errorf("stray positional argument exited %d, want 2", code)
	}
}

func TestRunPointTimeoutExitsIncomplete(t *testing.T) {
	var out, errOut bytes.Buffer
	// Every point abandoned, no violations: the sweep must refuse to
	// pass silently and exit 2.
	if code := run([]string{"-seed", "1", "-points", "2", "-point-timeout", "1ns"}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2; stdout:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "TIMEOUT seed=1") {
		t.Errorf("stdout does not record the offending seed:\n%s", out.String())
	}
	if !strings.Contains(errOut.String(), "sweep incomplete") {
		t.Errorf("stderr does not flag the incomplete sweep:\n%s", errOut.String())
	}
}

// Command hyve-prep performs HyVE's one-shot preprocessing: read a graph
// (SNAP-style text edge list, the repository's binary format, or a
// synthetic generator spec), apply interval-block partitioning, and
// report layout statistics — or write the graph back out in binary form.
//
// Usage:
//
//	hyve-prep -in graph.txt -p 16 -stats
//	hyve-prep -gen rmat:100000:800000 -out graph.bin
//	hyve-prep -in graph.bin -p 32 -occupancy 8
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/partition"
)

func main() {
	var (
		in        = flag.String("in", "", "input graph (.txt edge list or .bin)")
		gen       = flag.String("gen", "", "synthetic spec: rmat:V:E[:seed] or uniform:V:E[:seed]")
		out       = flag.String("out", "", "write the graph in binary form to this path")
		p         = flag.Int("p", 16, "number of intervals for partitioning stats")
		hashed    = flag.Bool("hashed", true, "use hashed (balanced) interval assignment")
		occupancy = flag.Int("occupancy", 0, "also report N-wide block occupancy (e.g. 8 for GraphR stats)")
		stats     = flag.Bool("stats", true, "print graph and partition statistics")
		image     = flag.String("image", "", "write the §3.4 edge-memory byte image (blocks + headers) to this path")
	)
	flag.Parse()

	if err := run(*in, *gen, *out, *p, *hashed, *occupancy, *stats, *image); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(in, gen, out string, p int, hashed bool, occupancy int, stats bool, imagePath string) error {
	g, err := load(in, gen)
	if err != nil {
		return err
	}
	if err := g.Validate(); err != nil {
		return err
	}
	if stats {
		s := graph.ComputeStats(g)
		fmt.Printf("graph: %d vertices, %d edges, avg degree %.2f, max out/in %d/%d, gini %.3f, self-loops %d\n",
			s.NumVertices, s.NumEdges, s.AvgDegree, s.MaxOutDeg, s.MaxInDeg, s.GiniOut, s.SelfLoops)
	}
	if p > 0 && p <= g.NumVertices {
		var asg partition.Assigner
		if hashed {
			asg, err = partition.NewHashed(g.NumVertices, p)
		} else {
			asg, err = partition.NewContiguous(g.NumVertices, p)
		}
		if err != nil {
			return err
		}
		start := time.Now()
		grid, err := partition.Build(g, asg)
		if err != nil {
			return err
		}
		elapsed := time.Since(start)
		counts := grid.IntervalEdgeCounts()
		var max int64
		for _, c := range counts {
			if c > max {
				max = c
			}
		}
		avg := float64(g.NumEdges()) / float64(p)
		fmt.Printf("partition: P=%d (%d blocks), %d non-empty, built in %v (%.1f Medges/s)\n",
			p, p*p, grid.NonEmpty(), elapsed.Round(time.Microsecond),
			float64(g.NumEdges())/elapsed.Seconds()/1e6)
		fmt.Printf("balance: max interval %d edges vs mean %.0f (imbalance %.2fx)\n",
			max, avg, float64(max)/avg)
		if imagePath != "" {
			img, _ := core.BuildEdgeImage(grid)
			if err := os.WriteFile(imagePath, img, 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote edge-memory image: %s (%d bytes, %d block headers)\n", imagePath, len(img), p*p)
		}
	}
	if imagePath != "" && (p <= 0 || p > g.NumVertices) {
		return fmt.Errorf("-image needs a valid -p partition")
	}
	if occupancy > 0 {
		occ, err := partition.ComputeOccupancy(g, occupancy)
		if err != nil {
			return err
		}
		fmt.Printf("occupancy (%d-wide blocks): %d non-empty, Navg %.2f, max %d\n",
			occupancy, occ.NonEmpty, occ.AvgEdgesPerBlk, occ.MaxEdgesPerBlk)
	}
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := graph.WriteBinary(f, g); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", out)
	}
	return nil
}

func load(in, gen string) (*graph.Graph, error) {
	switch {
	case in != "" && gen != "":
		return nil, fmt.Errorf("specify -in or -gen, not both")
	case in != "":
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if strings.HasSuffix(in, ".bin") {
			return graph.ReadBinary(f)
		}
		return graph.ParseEdgeList(f)
	case gen != "":
		return generate(gen)
	default:
		return nil, fmt.Errorf("specify -in FILE or -gen SPEC")
	}
}

func generate(spec string) (*graph.Graph, error) {
	parts := strings.Split(spec, ":")
	if len(parts) < 3 {
		return nil, fmt.Errorf("bad -gen spec %q (want kind:V:E[:seed])", spec)
	}
	v, err := strconv.Atoi(parts[1])
	if err != nil {
		return nil, fmt.Errorf("bad vertex count: %w", err)
	}
	e, err := strconv.Atoi(parts[2])
	if err != nil {
		return nil, fmt.Errorf("bad edge count: %w", err)
	}
	seed := uint64(1)
	if len(parts) >= 4 {
		s, err := strconv.ParseUint(parts[3], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed: %w", err)
		}
		seed = s
	}
	switch parts[0] {
	case "rmat":
		return graph.GenerateRMAT(v, e, graph.DefaultRMAT, seed)
	case "uniform":
		return graph.GenerateUniform(v, e, seed)
	}
	return nil, fmt.Errorf("unknown generator %q (want rmat or uniform)", parts[0])
}

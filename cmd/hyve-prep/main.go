// Command hyve-prep performs HyVE's one-shot preprocessing: read a graph
// (SNAP-style text edge list, the repository's binary format, a v2
// container, a named dataset, or a synthetic generator spec), apply
// interval-block partitioning, and report layout statistics — or compile
// the graph into an on-disk form. With -format v2 it acts as the offline
// compiler for the zero-copy container format: edge list in generation
// order, optional compressed CSR sections, optional pre-partitioned grid
// sections at exactly the P a simulation will request (-grid auto), all
// mmap-loadable by hyve-bench/hyve-sim/hyve-serve via -prep-dir.
//
// Usage:
//
//	hyve-prep -in graph.txt -p 16 -stats
//	hyve-prep -gen rmat:100000:800000 -out graph.bin
//	hyve-prep -dataset YT -out prep/YT.s8.hyve2 -grid auto -verify
//	hyve-prep -in prep/YT.s8.hyve2 -verify
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/algo"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/partition"
)

type options struct {
	in, gen, dataset string
	scale            int
	out              string
	format           string
	csr              bool
	grid             string
	config, algoName string
	budgetMB         int
	verify           bool

	p         int
	hashed    bool
	occupancy int
	stats     bool
	image     string
}

func main() {
	var o options
	flag.StringVar(&o.in, "in", "", "input graph (.txt edge list, .bin, or .hyve2 container)")
	flag.StringVar(&o.gen, "gen", "", "synthetic spec: rmat:V:E[:seed] or uniform:V:E[:seed]")
	flag.StringVar(&o.dataset, "dataset", "", "named dataset instance to generate (YT, WK, AS, LJ, TW)")
	flag.IntVar(&o.scale, "scale", 0, "override the dataset's down-scale divisor (0 = dataset default, 1 = full scale)")
	flag.StringVar(&o.out, "out", "", "write the graph to this path")
	flag.StringVar(&o.format, "format", "", "output format: bin or v2 (default: by -out extension, .hyve2 = v2)")
	flag.BoolVar(&o.csr, "csr", true, "include compressed CSR sections in v2 output")
	flag.StringVar(&o.grid, "grid", "off", "v2 grid sections: off, auto (P from -config/-algo), or an explicit P")
	flag.StringVar(&o.config, "config", "hyve-opt", "accelerator config for -grid auto (hyve, hyve-opt, sd, dram, reram)")
	flag.StringVar(&o.algoName, "algo", "PR", "program for -grid auto value sizing (PR, BFS, CC, SSSP, SpMV)")
	flag.IntVar(&o.budgetMB, "budget", 256, "streaming partition memory budget in MiB")
	flag.BoolVar(&o.verify, "verify", false, "re-open the container and verify digest, CSR, and grid against a rebuild")
	flag.IntVar(&o.p, "p", 0, "number of intervals for partitioning stats (0 = skip)")
	flag.BoolVar(&o.hashed, "hashed", true, "use hashed (balanced) interval assignment")
	flag.IntVar(&o.occupancy, "occupancy", 0, "also report N-wide block occupancy (e.g. 8 for GraphR stats)")
	flag.BoolVar(&o.stats, "stats", true, "print graph and partition statistics")
	flag.StringVar(&o.image, "image", "", "write the §3.4 edge-memory byte image (blocks + headers) to this path")
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(o options) error {
	g, seed, ds, err := load(o)
	if err != nil {
		return err
	}
	if err := g.Validate(); err != nil {
		return err
	}
	if o.stats {
		s := graph.ComputeStats(g)
		fmt.Printf("graph: %d vertices, %d edges, avg degree %.2f, max out/in %d/%d, gini %.3f, self-loops %d\n",
			s.NumVertices, s.NumEdges, s.AvgDegree, s.MaxOutDeg, s.MaxInDeg, s.GiniOut, s.SelfLoops)
	}
	if o.p > 0 && o.p <= g.NumVertices {
		if err := partitionStats(o, g); err != nil {
			return err
		}
	}
	if o.image != "" && (o.p <= 0 || o.p > g.NumVertices) {
		return fmt.Errorf("-image needs a valid -p partition")
	}
	if o.occupancy > 0 {
		occ, err := partition.ComputeOccupancy(g, o.occupancy)
		if err != nil {
			return err
		}
		fmt.Printf("occupancy (%d-wide blocks): %d non-empty, Navg %.2f, max %d\n",
			o.occupancy, occ.NonEmpty, occ.AvgEdgesPerBlk, occ.MaxEdgesPerBlk)
	}

	if o.out != "" {
		format := o.format
		if format == "" {
			if strings.HasSuffix(o.out, ".hyve2") {
				format = "v2"
			} else {
				format = "bin"
			}
		}
		switch format {
		case "bin":
			if err := writeBin(o.out, g); err != nil {
				return err
			}
		case "v2":
			if err := writeV2(o, g, seed, ds); err != nil {
				return err
			}
		default:
			return fmt.Errorf("unknown -format %q (want bin or v2)", format)
		}
	}

	if o.verify {
		path := o.out
		if path == "" {
			path = o.in
		}
		if !strings.HasSuffix(path, ".hyve2") {
			return fmt.Errorf("-verify needs a .hyve2 container (via -out or -in)")
		}
		if err := verifyContainer(path); err != nil {
			return fmt.Errorf("verify %s: %w", path, err)
		}
		fmt.Printf("verified %s\n", path)
	}
	return nil
}

func partitionStats(o options, g *graph.Graph) error {
	var asg partition.Assigner
	var err error
	if o.hashed {
		asg, err = partition.NewHashed(g.NumVertices, o.p)
	} else {
		asg, err = partition.NewContiguous(g.NumVertices, o.p)
	}
	if err != nil {
		return err
	}
	start := time.Now()
	grid, err := partition.Build(g, asg)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	counts := grid.IntervalEdgeCounts()
	var max int64
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	avg := float64(g.NumEdges()) / float64(o.p)
	fmt.Printf("partition: P=%d (%d blocks), %d non-empty, built in %v (%.1f Medges/s)\n",
		o.p, o.p*o.p, grid.NonEmpty(), elapsed.Round(time.Microsecond),
		float64(g.NumEdges())/elapsed.Seconds()/1e6)
	fmt.Printf("balance: max interval %d edges vs mean %.0f (imbalance %.2fx)\n",
		max, avg, float64(max)/avg)
	if o.image != "" {
		img, _ := core.BuildEdgeImage(grid)
		if err := os.WriteFile(o.image, img, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote edge-memory image: %s (%d bytes, %d block headers)\n", o.image, len(img), o.p*o.p)
	}
	return nil
}

func writeBin(out string, g *graph.Graph) error {
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := graph.WriteBinary(f, g); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}

// gridP resolves the -grid flag to an interval count: 0 = no grid
// sections. "auto" reproduces the exact decision a simulation under
// -config/-algo will make (core.ChoosePFor), so the stored layout hits
// the prepared fast path instead of being rebuilt.
func gridP(o options, g *graph.Graph, ds *graph.Dataset) (int, error) {
	switch o.grid {
	case "", "off":
		return 0, nil
	case "auto":
		cfg, err := accConfig(o.config)
		if err != nil {
			return 0, err
		}
		prog, err := algo.ByName(o.algoName)
		if err != nil {
			return 0, err
		}
		w := core.Workload{Graph: g, Program: prog}
		if ds != nil {
			w.FullVertices, w.FullEdges = ds.FullVertices, ds.FullEdges
		}
		return core.ChoosePFor(cfg, w)
	default:
		p, err := strconv.Atoi(o.grid)
		if err != nil || p <= 0 {
			return 0, fmt.Errorf("bad -grid %q (want off, auto, or a positive P)", o.grid)
		}
		return p, nil
	}
}

func writeV2(o options, g *graph.Graph, seed uint64, ds *graph.Dataset) error {
	p, err := gridP(o, g, ds)
	if err != nil {
		return err
	}
	f, err := os.Create(o.out)
	if err != nil {
		return err
	}
	defer f.Close()
	w, err := graph.NewV2Writer(f, g.NumVertices, len(g.Edges))
	if err != nil {
		return err
	}
	if err := graph.WriteV2Into(w, g, graph.V2Options{CSR: o.csr, Seed: seed}); err != nil {
		return err
	}
	if p > 0 {
		var asg partition.Assigner
		if o.hashed {
			asg, err = partition.NewHashed(g.NumVertices, p)
		} else {
			asg, err = partition.NewContiguous(g.NumVertices, p)
		}
		if err != nil {
			return err
		}
		opt := partition.StreamOptions{BudgetBytes: int64(o.budgetMB) << 20}
		if err := partition.StreamGridInto(w, g, asg, opt); err != nil {
			return err
		}
	}
	if err := w.Close(); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	st, err := f.Stat()
	if err != nil {
		return err
	}
	if p > 0 {
		fmt.Printf("wrote %s (%d bytes, csr=%v, grid P=%d)\n", o.out, st.Size(), o.csr, p)
	} else {
		fmt.Printf("wrote %s (%d bytes, csr=%v)\n", o.out, st.Size(), o.csr)
	}
	return nil
}

// verifyContainer re-opens a container with both readers and proves the
// derived sections against a from-scratch rebuild: header digest matches
// the stored edges, the compressed CSR decodes to exactly BuildCSR's
// arrays, and the grid sections equal a fresh BuildParallel at the
// stored P (rebuilt from a clone so the prepared fast path cannot serve
// the very data being checked).
func verifyContainer(path string) error {
	c, err := graph.OpenV2(path)
	if err != nil {
		return err
	}
	defer c.Close()
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return err
	}
	sc, err := graph.ReadV2(f, st.Size())
	if err != nil {
		return fmt.Errorf("streaming reader: %w", err)
	}
	defer sc.Close()

	g := c.Graph()
	if got := graph.ContentDigest(g); got != c.Digest() {
		return fmt.Errorf("content digest mismatch: stored %x, recomputed %x", c.Digest(), got)
	}
	if got := graph.ContentDigest(sc.Graph()); got != c.Digest() {
		return fmt.Errorf("streaming reader decoded different bytes: %x", got)
	}

	if cc := c.CSR(); cc != nil {
		want := graph.BuildCSR(g)
		got := cc.Materialize()
		if len(got.Offsets) != len(want.Offsets) {
			return fmt.Errorf("CSR offsets length %d, want %d", len(got.Offsets), len(want.Offsets))
		}
		for v := range want.Offsets {
			if got.Offsets[v] != want.Offsets[v] {
				return fmt.Errorf("CSR offset %d is %d, want %d", v, got.Offsets[v], want.Offsets[v])
			}
		}
		for i := range want.Targets {
			if got.Targets[i] != want.Targets[i] {
				return fmt.Errorf("CSR target %d is %d, want %d", i, got.Targets[i], want.Targets[i])
			}
		}
	}

	if off, edges, wts, p, contig, ok := c.GridParts(); ok {
		var asg partition.Assigner
		if contig {
			asg, err = partition.NewContiguous(g.NumVertices, p)
		} else {
			asg, err = partition.NewHashed(g.NumVertices, p)
		}
		if err != nil {
			return err
		}
		stored, err := partition.GridFromParts(asg, off, edges, wts)
		if err != nil {
			return fmt.Errorf("grid sections: %w", err)
		}
		want, err := partition.BuildParallel(g.Clone(), asg, 0)
		if err != nil {
			return err
		}
		for x := 0; x < p; x++ {
			for y := 0; y < p; y++ {
				sb, wb := stored.Block(x, y), want.Block(x, y)
				if len(sb) != len(wb) {
					return fmt.Errorf("grid block (%d,%d): %d edges, want %d", x, y, len(sb), len(wb))
				}
				for i := range wb {
					if sb[i] != wb[i] {
						return fmt.Errorf("grid block (%d,%d) edge %d: %v, want %v", x, y, i, sb[i], wb[i])
					}
				}
				swt, wwt := stored.BlockWeights(x, y), want.BlockWeights(x, y)
				if (swt == nil) != (wwt == nil) {
					return fmt.Errorf("grid block (%d,%d): weight presence mismatch", x, y)
				}
				for i := range wwt {
					if swt[i] != wwt[i] {
						return fmt.Errorf("grid block (%d,%d) weight %d: %v, want %v", x, y, i, swt[i], wwt[i])
					}
				}
			}
		}
	}
	return nil
}

// load resolves the input source. The returned seed is the generator
// provenance recorded in v2 output (0 = unknown); ds is non-nil when
// the graph is a named dataset instance.
func load(o options) (*graph.Graph, uint64, *graph.Dataset, error) {
	set := 0
	for _, s := range []string{o.in, o.gen, o.dataset} {
		if s != "" {
			set++
		}
	}
	if set > 1 {
		return nil, 0, nil, fmt.Errorf("specify exactly one of -in, -gen, -dataset")
	}
	switch {
	case o.dataset != "":
		d, err := graph.DatasetByName(o.dataset)
		if err != nil {
			return nil, 0, nil, err
		}
		if o.scale > 0 {
			d.Scale = o.scale
		}
		g, err := d.Generate()
		if err != nil {
			return nil, 0, nil, err
		}
		return g, d.Seed, &d, nil
	case o.in != "":
		if strings.HasSuffix(o.in, ".hyve2") {
			c, err := graph.OpenV2(o.in)
			if err != nil {
				return nil, 0, nil, err
			}
			// Left open: the graph aliases the mapping for the rest of
			// the process (stats, re-writing, verification).
			return c.Graph(), c.Seed(), nil, nil
		}
		f, err := os.Open(o.in)
		if err != nil {
			return nil, 0, nil, err
		}
		defer f.Close()
		if strings.HasSuffix(o.in, ".bin") {
			g, err := graph.ReadBinary(f)
			return g, 0, nil, err
		}
		g, err := graph.ParseEdgeList(f)
		return g, 0, nil, err
	case o.gen != "":
		g, seed, err := generate(o.gen)
		return g, seed, nil, err
	default:
		return nil, 0, nil, fmt.Errorf("specify -in FILE, -gen SPEC, or -dataset NAME")
	}
}

func generate(spec string) (*graph.Graph, uint64, error) {
	parts := strings.Split(spec, ":")
	if len(parts) < 3 {
		return nil, 0, fmt.Errorf("bad -gen spec %q (want kind:V:E[:seed])", spec)
	}
	v, err := strconv.Atoi(parts[1])
	if err != nil {
		return nil, 0, fmt.Errorf("bad vertex count: %w", err)
	}
	e, err := strconv.Atoi(parts[2])
	if err != nil {
		return nil, 0, fmt.Errorf("bad edge count: %w", err)
	}
	seed := uint64(1)
	if len(parts) >= 4 {
		s, err := strconv.ParseUint(parts[3], 10, 64)
		if err != nil {
			return nil, 0, fmt.Errorf("bad seed: %w", err)
		}
		seed = s
	}
	switch parts[0] {
	case "rmat":
		g, err := graph.GenerateRMAT(v, e, graph.DefaultRMAT, seed)
		return g, seed, err
	case "uniform":
		g, err := graph.GenerateUniform(v, e, seed)
		return g, seed, err
	}
	return nil, 0, fmt.Errorf("unknown generator %q (want rmat or uniform)", parts[0])
}

func accConfig(name string) (core.Config, error) {
	switch name {
	case "hyve":
		return core.HyVE(), nil
	case "hyve-opt":
		return core.HyVEOpt(), nil
	case "sd":
		return core.SRAMDRAM(), nil
	case "dram":
		return core.AccDRAM(), nil
	case "reram":
		return core.AccReRAM(), nil
	}
	return core.Config{}, fmt.Errorf("unknown config %q (want hyve, hyve-opt, sd, dram, reram)", name)
}

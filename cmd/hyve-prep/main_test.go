package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestGenerateSpecs(t *testing.T) {
	g, err := generate("rmat:1000:5000:7")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices != 1000 || g.NumEdges() != 5000 {
		t.Errorf("rmat spec produced %d/%d", g.NumVertices, g.NumEdges())
	}
	if _, err := generate("uniform:100:300"); err != nil {
		t.Errorf("uniform spec: %v", err)
	}
	for _, bad := range []string{"rmat:1000", "rmat:x:5", "rmat:5:x", "rmat:5:5:x", "weird:1:2", ""} {
		if _, err := generate(bad); err == nil {
			t.Errorf("bad spec %q accepted", bad)
		}
	}
}

func TestLoadDispatch(t *testing.T) {
	if _, err := load("", ""); err == nil {
		t.Error("no input accepted")
	}
	if _, err := load("a.txt", "rmat:1:1"); err == nil {
		t.Error("both inputs accepted")
	}
	if _, err := load("/does/not/exist.txt", ""); err == nil {
		t.Error("missing file accepted")
	}
	g, err := load("", "uniform:50:100:3")
	if err != nil || g.NumEdges() != 100 {
		t.Errorf("generator load failed: %v", err)
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "g.bin")
	img := filepath.Join(dir, "g.img")
	if err := run("", "rmat:2000:9000:4", out, 16, true, 8, true, img); err != nil {
		t.Fatalf("run (generate+write): %v", err)
	}
	info, err := os.Stat(img)
	if err != nil {
		t.Fatalf("edge image not written: %v", err)
	}
	// 9000 edges × 8B + 256 headers × 12B.
	if want := int64(9000*8 + 256*12); info.Size() != want {
		t.Fatalf("image size %d, want %d", info.Size(), want)
	}
	if _, err := os.Stat(out); err != nil {
		t.Fatalf("binary not written: %v", err)
	}
	// Read the binary back through the full pipeline.
	if err := run(out, "", "", 8, false, 0, true, ""); err != nil {
		t.Fatalf("run (read binary): %v", err)
	}
	// Text edge-list path.
	txt := filepath.Join(dir, "g.txt")
	if err := os.WriteFile(txt, []byte("0 1\n1 2\n2 0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(txt, "", "", 3, true, 2, true, ""); err != nil {
		t.Fatalf("run (text): %v", err)
	}
}

package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/graph"
)

func TestGenerateSpecs(t *testing.T) {
	g, seed, err := generate("rmat:1000:5000:7")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices != 1000 || g.NumEdges() != 5000 {
		t.Errorf("rmat spec produced %d/%d", g.NumVertices, g.NumEdges())
	}
	if seed != 7 {
		t.Errorf("seed = %d, want 7", seed)
	}
	if _, _, err := generate("uniform:100:300"); err != nil {
		t.Errorf("uniform spec: %v", err)
	}
	for _, bad := range []string{"rmat:1000", "rmat:x:5", "rmat:5:x", "rmat:5:5:x", "weird:1:2", ""} {
		if _, _, err := generate(bad); err == nil {
			t.Errorf("bad spec %q accepted", bad)
		}
	}
}

func TestLoadDispatch(t *testing.T) {
	if _, _, _, err := load(options{}); err == nil {
		t.Error("no input accepted")
	}
	if _, _, _, err := load(options{in: "a.txt", gen: "rmat:1:1"}); err == nil {
		t.Error("both inputs accepted")
	}
	if _, _, _, err := load(options{in: "a.txt", dataset: "YT"}); err == nil {
		t.Error("in+dataset accepted")
	}
	if _, _, _, err := load(options{in: "/does/not/exist.txt"}); err == nil {
		t.Error("missing file accepted")
	}
	g, _, _, err := load(options{gen: "uniform:50:100:3"})
	if err != nil || g.NumEdges() != 100 {
		t.Errorf("generator load failed: %v", err)
	}
	g, seed, ds, err := load(options{dataset: "YT"})
	if err != nil {
		t.Fatalf("dataset load: %v", err)
	}
	if ds == nil || ds.Name != "YT" || seed != ds.Seed {
		t.Errorf("dataset metadata: ds=%v seed=%#x", ds, seed)
	}
	if g.NumVertices != ds.GenVertices() || g.NumEdges() != ds.GenEdges() {
		t.Errorf("dataset instance %d/%d, want %d/%d",
			g.NumVertices, g.NumEdges(), ds.GenVertices(), ds.GenEdges())
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "g.bin")
	img := filepath.Join(dir, "g.img")
	o := options{gen: "rmat:2000:9000:4", out: out, p: 16, hashed: true, occupancy: 8, stats: true, image: img}
	if err := run(o); err != nil {
		t.Fatalf("run (generate+write): %v", err)
	}
	info, err := os.Stat(img)
	if err != nil {
		t.Fatalf("edge image not written: %v", err)
	}
	// 9000 edges × 8B + 256 headers × 12B.
	if want := int64(9000*8 + 256*12); info.Size() != want {
		t.Fatalf("image size %d, want %d", info.Size(), want)
	}
	if _, err := os.Stat(out); err != nil {
		t.Fatalf("binary not written: %v", err)
	}
	// Read the binary back through the full pipeline.
	if err := run(options{in: out, p: 8, stats: true}); err != nil {
		t.Fatalf("run (read binary): %v", err)
	}
	// Text edge-list path.
	txt := filepath.Join(dir, "g.txt")
	if err := os.WriteFile(txt, []byte("0 1\n1 2\n2 0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(options{in: txt, p: 3, hashed: true, occupancy: 2, stats: true}); err != nil {
		t.Fatalf("run (text): %v", err)
	}
}

// TestRunV2Compile drives the offline-compiler path end to end: compile
// a generated graph to a v2 container with CSR and grid sections, verify
// it, then reload it through -in and recompile to binary.
func TestRunV2Compile(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "g.hyve2")
	o := options{
		gen: "rmat:2000:9000:4", out: out, csr: true,
		grid: "8", budgetMB: 1, verify: true, stats: false, hashed: true,
	}
	if err := run(o); err != nil {
		t.Fatalf("compile v2: %v", err)
	}
	c, err := graph.OpenV2(out)
	if err != nil {
		t.Fatal(err)
	}
	if c.CSR() == nil || c.GridP() != 8 || c.Seed() != 4 {
		t.Fatalf("container: csr=%v gridP=%d seed=%d", c.CSR() != nil, c.GridP(), c.Seed())
	}
	c.Close()

	// Round-trip: .hyve2 as input, verify only.
	if err := run(options{in: out, verify: true, stats: true}); err != nil {
		t.Fatalf("verify existing container: %v", err)
	}
}

// TestRunV2GridAuto pins that -grid auto picks the P a simulation will
// request, so the prepared fast path fires.
func TestRunV2GridAuto(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "auto.hyve2")
	o := options{
		gen: "rmat:4096:20000:9", out: out, csr: false,
		grid: "auto", config: "hyve-opt", algoName: "PR",
		budgetMB: 1, verify: true, hashed: true,
	}
	if err := run(o); err != nil {
		t.Fatalf("compile with -grid auto: %v", err)
	}
	c, err := graph.OpenV2(out)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.GridP() == 0 {
		t.Fatal("auto grid produced no grid sections")
	}
}

func TestVerifyCatchesCorruption(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "c.hyve2")
	if err := run(options{gen: "uniform:500:2000:2", out: out, csr: true, grid: "off"}); err != nil {
		t.Fatal(err)
	}
	// Flip one byte of the stored digest: structural validation still
	// passes, content verification must not.
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	data[48] ^= 0xFF
	if err := os.WriteFile(out, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := verifyContainer(out); err == nil {
		t.Fatal("digest corruption not caught")
	}
}

package main

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// sampleRegistry builds a registry resembling a mid-run hyve-bench
// process: pool counters, labeled utilization gauges, cache counters,
// and an exec-latency histogram.
func sampleRegistry() *obs.Registry {
	r := obs.NewRegistry()
	r.Count("parallel.points.completed", 420)
	r.Count("parallel.points.inflight", 3)
	r.Gauge("parallel.workers", 4)
	for i, u := range []float64{0.91, 0.87, 0.95, 0.70} {
		r.Gauge(obs.WithLabel("parallel.worker.utilization", "worker", string(rune('0'+i))), u)
	}
	r.Count("cache.hits", 300)
	r.Count("cache.misses", 100)
	r.Count("cache.disk.hits", 10)
	r.Count("cache.coalesced", 10)
	for _, v := range []float64{0.001, 0.002, 0.004, 0.1, 0.12} {
		r.Observe("parallel.point.exec.seconds", v)
	}
	r.Gauge("bench.experiments.total", 24)
	r.Count("bench.experiments.completed", 6)
	return r
}

func expose(t *testing.T, r *obs.Registry) string {
	t.Helper()
	var b bytes.Buffer
	if err := obs.WriteProm(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestRenderFrame(t *testing.T) {
	doc, err := obs.ParseProm(strings.NewReader(expose(t, sampleRegistry())))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	render(&out, doc, nil, 0)
	got := out.String()
	for _, want := range []string{
		"420 completed", "3 in flight", "pool 4 workers",
		"cache", "% hit",
		"p50", "p90", "p99",
		"6/24 experiments",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("frame missing %q:\n%s", want, got)
		}
	}
}

func TestRenderRatesAndETA(t *testing.T) {
	prevReg := sampleRegistry()
	prevDoc, err := obs.ParseProm(strings.NewReader(expose(t, prevReg)))
	if err != nil {
		t.Fatal(err)
	}
	nowReg := sampleRegistry()
	nowReg.Count("parallel.points.completed", 80) // +80 points
	nowReg.Count("bench.experiments.completed", 2)
	nowDoc, err := obs.ParseProm(strings.NewReader(expose(t, nowReg)))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	render(&out, nowDoc, prevDoc, 10*time.Second)
	got := out.String()
	if !strings.Contains(got, "8.0 pts/s") {
		t.Errorf("expected 8.0 pts/s rate:\n%s", got)
	}
	if !strings.Contains(got, "ETA") {
		t.Errorf("expected an ETA with progressing experiments:\n%s", got)
	}
}

// TestRenderETAIncludesReusedRate pins the -resume rate fix: the sweep
// numerator counts completed + reused experiments, so the rate feeding
// the ETA must use the same sum. A resume run that reuses artifacts
// used to show an ETA ~4x too long (only the completed delta counted).
func TestRenderETAIncludesReusedRate(t *testing.T) {
	prevReg := sampleRegistry()
	prevDoc, err := obs.ParseProm(strings.NewReader(expose(t, prevReg)))
	if err != nil {
		t.Fatal(err)
	}
	nowReg := sampleRegistry()
	// Over 10s: +2 completed and +6 reused → 8 experiments of progress,
	// 0.8/s, with done = 6+2+6 = 14 of 24. The 10 remaining at 0.8/s
	// give an ETA of 12.5s (12s or 13s after truncation/rounding);
	// counting only the completed delta (0.2/s) would print 50s.
	nowReg.Count("bench.experiments.completed", 2)
	nowReg.Count("bench.experiments.reused", 6)
	nowDoc, err := obs.ParseProm(strings.NewReader(expose(t, nowReg)))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	render(&out, nowDoc, prevDoc, 10*time.Second)
	got := out.String()
	if !strings.Contains(got, "14/24 experiments") {
		t.Fatalf("expected 14/24 progress (completed + reused):\n%s", got)
	}
	if !strings.Contains(got, "ETA 12s") && !strings.Contains(got, "ETA 13s") {
		t.Errorf("ETA should be ~12.5s from the combined completed+reused rate, not 50s from completed alone:\n%s", got)
	}
}

// TestRenderServePanel pins the hyve-serve panel: hidden without the
// hyve_serve_* families, rendered with counts and a request rate when a
// serve process is scraped.
func TestRenderServePanel(t *testing.T) {
	benchDoc, err := obs.ParseProm(strings.NewReader(expose(t, sampleRegistry())))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	render(&out, benchDoc, nil, 0)
	if strings.Contains(out.String(), "serve ") {
		t.Errorf("serve panel rendered for a scrape without hyve_serve_* families:\n%s", out.String())
	}

	serveReg := func(admitted int64) *obs.Registry {
		r := obs.NewRegistry()
		r.Count("serve.requests.admitted", admitted)
		r.Count("serve.requests.rejected", 7)
		r.Count("serve.breaker.rejected", 2)
		r.Count("serve.inflight", 3)
		r.Count("serve.points.served", 500)
		r.Gauge("serve.breaker.open", 1)
		for _, v := range []float64{0.01, 0.05, 0.2} {
			r.Observe("serve.request.seconds", v)
		}
		return r
	}
	prevDoc, err := obs.ParseProm(strings.NewReader(expose(t, serveReg(100))))
	if err != nil {
		t.Fatal(err)
	}
	nowDoc, err := obs.ParseProm(strings.NewReader(expose(t, serveReg(150))))
	if err != nil {
		t.Fatal(err)
	}
	out.Reset()
	render(&out, nowDoc, prevDoc, 10*time.Second)
	got := out.String()
	for _, want := range []string{
		"150 admitted", "7 rejected", "2 breaker-rejected", "3 in flight", "500 points",
		"5.0 req/s",
		"1 circuit breaker(s) open",
		"request", "p50",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("serve panel missing %q:\n%s", want, got)
		}
	}
}

// TestRenderClusterPanel pins the distributed-sweep panel: hidden
// without the hyve_cluster_* families, rendered with shard progress,
// fault counters, a merge rate, per-worker attribution, and the poison
// warning when a coordinator is scraped.
func TestRenderClusterPanel(t *testing.T) {
	benchDoc, err := obs.ParseProm(strings.NewReader(expose(t, sampleRegistry())))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	render(&out, benchDoc, nil, 0)
	if strings.Contains(out.String(), "cluster ") {
		t.Errorf("cluster panel rendered for a scrape without hyve_cluster_* families:\n%s", out.String())
	}

	clusterReg := func(merged int64) *obs.Registry {
		r := obs.NewRegistry()
		r.Gauge("cluster.shards", 16)
		r.Gauge("cluster.shards.leased", 3)
		r.Gauge("cluster.workers.live", 2)
		r.Count("cluster.leases.granted", 14)
		r.Count("cluster.leases.completed", 9)
		r.Count("cluster.leases.reclaimed", 4)
		r.Count("cluster.leases.expired", 2)
		r.Count("cluster.shards.reassigned", 4)
		r.Count("cluster.shards.poisoned", 1)
		r.Count("cluster.results.merged", merged)
		r.Count("cluster.results.duplicate", 5)
		r.Count("cluster.results.corrupt", 3)
		r.Count(obs.WithLabel("cluster.worker.points", "worker", "alpha#1"), merged-10)
		r.Count(obs.WithLabel("cluster.worker.points", "worker", "beta#2"), 10)
		return r
	}
	prevDoc, err := obs.ParseProm(strings.NewReader(expose(t, clusterReg(30))))
	if err != nil {
		t.Fatal(err)
	}
	nowDoc, err := obs.ParseProm(strings.NewReader(expose(t, clusterReg(80))))
	if err != nil {
		t.Fatal(err)
	}
	out.Reset()
	render(&out, nowDoc, prevDoc, 10*time.Second)
	got := out.String()
	for _, want := range []string{
		"9/16 shards done", "3 leased", "2 workers live",
		"14 granted", "4 reclaimed (2 expired)", "4 reassigned",
		"80 merged", "5 duplicate", "3 corrupt",
		"5.0 pts/s",
		"1 shard(s) poisoned",
		"[alpha#1 70", "[beta#2 10",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("cluster panel missing %q:\n%s", want, got)
		}
	}
}

func TestRunOnceAgainstServer(t *testing.T) {
	reg := sampleRegistry()
	srv := httptest.NewServer(reg.PromHandler())
	defer srv.Close()
	var out, errOut bytes.Buffer
	if code := run(srv.URL, time.Second, true, false, 0, "", &out, &errOut); code != 0 {
		t.Fatalf("run -once exited %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "hyve-top") || !strings.Contains(out.String(), "420 completed") {
		t.Errorf("unexpected -once frame:\n%s", out.String())
	}
}

func TestRunLintCleanAndRequire(t *testing.T) {
	body := expose(t, sampleRegistry())
	var out, errOut bytes.Buffer
	if code := runLint(body, "hyve_cache_hits_total,hyve_parallel_point_exec_seconds", &out, &errOut); code != 0 {
		t.Fatalf("clean exposition failed lint: %s", errOut.String())
	}
	if !strings.Contains(out.String(), "ok:") {
		t.Errorf("lint success should summarize: %s", out.String())
	}
	errOut.Reset()
	if code := runLint(body, "hyve_not_a_real_family", &out, &errOut); code != 1 {
		t.Error("missing required family must fail lint")
	}
	if !strings.Contains(errOut.String(), "hyve_not_a_real_family") {
		t.Errorf("lint error should name the absent family: %s", errOut.String())
	}
}

func TestRunLintCatchesViolations(t *testing.T) {
	cases := map[string]string{
		"duplicate series": `# HELP hyve_x_total h
# TYPE hyve_x_total counter
hyve_x_total 1
hyve_x_total 2
`,
		"missing TYPE": "hyve_y_total 1\n",
		"non-monotone buckets": `# HELP hyve_l_seconds h
# TYPE hyve_l_seconds histogram
hyve_l_seconds_bucket{le="0.1"} 5
hyve_l_seconds_bucket{le="+Inf"} 3
hyve_l_seconds_sum 1
hyve_l_seconds_count 3
`,
		"missing +Inf": `# HELP hyve_m_seconds h
# TYPE hyve_m_seconds histogram
hyve_m_seconds_bucket{le="0.1"} 5
hyve_m_seconds_sum 1
hyve_m_seconds_count 5
`,
	}
	for name, body := range cases {
		var out, errOut bytes.Buffer
		if code := runLint(body, "", &out, &errOut); code != 1 {
			t.Errorf("%s: lint passed a bad exposition:\n%s", name, body)
		}
	}
}

func TestFetchWaitsForLateEndpoint(t *testing.T) {
	reg := sampleRegistry()
	var ready atomic.Bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !ready.Load() {
			http.Error(w, "warming up", http.StatusServiceUnavailable)
			return
		}
		reg.PromHandler().ServeHTTP(w, r)
	}))
	defer srv.Close()
	go func() {
		time.Sleep(300 * time.Millisecond)
		ready.Store(true)
	}()
	body, err := fetch(srv.URL, 5*time.Second)
	if err != nil {
		t.Fatalf("fetch did not wait out the warm-up: %v", err)
	}
	if !strings.Contains(body, "hyve_cache_hits_total") {
		t.Error("fetched document missing expected series")
	}
	srv.Close()
	if _, err := fetch(srv.URL, 0); err == nil {
		t.Error("closed endpoint should error without -wait")
	}
}

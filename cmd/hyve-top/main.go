// Command hyve-top is a live terminal monitor for a running hyve-bench
// (or hyve-check) process: it polls the Prometheus /metrics endpoint the
// -pprof flag serves and renders throughput, worker utilization, cache
// effectiveness, latency percentiles, and sweep progress with an ETA.
//
// Usage:
//
//	hyve-top                          # watch http://127.0.0.1:6060/metrics
//	hyve-top -url http://host:6060/metrics -interval 1s
//	hyve-top -once                    # one frame, no screen control
//	hyve-top -lint                    # validate the exposition and exit
//	hyve-top -lint -wait 30s -require hyve_cache_hits_total
//
// -lint is the machine gate behind `make obs-smoke`: it retries the
// endpoint until -wait expires, then fails unless the document parses,
// every family carries HELP/TYPE, histogram buckets are monotone
// cumulative with a closing +Inf, no series repeats, and every -require
// family is present.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
)

func main() {
	var (
		url      = flag.String("url", "http://127.0.0.1:6060/metrics", "metrics endpoint to poll")
		interval = flag.Duration("interval", 2*time.Second, "poll interval in live mode")
		once     = flag.Bool("once", false, "render a single frame and exit")
		lint     = flag.Bool("lint", false, "validate the exposition document and exit (non-zero on any violation)")
		wait     = flag.Duration("wait", 0, "keep retrying an unreachable endpoint for this long before failing")
		require  = flag.String("require", "", "comma-separated metric families that must be present (with -lint)")
	)
	flag.Parse()
	os.Exit(run(*url, *interval, *once, *lint, *wait, *require, os.Stdout, os.Stderr))
}

func run(url string, interval time.Duration, once, lint bool, wait time.Duration, require string, out, errOut io.Writer) int {
	body, err := fetch(url, wait)
	if err != nil {
		fmt.Fprintf(errOut, "hyve-top: %v\n", err)
		return 2
	}
	if lint {
		// A required family may legitimately lag the endpoint coming up
		// (per-worker utilization publishes at the first pool drain), so
		// within -wait a scrape failing ONLY on absent required families
		// is refetched; structural violations fail immediately.
		deadline := time.Now().Add(wait)
		for {
			var quiet bytes.Buffer
			if code := runLint(body, require, out, &quiet); code == 0 || !onlyMissingRequired(quiet.String()) || time.Now().After(deadline) {
				io.Copy(errOut, &quiet)
				return code
			}
			time.Sleep(200 * time.Millisecond)
			if body, err = fetch(url, 0); err != nil {
				fmt.Fprintf(errOut, "hyve-top: %v\n", err)
				return 2
			}
		}
	}
	doc, err := obs.ParseProm(strings.NewReader(body))
	if err != nil {
		fmt.Fprintf(errOut, "hyve-top: %v\n", err)
		return 2
	}
	if once {
		render(out, doc, nil, 0)
		return 0
	}
	prev := doc
	prevAt := time.Now()
	for {
		fmt.Fprint(out, "\x1b[H\x1b[2J") // home + clear
		render(out, doc, prev, time.Since(prevAt))
		prev, prevAt = doc, time.Now()
		time.Sleep(interval)
		body, err = fetch(url, 0)
		if err != nil {
			fmt.Fprintf(errOut, "hyve-top: %v (process exited?)\n", err)
			return 0
		}
		doc, err = obs.ParseProm(strings.NewReader(body))
		if err != nil {
			fmt.Fprintf(errOut, "hyve-top: %v\n", err)
			return 2
		}
	}
}

// fetch GETs the endpoint, retrying until wait expires (one immediate
// attempt when wait is zero).
func fetch(url string, wait time.Duration) (string, error) {
	deadline := time.Now().Add(wait)
	for {
		resp, err := http.Get(url)
		if err == nil {
			b, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr == nil && resp.StatusCode == http.StatusOK {
				return string(b), nil
			}
			if rerr != nil {
				err = rerr
			} else {
				err = fmt.Errorf("GET %s: %s", url, resp.Status)
			}
		}
		if time.Now().After(deadline) {
			return "", err
		}
		time.Sleep(200 * time.Millisecond)
	}
}

// onlyMissingRequired reports whether every lint error line is a
// "required family absent" one — the retryable class.
func onlyMissingRequired(errText string) bool {
	lines := strings.Split(strings.TrimSpace(errText), "\n")
	for _, l := range lines {
		if l != "" && !strings.Contains(l, "required family") {
			return false
		}
	}
	return len(errText) > 0
}

// runLint validates one exposition document and reports every violation.
func runLint(body, require string, out, errOut io.Writer) int {
	doc, errs := obs.LintProm(strings.NewReader(body))
	if doc != nil {
		for _, fam := range strings.Split(require, ",") {
			fam = strings.TrimSpace(fam)
			if fam == "" {
				continue
			}
			if _, ok := doc.Types[fam]; !ok {
				errs = append(errs, fmt.Errorf("required family %s absent", fam))
			}
		}
	}
	if len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintf(errOut, "hyve-top: lint: %v\n", e)
		}
		return 1
	}
	fmt.Fprintf(out, "ok: %d samples across %d families\n", len(doc.Samples), len(doc.Types))
	return 0
}

// render draws one frame from the current document; prev (the scrape dt
// ago) supplies rates and the ETA, and may be nil or identical to doc
// for a rateless frame (-once, first frame).
func render(w io.Writer, doc, prev *obs.PromDoc, dt time.Duration) {
	completed, _ := doc.Value("hyve_parallel_points_completed_total")
	inflight, _ := doc.Value("hyve_parallel_points_inflight")
	workers, _ := doc.Value("hyve_parallel_workers")
	rate := math.NaN()
	if prev != nil && dt > 0 {
		pc, _ := prev.Value("hyve_parallel_points_completed_total")
		rate = (completed - pc) / dt.Seconds()
	}
	fmt.Fprintf(w, "hyve-top — %s\n\n", time.Now().Format("15:04:05"))
	fmt.Fprintf(w, "points    %8.0f completed   %3.0f in flight   pool %.0f workers", completed, inflight, workers)
	if !math.IsNaN(rate) {
		fmt.Fprintf(w, "   %6.1f pts/s", rate)
	}
	fmt.Fprintln(w)

	if util := doc.SamplesNamed("hyve_parallel_worker_utilization"); len(util) > 0 {
		sort.Slice(util, func(i, j int) bool { return util[i].Label("worker") < util[j].Label("worker") })
		fmt.Fprint(w, "workers   ")
		for _, s := range util {
			fmt.Fprintf(w, "[%s %s %3.0f%%] ", s.Label("worker"), bar(s.Value, 10), 100*s.Value)
		}
		fmt.Fprintln(w)
	}

	hits, _ := doc.Value("hyve_cache_hits_total")
	disk, _ := doc.Value("hyve_cache_disk_hits_total")
	misses, _ := doc.Value("hyve_cache_misses_total")
	coalesced, _ := doc.Value("hyve_cache_coalesced_total")
	if total := hits + disk + misses + coalesced; total > 0 {
		fmt.Fprintf(w, "cache     %5.1f%% hit  (%.0f mem, %.0f disk, %.0f coalesced, %.0f executed)\n",
			100*(hits+disk+coalesced)/total, hits, disk, coalesced, misses)
	}

	for _, h := range []struct{ fam, label string }{
		{"hyve_parallel_point_exec_seconds", "exec"},
		{"hyve_parallel_point_queue_seconds", "queue"},
		{"hyve_cache_lookup_seconds", "lookup"},
	} {
		buckets := doc.SamplesNamed(h.fam + "_bucket")
		if len(buckets) == 0 {
			continue
		}
		fmt.Fprintf(w, "%-9s p50 %-10s p90 %-10s p99 %-10s\n", h.label,
			fmtSeconds(obs.HistQuantile(buckets, 0.50)),
			fmtSeconds(obs.HistQuantile(buckets, 0.90)),
			fmtSeconds(obs.HistQuantile(buckets, 0.99)))
	}

	expTotal, okT := doc.Value("hyve_bench_experiments_total")
	expDone, _ := doc.Value("hyve_bench_experiments_completed_total")
	expReused, _ := doc.Value("hyve_bench_experiments_reused_total")
	if okT && expTotal > 0 {
		done := expDone + expReused
		fmt.Fprintf(w, "sweep     %.0f/%.0f experiments %s %3.0f%%", done, expTotal,
			bar(done/expTotal, 20), 100*done/expTotal)
		if prev != nil && dt > 0 {
			// The progress numerator counts completed AND reused
			// experiments, so the rate must too: a -resume run that
			// reuses most artifacts would otherwise show a near-zero
			// rate and a wildly inflated ETA.
			pd, _ := prev.Value("hyve_bench_experiments_completed_total")
			pr, _ := prev.Value("hyve_bench_experiments_reused_total")
			if r := (done - (pd + pr)) / dt.Seconds(); r > 0 && expTotal > done {
				fmt.Fprintf(w, "   ETA %s", (time.Duration((expTotal-done)/r) * time.Second).Round(time.Second))
			}
		}
		fmt.Fprintln(w)
	}

	renderServe(w, doc, prev, dt)
	renderCluster(w, doc, prev, dt)
}

// renderServe draws the hyve-serve panel when the scraped process
// exposes the hyve_serve_* families (a hyve-bench scrape has none, so
// the panel stays hidden).
func renderServe(w io.Writer, doc, prev *obs.PromDoc, dt time.Duration) {
	admitted, okA := doc.Value("hyve_serve_requests_admitted_total")
	rejected, okR := doc.Value("hyve_serve_requests_rejected_total")
	if !okA && !okR {
		return
	}
	inflight, _ := doc.Value("hyve_serve_inflight")
	brRejected, _ := doc.Value("hyve_serve_breaker_rejected_total")
	brOpen, _ := doc.Value("hyve_serve_breaker_open")
	points, _ := doc.Value("hyve_serve_points_served_total")
	fmt.Fprintf(w, "serve     %.0f admitted   %.0f rejected   %.0f breaker-rejected   %.0f in flight   %.0f points",
		admitted, rejected, brRejected, inflight, points)
	if prev != nil && dt > 0 {
		pa, _ := prev.Value("hyve_serve_requests_admitted_total")
		if r := (admitted - pa) / dt.Seconds(); r > 0 {
			fmt.Fprintf(w, "   %5.1f req/s", r)
		}
	}
	fmt.Fprintln(w)
	if brOpen > 0 {
		fmt.Fprintf(w, "          ⚠ %.0f circuit breaker(s) open\n", brOpen)
	}
	if buckets := doc.SamplesNamed("hyve_serve_request_seconds_bucket"); len(buckets) > 0 {
		fmt.Fprintf(w, "%-9s p50 %-10s p90 %-10s p99 %-10s\n", "request",
			fmtSeconds(obs.HistQuantile(buckets, 0.50)),
			fmtSeconds(obs.HistQuantile(buckets, 0.90)),
			fmtSeconds(obs.HistQuantile(buckets, 0.99)))
	}
}

// renderCluster draws the distributed-sweep panel when the scraped
// process is a hyve-sweepd coordinator exposing the hyve_cluster_*
// families (hidden otherwise, like the serve panel).
func renderCluster(w io.Writer, doc, prev *obs.PromDoc, dt time.Duration) {
	shards, okS := doc.Value("hyve_cluster_shards")
	granted, okG := doc.Value("hyve_cluster_leases_granted_total")
	if !okS && !okG {
		return
	}
	done, _ := doc.Value("hyve_cluster_leases_completed_total")
	leased, _ := doc.Value("hyve_cluster_shards_leased")
	live, _ := doc.Value("hyve_cluster_workers_live")
	reclaimed, _ := doc.Value("hyve_cluster_leases_reclaimed_total")
	expired, _ := doc.Value("hyve_cluster_leases_expired_total")
	reassigned, _ := doc.Value("hyve_cluster_shards_reassigned_total")
	merged, _ := doc.Value("hyve_cluster_results_merged_total")
	duplicate, _ := doc.Value("hyve_cluster_results_duplicate_total")
	corrupt, _ := doc.Value("hyve_cluster_results_corrupt_total")
	poisoned, _ := doc.Value("hyve_cluster_shards_poisoned_total")

	fmt.Fprintf(w, "cluster   %.0f/%.0f shards done", done, shards)
	if shards > 0 {
		fmt.Fprintf(w, " %s %3.0f%%", bar(done/shards, 20), 100*done/shards)
	}
	fmt.Fprintf(w, "   %.0f leased   %.0f workers live\n", leased, live)
	fmt.Fprintf(w, "          %.0f granted   %.0f reclaimed (%.0f expired)   %.0f reassigned   %.0f merged   %.0f duplicate   %.0f corrupt",
		granted, reclaimed, expired, reassigned, merged, duplicate, corrupt)
	if prev != nil && dt > 0 {
		pm, _ := prev.Value("hyve_cluster_results_merged_total")
		if r := (merged - pm) / dt.Seconds(); r > 0 {
			fmt.Fprintf(w, "   %5.1f pts/s", r)
		}
	}
	fmt.Fprintln(w)
	if poisoned > 0 {
		fmt.Fprintf(w, "          ⚠ %.0f shard(s) poisoned — quarantined after repeated worker failures\n", poisoned)
	}
	if pts := doc.SamplesNamed("hyve_cluster_worker_points_total"); len(pts) > 0 {
		sort.Slice(pts, func(i, j int) bool { return pts[i].Label("worker") < pts[j].Label("worker") })
		fmt.Fprint(w, "          by worker: ")
		for _, s := range pts {
			fmt.Fprintf(w, "[%s %.0f", s.Label("worker"), s.Value)
			if prev != nil && dt > 0 {
				for _, p := range prev.SamplesNamed("hyve_cluster_worker_points_total") {
					if p.Label("worker") == s.Label("worker") {
						if r := (s.Value - p.Value) / dt.Seconds(); r > 0 {
							fmt.Fprintf(w, " %.1f/s", r)
						}
						break
					}
				}
			}
			fmt.Fprint(w, "] ")
		}
		fmt.Fprintln(w)
	}
	if buckets := doc.SamplesNamed("hyve_cluster_shard_attempts_bucket"); len(buckets) > 0 {
		fmt.Fprintf(w, "%-9s p50 %-10.1f p90 %-10.1f p99 %-10.1f\n", "attempts",
			obs.HistQuantile(buckets, 0.50),
			obs.HistQuantile(buckets, 0.90),
			obs.HistQuantile(buckets, 0.99))
	}
}

// bar renders a fixed-width unicode utilization bar for v in [0, 1].
func bar(v float64, width int) string {
	if math.IsNaN(v) || v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	full := int(v*float64(width) + 0.5)
	return strings.Repeat("█", full) + strings.Repeat("░", width-full)
}

// fmtSeconds renders a latency with a unit that keeps 3 significant
// digits readable (µs/ms/s).
func fmtSeconds(s float64) string {
	switch {
	case s <= 0:
		return "0"
	case s < 1e-3:
		return fmt.Sprintf("%.0fµs", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.2fms", s*1e3)
	default:
		return fmt.Sprintf("%.2fs", s)
	}
}

package main

import (
	"bytes"
	"fmt"
	"io"
	"time"

	"repro/internal/experiments"
	"repro/internal/parallel"
)

// runAll executes every experiment and writes the artifacts to w in the
// given (paper) order. A serial run streams each experiment straight to
// w; with more than one worker the simulated experiments run
// concurrently into per-experiment buffers, the measured ones run
// serially afterwards on an otherwise idle process, and everything is
// emitted in order once complete. Both paths produce the same artifact
// bytes. The parallel path closes with an aggregate-vs-wall-clock
// speedup line.
func runAll(w io.Writer, todo []experiments.Experiment, opt experiments.Options) error {
	workers := parallel.Workers(opt.Parallel)
	if opt.Parallel < 0 {
		workers = 1
	}
	start := time.Now()
	elapsed := make([]time.Duration, len(todo))

	runOne := func(i int, out io.Writer) error {
		t0 := time.Now()
		if err := todo[i].Run(out, opt); err != nil {
			return fmt.Errorf("%s failed: %w", todo[i].ID, err)
		}
		elapsed[i] = time.Since(t0)
		return nil
	}
	header := func(i int) {
		if i > 0 {
			fmt.Fprintln(w)
		}
		fmt.Fprintf(w, "=== %s: %s ===\n", todo[i].ID, todo[i].Title)
	}
	footer := func(i int) {
		fmt.Fprintf(w, "(%s in %v)\n", todo[i].ID, elapsed[i].Round(time.Millisecond))
	}

	if workers <= 1 || len(todo) == 1 {
		for i := range todo {
			header(i)
			if err := runOne(i, w); err != nil {
				return err
			}
			footer(i)
		}
		return nil
	}

	// Phase 1: simulated experiments across the pool, buffered.
	bufs := make([]bytes.Buffer, len(todo))
	var simulated []int
	for i, e := range todo {
		if !e.Measured {
			simulated = append(simulated, i)
		}
	}
	err := parallel.ForEach(workers, len(simulated), func(k int) error {
		i := simulated[k]
		return runOne(i, &bufs[i])
	})
	if err != nil {
		return err
	}

	// Phase 2: measured experiments, one at a time, machine to themselves.
	for i, e := range todo {
		if e.Measured {
			if err := runOne(i, &bufs[i]); err != nil {
				return err
			}
		}
	}

	var aggregate time.Duration
	for i := range todo {
		header(i)
		if _, err := w.Write(bufs[i].Bytes()); err != nil {
			return err
		}
		footer(i)
		aggregate += elapsed[i]
	}

	wall := time.Since(start)
	_, err = fmt.Fprintf(w, "\nwall clock %v for %v of experiment time, %d workers (%.2fx speedup)\n",
		wall.Round(time.Millisecond), aggregate.Round(time.Millisecond), workers,
		aggregate.Seconds()/wall.Seconds())
	return err
}

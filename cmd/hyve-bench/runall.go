package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/parallel"
)

// runAll executes every experiment and writes the artifacts to w in the
// given (paper) order; timing and lifecycle events go to log as leveled
// logfmt lines (stderr in the binary), so w carries only the
// deterministic artifact bytes and stays pipeable. A serial run streams
// each experiment straight to w; with more than one worker the simulated
// experiments run concurrently into per-experiment buffers, the measured
// ones run serially afterwards on an otherwise idle process, and
// everything is emitted in order once complete. Both paths produce the
// same artifact bytes.
//
// The run is observable end to end: a "bench run" span parents one
// "experiment <id>" span per executed experiment (and, through
// Options.Ctx, the point spans the cache scheduler opens under them),
// experiment lifecycle lands in the flight recorder, and the process
// recorder carries bench.experiments.total/completed/reused so a live
// monitor can compute progress and ETA. All of it is free when tracing
// is disabled and the recorder is the no-op default.
//
// With artifactDir non-empty, every experiment also emits its canonical
// JSON artifact (<id>.json) there, plus a run-level manifest.json
// recording worker count and wall time — the host-side facts that must
// stay out of the per-experiment documents so those are byte-identical
// at any -parallel value. Artifact files are written atomically
// (obs.WriteAtomic): a run killed mid-write never leaves a truncated
// document under a final name.
//
// With resume also set, experiments whose artifact file already exists,
// decodes strictly, validates, and carries the current options digest
// are skipped — their files are left byte-for-byte untouched — and only
// the missing, damaged, or differently-configured ones run. Because
// artifact content is deterministic, a crashed run plus a -resume run
// produces exactly the bytes one uninterrupted run would have (pinned by
// TestRunAllResume); an artifact produced under different options (a
// changed -scale or -seed, a quick run resumed at full scale) fails the
// digest comparison and reruns (TestResumeRejectsChangedOptions).
func runAll(w io.Writer, log *obs.Logger, todo []experiments.Experiment, opt experiments.Options, artifactDir string, resume bool) error {
	workers := parallel.Workers(opt.Parallel)
	if opt.Parallel < 0 {
		workers = 1
	}
	rec := obs.Default()
	start := time.Now()
	elapsed := make([]time.Duration, len(todo))
	runCtx, runSpan := obs.StartSpan(context.Background(), "bench run",
		"experiments", strconv.Itoa(len(todo)), "workers", strconv.Itoa(workers))
	defer runSpan.End()

	arts := make([]*obs.Artifact, len(todo))
	skip := make([]bool, len(todo))
	if artifactDir != "" {
		if err := os.MkdirAll(artifactDir, 0o755); err != nil {
			return err
		}
		for i, e := range todo {
			arts[i] = experiments.NewRunArtifact(e, opt)
			if resume {
				skip[i] = validArtifact(filepath.Join(artifactDir, e.ID+".json"), e.ID, experiments.OptionsDigest(e, opt))
				if skip[i] {
					log.Info("experiment.resumed", "id", e.ID)
				}
			}
		}
	}
	rec.Gauge("bench.experiments.total", float64(len(todo)))

	runOne := func(i int, out io.Writer) error {
		o := opt
		o.Artifact = arts[i]
		ectx, span := obs.StartSpan(runCtx, "experiment "+todo[i].ID, "title", todo[i].Title)
		o.Ctx = ectx
		obs.Flight().Record("bench.experiment.start", todo[i].ID)
		log.Debug("experiment.start", "id", todo[i].ID)
		t0 := time.Now()
		if err := todo[i].Run(out, o); err != nil {
			span.SetAttr("error", err.Error())
			span.End()
			obs.Flight().Record("bench.experiment.fail", todo[i].ID, "err", err.Error())
			log.Error("experiment.fail", "id", todo[i].ID, "err", err)
			return fmt.Errorf("%s failed: %w", todo[i].ID, err)
		}
		elapsed[i] = time.Since(t0)
		span.End()
		obs.Flight().Record("bench.experiment.done", todo[i].ID, "elapsed", elapsed[i].String())
		rec.Count("bench.experiments.completed", 1)
		return nil
	}
	header := func(i int) {
		if i > 0 {
			fmt.Fprintln(w)
		}
		fmt.Fprintf(w, "=== %s: %s ===\n", todo[i].ID, todo[i].Title)
	}
	footer := func(i int) {
		log.Info("experiment.done", "id", todo[i].ID, "elapsed", elapsed[i].Round(time.Millisecond))
	}
	writeArtifact := func(i int) error {
		if arts[i] == nil || skip[i] {
			return nil
		}
		return obs.WriteAtomic(filepath.Join(artifactDir, todo[i].ID+".json"), arts[i].EncodeJSON)
	}
	writeManifest := func() error {
		if artifactDir == "" {
			return nil
		}
		m := obs.RunManifest{
			Schema:      obs.ArtifactSchema,
			Tool:        "hyve-bench",
			Quick:       opt.Quick,
			Workers:     workers,
			WallSeconds: time.Since(start).Seconds(),
		}
		for i, e := range todo {
			m.Experiments = append(m.Experiments, obs.RunArtifact{
				ID: e.ID, Title: e.Title, File: e.ID + ".json",
				Seconds: elapsed[i].Seconds(),
			})
		}
		return obs.WriteAtomic(filepath.Join(artifactDir, "manifest.json"), m.EncodeJSON)
	}

	reused := 0
	for i := range todo {
		if skip[i] {
			reused++
		}
	}
	rec.Count("bench.experiments.reused", int64(reused))
	summarizeReuse := func() {
		if reused > 0 {
			log.Info("run.reuse", "executed", len(todo)-reused, "reused", reused)
		}
	}

	if workers <= 1 || len(todo) == 1 {
		for i := range todo {
			header(i)
			if skip[i] {
				continue
			}
			if err := runOne(i, w); err != nil {
				return err
			}
			footer(i)
			if err := writeArtifact(i); err != nil {
				return err
			}
		}
		if err := writeManifest(); err != nil {
			return err
		}
		summarizeReuse()
		return nil
	}

	// Phase 1: simulated experiments across the pool, buffered.
	bufs := make([]bytes.Buffer, len(todo))
	var simulated []int
	for i, e := range todo {
		if !e.Measured && !skip[i] {
			simulated = append(simulated, i)
		}
	}
	err := parallel.ForEach(workers, len(simulated), func(k int) error {
		i := simulated[k]
		return runOne(i, &bufs[i])
	})
	if err != nil {
		return err
	}

	// Phase 2: measured experiments, one at a time, machine to themselves.
	for i, e := range todo {
		if e.Measured && !skip[i] {
			if err := runOne(i, &bufs[i]); err != nil {
				return err
			}
		}
	}

	var aggregate time.Duration
	for i := range todo {
		header(i)
		if skip[i] {
			continue
		}
		if _, err := w.Write(bufs[i].Bytes()); err != nil {
			return err
		}
		footer(i)
		if err := writeArtifact(i); err != nil {
			return err
		}
		aggregate += elapsed[i]
	}
	if err := writeManifest(); err != nil {
		return err
	}

	summarizeReuse()
	executed := len(todo) - reused
	if executed == 0 {
		// Nothing ran: a speedup over zero aggregate time would divide
		// zero by wall and report a meaningless figure.
		log.Info("run.summary", "wall", time.Since(start).Round(time.Millisecond),
			"executed", 0, "reused", reused)
		return nil
	}
	// The aggregate covers executed experiments only — reused ones cost
	// no experiment time and must not inflate (or deflate) the speedup.
	wall := time.Since(start)
	log.Info("run.summary", "wall", wall.Round(time.Millisecond),
		"experiment_time", aggregate.Round(time.Millisecond),
		"executed", executed, "workers", workers,
		"speedup", aggregate.Seconds()/wall.Seconds())
	return nil
}

// validArtifact reports whether the file at path is a complete, valid
// artifact for experiment id produced under the options digest — the
// -resume predicate. Anything short of a strict decode plus schema
// validation plus a matching id AND a matching options digest (a missing
// file, a truncated document, a foreign JSON object, an artifact moved
// between ids, an artifact produced under a different -scale/-seed/
// -quick, or one predating the digest) means the experiment reruns;
// atomically-written files make truncation impossible in practice, but
// the predicate never trusts that.
func validArtifact(path, id, digest string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	a, err := obs.DecodeJSON(f)
	if err != nil {
		return false
	}
	return a.Validate() == nil && a.ID == id && a.Manifest.Digest == digest
}

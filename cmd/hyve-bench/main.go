// Command hyve-bench regenerates the paper's evaluation artifacts: every
// table and figure, or a selected one, written as aligned text tables.
//
// Usage:
//
//	hyve-bench                 # run everything (full datasets)
//	hyve-bench -quick          # small datasets, reduced sweeps
//	hyve-bench -run fig16      # one artifact
//	hyve-bench -list           # enumerate artifacts
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		run   = flag.String("run", "", "run a single experiment by id (e.g. fig16, table4)")
		quick = flag.Bool("quick", false, "reduced datasets and sweeps")
		list  = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	opt := experiments.Options{Quick: *quick}
	todo := experiments.All()
	if *run != "" {
		e, err := experiments.ByID(*run)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		todo = []experiments.Experiment{e}
	}

	for i, e := range todo {
		if i > 0 {
			fmt.Println()
		}
		fmt.Printf("=== %s: %s ===\n", e.ID, e.Title)
		start := time.Now()
		if err := e.Run(os.Stdout, opt); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("(%s in %v)\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}

// Command hyve-bench regenerates the paper's evaluation artifacts: every
// table and figure, or a selected one, written as aligned text tables.
//
// Usage:
//
//	hyve-bench                 # run everything (full datasets, parallel)
//	hyve-bench -quick          # small datasets, reduced sweeps
//	hyve-bench -run fig16      # one artifact (or a comma-separated list)
//	hyve-bench -list           # enumerate artifacts
//	hyve-bench -parallel 1     # fully serial (reference behaviour)
//	hyve-bench -artifact-dir d # also emit canonical JSON artifacts to d
//	hyve-bench -cache-dir c    # content-addressed result cache across runs
//	hyve-bench -scale 4        # multiply every dataset's down-scale divisor
//	hyve-bench -seed 7         # re-seed every dataset generator (XOR)
//	hyve-bench -pprof :6060    # serve pprof, expvar, /metrics, /debug/flight, /debug/trace
//	hyve-bench -log-level warn # quieter progress (debug|info|warn|error)
//	hyve-bench -trace t.json   # export the span trace (Chrome trace_event)
//
// Progress goes to stderr as leveled logfmt lines (-log-level selects
// the floor, default info), keeping stdout pipeable. With -pprof the
// process also serves Prometheus text exposition at /metrics (counters,
// gauges, and latency histograms with hyve_-prefixed stable names — see
// EXPERIMENTS.md for the reference table), the flight recorder at
// /debug/flight, and the live span trace at /debug/trace; cmd/hyve-top
// renders a terminal dashboard from /metrics. With -trace the full span
// hierarchy (run → experiment → point → simulated phases) is written as
// a Chrome trace_event document on exit, loadable in a trace viewer.
//
// Every simulation point is submitted through the internal/cache
// scheduler, so points shared between experiments execute once per run;
// with -cache-dir the results persist in an on-disk content-addressed
// store and a repeat run re-executes nothing (-no-cache disables all
// reuse). Artifact provenance is digest-checked: -resume reruns any
// experiment whose surviving artifact was produced under different
// options (a changed -scale, -seed, or -quick), instead of silently
// keeping stale results.
//
// With more than one worker the simulated experiments run concurrently
// (and fan their own points across the same pool), while the measured
// experiments — preprocessing speed, dynamic-update throughput — run
// one at a time afterwards with the machine to themselves, so their
// wall-clock numbers are taken on an otherwise idle process exactly as
// in a serial run. Output is buffered per experiment and emitted in
// paper order, so the artifact bytes are identical at any -parallel
// value; per-experiment timing and the closing speedup line go to
// stderr, keeping stdout pipeable.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/cache"
	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	var (
		run      = flag.String("run", "", "run selected experiments by id, comma-separated (e.g. fig16 or table3,fig9)")
		quick    = flag.Bool("quick", false, "reduced datasets and sweeps")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		par      = flag.Int("parallel", 0, "worker count for simulation points and concurrent experiments (0 = GOMAXPROCS, 1 = serial)")
		artDir   = flag.String("artifact-dir", "", "also write one canonical JSON artifact per experiment (plus manifest.json) to this directory")
		resume   = flag.Bool("resume", false, "with -artifact-dir: skip experiments whose artifact file already exists, validates, and matches the current options digest; rerun missing, damaged, or differently-configured ones")
		pprof    = flag.String("pprof", "", "serve net/http/pprof and expvar worker-pool counters on this address (e.g. :6060)")
		scale    = flag.Int("scale", 1, "multiply every dataset's down-scale divisor by this factor (1 = paper scales)")
		seed     = flag.Uint64("seed", 0, "XOR this into every dataset's generator seed (0 = paper seeds)")
		cacheDir = flag.String("cache-dir", "", "persist simulation results in an on-disk content-addressed cache rooted here, reused across runs")
		noCache  = flag.Bool("no-cache", false, "disable all simulation-result reuse, including the in-memory per-run cache")
		logLevel = flag.String("log-level", "info", "progress log floor: debug, info, warn, or error")
		trace    = flag.String("trace", "", "write the run's span trace to this file as Chrome trace_event JSON (implies tracing on)")
		prepDir  = flag.String("prep-dir", "", "load datasets from hyve-prep v2 containers in this directory when present (bit-identical to generation; missing datasets are generated)")
	)
	flag.Parse()

	graph.SetPreparedDir(*prepDir)

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hyve-bench:", err)
		os.Exit(1)
	}
	log := obs.NewLogger(os.Stderr, level)
	// A panic or point timeout anywhere in the run dumps the flight
	// recorder's last events to stderr for post-mortem context.
	obs.SetFlightDump(os.Stderr)

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	if *pprof != "" {
		// The full introspection surface — /metrics, pprof, expvar,
		// flight recorder, span trace — on one properly configured server
		// (header timeouts, explicit mux, graceful shutdown on exit), not
		// a bare ListenAndServe on the default mux.
		srv := serve.DebugServer(*pprof)
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Error("pprof.server", "err", err)
			}
		}()
		defer serve.ShutdownServer(srv, 5*time.Second)
		log.Info("observability.listening", "addr", *pprof,
			"endpoints", "/metrics /debug/pprof /debug/vars /debug/flight /debug/trace")
	}
	if *trace != "" && !obs.TracingEnabled() {
		obs.EnableTracing(0)
	}

	opt := experiments.Options{Quick: *quick, Parallel: *par}
	if *scale < 1 {
		fmt.Fprintln(os.Stderr, "hyve-bench: -scale must be at least 1")
		os.Exit(1)
	}
	if *scale > 1 || *seed != 0 {
		opt.Datasets = scaledDatasets(*quick, *scale, *seed)
	}
	switch {
	case *noCache:
		opt.Cache = cache.Off()
	case *cacheDir != "":
		opt.Cache = cache.New(cache.Config{Dir: *cacheDir})
	}
	todo, err := selectExperiments(*run)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *resume && *artDir == "" {
		fmt.Fprintln(os.Stderr, "hyve-bench: -resume requires -artifact-dir")
		os.Exit(1)
	}

	if err := runAll(os.Stdout, log, todo, opt, *artDir, *resume); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *trace != "" {
		if err := writeTrace(*trace); err != nil {
			fmt.Fprintln(os.Stderr, "hyve-bench: writing trace:", err)
			os.Exit(1)
		}
		log.Info("trace.written", "file", *trace, "spans", len(obs.Tracing().Snapshot()),
			"dropped", obs.Tracing().Dropped())
	}
}

// writeTrace exports the global span buffer as a Chrome trace_event
// document, loadable in chrome://tracing or Perfetto.
func writeTrace(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.Tracing().WriteCatapult(f, "hyve-bench"); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// scaledDatasets builds the dataset override for -scale/-seed: the
// paper's registry (truncated to the quick subset exactly as
// Options.datasets would truncate it) with every down-scale divisor
// multiplied by scale and every generator seed XORed with seed. The
// instances land in the artifact manifests and the options digest, so a
// -resume against artifacts produced at a different scale or seed
// reruns instead of keeping stale results.
func scaledDatasets(quick bool, scale int, seed uint64) []graph.Dataset {
	ds := graph.Datasets
	if quick {
		ds = ds[:2]
	}
	out := make([]graph.Dataset, len(ds))
	for i, d := range ds {
		d.Scale *= scale
		d.Seed ^= seed
		out[i] = d
	}
	return out
}

// selectExperiments resolves a -run list to experiments, in the order
// given. Unknown ids error (ByID names the valid ones), duplicates error
// rather than silently running an experiment twice, and an all-empty
// list ("", ",") errors rather than running nothing.
func selectExperiments(run string) ([]experiments.Experiment, error) {
	if run == "" {
		return experiments.All(), nil
	}
	var todo []experiments.Experiment
	seen := make(map[string]bool)
	for _, id := range strings.Split(run, ",") {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		if seen[id] {
			return nil, fmt.Errorf("hyve-bench: experiment %q listed twice in -run", id)
		}
		seen[id] = true
		e, err := experiments.ByID(id)
		if err != nil {
			return nil, err
		}
		todo = append(todo, e)
	}
	if len(todo) == 0 {
		return nil, fmt.Errorf("hyve-bench: -run %q selects no experiments", run)
	}
	return todo, nil
}

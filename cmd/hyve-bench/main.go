// Command hyve-bench regenerates the paper's evaluation artifacts: every
// table and figure, or a selected one, written as aligned text tables.
//
// Usage:
//
//	hyve-bench                 # run everything (full datasets, parallel)
//	hyve-bench -quick          # small datasets, reduced sweeps
//	hyve-bench -run fig16      # one artifact
//	hyve-bench -list           # enumerate artifacts
//	hyve-bench -parallel 1     # fully serial (reference behaviour)
//
// With more than one worker the simulated experiments run concurrently
// (and fan their own points across the same pool), while the measured
// experiments — preprocessing speed, dynamic-update throughput — run
// one at a time afterwards with the machine to themselves, so their
// wall-clock numbers are taken on an otherwise idle process exactly as
// in a serial run. Output is buffered per experiment and emitted in
// paper order, so the artifact bytes are identical at any -parallel
// value; only the per-experiment timing annotations vary run to run.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	var (
		run   = flag.String("run", "", "run a single experiment by id (e.g. fig16, table4)")
		quick = flag.Bool("quick", false, "reduced datasets and sweeps")
		list  = flag.Bool("list", false, "list experiment ids and exit")
		par   = flag.Int("parallel", 0, "worker count for simulation points and concurrent experiments (0 = GOMAXPROCS, 1 = serial)")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	opt := experiments.Options{Quick: *quick, Parallel: *par}
	todo := experiments.All()
	if *run != "" {
		e, err := experiments.ByID(*run)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		todo = []experiments.Experiment{e}
	}

	if err := runAll(os.Stdout, todo, opt); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

package main

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiments"
)

// fakeSuite builds a registry-like slice whose runners write fixed
// bodies, with one Measured entry in the middle.
func fakeSuite() []experiments.Experiment {
	mk := func(id string, measured bool) experiments.Experiment {
		return experiments.Experiment{
			ID:    id,
			Title: "title " + id,
			Run: func(w io.Writer, opt experiments.Options) error {
				_, err := fmt.Fprintf(w, "body of %s\nsecond line\n", id)
				return err
			},
			Measured: measured,
		}
	}
	return []experiments.Experiment{
		mk("alpha", false), mk("beta", true), mk("gamma", false), mk("delta", false),
	}
}

func TestRunAllOrderAndDeterminism(t *testing.T) {
	suite := fakeSuite()
	var serial, par, serialProg, parProg bytes.Buffer
	if err := runAll(&serial, &serialProg, suite, experiments.Options{Parallel: -1}, ""); err != nil {
		t.Fatalf("serial runAll: %v", err)
	}
	if err := runAll(&par, &parProg, suite, experiments.Options{Parallel: 8}, ""); err != nil {
		t.Fatalf("parallel runAll: %v", err)
	}
	// With the timing annotations routed to the progress writer, stdout
	// must be byte-identical between serial and parallel runs.
	if got, want := par.String(), serial.String(); got != want {
		t.Errorf("parallel stdout bytes differ from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", want, got)
	}
	if strings.Contains(par.String(), "wall clock ") || strings.Contains(par.String(), "(alpha in ") {
		t.Errorf("timing annotations leaked into stdout:\n%s", par.String())
	}
	// Emission must follow registry order regardless of completion order.
	out := par.String()
	last := -1
	for _, e := range suite {
		at := strings.Index(out, "=== "+e.ID+":")
		if at < 0 {
			t.Fatalf("experiment %s missing from output", e.ID)
		}
		if at < last {
			t.Errorf("experiment %s emitted out of order", e.ID)
		}
		last = at
	}
	if !strings.Contains(parProg.String(), "speedup)") {
		t.Errorf("parallel run missing speedup line on progress writer:\n%s", parProg.String())
	}
	if strings.Contains(serialProg.String(), "speedup)") {
		t.Errorf("serial run should not print a speedup line")
	}
	if !strings.Contains(serialProg.String(), "(alpha in ") {
		t.Errorf("serial run missing per-experiment timing on progress writer:\n%s", serialProg.String())
	}
}

func TestRunAllPropagatesError(t *testing.T) {
	suite := fakeSuite()
	boom := errors.New("boom")
	suite[2].Run = func(w io.Writer, opt experiments.Options) error { return boom }
	for _, workers := range []int{-1, 8} {
		err := runAll(io.Discard, io.Discard, suite, experiments.Options{Parallel: workers}, "")
		if err == nil || !errors.Is(err, boom) {
			t.Errorf("Parallel=%d: want wrapped boom error, got %v", workers, err)
		}
		if err != nil && !strings.Contains(err.Error(), "gamma") {
			t.Errorf("Parallel=%d: error should name the failing experiment: %v", workers, err)
		}
	}
}

// TestArtifactBytesIdenticalAcrossWorkers runs two real, deterministic
// experiments at 1 and 8 workers and asserts the per-experiment JSON
// artifacts are byte-identical — the contract that lets CI golden-diff
// artifact directories regardless of machine size. manifest.json is
// excluded: it records worker count and wall time by design.
func TestArtifactBytesIdenticalAcrossWorkers(t *testing.T) {
	var suite []experiments.Experiment
	for _, id := range []string{"table3", "fig9"} {
		e, err := experiments.ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		suite = append(suite, e)
	}
	dirs := map[int]string{1: t.TempDir(), 8: t.TempDir()}
	for workers, dir := range dirs {
		opt := experiments.Options{Quick: true, Parallel: workers}
		if workers == 1 {
			opt.Parallel = -1
		}
		if err := runAll(io.Discard, io.Discard, suite, opt, dir); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
	}
	for _, e := range suite {
		name := e.ID + ".json"
		a, err := os.ReadFile(filepath.Join(dirs[1], name))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dirs[8], name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("%s differs between 1 and 8 workers:\n--- 1 ---\n%s\n--- 8 ---\n%s", name, a, b)
		}
		if len(a) == 0 || a[0] != '{' {
			t.Errorf("%s does not look like a JSON document", name)
		}
	}
	for _, dir := range dirs {
		if _, err := os.Stat(filepath.Join(dir, "manifest.json")); err != nil {
			t.Errorf("missing manifest.json: %v", err)
		}
	}
}

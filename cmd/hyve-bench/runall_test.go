package main

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/experiments"
	"repro/internal/obs"
)

// fakeSuite builds a registry-like slice whose runners write fixed
// bodies, with one Measured entry in the middle.
func fakeSuite() []experiments.Experiment {
	mk := func(id string, measured bool) experiments.Experiment {
		return experiments.Experiment{
			ID:    id,
			Title: "title " + id,
			Run: func(w io.Writer, opt experiments.Options) error {
				_, err := fmt.Fprintf(w, "body of %s\nsecond line\n", id)
				return err
			},
			Measured: measured,
		}
	}
	return []experiments.Experiment{
		mk("alpha", false), mk("beta", true), mk("gamma", false), mk("delta", false),
	}
}

// testLogger returns a logger capturing logfmt lines into the buffer at
// debug level, standing in for the binary's stderr logger.
func testLogger(buf *bytes.Buffer) *obs.Logger {
	return obs.NewLogger(buf, obs.LevelDebug)
}

func TestRunAllOrderAndDeterminism(t *testing.T) {
	suite := fakeSuite()
	var serial, par, serialProg, parProg bytes.Buffer
	if err := runAll(&serial, testLogger(&serialProg), suite, experiments.Options{Parallel: -1}, "", false); err != nil {
		t.Fatalf("serial runAll: %v", err)
	}
	if err := runAll(&par, testLogger(&parProg), suite, experiments.Options{Parallel: 8}, "", false); err != nil {
		t.Fatalf("parallel runAll: %v", err)
	}
	// With the timing annotations routed to the progress logger, stdout
	// must be byte-identical between serial and parallel runs.
	if got, want := par.String(), serial.String(); got != want {
		t.Errorf("parallel stdout bytes differ from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", want, got)
	}
	if strings.Contains(par.String(), "msg=run.summary") || strings.Contains(par.String(), "msg=experiment.done") {
		t.Errorf("timing annotations leaked into stdout:\n%s", par.String())
	}
	// Emission must follow registry order regardless of completion order.
	out := par.String()
	last := -1
	for _, e := range suite {
		at := strings.Index(out, "=== "+e.ID+":")
		if at < 0 {
			t.Fatalf("experiment %s missing from output", e.ID)
		}
		if at < last {
			t.Errorf("experiment %s emitted out of order", e.ID)
		}
		last = at
	}
	if !strings.Contains(parProg.String(), "msg=run.summary") || !strings.Contains(parProg.String(), "speedup=") {
		t.Errorf("parallel run missing run.summary with speedup on progress logger:\n%s", parProg.String())
	}
	if strings.Contains(serialProg.String(), "speedup=") {
		t.Errorf("serial run should not log a speedup")
	}
	if !strings.Contains(serialProg.String(), "msg=experiment.done id=alpha") {
		t.Errorf("serial run missing per-experiment timing on progress logger:\n%s", serialProg.String())
	}
	// Every progress line is well-formed logfmt: ts, level, msg fields.
	for _, line := range strings.Split(strings.TrimSpace(parProg.String()), "\n") {
		if !strings.HasPrefix(line, "ts=") || !strings.Contains(line, " level=") || !strings.Contains(line, " msg=") {
			t.Errorf("malformed logfmt line: %q", line)
		}
	}
}

func TestRunAllPropagatesError(t *testing.T) {
	suite := fakeSuite()
	boom := errors.New("boom")
	suite[2].Run = func(w io.Writer, opt experiments.Options) error { return boom }
	for _, workers := range []int{-1, 8} {
		err := runAll(io.Discard, nil, suite, experiments.Options{Parallel: workers}, "", false)
		if err == nil || !errors.Is(err, boom) {
			t.Errorf("Parallel=%d: want wrapped boom error, got %v", workers, err)
		}
		if err != nil && !strings.Contains(err.Error(), "gamma") {
			t.Errorf("Parallel=%d: error should name the failing experiment: %v", workers, err)
		}
	}
}

// TestArtifactBytesIdenticalAcrossWorkers runs two real, deterministic
// experiments at 1 and 8 workers and asserts the per-experiment JSON
// artifacts are byte-identical — the contract that lets CI golden-diff
// artifact directories regardless of machine size. manifest.json is
// excluded: it records worker count and wall time by design.
func TestArtifactBytesIdenticalAcrossWorkers(t *testing.T) {
	var suite []experiments.Experiment
	for _, id := range []string{"table3", "fig9", "reliability"} {
		e, err := experiments.ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		suite = append(suite, e)
	}
	dirs := map[int]string{1: t.TempDir(), 8: t.TempDir()}
	for workers, dir := range dirs {
		opt := experiments.Options{Quick: true, Parallel: workers}
		if workers == 1 {
			opt.Parallel = -1
		}
		if err := runAll(io.Discard, nil, suite, opt, dir, false); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
	}
	for _, e := range suite {
		name := e.ID + ".json"
		a, err := os.ReadFile(filepath.Join(dirs[1], name))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dirs[8], name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("%s differs between 1 and 8 workers:\n--- 1 ---\n%s\n--- 8 ---\n%s", name, a, b)
		}
		if len(a) == 0 || a[0] != '{' {
			t.Errorf("%s does not look like a JSON document", name)
		}
	}
	for _, dir := range dirs {
		if _, err := os.Stat(filepath.Join(dir, "manifest.json")); err != nil {
			t.Errorf("missing manifest.json: %v", err)
		}
	}
}

// TestRunAllResume is the crash-recovery contract: a run that died
// partway (simulated by a partial artifact directory containing one
// valid artifact, one truncated file, and one missing file) plus a
// -resume run must produce an artifact directory byte-identical to one
// uninterrupted run — and must not rerun the experiment whose artifact
// survived.
func TestRunAllResume(t *testing.T) {
	var suite []experiments.Experiment
	for _, id := range []string{"table3", "fig9", "fig14"} {
		e, err := experiments.ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		suite = append(suite, e)
	}
	opt := experiments.Options{Quick: true, Parallel: -1}

	// Reference: one uninterrupted run.
	full := t.TempDir()
	if err := runAll(io.Discard, nil, suite, opt, full, false); err != nil {
		t.Fatal(err)
	}

	// Crashed run: table3 completed, fig9 truncated mid-document (as if
	// written non-atomically by a killed process), fig14 never started.
	part := t.TempDir()
	table3, err := os.ReadFile(filepath.Join(full, "table3.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(part, "table3.json"), table3, 0o644); err != nil {
		t.Fatal(err)
	}
	fig9, err := os.ReadFile(filepath.Join(full, "fig9.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(part, "fig9.json"), fig9[:len(fig9)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	var progress bytes.Buffer
	if err := runAll(io.Discard, testLogger(&progress), suite, opt, part, true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(progress.String(), "msg=experiment.resumed id=table3") {
		t.Errorf("valid surviving artifact not skipped:\n%s", progress.String())
	}
	for _, bad := range []string{"msg=experiment.resumed id=fig9", "msg=experiment.resumed id=fig14"} {
		if strings.Contains(progress.String(), bad) {
			t.Errorf("damaged/missing artifact wrongly skipped: %s", bad)
		}
	}
	for _, e := range suite {
		name := e.ID + ".json"
		want, err := os.ReadFile(filepath.Join(full, name))
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(filepath.Join(part, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s differs between resumed and uninterrupted run", name)
		}
	}
}

func TestValidArtifactPredicate(t *testing.T) {
	dir := t.TempDir()
	if validArtifact(filepath.Join(dir, "absent.json"), "absent", "d1") {
		t.Error("missing file reported valid")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema":"hyve/artifact/v1","id":"bad"`), 0o644); err != nil {
		t.Fatal(err)
	}
	if validArtifact(bad, "bad", "d1") {
		t.Error("truncated file reported valid")
	}
	foreign := filepath.Join(dir, "foreign.json")
	if err := os.WriteFile(foreign, []byte(`{"hello":"world"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if validArtifact(foreign, "foreign", "d1") {
		t.Error("foreign JSON reported valid")
	}

	// A well-formed artifact is only valid against the exact options
	// digest it was produced under — the stale-artifact fix.
	good := filepath.Join(dir, "good.json")
	art := obs.NewArtifact("good", "a title", obs.Manifest{Digest: "d1"})
	if err := obs.WriteAtomic(good, art.EncodeJSON); err != nil {
		t.Fatal(err)
	}
	if !validArtifact(good, "good", "d1") {
		t.Error("matching artifact reported invalid")
	}
	if validArtifact(good, "good", "d2") {
		t.Error("artifact from different options digest reported valid")
	}
	if validArtifact(good, "other", "d1") {
		t.Error("artifact moved between ids reported valid")
	}

	// An artifact predating the digest field (Manifest.Digest empty)
	// never matches a real digest: pre-digest survivors rerun.
	old := filepath.Join(dir, "old.json")
	if err := obs.WriteAtomic(old, obs.NewArtifact("old", "t", obs.Manifest{}).EncodeJSON); err != nil {
		t.Fatal(err)
	}
	if validArtifact(old, "old", "d1") {
		t.Error("pre-digest artifact reported valid against a real digest")
	}
}

// TestResumeRejectsChangedOptions is the stale-artifact regression test:
// artifacts produced at one dataset scale/seed must not survive a
// -resume at another. Before the options digest, validArtifact accepted
// any well-formed artifact with the right id, so the resumed run would
// silently keep results computed from different graphs.
func TestResumeRejectsChangedOptions(t *testing.T) {
	var suite []experiments.Experiment
	for _, id := range []string{"table3", "fig9"} {
		e, err := experiments.ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		suite = append(suite, e)
	}
	opt := experiments.Options{Quick: true, Parallel: -1}
	dir := t.TempDir()
	if err := runAll(io.Discard, nil, suite, opt, dir, false); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(filepath.Join(dir, "table3.json"))
	if err != nil {
		t.Fatal(err)
	}

	// Same experiments, same directory — but the datasets are re-scaled
	// and re-seeded, exactly what `hyve-bench -resume -scale 2 -seed 7`
	// does.
	reseeded := opt
	reseeded.Datasets = scaledDatasets(true, 2, 7)
	var progress bytes.Buffer
	if err := runAll(io.Discard, testLogger(&progress), suite, reseeded, dir, true); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(progress.String(), "msg=experiment.resumed") {
		t.Errorf("artifact from different options was resumed:\n%s", progress.String())
	}
	after, err := os.ReadFile(filepath.Join(dir, "table3.json"))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(before, after) {
		t.Error("re-seeded run left the stale artifact bytes in place")
	}

	// A repeat resume under the same changed options now skips everything
	// and says so without a speedup line.
	progress.Reset()
	if err := runAll(io.Discard, testLogger(&progress), suite, reseeded, dir, true); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"msg=experiment.resumed id=table3", "msg=experiment.resumed id=fig9", "msg=run.reuse executed=0 reused=2"} {
		if !strings.Contains(progress.String(), want) {
			t.Errorf("repeat resume missing %q:\n%s", want, progress.String())
		}
	}
}

// TestColdWarmCacheByteIdentity is the end-to-end cache contract: a cold
// run through a disk-backed scheduler and a warm run through a fresh
// scheduler over the same store must produce byte-identical artifacts,
// and the warm run must execute zero simulation points.
func TestColdWarmCacheByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full quick sweep twice; skip under -short")
	}
	var suite []experiments.Experiment
	for _, id := range []string{"table3", "fig9", "fig14", "reliability"} {
		e, err := experiments.ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		suite = append(suite, e)
	}
	cacheDir := t.TempDir()
	coldDir, warmDir := t.TempDir(), t.TempDir()

	cold := cache.New(cache.Config{Dir: cacheDir})
	opt := experiments.Options{Quick: true, Parallel: 4, Cache: cold}
	if err := runAll(io.Discard, nil, suite, opt, coldDir, false); err != nil {
		t.Fatal(err)
	}
	if st := cold.Stats(); st.Executed == 0 {
		t.Fatalf("cold run executed nothing: %+v", st)
	}

	warm := cache.New(cache.Config{Dir: cacheDir})
	opt.Cache = warm
	if err := runAll(io.Discard, nil, suite, opt, warmDir, false); err != nil {
		t.Fatal(err)
	}
	st := warm.Stats()
	if st.Executed != 0 {
		t.Errorf("warm run re-executed %d points (stats %+v)", st.Executed, st)
	}
	if st.DiskHits == 0 && st.MemHits == 0 {
		t.Errorf("warm run hit nothing: %+v", st)
	}

	for _, e := range suite {
		name := e.ID + ".json"
		a, err := os.ReadFile(filepath.Join(coldDir, name))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(warmDir, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("%s differs between cold and warm cache runs", name)
		}
	}
}

// TestGoldenQuickArtifacts holds the current build to artifacts captured
// before the fault-injection layer existed: with the fault layer at its
// zero value, every experiment's canonical JSON must remain byte-for-
// byte what it was. Regenerate the goldens (only after an intentional
// output change) with:
//
//	go run ./cmd/hyve-bench -quick -run table3,fig9,fig14,fig16 \
//	    -artifact-dir cmd/hyve-bench/testdata/golden-quick
//	rm cmd/hyve-bench/testdata/golden-quick/manifest.json
func TestGoldenQuickArtifacts(t *testing.T) {
	if testing.Short() {
		t.Skip("quick sweep still simulates every config; skip under -short")
	}
	ids := []string{"table3", "fig9", "fig14", "fig16"}
	var suite []experiments.Experiment
	for _, id := range ids {
		e, err := experiments.ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		suite = append(suite, e)
	}
	dir := t.TempDir()
	if err := runAll(io.Discard, nil, suite, experiments.Options{Quick: true}, dir, false); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		got, err := os.ReadFile(filepath.Join(dir, id+".json"))
		if err != nil {
			t.Fatal(err)
		}
		want, err := os.ReadFile(filepath.Join("testdata", "golden-quick", id+".json"))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s.json drifted from the pre-fault-layer golden (%d vs %d bytes)", id, len(got), len(want))
		}
	}
}

package main

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"

	"repro/internal/experiments"
)

// fakeSuite builds a registry-like slice whose runners write fixed
// bodies, with one Measured entry in the middle.
func fakeSuite() []experiments.Experiment {
	mk := func(id string, measured bool) experiments.Experiment {
		return experiments.Experiment{
			ID:    id,
			Title: "title " + id,
			Run: func(w io.Writer, opt experiments.Options) error {
				_, err := fmt.Fprintf(w, "body of %s\nsecond line\n", id)
				return err
			},
			Measured: measured,
		}
	}
	return []experiments.Experiment{
		mk("alpha", false), mk("beta", true), mk("gamma", false), mk("delta", false),
	}
}

// artifactLines strips the run-to-run varying annotations — per-
// experiment "(id in 12ms)" footers and the closing wall-clock line —
// leaving only the deterministic artifact bytes.
func artifactLines(out string) string {
	var keep []string
	for _, l := range strings.Split(out, "\n") {
		if strings.HasPrefix(l, "(") || strings.HasPrefix(l, "wall clock ") {
			continue
		}
		keep = append(keep, l)
	}
	return strings.TrimRight(strings.Join(keep, "\n"), "\n")
}

func TestRunAllOrderAndDeterminism(t *testing.T) {
	suite := fakeSuite()
	var serial, par bytes.Buffer
	if err := runAll(&serial, suite, experiments.Options{Parallel: -1}); err != nil {
		t.Fatalf("serial runAll: %v", err)
	}
	if err := runAll(&par, suite, experiments.Options{Parallel: 8}); err != nil {
		t.Fatalf("parallel runAll: %v", err)
	}
	if got, want := artifactLines(par.String()), artifactLines(serial.String()); got != want {
		t.Errorf("parallel artifact bytes differ from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", want, got)
	}
	// Emission must follow registry order regardless of completion order.
	out := par.String()
	last := -1
	for _, e := range suite {
		at := strings.Index(out, "=== "+e.ID+":")
		if at < 0 {
			t.Fatalf("experiment %s missing from output", e.ID)
		}
		if at < last {
			t.Errorf("experiment %s emitted out of order", e.ID)
		}
		last = at
	}
	if !strings.Contains(out, "speedup)") {
		t.Errorf("parallel run missing speedup line:\n%s", out)
	}
	if strings.Contains(serial.String(), "speedup)") {
		t.Errorf("serial run should not print a speedup line")
	}
}

func TestRunAllPropagatesError(t *testing.T) {
	suite := fakeSuite()
	boom := errors.New("boom")
	suite[2].Run = func(w io.Writer, opt experiments.Options) error { return boom }
	for _, workers := range []int{-1, 8} {
		err := runAll(io.Discard, suite, experiments.Options{Parallel: workers})
		if err == nil || !errors.Is(err, boom) {
			t.Errorf("Parallel=%d: want wrapped boom error, got %v", workers, err)
		}
		if err != nil && !strings.Contains(err.Error(), "gamma") {
			t.Errorf("Parallel=%d: error should name the failing experiment: %v", workers, err)
		}
	}
}

package main

import (
	"strings"
	"testing"

	"repro/internal/experiments"
)

func TestSelectExperiments(t *testing.T) {
	all := experiments.All()
	if len(all) < 2 {
		t.Skip("registry too small to exercise selection")
	}
	a, b := all[0].ID, all[1].ID

	got, err := selectExperiments("")
	if err != nil || len(got) != len(all) {
		t.Fatalf("empty -run: got %d experiments, err %v; want all %d", len(got), err, len(all))
	}

	got, err = selectExperiments(b + ", " + a)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].ID != b || got[1].ID != a {
		t.Fatalf("order not preserved: %v", got)
	}

	// Empty items are tolerated, an all-empty list is not.
	got, err = selectExperiments(a + ",," + b + ",")
	if err != nil || len(got) != 2 {
		t.Fatalf("stray commas: got %d experiments, err %v", len(got), err)
	}
	if _, err := selectExperiments(","); err == nil {
		t.Error("all-empty -run selected something")
	}
}

func TestSelectExperimentsUnknown(t *testing.T) {
	_, err := selectExperiments("no-such-id")
	if err == nil {
		t.Fatal("unknown id accepted")
	}
	// The error must name at least one valid id so the user can recover.
	if !strings.Contains(err.Error(), experiments.All()[0].ID) {
		t.Errorf("error does not list valid ids: %v", err)
	}
}

func TestSelectExperimentsDuplicate(t *testing.T) {
	id := experiments.All()[0].ID
	_, err := selectExperiments(id + "," + id)
	if err == nil {
		t.Fatal("duplicate id accepted")
	}
	if !strings.Contains(err.Error(), id) || !strings.Contains(err.Error(), "twice") {
		t.Errorf("unhelpful duplicate error: %v", err)
	}
}

// Command hyve-perf turns raw `go test -bench` output into a canonical
// JSON benchmark artifact and compares two such artifacts.
//
// Usage:
//
//	go test -bench=. -benchmem -count=5 . | hyve-perf -o BENCH_pr4.json
//	hyve-perf -o BENCH_pr4.json bench.txt   # from a saved file
//	hyve-perf -compare BENCH_pr3.json BENCH_pr4.json
//
// The JSON is an array of benchmarks sorted by name, each with mean,
// min, and max over every aggregated run of ns/op and any extra
// reported metrics (B/op, allocs/op, edges/op, ...). Committing the
// artifact per PR gives the repo a tracked performance baseline without
// an external benchstat dependency.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
)

func main() {
	var (
		out         = flag.String("o", "", "write the JSON artifact here (default stdout)")
		compareMode = flag.Bool("compare", false, "compare two JSON artifacts: hyve-perf -compare old.json new.json")
	)
	flag.Parse()
	if err := run(*out, *compareMode, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "hyve-perf:", err)
		os.Exit(1)
	}
}

func run(out string, compareMode bool, args []string) error {
	if compareMode {
		if len(args) != 2 {
			return fmt.Errorf("-compare needs exactly two JSON artifacts, got %d", len(args))
		}
		old, err := loadArtifact(args[0])
		if err != nil {
			return err
		}
		new, err := loadArtifact(args[1])
		if err != nil {
			return err
		}
		compare(os.Stdout, old, new)
		return nil
	}

	var in io.Reader = os.Stdin
	if len(args) > 0 {
		f, err := os.Open(args[0])
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	benches, err := parseBench(in)
	if err != nil {
		return err
	}
	if len(benches) == 0 {
		return fmt.Errorf("no benchmark lines found in input")
	}
	data, err := json.MarshalIndent(benches, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(out, data, 0o644)
}

func loadArtifact(path string) ([]Benchmark, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var benches []Benchmark
	if err := json.Unmarshal(data, &benches); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return benches, nil
}

package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: repro
BenchmarkEdgeCentricIteration-8   	       5	   2000000 ns/op	     65536 edges/op	    1024 B/op	       3 allocs/op
BenchmarkEdgeCentricIteration-8   	       5	   1000000 ns/op	     65536 edges/op	    1024 B/op	       3 allocs/op
BenchmarkPartitionBuild-8         	       2	   5000000 ns/op	     65536 edges/op	  409600 B/op	      12 allocs/op
PASS
ok  	repro	1.234s
`

func TestParseBenchAggregates(t *testing.T) {
	benches, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 2 {
		t.Fatalf("got %d benchmarks, want 2", len(benches))
	}
	// Sorted by name: EdgeCentricIteration first.
	ec := benches[0]
	if ec.Name != "BenchmarkEdgeCentricIteration" {
		t.Fatalf("name = %q (GOMAXPROCS suffix must be stripped)", ec.Name)
	}
	if ec.Runs != 2 {
		t.Errorf("runs = %d, want 2", ec.Runs)
	}
	if ec.NsPerOp.Mean != 1.5e6 || ec.NsPerOp.Min != 1e6 || ec.NsPerOp.Max != 2e6 {
		t.Errorf("ns/op stat = %+v", ec.NsPerOp)
	}
	if got := ec.Metrics["edges/op"].Mean; got != 65536 {
		t.Errorf("edges/op = %v, want 65536", got)
	}
	if got := ec.Metrics["allocs/op"].Mean; got != 3 {
		t.Errorf("allocs/op = %v, want 3", got)
	}
	pb := benches[1]
	if pb.Name != "BenchmarkPartitionBuild" || pb.Runs != 1 {
		t.Errorf("second benchmark = %q runs %d", pb.Name, pb.Runs)
	}
}

func TestParseBenchRejectsGarbageValues(t *testing.T) {
	_, err := parseBench(strings.NewReader("BenchmarkX-8 5 oops ns/op\n"))
	if err == nil {
		t.Fatal("malformed value accepted")
	}
}

// TestCompareDisjointSets pins the union behavior of compare: a
// benchmark present on only one side is reported as "new" or "removed"
// — never dropped, and never rendered as a ±Inf/NaN delta from dividing
// by a missing baseline.
func TestCompareDisjointSets(t *testing.T) {
	old := []Benchmark{
		{Name: "BenchmarkGone", Runs: 1, NsPerOp: Stat{Mean: 100, Min: 100, Max: 100}},
		{Name: "BenchmarkShared", Runs: 1, NsPerOp: Stat{Mean: 200, Min: 200, Max: 200}},
		{Name: "BenchmarkZeroBase", Runs: 1, NsPerOp: Stat{Mean: 0}},
	}
	new := []Benchmark{
		{Name: "BenchmarkAdded", Runs: 1, NsPerOp: Stat{Mean: 50, Min: 50, Max: 50}},
		{Name: "BenchmarkShared", Runs: 1, NsPerOp: Stat{Mean: 300, Min: 300, Max: 300}},
		{Name: "BenchmarkZeroBase", Runs: 1, NsPerOp: Stat{Mean: 10, Min: 10, Max: 10}},
	}
	var buf bytes.Buffer
	compare(&buf, old, new)
	got := buf.String()
	for _, bad := range []string{"Inf", "NaN"} {
		if strings.Contains(got, bad) {
			t.Errorf("compare output contains %q:\n%s", bad, got)
		}
	}
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	if len(lines) != 5 { // header + 4 benchmarks in the union
		t.Fatalf("got %d lines, want 5:\n%s", len(lines), got)
	}
	wantRow := func(name string, marks ...string) {
		t.Helper()
		for _, l := range lines[1:] {
			if !strings.HasPrefix(l, name+" ") {
				continue
			}
			for _, m := range marks {
				if !strings.Contains(l, m) {
					t.Errorf("row for %s missing %q: %q", name, m, l)
				}
			}
			return
		}
		t.Errorf("no row for %s in:\n%s", name, got)
	}
	wantRow("BenchmarkAdded", "new", "-")
	wantRow("BenchmarkGone", "removed", "-")
	wantRow("BenchmarkShared", "+50.0%")
	wantRow("BenchmarkZeroBase", "n/a")
}

func TestRunWritesArtifactAndCompares(t *testing.T) {
	dir := t.TempDir()
	raw := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(raw, []byte(sampleBench), 0o644); err != nil {
		t.Fatal(err)
	}
	artifact := filepath.Join(dir, "BENCH.json")
	if err := run(artifact, false, []string{raw}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(artifact)
	if err != nil {
		t.Fatal(err)
	}
	var benches []Benchmark
	if err := json.Unmarshal(data, &benches); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if len(benches) != 2 {
		t.Fatalf("artifact has %d benchmarks, want 2", len(benches))
	}
	if err := run("", true, []string{artifact, artifact}); err != nil {
		t.Fatalf("self-compare failed: %v", err)
	}
	if err := run("", true, []string{artifact}); err == nil {
		t.Fatal("-compare with one file accepted")
	}
}

package main

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Stat summarizes repeated observations of one metric benchstat-style.
type Stat struct {
	Mean float64 `json:"mean"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

func newStat(samples []float64) Stat {
	s := Stat{Min: math.Inf(1), Max: math.Inf(-1)}
	for _, v := range samples {
		s.Mean += v
		s.Min = math.Min(s.Min, v)
		s.Max = math.Max(s.Max, v)
	}
	s.Mean /= float64(len(samples))
	return s
}

// Benchmark aggregates every run of one benchmark name.
type Benchmark struct {
	Name string `json:"name"`
	// Runs counts the aggregated `go test -bench` result lines (use
	// -count=N for N runs).
	Runs    int  `json:"runs"`
	NsPerOp Stat `json:"ns_per_op"`
	// Metrics holds the remaining reported units, e.g. "B/op",
	// "allocs/op", "edges/op".
	Metrics map[string]Stat `json:"metrics,omitempty"`
}

// parseBench reads `go test -bench` output and aggregates per-name
// statistics. Unrecognized lines are skipped, so raw test output can be
// piped in unfiltered.
func parseBench(r io.Reader) ([]Benchmark, error) {
	type samples struct {
		ns    []float64
		extra map[string][]float64
	}
	byName := map[string]*samples{}
	var order []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i] // strip the -GOMAXPROCS suffix
			}
		}
		s := byName[name]
		if s == nil {
			s = &samples{extra: map[string][]float64{}}
			byName[name] = s
			order = append(order, name)
		}
		// fields[1] is the iteration count; then "value unit" pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("hyve-perf: bad value %q on line %q", fields[i], sc.Text())
			}
			if fields[i+1] == "ns/op" {
				s.ns = append(s.ns, v)
			} else {
				s.extra[fields[i+1]] = append(s.extra[fields[i+1]], v)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	var out []Benchmark
	for _, name := range order {
		s := byName[name]
		if len(s.ns) == 0 {
			continue
		}
		b := Benchmark{Name: name, Runs: len(s.ns), NsPerOp: newStat(s.ns)}
		if len(s.extra) > 0 {
			b.Metrics = map[string]Stat{}
			for unit, vs := range s.extra {
				b.Metrics[unit] = newStat(vs)
			}
		}
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// compare renders an old-vs-new delta table over the union of both
// benchmark sets, benchstat-style: mean ns/op before, after, and the
// change. Benchmarks present on only one side are listed as "new" or
// "removed" rather than dropped (or worse, divided into ±Inf/NaN), so a
// renamed benchmark is visible instead of silently vanishing from the
// report.
func compare(w io.Writer, old, new []Benchmark) {
	oldBy := map[string]Benchmark{}
	for _, b := range old {
		oldBy[b.Name] = b
	}
	newBy := map[string]Benchmark{}
	for _, b := range new {
		newBy[b.Name] = b
	}
	names := make([]string, 0, len(oldBy)+len(newBy))
	for name := range oldBy {
		names = append(names, name)
	}
	for name := range newBy {
		if _, ok := oldBy[name]; !ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	fmt.Fprintf(w, "%-40s %15s %15s %9s\n", "name", "old ns/op", "new ns/op", "delta")
	for _, name := range names {
		o, inOld := oldBy[name]
		n, inNew := newBy[name]
		switch {
		case !inOld:
			fmt.Fprintf(w, "%-40s %15s %15.0f %9s\n", name, "-", n.NsPerOp.Mean, "new")
		case !inNew:
			fmt.Fprintf(w, "%-40s %15.0f %15s %9s\n", name, o.NsPerOp.Mean, "-", "removed")
		case !(o.NsPerOp.Mean > 0):
			// A zero (or unparseable-to-positive) baseline has no finite
			// relative delta; don't print ±Inf or NaN.
			fmt.Fprintf(w, "%-40s %15.0f %15.0f %9s\n", name, o.NsPerOp.Mean, n.NsPerOp.Mean, "n/a")
		default:
			delta := (n.NsPerOp.Mean - o.NsPerOp.Mean) / o.NsPerOp.Mean * 100
			fmt.Fprintf(w, "%-40s %15.0f %15.0f %+8.1f%%\n", name, o.NsPerOp.Mean, n.NsPerOp.Mean, delta)
		}
	}
}

// Command hyve-sim runs architecture simulations: one dataset/algorithm/
// configuration point, or a comma-separated sweep over any of the three,
// and prints the timing/energy report for each point.
//
// Usage:
//
//	hyve-sim -dataset YT -algo PR -config hyve-opt
//	hyve-sim -dataset TW -algo BFS -config sd -sram 4
//	hyve-sim -dataset YT,WK,LJ -algo PR,BFS -config hyve-opt,sd
//	hyve-sim -dataset YT -algo PR -config hyve-opt -json
//	hyve-sim -dataset YT -algo PR -config hyve-opt -result
//
// -result emits each point as its canonical hyve/result/v1 document —
// the exact bytes the result cache stores and hyve-serve returns for
// the same point, so `hyve-sim -result` output can be compared
// byte-for-byte against a served response (the serve-smoke CI gate does
// exactly that). It covers the five core configurations; the analytic
// graphr/cpu baselines have no result document.
//
// A sweep (more than one point) fans the points across a worker pool
// (-parallel, default GOMAXPROCS), buffers each point's report, and
// emits them in sweep order — dataset-major, then algorithm, then
// configuration — so the output is byte-identical at any worker count.
// A single point prints exactly what it always did, no headers added.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/algo"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/cpusim"
	"repro/internal/energy"
	"repro/internal/graph"
	"repro/internal/graphr"
	"repro/internal/obs"
	"repro/internal/parallel"
)

func main() {
	var (
		dataset = flag.String("dataset", "YT", "dataset (comma-separated to sweep): YT, WK, AS, LJ, TW")
		algon   = flag.String("algo", "PR", "algorithm (comma-separated to sweep): PR, BFS, CC, SSSP, SpMV")
		config  = flag.String("config", "hyve-opt", "configuration (comma-separated to sweep): hyve, hyve-opt, sd, dram, reram, graphr, cpu, cpu-opt")
		sramMB  = flag.Int64("sram", 2, "per-PU on-chip vertex memory in MB (accelerator configs)")
		verbose = flag.Bool("v", false, "print per-phase detail")
		par     = flag.Int("parallel", 0, "worker count for sweep points (0 = GOMAXPROCS, 1 = serial)")
		jsonOut = flag.Bool("json", false, "emit one canonical JSON artifact document per point instead of text")
		result  = flag.Bool("result", false, "emit each point's canonical hyve/result/v1 document (the result-cache and hyve-serve wire format)")
		prepDir = flag.String("prep-dir", "", "load datasets from hyve-prep v2 containers in this directory when present (bit-identical to generation; missing datasets are generated)")
	)
	flag.Parse()

	graph.SetPreparedDir(*prepDir)

	if *jsonOut && *result {
		fmt.Fprintln(os.Stderr, "hyve-sim: -json and -result are mutually exclusive")
		os.Exit(1)
	}
	mode := modeText
	switch {
	case *jsonOut:
		mode = modeArtifact
	case *result:
		mode = modeResult
	}
	if err := runSweep(os.Stdout, os.Stderr, splitList(*dataset), splitList(*algon), splitList(*config),
		*sramMB, *verbose, mode, *par); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// outputMode selects what runOne writes per point: the human report,
// the artifact document (-json), or the canonical result document
// (-result).
type outputMode int

const (
	modeText outputMode = iota
	modeArtifact
	modeResult
)

// splitList parses a comma-separated flag value, dropping empty items so
// "YT," and "YT" mean the same thing.
func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// runSweep runs the cross product of datasets × algorithms × configs.
// One point streams straight to w; a sweep computes every point into an
// index-addressed buffer (fanned across the worker pool) and emits them
// in order, closing with an aggregate-vs-wall-clock speedup line on
// progress (stderr in the binary) so w stays pipeable — in particular,
// -json output on w is a clean concatenation of JSON documents.
func runSweep(w, progress io.Writer, datasets, algos, configs []string, sramMB int64, verbose bool, mode outputMode, par int) error {
	if len(datasets) == 0 || len(algos) == 0 || len(configs) == 0 {
		return fmt.Errorf("hyve-sim: -dataset, -algo, and -config must each name at least one value")
	}
	n := len(datasets) * len(algos) * len(configs)
	if n == 1 {
		return runOne(w, datasets[0], algos[0], configs[0], sramMB, verbose, mode)
	}

	point := func(i int) (dataset, algon, config string) {
		perDataset := len(algos) * len(configs)
		return datasets[i/perDataset], algos[i/len(configs)%len(algos)], configs[i%len(configs)]
	}

	start := time.Now()
	bufs := make([]bytes.Buffer, n)
	elapsed := make([]time.Duration, n)
	workers := parallel.Workers(par)
	if par < 0 {
		workers = 1
	}
	err := parallel.ForEach(workers, n, func(i int) error {
		d, a, c := point(i)
		t0 := time.Now()
		if err := runOne(&bufs[i], d, a, c, sramMB, verbose, mode); err != nil {
			return fmt.Errorf("%s/%s/%s: %w", d, a, c, err)
		}
		elapsed[i] = time.Since(t0)
		return nil
	})
	if err != nil {
		return err
	}

	var aggregate time.Duration
	for i := 0; i < n; i++ {
		d, a, c := point(i)
		if mode == modeText {
			if i > 0 {
				fmt.Fprintln(w)
			}
			fmt.Fprintf(w, "--- %s %s %s ---\n", d, a, c)
		}
		if _, err := w.Write(bufs[i].Bytes()); err != nil {
			return err
		}
		aggregate += elapsed[i]
	}
	wall := time.Since(start)
	_, err = fmt.Fprintf(progress, "\n%d points: wall clock %v for %v of simulation time, %d workers (%.2fx speedup)\n",
		n, wall.Round(time.Millisecond), aggregate.Round(time.Millisecond), workers,
		aggregate.Seconds()/wall.Seconds())
	return err
}

func runOne(w io.Writer, dataset, algon, config string, sramMB int64, verbose bool, mode outputMode) error {
	d, err := graph.DatasetByName(dataset)
	if err != nil {
		return err
	}
	p, err := algo.ByName(algon)
	if err != nil {
		return err
	}
	wl, err := core.WorkloadFor(d, p)
	if err != nil {
		return err
	}
	if mode == modeText {
		fmt.Fprintf(w, "dataset %s (%s): %d vertices, %d edges (full scale %d/%d, 1/%d instance)\n",
			d.Name, d.Long, wl.Graph.NumVertices, wl.Graph.NumEdges(), d.FullVertices, d.FullEdges, d.Scale)
	}

	var rep *energy.Report
	var detail *core.Detail
	switch config {
	case "graphr":
		if mode == modeResult {
			return fmt.Errorf("hyve-sim: -result needs a core configuration; %q has no canonical result document", config)
		}
		r, err := graphr.Simulate(graphr.Default(), wl)
		if err != nil {
			return err
		}
		rep = &r.Report
		if mode == modeText {
			fmt.Fprintf(w, "GraphR: %d non-empty 8×8 blocks, Navg %.2f\n", r.Detail.NonEmptyBlocks, r.Detail.Navg)
		}
	case "cpu":
		if mode == modeResult {
			return fmt.Errorf("hyve-sim: -result needs a core configuration; %q has no canonical result document", config)
		}
		if rep, err = cpusim.Simulate(cpusim.NXgraph(), wl); err != nil {
			return err
		}
	case "cpu-opt":
		if mode == modeResult {
			return fmt.Errorf("hyve-sim: -result needs a core configuration; %q has no canonical result document", config)
		}
		if rep, err = cpusim.Simulate(cpusim.Galois(), wl); err != nil {
			return err
		}
	default:
		cfg, err := accConfig(config)
		if err != nil {
			return err
		}
		if cfg.UseOnChipSRAM {
			cfg.SRAMBytes = sramMB << 20
		}
		r, err := core.Simulate(cfg, wl)
		if err != nil {
			return err
		}
		if mode == modeResult {
			// The exact canonical document the result cache stores and
			// hyve-serve returns: byte-for-byte comparable across the
			// CLI, the store, and the wire.
			payload, err := cache.EncodeResult(r)
			if err != nil {
				return err
			}
			_, err = w.Write(payload)
			return err
		}
		rep = &r.Report
		detail = &r.Detail
	}

	if mode == modeArtifact {
		return writeJSONPoint(w, d, config, rep, detail)
	}

	fmt.Fprintf(w, "config:      %s\n", rep.Config)
	fmt.Fprintf(w, "iterations:  %d\n", rep.Iterations)
	fmt.Fprintf(w, "time:        %v\n", rep.Time)
	fmt.Fprintf(w, "energy:      %v\n", rep.Energy.Total())
	fmt.Fprintf(w, "avg power:   %v\n", rep.AvgPower())
	fmt.Fprintf(w, "throughput:  %.1f MTEPS\n", rep.MTEPS())
	fmt.Fprintf(w, "efficiency:  %.1f MTEPS/W\n", rep.MTEPSPerWatt())
	fmt.Fprintf(w, "breakdown:   %v\n", &rep.Energy)

	if verbose && detail != nil {
		fmt.Fprintf(w, "\nP=%d intervals, %d×%d super blocks, %d iterations\n",
			detail.P, detail.SuperBlockSide, detail.SuperBlockSide, detail.Iterations)
		fmt.Fprintf(w, "per-iteration: load %v, process %v, writeback %v, overhead %v\n",
			detail.LoadTime, detail.ProcessTime, detail.WritebackTime, detail.OverheadTime)
		fmt.Fprintf(w, "off-chip vertex bytes/iter: src %d, dst %d, writeback %d\n",
			detail.SrcLoadBytes, detail.DstLoadBytes, detail.WritebackBytes)
		if detail.Gate.Transitions > 0 {
			fmt.Fprintf(w, "power gating: %d transitions, saved %v\n",
				detail.Gate.Transitions, detail.Gate.UngatedEnergy-detail.Gate.GatedEnergy)
		}
	}
	return nil
}

// writeJSONPoint emits one simulation point as a canonical artifact
// document: the dataset pinned in the manifest, the report's headline
// numbers (and, when the core simulator ran, its per-phase detail) as
// named metrics, and the per-component energy breakdown.
func writeJSONPoint(w io.Writer, d graph.Dataset, config string, rep *energy.Report, detail *core.Detail) error {
	art := obs.NewArtifact(
		fmt.Sprintf("%s-%s-%s", d.Name, rep.Algorithm, config),
		fmt.Sprintf("%s on %s under %s", rep.Algorithm, d.Name, rep.Config),
		obs.Manifest{Datasets: []obs.DatasetRef{{
			Name: d.Name, Long: d.Long, Scale: d.Scale, Seed: d.Seed,
			FullVertices: d.FullVertices, FullEdges: d.FullEdges,
		}}})
	art.AddMetric("iterations", float64(rep.Iterations), "")
	art.AddMetric("time", rep.Time.Seconds(), "s")
	art.AddMetric("energy", rep.Energy.Total().Joules(), "J")
	art.AddMetric("avg_power", rep.AvgPower().Watts(), "W")
	art.AddMetric("throughput", rep.MTEPS(), "MTEPS")
	art.AddMetric("efficiency", rep.MTEPSPerWatt(), "MTEPS/W")
	for _, c := range energy.Components() {
		if e := rep.Energy.Get(c); e > 0 {
			art.AddMetric("energy."+c.String(), e.Joules(), "J")
		}
	}
	if detail != nil {
		art.AddMetric("detail.p", float64(detail.P), "")
		art.AddMetric("detail.load_time", detail.LoadTime.Seconds(), "s/iter")
		art.AddMetric("detail.process_time", detail.ProcessTime.Seconds(), "s/iter")
		art.AddMetric("detail.writeback_time", detail.WritebackTime.Seconds(), "s/iter")
		art.AddMetric("detail.overhead_time", detail.OverheadTime.Seconds(), "s/iter")
		if detail.Gate.Transitions > 0 {
			art.AddMetric("detail.gate_transitions", float64(detail.Gate.Transitions), "")
			art.AddMetric("detail.gate_saved_energy",
				(detail.Gate.UngatedEnergy - detail.Gate.GatedEnergy).Joules(), "J")
		}
	}
	return art.EncodeJSON(w)
}

func accConfig(name string) (core.Config, error) {
	switch name {
	case "hyve":
		return core.HyVE(), nil
	case "hyve-opt":
		return core.HyVEOpt(), nil
	case "sd":
		return core.SRAMDRAM(), nil
	case "dram":
		return core.AccDRAM(), nil
	case "reram":
		return core.AccReRAM(), nil
	}
	return core.Config{}, fmt.Errorf("unknown config %q (want hyve, hyve-opt, sd, dram, reram, graphr, cpu, cpu-opt)", name)
}

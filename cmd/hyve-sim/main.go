// Command hyve-sim runs a single architecture simulation: one dataset,
// one algorithm, one memory-hierarchy configuration, and prints the
// timing/energy report.
//
// Usage:
//
//	hyve-sim -dataset YT -algo PR -config hyve-opt
//	hyve-sim -dataset TW -algo BFS -config sd -sram 4
//	hyve-sim -dataset LJ -algo SSSP -config graphr
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/algo"
	"repro/internal/core"
	"repro/internal/cpusim"
	"repro/internal/energy"
	"repro/internal/graph"
	"repro/internal/graphr"
)

func main() {
	var (
		dataset = flag.String("dataset", "YT", "dataset: YT, WK, AS, LJ, TW")
		algon   = flag.String("algo", "PR", "algorithm: PR, BFS, CC, SSSP, SpMV")
		config  = flag.String("config", "hyve-opt", "configuration: hyve, hyve-opt, sd, dram, reram, graphr, cpu, cpu-opt")
		sramMB  = flag.Int64("sram", 2, "per-PU on-chip vertex memory in MB (accelerator configs)")
		verbose = flag.Bool("v", false, "print per-phase detail")
	)
	flag.Parse()

	if err := runOne(*dataset, *algon, *config, *sramMB, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func runOne(dataset, algon, config string, sramMB int64, verbose bool) error {
	d, err := graph.DatasetByName(dataset)
	if err != nil {
		return err
	}
	p, err := algo.ByName(algon)
	if err != nil {
		return err
	}
	w, err := core.WorkloadFor(d, p)
	if err != nil {
		return err
	}
	fmt.Printf("dataset %s (%s): %d vertices, %d edges (full scale %d/%d, 1/%d instance)\n",
		d.Name, d.Long, w.Graph.NumVertices, w.Graph.NumEdges(), d.FullVertices, d.FullEdges, d.Scale)

	var rep *energy.Report
	var detail *core.Detail
	switch config {
	case "graphr":
		r, err := graphr.Simulate(graphr.Default(), w)
		if err != nil {
			return err
		}
		rep = &r.Report
		fmt.Printf("GraphR: %d non-empty 8×8 blocks, Navg %.2f\n", r.Detail.NonEmptyBlocks, r.Detail.Navg)
	case "cpu":
		if rep, err = cpusim.Simulate(cpusim.NXgraph(), w); err != nil {
			return err
		}
	case "cpu-opt":
		if rep, err = cpusim.Simulate(cpusim.Galois(), w); err != nil {
			return err
		}
	default:
		cfg, err := accConfig(config)
		if err != nil {
			return err
		}
		if cfg.UseOnChipSRAM {
			cfg.SRAMBytes = sramMB << 20
		}
		r, err := core.Simulate(cfg, w)
		if err != nil {
			return err
		}
		rep = &r.Report
		detail = &r.Detail
	}

	fmt.Printf("config:      %s\n", rep.Config)
	fmt.Printf("iterations:  %d\n", rep.Iterations)
	fmt.Printf("time:        %v\n", rep.Time)
	fmt.Printf("energy:      %v\n", rep.Energy.Total())
	fmt.Printf("avg power:   %v\n", rep.AvgPower())
	fmt.Printf("throughput:  %.1f MTEPS\n", rep.MTEPS())
	fmt.Printf("efficiency:  %.1f MTEPS/W\n", rep.MTEPSPerWatt())
	fmt.Printf("breakdown:   %v\n", &rep.Energy)

	if verbose && detail != nil {
		fmt.Printf("\nP=%d intervals, %d×%d super blocks, %d iterations\n",
			detail.P, detail.SuperBlockSide, detail.SuperBlockSide, detail.Iterations)
		fmt.Printf("per-iteration: load %v, process %v, writeback %v, overhead %v\n",
			detail.LoadTime, detail.ProcessTime, detail.WritebackTime, detail.OverheadTime)
		fmt.Printf("off-chip vertex bytes/iter: src %d, dst %d, writeback %d\n",
			detail.SrcLoadBytes, detail.DstLoadBytes, detail.WritebackBytes)
		if detail.Gate.Transitions > 0 {
			fmt.Printf("power gating: %d transitions, saved %v\n",
				detail.Gate.Transitions, detail.Gate.UngatedEnergy-detail.Gate.GatedEnergy)
		}
	}
	return nil
}

func accConfig(name string) (core.Config, error) {
	switch name {
	case "hyve":
		return core.HyVE(), nil
	case "hyve-opt":
		return core.HyVEOpt(), nil
	case "sd":
		return core.SRAMDRAM(), nil
	case "dram":
		return core.AccDRAM(), nil
	case "reram":
		return core.AccReRAM(), nil
	}
	return core.Config{}, fmt.Errorf("unknown config %q (want hyve, hyve-opt, sd, dram, reram, graphr, cpu, cpu-opt)", name)
}

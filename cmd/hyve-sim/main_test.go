package main

import "testing"

func TestAccConfig(t *testing.T) {
	for _, name := range []string{"hyve", "hyve-opt", "sd", "dram", "reram"} {
		cfg, err := accConfig(name)
		if err != nil {
			t.Errorf("accConfig(%s): %v", name, err)
			continue
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("accConfig(%s) invalid: %v", name, err)
		}
	}
	if _, err := accConfig("nope"); err == nil {
		t.Error("unknown config accepted")
	}
}

func TestRunOneSmokesEveryConfig(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation smoke test")
	}
	for _, config := range []string{"hyve-opt", "sd", "graphr", "cpu", "cpu-opt"} {
		if err := runOne("YT", "PR", config, 2, true); err != nil {
			t.Errorf("runOne(YT, PR, %s): %v", config, err)
		}
	}
	if err := runOne("nope", "PR", "hyve", 2, false); err == nil {
		t.Error("unknown dataset accepted")
	}
	if err := runOne("YT", "nope", "hyve", 2, false); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

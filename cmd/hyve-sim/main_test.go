package main

import (
	"bytes"
	"encoding/json"
	"io"
	"reflect"
	"strings"
	"testing"

	"repro/internal/algo"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/graph"
)

func TestAccConfig(t *testing.T) {
	for _, name := range []string{"hyve", "hyve-opt", "sd", "dram", "reram"} {
		cfg, err := accConfig(name)
		if err != nil {
			t.Errorf("accConfig(%s): %v", name, err)
			continue
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("accConfig(%s) invalid: %v", name, err)
		}
	}
	if _, err := accConfig("nope"); err == nil {
		t.Error("unknown config accepted")
	}
}

func TestSplitList(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want []string
	}{
		{"YT", []string{"YT"}},
		{"YT,WK,LJ", []string{"YT", "WK", "LJ"}},
		{"YT, WK", []string{"YT", "WK"}},
		{"YT,", []string{"YT"}},
		{"", nil},
	} {
		if got := splitList(tc.in); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("splitList(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestRunOneSmokesEveryConfig(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation smoke test")
	}
	for _, config := range []string{"hyve-opt", "sd", "graphr", "cpu", "cpu-opt"} {
		if err := runOne(io.Discard, "YT", "PR", config, 2, true, modeText); err != nil {
			t.Errorf("runOne(YT, PR, %s): %v", config, err)
		}
	}
	if err := runOne(io.Discard, "nope", "PR", "hyve", 2, false, modeText); err == nil {
		t.Error("unknown dataset accepted")
	}
	if err := runOne(io.Discard, "YT", "nope", "hyve", 2, false, modeText); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

// TestRunOneJSON checks -json emits a decodable artifact document with
// the headline metrics, for both the core simulator and a baseline.
func TestRunOneJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation smoke test")
	}
	for _, config := range []string{"hyve-opt", "graphr"} {
		var buf bytes.Buffer
		if err := runOne(&buf, "YT", "PR", config, 2, false, modeArtifact); err != nil {
			t.Fatalf("runOne(YT, PR, %s, json): %v", config, err)
		}
		var doc struct {
			Schema  string `json:"schema"`
			ID      string `json:"id"`
			Metrics []struct {
				Name  string  `json:"name"`
				Value float64 `json:"value"`
			} `json:"metrics"`
		}
		if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
			t.Fatalf("config %s: output is not valid JSON: %v\n%s", config, err, buf.String())
		}
		if doc.Schema == "" || doc.ID == "" {
			t.Errorf("config %s: missing schema/id in %s", config, buf.String())
		}
		found := false
		for _, m := range doc.Metrics {
			if m.Name == "efficiency" && m.Value > 0 {
				found = true
			}
		}
		if !found {
			t.Errorf("config %s: no positive efficiency metric in %s", config, buf.String())
		}
	}
}

// TestRunOneResult checks -result emits exactly the canonical
// hyve/result/v1 document of a direct core.Simulate — the byte-identity
// the serve-smoke gate compares against hyve-serve responses.
func TestRunOneResult(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation smoke test")
	}
	var buf bytes.Buffer
	if err := runOne(&buf, "YT", "PR", "sd", 2, false, modeResult); err != nil {
		t.Fatalf("runOne(YT, PR, sd, result): %v", err)
	}
	d, err := graph.DatasetByName("YT")
	if err != nil {
		t.Fatal(err)
	}
	p, err := algo.ByName("PR")
	if err != nil {
		t.Fatal(err)
	}
	wl, err := core.WorkloadFor(d, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Simulate(core.SRAMDRAM(), wl)
	if err != nil {
		t.Fatal(err)
	}
	want, err := cache.EncodeResult(res)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("-result output is not the canonical document:\ngot  %.120s\nwant %.120s", buf.Bytes(), want)
	}
	if _, err := cache.DecodeResult(buf.Bytes()); err != nil {
		t.Errorf("-result output does not decode: %v", err)
	}
	if err := runOne(io.Discard, "YT", "PR", "graphr", 2, false, modeResult); err == nil {
		t.Error("-result accepted a baseline config with no canonical document")
	}
}

// TestRunSweepDeterministic checks the sweep contract: a multi-point run
// emits every point in dataset-major order and produces the same
// per-point bytes at one worker and many.
func TestRunSweepDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation smoke test")
	}
	datasets := []string{"YT", "WK"}
	algos := []string{"PR", "BFS"}
	configs := []string{"hyve-opt", "sd"}
	var serial, par, serialProg, parProg bytes.Buffer
	if err := runSweep(&serial, &serialProg, datasets, algos, configs, 2, false, modeText, -1); err != nil {
		t.Fatalf("serial sweep: %v", err)
	}
	if err := runSweep(&par, &parProg, datasets, algos, configs, 2, false, modeText, 8); err != nil {
		t.Fatalf("parallel sweep: %v", err)
	}
	// With the summary line routed to the progress writer, stdout must be
	// byte-identical between serial and parallel sweeps.
	if got, want := par.String(), serial.String(); got != want {
		t.Errorf("parallel sweep output differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", want, got)
	}
	// Dataset-major emission order.
	out := serial.String()
	prev := -1
	for _, d := range datasets {
		for _, a := range algos {
			for _, c := range configs {
				head := "--- " + d + " " + a + " " + c + " ---"
				at := strings.Index(out, head)
				if at < 0 {
					t.Fatalf("missing point header %q", head)
				}
				if at < prev {
					t.Errorf("point %q emitted out of order", head)
				}
				prev = at
			}
		}
	}
	if !strings.Contains(serialProg.String(), "8 points:") {
		t.Errorf("sweep summary line missing from progress output:\n%s", serialProg.String())
	}
	if strings.Contains(out, "8 points:") {
		t.Errorf("sweep summary line leaked into stdout:\n%s", out)
	}
}

func TestRunSweepSinglePointUnchanged(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation smoke test")
	}
	var single, direct bytes.Buffer
	if err := runSweep(&single, io.Discard, []string{"YT"}, []string{"PR"}, []string{"hyve-opt"}, 2, false, modeText, 8); err != nil {
		t.Fatalf("single-point sweep: %v", err)
	}
	if err := runOne(&direct, "YT", "PR", "hyve-opt", 2, false, modeText); err != nil {
		t.Fatalf("runOne: %v", err)
	}
	if single.String() != direct.String() {
		t.Errorf("single-point sweep output differs from direct runOne:\n--- sweep ---\n%s\n--- direct ---\n%s",
			single.String(), direct.String())
	}
	if err := runSweep(io.Discard, io.Discard, nil, []string{"PR"}, []string{"hyve"}, 2, false, modeText, 0); err == nil {
		t.Error("empty dataset list accepted")
	}
}

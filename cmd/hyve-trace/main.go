// Command hyve-trace dumps the HyVE controller's off-chip access trace
// for one iteration of Algorithm 2 — every edge-block read and vertex
// interval transfer with byte-exact addresses against the §3.4 memory
// images — as CSV, JSON lines, a summary, or a Chrome trace_event
// timeline of the whole iteration (PU tracks, edge-memory bank
// awake/asleep spans, router activity) loadable in chrome://tracing or
// Perfetto.
//
// Usage:
//
//	hyve-trace -dataset YT -algo PR -config hyve-opt -format summary
//	hyve-trace -dataset WK -algo BFS -format csv -limit 100 > trace.csv
//	hyve-trace -dataset YT -algo PR -format jsonl -limit 100
//	hyve-trace -dataset YT -algo PR -config hyve-opt -format timeline > it.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/algo"
	"repro/internal/core"
	"repro/internal/graph"
)

func main() {
	var (
		dataset = flag.String("dataset", "YT", "dataset: YT, WK, AS, LJ, TW")
		algon   = flag.String("algo", "PR", "algorithm: PR, BFS, CC, SSSP, SpMV")
		config  = flag.String("config", "hyve-opt", "configuration: hyve, hyve-opt, sd")
		format  = flag.String("format", "summary", "output: csv, jsonl, summary, or timeline (catapult JSON)")
		limit   = flag.Int64("limit", 0, "emit at most this many csv/jsonl records (0 = all)")
	)
	flag.Parse()
	if err := run(os.Stdout, *dataset, *algon, *config, *format, *limit); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(w io.Writer, dataset, algon, config, format string, limit int64) error {
	d, err := graph.DatasetByName(dataset)
	if err != nil {
		return err
	}
	prog, err := algo.ByName(algon)
	if err != nil {
		return err
	}
	wl, err := core.WorkloadFor(d, prog)
	if err != nil {
		return err
	}
	var cfg core.Config
	switch config {
	case "hyve":
		cfg = core.HyVE()
	case "hyve-opt":
		cfg = core.HyVEOpt()
	case "sd":
		cfg = core.SRAMDRAM()
	default:
		return fmt.Errorf("unknown config %q (tracing needs the on-chip hierarchy: hyve, hyve-opt, sd)", config)
	}

	switch format {
	case "csv":
		return dumpCSV(w, cfg, wl, limit)
	case "jsonl":
		return dumpJSONL(w, cfg, wl, limit)
	case "summary":
		return summarize(w, cfg, wl)
	case "timeline":
		return dumpTimeline(w, cfg, wl)
	default:
		return fmt.Errorf("unknown format %q (want csv, jsonl, summary, or timeline)", format)
	}
}

func dumpCSV(w io.Writer, cfg core.Config, wl core.Workload, limit int64) error {
	fmt.Fprintln(w, "kind,addr,bytes,pu,blockx,blocky,interval,sbx,sby,step")
	var emitted int64
	return core.TraceIteration(cfg, wl, func(a core.Access) {
		if limit > 0 && emitted >= limit {
			return
		}
		emitted++
		fmt.Fprintf(w, "%s,%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
			a.Kind, a.Addr, a.Bytes, a.PU, a.BlockX, a.BlockY, a.Interval,
			a.SuperBlockX, a.SuperBlockY, a.Step)
	})
}

// dumpJSONL emits one JSON object per access record, honoring limit the
// same way dumpCSV does. Field names match the CSV header.
func dumpJSONL(w io.Writer, cfg core.Config, wl core.Workload, limit int64) error {
	type rec struct {
		Kind     string `json:"kind"`
		Addr     int64  `json:"addr"`
		Bytes    int64  `json:"bytes"`
		PU       int    `json:"pu"`
		BlockX   int    `json:"blockx"`
		BlockY   int    `json:"blocky"`
		Interval int    `json:"interval"`
		SBX      int    `json:"sbx"`
		SBY      int    `json:"sby"`
		Step     int    `json:"step"`
	}
	enc := json.NewEncoder(w)
	var emitted int64
	var encErr error
	err := core.TraceIteration(cfg, wl, func(a core.Access) {
		if encErr != nil || (limit > 0 && emitted >= limit) {
			return
		}
		emitted++
		encErr = enc.Encode(rec{
			Kind: a.Kind.String(), Addr: a.Addr, Bytes: a.Bytes, PU: a.PU,
			BlockX: a.BlockX, BlockY: a.BlockY, Interval: a.Interval,
			SBX: a.SuperBlockX, SBY: a.SuperBlockY, Step: a.Step,
		})
	})
	if err != nil {
		return err
	}
	return encErr
}

// dumpTimeline renders one full iteration as a Chrome trace_event
// (catapult) JSON document: one track per PU, per touched edge-memory
// bank, and for the router when data sharing is on.
func dumpTimeline(w io.Writer, cfg core.Config, wl core.Workload) error {
	tl, err := core.BuildTimeline(cfg, wl)
	if err != nil {
		return err
	}
	return tl.WriteCatapult(w, fmt.Sprintf("%s %s on %s", cfg.Name, wl.Program.Name(), wl.DatasetName))
}

func summarize(w io.Writer, cfg core.Config, wl core.Workload) error {
	type agg struct {
		count int64
		bytes int64
	}
	byKind := map[core.AccessKind]*agg{}
	var total agg
	err := core.TraceIteration(cfg, wl, func(a core.Access) {
		k := byKind[a.Kind]
		if k == nil {
			k = &agg{}
			byKind[a.Kind] = k
		}
		k.count++
		k.bytes += a.Bytes
		total.count++
		total.bytes += a.Bytes
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "trace of one %s iteration on %s under %s\n", wl.Program.Name(), wl.DatasetName, cfg.Name)
	for _, kind := range []core.AccessKind{0, 1, 2, 3} {
		if k := byKind[kind]; k != nil {
			fmt.Fprintf(w, "  %-16s %10d accesses  %14d bytes\n", kind, k.count, k.bytes)
		}
	}
	fmt.Fprintf(w, "  %-16s %10d accesses  %14d bytes\n", "total", total.count, total.bytes)
	return nil
}

package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestSummary(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "YT", "PR", "hyve-opt", "summary", 0); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"edge-block-read", "source-load", "dest-load", "dest-writeback", "total"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestCSVLimit(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "YT", "BFS", "hyve", "csv", 10); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 11 { // header + 10 rows
		t.Errorf("got %d lines, want 11", len(lines))
	}
	if !strings.HasPrefix(lines[0], "kind,addr,bytes") {
		t.Errorf("bad header: %s", lines[0])
	}
	if !strings.Contains(lines[1], ",") {
		t.Errorf("bad row: %s", lines[1])
	}
}

func TestBadArgs(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "nope", "PR", "hyve", "summary", 0); err == nil {
		t.Error("unknown dataset accepted")
	}
	if err := run(&buf, "YT", "nope", "hyve", "summary", 0); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if err := run(&buf, "YT", "PR", "dram", "summary", 0); err == nil {
		t.Error("SRAM-less config accepted for tracing")
	}
	if err := run(&buf, "YT", "PR", "hyve", "nope", 0); err == nil {
		t.Error("unknown format accepted")
	}
}

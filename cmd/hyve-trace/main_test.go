package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestSummary(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "YT", "PR", "hyve-opt", "summary", 0); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"edge-block-read", "source-load", "dest-load", "dest-writeback", "total"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestCSVLimit(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "YT", "BFS", "hyve", "csv", 10); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 11 { // header + 10 rows
		t.Errorf("got %d lines, want 11", len(lines))
	}
	if !strings.HasPrefix(lines[0], "kind,addr,bytes") {
		t.Errorf("bad header: %s", lines[0])
	}
	if !strings.Contains(lines[1], ",") {
		t.Errorf("bad row: %s", lines[1])
	}
}

// TestLimitHonored checks -limit caps the record count for both row
// formats, and that every jsonl line is an independent JSON object.
func TestLimitHonored(t *testing.T) {
	for _, format := range []string{"csv", "jsonl"} {
		var buf bytes.Buffer
		if err := run(&buf, "YT", "BFS", "hyve", format, 10); err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
		want := 10
		if format == "csv" {
			want++ // header row
		}
		if len(lines) != want {
			t.Errorf("%s: got %d lines, want %d", format, len(lines), want)
		}
		if format == "jsonl" {
			for i, l := range lines {
				var rec map[string]any
				if err := json.Unmarshal([]byte(l), &rec); err != nil {
					t.Fatalf("jsonl line %d is not valid JSON: %v\n%s", i, err, l)
				}
				for _, field := range []string{"kind", "addr", "bytes", "step"} {
					if _, ok := rec[field]; !ok {
						t.Errorf("jsonl line %d missing %q: %s", i, field, l)
					}
				}
			}
		}
	}
}

// TestTimelineIsValidCatapult checks -format timeline emits a document
// chrome://tracing accepts: a traceEvents array of metadata and complete
// events with the expected tracks.
func TestTimelineIsValidCatapult(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "YT", "PR", "hyve-opt", "timeline", 0); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  *float64       `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("timeline is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("timeline has no events")
	}
	tracks := map[string]bool{}
	var spans int
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			if e.Name == "thread_name" {
				tracks[e.Args["name"].(string)] = true
			}
		case "X":
			spans++
			if e.Dur == nil || *e.Dur < 0 || e.TS < 0 {
				t.Errorf("complete event %q has bad ts/dur", e.Name)
			}
		default:
			t.Errorf("unexpected event phase %q", e.Ph)
		}
	}
	if spans == 0 {
		t.Error("timeline has no complete (X) events")
	}
	for _, want := range []string{"controller", "PU 0", "router"} {
		if !tracks[want] {
			t.Errorf("missing track %q (have %v)", want, tracks)
		}
	}
	bank := false
	for name := range tracks {
		if strings.HasPrefix(name, "edge-bank ") {
			bank = true
		}
	}
	if !bank {
		t.Errorf("no edge-memory bank track under hyve-opt (have %v)", tracks)
	}
}

func TestBadArgs(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "nope", "PR", "hyve", "summary", 0); err == nil {
		t.Error("unknown dataset accepted")
	}
	if err := run(&buf, "YT", "nope", "hyve", "summary", 0); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if err := run(&buf, "YT", "PR", "dram", "summary", 0); err == nil {
		t.Error("SRAM-less config accepted for tracing")
	}
	if err := run(&buf, "YT", "PR", "hyve", "nope", 0); err == nil {
		t.Error("unknown format accepted")
	}
}

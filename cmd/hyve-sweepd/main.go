// Command hyve-sweepd coordinates a distributed simulation sweep: it
// cuts the dataset × algorithm × configuration cross product into
// shards, leases shard ranges to hyve-worker processes over a
// length-framed CRC-checked TCP protocol, merges the returned canonical
// hyve/result/v1 documents by point index, and writes one artifact —
// byte-identical to `hyve-sim -result` over the same sweep, at any
// worker count, under any worker failure the lease machinery can
// absorb.
//
// Usage:
//
//	hyve-sweepd -listen :9631 -dataset YT,WK -algo PR,BFS -config hyve-opt,sd -out merged.jsonl
//	hyve-sweepd -dataset YT -algo PR -config hyve-opt -out merged.jsonl   # no listener: pure local
//	hyve-sweepd -listen :9631 -local=false ...                            # remote workers only
//
// Fault tolerance is the point: a worker that dies, stalls, trickles
// bytes, or returns corrupt payloads loses its leases, and the shards
// are reassigned — to other workers, or to the coordinator's own local
// executor when none are live (unless -local=false). A shard that
// distinct workers keep failing is quarantined as poisoned and the
// sweep exits nonzero rather than wedging. Progress and the full
// hyve_cluster_* metric families are served on -pprof; -linger holds
// the metrics endpoint open after completion so harnesses can scrape
// final counters.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cache"
	"repro/internal/cluster"
	"repro/internal/cluster/jobs"
	"repro/internal/graph"
	"repro/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("hyve-sweepd", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	var (
		listen      = fs.String("listen", "", "accept hyve-worker connections on this address (empty = no listener, pure local execution)")
		dataset     = fs.String("dataset", "YT", "datasets to sweep (comma-separated)")
		algon       = fs.String("algo", "PR", "algorithms to sweep (comma-separated)")
		config      = fs.String("config", "hyve-opt", "configurations to sweep (comma-separated; core configs only)")
		sramMB      = fs.Int64("sram", 2, "per-PU on-chip vertex memory in MB (accelerator configs)")
		out         = fs.String("out", "", "write the merged artifact here (atomic rename); empty = stdout")
		shardSize   = fs.Int("shard", cluster.DefaultShardSize, "points per lease")
		leaseTTL    = fs.Duration("lease-ttl", cluster.DefaultLeaseTTL, "lease lifetime without a heartbeat or merged result")
		heartbeat   = fs.Duration("heartbeat", 0, "heartbeat interval workers are told to use (0 = lease-ttl/4)")
		poisonAfter = fs.Int("poison-after", cluster.DefaultPoisonAfter, "quarantine a shard after this many distinct workers fail it")
		local       = fs.Bool("local", true, "execute shards locally whenever no workers are live (degradation path)")
		cacheDir    = fs.String("cache-dir", "", "share the on-disk content-addressed result cache rooted here")
		prepDir     = fs.String("prep-dir", "", "load datasets from hyve-prep v2 containers in this directory when present")
		pprof       = fs.String("pprof", "", "serve pprof, /metrics, /debug/flight on this address (e.g. :6060)")
		linger      = fs.Duration("linger", 0, "keep serving -pprof this long after the sweep completes (metrics scrape window)")
		verbose     = fs.Bool("v", false, "log lease traffic")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "hyve-sweepd: unexpected arguments %q\n", fs.Args())
		return 2
	}
	if *listen == "" && !*local {
		fmt.Fprintln(os.Stderr, "hyve-sweepd: -local=false with no -listen leaves nobody to execute the sweep")
		return 2
	}

	graph.SetPreparedDir(*prepDir)

	var srv *http.Server
	if *pprof != "" {
		srv = serve.DebugServer(*pprof)
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "hyve-sweepd: pprof server:", err)
			}
		}()
		defer serve.ShutdownServer(srv, 5*time.Second)
	}

	spec, err := jobs.NewSimSpec(splitList(*dataset), splitList(*algon), splitList(*config), *sramMB)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hyve-sweepd:", err)
		return 2
	}
	var sched *cache.Scheduler
	if *cacheDir != "" {
		sched = cache.New(cache.Config{Dir: *cacheDir})
	}
	job, err := jobs.Decode(spec, jobs.ExecOptions{Cache: sched, PrepDir: *prepDir})
	if err != nil {
		fmt.Fprintln(os.Stderr, "hyve-sweepd:", err)
		return 2
	}

	logf := func(string, ...any) {}
	if *verbose {
		logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	cfg := cluster.CoordinatorConfig{
		Spec:        spec,
		Points:      job.Points(),
		ShardSize:   *shardSize,
		LeaseTTL:    *leaseTTL,
		Heartbeat:   *heartbeat,
		PoisonAfter: *poisonAfter,
		Validate:    job.Validate,
		Logf:        logf,
	}
	if *local {
		cfg.Local = job
	}
	coord, err := cluster.NewCoordinator(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hyve-sweepd:", err)
		return 2
	}

	if *listen != "" {
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hyve-sweepd:", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "hyve-sweepd: %d points in %d-point shards; listening on %s\n",
			job.Points(), *shardSize, ln.Addr())
		go coord.Serve(ln)
	} else {
		fmt.Fprintf(os.Stderr, "hyve-sweepd: %d points in %d-point shards; local execution only\n",
			job.Points(), *shardSize)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	start := time.Now()
	if err := coord.Run(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "hyve-sweepd:", err)
		lingerFor(*linger)
		return 1
	}
	// Let connected workers learn the sweep is done (their next lease
	// request answers done=true) instead of seeing the coordinator
	// vanish mid-conversation and exiting through their redial path.
	drainWorkers(coord, 3*time.Second)
	st := coord.Stats()
	fmt.Fprintf(os.Stderr, "hyve-sweepd: %d points merged in %v (%d grants, %d reclaimed, %d reassigned, %d duplicate)\n",
		st.Merged, time.Since(start).Round(time.Millisecond), st.Granted, st.Reclaimed, st.Reassigned, st.Duplicate)

	if *out == "" {
		for _, p := range coord.Results() {
			if _, err := os.Stdout.Write(p); err != nil {
				fmt.Fprintln(os.Stderr, "hyve-sweepd:", err)
				return 1
			}
		}
	} else if err := coord.WriteArtifact(*out); err != nil {
		fmt.Fprintln(os.Stderr, "hyve-sweepd:", err)
		return 1
	}
	lingerFor(*linger)
	return 0
}

// drainWorkers waits (bounded) for live workers to disconnect: each
// one's next lease request is answered done=true and it exits cleanly.
// A worker that is dead but not yet timed out just caps the wait.
func drainWorkers(coord *cluster.Coordinator, grace time.Duration) {
	deadline := time.Now().Add(grace)
	for time.Now().Before(deadline) {
		if coord.Stats().WorkersLive == 0 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// lingerFor holds the process (and thus its -pprof endpoint) open so an
// external harness can scrape final hyve_cluster_* counters.
func lingerFor(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}

// splitList parses a comma-separated flag value, dropping empty items.
func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// Command hyve-serve runs the simulation service: a long-running HTTP
// process that accepts single (dataset, algorithm, configuration)
// points and sweep specs, executes them through the content-addressed
// result cache, and streams results back — plain canonical JSON for a
// point, NDJSON progress events for a sweep.
//
// Usage:
//
//	hyve-serve                        # listen on :8091, in-memory cache
//	hyve-serve -cache-dir c           # persist results across restarts
//	hyve-serve -rate 10 -burst 20     # admission budget (points/s, burst)
//	hyve-serve -parallel 4            # bound concurrent simulations
//	hyve-serve -request-timeout 5m    # per-request deadline ceiling
//
// Endpoints (see EXPERIMENTS.md for schemas):
//
//	POST /point    {"dataset":"YT","algo":"PR","config":"hyve-opt"}
//	POST /sweep    {"datasets":[...],"algos":[...],"configs":[...]}
//	GET  /healthz  liveness + drain state
//	GET  /metrics  Prometheus text (hyve_serve_* families and the rest)
//	     /debug/pprof /debug/vars /debug/flight /debug/trace
//
// A point response body is byte-identical to the canonical result
// document a direct `hyve-sim -result` run of the same point prints;
// run ids and content digests ride in X-Hyve-* headers. Overload is
// explicit: the token bucket answers 429 with Retry-After, a tripped
// per-dataset circuit breaker answers 503 with Retry-After, and a
// draining process answers 503 while every in-flight request runs to
// completion. SIGINT/SIGTERM starts that drain; a second signal, or
// -drain-timeout expiring, forces exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cache"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	var (
		addr            = flag.String("addr", ":8091", "listen address for the API and introspection endpoints")
		cacheDir        = flag.String("cache-dir", "", "persist simulation results in an on-disk content-addressed cache rooted here (empty = in-memory only)")
		par             = flag.Int("parallel", 0, "bound on concurrently executing simulations across all requests (0 = GOMAXPROCS)")
		rate            = flag.Float64("rate", 50, "admission budget: simulation points per second (a sweep spends one token per point)")
		burst           = flag.Int("burst", 100, "admission bucket capacity in points")
		breakerFails    = flag.Int("breaker-failures", 5, "consecutive failures on one dataset that trip its circuit breaker")
		breakerCooldown = flag.Duration("breaker-cooldown", 30*time.Second, "how long a tripped breaker rejects before half-open probing")
		requestTimeout  = flag.Duration("request-timeout", serve.DefaultRequestTimeout, "per-request deadline ceiling (clients may shorten via timeout_ms)")
		maxInflight     = flag.Int("max-inflight", serve.DefaultMaxInflight, "cap on concurrently admitted requests")
		maxSweep        = flag.Int("max-sweep-points", serve.DefaultMaxSweepPoints, "largest sweep cross product accepted")
		drainTimeout    = flag.Duration("drain-timeout", 2*time.Minute, "how long a signalled process waits for in-flight requests before forcing exit")
		node            = flag.Uint64("node", 0, "snowflake node id stamped into run ids (0-1023)")
		logLevel        = flag.String("log-level", "info", "log floor: debug, info, warn, or error")
		prepDir         = flag.String("prep-dir", "", "load datasets from hyve-prep v2 containers in this directory when present (bit-identical to generation; missing datasets are generated)")
	)
	flag.Parse()

	graph.SetPreparedDir(*prepDir)

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hyve-serve:", err)
		os.Exit(1)
	}
	log := obs.NewLogger(os.Stderr, level)
	obs.SetFlightDump(os.Stderr)

	// Full observability stack from the start: recorder into expvar +
	// Prometheus, span tracing on, every metric family announced at zero
	// so the first scrape sees the complete set.
	obs.SetDefault(obs.Multi(obs.Expvar(), obs.Metrics()))
	obs.EnableTracing(0)
	cache.RegisterMetrics(obs.Default())
	serve.RegisterMetrics(obs.Default())

	var sched *cache.Scheduler
	if *cacheDir != "" {
		sched = cache.New(cache.Config{Dir: *cacheDir})
	}
	srvr := serve.New(serve.Config{
		Sched:           sched,
		Workers:         *par,
		Rate:            *rate,
		Burst:           *burst,
		BreakerFailures: *breakerFails,
		BreakerCooldown: *breakerCooldown,
		RequestTimeout:  *requestTimeout,
		MaxSweepPoints:  *maxSweep,
		MaxInflight:     *maxInflight,
		Node:            *node,
		Log:             log,
	})

	// One listener for everything: the API routes plus the shared
	// introspection mux (/metrics, /debug/*).
	mux := serve.DebugMux()
	mux.Handle("/point", srvr.Handler())
	mux.Handle("/sweep", srvr.Handler())
	mux.Handle("/healthz", srvr.Handler())
	httpSrv := serve.NewHTTPServer(*addr, mux)

	errc := make(chan error, 1)
	go func() {
		errc <- httpSrv.ListenAndServe()
	}()
	log.Info("serve.listening", "addr", *addr,
		"rate", *rate, "burst", *burst, "workers", *par,
		"cache", map[bool]string{true: *cacheDir, false: "memory"}[*cacheDir != ""])

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "hyve-serve:", err)
		os.Exit(1)
	case sig := <-sigc:
		log.Info("serve.signal", "signal", sig.String())
	}

	// Graceful drain: stop admitting immediately, let every in-flight
	// request run to completion, then close the listener. A second
	// signal aborts the wait.
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	go func() {
		<-sigc
		log.Warn("serve.drain.forced", "reason", "second signal")
		cancel()
	}()
	drainErr := srvr.Drain(drainCtx)
	serve.ShutdownServer(httpSrv, 5*time.Second)
	if drainErr != nil {
		log.Error("serve.drain", "err", drainErr)
		os.Exit(1)
	}
	log.Info("serve.drained", "inflight", 0)
}

// Command hyve-worker executes shards of a distributed sweep for a
// hyve-sweepd coordinator: it dials the coordinator, receives the sweep
// spec at handshake, and loops lease → simulate → stream canonical
// result documents → next lease until the coordinator reports the
// sweep done. Points resolve through the standard cache scheduler, so
// a worker with -cache-dir shares the same content-addressed store as
// every other tool.
//
// Usage:
//
//	hyve-worker -connect host:9631
//	hyve-worker -connect host:9631 -name rack3 -parallel 4
//	hyve-worker -connect host:9631 -chaos-delay 300ms   # fault-injection harnesses
//
// A lost connection is retried with capped jittered exponential backoff
// (-dial-retries attempts) — a worker outliving a coordinator restart
// rejoins by itself. -chaos-delay stretches each point's reporting,
// holding leases open; it exists purely so chaos harnesses (the
// cluster-smoke make target kills a worker mid-lease) can widen the
// window deterministically, and has no place in production runs.
//
// Exit status is 0 when the coordinator reported the sweep complete,
// 1 when the connection could not be (re)established.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cache"
	"repro/internal/cluster"
	"repro/internal/cluster/jobs"
	"repro/internal/parallel"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("hyve-worker", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	var (
		connect     = fs.String("connect", "", "coordinator address (host:port); required")
		name        = fs.String("name", defaultName(), "worker name in coordinator logs and per-worker metrics")
		par         = fs.Int("parallel", 0, "points of a lease to execute concurrently (0 = GOMAXPROCS)")
		cacheDir    = fs.String("cache-dir", "", "share the on-disk content-addressed result cache rooted here")
		prepDir     = fs.String("prep-dir", "", "load datasets from hyve-prep v2 containers in this directory when present")
		dialRetries = fs.Int("dial-retries", 10, "redial attempts after a lost connection before giving up")
		chaosDelay  = fs.Duration("chaos-delay", 0, "fault-injection: sleep this long after computing each point before reporting it")
		verbose     = fs.Bool("v", false, "log lease traffic")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "hyve-worker: unexpected arguments %q\n", fs.Args())
		return 2
	}
	if *connect == "" {
		fmt.Fprintln(os.Stderr, "hyve-worker: -connect is required")
		return 2
	}

	var sched *cache.Scheduler
	if *cacheDir != "" {
		sched = cache.New(cache.Config{Dir: *cacheDir})
	}
	cfg := cluster.WorkerConfig{
		Name:       *name,
		Factory:    jobs.Factory(jobs.ExecOptions{Cache: sched, PrepDir: *prepDir}),
		Parallel:   *par,
		ChaosDelay: *chaosDelay,
	}
	if *verbose {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	redial := parallel.Backoff{Base: 200 * time.Millisecond, Cap: 5 * time.Second}
	for attempt := 0; ; attempt++ {
		conn, err := net.Dial("tcp", *connect)
		if err == nil {
			attempt = 0
			done, runErr := cluster.RunWorker(ctx, conn, cfg)
			if done {
				fmt.Fprintln(os.Stderr, "hyve-worker: sweep complete")
				return 0
			}
			if ctx.Err() != nil {
				fmt.Fprintln(os.Stderr, "hyve-worker: interrupted")
				return 1
			}
			fmt.Fprintf(os.Stderr, "hyve-worker: connection lost: %v\n", runErr)
		} else {
			fmt.Fprintf(os.Stderr, "hyve-worker: dial %s: %v\n", *connect, err)
		}
		if attempt >= *dialRetries {
			fmt.Fprintf(os.Stderr, "hyve-worker: giving up after %d redial attempts\n", attempt)
			return 1
		}
		if err := redial.Wait(ctx, attempt); err != nil {
			return 1
		}
	}
}

// defaultName derives a stable worker name from the hostname.
func defaultName() string {
	h, err := os.Hostname()
	if err != nil || h == "" {
		return "worker"
	}
	if i := strings.IndexByte(h, '.'); i > 0 {
		h = h[:i]
	}
	return h
}

GO ?= go

.PHONY: all build test vet race bench bench-json bench-smoke fault-smoke cache-smoke obs-smoke serve-smoke prep-smoke cluster-smoke check

# The committed benchmark artifact for this PR; bump per PR so the repo
# accumulates a benchstat-style history (compare two with
# `go run ./cmd/hyve-perf -compare BENCH_prN.json BENCH_prM.json`).
BENCH_JSON ?= BENCH_pr4.json
BENCH_COUNT ?= 5
BENCH_TIME ?= 5x

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The race suite is the repository's concurrency gate: the experiment
# harness, both CLIs, and the functional runner all execute under the
# race detector, including the concurrent-runner hammer tests in
# internal/experiments/race_test.go.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

# bench-json runs every root benchmark BENCH_COUNT times and distills
# the output into the canonical JSON artifact via cmd/hyve-perf.
bench-json:
	$(GO) test -bench=. -benchmem -count=$(BENCH_COUNT) -benchtime=$(BENCH_TIME) -run '^$$' . | $(GO) run ./cmd/hyve-perf -o $(BENCH_JSON)
	@echo wrote $(BENCH_JSON)

# bench-smoke is the CI gate: every benchmark must still run (one
# iteration each), catching bit-rot without burning CI minutes.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run '^$$' .

# cache-smoke is the content-addressed cache's end-to-end gate: a cold
# quick run populates the on-disk store, a warm run replays entirely
# from it, and the two artifact directories must be byte-identical
# (manifest.json excluded: it records wall time and worker count by
# design). The warm run proves persistence across processes; the diff
# proves a cache hit is indistinguishable from a fresh execution.
CACHE_SMOKE_DIR ?= /tmp/hyve-cache-smoke
cache-smoke:
	rm -rf $(CACHE_SMOKE_DIR)
	$(GO) run ./cmd/hyve-bench -quick -run table3,fig9,fig14 \
		-cache-dir $(CACHE_SMOKE_DIR)/store -artifact-dir $(CACHE_SMOKE_DIR)/cold >/dev/null
	$(GO) run ./cmd/hyve-bench -quick -run table3,fig9,fig14 \
		-cache-dir $(CACHE_SMOKE_DIR)/store -artifact-dir $(CACHE_SMOKE_DIR)/warm >/dev/null
	diff -r -x manifest.json $(CACHE_SMOKE_DIR)/cold $(CACHE_SMOKE_DIR)/warm
	@echo cache-smoke: warm artifacts byte-identical to cold

# obs-smoke is the observability end-to-end gate: a quick bench run with
# the introspection endpoints up, scraped live by hyve-top -lint, which
# fails unless the Prometheus exposition is well-formed (HELP/TYPE on
# every family, monotone cumulative histogram buckets closing at +Inf,
# no duplicate series) and the load-bearing families are present —
# cache counters, an exec-latency histogram, per-worker utilization.
OBS_SMOKE_ADDR ?= 127.0.0.1:6071
obs-smoke:
	$(GO) build -o /tmp/hyve-bench-smoke ./cmd/hyve-bench
	$(GO) build -o /tmp/hyve-top-smoke ./cmd/hyve-top
	/tmp/hyve-bench-smoke -quick -run table3,fig9,fig14 -parallel 4 \
		-pprof $(OBS_SMOKE_ADDR) >/dev/null & \
	BENCH_PID=$$!; \
	/tmp/hyve-top-smoke -lint -wait 60s -url http://$(OBS_SMOKE_ADDR)/metrics \
		-require hyve_cache_hits_total,hyve_cache_misses_total,hyve_parallel_point_exec_seconds,hyve_parallel_worker_utilization,hyve_parallel_points_completed_total; \
	LINT=$$?; \
	wait $$BENCH_PID || { echo "obs-smoke: bench run failed"; exit 1; }; \
	exit $$LINT
	@echo obs-smoke: exposition valid and complete

# serve-smoke is the simulation service's end-to-end gate: start
# hyve-serve, submit a point and a small sweep over HTTP, and require
# (1) the served point body to be byte-identical to a direct
# `hyve-sim -result` run of the same point — cache-hit identity extended
# to the wire, (2) the sweep stream to finish with a clean done event,
# (3) the /metrics exposition to lint clean with every hyve_serve_*
# family present, and (4) SIGTERM to drain with exit status 0.
SERVE_SMOKE_ADDR ?= 127.0.0.1:8093
SERVE_SMOKE_DIR ?= /tmp/hyve-serve-smoke
serve-smoke:
	rm -rf $(SERVE_SMOKE_DIR) && mkdir -p $(SERVE_SMOKE_DIR)
	$(GO) build -o $(SERVE_SMOKE_DIR)/hyve-serve ./cmd/hyve-serve
	$(GO) build -o $(SERVE_SMOKE_DIR)/hyve-sim ./cmd/hyve-sim
	$(GO) build -o $(SERVE_SMOKE_DIR)/hyve-top ./cmd/hyve-top
	set -e; \
	$(SERVE_SMOKE_DIR)/hyve-serve -addr $(SERVE_SMOKE_ADDR) -cache-dir $(SERVE_SMOKE_DIR)/store & \
	SERVE_PID=$$!; \
	for i in $$(seq 1 150); do \
		curl -fsS http://$(SERVE_SMOKE_ADDR)/healthz >/dev/null 2>&1 && break; sleep 0.2; \
	done; \
	curl -fsS -X POST -d '{"dataset":"YT","algo":"PR","config":"sd"}' \
		http://$(SERVE_SMOKE_ADDR)/point -o $(SERVE_SMOKE_DIR)/served.json; \
	$(SERVE_SMOKE_DIR)/hyve-sim -dataset YT -algo PR -config sd -result > $(SERVE_SMOKE_DIR)/direct.json; \
	cmp $(SERVE_SMOKE_DIR)/served.json $(SERVE_SMOKE_DIR)/direct.json; \
	curl -fsS -X POST -d '{"datasets":["YT"],"algos":["PR","BFS"],"configs":["sd"]}' \
		http://$(SERVE_SMOKE_ADDR)/sweep -o $(SERVE_SMOKE_DIR)/sweep.ndjson; \
	grep -q '"event":"done"' $(SERVE_SMOKE_DIR)/sweep.ndjson; \
	! grep -q '"event":"error"' $(SERVE_SMOKE_DIR)/sweep.ndjson; \
	$(SERVE_SMOKE_DIR)/hyve-top -lint -wait 30s -url http://$(SERVE_SMOKE_ADDR)/metrics \
		-require hyve_serve_requests_admitted_total,hyve_serve_points_served_total,hyve_serve_request_seconds,hyve_serve_inflight,hyve_cache_hits_total; \
	kill -TERM $$SERVE_PID; \
	wait $$SERVE_PID
	@echo serve-smoke: served bytes identical to direct simulation, metrics clean, drain clean

# prep-smoke is the prepared-graph end-to-end gate: compile YT into a
# v2 container (grid at the auto-chosen P, self-verified against a
# rebuild through both readers), then run the same quick sweep with and
# without -prep-dir — the mmap-loaded dataset must produce artifact
# directories byte-identical to in-process generation (manifest.json
# excluded: wall time and worker count vary by design).
PREP_SMOKE_DIR ?= /tmp/hyve-prep-smoke
prep-smoke:
	rm -rf $(PREP_SMOKE_DIR) && mkdir -p $(PREP_SMOKE_DIR)/prep
	$(GO) run ./cmd/hyve-prep -dataset YT -out $(PREP_SMOKE_DIR)/prep/YT.s8.hyve2 \
		-grid auto -verify -budget 64
	$(GO) run ./cmd/hyve-bench -quick -run table3,fig9,fig14 \
		-artifact-dir $(PREP_SMOKE_DIR)/generated >/dev/null
	$(GO) run ./cmd/hyve-bench -quick -run table3,fig9,fig14 \
		-prep-dir $(PREP_SMOKE_DIR)/prep -artifact-dir $(PREP_SMOKE_DIR)/prepared >/dev/null
	diff -r -x manifest.json $(PREP_SMOKE_DIR)/generated $(PREP_SMOKE_DIR)/prepared
	@echo prep-smoke: prepared-load artifacts byte-identical to in-process generation

# cluster-smoke is the distributed sweep's end-to-end gate: hyve-sweepd
# (remote workers only, no local fallback) leases a 6-point sweep to two
# real hyve-worker processes, the first of which is SIGKILLed while
# holding a lease. The sweep must still complete through reclaim and
# reassignment, the merged artifact must be byte-identical to
# `hyve-sim -result` over the same sweep, /metrics must lint clean with
# the hyve_cluster_* families present, and the reclaimed counter must
# prove the dead worker's lease actually came back.
CLUSTER_SMOKE_DIR ?= /tmp/hyve-cluster-smoke
CLUSTER_SMOKE_ADDR ?= 127.0.0.1:9631
CLUSTER_SMOKE_PPROF ?= 127.0.0.1:6072
cluster-smoke:
	rm -rf $(CLUSTER_SMOKE_DIR) && mkdir -p $(CLUSTER_SMOKE_DIR)
	$(GO) build -o $(CLUSTER_SMOKE_DIR)/hyve-sweepd ./cmd/hyve-sweepd
	$(GO) build -o $(CLUSTER_SMOKE_DIR)/hyve-worker ./cmd/hyve-worker
	$(GO) build -o $(CLUSTER_SMOKE_DIR)/hyve-sim ./cmd/hyve-sim
	$(GO) build -o $(CLUSTER_SMOKE_DIR)/hyve-top ./cmd/hyve-top
	set -e; \
	$(CLUSTER_SMOKE_DIR)/hyve-sweepd -listen $(CLUSTER_SMOKE_ADDR) -local=false \
		-dataset YT -algo PR,BFS -config hyve-opt,sd,dram -shard 1 -lease-ttl 2s \
		-pprof $(CLUSTER_SMOKE_PPROF) -linger 10s -out $(CLUSTER_SMOKE_DIR)/merged.jsonl & \
	SWEEPD_PID=$$!; \
	$(CLUSTER_SMOKE_DIR)/hyve-top -lint -wait 30s -url http://$(CLUSTER_SMOKE_PPROF)/metrics \
		-require hyve_cluster_shards,hyve_cluster_workers_live,hyve_cluster_leases_granted_total,hyve_cluster_leases_reclaimed_total,hyve_cluster_results_merged_total; \
	$(CLUSTER_SMOKE_DIR)/hyve-worker -connect $(CLUSTER_SMOKE_ADDR) -name victim \
		-chaos-delay 500ms & \
	VICTIM_PID=$$!; \
	for i in $$(seq 1 100); do \
		curl -fsS http://$(CLUSTER_SMOKE_PPROF)/metrics | grep -q '^hyve_cluster_leases_granted_total [1-9]' && break; \
		sleep 0.1; \
	done; \
	kill -9 $$VICTIM_PID; \
	$(CLUSTER_SMOKE_DIR)/hyve-worker -connect $(CLUSTER_SMOKE_ADDR) -name steady; \
	curl -fsS http://$(CLUSTER_SMOKE_PPROF)/metrics | grep -q '^hyve_cluster_leases_reclaimed_total [1-9]' \
		|| { echo "cluster-smoke: victim's lease never reclaimed"; exit 1; }; \
	$(CLUSTER_SMOKE_DIR)/hyve-sim -dataset YT -algo PR,BFS -config hyve-opt,sd,dram -result \
		> $(CLUSTER_SMOKE_DIR)/direct.jsonl; \
	wait $$SWEEPD_PID; \
	cmp $(CLUSTER_SMOKE_DIR)/merged.jsonl $(CLUSTER_SMOKE_DIR)/direct.jsonl
	@echo cluster-smoke: merged artifact byte-identical to hyve-sim after SIGKILL chaos

# fault-smoke drives the resilience layer end to end in bounded time:
# the reliability experiment (BER sweep, SECDED accounting, bank
# sparing) plus a conformance sweep with the per-point watchdog armed.
fault-smoke:
	timeout 15s $(GO) run ./cmd/hyve-bench -quick -run reliability
	$(GO) run ./cmd/hyve-check -seed 1 -duration 10s -point-timeout 60s

check: vet build test race

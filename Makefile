GO ?= go

.PHONY: all build test vet race bench check

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The race suite is the repository's concurrency gate: the experiment
# harness, both CLIs, and the functional runner all execute under the
# race detector, including the concurrent-runner hammer tests in
# internal/experiments/race_test.go.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

check: vet build test race

// Package repro is a from-scratch Go reproduction of "HyVE: Hybrid
// Vertex-Edge Memory Hierarchy for Energy-Efficient Graph Processing"
// (Dai, Huang, Wang, Yang, Wawrzynek): the device energy models, the
// HyVE architecture simulator and its baselines (GraphR, CPU, and the
// conventional accelerator hierarchies), the graph algorithms and
// synthetic datasets, the §5 dynamic-graph working flow, the §6 analytic
// model, and a harness (internal/experiments, cmd/hyve-bench) that
// regenerates every table and figure of the paper's evaluation.
//
// See README.md for a tour and DESIGN.md for the full system inventory
// and the per-experiment index.
package repro

package cache

import (
	"container/list"
	"context"
	"encoding/binary"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// Config tunes a Scheduler.
type Config struct {
	// Dir, when non-empty, backs the scheduler with the on-disk
	// content-addressed result store rooted there, so identical points
	// are reused across processes, not just within one.
	Dir string
	// MemResults bounds the in-memory result LRU (entries across all
	// shards; results are ~1 KB each). 0 means DefaultMemResults.
	MemResults int
	// MemMachines bounds the assembled-machine LRU. Machines hold their
	// partitioned grid, so this is the scheduler's real memory knob;
	// a machine is only needed on the execution path (a result hit never
	// builds one). 0 means DefaultMemMachines.
	MemMachines int
}

// Default LRU capacities.
const (
	DefaultMemResults  = 4096
	DefaultMemMachines = 8
)

// Stats counts what the scheduler did. Executed counts completed
// simulations; Errors counts submissions whose execution failed (error
// outcomes are never cached — a failing point re-executes every time,
// deliberately, so probes of error paths keep probing). Bypassed counts
// submissions that skipped the cache entirely (a recorder was attached,
// or the point could not be digested).
type Stats struct {
	Executed  uint64
	MemHits   uint64
	DiskHits  uint64
	Coalesced uint64
	Bypassed  uint64
	Errors    uint64
}

// Scheduler is the unified submission point for simulations: every
// consumer asks it to Simulate (or for a Machine), and identical points
// — equal canonical digests — execute exactly once. Concurrent
// submissions of the same point coalesce onto one execution; completed
// results live in a sharded in-memory LRU and, when configured, the
// on-disk store.
//
// Cached results are shared: callers must treat a *core.Result obtained
// from the scheduler as read-only (the experiment race tests run under
// -race, which turns any violation into a reported data race).
//
// A nil *Scheduler is valid and simply executes every submission — so
// call sites can thread an optional scheduler without nil checks.
type Scheduler struct {
	off      bool
	disk     *store
	results  *lruShards
	machines *lruShards

	// run resolves one missed digest (disk, then execution). It is
	// runPoint in production; tests substitute a gated executor to
	// exercise cancellation without a genuinely slow simulation.
	run func(ctx context.Context, d Digest, cfg core.Config, w core.Workload) (*core.Result, error)

	mu       sync.Mutex
	inflight map[Digest]*flight

	executed, memHits, diskHits, coalesced, bypassed, errors atomic.Uint64
}

type flight struct {
	done chan struct{}
	res  *core.Result
	err  error
}

// New builds a scheduler.
func New(c Config) *Scheduler {
	s := &Scheduler{
		results:  newLRUShards(c.MemResults, DefaultMemResults),
		machines: newLRUShards(c.MemMachines, DefaultMemMachines),
		inflight: make(map[Digest]*flight),
	}
	if c.Dir != "" {
		s.disk = &store{dir: c.Dir}
	}
	s.run = s.runPoint
	return s
}

// Off returns a scheduler that executes every submission and caches
// nothing — the -no-cache escape hatch, distinguishable from nil (which
// call sites use for "default").
func Off() *Scheduler { return &Scheduler{off: true} }

// Stats returns a snapshot of the scheduler's counters.
func (s *Scheduler) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	return Stats{
		Executed:  s.executed.Load(),
		MemHits:   s.memHits.Load(),
		DiskHits:  s.diskHits.Load(),
		Coalesced: s.coalesced.Load(),
		Bypassed:  s.bypassed.Load(),
		Errors:    s.errors.Load(),
	}
}

// Metric names the scheduler emits through the process-global
// Recorder, so expvar and /metrics show cache behavior without code
// changes in consumers. Counters mirror Stats ("cache.misses" counts
// executions); the two histograms are log-bucketed latencies.
const (
	MetricHits      = "cache.hits"
	MetricMisses    = "cache.misses"
	MetricDiskHits  = "cache.disk.hits"
	MetricCoalesced = "cache.coalesced"
	MetricErrors    = "cache.errors"
	MetricBypassed  = "cache.bypassed"
	MetricLookupSec = "cache.lookup.seconds"
	MetricExecSec   = "cache.exec.seconds"
)

// RegisterMetrics announces every scheduler counter to rec at value
// zero, so a freshly-scraped /metrics shows the cache series before the
// first submission (and dashboards never see a missing-series gap).
func RegisterMetrics(rec obs.Recorder) {
	for _, name := range []string{
		MetricHits, MetricMisses, MetricDiskHits,
		MetricCoalesced, MetricErrors, MetricBypassed,
	} {
		rec.Count(name, 0)
	}
}

// Simulate submits one point. On a miss the point executes through a
// shared Machine (grid built once even if a Machine consumer also holds
// the point) and the result is stored; on a hit the cached result —
// byte-identical to a fresh execution by the cache-hit-identity
// invariant — returns without simulating.
func (s *Scheduler) Simulate(cfg core.Config, w core.Workload) (*core.Result, error) {
	return s.SimulateCtx(context.Background(), cfg, w)
}

// SimulateCtx is Simulate under a caller context: span tracing nests
// the executed point under the caller's span (run → experiment →
// point), and cancellation releases the caller. A cancelled submission
// returns ctx.Err() promptly — whether it was coalesced behind another
// caller's execution or started the execution itself — but the winning
// execution is deliberately detached from the caller's cancellation:
// once started, a simulation runs to completion and its result is
// cached, so a cached result is never half-made and the work already
// sunk into the point is never thrown away.
//
// Every submission also reports to the process-global obs Recorder:
// hit/miss/coalesce/error counters, a digest+lookup latency histogram,
// and an execution latency histogram — so a live /metrics scrape sees
// cache behavior that Stats() only reveals to code holding the
// scheduler.
func (s *Scheduler) SimulateCtx(ctx context.Context, cfg core.Config, w core.Workload) (*core.Result, error) {
	rec := obs.Default()
	if s == nil || s.off || cfg.Recorder != nil {
		if s != nil {
			s.bypassed.Add(1)
			rec.Count(MetricBypassed, 1)
		}
		return core.Simulate(cfg, w)
	}
	lookup := time.Now()
	d, err := PointDigest(cfg, w)
	if err != nil {
		// An undigestable point (nil graph/program) still gets core's
		// real validation error from a direct execution.
		s.bypassed.Add(1)
		rec.Count(MetricBypassed, 1)
		return core.Simulate(cfg, w)
	}
	if r, ok := s.results.get(d); ok {
		s.memHits.Add(1)
		rec.Count(MetricHits, 1)
		obs.ObserveSince(rec, MetricLookupSec, lookup)
		obs.Flight().Record("cache.hit", d.String())
		return r.(*core.Result), nil
	}
	obs.ObserveSince(rec, MetricLookupSec, lookup)
	if err := ctx.Err(); err != nil {
		// Already-cancelled submissions still get a free hit above, but
		// never start (or wait behind) an execution.
		return nil, err
	}

	// Coalesce concurrent submissions of the same digest onto one
	// execution; followers wait for the leader's outcome — or their own
	// cancellation, whichever comes first. A waiter abandoning a wedged
	// execution does not abandon the execution itself.
	s.mu.Lock()
	if f, ok := s.inflight[d]; ok {
		s.mu.Unlock()
		s.coalesced.Add(1)
		rec.Count(MetricCoalesced, 1)
		select {
		case <-f.done:
			return f.res, f.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	s.inflight[d] = f
	s.mu.Unlock()

	// The execution runs detached (context.WithoutCancel keeps the span
	// parent riding in ctx but severs cancellation), so the leader's
	// caller can give up at its deadline while the point still finishes
	// and lands in the cache for the next submission.
	go func() {
		f.res, f.err = s.run(context.WithoutCancel(ctx), d, cfg, w)
		s.mu.Lock()
		delete(s.inflight, d)
		s.mu.Unlock()
		close(f.done)
	}()
	select {
	case <-f.done:
		return f.res, f.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// runPoint resolves one digest the slow way: disk, then execution.
func (s *Scheduler) runPoint(ctx context.Context, d Digest, cfg core.Config, w core.Workload) (*core.Result, error) {
	rec := obs.Default()
	if s.disk != nil {
		if r, ok := s.disk.get(d); ok {
			s.diskHits.Add(1)
			rec.Count(MetricDiskHits, 1)
			obs.Flight().Record("cache.disk.hit", d.String())
			s.results.put(d, r)
			return r, nil
		}
	}
	obs.Flight().Record("cache.miss", d.String(), "config", cfg.Name, "dataset", w.DatasetName)
	// The point span: id derived from the digest alone, so the same
	// point carries the same span id in every run's trace, nested under
	// the caller's experiment span when one rides in ctx.
	_, sp := obs.StartSpanWithID(ctx, "point "+d.String(), spanIDFor(d),
		"digest", d.String(), "config", cfg.Name, "dataset", w.DatasetName)
	m, err := s.machineFor(d, cfg, w)
	if err != nil {
		sp.SetAttr("error", err.Error())
		sp.End()
		s.errors.Add(1)
		rec.Count(MetricErrors, 1)
		obs.Flight().Record("cache.error", d.String(), "err", err.Error())
		return nil, err
	}
	exec := time.Now()
	r, err := m.SimulateTraced(sp)
	obs.ObserveSince(rec, MetricExecSec, exec)
	sp.End()
	if err != nil {
		s.errors.Add(1)
		rec.Count(MetricErrors, 1)
		obs.Flight().Record("cache.error", d.String(), "err", err.Error())
		return nil, err
	}
	s.executed.Add(1)
	rec.Count(MetricMisses, 1)
	s.results.put(d, r)
	if s.disk != nil {
		// Best-effort: a failed put only costs a future re-execution.
		_ = s.disk.put(d, r)
	}
	return r, nil
}

// spanIDFor derives the deterministic span id of a point from the
// leading bytes of its canonical digest.
func spanIDFor(d Digest) uint64 {
	return binary.BigEndian.Uint64(d[:8])
}

// Machine returns the assembled simulator for a point, shared by digest:
// consumers that need the grid or the functional run (the conformance
// harness, experiments that cross-check) get the same machine for the
// same point, generalizing core.Machine's per-instance memoization to
// the whole process. The machine's own memoized getters make concurrent
// use safe.
func (s *Scheduler) Machine(cfg core.Config, w core.Workload) (*core.Machine, error) {
	if s == nil || s.off || cfg.Recorder != nil {
		return core.NewMachine(cfg, w)
	}
	d, err := PointDigest(cfg, w)
	if err != nil {
		return core.NewMachine(cfg, w)
	}
	return s.machineFor(d, cfg, w)
}

// machineFor resolves the shared machine for a digest, building at most
// one even under concurrent callers (LoadOrStore-style: losers discard).
func (s *Scheduler) machineFor(d Digest, cfg core.Config, w core.Workload) (*core.Machine, error) {
	if m, ok := s.machines.get(d); ok {
		return m.(*core.Machine), nil
	}
	m, err := core.NewMachine(cfg, w)
	if err != nil {
		return nil, err
	}
	if prev, ok := s.machines.getOrPut(d, m); ok {
		return prev.(*core.Machine), nil
	}
	return m, nil
}

// --- sharded LRU --------------------------------------------------------

const numShards = 16

// lruShards is a digest-keyed LRU split across fixed shards (first
// digest byte), bounding lock contention under the parallel experiment
// pool without a global lock.
type lruShards struct {
	cap    int // per shard
	shards [numShards]lruShard
}

type lruShard struct {
	mu sync.Mutex
	m  map[Digest]*list.Element
	ll list.List // front = most recent; values are *lruEntry
}

type lruEntry struct {
	key Digest
	val any
}

func newLRUShards(capacity, fallback int) *lruShards {
	if capacity <= 0 {
		capacity = fallback
	}
	per := (capacity + numShards - 1) / numShards
	if per < 1 {
		per = 1
	}
	s := &lruShards{cap: per}
	for i := range s.shards {
		s.shards[i].m = make(map[Digest]*list.Element)
	}
	return s
}

func (s *lruShards) shard(d Digest) *lruShard { return &s.shards[d[0]%numShards] }

func (s *lruShards) get(d Digest) (any, bool) {
	sh := s.shard(d)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.m[d]; ok {
		sh.ll.MoveToFront(el)
		return el.Value.(*lruEntry).val, true
	}
	return nil, false
}

func (s *lruShards) put(d Digest, v any) {
	sh := s.shard(d)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.insert(s.cap, d, v)
}

// getOrPut returns the existing value for d (true) or inserts v (false),
// atomically per shard — the machine path uses it so concurrent builders
// converge on one instance.
func (s *lruShards) getOrPut(d Digest, v any) (any, bool) {
	sh := s.shard(d)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.m[d]; ok {
		sh.ll.MoveToFront(el)
		return el.Value.(*lruEntry).val, true
	}
	sh.insert(s.cap, d, v)
	return v, false
}

// insert adds (d, v), evicting from the back past the capacity. Callers
// hold the shard lock.
func (sh *lruShard) insert(capacity int, d Digest, v any) {
	if el, ok := sh.m[d]; ok {
		el.Value.(*lruEntry).val = v
		sh.ll.MoveToFront(el)
		return
	}
	sh.m[d] = sh.ll.PushFront(&lruEntry{key: d, val: v})
	for sh.ll.Len() > capacity {
		back := sh.ll.Back()
		sh.ll.Remove(back)
		delete(sh.m, back.Value.(*lruEntry).key)
	}
}

package cache

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/obs"
)

// ResultSchema identifies the on-disk result document format. Bump on
// any breaking change to the serialized shape of core.Result.
const ResultSchema = "hyve/result/v1"

// EncodeResult renders a result as its canonical JSON document: struct-
// ordered fields, no indentation, trailing newline. Equal results encode
// to equal bytes, and decoding then re-encoding is byte-stable (floats
// round-trip exactly through Go's shortest-form formatting), which is
// what lets the cache-hit-identity invariant compare a disk hit against
// a fresh execution byte for byte.
func EncodeResult(r *core.Result) ([]byte, error) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(r); err != nil {
		return nil, fmt.Errorf("cache: encoding result: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeResult parses a canonical result document strictly: unknown
// fields — a result written by a build with a different shape — are an
// error, never silently dropped.
func DecodeResult(data []byte) (*core.Result, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var r core.Result
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("cache: decoding result: %w", err)
	}
	return &r, nil
}

// diskDoc is the stored document: the schema and the digest the result
// was computed for wrap the payload, so a file moved between digests or
// written by an incompatible build is detected on read.
type diskDoc struct {
	Schema string          `json:"schema"`
	Digest string          `json:"digest"`
	Result json.RawMessage `json:"result"`
}

// store is the on-disk content-addressed result store: one JSON document
// per digest under dir/<first two hex chars>/<digest>.json. Writes are
// atomic (obs.WriteAtomic: temp + fsync + rename), so a process killed
// mid-write leaves only a stray temp file readers never look at — any
// file that exists under its final name decodes or is treated as a miss.
type store struct {
	dir string
}

func (s *store) path(d Digest) string {
	hex := d.String()
	return filepath.Join(s.dir, hex[:2], hex+".json")
}

// get loads the result stored for d. Any defect — missing file,
// truncated or foreign document, schema or digest mismatch, undecodable
// payload — is a miss, never an error: the cache must degrade to
// re-execution, not fail the run.
func (s *store) get(d Digest) (*core.Result, bool) {
	data, err := os.ReadFile(s.path(d))
	if err != nil {
		return nil, false
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var doc diskDoc
	if err := dec.Decode(&doc); err != nil {
		return nil, false
	}
	if doc.Schema != ResultSchema || doc.Digest != d.String() {
		return nil, false
	}
	r, err := DecodeResult(doc.Result)
	if err != nil {
		return nil, false
	}
	return r, true
}

// put stores the result for d atomically. Errors are returned so drivers
// can surface a broken cache directory, but callers treat the store as
// best-effort: a failed put only costs a future re-execution.
func (s *store) put(d Digest, r *core.Result) error {
	payload, err := EncodeResult(r)
	if err != nil {
		return err
	}
	path := s.path(d)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	doc := diskDoc{Schema: ResultSchema, Digest: d.String(), Result: bytes.TrimRight(payload, "\n")}
	return obs.WriteAtomic(path, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(&doc); err != nil {
			return fmt.Errorf("cache: encoding store document: %w", err)
		}
		return nil
	})
}

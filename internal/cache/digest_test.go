package cache

import (
	"reflect"
	"testing"

	"repro/internal/algo"
	"repro/internal/core"
	"repro/internal/device/dram"
	"repro/internal/device/rram"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/mem"
	"repro/internal/units"
)

func testPoint(t *testing.T) (core.Config, core.Workload) {
	t.Helper()
	g, err := graph.GenerateUniform(256, 1024, 42)
	if err != nil {
		t.Fatal(err)
	}
	return core.HyVE(), core.Workload{DatasetName: "test", Graph: g, Program: algo.NewPageRank()}
}

func mustDigest(t *testing.T, cfg core.Config, w core.Workload) Digest {
	t.Helper()
	d, err := PointDigest(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestPointDigestDeterministic(t *testing.T) {
	cfg, w := testPoint(t)
	if d1, d2 := mustDigest(t, cfg, w), mustDigest(t, cfg, w); d1 != d2 {
		t.Errorf("same point, different digests: %s vs %s", d1, d2)
	}
}

// TestPointDigestSensitivity flips every result-affecting knob the digest
// claims to cover and requires each flip to move the digest — the
// property that makes a digest match safe to treat as "same point".
func TestPointDigestSensitivity(t *testing.T) {
	cfg, w := testPoint(t)
	base := mustDigest(t, cfg, w)
	seen := map[Digest]string{base: "base"}
	check := func(name string, c core.Config, wl core.Workload) {
		t.Helper()
		d := mustDigest(t, c, wl)
		if prev, dup := seen[d]; dup {
			t.Errorf("mutation %q collides with %q", name, prev)
			return
		}
		seen[d] = name
	}

	mutations := []struct {
		name string
		mut  func(*core.Config, *core.Workload)
	}{
		{"cfg.Name", func(c *core.Config, _ *core.Workload) { c.Name = "other" }},
		{"cfg.NumPUs", func(c *core.Config, _ *core.Workload) { c.NumPUs *= 2 }},
		{"cfg.SRAMBytes", func(c *core.Config, _ *core.Workload) { c.SRAMBytes *= 2 }},
		{"cfg.UseOnChipSRAM", func(c *core.Config, _ *core.Workload) { c.UseOnChipSRAM = !c.UseOnChipSRAM }},
		{"cfg.EdgeMemory", func(c *core.Config, _ *core.Workload) { c.EdgeMemory = core.MemDRAM }},
		{"cfg.VertexMemory", func(c *core.Config, _ *core.Workload) { c.VertexMemory = core.MemReRAM }},
		{"cfg.DataSharing", func(c *core.Config, _ *core.Workload) { c.DataSharing = !c.DataSharing }},
		{"cfg.PowerGating", func(c *core.Config, _ *core.Workload) { c.PowerGating = !c.PowerGating }},
		{"cfg.SyncOverhead", func(c *core.Config, _ *core.Workload) { c.SyncOverhead *= 3 }},
		{"cfg.RerouteCycles", func(c *core.Config, _ *core.Workload) { c.RerouteCycles += 5 }},
		{"rram.Banks", func(c *core.Config, _ *core.Workload) { c.RRAM.Banks *= 2 }},
		{"rram.Cell.ReadVoltage", func(c *core.Config, _ *core.Workload) { c.RRAM.Cell.ReadVoltage += 0.1 }},
		{"dram.DataRateMTs", func(c *core.Config, _ *core.Workload) { c.DRAM.DataRateMTs *= 2 }},
		{"dram.Currents.IDD0", func(c *core.Config, _ *core.Workload) { c.DRAM.Currents.IDD0 += 1 }},
		{"gate.IdleTimeout", func(c *core.Config, _ *core.Workload) { c.Gate.IdleTimeout += units.Time(1) }},
		{"fault.Enabled", func(c *core.Config, _ *core.Workload) { c.Fault.Enabled = true }},
		{"fault.Seed", func(c *core.Config, _ *core.Workload) { c.Fault.Enabled = true; c.Fault.Seed = 99 }},
		{"wl.DatasetName", func(_ *core.Config, wl *core.Workload) { wl.DatasetName = "renamed" }},
		{"wl.FullVertices", func(_ *core.Config, wl *core.Workload) { wl.FullVertices = 1 << 20 }},
		{"wl.FullEdges", func(_ *core.Config, wl *core.Workload) { wl.FullEdges = 1 << 22 }},
		{"wl.Program", func(_ *core.Config, wl *core.Workload) { wl.Program = algo.NewBFS(0) }},
		{"wl.Iterations", func(_ *core.Config, wl *core.Workload) { wl.Iterations = 7 }},
		{"wl.ActivityFactor", func(_ *core.Config, wl *core.Workload) { wl.ActivityFactor = 0.5 }},
		{"wl.UpdateFactor", func(_ *core.Config, wl *core.Workload) { wl.UpdateFactor = 0.25 }},
	}
	for _, m := range mutations {
		c, wl := cfg, w
		m.mut(&c, &wl)
		check(m.name, c, wl)
	}

	// A different graph with the same dataset label must change the
	// digest — the exact confusion behind the stale -resume bug.
	g2, err := graph.GenerateUniform(256, 1024, 43)
	if err != nil {
		t.Fatal(err)
	}
	w2 := w
	w2.Graph = g2
	check("wl.Graph content", cfg, w2)
}

// TestPointDigestIgnoresHostKnobs pins the deliberate exclusions:
// parallelism never changes result bytes (the repo's bit-identity
// contract), so it must not fragment the cache.
func TestPointDigestIgnoresHostKnobs(t *testing.T) {
	cfg, w := testPoint(t)
	base := mustDigest(t, cfg, w)
	cfg.Parallelism = 8
	if d := mustDigest(t, cfg, w); d != base {
		t.Errorf("Parallelism changed the digest: %s vs %s", d, base)
	}
}

func TestPointDigestRejectsIncompletePoints(t *testing.T) {
	cfg, w := testPoint(t)
	noGraph := w
	noGraph.Graph = nil
	if _, err := PointDigest(cfg, noGraph); err == nil {
		t.Error("nil graph digested")
	}
	noProg := w
	noProg.Program = nil
	if _, err := PointDigest(cfg, noProg); err == nil {
		t.Error("nil program digested")
	}
}

// TestGraphDigestContentAddressed: equal structure → equal digest across
// distinct instances; different edges or weights → different digest.
func TestGraphDigestContentAddressed(t *testing.T) {
	g1, err := graph.GenerateUniform(128, 512, 7)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := graph.GenerateUniform(128, 512, 7)
	if err != nil {
		t.Fatal(err)
	}
	if GraphDigest(g1) != GraphDigest(g2) {
		t.Error("structurally identical graphs digest differently")
	}
	g3, err := graph.GenerateUniform(128, 512, 8)
	if err != nil {
		t.Fatal(err)
	}
	if GraphDigest(g1) == GraphDigest(g3) {
		t.Error("different edge sets share a digest")
	}
	g4, err := graph.GenerateUniform(128, 512, 7)
	if err != nil {
		t.Fatal(err)
	}
	graph.AttachUniformWeights(g4, 8, 7)
	if GraphDigest(g1) == GraphDigest(g4) {
		t.Error("weighted and unweighted instances share a digest")
	}
	// Memoized: repeated calls on one instance agree.
	if GraphDigest(g1) != GraphDigest(g1) {
		t.Error("memoized digest unstable")
	}
}

// TestDigestCoversEveryField pins the field count of every struct the
// digest serializes. Adding a field to any of them fails this test until
// the new field is either folded into PointDigest (and DigestSchema
// bumped) or explicitly added to the exclusion list below.
func TestDigestCoversEveryField(t *testing.T) {
	pins := []struct {
		v      any
		fields int
	}{
		// 15 digested + 2 excluded host knobs (Parallelism, Recorder).
		{core.Config{}, 17},
		{core.Workload{}, 8},
		{rram.Config{}, 5},
		{rram.CellParams{}, 8},
		{dram.Config{}, 5},
		{dram.IDD{}, 6},
		{mem.PowerGateParams{}, 5},
		{fault.Config{}, 9},
	}
	for _, p := range pins {
		typ := reflect.TypeOf(p.v)
		if got := typ.NumField(); got != p.fields {
			t.Errorf("%s has %d fields, digest pin expects %d — extend PointDigest, bump DigestSchema, then update this pin",
				typ, got, p.fields)
		}
	}
}

func TestHasherFraming(t *testing.T) {
	// Same concatenated bytes, different field boundaries, must not
	// collide: the framing exists exactly for this.
	a := NewHasher()
	a.Str("t", "ab")
	a.Str("t", "c")
	b := NewHasher()
	b.Str("t", "a")
	b.Str("t", "bc")
	if a.Sum() == b.Sum() {
		t.Error("string framing aliases across boundaries")
	}
	// Same payload bits under different kinds must not collide.
	u := NewHasher()
	u.U64("t", 1)
	i := NewHasher()
	i.I64("t", 1)
	if u.Sum() == i.Sum() {
		t.Error("u64 and i64 with equal bits collide")
	}
}

package cache

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
)

func testResult(t *testing.T) (Digest, *core.Result) {
	t.Helper()
	cfg, w := testPoint(t)
	r, err := core.Simulate(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	return mustDigest(t, cfg, w), r
}

func TestEncodeResultRoundTrip(t *testing.T) {
	_, r := testResult(t)
	first, err := EncodeResult(r)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeResult(first)
	if err != nil {
		t.Fatal(err)
	}
	second, err := EncodeResult(decoded)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Errorf("re-encoding not byte-stable:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
	if *decoded != *r {
		t.Errorf("decoded result differs from original:\n%+v\nvs\n%+v", *decoded, *r)
	}
}

func TestDecodeResultRejectsUnknownFields(t *testing.T) {
	if _, err := DecodeResult([]byte(`{"bogus_field_from_future_build":1}`)); err == nil {
		t.Error("unknown field accepted")
	}
}

func TestStoreRoundTrip(t *testing.T) {
	d, r := testResult(t)
	s := &store{dir: t.TempDir()}
	if _, ok := s.get(d); ok {
		t.Fatal("empty store reported a hit")
	}
	if err := s.put(d, r); err != nil {
		t.Fatal(err)
	}
	got, ok := s.get(d)
	if !ok {
		t.Fatal("stored result not found")
	}
	a, err := EncodeResult(got)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EncodeResult(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("stored result differs from original after round-trip")
	}
}

// TestStoreSurvivesKillMidWrite simulates the crash modes the atomic-
// write discipline defends against: a truncated document under the final
// name (as if written non-atomically) and a stray temp file. Both must
// read as misses, and a subsequent put must repair the entry.
func TestStoreSurvivesKillMidWrite(t *testing.T) {
	d, r := testResult(t)
	s := &store{dir: t.TempDir()}
	if err := s.put(d, r); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(s.path(d))
	if err != nil {
		t.Fatal(err)
	}

	// Kill mid-write, non-atomic writer: truncated document at the final
	// path.
	if err := os.WriteFile(s.path(d), full[:len(full)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.get(d); ok {
		t.Error("truncated document reported as a hit")
	}
	if err := s.put(d, r); err != nil {
		t.Fatalf("repairing put failed: %v", err)
	}
	if _, ok := s.get(d); !ok {
		t.Error("entry not repaired by re-put")
	}

	// Kill mid-write, atomic writer: stray temp file next to the entry.
	// Readers never look at it and it must not shadow the real document.
	stray := filepath.Join(filepath.Dir(s.path(d)), "stray.tmp")
	if err := os.WriteFile(stray, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.get(d); !ok {
		t.Error("stray temp file broke the read path")
	}
}

// TestStoreRejectsForeignDocuments: every defect degrades to a miss,
// never an error or a wrong result.
func TestStoreRejectsForeignDocuments(t *testing.T) {
	d, r := testResult(t)
	s := &store{dir: t.TempDir()}
	write := func(content []byte) {
		t.Helper()
		path := s.path(d)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, content, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	write([]byte(`{"hello":"world"}`))
	if _, ok := s.get(d); ok {
		t.Error("foreign JSON reported as a hit")
	}

	// A document stored for a different digest (file moved or copied
	// between entries) must not resolve.
	if err := s.put(d, r); err != nil {
		t.Fatal(err)
	}
	moved, err := os.ReadFile(s.path(d))
	if err != nil {
		t.Fatal(err)
	}
	var other Digest
	other[0] = d[0] // same shard prefix, different identity
	other[1] = ^d[1]
	so := &store{dir: s.dir}
	path := so.path(other)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, moved, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := so.get(other); ok {
		t.Error("document moved between digests reported as a hit")
	}

	// A wrong schema version must not resolve.
	write(bytes.Replace(moved, []byte(ResultSchema), []byte("hyve/result/v0"), 1))
	if _, ok := s.get(d); ok {
		t.Error("wrong-schema document reported as a hit")
	}
}

// Package cache gives every simulation point a canonical identity and
// makes result reuse flow through it: a versioned content digest over
// (Config, Workload, code-schema version), a sharded in-memory LRU plus
// an on-disk content-addressed store of results, and one Scheduler
// through which hyve-bench, hyve-check, and any core.Machine consumer
// submit points — so identical points across experiments, sweeps, and
// conformance runs execute exactly once (ROADMAP: the content-addressed
// result cache).
//
// The digest is the single source of truth for "same point": two points
// with equal digests produce byte-identical results (pinned by the
// cache-hit-identity conformance invariant and the cold-vs-warm golden
// tests), and anything that could change result bytes — a config knob, a
// workload field, the graph's actual edges, the simulator's semantic
// version — is folded into it. Host-resource knobs that are bit-identity
// invariant by contract (Config.Parallelism, Config.Recorder) are
// deliberately excluded.
package cache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"math"
	"sync"

	"repro/internal/core"
	"repro/internal/graph"
)

// DigestSchema versions the canonical serialization itself. Bump it
// whenever the field set or encoding below changes, so digests from an
// older layout can never collide with new ones; core.SimSchema (also
// folded in) covers semantic changes to the simulator.
const DigestSchema = "hyve/point/v1"

// Digest is the canonical content address of one simulation point.
type Digest [sha256.Size]byte

// String renders the digest as lowercase hex (the on-disk file name).
func (d Digest) String() string { return hex.EncodeToString(d[:]) }

// Hasher accumulates tagged fields into a canonical digest. Every write
// is framed as tag NUL type-byte payload, so adjacent fields can never
// alias each other regardless of value bytes; tags are plain ASCII
// without NULs by convention.
type Hasher struct {
	h   hash.Hash
	buf [9]byte
}

// NewHasher starts a digest computation.
func NewHasher() *Hasher { return &Hasher{h: sha256.New()} }

func (h *Hasher) frame(tag string, kind byte) {
	h.h.Write([]byte(tag))
	h.buf[0] = 0
	h.buf[1] = kind
	h.h.Write(h.buf[:2])
}

// Str folds a length-framed string field.
func (h *Hasher) Str(tag, v string) {
	h.frame(tag, 's')
	binary.LittleEndian.PutUint64(h.buf[:8], uint64(len(v)))
	h.h.Write(h.buf[:8])
	h.h.Write([]byte(v))
}

// U64 folds an unsigned integer field.
func (h *Hasher) U64(tag string, v uint64) {
	h.frame(tag, 'u')
	binary.LittleEndian.PutUint64(h.buf[:8], v)
	h.h.Write(h.buf[:8])
}

// I64 folds a signed integer field.
func (h *Hasher) I64(tag string, v int64) {
	h.frame(tag, 'i')
	binary.LittleEndian.PutUint64(h.buf[:8], uint64(v))
	h.h.Write(h.buf[:8])
}

// F64 folds a float field by its exact bit pattern.
func (h *Hasher) F64(tag string, v float64) {
	h.frame(tag, 'f')
	binary.LittleEndian.PutUint64(h.buf[:8], math.Float64bits(v))
	h.h.Write(h.buf[:8])
}

// Bool folds a boolean field.
func (h *Hasher) Bool(tag string, v bool) {
	b := byte(0)
	if v {
		b = 1
	}
	h.frame(tag, 'b')
	h.h.Write([]byte{b})
}

// Sum finishes the computation.
func (h *Hasher) Sum() Digest {
	var d Digest
	h.h.Sum(d[:0])
	return d
}

// graphDigests memoizes per-graph content hashes. Topology is immutable
// after generation (the graph package's contract — OutDegrees memoizes on
// the same ground), so one hash per *Graph is safe for the process
// lifetime; entries are dropped with the graph itself once unreferenced
// keys stop being looked up (the map holds the graph alive, which is
// acceptable: workloads are already cached for the process lifetime by
// the experiment layer).
var graphDigests sync.Map // *graph.Graph → Digest

// GraphDigest hashes the graph's actual content — vertex count, the edge
// list, and weights when present — so two differently labeled or
// differently provenanced instances with equal structure share an
// identity, and a re-scaled or re-seeded instance under the same dataset
// name cannot collide. The byte stream is graph.ContentDigest (the same
// digest v2 containers carry in their headers, which is what makes a
// prepared-file load and an in-process generation indistinguishable
// here); this wrapper memoizes it per instance.
func GraphDigest(g *graph.Graph) Digest {
	if v, ok := graphDigests.Load(g); ok {
		return v.(Digest)
	}
	d := Digest(graph.ContentDigest(g))
	actual, _ := graphDigests.LoadOrStore(g, d)
	return actual.(Digest)
}

// PointDigest computes the canonical identity of one simulation point:
// every Config and Workload field that can influence result bytes,
// serialized in a fixed order under DigestSchema and core.SimSchema.
// Config.Parallelism and Config.Recorder are excluded — results are
// bit-identical at every parallelism by contract, and the recorder is a
// side channel (the Scheduler bypasses the cache entirely when one is
// attached, so observed runs always execute).
func PointDigest(cfg core.Config, w core.Workload) (Digest, error) {
	if w.Graph == nil {
		return Digest{}, fmt.Errorf("cache: workload has no graph")
	}
	if w.Program == nil {
		return Digest{}, fmt.Errorf("cache: workload has no program")
	}
	h := NewHasher()
	h.Str("schema", DigestSchema)
	h.Str("sim", core.SimSchema)

	// Config.
	h.Str("cfg.name", cfg.Name)
	h.I64("cfg.pus", int64(cfg.NumPUs))
	h.I64("cfg.sram", cfg.SRAMBytes)
	h.Bool("cfg.onchip", cfg.UseOnChipSRAM)
	h.I64("cfg.edge_mem", int64(cfg.EdgeMemory))
	h.I64("cfg.vertex_mem", int64(cfg.VertexMemory))
	h.Bool("cfg.sharing", cfg.DataSharing)
	h.Bool("cfg.gating", cfg.PowerGating)
	h.F64("cfg.sync", float64(cfg.SyncOverhead))
	h.I64("cfg.reroute", int64(cfg.RerouteCycles))

	r := cfg.RRAM
	h.I64("rram.density", int64(r.DensityGb))
	h.I64("rram.banks", int64(r.Banks))
	h.I64("rram.output", int64(r.OutputBits))
	h.I64("rram.opt", int64(r.Optimize))
	h.F64("rram.cell.vread", r.Cell.ReadVoltage)
	h.F64("rram.cell.vset", r.Cell.SetVoltage)
	h.F64("rram.cell.pread", float64(r.Cell.ReadPower))
	h.F64("rram.cell.tset", float64(r.Cell.SetPulse))
	h.F64("rram.cell.eset", float64(r.Cell.SetEnergy))
	h.F64("rram.cell.ron", r.Cell.OnRes)
	h.F64("rram.cell.roff", r.Cell.OffRes)
	h.I64("rram.cell.bits", int64(r.Cell.Bits))

	d := cfg.DRAM
	h.I64("dram.density", int64(d.DensityGb))
	h.I64("dram.rate", int64(d.DataRateMTs))
	h.F64("dram.vdd", d.VDD)
	h.F64("dram.idd0", d.Currents.IDD0)
	h.F64("dram.idd2n", d.Currents.IDD2N)
	h.F64("dram.idd3n", d.Currents.IDD3N)
	h.F64("dram.idd4r", d.Currents.IDD4R)
	h.F64("dram.idd4w", d.Currents.IDD4W)
	h.F64("dram.idd5b", d.Currents.IDD5B)
	h.I64("dram.row", int64(d.RowBytes))

	g := cfg.Gate
	h.F64("gate.wake_lat", float64(g.WakeLatency))
	h.F64("gate.wake_e", float64(g.WakeEnergy))
	h.F64("gate.sleep_e", float64(g.SleepEnergy))
	h.F64("gate.idle", float64(g.IdleTimeout))
	h.Bool("gate.predictive", g.Predictive)

	f := cfg.Fault
	h.Bool("fault.enabled", f.Enabled)
	h.U64("fault.seed", f.Seed)
	h.F64("fault.ber", f.RawBER)
	h.F64("fault.stuck", f.StuckBitRate)
	h.I64("fault.failed", int64(f.FailedBanks))
	h.I64("fault.spares", int64(f.SpareBanks))
	h.I64("fault.ecc", int64(f.ECC))
	h.I64("fault.word_bits", int64(f.WordBits))
	h.Bool("fault.abort", f.AbortOnUncorrectable)

	// A custom edge device is fingerprinted behaviorally: its name plus
	// every cost the simulator can observe through the device.Memory
	// interface. Two devices indistinguishable through that interface
	// produce identical simulations, so the fingerprint is exactly as
	// fine as it needs to be.
	h.Bool("dev.custom", cfg.CustomEdgeDevice != nil)
	if dev := cfg.CustomEdgeDevice; dev != nil {
		h.Str("dev.name", dev.Name())
		h.I64("dev.line", int64(dev.LineBytes()))
		h.I64("dev.capacity", dev.CapacityBytes())
		for _, seq := range []bool{true, false} {
			rc, wc := dev.Read(seq), dev.Write(seq)
			h.Bool("dev.seq", seq)
			h.F64("dev.read_lat", float64(rc.Latency))
			h.F64("dev.read_e", float64(rc.Energy))
			h.F64("dev.write_lat", float64(wc.Latency))
			h.F64("dev.write_e", float64(wc.Energy))
		}
		h.F64("dev.background", float64(dev.Background()))
	}

	// Workload.
	h.Str("wl.dataset", w.DatasetName)
	gd := GraphDigest(w.Graph)
	h.Str("wl.graph", gd.String())
	h.I64("wl.full_v", w.FullVertices)
	h.I64("wl.full_e", w.FullEdges)
	h.Str("wl.program", w.Program.Name())
	h.I64("wl.iters", int64(w.Iterations))
	h.F64("wl.activity", w.ActivityFactor)
	h.F64("wl.update", w.UpdateFactor)

	return h.Sum(), nil
}

package cache

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

func TestSchedulerMemoryAndDiskHits(t *testing.T) {
	cfg, w := testPoint(t)
	dir := t.TempDir()

	s := New(Config{Dir: dir})
	r1, err := s.Simulate(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Simulate(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("memory hit returned a different result instance")
	}
	if st := s.Stats(); st.Executed != 1 || st.MemHits != 1 || st.DiskHits != 0 {
		t.Errorf("stats after two submissions: %+v", st)
	}

	// A fresh scheduler over the same directory can only find the result
	// on disk.
	s2 := New(Config{Dir: dir})
	if _, err := s2.Simulate(cfg, w); err != nil {
		t.Fatal(err)
	}
	if st := s2.Stats(); st.Executed != 0 || st.DiskHits != 1 {
		t.Errorf("fresh-scheduler stats: %+v", st)
	}
	// The disk hit was promoted into memory.
	if _, err := s2.Simulate(cfg, w); err != nil {
		t.Fatal(err)
	}
	if st := s2.Stats(); st.MemHits != 1 {
		t.Errorf("promotion stats: %+v", st)
	}
}

// TestSchedulerCoalesces hammers one point from many goroutines through
// a memory-only scheduler and requires exactly one execution; run under
// -race this is also the concurrency soundness test for the LRU shards
// and the inflight table.
func TestSchedulerCoalesces(t *testing.T) {
	cfg, w := testPoint(t)
	s := New(Config{})
	const workers = 16
	results := make([]*core.Result, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := s.Simulate(cfg, w)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = r
		}(i)
	}
	wg.Wait()
	st := s.Stats()
	if st.Executed != 1 {
		t.Errorf("%d executions for one point under %d concurrent submissions (%+v)",
			st.Executed, workers, st)
	}
	if st.MemHits+st.Coalesced != workers-1 {
		t.Errorf("hits+coalesced = %d, want %d: %+v", st.MemHits+st.Coalesced, workers-1, st)
	}
	for i, r := range results {
		if r == nil || r != results[0] {
			t.Fatalf("worker %d got a different result instance", i)
		}
	}
}

func TestSchedulerNilAndOff(t *testing.T) {
	cfg, w := testPoint(t)
	var nilSched *Scheduler
	if _, err := nilSched.Simulate(cfg, w); err != nil {
		t.Fatalf("nil scheduler: %v", err)
	}
	if st := nilSched.Stats(); st != (Stats{}) {
		t.Errorf("nil scheduler stats: %+v", st)
	}

	off := Off()
	if _, err := off.Simulate(cfg, w); err != nil {
		t.Fatal(err)
	}
	if _, err := off.Simulate(cfg, w); err != nil {
		t.Fatal(err)
	}
	if st := off.Stats(); st.Bypassed != 2 || st.Executed != 0 || st.MemHits != 0 {
		t.Errorf("off scheduler cached something: %+v", st)
	}
}

// TestSchedulerNeverCachesErrors: a failing point re-executes on every
// submission, so probes of error paths (the reliability experiment's
// bank-loss probe) keep observing the failure.
func TestSchedulerNeverCachesErrors(t *testing.T) {
	cfg, w := testPoint(t)
	cfg.NumPUs = 0 // fails validation inside the simulator
	s := New(Config{Dir: t.TempDir()})
	for i := 0; i < 2; i++ {
		if _, err := s.Simulate(cfg, w); err == nil {
			t.Fatal("invalid config simulated successfully")
		}
	}
	if st := s.Stats(); st.Errors != 2 || st.Executed != 0 || st.MemHits != 0 || st.DiskHits != 0 {
		t.Errorf("error outcomes were cached: %+v", st)
	}
}

func TestSchedulerSharesMachines(t *testing.T) {
	cfg, w := testPoint(t)
	s := New(Config{})
	m1, err := s.Machine(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := s.Machine(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Error("same point resolved to two machines")
	}
	other := cfg
	other.NumPUs *= 2
	m3, err := s.Machine(other, w)
	if err != nil {
		t.Fatal(err)
	}
	if m3 == m1 {
		t.Error("different points share a machine")
	}
}

func TestLRUEvicts(t *testing.T) {
	// Capacity 16 spreads to one entry per shard, so two digests in one
	// shard evict each other; digests differing only past byte 0 stay in
	// the same shard.
	s := newLRUShards(16, DefaultMemResults)
	var a, b Digest
	a[1], b[1] = 1, 2
	s.put(a, "a")
	if v, ok := s.get(a); !ok || v != "a" {
		t.Fatal("inserted entry missing")
	}
	s.put(b, "b")
	if _, ok := s.get(a); ok {
		t.Error("capacity-1 shard kept both entries")
	}
	if v, ok := s.get(b); !ok || v != "b" {
		t.Error("most recent entry evicted")
	}
}

func TestLRUEvictsLeastRecent(t *testing.T) {
	s := newLRUShards(32, DefaultMemResults) // two per shard
	var a, b, c Digest
	a[1], b[1], c[1] = 1, 2, 3
	s.put(a, "a")
	s.put(b, "b")
	s.get(a) // a is now more recent than b
	s.put(c, "c")
	if _, ok := s.get(b); ok {
		t.Error("least-recent entry survived")
	}
	for _, d := range []Digest{a, c} {
		if _, ok := s.get(d); !ok {
			t.Errorf("recent entry %x evicted", d[1])
		}
	}
}

// waitUntil polls cond for up to five seconds — long enough for any CI
// scheduler hiccup, short enough that a genuine hang fails fast.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSimulateCtxCancellation pins the contract ISSUE 8 fixed: a
// cancelled submission — coalesced waiter or execution leader — returns
// ctx.Err() promptly, while the winning execution runs to completion in
// the background and lands in the cache, never half-made.
func TestSimulateCtxCancellation(t *testing.T) {
	cfg, w := testPoint(t)
	s := New(Config{})

	// Gate the executor so the point is "wedged" until we release it.
	block := make(chan struct{})
	started := make(chan struct{}, 1)
	realRun := s.run
	s.run = func(ctx context.Context, d Digest, c core.Config, wl core.Workload) (*core.Result, error) {
		started <- struct{}{}
		<-block
		return realRun(ctx, d, c, wl)
	}

	// Leader: starts the execution under a cancellable context.
	lctx, lcancel := context.WithCancel(context.Background())
	leaderErr := make(chan error, 1)
	go func() {
		_, err := s.SimulateCtx(lctx, cfg, w)
		leaderErr <- err
	}()
	<-started

	// Waiter: coalesces behind the wedged execution, then cancels. It
	// must come back with ctx.Err(), not block forever.
	wctx, wcancel := context.WithCancel(context.Background())
	waiterErr := make(chan error, 1)
	go func() {
		_, err := s.SimulateCtx(wctx, cfg, w)
		waiterErr <- err
	}()
	waitUntil(t, "waiter to coalesce", func() bool { return s.Stats().Coalesced == 1 })
	wcancel()
	select {
	case err := <-waiterErr:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled waiter returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled waiter still blocked behind the wedged execution")
	}

	// The leader's caller gives up too; the execution must keep running.
	lcancel()
	select {
	case err := <-leaderErr:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled leader returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled leader still blocked on its own execution")
	}
	if got := s.Stats().Executed; got != 0 {
		t.Fatalf("execution completed before it was released (executed=%d)", got)
	}

	// Release the execution: it completes detached and caches its result.
	close(block)
	waitUntil(t, "detached execution to complete", func() bool { return s.Stats().Executed == 1 })
	r, err := s.Simulate(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if r == nil {
		t.Fatal("nil result from cached point")
	}
	st := s.Stats()
	if st.Executed != 1 || st.MemHits != 1 {
		t.Errorf("post-cancellation submission should hit the cache made by the detached execution: %+v", st)
	}

	// An already-cancelled context never starts or waits on an execution
	// for an uncached point, but still gets free cache hits.
	if _, err := s.SimulateCtx(wctx, cfg, w); err != nil {
		t.Errorf("cache hit under a cancelled context should succeed, got %v", err)
	}
	cfg2 := cfg
	cfg2.NumPUs *= 2
	if _, err := s.SimulateCtx(wctx, cfg2, w); !errors.Is(err, context.Canceled) {
		t.Errorf("uncached point under a cancelled context returned %v, want context.Canceled", err)
	}
}

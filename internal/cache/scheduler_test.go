package cache

import (
	"sync"
	"testing"

	"repro/internal/core"
)

func TestSchedulerMemoryAndDiskHits(t *testing.T) {
	cfg, w := testPoint(t)
	dir := t.TempDir()

	s := New(Config{Dir: dir})
	r1, err := s.Simulate(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Simulate(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("memory hit returned a different result instance")
	}
	if st := s.Stats(); st.Executed != 1 || st.MemHits != 1 || st.DiskHits != 0 {
		t.Errorf("stats after two submissions: %+v", st)
	}

	// A fresh scheduler over the same directory can only find the result
	// on disk.
	s2 := New(Config{Dir: dir})
	if _, err := s2.Simulate(cfg, w); err != nil {
		t.Fatal(err)
	}
	if st := s2.Stats(); st.Executed != 0 || st.DiskHits != 1 {
		t.Errorf("fresh-scheduler stats: %+v", st)
	}
	// The disk hit was promoted into memory.
	if _, err := s2.Simulate(cfg, w); err != nil {
		t.Fatal(err)
	}
	if st := s2.Stats(); st.MemHits != 1 {
		t.Errorf("promotion stats: %+v", st)
	}
}

// TestSchedulerCoalesces hammers one point from many goroutines through
// a memory-only scheduler and requires exactly one execution; run under
// -race this is also the concurrency soundness test for the LRU shards
// and the inflight table.
func TestSchedulerCoalesces(t *testing.T) {
	cfg, w := testPoint(t)
	s := New(Config{})
	const workers = 16
	results := make([]*core.Result, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := s.Simulate(cfg, w)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = r
		}(i)
	}
	wg.Wait()
	st := s.Stats()
	if st.Executed != 1 {
		t.Errorf("%d executions for one point under %d concurrent submissions (%+v)",
			st.Executed, workers, st)
	}
	if st.MemHits+st.Coalesced != workers-1 {
		t.Errorf("hits+coalesced = %d, want %d: %+v", st.MemHits+st.Coalesced, workers-1, st)
	}
	for i, r := range results {
		if r == nil || r != results[0] {
			t.Fatalf("worker %d got a different result instance", i)
		}
	}
}

func TestSchedulerNilAndOff(t *testing.T) {
	cfg, w := testPoint(t)
	var nilSched *Scheduler
	if _, err := nilSched.Simulate(cfg, w); err != nil {
		t.Fatalf("nil scheduler: %v", err)
	}
	if st := nilSched.Stats(); st != (Stats{}) {
		t.Errorf("nil scheduler stats: %+v", st)
	}

	off := Off()
	if _, err := off.Simulate(cfg, w); err != nil {
		t.Fatal(err)
	}
	if _, err := off.Simulate(cfg, w); err != nil {
		t.Fatal(err)
	}
	if st := off.Stats(); st.Bypassed != 2 || st.Executed != 0 || st.MemHits != 0 {
		t.Errorf("off scheduler cached something: %+v", st)
	}
}

// TestSchedulerNeverCachesErrors: a failing point re-executes on every
// submission, so probes of error paths (the reliability experiment's
// bank-loss probe) keep observing the failure.
func TestSchedulerNeverCachesErrors(t *testing.T) {
	cfg, w := testPoint(t)
	cfg.NumPUs = 0 // fails validation inside the simulator
	s := New(Config{Dir: t.TempDir()})
	for i := 0; i < 2; i++ {
		if _, err := s.Simulate(cfg, w); err == nil {
			t.Fatal("invalid config simulated successfully")
		}
	}
	if st := s.Stats(); st.Errors != 2 || st.Executed != 0 || st.MemHits != 0 || st.DiskHits != 0 {
		t.Errorf("error outcomes were cached: %+v", st)
	}
}

func TestSchedulerSharesMachines(t *testing.T) {
	cfg, w := testPoint(t)
	s := New(Config{})
	m1, err := s.Machine(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := s.Machine(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Error("same point resolved to two machines")
	}
	other := cfg
	other.NumPUs *= 2
	m3, err := s.Machine(other, w)
	if err != nil {
		t.Fatal(err)
	}
	if m3 == m1 {
		t.Error("different points share a machine")
	}
}

func TestLRUEvicts(t *testing.T) {
	// Capacity 16 spreads to one entry per shard, so two digests in one
	// shard evict each other; digests differing only past byte 0 stay in
	// the same shard.
	s := newLRUShards(16, DefaultMemResults)
	var a, b Digest
	a[1], b[1] = 1, 2
	s.put(a, "a")
	if v, ok := s.get(a); !ok || v != "a" {
		t.Fatal("inserted entry missing")
	}
	s.put(b, "b")
	if _, ok := s.get(a); ok {
		t.Error("capacity-1 shard kept both entries")
	}
	if v, ok := s.get(b); !ok || v != "b" {
		t.Error("most recent entry evicted")
	}
}

func TestLRUEvictsLeastRecent(t *testing.T) {
	s := newLRUShards(32, DefaultMemResults) // two per shard
	var a, b, c Digest
	a[1], b[1], c[1] = 1, 2, 3
	s.put(a, "a")
	s.put(b, "b")
	s.get(a) // a is now more recent than b
	s.put(c, "c")
	if _, ok := s.get(b); ok {
		t.Error("least-recent entry survived")
	}
	for _, d := range []Digest{a, c} {
		if _, ok := s.get(d); !ok {
			t.Errorf("recent entry %x evicted", d[1])
		}
	}
}

package obs

import (
	"expvar"
	"sync"
	"time"

	"repro/internal/units"
)

// Expvar returns the process-wide expvar-backed Recorder, publishing
// everything under the single expvar map "hyve" (visible at
// /debug/vars once a driver serves net/http/pprof). Counters publish
// as integers; gauges and timers as floats; phase times in seconds
// (key suffix "_s") and energies in joules (key suffix "_j"), so the
// endpoint shows human-scale numbers.
//
// The map is published lazily exactly once per process — expvar panics
// on duplicate names — and the same Recorder is returned every call.
func Expvar() Recorder {
	expvarOnce.Do(func() {
		expvarRec = &expvarRecorder{m: expvar.NewMap("hyve")}
	})
	return expvarRec
}

var (
	expvarOnce sync.Once
	expvarRec  *expvarRecorder
)

type expvarRecorder struct {
	m *expvar.Map
}

func (r *expvarRecorder) Count(name string, delta int64) {
	r.m.Add(name, delta)
}

func (r *expvarRecorder) Gauge(name string, v float64) {
	f := new(expvar.Float)
	f.Set(v)
	r.m.Set(name, f)
}

func (r *expvarRecorder) PhaseTime(phase string, t units.Time) {
	r.m.AddFloat(phase+"_s", t.Seconds())
}

func (r *expvarRecorder) PhaseEnergy(component string, e units.Energy) {
	r.m.AddFloat(component+"_j", e.Joules())
}

func (r *expvarRecorder) Timer(name string) func() {
	start := time.Now()
	return func() {
		r.m.AddFloat(name+"_s", time.Since(start).Seconds())
	}
}

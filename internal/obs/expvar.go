package obs

import (
	"expvar"
	"sync"
	"time"

	"repro/internal/units"
)

// Expvar returns the process-wide expvar-backed Recorder, publishing
// everything under the single expvar map "hyve" (visible at
// /debug/vars once a driver serves net/http/pprof). Counters publish
// as integers; gauges and timers as floats; phase times in seconds
// (key suffix "_s") and energies in joules (key suffix "_j"), so the
// endpoint shows human-scale numbers.
//
// The map is published lazily exactly once per process — expvar panics
// on duplicate names — and the same Recorder is returned every call.
func Expvar() Recorder {
	expvarOnce.Do(func() {
		expvarRec = &expvarRecorder{m: expvar.NewMap("hyve")}
	})
	return expvarRec
}

var (
	expvarOnce sync.Once
	expvarRec  *expvarRecorder
)

type expvarRecorder struct {
	m *expvar.Map
	// secNames and jouleNames intern the "_s"/"_j"-suffixed key for
	// each metric name, so steady-state PhaseTime/PhaseEnergy calls
	// stop concatenating (and therefore allocating) a fresh string per
	// recording. Values are strings keyed by the unsuffixed name.
	secNames   sync.Map
	jouleNames sync.Map
}

func (r *expvarRecorder) Count(name string, delta int64) {
	r.m.Add(name, delta)
}

// Gauge sets the named float var, reusing the var published on the
// first call for that name: last write wins with no steady-state
// allocation. (Two first-calls racing both publish; expvar.Map.Set is
// synchronized and later calls all converge on the stored var.)
func (r *expvarRecorder) Gauge(name string, v float64) {
	if f, ok := r.m.Get(name).(*expvar.Float); ok {
		f.Set(v)
		return
	}
	f := new(expvar.Float)
	f.Set(v)
	r.m.Set(name, f)
}

// suffixed returns the interned name+suffix key.
func suffixed(cache *sync.Map, name, suffix string) string {
	if v, ok := cache.Load(name); ok {
		return v.(string)
	}
	s := name + suffix
	cache.Store(name, s)
	return s
}

func (r *expvarRecorder) PhaseTime(phase string, t units.Time) {
	r.m.AddFloat(suffixed(&r.secNames, phase, "_s"), t.Seconds())
}

func (r *expvarRecorder) PhaseEnergy(component string, e units.Energy) {
	r.m.AddFloat(suffixed(&r.jouleNames, component, "_j"), e.Joules())
}

func (r *expvarRecorder) Timer(name string) func() {
	start := time.Now()
	return func() {
		r.m.AddFloat(suffixed(&r.secNames, name, "_s"), time.Since(start).Seconds())
	}
}

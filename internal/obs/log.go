package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"
)

// A small leveled logfmt logger for the CLI drivers: one line per
// event, `ts=<RFC3339> level=<level> msg=<event> k=v ...`, so service
// logs are grep- and parse-stable (every field is addressable by key,
// no free-form sentences to drift). Deliberately minimal: no logger
// hierarchy, no hooks — drivers make one and pass it down.

// Level orders log severities.
type Level int8

// Levels, least to most severe.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return "level(" + strconv.Itoa(int(l)) + ")"
	}
}

// ParseLevel resolves a -log-level flag value.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug, nil
	case "info":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return LevelInfo, fmt.Errorf("obs: unknown log level %q (want debug, info, warn, or error)", s)
}

// Logger writes leveled logfmt lines. A nil *Logger discards
// everything, so call sites never branch.
type Logger struct {
	mu  sync.Mutex
	w   io.Writer
	min Level
	now func() time.Time // test seam; nil means time.Now
}

// NewLogger returns a logger writing events at or above min to w.
func NewLogger(w io.Writer, min Level) *Logger {
	return &Logger{w: w, min: min}
}

// Debug logs at debug level; kv are alternating key, value pairs.
func (l *Logger) Debug(msg string, kv ...any) { l.log(LevelDebug, msg, kv) }

// Info logs at info level.
func (l *Logger) Info(msg string, kv ...any) { l.log(LevelInfo, msg, kv) }

// Warn logs at warn level.
func (l *Logger) Warn(msg string, kv ...any) { l.log(LevelWarn, msg, kv) }

// Error logs at error level.
func (l *Logger) Error(msg string, kv ...any) { l.log(LevelError, msg, kv) }

// Enabled reports whether events at lv would be written.
func (l *Logger) Enabled(lv Level) bool { return l != nil && lv >= l.min }

func (l *Logger) log(lv Level, msg string, kv []any) {
	if !l.Enabled(lv) {
		return
	}
	now := time.Now
	if l.now != nil {
		now = l.now
	}
	var b strings.Builder
	b.WriteString("ts=")
	b.WriteString(now().UTC().Format(time.RFC3339))
	b.WriteString(" level=")
	b.WriteString(lv.String())
	b.WriteString(" msg=")
	b.WriteString(logfmtValue(msg))
	for i := 0; i+1 < len(kv); i += 2 {
		b.WriteByte(' ')
		b.WriteString(fmt.Sprint(kv[i]))
		b.WriteByte('=')
		b.WriteString(logfmtValue(formatLogValue(kv[i+1])))
	}
	if len(kv)%2 == 1 {
		b.WriteString(" !odd-kv=")
		b.WriteString(logfmtValue(formatLogValue(kv[len(kv)-1])))
	}
	b.WriteByte('\n')
	l.mu.Lock()
	io.WriteString(l.w, b.String())
	l.mu.Unlock()
}

// formatLogValue renders common value types compactly.
func formatLogValue(v any) string {
	switch x := v.(type) {
	case string:
		return x
	case time.Duration:
		return x.String()
	case float64:
		return strconv.FormatFloat(x, 'g', 4, 64)
	case error:
		return x.Error()
	default:
		return fmt.Sprint(v)
	}
}

// logfmtValue quotes a value when it contains logfmt metacharacters.
func logfmtValue(s string) string {
	if s == "" {
		return `""`
	}
	if strings.ContainsAny(s, " \t\n\"=") {
		return strconv.Quote(s)
	}
	return s
}

package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// Log-bucketed histograms. One fixed power-of-two bucket ladder covers
// every quantity the simulator observes — wall-clock latencies in
// seconds (sub-microsecond to minutes) and sizes in bytes — so
// histograms from different packages are directly comparable and the
// Prometheus exposition has one stable bucket vocabulary. The ladder
// spans 2^histMinExp .. 2^(histMinExp+histNumBounds-1), i.e. ~6e-8 to
// ~2.1e9, with one ×2 bucket per step plus a +Inf overflow bucket.
const (
	histMinExp    = -24
	histNumBounds = 56
)

// HistogramBound returns the upper bound of finite bucket i
// (0 <= i < histNumBounds): 2^(histMinExp+i).
func HistogramBound(i int) float64 {
	return math.Ldexp(1, histMinExp+i)
}

// Histogram is a concurrent log-bucketed histogram: lock-free atomic
// bucket counts plus a CAS-accumulated sum. The zero value is ready to
// use. Negative and NaN observations are dropped (latencies and sizes
// are non-negative by construction; a poisoned measurement must not
// corrupt the sum).
type Histogram struct {
	buckets [histNumBounds + 1]atomic.Uint64 // last = +Inf overflow
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits
}

// bucketIndex maps v to its bucket: the first i with v <= bound(i),
// or the overflow bucket.
func bucketIndex(v float64) int {
	if v <= HistogramBound(0) {
		return 0
	}
	// ceil(log2 v) positions v among the power-of-two bounds exactly.
	frac, exp := math.Frexp(v) // v = frac * 2^exp, frac in [0.5, 1)
	i := exp - histMinExp
	if frac == 0.5 { // exact power of two: v == bound(exp-1)
		i--
	}
	if i >= histNumBounds {
		return histNumBounds
	}
	return i
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) || v < 0 {
		return
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// BucketCount is one cumulative histogram bucket: the number of
// observations with value <= LE. LE = +Inf for the closing bucket.
type BucketCount struct {
	LE    float64 `json:"le"`
	Count uint64  `json:"count"`
}

// HistogramSample is one histogram in a Snapshot: totals, interpolated
// quantiles, and the cumulative buckets (leading empty buckets skipped,
// tail collapsed once the cumulative count is complete, +Inf always
// present — exactly the series the Prometheus exposition emits).
type HistogramSample struct {
	Name    string        `json:"name"`
	Count   uint64        `json:"count"`
	Sum     float64       `json:"sum"`
	P50     float64       `json:"p50"`
	P90     float64       `json:"p90"`
	P99     float64       `json:"p99"`
	Buckets []BucketCount `json:"buckets"`
}

// Sample snapshots the histogram. Concurrent observers may land between
// the bucket loads; the snapshot is then a momentary mixture, which is
// the standard (and harmless) histogram-scrape semantics.
func (h *Histogram) Sample(name string) HistogramSample {
	s := HistogramSample{Name: name, Sum: h.Sum()}
	var counts [histNumBounds + 1]uint64
	var cum uint64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		cum += counts[i]
	}
	s.Count = cum
	// Cumulative buckets: skip leading zeros, stop once complete.
	var running uint64
	for i := 0; i <= histNumBounds; i++ {
		running += counts[i]
		if running == 0 {
			continue
		}
		le := math.Inf(1)
		if i < histNumBounds {
			le = HistogramBound(i)
		}
		s.Buckets = append(s.Buckets, BucketCount{LE: le, Count: running})
		if running == cum {
			break
		}
	}
	if n := len(s.Buckets); n == 0 || !math.IsInf(s.Buckets[n-1].LE, 1) {
		s.Buckets = append(s.Buckets, BucketCount{LE: math.Inf(1), Count: cum})
	}
	s.P50 = quantileFromBuckets(s.Buckets, cum, 0.50)
	s.P90 = quantileFromBuckets(s.Buckets, cum, 0.90)
	s.P99 = quantileFromBuckets(s.Buckets, cum, 0.99)
	return s
}

// quantileFromBuckets estimates quantile q by linear interpolation
// inside the bucket containing the target rank, the same estimator
// Prometheus' histogram_quantile uses. An empty histogram reports 0; a
// rank landing in the +Inf bucket reports the largest finite bound.
func quantileFromBuckets(buckets []BucketCount, count uint64, q float64) float64 {
	if count == 0 || len(buckets) == 0 {
		return 0
	}
	rank := q * float64(count)
	var prevCum uint64
	lower := 0.0
	for i, b := range buckets {
		if i > 0 {
			lower = buckets[i-1].LE
			prevCum = buckets[i-1].Count
		}
		if float64(b.Count) >= rank {
			if math.IsInf(b.LE, 1) {
				return lower
			}
			in := float64(b.Count - prevCum)
			if in <= 0 {
				return b.LE
			}
			return lower + (b.LE-lower)*(rank-float64(prevCum))/in
		}
	}
	return buckets[len(buckets)-1].LE
}

// HistogramRecorder is the extension interface a Recorder implements to
// accept histogram observations. The 5-method Recorder contract is
// frozen (Nop and every existing integration keep compiling); hot paths
// feed histograms through the package-level Observe helper, which
// quietly drops observations on recorders without the extension.
type HistogramRecorder interface {
	// Observe records one value (seconds for *.seconds metrics, bytes
	// for *.bytes metrics) into the named log-bucketed histogram.
	Observe(name string, v float64)
}

// Observe records v into r's named histogram when r implements
// HistogramRecorder, and does nothing otherwise.
func Observe(r Recorder, name string, v float64) {
	if h, ok := r.(HistogramRecorder); ok {
		h.Observe(name, v)
	}
}

// ObserveSince records the elapsed seconds since start into r's named
// histogram — the timing idiom for instrumented sections.
func ObserveSince(r Recorder, name string, start time.Time) {
	Observe(r, name, time.Since(start).Seconds())
}

// Observe implements HistogramRecorder for the Registry.
func (r *Registry) Observe(name string, v float64) {
	r.mu.Lock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	r.mu.Unlock()
	h.Observe(v)
}

// Hist returns the named histogram, or nil if nothing was observed
// under that name.
func (r *Registry) Hist(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.hists[name]
}

// WithLabel attaches a label to a metric name using the "|k=v"
// convention: the base name stays a dot-separated path, and renderers
// that understand labels (the Prometheus exposition) split the suffix
// into label pairs while flat renderers (expvar) keep the full string
// as the key. Labels compose: WithLabel(WithLabel(n, a, x), b, y).
func WithLabel(name, key, value string) string {
	return name + "|" + key + "=" + value
}

package obs

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func listDir(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		names = append(names, e.Name())
	}
	return names
}

func TestWriteAtomicWritesFullContent(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.json")
	if err := WriteAtomic(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "complete document\n")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "complete document\n" {
		t.Errorf("content = %q", got)
	}
	if names := listDir(t, dir); len(names) != 1 {
		t.Errorf("stray files after success: %v", names)
	}
}

// TestWriteAtomicKilledMidWrite is the crash-safety regression test: a
// writer that dies after emitting half its bytes (the unit-test stand-in
// for a process killed mid-write) must leave the previous content of the
// destination untouched and no partial document under the final name.
func TestWriteAtomicKilledMidWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.json")
	if err := os.WriteFile(path, []byte("old complete document\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("killed mid-write")
	err := WriteAtomic(path, func(w io.Writer) error {
		if _, err := io.WriteString(w, `{"schema":"hyve/artifact/v1","truncat`); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the writer's own error", err)
	}
	got, rerr := os.ReadFile(path)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if string(got) != "old complete document\n" {
		t.Errorf("destination corrupted by failed write: %q", got)
	}
	if names := listDir(t, dir); len(names) != 1 {
		t.Errorf("temp files leaked after failed write: %v", names)
	}
}

// A first write that never existed must not appear at all when the
// writer fails — the "complete or absent" half of the contract.
func TestWriteAtomicFailedFirstWriteLeavesNothing(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.json")
	err := WriteAtomic(path, func(w io.Writer) error {
		io.WriteString(w, "partial")
		return errors.New("die")
	})
	if err == nil {
		t.Fatal("want error")
	}
	if _, serr := os.Stat(path); !os.IsNotExist(serr) {
		t.Errorf("partial file visible under final name: %v", serr)
	}
	if names := listDir(t, dir); len(names) != 0 {
		t.Errorf("temp files leaked: %v", names)
	}
}

func TestWriteAtomicOverwritesExisting(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.json")
	for _, content := range []string{"first\n", "second, longer than the first\n", "3\n"} {
		if err := WriteAtomic(path, func(w io.Writer) error {
			_, err := io.WriteString(w, content)
			return err
		}); err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != content {
			t.Errorf("content = %q, want %q", got, content)
		}
	}
}

func TestWriteAtomicMissingDirectory(t *testing.T) {
	err := WriteAtomic(filepath.Join(t.TempDir(), "no-such-dir", "a.json"),
		func(w io.Writer) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "atomic write") {
		t.Errorf("err = %v, want wrapped create failure", err)
	}
}

package obs

import (
	"bytes"
	"context"
	"expvar"
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/units"
)

func TestHistogramBucketIndex(t *testing.T) {
	cases := []struct {
		v    float64
		want int
	}{
		{0, 0},
		{HistogramBound(0), 0},          // exact smallest bound
		{HistogramBound(0) * 1.0001, 1}, // just past it
		{1.0, -histMinExp},              // 2^0 exactly: bucket with le = 1
		{0.5, -histMinExp - 1},
		{3.0, -histMinExp + 2}, // (2, 4]
		{1e12, histNumBounds},  // overflow
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%g) = %d, want %d", c.v, got, c.want)
		}
	}
	// Every finite bucket's bound must land in its own bucket (v <= le
	// is inclusive), and a hair above must land in the next.
	for i := 0; i < histNumBounds; i++ {
		b := HistogramBound(i)
		if got := bucketIndex(b); got != i {
			t.Fatalf("bound %d (%g) classified into bucket %d", i, b, got)
		}
	}
}

func TestHistogramSampleAndQuantiles(t *testing.T) {
	var h Histogram
	h.Observe(-1)         // dropped
	h.Observe(math.NaN()) // dropped
	for i := 0; i < 100; i++ {
		h.Observe(0.010) // all in the (2^-7, 2^-6] bucket
	}
	s := h.Sample("t")
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100 (negative/NaN must be dropped)", s.Count)
	}
	if math.Abs(s.Sum-1.0) > 1e-9 {
		t.Errorf("sum = %g, want 1.0", s.Sum)
	}
	// All mass in one bucket: every quantile interpolates inside
	// (2^-7, 2^-6] = (0.0078, 0.0156].
	for _, q := range []float64{s.P50, s.P90, s.P99} {
		if q <= 0.0078 || q > 0.0157 {
			t.Errorf("quantile %g outside the observed bucket", q)
		}
	}
	if s.P50 > s.P90 || s.P90 > s.P99 {
		t.Errorf("quantiles not monotone: p50=%g p90=%g p99=%g", s.P50, s.P90, s.P99)
	}
	// Buckets are cumulative and end at +Inf.
	last := s.Buckets[len(s.Buckets)-1]
	if !math.IsInf(last.LE, 1) || last.Count != 100 {
		t.Errorf("closing bucket %+v, want +Inf/100", last)
	}
	for i := 1; i < len(s.Buckets); i++ {
		if s.Buckets[i].Count < s.Buckets[i-1].Count {
			t.Error("cumulative bucket counts decrease")
		}
		if s.Buckets[i].LE <= s.Buckets[i-1].LE {
			t.Error("bucket bounds out of order")
		}
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	s := h.Sample("empty")
	if s.Count != 0 || s.P50 != 0 || s.P99 != 0 {
		t.Errorf("empty histogram sample not zero: %+v", s)
	}
	if len(s.Buckets) != 1 || !math.IsInf(s.Buckets[0].LE, 1) {
		t.Errorf("empty histogram must still close with +Inf: %+v", s.Buckets)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(w+1) * 0.001)
			}
		}(w)
	}
	wg.Wait()
	if got := h.Count(); got != workers*per {
		t.Errorf("lost observations: count = %d, want %d", got, workers*per)
	}
	want := 0.0
	for w := 1; w <= workers; w++ {
		want += float64(w) * 0.001 * per
	}
	if math.Abs(h.Sum()-want) > 1e-6 {
		t.Errorf("sum = %g, want %g (CAS accumulation lost updates)", h.Sum(), want)
	}
}

func TestRegistryHistogramSnapshot(t *testing.T) {
	r := NewRegistry()
	Observe(r, "lat.seconds", 0.5)
	Observe(r, "lat.seconds", 0.7)
	Observe(Nop{}, "lat.seconds", 0.5) // must not panic: Nop lacks the extension
	ObserveSince(r, "since.seconds", time.Now().Add(-10*time.Millisecond))
	s := r.Snapshot()
	if len(s.Histograms) != 2 {
		t.Fatalf("want 2 histograms in snapshot, got %d", len(s.Histograms))
	}
	if s.Histograms[0].Name != "lat.seconds" || s.Histograms[0].Count != 2 {
		t.Errorf("unexpected first histogram: %+v", s.Histograms[0])
	}
	if since := s.Histograms[1]; since.Sum < 0.005 || since.Sum > 5 {
		t.Errorf("ObserveSince recorded implausible elapsed %g", since.Sum)
	}
}

// TestSpanDeterministicIDs builds the same span tree twice (fresh
// buffers) and asserts every span gets the same id both times — the
// property that makes traces diffable across runs.
func TestSpanDeterministicIDs(t *testing.T) {
	build := func() []TraceSpan {
		EnableTracing(64)
		defer DisableTracing()
		ctx, run := StartSpan(context.Background(), "run")
		ectx, exp := StartSpan(ctx, "experiment fig14")
		_, p1 := StartSpanWithID(ectx, "point a", 0xdeadbeef)
		AddSimSpan(p1, "sim", "load", 0, units.Time(2e12))
		AddSimSpan(p1, "sim", "load", units.Time(2e12), units.Time(2e12))
		p1.End()
		_, p2 := StartSpan(ectx, "point b")
		p2.End()
		exp.End()
		run.End()
		return Tracing().Snapshot()
	}
	a := build()
	b := build()
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("trace sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Parent != b[i].Parent || a[i].Name != b[i].Name {
			t.Errorf("span %d not deterministic: %+v vs %+v", i, a[i], b[i])
		}
	}
	// Same-named siblings (the two "load" sim spans) must get distinct ids.
	var loads []uint64
	for _, s := range a {
		if s.Name == "load" {
			loads = append(loads, s.ID)
		}
	}
	if len(loads) != 2 || loads[0] == loads[1] {
		t.Errorf("same-named sibling spans share an id: %v", loads)
	}
	// The explicit-id point span carries exactly the digest-derived id.
	found := false
	for _, s := range a {
		if s.Name == "point a" {
			found = true
			if s.ID != 0xdeadbeef {
				t.Errorf("point span id = %#x, want the explicit digest id", s.ID)
			}
		}
	}
	if !found {
		t.Error("point span missing from trace")
	}
}

func TestSpanDisabledIsNil(t *testing.T) {
	DisableTracing()
	ctx, h := StartSpan(context.Background(), "x")
	if h != nil {
		t.Fatal("StartSpan must return a nil handle while tracing is disabled")
	}
	// Nil handles are safe everywhere.
	h.SetAttr("k", "v")
	h.End()
	if h.ID() != 0 {
		t.Error("nil handle id must be 0")
	}
	AddSimSpan(h, "sim", "p", 0, 1)
	if SpanFromContext(ctx) != nil {
		t.Error("disabled StartSpan must not attach a span to the context")
	}
}

func TestTraceBufferBoundedAndExports(t *testing.T) {
	EnableTracing(4)
	defer DisableTracing()
	ctx, root := StartSpan(context.Background(), "root")
	for i := 0; i < 10; i++ {
		_, c := StartSpan(ctx, "child "+strconv.Itoa(i))
		c.End()
	}
	root.End()
	buf := Tracing()
	if got := len(buf.Snapshot()); got != 4 {
		t.Errorf("ring holds %d spans, want capacity 4", got)
	}
	if buf.Dropped() != 7 { // 11 completed spans - 4 kept
		t.Errorf("dropped = %d, want 7", buf.Dropped())
	}
	var jsonl bytes.Buffer
	if err := buf.WriteJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(jsonl.String(), "\n"); lines != 4 {
		t.Errorf("JSONL lines = %d, want 4", lines)
	}
	var cat bytes.Buffer
	if err := buf.WriteCatapult(&cat, "test"); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"traceEvents"`, `"ph": "X"`, `"process_name"`} {
		if !strings.Contains(cat.String(), want) {
			t.Errorf("catapult export missing %s", want)
		}
	}
}

func TestSpanConcurrent(t *testing.T) {
	EnableTracing(1024)
	defer DisableTracing()
	ctx, root := StartSpan(context.Background(), "root")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_, s := StartSpan(ctx, "w")
				s.SetAttr("i", strconv.Itoa(i))
				AddSimSpan(s, "sim", "phase", 0, 1)
				s.End()
			}
		}()
	}
	wg.Wait()
	root.End()
	if buf := Tracing(); buf.Dropped()+uint64(len(buf.Snapshot())) != 8*200*2+1 {
		t.Errorf("span accounting off: %d buffered + %d dropped",
			len(buf.Snapshot()), buf.Dropped())
	}
}

func TestFlightRing(t *testing.T) {
	f := NewFlightRing(3)
	for i := 0; i < 5; i++ {
		f.Record("k", strconv.Itoa(i), "a", "b")
	}
	snap := f.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("ring holds %d, want 3", len(snap))
	}
	// Oldest first, holding the last 3 of 5.
	for i, e := range snap {
		if want := strconv.Itoa(i + 2); e.Name != want {
			t.Errorf("snap[%d].Name = %s, want %s", i, e.Name, want)
		}
	}
	if f.Total() != 5 {
		t.Errorf("total = %d, want 5", f.Total())
	}
	if snap[0].Seq >= snap[1].Seq {
		t.Error("sequence numbers not increasing")
	}
	if snap[0].Attr["a"] != "b" {
		t.Error("attrs lost")
	}
}

func TestFlightDumpWriterGate(t *testing.T) {
	SetFlightDump(nil)
	DumpFlight("should be silent") // must not panic, must write nowhere
	var out bytes.Buffer
	SetFlightDump(&out)
	defer SetFlightDump(nil)
	Flight().Record("test.event", "x")
	DumpFlight("unit test")
	got := out.String()
	if !strings.Contains(got, "flight recorder dump (unit test)") {
		t.Errorf("dump missing reason header:\n%s", got)
	}
	if !strings.Contains(got, `"kind":"test.event"`) {
		t.Errorf("dump missing recorded event:\n%s", got)
	}
}

func TestFlightConcurrent(t *testing.T) {
	f := NewFlightRing(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				f.Record("k", strconv.Itoa(w))
			}
		}(w)
	}
	wg.Wait()
	if f.Total() != 8*500 {
		t.Errorf("total = %d, want %d", f.Total(), 8*500)
	}
	if len(f.Snapshot()) != 64 {
		t.Errorf("snapshot = %d, want capacity 64", len(f.Snapshot()))
	}
}

// TestPromRoundTrip renders a realistic registry and feeds the document
// back through the parser and linter: zero violations, and spot-checked
// series surviving the round trip with their names, labels, and types.
func TestPromRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Count("cache.hits", 12)
	r.Count("parallel.points.inflight", 2) // up/down → gauge
	r.Gauge(WithLabel("parallel.worker.utilization", "worker", "0"), 0.25)
	r.Gauge(WithLabel("parallel.worker.utilization", "worker", "1"), 0.75)
	r.PhaseTime("sim.phase.load", units.Time(3e12)) // 3 simulated seconds
	r.PhaseEnergy("sim.energy.edge-memory", units.Energy(2e12))
	r.Observe("cache.exec.seconds", 0.25)
	r.Observe("cache.exec.seconds", 2.0)
	r.Observe(WithLabel("check.invariant.seconds", "invariant", "edp model"), 0.125)
	done := r.Timer("warm.up")
	done()

	var b bytes.Buffer
	if err := WriteProm(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	doc, errs := LintProm(strings.NewReader(text))
	for _, e := range errs {
		t.Errorf("lint: %v", e)
	}
	if v, ok := doc.Value("hyve_cache_hits_total"); !ok || v != 12 {
		t.Errorf("hyve_cache_hits_total = %v, %v", v, ok)
	}
	if doc.Types["hyve_parallel_points_inflight"] != "gauge" {
		t.Errorf("inflight typed %q, want gauge (up/down counter)", doc.Types["hyve_parallel_points_inflight"])
	}
	if v, ok := doc.Value("hyve_sim_phase_load_seconds_total"); !ok || math.Abs(v-3) > 1e-12 {
		t.Errorf("phase seconds = %v, %v (want 3 simulated seconds)", v, ok)
	}
	if v, ok := doc.Value("hyve_sim_energy_edge_memory_joules_total"); !ok || math.Abs(v-2) > 1e-12 {
		t.Errorf("energy joules = %v, %v", v, ok)
	}
	utils := doc.SamplesNamed("hyve_parallel_worker_utilization")
	if len(utils) != 2 || utils[0].Label("worker") == "" {
		t.Errorf("labeled gauges did not survive: %+v", utils)
	}
	if doc.Types["hyve_cache_exec_seconds"] != "histogram" {
		t.Error("histogram family not typed histogram")
	}
	buckets := doc.SamplesNamed("hyve_cache_exec_seconds_bucket")
	if len(buckets) == 0 {
		t.Fatal("no histogram buckets in exposition")
	}
	if q := HistQuantile(buckets, 0.5); q <= 0 || q > 2.1 {
		t.Errorf("round-tripped p50 = %g out of range", q)
	}
	// Labeled histogram series keep their label beside le.
	inv := doc.SamplesNamed("hyve_check_invariant_seconds_bucket")
	if len(inv) == 0 || inv[0].Label("invariant") != "edp model" {
		t.Errorf("labeled histogram lost its label: %+v", inv)
	}
	if !strings.Contains(text, `invariant="edp model"`) {
		t.Error("escaped label value missing from text")
	}
	// Every family starts with the namespace.
	for fam := range doc.Types {
		if !strings.HasPrefix(fam, PromPrefix) {
			t.Errorf("family %s missing %s prefix", fam, PromPrefix)
		}
	}
}

func TestPromDeterministicOutput(t *testing.T) {
	build := func() string {
		r := NewRegistry()
		r.Count("b.two", 2)
		r.Count("a.one", 1)
		r.Gauge(WithLabel("g", "k", "2"), 2)
		r.Gauge(WithLabel("g", "k", "1"), 1)
		r.Observe("h.seconds", 0.5)
		var b bytes.Buffer
		if err := WriteProm(&b, r.Snapshot()); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	if build() != build() {
		t.Error("exposition output not deterministic")
	}
}

func TestLoggerFormat(t *testing.T) {
	var b bytes.Buffer
	l := NewLogger(&b, LevelInfo)
	l.now = func() time.Time { return time.Date(2026, 8, 9, 12, 0, 0, 0, time.UTC) }
	l.Debug("hidden")
	l.Info("experiment.done", "id", "fig14", "elapsed", 1500*time.Millisecond, "note", "two words", "speedup", 3.25)
	l.Error("boom", "err", errTest{"file not found"})
	got := b.String()
	lines := strings.Split(strings.TrimSpace(got), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 lines (debug suppressed at info), got %d:\n%s", len(lines), got)
	}
	want := `ts=2026-08-09T12:00:00Z level=info msg=experiment.done id=fig14 elapsed=1.5s note="two words" speedup=3.25`
	if lines[0] != want {
		t.Errorf("logfmt line:\n got %s\nwant %s", lines[0], want)
	}
	if !strings.Contains(lines[1], `level=error`) || !strings.Contains(lines[1], `err="file not found"`) {
		t.Errorf("error line: %s", lines[1])
	}
	// Nil logger and odd kv are safe.
	var nilLogger *Logger
	nilLogger.Info("nothing happens")
	if nilLogger.Enabled(LevelError) {
		t.Error("nil logger must report disabled")
	}
	b.Reset()
	l.Warn("odd", "only-key")
	if !strings.Contains(b.String(), "!odd-kv=only-key") {
		t.Errorf("odd kv not surfaced: %s", b.String())
	}
}

type errTest struct{ s string }

func (e errTest) Error() string { return e.s }

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]Level{
		"debug": LevelDebug, "INFO": LevelInfo, "Warn": LevelWarn,
		"warning": LevelWarn, " error ": LevelError,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("unknown level must error")
	}
}

func TestMultiRecorderFanOut(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	m := Multi(a, b)
	m.Count("c", 2)
	m.Gauge("g", 1.5)
	m.PhaseTime("p", units.Time(1e12))
	m.PhaseEnergy("e", units.Energy(1e12))
	Observe(m, "h.seconds", 0.25)
	done := m.Timer("t")
	done()
	for name, reg := range map[string]*Registry{"a": a, "b": b} {
		s := reg.Snapshot()
		if len(s.Counters) != 1 || s.Counters[0].Value != 2 {
			t.Errorf("%s: counter not fanned out: %+v", name, s.Counters)
		}
		if len(s.Gauges) != 1 || len(s.Phases) != 1 || len(s.Energies) != 1 || len(s.Timers) != 1 {
			t.Errorf("%s: missing fanned-out series: %+v", name, s)
		}
		if len(s.Histograms) != 1 || s.Histograms[0].Count != 1 {
			t.Errorf("%s: histogram not fanned out", name)
		}
	}
}

// TestExpvarGaugeReuse pins the satellite fix: repeated Gauge calls on
// one name must reuse the same expvar.Float instead of allocating and
// re-publishing a fresh var per call.
func TestExpvarGaugeReuse(t *testing.T) {
	r := Expvar().(*expvarRecorder)
	r.Gauge("test.reuse.gauge", 1)
	first, ok := r.m.Get("test.reuse.gauge").(*expvar.Float)
	if !ok {
		t.Fatal("gauge not published as *expvar.Float")
	}
	r.Gauge("test.reuse.gauge", 2)
	second := r.m.Get("test.reuse.gauge").(*expvar.Float)
	if first != second {
		t.Error("Gauge republished a fresh expvar.Float; must reuse")
	}
	if second.Value() != 2 {
		t.Errorf("gauge value = %v, want 2", second.Value())
	}
	if n := testing.AllocsPerRun(100, func() { r.Gauge("test.reuse.gauge", 3) }); n > 0 {
		t.Errorf("steady-state Gauge allocates %.1f per call, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() { r.PhaseTime("test.reuse.phase", units.Time(1)) }); n > 0 {
		t.Errorf("steady-state PhaseTime allocates %.1f per call, want 0", n)
	}
}

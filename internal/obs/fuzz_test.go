package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// FuzzArtifactDecode hardens the artifact loader against arbitrary
// JSON: whatever DecodeJSON and Validate accept must re-encode
// canonically, and the canonical form must be a fixed point (decoding
// and re-encoding it reproduces the same bytes).
func FuzzArtifactDecode(f *testing.F) {
	a := NewArtifact("fuzz-seed", "Fuzz seed artifact", Manifest{
		Datasets: []DatasetRef{{Name: "rmat-16", Scale: 1, Seed: 7}},
	})
	a.AddMetric("time_ps", 12.5, "ps")
	a.AddTable("phases", []string{"phase", "time"}, [][]string{{"load", "1"}, {"process", "2"}})
	a.AddNote("seed artifact")
	var buf bytes.Buffer
	if err := a.EncodeJSON(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"schema":"hyve/artifact/v1","id":"x","title":"t","manifest":{"quick":false}}`))
	f.Add([]byte(`{"schema":"wrong/v9","id":"x"}`))
	f.Add([]byte(`{"unknown_field":1}`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`{"schema":"hyve/artifact/v1","id":"x","title":"t","manifest":{"quick":false},"metrics":[{"name":"","value":1}]}`))
	f.Add([]byte(`{"schema":"hyve/artifact/v1","id":"x","title":"t","manifest":{"quick":false},"tables":[{"header":["a"],"rows":[["1","2"]]}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := DecodeJSON(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := a.Validate(); err != nil {
			return
		}
		var first bytes.Buffer
		if err := a.EncodeJSON(&first); err != nil {
			t.Fatalf("validated artifact does not encode: %v", err)
		}
		b, err := DecodeJSON(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("canonical encoding does not decode: %v", err)
		}
		if err := b.Validate(); err != nil {
			t.Fatalf("canonical encoding does not validate: %v", err)
		}
		var second bytes.Buffer
		if err := b.EncodeJSON(&second); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("canonical form is not a fixed point:\n%s\nvs\n%s", first.String(), second.String())
		}
	})
}

func TestDecodeJSONStrict(t *testing.T) {
	if _, err := DecodeJSON(strings.NewReader(`{"schema":"hyve/artifact/v1","id":"x","bogus":1}`)); err == nil {
		t.Error("unknown field accepted")
	} else if !strings.Contains(err.Error(), "bogus") {
		t.Errorf("error does not name the unknown field: %v", err)
	}
	if _, err := DecodeJSON(strings.NewReader(`[1]`)); err == nil {
		t.Error("non-object document accepted")
	}
	a, err := DecodeJSON(strings.NewReader(`{"schema":"hyve/artifact/v1","id":"x","title":"t","manifest":{"quick":true}}`))
	if err != nil {
		t.Fatalf("minimal artifact rejected: %v", err)
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("minimal artifact fails validation: %v", err)
	}
}

func TestValidateRejectsCorruptArtifacts(t *testing.T) {
	fresh := func() *Artifact {
		a := NewArtifact("v", "t", Manifest{})
		a.AddMetric("m", 1, "")
		a.AddTable("t", []string{"a", "b"}, [][]string{{"1", "2"}})
		return a
	}
	if err := fresh().Validate(); err != nil {
		t.Fatalf("clean artifact fails: %v", err)
	}
	for _, tc := range []struct {
		name    string
		corrupt func(*Artifact)
	}{
		{"wrong schema", func(a *Artifact) { a.Schema = "hyve/artifact/v0" }},
		{"empty id", func(a *Artifact) { a.ID = "" }},
		{"nan metric", func(a *Artifact) { a.Metrics[0].Value = math.NaN() }},
		{"inf metric", func(a *Artifact) { a.Metrics[0].Value = math.Inf(1) }},
		{"unnamed metric", func(a *Artifact) { a.Metrics[0].Name = "" }},
		{"ragged table", func(a *Artifact) { a.Tables[0].Rows[0] = []string{"1"} }},
		{"headerless table", func(a *Artifact) { a.Tables[0].Header = nil }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			a := fresh()
			tc.corrupt(a)
			if err := a.Validate(); err == nil {
				t.Error("corrupt artifact validated")
			}
		})
	}
}

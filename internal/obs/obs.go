// Package obs is the observability layer of the simulator stack:
// structured metrics (counters, gauges, per-phase simulated time,
// per-component energy, host wall-clock timers), a Chrome trace_event
// timeline exporter, and canonical machine-readable run artifacts.
//
// The package is zero-dependency (stdlib only, plus internal/units) and
// designed so that instrumented hot paths pay nothing when observation
// is disabled: the no-op Recorder performs no allocation and no
// synchronization, and every integration point accepts a nil Recorder
// and falls back to it through OrNop/Default.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/units"
)

// Recorder receives metrics from instrumented code. Implementations
// must be safe for concurrent use: the experiment harness reports from
// many worker goroutines at once.
//
// Metric names are dot-separated lowercase paths ("sim.phase.load",
// "parallel.points.completed"); phases and components use the
// simulator's own vocabulary (load/process/writeback/overhead,
// edge-memory/vertex-memory-offchip/…).
type Recorder interface {
	// Count adds delta to the named monotonic counter.
	Count(name string, delta int64)
	// Gauge sets the named gauge to v (last write wins).
	Gauge(name string, v float64)
	// PhaseTime accumulates simulated time under the named phase.
	PhaseTime(phase string, t units.Time)
	// PhaseEnergy accumulates energy under the named component.
	PhaseEnergy(component string, e units.Energy)
	// Timer starts a host wall-clock timer; calling the returned stop
	// function records the elapsed time under name.
	Timer(name string) func()
}

// Nop is the disabled Recorder: every method is a no-op, allocates
// nothing, and takes no locks. The zero value is ready to use.
type Nop struct{}

// nopStop is the shared stop function Timer returns; keeping it a
// package variable means Nop.Timer never closes over anything.
var nopStop = func() {}

// Count implements Recorder.
func (Nop) Count(string, int64) {}

// Gauge implements Recorder.
func (Nop) Gauge(string, float64) {}

// PhaseTime implements Recorder.
func (Nop) PhaseTime(string, units.Time) {}

// PhaseEnergy implements Recorder.
func (Nop) PhaseEnergy(string, units.Energy) {}

// Timer implements Recorder.
func (Nop) Timer(string) func() { return nopStop }

// OrNop returns r, or the no-op Recorder when r is nil — the idiom
// every integration point uses so callers never branch on nil.
func OrNop(r Recorder) Recorder {
	if r == nil {
		return Nop{}
	}
	return r
}

// defaultRec holds the process-global Recorder. It defaults to Nop and
// is swapped exactly once per process in practice (hyve-bench installs
// the expvar recorder at startup); the atomic makes mid-run swaps safe
// anyway. The holder struct keeps atomic.Value's concrete type constant
// across differently-typed Recorder implementations.
type recHolder struct{ r Recorder }

var defaultRec atomic.Value // of recHolder

func init() { defaultRec.Store(recHolder{Nop{}}) }

// Default returns the process-global Recorder. Library code that has no
// per-run Recorder handed to it (the worker pool, the channel
// simulation, the dynamic stores) reports here; it is a no-op unless a
// driver installed something.
func Default() Recorder {
	return defaultRec.Load().(recHolder).r
}

// SetDefault installs the process-global Recorder. A nil r restores the
// no-op.
func SetDefault(r Recorder) {
	defaultRec.Store(recHolder{OrNop(r)})
}

// Registry is an in-memory Recorder: a locked map per metric kind with
// a sorted snapshot view. It backs tests and the -json report paths.
type Registry struct {
	mu       sync.Mutex
	counters map[string]int64
	gauges   map[string]float64
	phases   map[string]units.Time
	energies map[string]units.Energy
	timers   map[string]time.Duration
	hists    map[string]*Histogram
}

// NewRegistry returns an empty Registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]int64{},
		gauges:   map[string]float64{},
		phases:   map[string]units.Time{},
		energies: map[string]units.Energy{},
		timers:   map[string]time.Duration{},
		hists:    map[string]*Histogram{},
	}
}

// Count implements Recorder.
func (r *Registry) Count(name string, delta int64) {
	r.mu.Lock()
	r.counters[name] += delta
	r.mu.Unlock()
}

// Gauge implements Recorder.
func (r *Registry) Gauge(name string, v float64) {
	r.mu.Lock()
	r.gauges[name] = v
	r.mu.Unlock()
}

// PhaseTime implements Recorder.
func (r *Registry) PhaseTime(phase string, t units.Time) {
	r.mu.Lock()
	r.phases[phase] += t
	r.mu.Unlock()
}

// PhaseEnergy implements Recorder.
func (r *Registry) PhaseEnergy(component string, e units.Energy) {
	r.mu.Lock()
	r.energies[component] += e
	r.mu.Unlock()
}

// Timer implements Recorder.
func (r *Registry) Timer(name string) func() {
	start := time.Now()
	return func() {
		d := time.Since(start)
		r.mu.Lock()
		r.timers[name] += d
		r.mu.Unlock()
	}
}

// Counter returns the named counter's current value.
func (r *Registry) Counter(name string) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name]
}

// GaugeValue returns the named gauge's current value.
func (r *Registry) GaugeValue(name string) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gauges[name]
}

// Phase returns the accumulated simulated time of the named phase.
func (r *Registry) Phase(name string) units.Time {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.phases[name]
}

// Energy returns the accumulated energy of the named component.
func (r *Registry) Energy(name string) units.Energy {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.energies[name]
}

// Snapshot is a point-in-time copy of a Registry, every section sorted
// by name for deterministic rendering.
type Snapshot struct {
	Counters   []CounterValue    `json:"counters,omitempty"`
	Gauges     []GaugeSample     `json:"gauges,omitempty"`
	Phases     []PhaseSample     `json:"phases,omitempty"`
	Energies   []EnergySample    `json:"energies,omitempty"`
	Timers     []TimerSample     `json:"timers,omitempty"`
	Histograms []HistogramSample `json:"histograms,omitempty"`
}

// CounterValue is one counter in a Snapshot.
type CounterValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeSample is one gauge in a Snapshot.
type GaugeSample struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// PhaseSample is one phase-time accumulator in a Snapshot (picoseconds).
type PhaseSample struct {
	Name   string  `json:"name"`
	TimePS float64 `json:"time_ps"`
}

// EnergySample is one energy accumulator in a Snapshot (picojoules).
type EnergySample struct {
	Name     string  `json:"name"`
	EnergyPJ float64 `json:"energy_pj"`
}

// TimerSample is one wall-clock timer in a Snapshot.
type TimerSample struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
}

// Snapshot returns a sorted copy of everything recorded so far.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	var s Snapshot
	for n, v := range r.counters {
		s.Counters = append(s.Counters, CounterValue{n, v})
	}
	for n, v := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeSample{n, v})
	}
	for n, v := range r.phases {
		s.Phases = append(s.Phases, PhaseSample{n, float64(v)})
	}
	for n, v := range r.energies {
		s.Energies = append(s.Energies, EnergySample{n, float64(v)})
	}
	for n, v := range r.timers {
		s.Timers = append(s.Timers, TimerSample{n, v.Seconds()})
	}
	for n, h := range r.hists {
		s.Histograms = append(s.Histograms, h.Sample(n))
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Phases, func(i, j int) bool { return s.Phases[i].Name < s.Phases[j].Name })
	sort.Slice(s.Energies, func(i, j int) bool { return s.Energies[i].Name < s.Energies[j].Name })
	sort.Slice(s.Timers, func(i, j int) bool { return s.Timers[i].Name < s.Timers[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// Multi fans every recording out to each of rs (nil entries skipped).
// Histogram observations reach the recorders that implement
// HistogramRecorder. hyve-bench uses it to feed the expvar bridge and
// the Prometheus registry from one process-global Recorder.
func Multi(rs ...Recorder) Recorder {
	var out multiRecorder
	for _, r := range rs {
		if r != nil {
			out = append(out, r)
		}
	}
	return out
}

type multiRecorder []Recorder

func (m multiRecorder) Count(name string, delta int64) {
	for _, r := range m {
		r.Count(name, delta)
	}
}

func (m multiRecorder) Gauge(name string, v float64) {
	for _, r := range m {
		r.Gauge(name, v)
	}
}

func (m multiRecorder) PhaseTime(phase string, t units.Time) {
	for _, r := range m {
		r.PhaseTime(phase, t)
	}
}

func (m multiRecorder) PhaseEnergy(component string, e units.Energy) {
	for _, r := range m {
		r.PhaseEnergy(component, e)
	}
}

func (m multiRecorder) Timer(name string) func() {
	stops := make([]func(), len(m))
	for i, r := range m {
		stops[i] = r.Timer(name)
	}
	return func() {
		for _, stop := range stops {
			stop()
		}
	}
}

// Observe implements HistogramRecorder, forwarding to the members that
// accept histograms.
func (m multiRecorder) Observe(name string, v float64) {
	for _, r := range m {
		Observe(r, name, v)
	}
}

package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Prometheus text exposition (format version 0.0.4) over a Registry
// snapshot. Every series carries the stable "hyve_" prefix; dotted
// metric names mangle to underscore families; the "|k=v" label
// convention (see WithLabel) renders as real Prometheus labels.
//
// Naming rules, pinned here and documented in EXPERIMENTS.md:
//
//	counter  "cache.hits"            → hyve_cache_hits_total
//	counter  "parallel.points.inflight" (up/down) → hyve_parallel_points_inflight  (gauge)
//	gauge    "parallel.worker.utilization|worker=3"
//	                                 → hyve_parallel_worker_utilization{worker="3"}
//	phase    "sim.phase.load"        → hyve_sim_phase_load_seconds_total   (simulated seconds)
//	energy   "sim.energy.edge-memory"→ hyve_sim_energy_edge_memory_joules_total
//	timer    "x"                     → hyve_x_seconds_total                (wall seconds)
//	histogram "cache.exec.seconds"   → hyve_cache_exec_seconds{_bucket,_sum,_count}

// PromPrefix is the namespace every exposed series carries.
const PromPrefix = "hyve_"

// promFamily mangles a dotted metric base name into a Prometheus
// family name: lowercase the base, map every character outside
// [a-z0-9_] to '_', and prepend the namespace.
func promFamily(base string) string {
	var b strings.Builder
	b.Grow(len(PromPrefix) + len(base))
	b.WriteString(PromPrefix)
	for _, r := range base {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		case r >= 'A' && r <= 'Z':
			b.WriteRune(r - 'A' + 'a')
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// splitLabels splits the "|k=v|k2=v2" convention off a metric name and
// renders the label pairs in canonical (sorted, escaped) form without
// the surrounding braces; base is the remaining dotted name.
func splitLabels(name string) (base, labels string) {
	parts := strings.Split(name, "|")
	base = parts[0]
	if len(parts) == 1 {
		return base, ""
	}
	pairs := make([]string, 0, len(parts)-1)
	for _, p := range parts[1:] {
		k, v, ok := strings.Cut(p, "=")
		if !ok {
			k, v = p, ""
		}
		pairs = append(pairs, promFamily(k)[len(PromPrefix):]+"="+strconv.Quote(v))
	}
	sort.Strings(pairs)
	return base, strings.Join(pairs, ",")
}

// promValue formats v the way the exposition format wants.
func promValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

// promHelp gives HELP text for the families instrumented today; unknown
// families get a generic line (the format requires one per family).
var promHelp = map[string]string{
	"hyve_parallel_points_completed_total":   "Simulation/experiment points completed by the worker pool.",
	"hyve_parallel_points_inflight":          "Points currently executing in the worker pool.",
	"hyve_parallel_points_panicked_total":    "Points whose execution panicked (recovered per-point).",
	"hyve_parallel_points_retried_total":     "Additional attempts given to failing points.",
	"hyve_parallel_workers":                  "Workers of the most recently started pool.",
	"hyve_parallel_worker_utilization":       "Busy fraction of each pool worker over its pool's lifetime.",
	"hyve_parallel_point_exec_seconds":       "Wall-clock execution latency of one pool point.",
	"hyve_parallel_point_queue_seconds":      "Wall-clock wait from pool start to point execution start.",
	"hyve_cache_hits_total":                  "Result-cache in-memory hits.",
	"hyve_cache_disk_hits_total":             "Result-cache on-disk (content-addressed store) hits.",
	"hyve_cache_misses_total":                "Result-cache misses that executed a simulation.",
	"hyve_cache_coalesced_total":             "Submissions coalesced onto an in-flight identical point.",
	"hyve_cache_errors_total":                "Submissions whose execution failed (never cached).",
	"hyve_cache_bypassed_total":              "Submissions that skipped the cache (recorder attached or undigestable).",
	"hyve_cache_lookup_seconds":              "Digest computation plus cache-lookup latency per submission.",
	"hyve_cache_exec_seconds":                "Simulation execution latency on a cache miss.",
	"hyve_check_invariant_seconds":           "Wall-clock time of one invariant check, labeled by invariant.",
	"hyve_check_points_timedout_total":       "Conformance points abandoned at the point timeout.",
	"hyve_bench_experiments_total":           "Experiments selected for this hyve-bench run.",
	"hyve_bench_experiments_completed_total": "Experiments finished so far in this hyve-bench run.",
	"hyve_bench_experiments_reused_total":    "Experiments skipped by -resume with a valid artifact.",
	"hyve_sim_runs_total":                    "Completed cost-simulator runs.",
	"hyve_sim_iterations_total":              "Simulated algorithm iterations across all runs.",
	"hyve_sim_edges_processed_total":         "Edges streamed through the simulated PUs.",
	"hyve_serve_requests_admitted_total":     "Service requests admitted past the token bucket.",
	"hyve_serve_requests_rejected_total":     "Service requests rejected by admission control (429).",
	"hyve_serve_breaker_rejected_total":      "Point executions rejected by an open circuit breaker (503).",
	"hyve_serve_breaker_open":                "Circuit breakers currently open or half-open, across datasets.",
	"hyve_serve_inflight":                    "Admitted service requests currently executing.",
	"hyve_serve_request_seconds":             "End-to-end service request latency (admission to last byte).",
	"hyve_serve_points_served_total":         "Simulation points served successfully over HTTP.",
	"hyve_serve_drains_total":                "Graceful drains started (0 or 1 per process lifetime).",
	"hyve_cluster_leases_granted_total":      "Shard leases granted to workers (including regrants).",
	"hyve_cluster_leases_reclaimed_total":    "Leases taken back from dead, stalled, or misbehaving workers.",
	"hyve_cluster_leases_expired_total":      "Leases reclaimed specifically for missing heartbeats (subset of reclaimed).",
	"hyve_cluster_leases_completed_total":    "Shards whose every point merged.",
	"hyve_cluster_shards_reassigned_total":   "Leases granted to a shard beyond its first (the recovery path working).",
	"hyve_cluster_shards_poisoned_total":     "Shards quarantined after distinct workers kept failing them.",
	"hyve_cluster_results_merged_total":      "Point payloads validated and merged into the artifact.",
	"hyve_cluster_results_duplicate_total":   "Redundant deliveries discarded (stale generation or already merged).",
	"hyve_cluster_results_corrupt_total":     "Deliveries rejected: invalid payload, outside the lease, or byte conflict.",
	"hyve_cluster_workers_joined_total":      "Worker connections accepted.",
	"hyve_cluster_workers_lost_total":        "Worker connections dropped (disconnect, bad frame, idle timeout).",
	"hyve_cluster_frames_bad_total":          "Frames refused by the wire protocol (CRC, framing, or protocol errors).",
	"hyve_cluster_workers_live":              "Worker connections currently open.",
	"hyve_cluster_shards":                    "Shards the sweep was cut into.",
	"hyve_cluster_shards_leased":             "Shards currently out on lease.",
	"hyve_cluster_shard_attempts":            "Grants each completed shard needed (1 = first worker finished it).",
	"hyve_cluster_worker_points_total":       "Points merged, labeled by the worker that computed them.",
}

// upDownCounters lists recorded-as-Count names that are semantically
// up/down gauges; the exposition types them gauge and drops _total.
var upDownCounters = map[string]bool{
	"parallel.points.inflight": true,
	"serve.inflight":           true,
}

type promSeries struct {
	family string
	typ    string // counter | gauge | histogram
	lines  []string
}

// WriteProm renders a Snapshot in the Prometheus text format: families
// sorted, HELP and TYPE emitted once per family, series sorted within.
func WriteProm(w io.Writer, s Snapshot) error {
	byFamily := map[string]*promSeries{}
	add := func(name, typ, suffix string, v float64) {
		base, labels := splitLabels(name)
		fam := promFamily(base) + suffix
		ps, ok := byFamily[fam]
		if !ok {
			ps = &promSeries{family: fam, typ: typ}
			byFamily[fam] = ps
		}
		line := fam
		if labels != "" {
			line += "{" + labels + "}"
		}
		ps.lines = append(ps.lines, line+" "+promValue(v))
	}
	for _, c := range s.Counters {
		base, _ := splitLabels(c.Name)
		if upDownCounters[base] {
			add(c.Name, "gauge", "", float64(c.Value))
		} else {
			add(c.Name, "counter", "_total", float64(c.Value))
		}
	}
	for _, g := range s.Gauges {
		add(g.Name, "gauge", "", g.Value)
	}
	for _, p := range s.Phases {
		add(p.Name, "counter", "_seconds_total", p.TimePS*1e-12)
	}
	for _, e := range s.Energies {
		add(e.Name, "counter", "_joules_total", e.EnergyPJ*1e-12)
	}
	for _, t := range s.Timers {
		add(t.Name, "counter", "_seconds_total", t.Seconds)
	}
	for _, h := range s.Histograms {
		base, labels := splitLabels(h.Name)
		fam := promFamily(base)
		ps, ok := byFamily[fam]
		if !ok {
			ps = &promSeries{family: fam, typ: "histogram"}
			byFamily[fam] = ps
		}
		for _, b := range h.Buckets {
			ls := `le="` + promValue(b.LE) + `"`
			if labels != "" {
				ls = labels + "," + ls
			}
			ps.lines = append(ps.lines, fmt.Sprintf("%s_bucket{%s} %d", fam, ls, b.Count))
		}
		brace := ""
		if labels != "" {
			brace = "{" + labels + "}"
		}
		ps.lines = append(ps.lines,
			fam+"_sum"+brace+" "+promValue(h.Sum),
			fmt.Sprintf("%s_count%s %d", fam, brace, h.Count))
	}

	fams := make([]string, 0, len(byFamily))
	for f := range byFamily {
		fams = append(fams, f)
	}
	sort.Strings(fams)
	for _, f := range fams {
		ps := byFamily[f]
		help, ok := promHelp[f]
		if !ok {
			help = "HyVE metric " + f + "."
		}
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f, help, f, ps.typ); err != nil {
			return err
		}
		// Histogram bucket order must stay by ascending le within a
		// labelset; the sample order above already is. Sorting the
		// non-histogram lines keeps output deterministic.
		if ps.typ != "histogram" {
			sort.Strings(ps.lines)
		}
		for _, line := range ps.lines {
			if _, err := io.WriteString(w, line+"\n"); err != nil {
				return err
			}
		}
	}
	return nil
}

// PromHandler serves the registry in the Prometheus text format — the
// /metrics endpoint.
func (r *Registry) PromHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WriteProm(w, r.Snapshot())
	})
}

// --- global metrics registry --------------------------------------------

var (
	metricsOnce sync.Once
	metricsReg  *Registry
)

// Metrics returns the process-global Registry backing the /metrics
// endpoint. Drivers that expose Prometheus install it (usually teed
// with the expvar bridge) as the default Recorder:
//
//	obs.SetDefault(obs.Multi(obs.Expvar(), obs.Metrics()))
//	mux.Handle("/metrics", obs.Metrics().PromHandler())
func Metrics() *Registry {
	metricsOnce.Do(func() { metricsReg = NewRegistry() })
	return metricsReg
}

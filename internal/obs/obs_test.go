package obs

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/units"
)

// TestNopZeroAlloc pins the hot-path contract: the disabled recorder
// performs no allocation on any method, so instrumented simulator inner
// paths pay nothing when observation is off.
func TestNopZeroAlloc(t *testing.T) {
	var r Recorder = Nop{}
	cases := map[string]func(){
		"Count":       func() { r.Count("x", 1) },
		"Gauge":       func() { r.Gauge("x", 1) },
		"PhaseTime":   func() { r.PhaseTime("x", units.Nanosecond) },
		"PhaseEnergy": func() { r.PhaseEnergy("x", 1) },
		"Timer":       func() { r.Timer("x")() },
	}
	for name, fn := range cases {
		if allocs := testing.AllocsPerRun(100, fn); allocs != 0 {
			t.Errorf("Nop.%s allocates %.0f times per call, want 0", name, allocs)
		}
	}
}

func TestOrNop(t *testing.T) {
	if _, ok := OrNop(nil).(Nop); !ok {
		t.Error("OrNop(nil) should return Nop")
	}
	reg := NewRegistry()
	if OrNop(reg) != Recorder(reg) {
		t.Error("OrNop should pass a non-nil recorder through")
	}
}

func TestDefaultInstallAndRestore(t *testing.T) {
	if _, ok := Default().(Nop); !ok {
		t.Fatalf("default recorder should start as Nop, got %T", Default())
	}
	reg := NewRegistry()
	SetDefault(reg)
	defer SetDefault(nil)
	Default().Count("x", 3)
	if got := reg.Counter("x"); got != 3 {
		t.Errorf("counter after SetDefault = %d, want 3", got)
	}
	SetDefault(nil)
	if _, ok := Default().(Nop); !ok {
		t.Error("SetDefault(nil) should restore Nop")
	}
}

func TestRegistryAccumulatesAndSnapshots(t *testing.T) {
	r := NewRegistry()
	r.Count("b.count", 2)
	r.Count("b.count", 3)
	r.Count("a.count", 1)
	r.Gauge("g", 1.5)
	r.Gauge("g", 2.5) // last write wins
	r.PhaseTime("load", 10*units.Nanosecond)
	r.PhaseTime("load", 5*units.Nanosecond)
	r.PhaseEnergy("edge", 7)
	r.Timer("t")()

	if got := r.Counter("b.count"); got != 5 {
		t.Errorf("Counter(b.count) = %d, want 5", got)
	}
	if got := r.GaugeValue("g"); got != 2.5 {
		t.Errorf("GaugeValue(g) = %v, want 2.5", got)
	}
	if got := r.Phase("load"); got != 15*units.Nanosecond {
		t.Errorf("Phase(load) = %v, want 15ns", got)
	}
	if got := r.Energy("edge"); got != 7 {
		t.Errorf("Energy(edge) = %v, want 7", got)
	}

	s := r.Snapshot()
	wantCounters := []CounterValue{{"a.count", 1}, {"b.count", 5}}
	if !reflect.DeepEqual(s.Counters, wantCounters) {
		t.Errorf("Snapshot counters = %v, want sorted %v", s.Counters, wantCounters)
	}
	if len(s.Timers) != 1 || s.Timers[0].Name != "t" || s.Timers[0].Seconds < 0 {
		t.Errorf("Snapshot timers = %v", s.Timers)
	}
}

// TestCatapultRoundTrip encodes a timeline and decodes it back through
// encoding/json, checking structure, unit conversion (ps → µs), and
// track ordering metadata.
func TestCatapultRoundTrip(t *testing.T) {
	var tl Timeline
	tl.Track("controller")
	tl.Track("PU 0")
	tl.Add(Span{Track: "PU 0", Name: "block", Cat: "process",
		Start: 2 * units.Microsecond, Dur: units.Microsecond,
		Args: map[string]any{"edges": 42}})
	tl.Add(Span{Track: "controller", Name: "fill", Cat: "load",
		Start: 0, Dur: 2 * units.Microsecond})

	var buf bytes.Buffer
	if err := tl.WriteCatapult(&buf, "test"); err != nil {
		t.Fatal(err)
	}
	var doc CatapultTrace
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("round trip failed: %v", err)
	}
	if doc.DisplayTimeUnit != "ns" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	// 1 process_name + 2 per track + 2 spans.
	if len(doc.TraceEvents) != 1+2*2+2 {
		t.Fatalf("got %d events, want 7", len(doc.TraceEvents))
	}
	var spans []CatapultEvent
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" {
			spans = append(spans, e)
		}
	}
	if len(spans) != 2 {
		t.Fatalf("got %d X events, want 2", len(spans))
	}
	// "block" starts at 2 µs and lasts 1 µs, on the second track (tid 1).
	if spans[0].Name != "block" || spans[0].TS != 2 || spans[0].Dur == nil || *spans[0].Dur != 1 || spans[0].TID != 1 {
		t.Errorf("block span wrong: %+v", spans[0])
	}
	if spans[1].Name != "fill" || spans[1].TID != 0 {
		t.Errorf("fill span wrong: %+v", spans[1])
	}
	if tl.End() != 3*units.Microsecond {
		t.Errorf("End() = %v, want 3µs", tl.End())
	}
}

// TestArtifactEncodingDeterministic checks two artifacts built the same
// way encode to identical bytes, and that the encoding is valid JSON
// with the schema marker.
func TestArtifactEncodingDeterministic(t *testing.T) {
	build := func() *Artifact {
		a := NewArtifact("fig1", "a title", Manifest{
			Quick:    true,
			Datasets: []DatasetRef{{Name: "YT", Scale: 100, Seed: 7, FullVertices: 10, FullEdges: 20}},
		})
		a.AddMetric("mean", 1.5, "x")
		a.AddTable("main", []string{"a", "b"}, [][]string{{"1", "2"}, {"3", "4"}})
		a.AddNote("note line")
		return a
	}
	var b1, b2 bytes.Buffer
	if err := build().EncodeJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := build().EncodeJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Errorf("identical artifacts encode differently:\n%s\n---\n%s", b1.String(), b2.String())
	}
	var doc map[string]any
	if err := json.Unmarshal(b1.Bytes(), &doc); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if doc["schema"] != ArtifactSchema {
		t.Errorf("schema = %v, want %s", doc["schema"], ArtifactSchema)
	}
}

// TestArtifactAddTableCopies verifies the artifact deep-copies table
// storage, so a runner reusing its row buffers cannot corrupt an
// already-recorded table.
func TestArtifactAddTableCopies(t *testing.T) {
	a := NewArtifact("x", "t", Manifest{})
	rows := [][]string{{"v"}}
	a.AddTable("t", []string{"h"}, rows)
	rows[0][0] = "mutated"
	if a.Tables[0].Rows[0][0] != "v" {
		t.Error("AddTable did not deep-copy rows")
	}
}

func TestExpvarRecorder(t *testing.T) {
	r := Expvar()
	if r == nil {
		t.Fatal("Expvar() returned nil")
	}
	// Must be a stable singleton: expvar panics on duplicate map names.
	if Expvar() != r {
		t.Error("Expvar() is not a singleton")
	}
	r.Count("test.counter", 2)
	r.Gauge("test.gauge", 1.25)
	r.PhaseTime("test.phase", units.Second)
	r.Timer("test.timer")()
}

package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/units"
)

// Hierarchical span tracing. Spans nest run → experiment → point →
// phase: drivers open a run span, experiments open children, the cache
// scheduler opens one span per executed point (its id derived from the
// point's canonical digest, so the same point carries the same id in
// every trace), and the simulator emits per-iteration phase spans under
// the point on the simulated timebase. Completed spans land in a
// bounded global ring (the newest spans win; tracing can never grow
// memory without bound) and export as JSONL or Chrome trace_event.
//
// Tracing is off by default and costs one atomic load per StartSpan
// when disabled: StartSpan returns a nil handle whose every method is a
// no-op, so instrumented paths never branch on "is tracing on".

// TraceSpan is one completed span in the buffer.
type TraceSpan struct {
	// ID is deterministic: fnv64a over (parent id, name, per-parent
	// occurrence index of name), or an explicit id (point spans use the
	// leading 8 bytes of the point digest). Identical span trees get
	// identical ids across runs; wall-clock fields of course differ.
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"`
	Name   string `json:"name"`
	// Cat is "wall" for host wall-clock spans, "sim" for spans on the
	// simulated timebase.
	Cat string `json:"cat"`
	// Track labels the export lane: the root span's name for wall
	// spans, an explicit track for sim spans.
	Track string `json:"track,omitempty"`
	// StartUS/DurUS are microseconds — since tracing was enabled for
	// wall spans, simulated microseconds for sim spans.
	StartUS float64           `json:"ts_us"`
	DurUS   float64           `json:"dur_us"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// SpanHandle is an open span. A nil handle is valid: every method is a
// no-op, which is what StartSpan returns while tracing is disabled.
type SpanHandle struct {
	buf   *TraceBuffer
	id    uint64
	track string
	name  string
	start time.Time
	attrs map[string]string

	mu       sync.Mutex
	children map[string]int // per-name occurrence counts
	parentID uint64
	ended    bool
}

// ID returns the span's deterministic id (0 on a nil handle).
func (h *SpanHandle) ID() uint64 {
	if h == nil {
		return 0
	}
	return h.id
}

// SetAttr attaches a key→value detail to the span before End.
func (h *SpanHandle) SetAttr(key, value string) {
	if h == nil {
		return
	}
	h.mu.Lock()
	if h.attrs == nil {
		h.attrs = make(map[string]string)
	}
	h.attrs[key] = value
	h.mu.Unlock()
}

// End completes the span and records it into the trace buffer. End is
// idempotent; a second call does nothing.
func (h *SpanHandle) End() {
	if h == nil {
		return
	}
	h.mu.Lock()
	if h.ended {
		h.mu.Unlock()
		return
	}
	h.ended = true
	attrs := h.attrs
	h.mu.Unlock()
	b := h.buf
	b.add(TraceSpan{
		ID:      h.id,
		Parent:  h.parentID,
		Name:    h.name,
		Cat:     "wall",
		Track:   h.track,
		StartUS: float64(h.start.Sub(b.epoch)) / float64(time.Microsecond),
		DurUS:   float64(time.Since(h.start)) / float64(time.Microsecond),
		Attrs:   attrs,
	})
}

// childID derives the deterministic id of a child span: fnv64a over the
// parent id, the name, and how many same-named children the parent has
// already issued (so sequentially-emitted repeats — per-iteration phase
// spans — stay distinct and stable). h may be nil (a root).
func (h *SpanHandle) childID(buf *TraceBuffer, name string) (id, parent uint64) {
	var occ int
	if h != nil {
		parent = h.id
		h.mu.Lock()
		if h.children == nil {
			h.children = make(map[string]int)
		}
		occ = h.children[name]
		h.children[name]++
		h.mu.Unlock()
	} else {
		buf.mu.Lock()
		occ = buf.rootSeen[name]
		buf.rootSeen[name]++
		buf.mu.Unlock()
	}
	return spanID(parent, name, occ), parent
}

// spanID is the deterministic id derivation.
func spanID(parent uint64, name string, occurrence int) uint64 {
	f := fnv.New64a()
	var b [8]byte
	putU64(b[:], parent)
	f.Write(b[:])
	io.WriteString(f, name)
	putU64(b[:], uint64(occurrence))
	f.Write(b[:])
	id := f.Sum64()
	if id == 0 { // 0 means "no parent"; never issue it
		id = 1
	}
	return id
}

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * uint(7-i)))
	}
}

type spanCtxKey struct{}

// SpanFromContext returns the open span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *SpanHandle {
	h, _ := ctx.Value(spanCtxKey{}).(*SpanHandle)
	return h
}

// ContextWithSpan returns ctx carrying h as the current span.
func ContextWithSpan(ctx context.Context, h *SpanHandle) context.Context {
	if h == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, h)
}

// StartSpan opens a span named name as a child of the span carried by
// ctx (a root when none) and returns the derived context carrying it.
// attrs are alternating key, value pairs. While tracing is disabled it
// returns (ctx, nil) after one atomic load — a nil handle's End and
// SetAttr are no-ops.
func StartSpan(ctx context.Context, name string, attrs ...string) (context.Context, *SpanHandle) {
	buf := Tracing()
	if buf == nil {
		return ctx, nil
	}
	parent := SpanFromContext(ctx)
	id, parentID := parent.childID(buf, name)
	h := newHandle(buf, parent, id, parentID, name, attrs)
	return ContextWithSpan(ctx, h), h
}

// StartSpanWithID is StartSpan with an explicit deterministic id —
// point spans use the leading bytes of the point digest, making the
// span id a function of the point alone, stable across runs, worker
// counts, and schedules.
func StartSpanWithID(ctx context.Context, name string, id uint64, attrs ...string) (context.Context, *SpanHandle) {
	buf := Tracing()
	if buf == nil {
		return ctx, nil
	}
	if id == 0 {
		id = 1
	}
	parent := SpanFromContext(ctx)
	h := newHandle(buf, parent, id, parent.ID(), name, attrs)
	return ContextWithSpan(ctx, h), h
}

func newHandle(buf *TraceBuffer, parent *SpanHandle, id, parentID uint64, name string, attrs []string) *SpanHandle {
	h := &SpanHandle{
		buf:      buf,
		id:       id,
		parentID: parentID,
		name:     name,
		start:    time.Now(),
		attrs:    attrPairs(attrs),
	}
	if parent != nil {
		h.track = parent.track
	} else {
		h.track = name
	}
	return h
}

func attrPairs(kv []string) map[string]string {
	if len(kv) == 0 {
		return nil
	}
	m := make(map[string]string, len(kv)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		m[kv[i]] = kv[i+1]
	}
	return m
}

// AddSimSpan records a completed span on the simulated timebase under
// parent: start and dur are simulated time, track names the export
// lane ("sim acc+HyVE-opt/LJ"). The id derivation matches StartSpan, so
// the phase spans of a point are as stable across runs as the point
// span itself. No-op while tracing is disabled or parent is nil-safe.
func AddSimSpan(parent *SpanHandle, track, name string, start, dur units.Time, attrs ...string) {
	buf := Tracing()
	if buf == nil {
		return
	}
	id, parentID := parent.childID(buf, name)
	buf.add(TraceSpan{
		ID:      id,
		Parent:  parentID,
		Name:    name,
		Cat:     "sim",
		Track:   track,
		StartUS: float64(start) / 1e6, // picoseconds → microseconds
		DurUS:   float64(dur) / 1e6,
		Attrs:   attrPairs(attrs),
	})
}

// TraceBuffer is a bounded ring of completed spans: recording never
// blocks on an exporter and never grows past the capacity — when full,
// the oldest spans are overwritten and counted as dropped.
type TraceBuffer struct {
	epoch time.Time

	mu       sync.Mutex
	spans    []TraceSpan
	next     int
	total    uint64
	rootSeen map[string]int
}

// DefaultTraceSpans is the global buffer capacity EnableTracing(0) uses.
const DefaultTraceSpans = 16384

// NewTraceBuffer returns an empty buffer holding up to capacity spans
// (DefaultTraceSpans when capacity <= 0).
func NewTraceBuffer(capacity int) *TraceBuffer {
	if capacity <= 0 {
		capacity = DefaultTraceSpans
	}
	return &TraceBuffer{
		epoch:    time.Now(),
		spans:    make([]TraceSpan, 0, capacity),
		rootSeen: make(map[string]int),
	}
}

func (b *TraceBuffer) add(s TraceSpan) {
	b.mu.Lock()
	if len(b.spans) < cap(b.spans) {
		b.spans = append(b.spans, s)
	} else {
		b.spans[b.next] = s
		b.next = (b.next + 1) % len(b.spans)
	}
	b.total++
	b.mu.Unlock()
}

// Snapshot returns the buffered spans, oldest first.
func (b *TraceBuffer) Snapshot() []TraceSpan {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]TraceSpan, 0, len(b.spans))
	out = append(out, b.spans[b.next:]...)
	out = append(out, b.spans[:b.next]...)
	return out
}

// Dropped returns how many spans were overwritten by newer ones.
func (b *TraceBuffer) Dropped() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.total <= uint64(len(b.spans)) {
		return 0
	}
	return b.total - uint64(len(b.spans))
}

// WriteJSONL writes one JSON object per buffered span, oldest first.
func (b *TraceBuffer) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, s := range b.Snapshot() {
		if err := enc.Encode(s); err != nil {
			return fmt.Errorf("obs: encoding trace span: %w", err)
		}
	}
	return nil
}

// Catapult renders the buffer in the Chrome trace_event format, one
// thread lane per track (wall spans on their root span's lane, sim
// spans on their explicit track), reusing the timeline exporter's
// document types. Span ids and parents ride in args.
func (b *TraceBuffer) Catapult(processName string) CatapultTrace {
	spans := b.Snapshot()
	var tl Timeline
	for _, s := range spans {
		track := s.Track
		if track == "" {
			track = s.Name
		}
		tl.Track(track)
	}
	events := make([]CatapultEvent, 0, 2*len(tl.tracks)+len(spans)+1)
	events = append(events, CatapultEvent{
		Name: "process_name", Ph: "M", PID: 1, TID: 0,
		Args: map[string]any{"name": processName},
	})
	for tid, track := range tl.tracks {
		events = append(events,
			CatapultEvent{Name: "thread_name", Ph: "M", PID: 1, TID: tid,
				Args: map[string]any{"name": track}},
			CatapultEvent{Name: "thread_sort_index", Ph: "M", PID: 1, TID: tid,
				Args: map[string]any{"sort_index": tid}},
		)
	}
	for _, s := range spans {
		track := s.Track
		if track == "" {
			track = s.Name
		}
		dur := s.DurUS
		args := map[string]any{"id": s.ID, "cat": s.Cat}
		if s.Parent != 0 {
			args["parent"] = s.Parent
		}
		for k, v := range s.Attrs {
			args[k] = v
		}
		events = append(events, CatapultEvent{
			Name: s.Name, Cat: s.Cat, Ph: "X",
			TS: s.StartUS, Dur: &dur,
			PID: 1, TID: tl.trackN[track], Args: args,
		})
	}
	return CatapultTrace{TraceEvents: events, DisplayTimeUnit: "ns"}
}

// WriteCatapult writes the Chrome trace_event JSON document.
func (b *TraceBuffer) WriteCatapult(w io.Writer, processName string) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(b.Catapult(processName)); err != nil {
		return fmt.Errorf("obs: encoding span trace: %w", err)
	}
	return nil
}

// --- global buffer -------------------------------------------------------

var globalTrace atomic.Pointer[TraceBuffer]

// EnableTracing installs a fresh global trace buffer of the given
// capacity (DefaultTraceSpans when <= 0) and returns it. Subsequent
// StartSpan/AddSimSpan calls record into it.
func EnableTracing(capacity int) *TraceBuffer {
	b := NewTraceBuffer(capacity)
	globalTrace.Store(b)
	return b
}

// DisableTracing removes the global buffer; StartSpan reverts to its
// disabled no-op fast path.
func DisableTracing() { globalTrace.Store(nil) }

// Tracing returns the global trace buffer, or nil while disabled.
func Tracing() *TraceBuffer { return globalTrace.Load() }

// TracingEnabled reports whether a global trace buffer is installed.
func TracingEnabled() bool { return globalTrace.Load() != nil }

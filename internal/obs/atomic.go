package obs

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteAtomic writes a file so that a crash at any instant leaves either
// the complete new content or no file at all — never a truncated
// document. The content is produced into a hidden temp file in the
// destination directory (same filesystem, so the final step is a true
// rename), synced to stable storage, and renamed over path. A process
// killed mid-write leaves only a stray .tmp file, which readers ignore
// and a later run overwrites; resumable drivers (hyve-bench -resume)
// depend on this: any file that exists under its final name decodes.
func WriteAtomic(path string, write func(w io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-")
	if err != nil {
		return fmt.Errorf("obs: atomic write %s: %w", path, err)
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err := write(tmp); err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("obs: atomic write %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("obs: atomic write %s: %w", path, err)
	}
	name := tmp.Name()
	tmp = nil // success path: nothing left for the deferred cleanup
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return fmt.Errorf("obs: atomic write %s: %w", path, err)
	}
	return nil
}

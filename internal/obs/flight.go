package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// Flight recorder: a fixed-size ring of recent structured events —
// point started/finished/panicked/timed out, cache hit/miss, fault
// aborts — that is cheap enough to leave always on. When something goes
// wrong (a worker panic, a conformance point timeout) the ring is the
// last N things the process did, dumped automatically to the installed
// writer and on demand via the /debug/flight endpoint.

// FlightEvent is one entry in the ring.
type FlightEvent struct {
	Seq  uint64            `json:"seq"`
	Wall time.Time         `json:"wall"`
	Kind string            `json:"kind"` // "parallel.point", "cache.hit", "check.timeout", …
	Name string            `json:"name"` // the subject: an index, digest, seed, experiment id
	Attr map[string]string `json:"attr,omitempty"`
}

// FlightRing is a bounded ring of FlightEvents, safe for concurrent
// recording and dumping. The zero value is unusable; use NewFlightRing.
type FlightRing struct {
	mu   sync.Mutex
	buf  []FlightEvent
	next int
	seq  uint64
}

// DefaultFlightEvents is the capacity of the process-global ring.
const DefaultFlightEvents = 512

// NewFlightRing returns an empty ring holding up to capacity events
// (DefaultFlightEvents when capacity <= 0).
func NewFlightRing(capacity int) *FlightRing {
	if capacity <= 0 {
		capacity = DefaultFlightEvents
	}
	return &FlightRing{buf: make([]FlightEvent, 0, capacity)}
}

// Record appends one event; attrs are alternating key, value pairs.
func (f *FlightRing) Record(kind, name string, attrs ...string) {
	e := FlightEvent{Wall: time.Now(), Kind: kind, Name: name, Attr: attrPairs(attrs)}
	f.mu.Lock()
	f.seq++
	e.Seq = f.seq
	if len(f.buf) < cap(f.buf) {
		f.buf = append(f.buf, e)
	} else {
		f.buf[f.next] = e
		f.next = (f.next + 1) % len(f.buf)
	}
	f.mu.Unlock()
}

// Snapshot returns the buffered events, oldest first.
func (f *FlightRing) Snapshot() []FlightEvent {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]FlightEvent, 0, len(f.buf))
	out = append(out, f.buf[f.next:]...)
	out = append(out, f.buf[:f.next]...)
	return out
}

// Total returns how many events were ever recorded (>= len(Snapshot())).
func (f *FlightRing) Total() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.seq
}

// WriteJSONL writes one JSON object per buffered event, oldest first.
func (f *FlightRing) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range f.Snapshot() {
		if err := enc.Encode(e); err != nil {
			return fmt.Errorf("obs: encoding flight event: %w", err)
		}
	}
	return nil
}

// --- global ring ---------------------------------------------------------

var (
	flightOnce sync.Once
	flightRing *FlightRing

	flightDumpMu sync.Mutex
	flightDumpW  io.Writer
)

// Flight returns the process-global flight ring (always on; recording
// is one short critical section per coarse-grained event).
func Flight() *FlightRing {
	flightOnce.Do(func() { flightRing = NewFlightRing(DefaultFlightEvents) })
	return flightRing
}

// SetFlightDump installs the writer DumpFlight targets (nil disables
// automatic dumps — the default, so library tests that provoke panics
// on purpose stay quiet). Drivers install os.Stderr at startup.
func SetFlightDump(w io.Writer) {
	flightDumpMu.Lock()
	flightDumpW = w
	flightDumpMu.Unlock()
}

// DumpFlight writes the global ring to the installed dump writer with a
// reason header — called automatically on worker panic and conformance
// point timeout. A nil writer makes it a no-op.
func DumpFlight(reason string) {
	flightDumpMu.Lock()
	w := flightDumpW
	defer flightDumpMu.Unlock()
	if w == nil {
		return
	}
	ring := Flight()
	fmt.Fprintf(w, "--- flight recorder dump (%s): %d buffered of %d recorded events ---\n",
		reason, len(ring.Snapshot()), ring.Total())
	_ = ring.WriteJSONL(w)
	fmt.Fprintf(w, "--- end flight recorder dump ---\n")
}

// FlightHandler serves the global ring as JSONL — the /debug/flight
// endpoint beside /debug/pprof and /debug/vars.
func FlightHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/jsonl; charset=utf-8")
		_ = Flight().WriteJSONL(w)
	})
}

// TraceHandler serves the global trace buffer: JSONL by default,
// Chrome trace_event with ?format=catapult — the /debug/trace endpoint.
// While tracing is disabled it answers 404 with a hint.
func TraceHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		buf := Tracing()
		if buf == nil {
			http.Error(w, "span tracing disabled (start the driver with -pprof to enable)", http.StatusNotFound)
			return
		}
		if r.URL.Query().Get("format") == "catapult" {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			_ = buf.WriteCatapult(w, "hyve")
			return
		}
		w.Header().Set("Content-Type", "application/jsonl; charset=utf-8")
		_ = buf.WriteJSONL(w)
	})
}

package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sync"
)

// ArtifactSchema identifies the JSON document format version emitted by
// EncodeJSON. Bump on any breaking field change.
const ArtifactSchema = "hyve/artifact/v1"

// Artifact is the canonical machine-readable mirror of one experiment
// run: every table the runner rendered, plus named headline metrics,
// plus the manifest describing exactly what was run. Content is
// deterministic — it derives only from the runner's (deterministic)
// results, never from wall-clock or worker count — so artifact bytes
// are identical at any parallelism, same as the golden text tables.
type Artifact struct {
	Schema   string   `json:"schema"`
	ID       string   `json:"id"`
	Title    string   `json:"title"`
	Manifest Manifest `json:"manifest"`
	Metrics  []Metric `json:"metrics,omitempty"`
	Tables   []Table  `json:"tables,omitempty"`
	Notes    []string `json:"notes,omitempty"`

	// mu guards the slices: runners append only from their serial
	// emission sections, but the lock keeps a misbehaving concurrent
	// caller from corrupting the document.
	mu sync.Mutex
}

// Manifest records what a run actually ran: the dataset instances (name,
// scale divisor, generator seed, instance sizes) and the sweep mode.
// Worker count is deliberately absent — it lives in the run-level
// manifest (see RunManifest) precisely because per-experiment artifacts
// must be byte-identical across worker counts.
type Manifest struct {
	Quick    bool         `json:"quick"`
	Datasets []DatasetRef `json:"datasets,omitempty"`
	// Digest is the canonical options digest the artifact was produced
	// under (experiment id + sweep mode + exact dataset instances +
	// simulator schema version). Resumable drivers compare it against
	// the digest of the options they are about to run with: a mismatch
	// means the artifact, however well-formed, belongs to a different
	// configuration and must be regenerated — the fix for -resume
	// silently keeping stale results after a -scale/-seed change.
	// Empty in artifacts predating the digest (which resumable drivers
	// treat as a mismatch) and in non-resumable documents (hyve-sim).
	Digest string `json:"digest,omitempty"`
}

// DatasetRef pins one dataset instance well enough to reproduce it.
type DatasetRef struct {
	Name         string `json:"name"`
	Long         string `json:"long,omitempty"`
	Scale        int    `json:"scale"`
	Seed         uint64 `json:"seed"`
	FullVertices int64  `json:"full_vertices"`
	FullEdges    int64  `json:"full_edges"`
}

// Metric is one named headline number ("fig14.mean_improvement").
type Metric struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Unit  string  `json:"unit,omitempty"`
}

// Table mirrors one rendered text table cell-for-cell.
type Table struct {
	Name   string     `json:"name,omitempty"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
}

// NewArtifact returns an empty artifact shell for one experiment.
func NewArtifact(id, title string, m Manifest) *Artifact {
	return &Artifact{Schema: ArtifactSchema, ID: id, Title: title, Manifest: m}
}

// AddTable appends a table, deep-copying header and rows so the caller
// may keep mutating its own storage.
func (a *Artifact) AddTable(name string, header []string, rows [][]string) {
	t := Table{Name: name, Header: append([]string(nil), header...)}
	t.Rows = make([][]string, len(rows))
	for i, r := range rows {
		t.Rows[i] = append([]string(nil), r...)
	}
	a.mu.Lock()
	a.Tables = append(a.Tables, t)
	a.mu.Unlock()
}

// AddMetric appends one named value.
func (a *Artifact) AddMetric(name string, value float64, unit string) {
	a.mu.Lock()
	a.Metrics = append(a.Metrics, Metric{Name: name, Value: value, Unit: unit})
	a.mu.Unlock()
}

// AddNote appends one free-form line (the runner's non-tabular output
// worth preserving).
func (a *Artifact) AddNote(note string) {
	a.mu.Lock()
	a.Notes = append(a.Notes, note)
	a.mu.Unlock()
}

// EncodeJSON writes the artifact as an indented JSON document. Encoding
// is canonical: struct-ordered fields, two-space indent, trailing
// newline — two artifacts with equal content encode to equal bytes.
func (a *Artifact) EncodeJSON(w io.Writer) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(a); err != nil {
		return fmt.Errorf("obs: encoding artifact %s: %w", a.ID, err)
	}
	return nil
}

// DecodeJSON reads one artifact document from r. The document is parsed
// strictly — unknown fields are an error, so a truncated or foreign JSON
// object cannot masquerade as an artifact — but not validated; callers
// that need schema guarantees follow up with Validate.
func DecodeJSON(r io.Reader) (*Artifact, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var a Artifact
	if err := dec.Decode(&a); err != nil {
		return nil, fmt.Errorf("obs: decoding artifact: %w", err)
	}
	return &a, nil
}

// Validate checks the artifact against the hyve/artifact/v1 schema:
// known schema string, non-empty id, named finite metrics, and tables
// whose every row is exactly as wide as its header.
func (a *Artifact) Validate() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.Schema != ArtifactSchema {
		return fmt.Errorf("obs: artifact schema %q, want %q", a.Schema, ArtifactSchema)
	}
	if a.ID == "" {
		return fmt.Errorf("obs: artifact has empty id")
	}
	for i, m := range a.Metrics {
		if m.Name == "" {
			return fmt.Errorf("obs: artifact %s: metric %d has empty name", a.ID, i)
		}
		if math.IsNaN(m.Value) || math.IsInf(m.Value, 0) {
			return fmt.Errorf("obs: artifact %s: metric %s is non-finite (%v)", a.ID, m.Name, m.Value)
		}
	}
	for ti, t := range a.Tables {
		if len(t.Header) == 0 {
			return fmt.Errorf("obs: artifact %s: table %d (%s) has no header", a.ID, ti, t.Name)
		}
		for ri, row := range t.Rows {
			if len(row) != len(t.Header) {
				return fmt.Errorf("obs: artifact %s: table %d (%s) row %d has %d cells for %d columns",
					a.ID, ti, t.Name, ri, len(row), len(t.Header))
			}
		}
	}
	return nil
}

// RunManifest is the run-level index written alongside per-experiment
// artifacts (manifest.json): which experiments ran, with what options,
// and the host-side facts — worker count, wall time — that are allowed
// to vary run to run and therefore must stay out of the per-experiment
// documents.
type RunManifest struct {
	Schema      string        `json:"schema"`
	Tool        string        `json:"tool"`
	Quick       bool          `json:"quick"`
	Workers     int           `json:"workers"`
	WallSeconds float64       `json:"wall_seconds"`
	Experiments []RunArtifact `json:"experiments"`
}

// RunArtifact is one manifest entry.
type RunArtifact struct {
	ID      string  `json:"id"`
	Title   string  `json:"title"`
	File    string  `json:"file"`
	Seconds float64 `json:"seconds"`
}

// EncodeJSON writes the run manifest as an indented JSON document.
func (m *RunManifest) EncodeJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(m); err != nil {
		return fmt.Errorf("obs: encoding run manifest: %w", err)
	}
	return nil
}

package obs

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/units"
)

// Timeline collects named spans on named tracks and renders them in the
// Chrome trace_event ("catapult") JSON format, loadable in
// chrome://tracing and Perfetto. Simulated picosecond timestamps are
// exported as the format's microsecond doubles, so a whole HyVE
// iteration (tens of milliseconds simulated) renders with sub-cycle
// resolution.
//
// Tracks map to the format's threads inside one process; they appear in
// first-use order (thread_sort_index metadata pins the order, since
// trace viewers otherwise sort by tid activity).

// Span is one complete ("ph":"X") event on a track.
type Span struct {
	// Track names the horizontal lane ("PU 3", "router", "edge-bank 17").
	Track string
	// Name is the span's label ("block (4,12)", "awake").
	Name string
	// Cat is the trace_event category, used for filtering in the viewer
	// ("load", "process", "gate", …).
	Cat string
	// Start and Dur position the span in simulated time.
	Start units.Time
	Dur   units.Time
	// Args carries optional key→value detail shown on click.
	Args map[string]any
}

// End returns the span's end time.
func (s Span) End() units.Time { return s.Start + s.Dur }

// Timeline accumulates spans. The zero value is ready to use.
type Timeline struct {
	spans  []Span
	tracks []string       // first-use order
	trackN map[string]int // track name → tid
}

// Track registers a track without adding a span, pinning its place in
// the display order (tracks otherwise appear in first-span order).
func (tl *Timeline) Track(name string) {
	if tl.trackN == nil {
		tl.trackN = map[string]int{}
	}
	if _, ok := tl.trackN[name]; !ok {
		tl.trackN[name] = len(tl.tracks)
		tl.tracks = append(tl.tracks, name)
	}
}

// Add appends one span.
func (tl *Timeline) Add(s Span) {
	tl.Track(s.Track)
	tl.spans = append(tl.spans, s)
}

// Spans returns the spans in insertion order (test support).
func (tl *Timeline) Spans() []Span { return tl.spans }

// Tracks returns the track names in first-use order.
func (tl *Timeline) Tracks() []string { return append([]string(nil), tl.tracks...) }

// End returns the latest span end on the timeline.
func (tl *Timeline) End() units.Time {
	var end units.Time
	for _, s := range tl.spans {
		if s.End() > end {
			end = s.End()
		}
	}
	return end
}

// CatapultEvent is one trace_event in the exported JSON. Exported so
// tests (and downstream tools) can round-trip the output through
// encoding/json.
type CatapultEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`            // microseconds
	Dur  *float64       `json:"dur,omitempty"` // microseconds, "X" events only
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// CatapultTrace is the exported top-level document (JSON Object Format).
type CatapultTrace struct {
	TraceEvents     []CatapultEvent `json:"traceEvents"`
	DisplayTimeUnit string          `json:"displayTimeUnit"`
}

// psToUS converts simulated picoseconds to the format's microseconds.
func psToUS(t units.Time) float64 { return float64(t) / 1e6 }

// Catapult assembles the trace document: per-track thread_name and
// thread_sort_index metadata first, then every span as a complete event,
// in insertion order. The output is deterministic for a deterministic
// span sequence (map-valued args marshal with sorted keys).
func (tl *Timeline) Catapult(processName string) CatapultTrace {
	events := make([]CatapultEvent, 0, 2*len(tl.tracks)+len(tl.spans)+1)
	events = append(events, CatapultEvent{
		Name: "process_name", Ph: "M", PID: 1, TID: 0,
		Args: map[string]any{"name": processName},
	})
	for tid, track := range tl.tracks {
		events = append(events,
			CatapultEvent{Name: "thread_name", Ph: "M", PID: 1, TID: tid,
				Args: map[string]any{"name": track}},
			CatapultEvent{Name: "thread_sort_index", Ph: "M", PID: 1, TID: tid,
				Args: map[string]any{"sort_index": tid}},
		)
	}
	for _, s := range tl.spans {
		dur := psToUS(s.Dur)
		events = append(events, CatapultEvent{
			Name: s.Name, Cat: s.Cat, Ph: "X",
			TS: psToUS(s.Start), Dur: &dur,
			PID: 1, TID: tl.trackN[s.Track], Args: s.Args,
		})
	}
	return CatapultTrace{TraceEvents: events, DisplayTimeUnit: "ns"}
}

// WriteCatapult writes the catapult JSON document to w.
func (tl *Timeline) WriteCatapult(w io.Writer, processName string) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(tl.Catapult(processName)); err != nil {
		return fmt.Errorf("obs: encoding catapult trace: %w", err)
	}
	return nil
}

package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text-format parsing and linting: enough of the 0.0.4
// format for hyve-top to render a live view of a /metrics endpoint and
// for the obs-smoke gate to prove the exposition is well-formed —
// HELP/TYPE present, histogram buckets monotone with a closing +Inf,
// no duplicate series.

// PromSample is one parsed sample line.
type PromSample struct {
	// Name is the sample's metric name as written (including _bucket /
	// _sum / _count suffixes).
	Name string
	// Labels maps label name → unquoted value ("le" included).
	Labels map[string]string
	// Value is the sample value (+Inf/-Inf/NaN supported).
	Value float64
}

// Label returns a label value ("" when absent).
func (s PromSample) Label(k string) string { return s.Labels[k] }

// PromDoc is a parsed exposition document.
type PromDoc struct {
	// Types maps family name → declared TYPE.
	Types map[string]string
	// Helped records families with a HELP line.
	Helped map[string]bool
	// Samples holds every sample line in document order.
	Samples []PromSample
}

// Family strips the histogram sample suffixes off a sample name,
// returning the family the TYPE/HELP lines declare.
func (d *PromDoc) Family(sampleName string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(sampleName, suf)
		if base != sampleName && d.Types[base] == "histogram" {
			return base
		}
	}
	return sampleName
}

// Value returns the value of the sample with the given name and no
// labels (false when absent).
func (d *PromDoc) Value(name string) (float64, bool) {
	for _, s := range d.Samples {
		if s.Name == name && len(s.Labels) == 0 {
			return s.Value, true
		}
	}
	return 0, false
}

// SamplesNamed returns every sample with the given name, in order.
func (d *PromDoc) SamplesNamed(name string) []PromSample {
	var out []PromSample
	for _, s := range d.Samples {
		if s.Name == name {
			out = append(out, s)
		}
	}
	return out
}

// ParseProm parses a text exposition document. It is strict about line
// shape (a malformed line is an error, not a skip) but does not
// validate cross-line invariants; LintProm does that.
func ParseProm(r io.Reader) (*PromDoc, error) {
	doc := &PromDoc{Types: map[string]string{}, Helped: map[string]bool{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) >= 3 && (fields[1] == "TYPE" || fields[1] == "HELP") {
				if fields[1] == "TYPE" {
					if len(fields) < 4 {
						return nil, fmt.Errorf("prom: line %d: TYPE without a type: %q", lineNo, line)
					}
					doc.Types[fields[2]] = fields[3]
				} else {
					doc.Helped[fields[2]] = true
				}
			}
			continue
		}
		s, err := parsePromSample(line)
		if err != nil {
			return nil, fmt.Errorf("prom: line %d: %w", lineNo, err)
		}
		doc.Samples = append(doc.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("prom: reading exposition: %w", err)
	}
	return doc, nil
}

// parsePromSample parses `name{l="v",...} value [timestamp]`.
func parsePromSample(line string) (PromSample, error) {
	s := PromSample{}
	rest := line
	if i := strings.IndexAny(rest, "{ \t"); i < 0 {
		return s, fmt.Errorf("sample without a value: %q", line)
	} else {
		s.Name = rest[:i]
		rest = rest[i:]
	}
	if s.Name == "" {
		return s, fmt.Errorf("empty metric name: %q", line)
	}
	if strings.HasPrefix(rest, "{") {
		end := strings.Index(rest, "}")
		if end < 0 {
			return s, fmt.Errorf("unterminated label set: %q", line)
		}
		labels, err := parsePromLabels(rest[1:end])
		if err != nil {
			return s, fmt.Errorf("%w in %q", err, line)
		}
		s.Labels = labels
		rest = rest[end+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("want value [timestamp] after name, got %q", strings.TrimSpace(rest))
	}
	v, err := parsePromValue(fields[0])
	if err != nil {
		return s, err
	}
	s.Value = v
	return s, nil
}

func parsePromLabels(body string) (map[string]string, error) {
	labels := map[string]string{}
	for body != "" {
		eq := strings.Index(body, "=")
		if eq < 0 {
			return nil, fmt.Errorf("label without '='")
		}
		key := strings.TrimSpace(body[:eq])
		body = body[eq+1:]
		if !strings.HasPrefix(body, `"`) {
			return nil, fmt.Errorf("unquoted label value for %q", key)
		}
		// Scan the quoted value honoring \" escapes.
		i := 1
		var val strings.Builder
		for ; i < len(body); i++ {
			c := body[i]
			if c == '\\' && i+1 < len(body) {
				i++
				switch body[i] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(body[i])
				}
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
		}
		if i >= len(body) {
			return nil, fmt.Errorf("unterminated label value for %q", key)
		}
		labels[key] = val.String()
		body = strings.TrimPrefix(strings.TrimSpace(body[i+1:]), ",")
		body = strings.TrimSpace(body)
	}
	return labels, nil
}

func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad sample value %q", s)
	}
	return v, nil
}

// LintProm parses and cross-validates an exposition document: every
// sample's family must carry HELP and TYPE lines, no series (name plus
// full label set) may appear twice, and every histogram labelset must
// have monotone non-decreasing cumulative buckets ending in le="+Inf"
// whose count equals the _count sample. It returns the parsed document
// plus every violation found (an unparseable document is one violation).
func LintProm(r io.Reader) (*PromDoc, []error) {
	doc, err := ParseProm(r)
	if err != nil {
		return nil, []error{err}
	}
	var errs []error
	seen := map[string]bool{}
	for _, s := range doc.Samples {
		fam := doc.Family(s.Name)
		if _, ok := doc.Types[fam]; !ok {
			errs = append(errs, fmt.Errorf("series %s: family %s has no TYPE line", s.Name, fam))
		}
		if !doc.Helped[fam] {
			errs = append(errs, fmt.Errorf("series %s: family %s has no HELP line", s.Name, fam))
		}
		key := seriesKey(s)
		if seen[key] {
			errs = append(errs, fmt.Errorf("duplicate series %s", key))
		}
		seen[key] = true
	}
	// Histogram structure per family per non-le labelset.
	type histAcc struct {
		les    []float64
		counts []float64
		count  float64
		hasCnt bool
	}
	hists := map[string]*histAcc{}
	hkey := func(fam string, labels map[string]string) string {
		pairs := make([]string, 0, len(labels))
		for k, v := range labels {
			if k != "le" {
				pairs = append(pairs, k+"="+v)
			}
		}
		sort.Strings(pairs)
		return fam + "{" + strings.Join(pairs, ",") + "}"
	}
	get := func(fam string, labels map[string]string) *histAcc {
		k := hkey(fam, labels)
		h, ok := hists[k]
		if !ok {
			h = &histAcc{}
			hists[k] = h
		}
		return h
	}
	for _, s := range doc.Samples {
		fam := doc.Family(s.Name)
		if doc.Types[fam] != "histogram" {
			continue
		}
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			h := get(fam, s.Labels)
			le, err := parsePromValue(s.Label("le"))
			if err != nil || s.Label("le") == "" {
				errs = append(errs, fmt.Errorf("histogram %s: bucket without a valid le label", fam))
				continue
			}
			h.les = append(h.les, le)
			h.counts = append(h.counts, s.Value)
		case strings.HasSuffix(s.Name, "_count"):
			h := get(fam, s.Labels)
			h.count, h.hasCnt = s.Value, true
		}
	}
	keys := make([]string, 0, len(hists))
	for k := range hists {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		h := hists[k]
		if len(h.les) == 0 {
			continue // a labelset seen only via _count/_sum
		}
		for i := 1; i < len(h.les); i++ {
			if h.les[i] <= h.les[i-1] {
				errs = append(errs, fmt.Errorf("histogram %s: le buckets out of ascending order", k))
			}
			if h.counts[i] < h.counts[i-1] {
				errs = append(errs, fmt.Errorf("histogram %s: cumulative bucket counts decrease", k))
			}
		}
		last := len(h.les) - 1
		if !math.IsInf(h.les[last], 1) {
			errs = append(errs, fmt.Errorf("histogram %s: missing le=\"+Inf\" bucket", k))
		} else if h.hasCnt && h.counts[last] != h.count {
			errs = append(errs, fmt.Errorf("histogram %s: +Inf bucket %g != count %g", k, h.counts[last], h.count))
		}
	}
	return doc, errs
}

func seriesKey(s PromSample) string {
	if len(s.Labels) == 0 {
		return s.Name
	}
	pairs := make([]string, 0, len(s.Labels))
	for k, v := range s.Labels {
		pairs = append(pairs, k+"="+strconv.Quote(v))
	}
	sort.Strings(pairs)
	return s.Name + "{" + strings.Join(pairs, ",") + "}"
}

// HistQuantile estimates quantile q from parsed _bucket samples of one
// histogram labelset (cumulative counts, any order; le read from the
// label) — hyve-top's percentile source.
func HistQuantile(buckets []PromSample, q float64) float64 {
	pts := make([]BucketCount, 0, len(buckets))
	for _, b := range buckets {
		le, err := parsePromValue(b.Label("le"))
		if err != nil {
			continue
		}
		pts = append(pts, BucketCount{LE: le, Count: uint64(b.Value)})
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].LE < pts[j].LE })
	if len(pts) == 0 {
		return 0
	}
	return quantileFromBuckets(pts, pts[len(pts)-1].Count, q)
}

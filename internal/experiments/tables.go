package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/device/rram"
	"repro/internal/partition"
)

// runTable1 regenerates Table 1: the average number of edges in
// non-empty 8×8 blocks. The paper's point: even with up to 64 slots,
// natural graphs average only 1.23–2.38 edges per touched block, so a
// ReRAM crossbar programmed per block does almost no useful parallel
// work.
func runTable1(w io.Writer, opt Options) error {
	fmt.Fprintln(w, "Table 1: average edges in non-empty 8×8 blocks (paper: 1.23–2.38)")
	ds := opt.datasets()
	rows := make([][]string, len(ds))
	err := opt.forEach(len(ds), func(i int) error {
		g, err := ds[i].Load()
		if err != nil {
			return err
		}
		occ, err := partition.ComputeOccupancy(g, 8)
		if err != nil {
			return err
		}
		rows[i] = []string{ds[i].Name, fmt.Sprintf("%d", occ.NonEmpty),
			fmt.Sprintf("%.2f", occ.AvgEdgesPerBlk), fmt.Sprintf("%d", occ.MaxEdgesPerBlk)}
		return nil
	})
	if err != nil {
		return err
	}
	t := newTable("dataset", "non-empty blocks", "Navg", "max/block")
	for _, r := range rows {
		t.add(r...)
	}
	return opt.writeTable(w, "navg", t)
}

// runTable3 regenerates Table 3: per-read energy, period, and power per
// bit for the energy- and latency-optimized ReRAM bank designs at
// 64–512-bit output. The chosen design is the minimum-power/bit row
// (energy-optimized, 512 bits).
func runTable3(w io.Writer, opt Options) error {
	fmt.Fprintln(w, "Table 3: ReRAM bank power under different configurations")
	t := newTable("objective", "output", "energy (pJ)", "period (ps)", "power/bit (mW)")
	best := rram.Table3[0]
	for _, op := range rram.Table3 {
		cfg := rram.DefaultConfig()
		cfg.Optimize = op.Optimize
		cfg.OutputBits = op.OutputBits
		chip, err := rram.New(cfg)
		if err != nil {
			return err
		}
		rd := chip.Read(true)
		t.addf("%v|%d bits|%.2f|%.0f|%.2f",
			op.Optimize, op.OutputBits, rd.Energy.Picojoules(), rd.Latency.Picoseconds(),
			op.PowerPerBit().Milliwatts())
		if op.PowerPerBit() < best.PowerPerBit() {
			best = op
		}
	}
	if err := opt.writeTable(w, "bank-power", t); err != nil {
		return err
	}
	opt.metric("table3.chosen_power_per_bit", best.PowerPerBit().Milliwatts(), "mW")
	opt.notef("chosen design: %v / %d-bit output", best.Optimize, best.OutputBits)
	_, err := fmt.Fprintf(w, "chosen design: %v / %d-bit output (%.2f mW/bit)\n",
		best.Optimize, best.OutputBits, best.PowerPerBit().Milliwatts())
	return err
}

// runTable4 regenerates Table 4: MTEPS/W for every combination of
// {±power-gating, ±data-sharing} × SRAM size × algorithm × dataset.
func runTable4(w io.Writer, opt Options) error {
	fmt.Fprintln(w, "Table 4: energy efficiency varying SRAM sizes (MTEPS/W)")
	sizes := []int64{2 << 20, 4 << 20, 8 << 20, 16 << 20}
	algos := []string{"BFS", "CC", "PR"}
	if opt.Quick {
		sizes = sizes[:2]
		algos = []string{"BFS", "PR"}
	}
	combos := []struct {
		label           string
		gating, sharing bool
	}{
		{"w/o power-gating, w/o sharing", false, false},
		{"w/o power-gating, w/ sharing", false, true},
		{"w/ power-gating, w/o sharing", true, false},
		{"w/ power-gating, w/ sharing", true, true},
	}
	// One point per (combo, algo, dataset) row; each sweeps the SRAM
	// sizes. Rows land in index-addressed slots, so emission order below
	// is independent of the pool schedule.
	ds := opt.datasets()
	perCombo := len(algos) * len(ds)
	rows := make([][]string, len(combos)*perCombo)
	err := opt.forEach(len(rows), func(i int) error {
		combo := combos[i/perCombo]
		a := algos[i%perCombo/len(ds)]
		d := ds[i%len(ds)]
		wl, err := workloadFor(d, a)
		if err != nil {
			return err
		}
		row := []string{a, d.Name}
		for _, s := range sizes {
			cfg := core.HyVE()
			cfg.SRAMBytes = s
			cfg.DataSharing = combo.sharing
			cfg.PowerGating = combo.gating
			r, err := opt.simulate(cfg, wl)
			if err != nil {
				return err
			}
			row = append(row, fmt.Sprintf("%.0f", r.Report.MTEPSPerWatt()))
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return err
	}
	for ci, combo := range combos {
		fmt.Fprintf(w, "\n[%s]\n", combo.label)
		header := []string{"algo", "dataset"}
		for _, s := range sizes {
			header = append(header, fmt.Sprintf("%dMB", s>>20))
		}
		t := newTable(header...)
		for _, row := range rows[ci*perCombo : (ci+1)*perCombo] {
			t.add(row...)
		}
		if err := opt.writeTable(w, combo.label, t); err != nil {
			return err
		}
	}
	return nil
}

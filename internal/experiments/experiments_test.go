package experiments

import (
	"bytes"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

func runQuick(t *testing.T, id string) string {
	t.Helper()
	e, err := ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.Run(&buf, Options{Quick: true}); err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	out := buf.String()
	if len(out) == 0 {
		t.Fatalf("%s produced no output", id)
	}
	return out
}

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 24 {
		t.Fatalf("registry has %d experiments, want 16 paper artifacts + 8 extensions", len(all))
	}
	paper := 0
	for _, e := range all {
		if !strings.Contains(e.Title, "(extension)") {
			paper++
		}
	}
	if paper != 16 {
		t.Fatalf("%d paper artifacts, want 16 (every table and figure)", paper)
	}
	seen := map[string]bool{}
	for _, e := range all {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Errorf("incomplete experiment %+v", e)
		}
		if seen[e.ID] {
			t.Errorf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
		if _, err := ByID(e.ID); err != nil {
			t.Errorf("ByID(%s): %v", e.ID, err)
		}
	}
	if _, err := ByID("fig99"); err == nil {
		t.Error("unknown id accepted")
	}
}

// grabFloats extracts all decimal numbers from an output line selection.
func grabFloats(t *testing.T, out, linePattern string) []float64 {
	t.Helper()
	re := regexp.MustCompile(linePattern)
	num := regexp.MustCompile(`-?\d+\.?\d*`)
	var vals []float64
	for _, line := range strings.Split(out, "\n") {
		if !re.MatchString(line) {
			continue
		}
		for _, m := range num.FindAllString(line, -1) {
			v, err := strconv.ParseFloat(m, 64)
			if err == nil {
				vals = append(vals, v)
			}
		}
	}
	return vals
}

func TestTable1NavgMatchesPaper(t *testing.T) {
	out := runQuick(t, "table1")
	paper := map[string]float64{"YT": 1.44, "WK": 1.23, "AS": 2.38, "LJ": 1.49, "TW": 1.73}
	rows := 0
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) != 4 {
			continue
		}
		want, ok := paper[fields[0]]
		if !ok {
			continue
		}
		rows++
		got, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			t.Fatalf("bad Navg cell %q", fields[2])
		}
		if got < want-0.15 || got > want+0.15 {
			t.Errorf("%s: Navg %.2f, paper %.2f (fitted generators should land within 0.15)", fields[0], got, want)
		}
	}
	if rows == 0 {
		t.Fatalf("no data rows:\n%s", out)
	}
}

func TestTable3PicksEnergyOptimized512(t *testing.T) {
	out := runQuick(t, "table3")
	if !strings.Contains(out, "chosen design: energy-optimized / 512-bit") {
		t.Errorf("wrong chosen design:\n%s", out)
	}
	if !strings.Contains(out, "102.07") || !strings.Contains(out, "660.23") {
		t.Errorf("Table 3 operating points missing:\n%s", out)
	}
}

func TestTable4HasAllCombos(t *testing.T) {
	out := runQuick(t, "table4")
	for _, combo := range []string{
		"w/o power-gating, w/o sharing",
		"w/o power-gating, w/ sharing",
		"w/ power-gating, w/o sharing",
		"w/ power-gating, w/ sharing",
	} {
		if !strings.Contains(out, combo) {
			t.Errorf("missing combo %q", combo)
		}
	}
}

func TestFig9Shape(t *testing.T) {
	out := runQuick(t, "fig9")
	// Sequential read rows: delay < 1 (DRAM faster), energy > 1, EDP > 1.
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "sequential read") {
			continue
		}
		f := grabFloats(t, line, `.`)
		// last three are delay, energy, EDP (first numbers are 100, density)
		n := len(f)
		delay, energy, edp := f[n-3], f[n-2], f[n-1]
		if delay >= 1 {
			t.Errorf("seq read delay ratio %.3f not < 1 (DRAM should be faster): %s", delay, line)
		}
		if energy <= 1 || edp <= 1 {
			t.Errorf("seq read energy/EDP ratio %.3f/%.3f not > 1 (ReRAM should win): %s", energy, edp, line)
		}
	}
	// Sequential write rows: EDP < 1 (DRAM wins writes).
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "sequential write") {
			continue
		}
		f := grabFloats(t, line, `.`)
		if edp := f[len(f)-1]; edp >= 1 {
			t.Errorf("seq write EDP ratio %.3f not < 1: %s", edp, line)
		}
	}
}

func TestFig10Shape(t *testing.T) {
	out := runQuick(t, "fig10")
	for _, line := range strings.Split(out, "\n") {
		f := grabFloats(t, line, `^(GraphR|HyVE)\s`)
		if len(f) < 3 {
			continue
		}
		ratios := f[len(f)-3:]
		for _, r := range ratios {
			if strings.HasPrefix(line, "HyVE") && r >= 1 {
				t.Errorf("HyVE DRAM/ReRAM EDP %.3f not < 1 (DRAM should win): %s", r, line)
			}
			if strings.HasPrefix(line, "GraphR") && r <= 1 {
				t.Errorf("GraphR DRAM/ReRAM EDP %.3f not > 1 (ReRAM should win): %s", r, line)
			}
		}
	}
}

func TestFig11HyVEWins(t *testing.T) {
	out := runQuick(t, "fig11")
	for _, line := range strings.Split(out, "\n") {
		f := grabFloats(t, line, `^(YT|WK|AS|LJ|TW)\s`)
		if len(f) == 0 {
			continue
		}
		// reads ratio: GraphR reads far more vertices.
		if f[0] <= 1 {
			t.Errorf("GraphR/HyVE read count %.2f not > 1: %s", f[0], line)
		}
		// All EDP ratios (cols 5 and 8 of the numeric row) favour HyVE.
		if f[4] <= 1 || f[7] <= 1 {
			t.Errorf("EDP ratios %.2f/%.2f not > 1: %s", f[4], f[7], line)
		}
	}
}

func TestFig12SpeedDegradesWithBlocks(t *testing.T) {
	out := runQuick(t, "fig12")
	for _, line := range strings.Split(out, "\n") {
		f := grabFloats(t, line, `^(YT|WK|AS|LJ|TW)\s`)
		if len(f) < 2 {
			continue
		}
		first, last := f[0], f[len(f)-1]
		if first != 1.00 && first != 1 {
			t.Errorf("first column not normalized to 1: %s", line)
		}
		if last > first*1.3 {
			t.Errorf("preprocessing speed should not improve at huge block counts: %s", line)
		}
	}
}

func TestFig13SLCWins(t *testing.T) {
	out := runQuick(t, "fig13")
	for _, line := range strings.Split(out, "\n") {
		f := grabFloats(t, line, `^(YT|WK|AS|LJ|TW)\s`)
		if len(f) != 3 {
			continue
		}
		if !(f[0] > f[1] && f[1] > f[2]) {
			t.Errorf("cell-bit efficiency not decreasing (SLC should win): %s", line)
		}
	}
}

func TestFig14ImprovementAboveOne(t *testing.T) {
	out := runQuick(t, "fig14")
	if !strings.Contains(out, "overall mean") {
		t.Fatalf("missing summary:\n%s", out)
	}
	f := grabFloats(t, out, `overall mean`)
	if len(f) == 0 || f[0] <= 1 {
		t.Errorf("data sharing mean improvement %v not > 1", f)
	}
}

func TestFig15ImprovementAboveOne(t *testing.T) {
	out := runQuick(t, "fig15")
	f := grabFloats(t, out, `overall mean`)
	if len(f) == 0 || f[0] <= 1 {
		t.Errorf("power gating mean improvement %v not > 1", f)
	}
}

func TestFig16OrderingAndGap(t *testing.T) {
	out := runQuick(t, "fig16")
	for _, want := range fig16Order {
		if !strings.Contains(out, want) {
			t.Errorf("missing configuration %s", want)
		}
	}
	// The improvement summary must show >10x over the CPU baselines.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "CPU+DRAM ") || strings.Contains(line, "CPU+DRAM-opt") {
			f := grabFloats(t, line, `CPU`)
			if len(f) > 0 && f[len(f)-1] < 10 {
				t.Errorf("CPU gap %.1fx implausibly small: %s", f[len(f)-1], line)
			}
		}
	}
}

func TestFig17MemoryShareDrops(t *testing.T) {
	out := runQuick(t, "fig17")
	if !strings.Contains(out, "memory energy reduction") {
		t.Fatalf("missing reduction summary:\n%s", out)
	}
	f := grabFloats(t, out, `memory energy reduction`)
	if len(f) == 0 || f[0] <= 0 {
		t.Errorf("memory reduction %v not positive", f)
	}
}

func TestFig18NearUnity(t *testing.T) {
	out := runQuick(t, "fig18")
	for _, line := range strings.Split(out, "\n") {
		f := grabFloats(t, line, `geomean`)
		if len(f) == 0 {
			continue
		}
		r := f[len(f)-1]
		if r < 0.5 || r > 1.1 {
			t.Errorf("SD/HyVE time geomean %.3f far from unity: %s", r, line)
		}
	}
}

func TestFig19GraphRSlower(t *testing.T) {
	out := runQuick(t, "fig19")
	f := grabFloats(t, out, `^mean`)
	if len(f) == 0 || f[0] <= 1 {
		t.Errorf("GraphR/HyVE preprocessing ratio %v not > 1\n%s", f, out)
	}
}

func TestFig20HyVEFaster(t *testing.T) {
	out := runQuick(t, "fig20")
	f := grabFloats(t, out, `^mean`)
	if len(f) == 0 || f[0] <= 1 {
		t.Errorf("HyVE/GraphR dynamic ratio %v not > 1\n%s", f, out)
	}
}

func TestFig21HyVEWinsAllThree(t *testing.T) {
	out := runQuick(t, "fig21")
	f := grabFloats(t, out, `^means`)
	if len(f) < 6 {
		t.Fatalf("summary incomplete: %v\n%s", f, out)
	}
	// Layout: delay, 5.12, energy, 2.83, EDP, 17.63 — measured are at
	// even positions 0,2,4.
	if f[0] <= 1 || f[2] <= 1 || f[4] <= 1 {
		t.Errorf("GraphR/HyVE means not all > 1: delay %.2f energy %.2f EDP %.2f", f[0], f[2], f[4])
	}
}

func TestAblationInterleave(t *testing.T) {
	out := runQuick(t, "ablation-interleave")
	if !strings.Contains(out, "bank-interleave") || !strings.Contains(out, "subbank-interleave") {
		t.Fatalf("missing policies:\n%s", out)
	}
	f := grabFloats(t, out, `cutting awake bank-time`)
	if len(f) < 2 {
		t.Fatalf("missing summary:\n%s", out)
	}
	bwPct, awake := f[0], f[1]
	if bwPct < 90 {
		t.Errorf("subbank interleaving lost too much bandwidth: %.1f%%", bwPct)
	}
	if awake <= 2 {
		t.Errorf("awake-bank-time reduction %.1fx implausibly small", awake)
	}
}

func TestAblationNVMReRAMCompetitive(t *testing.T) {
	out := runQuick(t, "ablation-nvm")
	for _, line := range strings.Split(out, "\n") {
		f := grabFloats(t, out, `^(YT|WK|AS|LJ|TW)\s`)
		if len(f) < 4 {
			continue
		}
		reram, pcm := f[0], f[1]
		if reram <= pcm {
			t.Errorf("ReRAM %f not above PCM %f (write-cheap reads should win): %s", reram, pcm, line)
		}
	}
}

func TestAblationGateTimeoutRuns(t *testing.T) {
	out := runQuick(t, "ablation-gate-timeout")
	f := grabFloats(t, out, `^(YT|WK|AS|LJ|TW)\s`)
	if len(f) < 5 {
		t.Fatalf("timeout sweep incomplete:\n%s", out)
	}
	for _, v := range f {
		if v <= 0 {
			t.Errorf("non-positive efficiency in sweep:\n%s", out)
		}
	}
}

func TestAblationRouterInsensitive(t *testing.T) {
	out := runQuick(t, "ablation-router")
	for _, line := range strings.Split(out, "\n") {
		f := grabFloats(t, line, `^(YT|WK|AS|LJ|TW)\s`)
		if len(f) < 5 {
			continue
		}
		// Sharing should win at every reroute cost in the sweep.
		for _, v := range f {
			if v <= 1 {
				t.Errorf("sharing improvement %.2f not > 1 somewhere in sweep: %s", v, line)
			}
		}
		// And the paper's 5-10 cycle range should be within 5% of free.
		if f[1] < f[0]*0.95 {
			t.Errorf("5-cycle reroute already costly: %s", line)
		}
	}
}

func TestAblationPrecisionDegradesWithFewerBits(t *testing.T) {
	out := runQuick(t, "ablation-precision")
	for _, line := range strings.Split(out, "\n") {
		f := grabFloats(t, line, `^(YT|WK|AS|LJ|TW)\s`)
		if len(f) != 3 {
			continue
		}
		if !(f[0] > f[1] && f[1] > f[2]) {
			t.Errorf("precision error not decreasing with width: %v", f)
		}
		if f[2] > 0.05 {
			t.Errorf("16-bit error %.4f above 5%%", f[2])
		}
	}
}

func TestAblationModelEdgeCentricWins(t *testing.T) {
	out := runQuick(t, "ablation-model")
	for _, line := range strings.Split(out, "\n") {
		f := grabFloats(t, line, `^(YT|WK|AS|LJ|TW)\s`)
		if len(f) < 2 {
			continue
		}
		// First number: traversal ratio ec/vc > 1 (vc's frontier saves
		// traversals); last: total energy ratio ec/vc < 1 (ec still wins).
		if f[0] <= 1 {
			t.Errorf("traversal ratio %.2f not > 1: %s", f[0], line)
		}
		if f[len(f)-1] >= 1 {
			t.Errorf("energy ratio %.2f not < 1 (edge-centric should win): %s", f[len(f)-1], line)
		}
	}
}

func TestAblationTopologyHyVEAlwaysWins(t *testing.T) {
	out := runQuick(t, "ablation-topology")
	rows := 0
	for _, line := range strings.Split(out, "\n") {
		if !strings.Contains(line, "x") || strings.HasPrefix(line, "topology") {
			continue
		}
		f := grabFloats(t, line, `^(rmat|small-world|pref-attach|uniform)\s`)
		if len(f) < 4 {
			continue
		}
		rows++
		if ratio := f[len(f)-1]; ratio <= 1 {
			t.Errorf("HyVE-opt/SD ratio %.2f not > 1: %s", ratio, line)
		}
	}
	if rows == 0 {
		t.Fatalf("no topology rows:\n%s", out)
	}
}

// TestReliabilityShape pins the qualitative content of the reliability
// sweep: the zero-BER row injects nothing and costs nothing beyond the
// code itself, injected counts grow with BER, SECDED accounts every
// detected word, the unprotected run leaves all errors silent, and the
// spare pool both absorbs failures and refuses to overcommit.
func TestReliabilityShape(t *testing.T) {
	out := runQuick(t, "reliability")
	var injected []float64
	for _, line := range strings.Split(out, "\n") {
		f := grabFloats(t, line, `^[0-9]e[+-]\d+\s|^0e\+00\s`)
		if len(f) < 5 {
			continue
		}
		// f[0] is the BER mantissa; f[1] the exponent or injected count —
		// rely on column order instead: fields[1] is "injected bits".
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			t.Fatalf("bad injected cell %q in %q", fields[1], line)
		}
		injected = append(injected, v)
	}
	if len(injected) < 3 {
		t.Fatalf("too few BER rows:\n%s", out)
	}
	if injected[0] != 0 {
		t.Errorf("zero-BER row injected %v bits", injected[0])
	}
	for i := 1; i < len(injected); i++ {
		if injected[i] < injected[i-1] {
			t.Errorf("injected bits not monotone in BER: %v", injected)
		}
	}
	if injected[len(injected)-1] == 0 {
		t.Errorf("worst-case BER injected nothing:\n%s", out)
	}
	if !strings.Contains(out, "all silent") {
		t.Errorf("missing no-ECC silent-error line:\n%s", out)
	}
	if !strings.Contains(out, "aborts (bank loss)") {
		t.Errorf("missing bank-loss abort row:\n%s", out)
	}
	if strings.Contains(out, "UNEXPECTED PASS") {
		t.Errorf("run with exhausted spare pool completed:\n%s", out)
	}
	if !strings.Contains(out, "analytic Eq. 1–16 view") {
		t.Errorf("missing analytic cross-check:\n%s", out)
	}
}

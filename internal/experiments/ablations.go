package experiments

import (
	"fmt"
	"io"

	"repro/internal/algo"
	"repro/internal/core"
	"repro/internal/device/dram"
	"repro/internal/device/nvmalt"
	"repro/internal/device/rram"
	"repro/internal/device/sram"
	"repro/internal/graph"
	"repro/internal/graphr"
	"repro/internal/mem"
	"repro/internal/partition"
	"repro/internal/units"
)

// This file holds the ablations DESIGN.md calls out beyond the paper's
// own artifacts: quantifications of design decisions the paper makes by
// argument (interleaving policy, §3.1), by citation (PCM vs ReRAM,
// §2.3), or implicitly (BPG idle timeout, router reroute cost).

// runAblationInterleave settles §3.1's interleaving argument with the
// discrete-event channel model: bank vs subbank interleaving at equal
// port provisioning — same bandwidth, very different awake-bank time.
func runAblationInterleave(w io.Writer, opt Options) error {
	fmt.Fprintln(w, "Ablation: edge-memory interleaving policy (§3.1)")
	cfg := mem.HyVEEdgeChannel(64, 8, 1983*units.Picosecond, 1_000_000/64)
	const lines = 200_000
	t := newTable("policy", "bandwidth (GB/s)", "banks touched", "awake bank-time")
	var results []mem.StreamResult
	for _, policy := range []mem.InterleavePolicy{mem.BankInterleave, mem.SubbankInterleave} {
		r, err := mem.SimulateStream(cfg, policy, lines)
		if err != nil {
			return err
		}
		results = append(results, r)
		t.addf("%v|%.2f|%d|%v", policy, r.Bandwidth()*64, r.BanksTouched, r.AwakeBankTime())
	}
	if err := opt.writeTable(w, "interleave", t); err != nil {
		return err
	}
	bw := results[1].Bandwidth() / results[0].Bandwidth()
	awake := float64(results[0].AwakeBankTime()) / float64(results[1].AwakeBankTime())
	opt.metric("ablation-interleave.bandwidth_kept", 100*bw, "%")
	opt.metric("ablation-interleave.awake_time_cut", awake, "x")
	_, err := fmt.Fprintf(w, "subbank interleaving keeps %.1f%% of the bandwidth while cutting awake bank-time %.1fx\n",
		100*bw, awake)
	return err
}

// runAblationNVM swaps the edge memory among the non-volatile candidates
// of §2.3 (ReRAM, PCM, STT-MRAM) plus the DRAM reference, under the full
// HyVE-opt pipeline.
func runAblationNVM(w io.Writer, opt Options) error {
	fmt.Fprintln(w, "Ablation: edge-memory technology (§2.3), PR, HyVE-opt pipeline")
	ds := opt.datasets()
	rows := make([][]string, len(ds))
	err := opt.forEach(len(ds), func(i int) error {
		d := ds[i]
		wl, err := workloadFor(d, "PR")
		if err != nil {
			return err
		}
		row := []string{d.Name}
		// ReRAM: the paper's design.
		base, err := opt.simulate(core.HyVEOpt(), wl)
		if err != nil {
			return err
		}
		row = append(row, fmt.Sprintf("%.0f", base.Report.MTEPSPerWatt()))
		// PCM and STT-MRAM keep the non-volatile gating benefit.
		for _, kind := range []nvmalt.Kind{nvmalt.PCM, nvmalt.STTMRAM} {
			chip, err := nvmalt.New(nvmalt.Config{Kind: kind, DensityGb: 4})
			if err != nil {
				return err
			}
			cfg := core.HyVEOpt()
			cfg.Name = "acc+HyVE-opt/" + kind.String()
			cfg.CustomEdgeDevice = chip
			r, err := opt.simulate(cfg, wl)
			if err != nil {
				return err
			}
			row = append(row, fmt.Sprintf("%.0f", r.Report.MTEPSPerWatt()))
		}
		// DRAM reference: volatile, so sharing only.
		sd := core.SRAMDRAM()
		sd.DataSharing = true
		r, err := opt.simulate(sd, wl)
		if err != nil {
			return err
		}
		row = append(row, fmt.Sprintf("%.0f", r.Report.MTEPSPerWatt()))
		rows[i] = row
		return nil
	})
	if err != nil {
		return err
	}
	t := newTable("dataset", "ReRAM", "PCM", "STT-MRAM", "DRAM (no gating)")
	for _, r := range rows {
		t.add(r...)
	}
	return opt.writeTable(w, "edge-memory-technology", t)
}

// runAblationGateTimeout sweeps the BPG idle timeout: too short and
// transition overheads bite, too long and lingering banks leak.
func runAblationGateTimeout(w io.Writer, opt Options) error {
	fmt.Fprintln(w, "Ablation: bank power-gate idle timeout, PR")
	timeouts := []units.Time{
		100 * units.Nanosecond,
		units.Microsecond,
		10 * units.Microsecond,
		100 * units.Microsecond,
		units.Millisecond,
	}
	ds := opt.datasets()
	rows := make([][]string, len(ds))
	err := opt.forEach(len(ds), func(i int) error {
		wl, err := workloadFor(ds[i], "PR")
		if err != nil {
			return err
		}
		row := []string{ds[i].Name}
		for _, to := range timeouts {
			cfg := core.HyVEOpt()
			cfg.Gate.IdleTimeout = to
			r, err := opt.simulate(cfg, wl)
			if err != nil {
				return err
			}
			row = append(row, fmt.Sprintf("%.0f", r.Report.MTEPSPerWatt()))
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return err
	}
	header := []string{"dataset"}
	for _, to := range timeouts {
		header = append(header, to.String())
	}
	t := newTable(header...)
	for _, r := range rows {
		t.add(r...)
	}
	return opt.writeTable(w, "gate-timeout", t)
}

// runAblationRouter sweeps the §4.2 router reroute cost (the paper
// quotes 5–10 SRAM cycles) to show data sharing's win is insensitive to
// it.
func runAblationRouter(w io.Writer, opt Options) error {
	fmt.Fprintln(w, "Ablation: router reroute cost (§4.2), data-sharing improvement on PR")
	cycles := []int{0, 5, 10, 50, 200}
	ds := opt.datasets()
	rows := make([][]string, len(ds))
	err := opt.forEach(len(ds), func(i int) error {
		wl, err := workloadFor(ds[i], "PR")
		if err != nil {
			return err
		}
		base, err := opt.simulate(core.HyVE(), wl)
		if err != nil {
			return err
		}
		row := []string{ds[i].Name}
		for _, c := range cycles {
			cfg := core.HyVE()
			cfg.DataSharing = true
			cfg.RerouteCycles = c
			r, err := opt.simulate(cfg, wl)
			if err != nil {
				return err
			}
			row = append(row, fmt.Sprintf("%.2fx", r.Report.MTEPSPerWatt()/base.Report.MTEPSPerWatt()))
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return err
	}
	header := []string{"dataset"}
	for _, c := range cycles {
		header = append(header, fmt.Sprintf("%d cyc", c))
	}
	t := newTable(header...)
	for _, r := range rows {
		t.add(r...)
	}
	return opt.writeTable(w, "reroute-cost", t)
}

// runAblationModel contrasts the §2.1 execution models on the device
// models: vertex-centric BFS traverses far fewer edges (frontier
// optimization) but scatters fine-grained random updates across the
// whole off-chip vertex memory, while edge-centric HyVE streams every
// edge sequentially and confines randomness to on-chip intervals — the
// locality argument behind X-Stream and behind HyVE's memory binding.
func runAblationModel(w io.Writer, opt Options) error {
	fmt.Fprintln(w, "Ablation: edge-centric vs vertex-centric (§2.1), BFS")
	rchip, err := rram.New(rram.DefaultConfig())
	if err != nil {
		return err
	}
	dchip, err := dram.New(dram.DefaultConfig())
	if err != nil {
		return err
	}
	schip, err := sram.New(2 << 20)
	if err != nil {
		return err
	}
	// The chips are shared across points: device cost lookups are pure
	// reads of the calibrated operating points.
	ds := opt.datasets()
	rows := make([][]string, len(ds))
	err = opt.forEach(len(ds), func(i int) error {
		d := ds[i]
		g, err := d.Load()
		if err != nil {
			return err
		}
		prog := algo.NewBFS(0)
		ec, err := algo.Run(prog, g)
		if err != nil {
			return err
		}
		vc, err := algo.RunVertexCentric(prog, g)
		if err != nil {
			return err
		}

		// Edge-side energy: ec streams sequentially; vc jumps into CSR
		// per frontier vertex (one random fill each) then runs.
		edgesPerLine := float64(rchip.LineBytes()) / 8
		ecEdge := rchip.Read(true).Energy.Times(float64(ec.EdgesProcessed) / edgesPerLine)
		// One random fill per scattering vertex, then its CSR run streams.
		vcEdge := rchip.Read(false).Energy.Times(float64(vc.VerticesProcessed)) +
			rchip.Read(true).Energy.Times(float64(vc.EdgesProcessed)/edgesPerLine)

		// Vertex-side energy: ec uses on-chip SRAM per edge (interval-
		// confined); vc updates arbitrary vertices off-chip per edge.
		ecVtx := (schip.Read(false).Energy.Times(2) + schip.Write(false).Energy).
			Times(float64(ec.EdgesProcessed))
		vcVtx := (dchip.Read(false).Energy + dchip.Write(false).Energy).
			Times(float64(vc.EdgesProcessed))

		ecTotal := ecEdge + ecVtx
		vcTotal := vcEdge + vcVtx
		rows[i] = []string{
			d.Name,
			fmt.Sprintf("%.2f", float64(ec.EdgesProcessed)/float64(vc.EdgesProcessed)),
			fmt.Sprintf("%v", vcVtx), fmt.Sprintf("%v", ecVtx),
			fmt.Sprintf("%.2f", float64(ecTotal)/float64(vcTotal))}
		return nil
	})
	if err != nil {
		return err
	}
	t := newTable("dataset", "edges ec/vc", "vc vertex energy", "ec vertex energy", "total ec/vc energy")
	for _, r := range rows {
		t.add(r...)
	}
	if err := opt.writeTable(w, "execution-model", t); err != nil {
		return err
	}
	_, err = fmt.Fprintln(w, "(total ec/vc < 1: edge-centric wins despite traversing more edges)")
	return err
}

// runAblationPrecision runs PageRank entirely through the quantized
// bit-sliced crossbar emulation at several value widths: the fidelity
// cost of GraphR's analog compute, which its energy model leaves
// implicit (§6.4 notes only that "the precision of ReRAM cells is
// limited").
func runAblationPrecision(w io.Writer, opt Options) error {
	fmt.Fprintln(w, "Ablation: crossbar compute precision (max relative PR error vs float64)")
	widths := []int{8, 12, 16}
	iters := 10
	datasets := opt.datasets()
	if opt.Quick {
		// The crossbar emulation is the most compute-heavy runner; one
		// dataset and a shorter run keep the quick suite fast.
		datasets = datasets[:1]
		iters = 5
	}
	// One point per (dataset, width): the crossbar emulation is the
	// heaviest compute in the suite, so the sweep benefits most from
	// fanning every cell out rather than only rows.
	rows := make([][]string, len(datasets)*len(widths))
	err := opt.forEach(len(rows), func(i int) error {
		d, bits := datasets[i/len(widths)], widths[i%len(widths)]
		g, err := d.Load()
		if err != nil {
			return err
		}
		q, err := graphr.NewQuantizer(bits, 4, 1)
		if err != nil {
			return err
		}
		_, maxRel, err := graphr.PageRankCrossbar(g, q, 0.85, iters)
		if err != nil {
			return err
		}
		rows[i] = []string{fmt.Sprintf("%.4f", maxRel)}
		return nil
	})
	if err != nil {
		return err
	}
	header := []string{"dataset"}
	for _, b := range widths {
		header = append(header, fmt.Sprintf("%d-bit", b))
	}
	t := newTable(header...)
	for di, d := range datasets {
		row := []string{d.Name}
		for wi := range widths {
			row = append(row, rows[di*len(widths)+wi]...)
		}
		t.add(row...)
	}
	if err := opt.writeTable(w, "precision", t); err != nil {
		return err
	}
	_, err = fmt.Fprintln(w, "(GraphR's 4×4-bit slicing of 16-bit values keeps PR within a few percent)")
	return err
}

// runAblationTopology runs the HyVE-vs-conventional comparison on
// structurally different synthetic topologies — R-MAT (the paper's
// natural-graph stand-in), a Watts–Strogatz small world (high locality,
// no skew), a Barabási–Albert hub graph (extreme skew), and a uniform
// random graph — to show the hybrid hierarchy's win does not depend on
// one degree distribution.
func runAblationTopology(w io.Writer, opt Options) error {
	fmt.Fprintln(w, "Ablation: topology sensitivity (PR, MTEPS/W and HyVE-opt/SD ratio)")
	const v, e = 100_000, 800_000
	type gen struct {
		name string
		make func() (*graph.Graph, error)
	}
	gens := []gen{
		{"rmat", func() (*graph.Graph, error) { return graph.GenerateRMAT(v, e, graph.DefaultRMAT, 5) }},
		{"small-world", func() (*graph.Graph, error) { return graph.GenerateSmallWorld(v, e/v, 0.1, 5) }},
		{"pref-attach", func() (*graph.Graph, error) { return graph.GeneratePreferentialAttachment(v, e/v, 5) }},
		{"uniform", func() (*graph.Graph, error) { return graph.GenerateUniform(v, e, 5) }},
	}
	if opt.Quick {
		gens = gens[:2]
	}
	rows := make([][]string, len(gens))
	err := opt.forEach(len(gens), func(i int) error {
		ge := gens[i]
		g, err := ge.make()
		if err != nil {
			return err
		}
		wl := core.Workload{DatasetName: ge.name, Graph: g, Program: algo.NewPageRank()}
		sd, err := opt.simulate(core.SRAMDRAM(), wl)
		if err != nil {
			return err
		}
		opt2, err := opt.simulate(core.HyVEOpt(), wl)
		if err != nil {
			return err
		}
		occ, err := partition.ComputeOccupancy(g, 8)
		if err != nil {
			return err
		}
		rows[i] = []string{
			ge.name,
			fmt.Sprintf("%.3f", graph.ComputeStats(g).GiniIn),
			fmt.Sprintf("%.2f", occ.AvgEdgesPerBlk),
			fmt.Sprintf("%.0f", sd.Report.MTEPSPerWatt()),
			fmt.Sprintf("%.0f", opt2.Report.MTEPSPerWatt()),
			fmt.Sprintf("%.2fx", opt2.Report.MTEPSPerWatt()/sd.Report.MTEPSPerWatt())}
		return nil
	})
	if err != nil {
		return err
	}
	t := newTable("topology", "gini(in)", "Navg(8×8)", "SD", "HyVE-opt", "ratio")
	for _, r := range rows {
		t.add(r...)
	}
	if err := opt.writeTable(w, "topology", t); err != nil {
		return err
	}
	_, err = fmt.Fprintln(w, "(the hybrid hierarchy wins on every topology; degree skew moves the margin, not the sign)")
	return err
}

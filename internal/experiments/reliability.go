package experiments

import (
	"fmt"
	"io"

	"repro/internal/analytic"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/device/dram"
	"repro/internal/device/rram"
	"repro/internal/device/sram"
	"repro/internal/fault"
)

// runReliability exercises the resilience layer end to end (extension;
// DESIGN.md "Resilience"): a raw-BER sweep of the seeded read-disturb
// process through the SECDED pipeline, the corrected / detected-
// uncorrectable / silent accounting at each rate, the EDP overhead the
// ECC machinery costs a fault-free workload, whole-bank failures
// absorbed by spare-bank remapping, and the analytic Eq. 1–16 view of
// the same ECC operating point (Model.WithEdgeRead). Every number is a
// pure function of the seed: rows are byte-identical at any worker
// count.
func runReliability(w io.Writer, opt Options) error {
	fmt.Fprintln(w, "Reliability: ReRAM fault injection, SECDED ECC, bank sparing (extension)")
	d := opt.datasets()[0]
	wl, err := workloadFor(d, "PR")
	if err != nil {
		return err
	}
	base, err := opt.simulate(core.HyVEOpt(), wl)
	if err != nil {
		return err
	}
	baseEDP := base.Report.Time.Seconds() * base.Report.Energy.Total().Joules()

	// Raw-BER sweep. 1e-4 is far above any plausible operating point —
	// it is there to populate the multi-bit columns, not to be survivable.
	bers := []float64{0, 1e-8, 1e-7, 1e-6, 1e-5, 1e-4}
	if opt.Quick {
		bers = []float64{0, 1e-6, 1e-5, 1e-4}
	}
	results := make([]*core.Result, len(bers))
	if err := opt.forEach(len(bers), func(i int) error {
		cfg := core.HyVEOpt()
		cfg.Name = "acc+HyVE-opt+secded"
		cfg.Fault = fault.Config{Enabled: true, Seed: 1, RawBER: bers[i], ECC: fault.ECCSECDED}
		r, err := opt.simulate(cfg, wl)
		results[i] = r
		return err
	}); err != nil {
		return err
	}
	fmt.Fprintf(w, "\n%s, PR, SECDED(72,64) on the edge stream, seed 1:\n", d.Name)
	t := newTable("raw BER", "injected bits", "corrected", "uncorrectable", "silent", "EDP overhead")
	var lastOverhead float64
	for i, r := range results {
		s := r.Detail.Fault
		edp := r.Report.Time.Seconds() * r.Report.Energy.Total().Joules()
		lastOverhead = 100 * (edp/baseEDP - 1)
		t.addf("%.0e|%d|%d|%d|%d|%+.3f%%",
			bers[i], s.Injected, s.Corrected, s.Uncorrectable, s.Silent, lastOverhead)
	}
	if err := opt.writeTable(w, "ber-sweep", t); err != nil {
		return err
	}
	opt.metric("reliability.edp_overhead_worst", lastOverhead, "%")

	// The same worst-case rate without a code: every error goes silent.
	worst := bers[len(bers)-1]
	noECC := core.HyVEOpt()
	noECC.Fault = fault.Config{Enabled: true, Seed: 1, RawBER: worst}
	nr, err := opt.simulate(noECC, wl)
	if err != nil {
		return err
	}
	line := fmt.Sprintf("without ECC at BER %.0e: %d erroneous words, all silent (%d detected)",
		worst, nr.Detail.Fault.Silent, nr.Detail.Fault.Detected)
	fmt.Fprintln(w, line)
	opt.notef("%s", line)
	opt.metric("reliability.silent_words_no_ecc", float64(nr.Detail.Fault.Silent), "")

	// Whole-bank hard failures: spares absorb them one-for-one, the
	// spare replays the victim's gate schedule, and the run's time and
	// gating statistics are invariant.
	fmt.Fprintln(w, "\nbank sparing (gate schedule inherited by the spare):")
	bt := newTable("failed banks", "spare pool", "remapped", "run", "time vs clean")
	for _, failed := range []int{0, 1, 2} {
		cfg := core.HyVEOpt()
		cfg.Fault = fault.Config{Enabled: true, Seed: 1, FailedBanks: failed, SpareBanks: 4}
		r, err := opt.simulate(cfg, wl)
		if err != nil {
			return err
		}
		delta := "identical"
		if r.Report.Time != base.Report.Time {
			delta = fmt.Sprintf("%+.3f%%", 100*(r.Report.Time.Seconds()/base.Report.Time.Seconds()-1))
		}
		bt.addf("%d|%d|%d|%s|%s", failed, 4, r.Detail.Fault.BanksRemapped, "completes", delta)
	}
	// Exhausting the pool must refuse to complete, not degrade silently.
	lossCfg := core.HyVEOpt()
	lossCfg.Fault = fault.Config{Enabled: true, Seed: 1, FailedBanks: 1, SpareBanks: 0}
	if _, err := opt.simulate(lossCfg, wl); err != nil {
		bt.addf("%d|%d|%s|%s|%s", 1, 0, "-", "aborts (bank loss)", "-")
	} else {
		bt.addf("%d|%d|%s|%s|%s", 1, 0, "-", "UNEXPECTED PASS", "-")
	}
	if err := opt.writeTable(w, "bank-sparing", bt); err != nil {
		return err
	}

	// Analytic cross-check: fold the same ECC operating point into the
	// Eq. 1–16 decomposition via Model.WithEdgeRead and read the EDP
	// overhead off the closed form.
	m, err := reliabilityModel(wl)
	if err != nil {
		return err
	}
	ecc := fault.SECDED(fault.DefaultWordBits)
	em := m.WithEdgeRead(ecc.Apply(m.C.EdgeRead))
	plainEDP := m.Time().Seconds() * m.Energy().Joules()
	eccEDP := em.Time().Seconds() * em.Energy().Joules()
	aOver := 100 * (eccEDP/plainEDP - 1)
	line = fmt.Sprintf("analytic Eq. 1–16 view: SECDED(72,64) edge reads cost %+.3f%% EDP", aOver)
	fmt.Fprintln(w, line)
	opt.notef("%s", line)
	opt.metric("reliability.edp_overhead_analytic", aOver, "%")
	return nil
}

// reliabilityModel instantiates the analytic model at HyVE-opt's
// operating points for a workload (DRAM global vertices, on-chip SRAM
// local, ReRAM edge stream).
func reliabilityModel(wl core.Workload) (analytic.Model, error) {
	cfg := core.HyVEOpt()
	_, gp, err := core.Grid(cfg, wl)
	if err != nil {
		return analytic.Model{}, err
	}
	counts, err := analytic.HyVECounts(int64(wl.Graph.NumVertices), int64(wl.Graph.NumEdges()), gp, cfg.NumPUs)
	if err != nil {
		return analytic.Model{}, err
	}
	rchip, err := rram.New(cfg.RRAM)
	if err != nil {
		return analytic.Model{}, err
	}
	dchip, err := dram.New(cfg.DRAM)
	if err != nil {
		return analytic.Model{}, err
	}
	onchip, err := sram.New(cfg.SRAMBytes)
	if err != nil {
		return analytic.Model{}, err
	}
	costs := analytic.VertexOps(dchip, onchip)
	costs.EdgeRead = rchip.Read(true)
	costs.PU = device.NewCMOSPU().Op()
	return analytic.Model{N: counts, C: costs}, nil
}

package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/cpusim"
	"repro/internal/energy"
)

// runFig14 regenerates Fig. 14: the energy-efficiency improvement from
// the §4.2 data-sharing scheme, per algorithm and dataset (paper means:
// 1.15× BFS, 1.47× CC, 2.19× PR, 1.60× overall).
func runFig14(w io.Writer, opt Options) error {
	fmt.Fprintln(w, "Fig. 14: energy-efficiency improvement from data sharing (×)")
	algos := []string{"BFS", "CC", "PR"}
	ds := opt.datasets()
	imps := make([]float64, len(algos)*len(ds))
	err := opt.forEach(len(imps), func(i int) error {
		a, d := algos[i/len(ds)], ds[i%len(ds)]
		wl, err := workloadFor(d, a)
		if err != nil {
			return err
		}
		base, err := opt.simulate(core.HyVE(), wl)
		if err != nil {
			return err
		}
		cfg := core.HyVE()
		cfg.DataSharing = true
		shared, err := opt.simulate(cfg, wl)
		if err != nil {
			return err
		}
		imps[i] = shared.Report.MTEPSPerWatt() / base.Report.MTEPSPerWatt()
		return nil
	})
	if err != nil {
		return err
	}
	t := newTable("algo", "dataset", "improvement")
	for ai, a := range algos {
		per := imps[ai*len(ds) : (ai+1)*len(ds)]
		for di, d := range ds {
			t.addf("%s|%s|%.2f", a, d.Name, per[di])
		}
		t.addf("%s|mean|%.2f", a, geomean(per))
	}
	if err := opt.writeTable(w, "data-sharing-improvement", t); err != nil {
		return err
	}
	opt.metric("fig14.mean_improvement", geomean(imps), "x")
	_, err = fmt.Fprintf(w, "overall mean: %.2fx (paper: 1.60x)\n", geomean(imps))
	return err
}

// runFig15 regenerates Fig. 15: the energy-efficiency improvement from
// bank-level power gating on top of acc+HyVE (paper mean: 1.53×).
func runFig15(w io.Writer, opt Options) error {
	fmt.Fprintln(w, "Fig. 15: energy-efficiency improvement from power gating (×)")
	algos := []string{"BFS", "CC", "PR"}
	ds := opt.datasets()
	imps := make([]float64, len(algos)*len(ds))
	err := opt.forEach(len(imps), func(i int) error {
		a, d := algos[i/len(ds)], ds[i%len(ds)]
		wl, err := workloadFor(d, a)
		if err != nil {
			return err
		}
		base, err := opt.simulate(core.HyVE(), wl)
		if err != nil {
			return err
		}
		cfg := core.HyVE()
		cfg.PowerGating = true
		gated, err := opt.simulate(cfg, wl)
		if err != nil {
			return err
		}
		imps[i] = gated.Report.MTEPSPerWatt() / base.Report.MTEPSPerWatt()
		return nil
	})
	if err != nil {
		return err
	}
	t := newTable("algo", "dataset", "improvement")
	for ai, a := range algos {
		for di, d := range ds {
			t.addf("%s|%s|%.2f", a, d.Name, imps[ai*len(ds)+di])
		}
	}
	if err := opt.writeTable(w, "power-gating-improvement", t); err != nil {
		return err
	}
	opt.metric("fig15.mean_improvement", geomean(imps), "x")
	_, err = fmt.Fprintf(w, "overall mean: %.2fx (paper: 1.53x)\n", geomean(imps))
	return err
}

// fig16Rows runs every configuration of Fig. 16 on one workload.
func fig16Rows(opt Options, wl core.Workload) (map[string]float64, error) {
	out := map[string]float64{}
	for _, m := range []cpusim.Model{cpusim.NXgraph(), cpusim.Galois()} {
		r, err := cpusim.Simulate(m, wl)
		if err != nil {
			return nil, err
		}
		out[m.Name] = r.MTEPSPerWatt()
	}
	for _, cfg := range core.Fig16Configs() {
		r, err := opt.simulate(cfg, wl)
		if err != nil {
			return nil, err
		}
		out[cfg.Name] = r.Report.MTEPSPerWatt()
	}
	return out, nil
}

// fig16Order is the presentation order of Fig. 16's bars.
var fig16Order = []string{
	"CPU+DRAM", "CPU+DRAM-opt", "acc+DRAM", "acc+ReRAM",
	"acc+SRAM+DRAM", "acc+HyVE", "acc+HyVE-opt",
}

// runFig16 regenerates Fig. 16: MTEPS/W for the two CPU baselines and
// the five accelerator hierarchies, per algorithm and dataset.
func runFig16(w io.Writer, opt Options) error {
	fmt.Fprintln(w, "Fig. 16: energy efficiency (MTEPS/W) across configurations")
	algos := []string{"BFS", "CC", "PR"}
	if opt.Quick {
		algos = []string{"PR"}
	}
	ds := opt.datasets()
	points := make([]map[string]float64, len(algos)*len(ds))
	err := opt.forEach(len(points), func(i int) error {
		wl, err := workloadFor(ds[i%len(ds)], algos[i/len(ds)])
		if err != nil {
			return err
		}
		points[i], err = fig16Rows(opt, wl)
		return err
	})
	if err != nil {
		return err
	}
	ratios := map[string][]float64{}
	for ai, a := range algos {
		fmt.Fprintf(w, "\n[%s]\n", a)
		header := append([]string{"dataset"}, fig16Order...)
		t := newTable(header...)
		for di, d := range ds {
			rows := points[ai*len(ds)+di]
			cells := []string{d.Name}
			for _, name := range fig16Order {
				cells = append(cells, fmt.Sprintf("%.1f", rows[name]))
			}
			t.add(cells...)
			for _, name := range fig16Order[:len(fig16Order)-1] {
				ratios[name] = append(ratios[name], rows["acc+HyVE-opt"]/rows[name])
			}
		}
		if err := opt.writeTable(w, a, t); err != nil {
			return err
		}
	}
	fmt.Fprintln(w, "\nacc+HyVE-opt improvement (geomean) over:")
	for _, name := range fig16Order[:len(fig16Order)-1] {
		opt.metric("fig16.improvement_over."+name, geomean(ratios[name]), "x")
		fmt.Fprintf(w, "  %-14s %.2fx\n", name, geomean(ratios[name]))
	}
	return nil
}

// runFig17 regenerates Fig. 17: the energy breakdown (other logic /
// edge memory / vertex memory) under acc+SRAM+DRAM (SD), acc+HyVE, and
// acc+HyVE+power-gating (opt), and the headline memory-energy reduction.
func runFig17(w io.Writer, opt Options) error {
	fmt.Fprintln(w, "Fig. 17: energy consumption breakdown (% of total)")
	configs := []struct {
		label string
		cfg   core.Config
	}{
		{"SD", core.SRAMDRAM()},
		{"HyVE", core.HyVE()},
		{"opt", func() core.Config { c := core.HyVE(); c.PowerGating = true; return c }()},
	}
	algos := []string{"BFS", "CC", "PR"}
	if opt.Quick {
		algos = []string{"PR"}
	}
	ds := opt.datasets()
	type fig17Point struct {
		rows          [][]string
		sdMem, optMem float64
	}
	points := make([]fig17Point, len(algos)*len(ds))
	err := opt.forEach(len(points), func(i int) error {
		a, d := algos[i/len(ds)], ds[i%len(ds)]
		wl, err := workloadFor(d, a)
		if err != nil {
			return err
		}
		for _, c := range configs {
			r, err := opt.simulate(c.cfg, wl)
			if err != nil {
				return err
			}
			bd := &r.Report.Energy
			logicPct := 100 * (bd.Fraction(energy.Logic) + bd.Fraction(energy.Router))
			edgePct := 100 * bd.Fraction(energy.EdgeMemory)
			vertexPct := 100 * float64(bd.VertexMemory()) / float64(bd.Total())
			points[i].rows = append(points[i].rows, []string{
				a, d.Name, c.label,
				fmt.Sprintf("%.1f", logicPct), fmt.Sprintf("%.1f", edgePct),
				fmt.Sprintf("%.1f", vertexPct), fmt.Sprintf("%v", bd.MemoryTotal())})
			switch c.label {
			case "SD":
				points[i].sdMem = float64(bd.MemoryTotal())
			case "opt":
				points[i].optMem = float64(bd.MemoryTotal())
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	t := newTable("algo", "dataset", "config", "logic%", "edge-mem%", "vertex-mem%", "memory total")
	var sdMem, optMem []float64
	for _, p := range points {
		for _, row := range p.rows {
			t.add(row...)
		}
		sdMem = append(sdMem, p.sdMem)
		optMem = append(optMem, p.optMem)
	}
	if err := opt.writeTable(w, "energy-breakdown", t); err != nil {
		return err
	}
	var ratios []float64
	for i := range sdMem {
		ratios = append(ratios, optMem[i]/sdMem[i])
	}
	opt.metric("fig17.memory_energy_reduction", 100*(1-geomean(ratios)), "%")
	_, err = fmt.Fprintf(w, "memory energy reduction opt vs SD (geomean): %.2f%% (paper: 86.17%%)\n",
		100*(1-geomean(ratios)))
	return err
}

// runFig18 regenerates Fig. 18: absolute performance (execution time)
// of SD relative to HyVE — the paper's point being that HyVE's energy
// wins cost almost no speed (≤15.1% degradation).
func runFig18(w io.Writer, opt Options) error {
	fmt.Fprintln(w, "Fig. 18: execution time ratio SD/HyVE (1.0 = no degradation)")
	algos := []string{"BFS", "CC", "PR"}
	ds := opt.datasets()
	ratiosByPoint := make([]float64, len(algos)*len(ds))
	err := opt.forEach(len(ratiosByPoint), func(i int) error {
		wl, err := workloadFor(ds[i%len(ds)], algos[i/len(ds)])
		if err != nil {
			return err
		}
		sd, err := opt.simulate(core.SRAMDRAM(), wl)
		if err != nil {
			return err
		}
		hv, err := opt.simulate(core.HyVE(), wl)
		if err != nil {
			return err
		}
		ratiosByPoint[i] = sd.Report.Time.Seconds() / hv.Report.Time.Seconds()
		return nil
	})
	if err != nil {
		return err
	}
	t := newTable("algo", "dataset", "SD/HyVE")
	for ai, a := range algos {
		per := ratiosByPoint[ai*len(ds) : (ai+1)*len(ds)]
		for di, d := range ds {
			t.addf("%s|%s|%.3f", a, d.Name, per[di])
		}
		t.addf("%s|geomean|%.3f", a, geomean(per))
	}
	return opt.writeTable(w, "time-ratio", t)
}

package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/cpusim"
	"repro/internal/energy"
)

// runFig14 regenerates Fig. 14: the energy-efficiency improvement from
// the §4.2 data-sharing scheme, per algorithm and dataset (paper means:
// 1.15× BFS, 1.47× CC, 2.19× PR, 1.60× overall).
func runFig14(w io.Writer, opt Options) error {
	fmt.Fprintln(w, "Fig. 14: energy-efficiency improvement from data sharing (×)")
	t := newTable("algo", "dataset", "improvement")
	var all []float64
	for _, a := range []string{"BFS", "CC", "PR"} {
		var per []float64
		for _, d := range opt.datasets() {
			wl, err := workloadFor(d, a)
			if err != nil {
				return err
			}
			base, err := core.Simulate(core.HyVE(), wl)
			if err != nil {
				return err
			}
			cfg := core.HyVE()
			cfg.DataSharing = true
			shared, err := core.Simulate(cfg, wl)
			if err != nil {
				return err
			}
			imp := shared.Report.MTEPSPerWatt() / base.Report.MTEPSPerWatt()
			per = append(per, imp)
			all = append(all, imp)
			t.addf("%s|%s|%.2f", a, d.Name, imp)
		}
		t.addf("%s|mean|%.2f", a, geomean(per))
	}
	if err := t.write(w); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "overall mean: %.2fx (paper: 1.60x)\n", geomean(all))
	return err
}

// runFig15 regenerates Fig. 15: the energy-efficiency improvement from
// bank-level power gating on top of acc+HyVE (paper mean: 1.53×).
func runFig15(w io.Writer, opt Options) error {
	fmt.Fprintln(w, "Fig. 15: energy-efficiency improvement from power gating (×)")
	t := newTable("algo", "dataset", "improvement")
	var all []float64
	for _, a := range []string{"BFS", "CC", "PR"} {
		for _, d := range opt.datasets() {
			wl, err := workloadFor(d, a)
			if err != nil {
				return err
			}
			base, err := core.Simulate(core.HyVE(), wl)
			if err != nil {
				return err
			}
			cfg := core.HyVE()
			cfg.PowerGating = true
			gated, err := core.Simulate(cfg, wl)
			if err != nil {
				return err
			}
			imp := gated.Report.MTEPSPerWatt() / base.Report.MTEPSPerWatt()
			all = append(all, imp)
			t.addf("%s|%s|%.2f", a, d.Name, imp)
		}
	}
	if err := t.write(w); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "overall mean: %.2fx (paper: 1.53x)\n", geomean(all))
	return err
}

// fig16Rows runs every configuration of Fig. 16 on one workload.
func fig16Rows(wl core.Workload) (map[string]float64, error) {
	out := map[string]float64{}
	for _, m := range []cpusim.Model{cpusim.NXgraph(), cpusim.Galois()} {
		r, err := cpusim.Simulate(m, wl)
		if err != nil {
			return nil, err
		}
		out[m.Name] = r.MTEPSPerWatt()
	}
	for _, cfg := range core.Fig16Configs() {
		r, err := core.Simulate(cfg, wl)
		if err != nil {
			return nil, err
		}
		out[cfg.Name] = r.Report.MTEPSPerWatt()
	}
	return out, nil
}

// fig16Order is the presentation order of Fig. 16's bars.
var fig16Order = []string{
	"CPU+DRAM", "CPU+DRAM-opt", "acc+DRAM", "acc+ReRAM",
	"acc+SRAM+DRAM", "acc+HyVE", "acc+HyVE-opt",
}

// runFig16 regenerates Fig. 16: MTEPS/W for the two CPU baselines and
// the five accelerator hierarchies, per algorithm and dataset.
func runFig16(w io.Writer, opt Options) error {
	fmt.Fprintln(w, "Fig. 16: energy efficiency (MTEPS/W) across configurations")
	algos := []string{"BFS", "CC", "PR"}
	if opt.Quick {
		algos = []string{"PR"}
	}
	ratios := map[string][]float64{}
	for _, a := range algos {
		fmt.Fprintf(w, "\n[%s]\n", a)
		header := append([]string{"dataset"}, fig16Order...)
		t := newTable(header...)
		for _, d := range opt.datasets() {
			wl, err := workloadFor(d, a)
			if err != nil {
				return err
			}
			rows, err := fig16Rows(wl)
			if err != nil {
				return err
			}
			cells := []string{d.Name}
			for _, name := range fig16Order {
				cells = append(cells, fmt.Sprintf("%.1f", rows[name]))
			}
			t.add(cells...)
			for _, name := range fig16Order[:len(fig16Order)-1] {
				ratios[name] = append(ratios[name], rows["acc+HyVE-opt"]/rows[name])
			}
		}
		if err := t.write(w); err != nil {
			return err
		}
	}
	fmt.Fprintln(w, "\nacc+HyVE-opt improvement (geomean) over:")
	for _, name := range fig16Order[:len(fig16Order)-1] {
		fmt.Fprintf(w, "  %-14s %.2fx\n", name, geomean(ratios[name]))
	}
	return nil
}

// runFig17 regenerates Fig. 17: the energy breakdown (other logic /
// edge memory / vertex memory) under acc+SRAM+DRAM (SD), acc+HyVE, and
// acc+HyVE+power-gating (opt), and the headline memory-energy reduction.
func runFig17(w io.Writer, opt Options) error {
	fmt.Fprintln(w, "Fig. 17: energy consumption breakdown (% of total)")
	configs := []struct {
		label string
		cfg   core.Config
	}{
		{"SD", core.SRAMDRAM()},
		{"HyVE", core.HyVE()},
		{"opt", func() core.Config { c := core.HyVE(); c.PowerGating = true; return c }()},
	}
	algos := []string{"BFS", "CC", "PR"}
	if opt.Quick {
		algos = []string{"PR"}
	}
	t := newTable("algo", "dataset", "config", "logic%", "edge-mem%", "vertex-mem%", "memory total")
	var sdMem, optMem []float64
	for _, a := range algos {
		for _, d := range opt.datasets() {
			wl, err := workloadFor(d, a)
			if err != nil {
				return err
			}
			for _, c := range configs {
				r, err := core.Simulate(c.cfg, wl)
				if err != nil {
					return err
				}
				bd := &r.Report.Energy
				logicPct := 100 * (bd.Fraction(energy.Logic) + bd.Fraction(energy.Router))
				edgePct := 100 * bd.Fraction(energy.EdgeMemory)
				vertexPct := 100 * float64(bd.VertexMemory()) / float64(bd.Total())
				t.addf("%s|%s|%s|%.1f|%.1f|%.1f|%v", a, d.Name, c.label, logicPct, edgePct, vertexPct, bd.MemoryTotal())
				switch c.label {
				case "SD":
					sdMem = append(sdMem, float64(bd.MemoryTotal()))
				case "opt":
					optMem = append(optMem, float64(bd.MemoryTotal()))
				}
			}
		}
	}
	if err := t.write(w); err != nil {
		return err
	}
	var ratios []float64
	for i := range sdMem {
		ratios = append(ratios, optMem[i]/sdMem[i])
	}
	_, err := fmt.Fprintf(w, "memory energy reduction opt vs SD (geomean): %.2f%% (paper: 86.17%%)\n",
		100*(1-geomean(ratios)))
	return err
}

// runFig18 regenerates Fig. 18: absolute performance (execution time)
// of SD relative to HyVE — the paper's point being that HyVE's energy
// wins cost almost no speed (≤15.1% degradation).
func runFig18(w io.Writer, opt Options) error {
	fmt.Fprintln(w, "Fig. 18: execution time ratio SD/HyVE (1.0 = no degradation)")
	t := newTable("algo", "dataset", "SD/HyVE")
	for _, a := range []string{"BFS", "CC", "PR"} {
		var per []float64
		for _, d := range opt.datasets() {
			wl, err := workloadFor(d, a)
			if err != nil {
				return err
			}
			sd, err := core.Simulate(core.SRAMDRAM(), wl)
			if err != nil {
				return err
			}
			hv, err := core.Simulate(core.HyVE(), wl)
			if err != nil {
				return err
			}
			ratio := sd.Report.Time.Seconds() / hv.Report.Time.Seconds()
			per = append(per, ratio)
			t.addf("%s|%s|%.3f", a, d.Name, ratio)
		}
		t.addf("%s|geomean|%.3f", a, geomean(per))
	}
	return t.write(w)
}

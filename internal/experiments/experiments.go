// Package experiments regenerates every table and figure of the paper's
// evaluation (§6 measured data and §7): one runner per artifact, each
// printing the same rows/series the paper reports. The cmd/hyve-bench
// binary and the repository's bench_test.go drive these runners; the
// package tests assert the paper's qualitative shapes on every one.
package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"

	"repro/internal/algo"
	"repro/internal/core"
	"repro/internal/graph"
)

// Options tunes a run.
type Options struct {
	// Quick restricts datasets and sweep sizes so the full suite runs in
	// seconds (used by tests); the default exercises all five datasets.
	Quick bool
	// Datasets overrides the dataset list (defaults to graph.Datasets,
	// or its first two under Quick).
	Datasets []graph.Dataset
}

// datasets resolves the dataset list for a run.
func (o Options) datasets() []graph.Dataset {
	if len(o.Datasets) > 0 {
		return o.Datasets
	}
	if o.Quick {
		return graph.Datasets[:2]
	}
	return graph.Datasets
}

// Experiment is one regenerable paper artifact.
type Experiment struct {
	// ID is the artifact key: "table1", "fig9", ….
	ID string
	// Title is the paper's caption, abbreviated.
	Title string
	// Run writes the regenerated rows to w.
	Run func(w io.Writer, opt Options) error
}

var registry = []Experiment{
	{"table1", "Average edges in non-empty 8×8 blocks (Navg)", runTable1},
	{"table3", "ReRAM bank power under different configurations", runTable3},
	{"table4", "Energy efficiency varying SRAM sizes (MTEPS/W)", runTable4},
	{"fig9", "Normalized DRAM/ReRAM delay, energy, EDP (sequential access)", runFig9},
	{"fig10", "Normalized vertex-memory EDP DRAM/ReRAM on HyVE and GraphR", runFig10},
	{"fig11", "Vertex storage comparison GraphR/HyVE", runFig11},
	{"fig12", "Preprocessing speed vs number of blocks", runFig12},
	{"fig13", "Energy efficiency by ReRAM cell bits", runFig13},
	{"fig14", "Data-sharing energy-efficiency improvement", runFig14},
	{"fig15", "Power-gating energy-efficiency improvement", runFig15},
	{"fig16", "Energy efficiency across configurations (MTEPS/W)", runFig16},
	{"fig17", "Energy consumption breakdown", runFig17},
	{"fig18", "Execution time SD/HyVE", runFig18},
	{"fig19", "Preprocessing time GraphR/HyVE", runFig19},
	{"fig20", "Dynamic graph update throughput", runFig20},
	{"fig21", "GraphR/HyVE delay, energy, EDP", runFig21},
	{"ablation-interleave", "Bank vs subbank interleaving (extension)", runAblationInterleave},
	{"ablation-nvm", "Edge-memory NVM alternatives (extension)", runAblationNVM},
	{"ablation-gate-timeout", "Power-gate idle timeout sweep (extension)", runAblationGateTimeout},
	{"ablation-router", "Router reroute cost sensitivity (extension)", runAblationRouter},
	{"ablation-model", "Edge-centric vs vertex-centric locality (extension)", runAblationModel},
	{"ablation-precision", "Crossbar compute precision (extension)", runAblationPrecision},
	{"ablation-topology", "Topology sensitivity (extension)", runAblationTopology},
}

// All returns every experiment in paper order.
func All() []Experiment {
	return append([]Experiment(nil), registry...)
}

// ByID finds an experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range registry {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q (have %s)", id, strings.Join(ids(), ", "))
}

func ids() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.ID
	}
	return out
}

// --- workload assembly with memoized functional runs -------------------

// funcOutcome caches what a functional run determines about a workload.
type funcOutcome struct {
	iterations int
	activity   float64
	updates    float64
}

var iterCache sync.Map // "PROG/DATASET" → funcOutcome

// workloadFor builds the standard workload for (dataset, program) with
// the functional outcome (iteration count, activity factors) memoized
// across runners: it depends only on the program and graph, not on the
// architecture.
func workloadFor(d graph.Dataset, progName string) (core.Workload, error) {
	p, err := algo.ByName(progName)
	if err != nil {
		return core.Workload{}, err
	}
	w, err := core.WorkloadFor(d, p)
	if err != nil {
		return core.Workload{}, err
	}
	key := progName + "/" + d.Name
	if v, ok := iterCache.Load(key); ok {
		o := v.(funcOutcome)
		w.Iterations = o.iterations
		w.ActivityFactor = o.activity
		w.UpdateFactor = o.updates
		return w, nil
	}
	fr, err := algo.Run(w.Program, w.Graph)
	if err != nil {
		return core.Workload{}, err
	}
	o := funcOutcome{iterations: fr.Iterations, activity: fr.ActivityRatio(), updates: fr.UpdateRatio()}
	iterCache.Store(key, o)
	w.Iterations = o.iterations
	w.ActivityFactor = o.activity
	w.UpdateFactor = o.updates
	return w, nil
}

// --- tiny aligned-table writer ------------------------------------------

type table struct {
	header []string
	rows   [][]string
}

func newTable(header ...string) *table { return &table{header: header} }

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) addf(format string, args ...any) {
	t.add(strings.Split(fmt.Sprintf(format, args...), "|")...)
}

func (t *table) write(w io.Writer) error {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.header)); err != nil {
		return err
	}
	total := len(widths) - 1
	for _, x := range widths {
		total += x + 1
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total)); err != nil {
		return err
	}
	for _, r := range t.rows {
		if _, err := fmt.Fprintln(w, line(r)); err != nil {
			return err
		}
	}
	return nil
}

// geomean returns the geometric mean of positive values (the averaging
// the paper uses for its improvement factors).
func geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// median returns the middle value of a sample.
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	return c[len(c)/2]
}

// Package experiments regenerates every table and figure of the paper's
// evaluation (§6 measured data and §7): one runner per artifact, each
// printing the same rows/series the paper reports. The cmd/hyve-bench
// binary and the repository's bench_test.go drive these runners; the
// package tests assert the paper's qualitative shapes on every one.
package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"

	"repro/internal/algo"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/parallel"
)

// Options tunes a run.
type Options struct {
	// Quick restricts datasets and sweep sizes so the full suite runs in
	// seconds (used by tests); the default exercises all five datasets.
	Quick bool
	// Datasets overrides the dataset list (defaults to graph.Datasets,
	// or its first two under Quick).
	Datasets []graph.Dataset
	// Parallel is the worker count for the independent simulation
	// points inside each runner: 1 (or negative) runs them inline, 0
	// uses GOMAXPROCS. Results are collected into index-addressed
	// slices before table emission, so output is byte-identical at any
	// worker count. Experiments that measure wall time (Measured in the
	// registry) ignore this and always run their points serially —
	// concurrent load would distort the very quantity they report.
	Parallel int
	// Artifact, when non-nil, collects a machine-readable mirror of the
	// run: every table the runner writes to w is also appended here, and
	// runners record their headline numbers as named metrics. Drivers
	// build one with NewRunArtifact and serialize it after Run returns.
	Artifact *obs.Artifact
	// Cache is the scheduler every simulation point is submitted
	// through, so identical points across experiments (and, with a
	// disk-backed scheduler, across runs) execute exactly once. Nil
	// uses a process-wide in-memory default; cache.Off() disables
	// reuse entirely. Results a runner receives may be shared with
	// other runners and must be treated as read-only.
	Cache *cache.Scheduler
	// Ctx, when non-nil, carries the driver's span context: simulation
	// points submitted through the run inherit it, so point spans nest
	// under the driver's run/experiment spans when tracing is enabled
	// (see obs.StartSpan). It does not cancel anything — executions run
	// to completion — and is deliberately excluded from OptionsDigest.
	Ctx context.Context
}

// defaultCache is the process-wide scheduler used when a driver does not
// supply one: in-memory only, so every run still dedups identical points
// across its experiments (the HyVE baseline of one dataset is simulated
// once for Figs. 14/15/17/18, not four times).
var defaultCache = cache.New(cache.Config{})

// cacheFor resolves the run's scheduler.
func (o Options) cacheFor() *cache.Scheduler {
	if o.Cache != nil {
		return o.Cache
	}
	return defaultCache
}

// simulate submits one simulation point through the run's scheduler —
// the single path every runner's core points take, which is what makes
// "identical points execute exactly once" a property of the suite
// rather than of each runner.
func (o Options) simulate(cfg core.Config, wl core.Workload) (*core.Result, error) {
	ctx := o.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	return o.cacheFor().SimulateCtx(ctx, cfg, wl)
}

// NewRunArtifact builds the artifact shell for one experiment run,
// pinning the resolved dataset list and the options digest into the
// manifest. Attach it via Options.Artifact before calling e.Run.
func NewRunArtifact(e Experiment, o Options) *obs.Artifact {
	m := obs.Manifest{Quick: o.Quick, Digest: OptionsDigest(e, o)}
	for _, d := range o.datasets() {
		m.Datasets = append(m.Datasets, obs.DatasetRef{
			Name:         d.Name,
			Long:         d.Long,
			Scale:        d.Scale,
			Seed:         d.Seed,
			FullVertices: d.FullVertices,
			FullEdges:    d.FullEdges,
		})
	}
	return obs.NewArtifact(e.ID, e.Title, m)
}

// OptionsDigest is the canonical provenance digest of one experiment
// run: the experiment id, the sweep mode, every resolved dataset
// instance (name, scale divisor, generator seed, full-scale sizes), and
// the artifact and simulator schema versions. It deliberately excludes
// Options.Parallel (artifacts are byte-identical at any worker count)
// and the attached artifact/cache. Resumable drivers store it in the
// artifact manifest and rerun on mismatch: changing -scale, -seed, or
// -quick between runs changes the digest, so a -resume can no longer
// silently keep results from a different configuration.
func OptionsDigest(e Experiment, o Options) string {
	h := cache.NewHasher()
	h.Str("schema", obs.ArtifactSchema)
	h.Str("sim", core.SimSchema)
	h.Str("experiment", e.ID)
	h.Bool("quick", o.Quick)
	for _, d := range o.datasets() {
		h.Str("ds.name", d.Name)
		h.Str("ds.long", d.Long)
		h.I64("ds.scale", int64(d.Scale))
		h.U64("ds.seed", d.Seed)
		h.I64("ds.full_v", d.FullVertices)
		h.I64("ds.full_e", d.FullEdges)
	}
	return h.Sum().String()
}

// writeTable renders t to w and mirrors it, under name, into the run's
// artifact when one is attached. Every runner emits its tables through
// this so text and JSON can never drift.
func (o Options) writeTable(w io.Writer, name string, t *table) error {
	if o.Artifact != nil {
		o.Artifact.AddTable(name, t.header, t.rows)
	}
	return t.write(w)
}

// metric records one headline number into the run's artifact (no-op
// without one).
func (o Options) metric(name string, value float64, unit string) {
	if o.Artifact != nil {
		o.Artifact.AddMetric(name, value, unit)
	}
}

// notef mirrors one formatted summary line into the artifact's notes
// (no-op without one). Callers still print the line to w themselves.
func (o Options) notef(format string, args ...any) {
	if o.Artifact != nil {
		o.Artifact.AddNote(fmt.Sprintf(format, args...))
	}
}

// forEach fans the runner's independent points [0, n) across the
// configured worker pool (see parallel.ForEach for the determinism
// contract).
func (o Options) forEach(n int, fn func(i int) error) error {
	return parallel.ForEach(workersFor(o.Parallel), n, fn)
}

// workersFor maps the Options.Parallel convention (1/negative = serial,
// 0 = GOMAXPROCS) onto parallel.Workers.
func workersFor(p int) int {
	if p < 0 {
		return 1
	}
	return parallel.Workers(p)
}

// datasets resolves the dataset list for a run.
func (o Options) datasets() []graph.Dataset {
	if len(o.Datasets) > 0 {
		return o.Datasets
	}
	if o.Quick {
		return graph.Datasets[:2]
	}
	return graph.Datasets
}

// Experiment is one regenerable paper artifact.
type Experiment struct {
	// ID is the artifact key: "table1", "fig9", ….
	ID string
	// Title is the paper's caption, abbreviated.
	Title string
	// Run writes the regenerated rows to w.
	Run func(w io.Writer, opt Options) error
	// Measured marks experiments whose numbers come from wall-clock
	// measurement of this process (preprocessing speed, dynamic-update
	// throughput). Their points always run serially, and drivers that
	// run experiments concurrently must give them the machine to
	// themselves so background load cannot distort the measurement.
	Measured bool
}

var registry = []Experiment{
	{"table1", "Average edges in non-empty 8×8 blocks (Navg)", runTable1, false},
	{"table3", "ReRAM bank power under different configurations", runTable3, false},
	{"table4", "Energy efficiency varying SRAM sizes (MTEPS/W)", runTable4, false},
	{"fig9", "Normalized DRAM/ReRAM delay, energy, EDP (sequential access)", runFig9, false},
	{"fig10", "Normalized vertex-memory EDP DRAM/ReRAM on HyVE and GraphR", runFig10, false},
	{"fig11", "Vertex storage comparison GraphR/HyVE", runFig11, false},
	{"fig12", "Preprocessing speed vs number of blocks", runFig12, true},
	{"fig13", "Energy efficiency by ReRAM cell bits", runFig13, false},
	{"fig14", "Data-sharing energy-efficiency improvement", runFig14, false},
	{"fig15", "Power-gating energy-efficiency improvement", runFig15, false},
	{"fig16", "Energy efficiency across configurations (MTEPS/W)", runFig16, false},
	{"fig17", "Energy consumption breakdown", runFig17, false},
	{"fig18", "Execution time SD/HyVE", runFig18, false},
	{"fig19", "Preprocessing time GraphR/HyVE", runFig19, true},
	{"fig20", "Dynamic graph update throughput", runFig20, true},
	{"fig21", "GraphR/HyVE delay, energy, EDP", runFig21, false},
	{"ablation-interleave", "Bank vs subbank interleaving (extension)", runAblationInterleave, false},
	{"ablation-nvm", "Edge-memory NVM alternatives (extension)", runAblationNVM, false},
	{"ablation-gate-timeout", "Power-gate idle timeout sweep (extension)", runAblationGateTimeout, false},
	{"ablation-router", "Router reroute cost sensitivity (extension)", runAblationRouter, false},
	{"ablation-model", "Edge-centric vs vertex-centric locality (extension)", runAblationModel, false},
	{"ablation-precision", "Crossbar compute precision (extension)", runAblationPrecision, false},
	{"ablation-topology", "Topology sensitivity (extension)", runAblationTopology, false},
	{"reliability", "ReRAM faults: SECDED ECC and bank sparing (extension)", runReliability, false},
}

// All returns every experiment in paper order.
func All() []Experiment {
	return append([]Experiment(nil), registry...)
}

// ByID finds an experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range registry {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q (have %s)", id, strings.Join(ids(), ", "))
}

func ids() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.ID
	}
	return out
}

// --- workload assembly with memoized functional runs -------------------

// wlEntry is one memoized workload: assembly and the functional run both
// happen exactly once, under the entry's Once, no matter how many
// concurrent runners ask for the same (dataset, program) point.
type wlEntry struct {
	once sync.Once
	wl   core.Workload
	err  error
}

// wlCache memoizes assembled workloads. The key includes the dataset's
// scale divisor and generator seed, not just its name: two sweeps
// running concurrently against differently scaled or reseeded variants
// of the same dataset would otherwise cross-pollinate cached functional
// outcomes (iteration counts, activity factors) and silently corrupt
// each other's tables.
var wlCache sync.Map // wlKey → *wlEntry

func wlKey(d graph.Dataset, progName string) string {
	return fmt.Sprintf("%s/%s/scale%d/seed%x", progName, d.Name, d.Scale, d.Seed)
}

// workloadFor builds the standard workload for (dataset, program) with
// the functional outcome (iteration count, activity factors) memoized
// across runners: it depends only on the program and graph, not on the
// architecture. The cached workload shares its graph and program across
// callers; both are read-only during simulation (programs are stateless,
// graphs are never mutated after generation), which is what makes
// concurrent core.Simulate calls on the same workload race-free.
func workloadFor(d graph.Dataset, progName string) (core.Workload, error) {
	v, _ := wlCache.LoadOrStore(wlKey(d, progName), &wlEntry{})
	e := v.(*wlEntry)
	e.once.Do(func() {
		p, err := algo.ByName(progName)
		if err != nil {
			e.err = err
			return
		}
		w, err := core.WorkloadFor(d, p)
		if err != nil {
			e.err = err
			return
		}
		fr, err := algo.Run(w.Program, w.Graph)
		if err != nil {
			e.err = err
			return
		}
		w.Iterations = fr.Iterations
		w.ActivityFactor = fr.ActivityRatio()
		w.UpdateFactor = fr.UpdateRatio()
		e.wl = w
	})
	return e.wl, e.err
}

// --- tiny aligned-table writer ------------------------------------------

type table struct {
	header []string
	rows   [][]string
}

func newTable(header ...string) *table { return &table{header: header} }

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

// addf adds one row from a "|"-separated format string: each segment is
// one cell's format, rendered independently with the arguments its verbs
// consume. Splitting happens on the format string, never on rendered
// output, so a formatted value containing "|" stays inside its cell
// instead of silently shifting every column after it.
func (t *table) addf(format string, args ...any) {
	segs := strings.Split(format, "|")
	cells := make([]string, len(segs))
	at := 0
	for i, seg := range segs {
		n := countVerbs(seg)
		if at+n > len(args) {
			n = len(args) - at
		}
		cells[i] = fmt.Sprintf(seg, args[at:at+n]...)
		at += n
	}
	if at < len(args) {
		// Surplus arguments are a caller bug; surface them the way
		// fmt does rather than dropping data.
		cells[len(cells)-1] += fmt.Sprintf("%%!(EXTRA args=%v)", args[at:])
	}
	t.add(cells...)
}

// countVerbs counts the arguments a format segment consumes: one per
// verb, skipping the literal "%%". The runners' formats use only
// fixed-width verbs (%s, %d, %v, %.2f, …), none of the '*'-indirect
// forms, so one verb is always one argument.
func countVerbs(format string) int {
	n := 0
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		if i+1 < len(format) && format[i+1] == '%' {
			i++
			continue
		}
		n++
	}
	return n
}

func (t *table) write(w io.Writer) error {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.header)); err != nil {
		return err
	}
	total := len(widths) - 1
	for _, x := range widths {
		total += x + 1
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total)); err != nil {
		return err
	}
	for _, r := range t.rows {
		if _, err := fmt.Fprintln(w, line(r)); err != nil {
			return err
		}
	}
	return nil
}

// geomean returns the geometric mean of positive values (the averaging
// the paper uses for its improvement factors).
func geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// median returns the middle value of a sample.
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	return c[len(c)/2]
}

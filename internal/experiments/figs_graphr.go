package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/dynamic"
	"repro/internal/graph"
	"repro/internal/graphr"
	"repro/internal/partition"
)

// runFig19 regenerates Fig. 19: measured preprocessing time ratio
// GraphR/HyVE. HyVE partitions into a handful of intervals with a
// two-pass counting layout; GraphR must bucket every edge into one of
// ~|V|²/64 sparse 8×8 blocks through a block directory — the addressing
// overhead §6.5 identifies (paper mean: 6.73×). Marked Measured in the
// registry: its points time real executions and always run serially.
func runFig19(w io.Writer, opt Options) error {
	fmt.Fprintln(w, "Fig. 19: preprocessing time GraphR/HyVE (measured)")
	t := newTable("dataset", "HyVE P", "GraphR/HyVE")
	var all []float64
	reps := 3
	if opt.Quick {
		reps = 2
	}
	for _, d := range opt.datasets() {
		g, err := d.Load()
		if err != nil {
			return err
		}
		p, err := partition.ChooseP(d.FullVertices, 2<<20, 8, 8)
		if err != nil {
			return err
		}
		if p > g.NumVertices {
			p = g.NumVertices / 8 * 8
		}
		asg, err := partition.NewHashed(g.NumVertices, p)
		if err != nil {
			return err
		}
		hyveTime := measureBest(reps, func() error {
			_, err := partition.Build(g, asg)
			return err
		})
		graphrTime := measureBest(reps, func() error {
			return buildSparseBlocks(g, 8)
		})
		ratio := graphrTime.Seconds() / hyveTime.Seconds()
		all = append(all, ratio)
		t.addf("%s|%d|%.2f", d.Name, p, ratio)
	}
	if err := opt.writeTable(w, "preprocessing-ratio", t); err != nil {
		return err
	}
	opt.metric("fig19.mean_ratio", geomean(all), "x")
	_, err := fmt.Fprintf(w, "mean: %.2fx (paper: 6.73x)\n", geomean(all))
	return err
}

// buildSparseBlocks performs GraphR's preprocessing: scatter every edge
// into its 8×8 block through a sparse block directory.
func buildSparseBlocks(g *graph.Graph, dim int) error {
	blocks := make(map[uint64][]graph.Edge)
	for _, e := range g.Edges {
		k := uint64(e.Src)/uint64(dim)<<32 | uint64(e.Dst)/uint64(dim)
		blocks[k] = append(blocks[k], e)
	}
	if len(blocks) == 0 && g.NumEdges() > 0 {
		return fmt.Errorf("experiments: sparse build produced no blocks")
	}
	return nil
}

// runFig20 regenerates Fig. 20: single-thread dynamic-update throughput
// (million edges changed per second) under the 45/45/5/5 request mix,
// HyVE's slack-based layout vs GraphR's block-rewrite layout (paper:
// HyVE up to 46.98 M/s, 8.04× over GraphR). Marked Measured in the
// registry: its points time real executions and always run serially.
func runFig20(w io.Writer, opt Options) error {
	fmt.Fprintln(w, "Fig. 20: dynamic update throughput (million edges/s, single thread)")
	t := newTable("dataset", "HyVE", "GraphR", "ratio")
	n := 200_000
	if opt.Quick {
		n = 20_000
	}
	var ratios []float64
	for _, d := range opt.datasets() {
		g, err := d.Load()
		if err != nil {
			return err
		}
		reqs, err := dynamic.GenerateRequests(g, n, dynamic.PaperMix, d.Seed^0xD15C)
		if err != nil {
			return err
		}
		measure := func(mk func() (dynamic.Store, error)) (float64, error) {
			var rates []float64
			for i := 0; i < 3; i++ {
				s, err := mk()
				if err != nil {
					return 0, err
				}
				tp, err := dynamic.Replay(s, reqs)
				if err != nil {
					return 0, err
				}
				rates = append(rates, tp.MillionEdgesPerSecond())
			}
			return median(rates), nil
		}
		hv, err := measure(func() (dynamic.Store, error) {
			asg, err := partition.NewHashed(g.NumVertices, 16)
			if err != nil {
				return nil, err
			}
			return dynamic.NewHyVEStore(g, asg, 0.3)
		})
		if err != nil {
			return err
		}
		gr, err := measure(func() (dynamic.Store, error) {
			return dynamic.NewGraphRStore(g, 8)
		})
		if err != nil {
			return err
		}
		ratios = append(ratios, hv/gr)
		t.addf("%s|%.2f|%.2f|%.2f", d.Name, hv, gr, hv/gr)
	}
	if err := opt.writeTable(w, "update-throughput", t); err != nil {
		return err
	}
	opt.metric("fig20.mean_ratio", geomean(ratios), "x")
	_, err := fmt.Fprintf(w, "mean HyVE/GraphR: %.2fx (paper: 8.04x)\n", geomean(ratios))
	return err
}

// runFig21 regenerates Fig. 21: GraphR/HyVE ratios of delay, energy, and
// EDP across all five algorithms (paper means: 5.12× delay, 2.83×
// energy, 17.63× EDP).
func runFig21(w io.Writer, opt Options) error {
	fmt.Fprintln(w, "Fig. 21: normalized performance GraphR/HyVE (>1: HyVE better)")
	algos := []string{"BFS", "CC", "PR", "SSSP", "SpMV"}
	if opt.Quick {
		algos = []string{"PR", "BFS"}
	}
	ds := opt.datasets()
	type fig21Point struct{ dr, er, xr float64 }
	points := make([]fig21Point, len(algos)*len(ds))
	err := opt.forEach(len(points), func(i int) error {
		wl, err := workloadFor(ds[i%len(ds)], algos[i/len(ds)])
		if err != nil {
			return err
		}
		gr, err := graphr.Simulate(graphr.Default(), wl)
		if err != nil {
			return err
		}
		hv, err := opt.simulate(core.HyVE(), wl)
		if err != nil {
			return err
		}
		points[i] = fig21Point{
			dr: gr.Report.Time.Seconds() / hv.Report.Time.Seconds(),
			er: gr.Report.Energy.Total().Joules() / hv.Report.Energy.Total().Joules(),
			xr: float64(gr.Report.EDP()) / float64(hv.Report.EDP()),
		}
		return nil
	})
	if err != nil {
		return err
	}
	t := newTable("algo", "dataset", "delay", "energy", "EDP")
	var dAll, eAll, edpAll []float64
	for ai, a := range algos {
		for di, d := range ds {
			p := points[ai*len(ds)+di]
			dAll = append(dAll, p.dr)
			eAll = append(eAll, p.er)
			edpAll = append(edpAll, p.xr)
			t.addf("%s|%s|%.2f|%.2f|%.2f", a, d.Name, p.dr, p.er, p.xr)
		}
	}
	if err := opt.writeTable(w, "graphr-vs-hyve", t); err != nil {
		return err
	}
	opt.metric("fig21.mean_delay_ratio", geomean(dAll), "x")
	opt.metric("fig21.mean_energy_ratio", geomean(eAll), "x")
	opt.metric("fig21.mean_edp_ratio", geomean(edpAll), "x")
	_, err = fmt.Fprintf(w, "means: delay %.2fx (paper 5.12x), energy %.2fx (paper 2.83x), EDP %.2fx (paper 17.63x)\n",
		geomean(dAll), geomean(eAll), geomean(edpAll))
	return err
}

package experiments

import (
	"bytes"
	"context"
	"io"
	"testing"

	"repro/internal/cache"
	"repro/internal/obs"
)

// TestArtifactsByteIdenticalUnderFullObservation is the golden contract
// of the observability layer: turning everything on — metrics registry
// as the default recorder, span tracing, flight recording, a span
// context threaded through Options.Ctx — must not change a single
// artifact byte. The observed run gets a fresh scheduler so its points
// actually execute (rather than replaying the plain run's cache) with
// every probe live on the execution path.
func TestArtifactsByteIdenticalUnderFullObservation(t *testing.T) {
	runArtifact := func(id string, observed bool) []byte {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		opt := Options{Quick: true, Cache: cache.New(cache.Config{})}
		if observed {
			reg := obs.NewRegistry()
			obs.SetDefault(obs.Multi(obs.Expvar(), reg))
			obs.EnableTracing(0)
			cache.RegisterMetrics(reg)
			defer obs.SetDefault(nil)
			defer obs.DisableTracing()
			ctx, span := obs.StartSpan(context.Background(), "test run")
			defer span.End()
			opt.Ctx = ctx
		}
		opt.Artifact = NewRunArtifact(e, opt)
		if err := e.Run(io.Discard, opt); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		var b bytes.Buffer
		if err := opt.Artifact.EncodeJSON(&b); err != nil {
			t.Fatal(err)
		}
		if observed {
			// The observed run must actually have hit the live probes:
			// points executed and histograms populated, or this test
			// proves nothing.
			if reg := obs.Default(); reg == obs.Recorder(nil) {
				t.Fatal("observed run lost its recorder")
			}
			if !obs.TracingEnabled() {
				t.Fatal("observed run lost its trace buffer")
			}
		}
		return b.Bytes()
	}

	for _, id := range []string{"fig14", "table3"} {
		plain := runArtifact(id, false)
		observed := runArtifact(id, true)
		if !bytes.Equal(plain, observed) {
			t.Errorf("%s artifact differs with observation enabled:\n--- plain ---\n%s\n--- observed ---\n%s",
				id, plain, observed)
		}
		if len(plain) == 0 || plain[0] != '{' {
			t.Errorf("%s artifact does not look like JSON", id)
		}
	}
}

// TestObservedRunActuallyObserves guards against the identity test
// passing vacuously: with the full stack on, an executed experiment must
// land cache counters, latency histograms, and spans.
func TestObservedRunActuallyObserves(t *testing.T) {
	e, err := ByID("fig14")
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	obs.SetDefault(reg)
	obs.EnableTracing(0)
	defer obs.SetDefault(nil)
	defer obs.DisableTracing()
	ctx, span := obs.StartSpan(context.Background(), "observed run")
	opt := Options{Quick: true, Cache: cache.New(cache.Config{}), Ctx: ctx}
	if err := e.Run(io.Discard, opt); err != nil {
		t.Fatal(err)
	}
	span.End()

	s := reg.Snapshot()
	counters := map[string]int64{}
	for _, c := range s.Counters {
		counters[c.Name] = c.Value
	}
	if counters[cache.MetricMisses] == 0 {
		t.Errorf("no cache misses recorded on a cold scheduler: %+v", counters)
	}
	if counters["parallel.points.completed"] == 0 {
		t.Error("no pool points recorded")
	}
	hists := map[string]uint64{}
	for _, h := range s.Histograms {
		hists[h.Name] = h.Count
	}
	for _, name := range []string{cache.MetricExecSec, cache.MetricLookupSec, "parallel.point.exec.seconds"} {
		if hists[name] == 0 {
			t.Errorf("histogram %s empty; have %v", name, hists)
		}
	}

	spans := obs.Tracing().Snapshot()
	kinds := map[string]int{}
	for _, sp := range spans {
		kinds[sp.Cat]++
	}
	if kinds["wall"] == 0 || kinds["sim"] == 0 {
		t.Errorf("expected wall and sim spans, got %v over %d spans", kinds, len(spans))
	}
	// The hierarchy must nest: at least one point span parented by an
	// id present in the trace (the run/experiment chain).
	ids := map[uint64]bool{}
	for _, sp := range spans {
		ids[sp.ID] = true
	}
	nested := 0
	for _, sp := range spans {
		if sp.Parent != 0 && ids[sp.Parent] {
			nested++
		}
	}
	if nested == 0 {
		t.Error("no span in the trace is parented by another buffered span")
	}
}

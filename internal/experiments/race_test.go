package experiments

import (
	"bytes"
	"io"
	"sync"
	"testing"

	"repro/internal/algo"
	"repro/internal/core"
	"repro/internal/graph"
)

// quickOpt is the cheap configuration the concurrency tests hammer with:
// small datasets, and every runner fanning its points across 4 workers.
var quickOpt = Options{Quick: true, Parallel: 4}

// TestConcurrentRunnersRaceClean runs several experiments at once, each
// itself parallel, twice over — the workload cache, the table writer,
// and every simulator path get exercised from many goroutines. The test
// asserts nothing numeric; its job is to give `go test -race` surface.
func TestConcurrentRunnersRaceClean(t *testing.T) {
	ids := []string{"table1", "table4", "fig14", "fig16", "fig18", "fig21", "ablation-nvm", "ablation-model"}
	var wg sync.WaitGroup
	errs := make(chan error, 2*len(ids))
	for rep := 0; rep < 2; rep++ {
		for _, id := range ids {
			e, err := ByID(id)
			if err != nil {
				t.Fatal(err)
			}
			wg.Add(1)
			go func(e Experiment) {
				defer wg.Done()
				if err := e.Run(io.Discard, quickOpt); err != nil {
					errs <- err
				}
			}(e)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestConcurrentWorkloadFor hammers the singleflight cache: many
// goroutines asking for the same (dataset, program) must all see the
// one memoized workload, and distinct scales of the same dataset must
// not collide.
func TestConcurrentWorkloadFor(t *testing.T) {
	d := graph.Datasets[0]
	scaled := d
	scaled.Scale *= 2
	var wg sync.WaitGroup
	wls := make([]core.Workload, 16)
	var scaledIters int
	for i := 0; i < len(wls); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			wl, err := workloadFor(d, "PR")
			if err != nil {
				t.Error(err)
				return
			}
			wls[i] = wl
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(wls); i++ {
		if wls[i].Graph != wls[0].Graph {
			t.Fatalf("goroutine %d got a different graph pointer — cache not singleflight", i)
		}
		if wls[i].Iterations != wls[0].Iterations {
			t.Fatalf("goroutine %d got different iteration count %d vs %d", i, wls[i].Iterations, wls[0].Iterations)
		}
	}
	swl, err := workloadFor(scaled, "PR")
	if err != nil {
		t.Fatal(err)
	}
	scaledIters = swl.Iterations
	if swl.Graph == wls[0].Graph {
		t.Fatal("scaled dataset shared the full-scale cache entry — key must include scale")
	}
	_ = scaledIters
}

// TestConcurrentSimulateSharedWorkload runs many simulations of the one
// cached workload at once: the workload's graph and program are shared
// read-only, so results must agree and -race must stay quiet.
func TestConcurrentSimulateSharedWorkload(t *testing.T) {
	wl, err := workloadFor(graph.Datasets[0], "PR")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	effs := make([]float64, 12)
	for i := range effs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg := core.HyVE()
			if i%2 == 1 {
				cfg = core.HyVEOpt()
			}
			r, err := core.Simulate(cfg, wl)
			if err != nil {
				t.Error(err)
				return
			}
			effs[i] = r.Report.MTEPSPerWatt()
		}(i)
	}
	wg.Wait()
	for i := 2; i < len(effs); i += 2 {
		if effs[i] != effs[0] {
			t.Errorf("simulation %d diverged: %v vs %v — shared workload mutated?", i, effs[i], effs[0])
		}
	}
}

// TestConcurrentRunParallel runs several parallel functional executions
// on the same graph at once — each RunParallel spawns its own workers
// over shared read-only edges, so concurrent calls must not interfere.
func TestConcurrentRunParallel(t *testing.T) {
	g, err := graph.Datasets[0].Load()
	if err != nil {
		t.Fatal(err)
	}
	p, err := algo.ByName("PR")
	if err != nil {
		t.Fatal(err)
	}
	ref, err := algo.Run(p, g)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(workers int) {
			defer wg.Done()
			r, err := algo.RunParallel(p, g, workers)
			if err != nil {
				t.Error(err)
				return
			}
			if r.Iterations != ref.Iterations {
				t.Errorf("RunParallel(workers=%d) took %d iterations, sequential took %d",
					workers, r.Iterations, ref.Iterations)
			}
		}(1 + i%4)
	}
	wg.Wait()
}

// TestParallelOutputGolden is the determinism contract end to end: for
// deterministic (non-Measured) experiments, a serial run and an
// 8-worker run must emit byte-identical artifacts.
func TestParallelOutputGolden(t *testing.T) {
	ids := []string{"table1", "table4", "fig14", "fig16", "fig21", "ablation-nvm", "reliability"}
	for _, id := range ids {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		var serial, par bytes.Buffer
		if err := e.Run(&serial, Options{Quick: true, Parallel: 1}); err != nil {
			t.Fatalf("%s serial: %v", id, err)
		}
		if err := e.Run(&par, Options{Quick: true, Parallel: 8}); err != nil {
			t.Fatalf("%s parallel: %v", id, err)
		}
		if !bytes.Equal(serial.Bytes(), par.Bytes()) {
			t.Errorf("%s: parallel output differs from serial\n--- serial ---\n%s\n--- parallel ---\n%s",
				id, serial.String(), par.String())
		}
	}
}

package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/analytic"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/device/dram"
	"repro/internal/device/rram"
	"repro/internal/device/sram"
	"repro/internal/partition"
	"repro/internal/units"
)

func chipsAt(density int) (*dram.Chip, *rram.Chip, error) {
	dc := dram.DefaultConfig()
	dc.DensityGb = density
	d, err := dram.New(dc)
	if err != nil {
		return nil, nil, err
	}
	rc := rram.DefaultConfig()
	rc.DensityGb = density
	r, err := rram.New(rc)
	if err != nil {
		return nil, nil, err
	}
	return d, r, nil
}

// runFig9 regenerates Fig. 9: normalized DRAM/ReRAM delay, energy, and
// EDP for 100% sequential reads, 100% sequential writes, and a 50/50
// mix, at 4/8/16 Gb density. Paper shape: DRAM wins delay everywhere;
// ReRAM wins read energy and read EDP; DRAM wins write EDP.
func runFig9(w io.Writer, opt Options) error {
	fmt.Fprintln(w, "Fig. 9: normalized performance DRAM/ReRAM (values >1 mean ReRAM better)")
	t := newTable("workload", "density", "delay", "energy", "EDP")
	workloads := []struct {
		label     string
		readShare float64
	}{
		{"sequential read (100%)", 1},
		{"sequential write (100%)", 0},
		{"seq read 50% + seq write 50%", 0.5},
	}
	for _, wl := range workloads {
		for _, density := range []int{4, 8, 16} {
			dc, rc, err := chipsAt(density)
			if err != nil {
				return err
			}
			mix := func(m device.Memory) device.Cost {
				return m.Read(true).Times(wl.readShare).Plus(m.Write(true).Times(1 - wl.readShare))
			}
			dcost, rcost := mix(dc), mix(rc)
			t.addf("%s|%dGb|%.3f|%.3f|%.3f",
				wl.label, density,
				float64(dcost.Latency)/float64(rcost.Latency),
				float64(dcost.Energy)/float64(rcost.Energy),
				float64(dcost.EDP())/float64(rcost.EDP()))
		}
	}
	return opt.writeTable(w, "dram-vs-reram", t)
}

// runFig10 regenerates Fig. 10: normalized EDP (DRAM/ReRAM) of the
// *global vertex memory* under HyVE's and GraphR's partition counts.
// Paper shape: DRAM wins (ratio < 1) for HyVE's few partitions; ReRAM
// wins (ratio > 1) for GraphR's many partitions.
func runFig10(w io.Writer, opt Options) error {
	fmt.Fprintln(w, "Fig. 10: normalized vertex-memory EDP DRAM/ReRAM (<1: DRAM better)")
	archs := []string{"GraphR", "HyVE"}
	ds := opt.datasets()
	rows := make([][]string, len(archs)*len(ds))
	err := opt.forEach(len(rows), func(i int) error {
		arch, d := archs[i/len(ds)], ds[i%len(ds)]
		g, err := d.Load()
		if err != nil {
			return err
		}
		var counts analytic.Counts
		if arch == "GraphR" {
			occ, err := partition.ComputeOccupancy(g, 8)
			if err != nil {
				return err
			}
			counts = analytic.GraphRCounts(int64(g.NumVertices), int64(g.NumEdges()), occ.NonEmpty)
		} else {
			p, err := partition.ChooseP(d.FullVertices, 2<<20, 8, 8)
			if err != nil {
				return err
			}
			counts, err = analytic.HyVECounts(int64(g.NumVertices), int64(g.NumEdges()), p, 8)
			if err != nil {
				return err
			}
		}
		row := []string{arch, d.Name}
		for _, density := range []int{4, 8, 16} {
			dc, rc, err := chipsAt(density)
			if err != nil {
				return err
			}
			local, err := sram.New(2 << 20)
			if err != nil {
				return err
			}
			edp := func(global device.Memory) units.EDP {
				v := analytic.VertexStorage{N: counts, C: analytic.VertexOps(global, local), ValueWords: 2}
				return v.GlobalCost().EDP()
			}
			row = append(row, fmt.Sprintf("%.3f", float64(edp(dc))/float64(edp(rc))))
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return err
	}
	t := newTable("architecture", "dataset", "4Gb", "8Gb", "16Gb")
	for _, r := range rows {
		t.add(r...)
	}
	return opt.writeTable(w, "vertex-edp", t)
}

// runFig11 regenerates Fig. 11: vertex-storage comparison GraphR/HyVE —
// sequential read/write counts and whole-subsystem delay, energy, EDP
// with a DRAM or ReRAM global memory (4 Gb chips, 2 MB SRAM). Paper
// shape: GraphR reads far more vertices, and HyVE wins delay, energy,
// and EDP despite GraphR's faster register files.
func runFig11(w io.Writer, opt Options) error {
	fmt.Fprintln(w, "Fig. 11: vertex storage GraphR/HyVE (values >1 mean HyVE better)")
	ds := opt.datasets()
	rows := make([][]string, len(ds))
	err := opt.forEach(len(ds), func(i int) error {
		d := ds[i]
		g, err := d.Load()
		if err != nil {
			return err
		}
		occ, err := partition.ComputeOccupancy(g, 8)
		if err != nil {
			return err
		}
		grCounts := analytic.GraphRCounts(int64(g.NumVertices), int64(g.NumEdges()), occ.NonEmpty)
		p, err := partition.ChooseP(d.FullVertices, 2<<20, 8, 8)
		if err != nil {
			return err
		}
		hvCounts, err := analytic.HyVECounts(int64(g.NumVertices), int64(g.NumEdges()), p, 8)
		if err != nil {
			return err
		}
		sramLocal, err := sram.New(2 << 20)
		if err != nil {
			return err
		}
		regLocal, err := sram.NewRegisterFile(128)
		if err != nil {
			return err
		}
		row := []string{d.Name,
			fmt.Sprintf("%.2f", float64(grCounts.SeqVertexReads)/float64(hvCounts.SeqVertexReads)),
			fmt.Sprintf("%.2f", float64(grCounts.SeqVertexWrites)/float64(hvCounts.SeqVertexWrites)),
		}
		for _, density := range []int{4} {
			dc, rc, err := chipsAt(density)
			if err != nil {
				return err
			}
			for _, global := range []device.Memory{dc, rc} {
				gr := analytic.VertexStorage{N: grCounts, C: analytic.VertexOps(global, regLocal), ValueWords: 2}.Cost()
				hv := analytic.VertexStorage{N: hvCounts, C: analytic.VertexOps(global, sramLocal), ValueWords: 2}.Cost()
				row = append(row,
					fmt.Sprintf("%.2f", float64(gr.Latency)/float64(hv.Latency)),
					fmt.Sprintf("%.2f", float64(gr.Energy)/float64(hv.Energy)),
					fmt.Sprintf("%.2f", float64(gr.EDP())/float64(hv.EDP())))
			}
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return err
	}
	t := newTable("dataset", "reads", "writes", "delay(DRAM)", "energy(DRAM)", "EDP(DRAM)", "delay(ReRAM)", "energy(ReRAM)", "EDP(ReRAM)")
	for _, r := range rows {
		t.add(r...)
	}
	return opt.writeTable(w, "vertex-storage", t)
}

// runFig12 regenerates Fig. 12: measured preprocessing speed as the
// block count grows, normalized to the smallest grid. Paper shape: flat
// up to ~32×32 blocks, degrading beyond 64×64 as per-block addressing
// overhead bites.
//
// Marked Measured in the registry: the points stay serial regardless of
// Options.Parallel because they time real executions — running them
// under concurrent load would measure scheduler contention, not
// preprocessing speed.
func runFig12(w io.Writer, opt Options) error {
	fmt.Fprintln(w, "Fig. 12: normalized preprocessing speed vs number of blocks (1.0 = P=4)")
	ps := []int{4, 8, 16, 32, 64, 128, 256, 512}
	if opt.Quick {
		ps = []int{4, 16, 64, 256}
	}
	header := []string{"dataset"}
	for _, p := range ps {
		header = append(header, fmt.Sprintf("%d²", p))
	}
	t := newTable(header...)
	for _, d := range opt.datasets() {
		g, err := d.Load()
		if err != nil {
			return err
		}
		row := []string{d.Name}
		var base float64
		for _, p := range ps {
			if p > g.NumVertices {
				row = append(row, "-")
				continue
			}
			asg, err := partition.NewHashed(g.NumVertices, p)
			if err != nil {
				return err
			}
			elapsed := measureBest(3, func() error {
				_, err := partition.BuildBuckets(g, asg)
				return err
			})
			speed := float64(g.NumEdges()) / elapsed.Seconds()
			if base == 0 {
				base = speed
			}
			row = append(row, fmt.Sprintf("%.2f", speed/base))
		}
		t.add(row...)
	}
	return opt.writeTable(w, "preprocessing-speed", t)
}

// measureBest runs fn reps times and returns the fastest wall time — the
// standard way to strip scheduler noise from a micro-measurement.
func measureBest(reps int, fn func() error) time.Duration {
	best := time.Duration(1<<62 - 1)
	for i := 0; i < reps; i++ {
		start := time.Now()
		if err := fn(); err != nil {
			return time.Second // pessimal sentinel; callers normalize
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}

// runFig13 regenerates Fig. 13: PR energy efficiency with 1/2/3-bit
// ReRAM cells. Paper shape: SLC wins (MLC sense amplification costs more
// than the density is worth).
func runFig13(w io.Writer, opt Options) error {
	fmt.Fprintln(w, "Fig. 13: energy efficiency (MTEPS/W) by ReRAM cell bits, PR")
	ds := opt.datasets()
	rows := make([][]string, len(ds))
	err := opt.forEach(len(ds), func(i int) error {
		wl, err := workloadFor(ds[i], "PR")
		if err != nil {
			return err
		}
		row := []string{ds[i].Name}
		for bits := 1; bits <= 3; bits++ {
			cfg := core.HyVEOpt()
			cfg.RRAM.Cell = rram.PaperCell(bits)
			r, err := opt.simulate(cfg, wl)
			if err != nil {
				return err
			}
			row = append(row, fmt.Sprintf("%.0f", r.Report.MTEPSPerWatt()))
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return err
	}
	t := newTable("dataset", "1 bit", "2 bits", "3 bits")
	for _, r := range rows {
		t.add(r...)
	}
	return opt.writeTable(w, "cell-bits", t)
}

package experiments

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestAddfSplitsFormatNotOutput(t *testing.T) {
	for _, tc := range []struct {
		format string
		args   []any
		want   []string
	}{
		// The regression: a rendered value containing "|" must stay in
		// its own cell instead of shifting every column after it.
		{"%s|%d", []any{"a|b", 3}, []string{"a|b", "3"}},
		{"%s|%s|%.2f", []any{"x|y|z", "p|q", 1.5}, []string{"x|y|z", "p|q", "1.50"}},
		// Plain rows are unchanged.
		{"%s|%d|%.1f", []any{"YT", 7, 2.25}, []string{"YT", "7", "2.2"}},
		// Literal text, escaped percents, and multi-verb cells.
		{"lit|%d%%|%s-%d", []any{50, "v", 9}, []string{"lit", "50%", "v-9"}},
		// Too few args renders like fmt: missing verbs show %!d(MISSING).
		{"%s|%d", []any{"only"}, []string{"only", "%!d(MISSING)"}},
	} {
		tbl := newTable("a", "b", "c")
		tbl.addf(tc.format, tc.args...)
		if got := tbl.rows[len(tbl.rows)-1]; !reflect.DeepEqual(got, tc.want) {
			t.Errorf("addf(%q, %v) = %#v, want %#v", tc.format, tc.args, got, tc.want)
		}
	}
}

func TestAddfSurplusArgsSurfaced(t *testing.T) {
	tbl := newTable("a")
	tbl.addf("%s", "x", 42)
	row := tbl.rows[0]
	if len(row) != 1 || !strings.Contains(row[0], "EXTRA") {
		t.Errorf("surplus args should be surfaced fmt-style, got %#v", row)
	}
}

func TestCountVerbs(t *testing.T) {
	for _, tc := range []struct {
		format string
		want   int
	}{
		{"%s", 1}, {"%.2f", 1}, {"%d%%", 1}, {"%%", 0},
		{"plain", 0}, {"%s-%d %v", 3}, {"100%%|%s", 1},
	} {
		if got := countVerbs(tc.format); got != tc.want {
			t.Errorf("countVerbs(%q) = %d, want %d", tc.format, got, tc.want)
		}
	}
}

func TestTableWriteAlignsPipeValues(t *testing.T) {
	tbl := newTable("name", "value")
	tbl.addf("%s|%d", "a|b", 3)
	tbl.addf("%s|%d", "plain", 12)
	var buf bytes.Buffer
	if err := tbl.write(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("want header+rule+2 rows, got %d lines:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[2], "a|b") {
		t.Errorf("pipe-bearing cell corrupted: %q", lines[2])
	}
	if !strings.Contains(lines[3], "12") {
		t.Errorf("second row lost its value: %q", lines[3])
	}
}

package core

import (
	"errors"
	"testing"

	"repro/internal/fault"
)

// faultedHyVE is HyVEOpt with the given fault layer settings — gating on,
// so the tests cover the fault × gating interaction paths.
func faultedHyVE(fc fault.Config) Config {
	cfg := HyVEOpt()
	cfg.Fault = fc
	return cfg
}

func TestFaultStatsPopulated(t *testing.T) {
	w := testWorkload(t, "PR")
	r := simulate(t, faultedHyVE(fault.Config{
		Enabled: true, Seed: 42, RawBER: 1e-5, StuckBitRate: 1e-7, ECC: fault.ECCSECDED,
	}), w)
	s := r.Detail.Fault
	if s.LinesRead == 0 || s.Injected == 0 {
		t.Fatalf("nothing injected: %+v", s)
	}
	if s.Detected != s.Corrected+s.Uncorrectable {
		t.Errorf("detected %d ≠ corrected %d + uncorrectable %d", s.Detected, s.Corrected, s.Uncorrectable)
	}
}

func TestFaultAbortOnUncorrectable(t *testing.T) {
	w := testWorkload(t, "PR")
	fc := fault.Config{Enabled: true, Seed: 42, RawBER: 5e-4, ECC: fault.ECCSECDED}
	r := simulate(t, faultedHyVE(fc), w)
	if r.Detail.Fault.Uncorrectable == 0 {
		t.Skip("seed produced no double-bit word at this BER; abort path not reachable")
	}
	fc.AbortOnUncorrectable = true
	_, err := Simulate(faultedHyVE(fc), w)
	if !errors.Is(err, fault.ErrUncorrectable) {
		t.Fatalf("err = %v, want wrapped fault.ErrUncorrectable", err)
	}
}

func TestFaultBankSparing(t *testing.T) {
	w := testWorkload(t, "PR")

	// Enough spares: every victim is absorbed and the run completes.
	// (The test graph's edge stream fits in a single bank, so at most
	// one distinct victim exists regardless of FailedBanks.)
	r := simulate(t, faultedHyVE(fault.Config{
		Enabled: true, Seed: 7, FailedBanks: 1, SpareBanks: 2,
	}), w)
	s := r.Detail.Fault
	if s.BanksFailed != 1 || s.BanksRemapped != 1 {
		t.Fatalf("failed %d remapped %d, want 1 and 1", s.BanksFailed, s.BanksRemapped)
	}

	// Spare pool too small: the run must refuse to pretend the edges
	// survived.
	_, err := Simulate(faultedHyVE(fault.Config{
		Enabled: true, Seed: 7, FailedBanks: 1, SpareBanks: 0,
	}), w)
	if !errors.Is(err, fault.ErrBankLoss) {
		t.Fatalf("err = %v, want wrapped fault.ErrBankLoss", err)
	}
}

// TestFaultRemapGateInvariant pins the fault × gating interaction: a run
// whose failed banks were absorbed by spares reports exactly the gating
// statistics of the fault-free run, because the spare inherits the
// victim's gate schedule rather than creating new wake/sleep activity.
func TestFaultRemapGateInvariant(t *testing.T) {
	w := testWorkload(t, "PR")
	clean := simulate(t, HyVEOpt(), w)
	remapped := simulate(t, faultedHyVE(fault.Config{
		Enabled: true, Seed: 9, FailedBanks: 2, SpareBanks: 2,
	}), w)
	if remapped.Detail.Gate != clean.Detail.Gate {
		t.Errorf("gating stats changed under remap:\nclean   %+v\nremapped %+v",
			clean.Detail.Gate, remapped.Detail.Gate)
	}
	if remapped.Report.Time != clean.Report.Time {
		t.Errorf("pure bank remap changed run time: %v vs %v", remapped.Report.Time, clean.Report.Time)
	}
}

func TestFaultCorrectionPricedIn(t *testing.T) {
	w := testWorkload(t, "PR")
	eccOnly := simulate(t, faultedHyVE(fault.Config{
		Enabled: true, Seed: 5, ECC: fault.ECCSECDED,
	}), w)
	faulted := simulate(t, faultedHyVE(fault.Config{
		Enabled: true, Seed: 5, RawBER: 1e-5, ECC: fault.ECCSECDED,
	}), w)
	if faulted.Detail.Fault.Corrected == 0 {
		t.Fatalf("no corrections at BER 1e-5: %+v", faulted.Detail.Fault)
	}
	if faulted.Report.Time <= eccOnly.Report.Time {
		t.Errorf("corrections added no time: %v vs %v", faulted.Report.Time, eccOnly.Report.Time)
	}
	if faulted.Report.Energy.Total() <= eccOnly.Report.Energy.Total() {
		t.Errorf("corrections added no energy: %v vs %v",
			faulted.Report.Energy.Total(), eccOnly.Report.Energy.Total())
	}
}

// TestFaultDeterministicAcrossParallelism: the injected outcome derives
// only from the configuration, so the host-parallelism knob must not
// move a single bit of it.
func TestFaultDeterministicAcrossParallelism(t *testing.T) {
	w := testWorkload(t, "PR")
	fc := fault.Config{Enabled: true, Seed: 31, RawBER: 1e-5, StuckBitRate: 1e-7,
		FailedBanks: 1, SpareBanks: 2, ECC: fault.ECCSECDED}
	cfg1 := faultedHyVE(fc)
	cfg1.Parallelism = 1
	cfg8 := faultedHyVE(fc)
	cfg8.Parallelism = 8
	a := simulate(t, cfg1, w)
	b := simulate(t, cfg8, w)
	if a.Report != b.Report {
		t.Error("report differs across Parallelism")
	}
	if a.Detail != b.Detail {
		t.Errorf("detail differs across Parallelism:\n%+v\n%+v", a.Detail, b.Detail)
	}
}

package core

import (
	"math"
	"testing"

	"repro/internal/algo"
	"repro/internal/graph"
	"repro/internal/units"
)

func testWorkload(t *testing.T, progName string) Workload {
	t.Helper()
	g, err := graph.GenerateRMAT(2048, 16384, graph.DefaultRMAT, 123)
	if err != nil {
		t.Fatal(err)
	}
	p, err := algo.ByName(progName)
	if err != nil {
		t.Fatal(err)
	}
	if p.NeedsWeights() {
		graph.AttachUniformWeights(g, 4, 55)
	}
	return Workload{DatasetName: "test", Graph: g, Program: p}
}

func simulate(t *testing.T, cfg Config, w Workload) *Result {
	t.Helper()
	r, err := Simulate(cfg, w)
	if err != nil {
		t.Fatalf("Simulate(%s): %v", cfg.Name, err)
	}
	return r
}

func TestConfigValidation(t *testing.T) {
	bad := HyVE()
	bad.NumPUs = 0
	if bad.Validate() == nil {
		t.Error("zero PUs accepted")
	}
	bad = HyVE()
	bad.SRAMBytes = 0
	if bad.Validate() == nil {
		t.Error("SRAM enabled with zero capacity accepted")
	}
	bad = AccDRAM()
	bad.DataSharing = true
	if bad.Validate() == nil {
		t.Error("data sharing without SRAM accepted")
	}
	bad = SRAMDRAM()
	bad.PowerGating = true
	if bad.Validate() == nil {
		t.Error("power gating on DRAM edge memory accepted")
	}
	for _, cfg := range Fig16Configs() {
		if err := cfg.Validate(); err != nil {
			t.Errorf("preset %s invalid: %v", cfg.Name, err)
		}
	}
}

func TestPresetBindings(t *testing.T) {
	h := HyVE()
	if h.EdgeMemory != MemReRAM || h.VertexMemory != MemDRAM || !h.UseOnChipSRAM {
		t.Error("HyVE bindings wrong")
	}
	if h.DataSharing || h.PowerGating {
		t.Error("base HyVE must not include the §4 optimizations")
	}
	opt := HyVEOpt()
	if !opt.DataSharing || !opt.PowerGating {
		t.Error("HyVE-opt must enable both optimizations")
	}
	sd := SRAMDRAM()
	if sd.EdgeMemory != MemDRAM {
		t.Error("SD must use a DRAM edge memory")
	}
	if AccDRAM().UseOnChipSRAM || AccReRAM().UseOnChipSRAM {
		t.Error("acc+DRAM / acc+ReRAM must not have on-chip vertex memory")
	}
	if AccReRAM().VertexMemory != MemReRAM {
		t.Error("acc+ReRAM vertex memory must be ReRAM")
	}
}

// The blocked Algorithm 2 schedule must compute exactly what the flat
// edge-centric oracle computes — for every program.
func TestFunctionalEquivalence(t *testing.T) {
	for _, name := range []string{"PR", "BFS", "CC", "SSSP", "SpMV"} {
		t.Run(name, func(t *testing.T) {
			w := testWorkload(t, name)
			want, err := algo.Run(w.Program, w.Graph)
			if err != nil {
				t.Fatal(err)
			}
			got, err := RunFunctional(HyVEOpt(), w)
			if err != nil {
				t.Fatal(err)
			}
			if got.Iterations != want.Iterations {
				t.Errorf("iterations: %d vs %d", got.Iterations, want.Iterations)
			}
			if got.EdgesProcessed != want.EdgesProcessed {
				t.Errorf("edges processed: %d vs %d", got.EdgesProcessed, want.EdgesProcessed)
			}
			for v := range want.Values {
				a, b := got.Values[v], want.Values[v]
				if math.IsInf(a, 1) && math.IsInf(b, 1) {
					continue
				}
				if math.Abs(a-b) > 1e-12 {
					t.Fatalf("vertex %d: %v vs %v", v, a, b)
				}
			}
		})
	}
}

func TestSimulateProducesSaneReport(t *testing.T) {
	w := testWorkload(t, "PR")
	r := simulate(t, HyVE(), w)
	if r.Report.Time <= 0 {
		t.Error("non-positive time")
	}
	if r.Report.Energy.Total() <= 0 {
		t.Error("non-positive energy")
	}
	if r.Report.Iterations != 10 {
		t.Errorf("PR iterations = %d, want 10", r.Report.Iterations)
	}
	if want := int64(10) * int64(w.Graph.NumEdges()); r.Report.EdgesProcessed != want {
		t.Errorf("edges processed = %d, want %d", r.Report.EdgesProcessed, want)
	}
	if r.Report.MTEPSPerWatt() <= 0 {
		t.Error("non-positive MTEPS/W")
	}
	if r.Detail.P%8 != 0 {
		t.Errorf("P = %d not a multiple of N", r.Detail.P)
	}
	// All edges must be streamed each iteration.
	edgeSize := int64(graph.EdgeBytes)
	if want := int64(w.Graph.NumEdges()) * edgeSize; r.Detail.EdgeBytes != want {
		t.Errorf("edge bytes = %d, want %d", r.Detail.EdgeBytes, want)
	}
}

// Fig. 14: data sharing improves energy efficiency by cutting off-chip
// vertex traffic.
func TestDataSharingImproves(t *testing.T) {
	for _, name := range []string{"BFS", "CC", "PR"} {
		w := testWorkload(t, name)
		base := simulate(t, HyVE(), w)
		shared := HyVE()
		shared.DataSharing = true
		opt := simulate(t, shared, w)
		if opt.Detail.SrcLoadBytes >= base.Detail.SrcLoadBytes {
			t.Errorf("%s: sharing did not cut source loads (%d vs %d)",
				name, opt.Detail.SrcLoadBytes, base.Detail.SrcLoadBytes)
		}
		if opt.Report.MTEPSPerWatt() <= base.Report.MTEPSPerWatt() {
			t.Errorf("%s: sharing did not improve MTEPS/W (%.1f vs %.1f)",
				name, opt.Report.MTEPSPerWatt(), base.Report.MTEPSPerWatt())
		}
	}
}

// Fig. 15: power gating improves energy efficiency without touching
// dynamic behaviour.
func TestPowerGatingImproves(t *testing.T) {
	w := testWorkload(t, "PR")
	base := simulate(t, HyVE(), w)
	gated := HyVE()
	gated.PowerGating = true
	opt := simulate(t, gated, w)
	if opt.Report.Energy.Total() >= base.Report.Energy.Total() {
		t.Errorf("gating did not reduce energy: %v vs %v",
			opt.Report.Energy.Total(), base.Report.Energy.Total())
	}
	if opt.Detail.Gate.Transitions == 0 {
		t.Error("gating recorded no transitions")
	}
	if opt.Detail.Gate.GatedEnergy >= opt.Detail.Gate.UngatedEnergy {
		t.Error("gated background not below ungated")
	}
	// Energy efficiency ordering of the full stack.
	full := simulate(t, HyVEOpt(), w)
	if full.Report.MTEPSPerWatt() <= base.Report.MTEPSPerWatt() {
		t.Error("HyVE-opt not above base HyVE")
	}
}

// Fig. 16 ordering: acc+HyVE-opt ≥ acc+HyVE > acc+SRAM+DRAM > the
// SRAM-less baselines; and acc+ReRAM above acc+DRAM (ReRAM's low
// energy), per the paper's averages.
func TestFig16EfficiencyOrdering(t *testing.T) {
	w := testWorkload(t, "PR")
	eff := map[string]float64{}
	for _, cfg := range Fig16Configs() {
		eff[cfg.Name] = simulate(t, cfg, w).Report.MTEPSPerWatt()
	}
	order := []string{"acc+HyVE-opt", "acc+HyVE", "acc+SRAM+DRAM", "acc+ReRAM", "acc+DRAM"}
	for i := 0; i+1 < len(order); i++ {
		if eff[order[i]] <= eff[order[i+1]] {
			t.Errorf("expected %s (%.1f) > %s (%.1f)", order[i], eff[order[i]], order[i+1], eff[order[i+1]])
		}
	}
}

// Fig. 17: switching the edge memory from DRAM (SD) to ReRAM (HyVE) must
// slash edge-memory energy, and the §4 optimizations shrink the memory
// share further.
func TestEnergyBreakdownShape(t *testing.T) {
	w := testWorkload(t, "PR")
	sd := simulate(t, SRAMDRAM(), w)
	hyve := simulate(t, HyVE(), w)
	opt := simulate(t, HyVEOpt(), w)
	if hyve.Report.Energy.Get(0 /* EdgeMemory */) >= sd.Report.Energy.Get(0) {
		t.Errorf("HyVE edge-memory energy %v not below SD %v",
			hyve.Report.Energy.Get(0), sd.Report.Energy.Get(0))
	}
	memShare := func(r *Result) float64 {
		return float64(r.Report.Energy.MemoryTotal()) / float64(r.Report.Energy.Total())
	}
	if memShare(opt) >= memShare(sd) {
		t.Errorf("memory share: opt %.2f not below SD %.2f", memShare(opt), memShare(sd))
	}
}

// Fig. 18: HyVE's execution time stays close to SD (ReRAM reads are
// slightly slower, but the PU pipeline bounds the stream).
func TestAbsolutePerformanceClose(t *testing.T) {
	for _, name := range []string{"BFS", "CC", "PR"} {
		w := testWorkload(t, name)
		sd := simulate(t, SRAMDRAM(), w)
		hyve := simulate(t, HyVE(), w)
		ratio := sd.Report.Time.Seconds() / hyve.Report.Time.Seconds()
		if ratio < 0.6 || ratio > 1.05 {
			t.Errorf("%s: SD/HyVE time ratio %.3f outside the paper's shape (slight HyVE degradation)", name, ratio)
		}
	}
}

func TestNoSRAMConfigsSkipLoading(t *testing.T) {
	w := testWorkload(t, "BFS")
	r := simulate(t, AccDRAM(), w)
	if r.Detail.LoadTime != 0 || r.Detail.SrcLoadBytes != 0 || r.Detail.WritebackBytes != 0 {
		t.Errorf("acc+DRAM should have no interval traffic: %+v", r.Detail)
	}
	if r.Report.Energy.Get(2 /* VertexMemoryOnChip */) != 0 {
		t.Error("acc+DRAM charged on-chip vertex energy")
	}
}

func TestIterationOverrideSkipsFunctionalRun(t *testing.T) {
	w := testWorkload(t, "BFS")
	w.Iterations = 3
	r := simulate(t, HyVE(), w)
	if r.Report.Iterations != 3 {
		t.Errorf("iterations = %d, want 3", r.Report.Iterations)
	}
	if want := int64(3) * int64(w.Graph.NumEdges()); r.Report.EdgesProcessed != want {
		t.Errorf("edges = %d, want %d", r.Report.EdgesProcessed, want)
	}
}

func TestSimulateInputValidation(t *testing.T) {
	w := testWorkload(t, "PR")
	if _, err := Simulate(HyVE(), Workload{Program: w.Program}); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := Simulate(HyVE(), Workload{Graph: w.Graph}); err == nil {
		t.Error("nil program accepted")
	}
	bad := HyVE()
	bad.NumPUs = -1
	if _, err := Simulate(bad, w); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestWorkloadForAttachesWeights(t *testing.T) {
	d := graph.Datasets[0]
	w, err := WorkloadFor(d, algo.NewSSSP(0))
	if err != nil {
		t.Fatal(err)
	}
	if !w.Graph.Weighted() {
		t.Error("SSSP workload lacks weights")
	}
	if w.FullVertices != d.FullVertices || w.FullEdges != d.FullEdges {
		t.Error("full-scale sizes not carried")
	}
	// Unweighted programs share the cached graph.
	w2, err := WorkloadFor(d, algo.NewPageRank())
	if err != nil {
		t.Fatal(err)
	}
	if w2.Graph.Weighted() {
		t.Error("PR workload should not be weighted")
	}
}

// Full-scale sizing must control P: a big dataset with a small SRAM
// needs more intervals.
func TestFullScaleSizingControlsP(t *testing.T) {
	w := testWorkload(t, "PR")
	small := simulate(t, HyVE(), w)
	w.FullVertices = 40_000_000
	w.FullEdges = 1_500_000_000
	big := simulate(t, HyVE(), w)
	if big.Detail.P <= small.Detail.P {
		t.Errorf("P did not grow with full-scale vertices: %d vs %d", big.Detail.P, small.Detail.P)
	}
}

// Larger SRAM cuts partitions but pays leakage: with the full-scale
// sizes of a big graph, there must be a capacity sweet spot rather than
// monotone improvement (Table 4's shape).
func TestSRAMSweetSpotExists(t *testing.T) {
	w := testWorkload(t, "PR")
	w.FullVertices = 41_700_000
	w.FullEdges = 1_470_000_000
	var effs []float64
	for _, mb := range []int64{2, 4, 8, 16, 32} {
		cfg := HyVEOpt()
		cfg.SRAMBytes = mb << 20
		effs = append(effs, simulate(t, cfg, w).Report.MTEPSPerWatt())
	}
	last := effs[len(effs)-1]
	best := effs[0]
	for _, e := range effs {
		if e > best {
			best = e
		}
	}
	if last >= best {
		t.Errorf("32MB SRAM should not be the best point: %v", effs)
	}
}

func TestGridExposesPartition(t *testing.T) {
	w := testWorkload(t, "PR")
	g, p, err := Grid(HyVE(), w)
	if err != nil {
		t.Fatal(err)
	}
	if g.P() != p {
		t.Errorf("grid P %d != reported %d", g.P(), p)
	}
	if g.NumEdges() != w.Graph.NumEdges() {
		t.Errorf("grid holds %d edges, graph has %d", g.NumEdges(), w.Graph.NumEdges())
	}
}

func TestDetailTimeComposition(t *testing.T) {
	w := testWorkload(t, "PR")
	r := simulate(t, HyVEOpt(), w)
	iter := r.Detail.IterTime()
	if iter <= 0 {
		t.Fatal("non-positive iteration time")
	}
	total := iter.Times(float64(r.Detail.Iterations))
	// Report time = iterations × iteration time (+ gating penalties,
	// zero under predictive wake).
	if math.Abs(total.Seconds()-r.Report.Time.Seconds()) > 1e-12 {
		t.Errorf("time composition: %v vs %v", total, r.Report.Time)
	}
}

func TestMemKindString(t *testing.T) {
	if MemDRAM.String() != "DRAM" || MemReRAM.String() != "ReRAM" {
		t.Error("MemKind strings wrong")
	}
	if MemKind(9).String() == "" {
		t.Error("unknown MemKind empty")
	}
}

func TestSyncOverheadAccumulates(t *testing.T) {
	w := testWorkload(t, "PR")
	quiet := HyVE()
	quiet.SyncOverhead = 0
	noisy := HyVE()
	noisy.SyncOverhead = 100 * units.Nanosecond
	a := simulate(t, quiet, w)
	b := simulate(t, noisy, w)
	if b.Report.Time <= a.Report.Time {
		t.Error("sync overhead not reflected in time")
	}
}

package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/partition"
)

// This file materializes §3.4 "Memory Management and Data Organization"
// as actual bytes: the edge-memory image (blocks stored sequentially,
// each headed by its source/destination interval indices and edge
// count) and the vertex-memory image (intervals stored sequentially,
// each headed by its index and vertex count, followed by the value
// array indexed by in-interval id). The images are what the one-shot
// preprocessing step writes into the ReRAM and DRAM devices; building
// them byte-exactly pins down every address the simulator charges.
//
// Layout (all integers little-endian uint32):
//
//	edge image:   per block (row-major): srcInterval, dstInterval,
//	              edgeCount, then edgeCount × {src, dst} vertex ids
//	vertex image: per interval: index, vertexCount, then vertexCount
//	              float64 values (by in-interval index)

// EdgeImageHeaderBytes is the per-block header size.
const EdgeImageHeaderBytes = 12

// VertexImageHeaderBytes is the per-interval header size.
const VertexImageHeaderBytes = 8

// ScheduleBlockOrder returns the block ids (x·P + y) in the exact order
// Algorithm 2 visits them with n processing units: column-major over
// super blocks, round-robin within. §3.4 stores blocks "sequentially in
// the edge memory" — sequential in *this* order, which is what turns the
// edge memory into a pure streaming device (§3.1) and lets banks sleep
// behind the read pointer (§4.1).
func ScheduleBlockOrder(p, n int) []int {
	order := make([]int, 0, p*p)
	pn := p / n
	for y := 0; y < pn; y++ {
		for x := 0; x < pn; x++ {
			for step := 0; step < n; step++ {
				for pu := 0; pu < n; pu++ {
					src := x*n + (pu+step)%n
					dst := y*n + pu
					order = append(order, src*p+dst)
				}
			}
		}
	}
	return order
}

// BuildEdgeImage serializes the grid into the edge-memory byte image in
// row-major block order and returns it with per-block start offsets
// (indexed by block id = x·P + y).
func BuildEdgeImage(grid *partition.Grid) ([]byte, []int64) {
	p := grid.P()
	order := make([]int, 0, p*p)
	for x := 0; x < p; x++ {
		for y := 0; y < p; y++ {
			order = append(order, x*p+y)
		}
	}
	return buildEdgeImage(grid, order)
}

// BuildEdgeImageScheduled lays the blocks out in Algorithm 2's visit
// order for n processing units — the production layout, under which the
// iteration's block reads are a single sequential sweep.
func BuildEdgeImageScheduled(grid *partition.Grid, n int) ([]byte, []int64, error) {
	p := grid.P()
	if n <= 0 || p%n != 0 {
		return nil, nil, fmt.Errorf("core: P=%d not a multiple of N=%d", p, n)
	}
	img, offsets := buildEdgeImage(grid, ScheduleBlockOrder(p, n))
	return img, offsets, nil
}

func buildEdgeImage(grid *partition.Grid, order []int) ([]byte, []int64) {
	p := grid.P()
	offsets := make([]int64, p*p+1)
	size := int64(p*p)*EdgeImageHeaderBytes + int64(grid.NumEdges())*graph.EdgeBytes
	img := make([]byte, 0, size)
	u32 := func(v uint32) {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		img = append(img, b[:]...)
	}
	for _, b := range order {
		x, y := b/p, b%p
		offsets[b] = int64(len(img))
		blk := grid.Block(x, y)
		u32(uint32(x))
		u32(uint32(y))
		u32(uint32(len(blk)))
		for _, e := range blk {
			u32(e.Src)
			u32(e.Dst)
		}
	}
	offsets[p*p] = int64(len(img))
	return img, offsets
}

// ParseEdgeImage reconstructs the blocked edge list from an image,
// validating headers.
func ParseEdgeImage(img []byte, p int) (*parsedEdgeImage, error) {
	if p <= 0 {
		return nil, fmt.Errorf("core: non-positive P %d", p)
	}
	out := &parsedEdgeImage{P: p, Blocks: make([][]graph.Edge, p*p)}
	seen := make([]bool, p*p)
	at := 0
	u32 := func() (uint32, error) {
		if at+4 > len(img) {
			return 0, fmt.Errorf("core: edge image truncated at byte %d", at)
		}
		v := binary.LittleEndian.Uint32(img[at:])
		at += 4
		return v, nil
	}
	for b := 0; b < p*p; b++ {
		sx, err := u32()
		if err != nil {
			return nil, err
		}
		sy, err := u32()
		if err != nil {
			return nil, err
		}
		if int(sx) >= p || int(sy) >= p {
			return nil, fmt.Errorf("core: block header (%d,%d) outside %d×%d grid", sx, sy, p, p)
		}
		id := int(sx)*p + int(sy)
		if seen[id] {
			return nil, fmt.Errorf("core: duplicate block header (%d,%d)", sx, sy)
		}
		seen[id] = true
		n, err := u32()
		if err != nil {
			return nil, err
		}
		edges := make([]graph.Edge, n)
		for i := range edges {
			src, err := u32()
			if err != nil {
				return nil, err
			}
			dst, err := u32()
			if err != nil {
				return nil, err
			}
			edges[i] = graph.Edge{Src: src, Dst: dst}
		}
		out.Blocks[id] = edges
	}
	if at != len(img) {
		return nil, fmt.Errorf("core: %d trailing bytes in edge image", len(img)-at)
	}
	return out, nil
}

type parsedEdgeImage struct {
	P      int
	Blocks [][]graph.Edge
}

// Block returns block (x, y).
func (pe *parsedEdgeImage) Block(x, y int) []graph.Edge { return pe.Blocks[x*pe.P+y] }

// NumEdges returns the total edge count.
func (pe *parsedEdgeImage) NumEdges() int {
	n := 0
	for _, b := range pe.Blocks {
		n += len(b)
	}
	return n
}

// BuildVertexImage serializes per-interval vertex values into the
// vertex-memory byte image. values is indexed by vertex id.
func BuildVertexImage(asg partition.Assigner, values []float64) ([]byte, []int64, error) {
	if len(values) != asg.NumVertices() {
		return nil, nil, fmt.Errorf("core: %d values for %d vertices", len(values), asg.NumVertices())
	}
	p := asg.P()
	offsets := make([]int64, p+1)
	var img []byte
	u32 := func(v uint32) {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		img = append(img, b[:]...)
	}
	f64 := func(v float64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		img = append(img, b[:]...)
	}
	for i := 0; i < p; i++ {
		offsets[i] = int64(len(img))
		n := asg.IntervalLen(i)
		u32(uint32(i))
		u32(uint32(n))
		for j := 0; j < n; j++ {
			f64(values[asg.VertexAt(i, j)])
		}
	}
	offsets[p] = int64(len(img))
	return img, offsets, nil
}

// ParseVertexImage reconstructs per-vertex values from an image.
func ParseVertexImage(img []byte, asg partition.Assigner) ([]float64, error) {
	values := make([]float64, asg.NumVertices())
	at := 0
	for i := 0; i < asg.P(); i++ {
		if at+VertexImageHeaderBytes > len(img) {
			return nil, fmt.Errorf("core: vertex image truncated at interval %d", i)
		}
		idx := binary.LittleEndian.Uint32(img[at:])
		n := binary.LittleEndian.Uint32(img[at+4:])
		at += VertexImageHeaderBytes
		if int(idx) != i {
			return nil, fmt.Errorf("core: interval header %d where %d expected", idx, i)
		}
		if int(n) != asg.IntervalLen(i) {
			return nil, fmt.Errorf("core: interval %d holds %d vertices, assigner says %d", i, n, asg.IntervalLen(i))
		}
		for j := 0; j < int(n); j++ {
			if at+8 > len(img) {
				return nil, fmt.Errorf("core: vertex image truncated in interval %d", i)
			}
			values[asg.VertexAt(i, j)] = math.Float64frombits(binary.LittleEndian.Uint64(img[at:]))
			at += 8
		}
	}
	if at != len(img) {
		return nil, fmt.Errorf("core: %d trailing bytes in vertex image", len(img)-at)
	}
	return values, nil
}

// EdgeAddress returns the edge-memory byte address of block (x,y)'s
// first edge, given the image offsets — the address mapping the HyVE
// controller performs (§3.3 "responsible for address mapping").
func EdgeAddress(offsets []int64, p, x, y int) (int64, error) {
	if x < 0 || y < 0 || x >= p || y >= p {
		return 0, fmt.Errorf("core: block (%d,%d) out of %d×%d grid", x, y, p, p)
	}
	return offsets[x*p+y] + EdgeImageHeaderBytes, nil
}

package core

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/units"
)

// BuildTimeline renders one iteration of Algorithm 2 under cfg as a
// span timeline, loadable in chrome://tracing / Perfetto through
// obs.Timeline's catapult exporter:
//
//   - a controller track: the stream fill, every vertex-interval load
//     and writeback through the load port, and the per-step sync
//     barriers;
//   - one track per PU: the edge-block it streams each step, sized by
//     the Eq. (1) pipeline bound;
//   - a router track (data-sharing configs): the reroute windows in
//     which source intervals are handed between PUs;
//   - edge-memory bank tracks: each touched bank's awake window under
//     the §4.1 bank power gates — first access to last access plus the
//     idle timeout — or one always-awake region track when gating is
//     off.
//
// The walk uses the cost simulator's clock: spans advance by exactly
// the quantities iterationCost charges, so the timeline's end matches
// Detail.IterTime() for the same configuration and workload (the
// timeline tests hold the two against each other).
func BuildTimeline(cfg Config, w Workload) (*obs.Timeline, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s, err := newSim(cfg, w)
	if err != nil {
		return nil, err
	}
	if s.onchip == nil {
		return nil, fmt.Errorf("core: timeline requires the on-chip hierarchy (config %s has none)", cfg.Name)
	}

	n := s.cfg.NumPUs
	pn := s.p / n
	st := s.stages()
	edgeSize := int64(graph.EdgeBytes)
	if w.Program.NeedsWeights() {
		edgeSize += 4
	}

	tl := &obs.Timeline{}
	// Pin the display order: controller, PUs, router, then banks as
	// they wake.
	tl.Track("controller")
	for p := 0; p < n; p++ {
		tl.Track(fmt.Sprintf("PU %d", p))
	}
	if s.cfg.DataSharing {
		tl.Track("router")
	}

	// Edge-bank activity: the scheduled image stores blocks in walk
	// order, so the stream position advances monotonically; bank k owns
	// bytes [k·bankBytes, (k+1)·bankBytes) of the region, mirroring the
	// gating model's geometry in run().
	var bankBytes int64
	totalBanks := 0
	if s.gate != nil {
		totalBanks = s.gate.TotalBanks
		bankBytes = s.edgeDev.CapacityBytes() / int64(s.gate.TotalBanks/s.edgeReg.Chips)
	}
	var streamPos int64
	bankFirst := make(map[int]units.Time)
	bankLast := make(map[int]units.Time)
	touchBanks := func(bytes int64, start, end units.Time) {
		if s.gate == nil || bytes <= 0 {
			streamPos += bytes
			return
		}
		b0 := int(streamPos / bankBytes)
		streamPos += bytes
		b1 := int((streamPos - 1) / bankBytes)
		for b := b0; b <= b1 && b < totalBanks; b++ {
			if _, ok := bankFirst[b]; !ok {
				bankFirst[b] = start
			}
			bankLast[b] = end
		}
	}

	var clock units.Time
	controller := func(name, cat string, dur units.Time, args map[string]any) {
		tl.Add(obs.Span{Track: "controller", Name: name, Cat: cat, Start: clock, Dur: dur, Args: args})
		clock += dur
	}

	fill := s.edgeReg.Read(false).Latency
	controller("stream fill", "overhead", fill, nil)

	loadInterval := func(iv, pu int, kind string) {
		bytes := s.intervalBytes(iv)
		t, _, _ := s.transferCost(bytes, false)
		controller(fmt.Sprintf("%s I%d → PU %d", kind, iv, pu), "load", t,
			map[string]any{"interval": iv, "bytes": bytes})
	}

	for y := 0; y < pn; y++ {
		for x := 0; x < pn; x++ {
			if (s.cfg.DataSharing && x == 0) || !s.cfg.DataSharing {
				for i := 0; i < n; i++ {
					loadInterval(y*n+i, i, "dst")
				}
			}
			if s.cfg.DataSharing {
				for i := 0; i < n; i++ {
					loadInterval(x*n+i, i, "src")
				}
			}

			for step := 0; step < n; step++ {
				if !s.cfg.DataSharing {
					for p := 0; p < n; p++ {
						loadInterval(x*n+(p+step)%n, p, "src")
					}
				}
				var stepMax units.Time
				for p := 0; p < n; p++ {
					src := x*n + (p+step)%n
					dst := y*n + p
					blkLen := s.grid.BlockLen(src, dst)
					if blkLen == 0 {
						continue
					}
					bt := st.perEdge.Times(float64(blkLen))
					tl.Add(obs.Span{
						Track: fmt.Sprintf("PU %d", p),
						Name:  fmt.Sprintf("block (%d,%d)", src, dst),
						Cat:   "process",
						Start: clock, Dur: bt,
						Args: map[string]any{"edges": blkLen, "step": step, "sbx": x, "sby": y},
					})
					touchBanks(int64(blkLen)*edgeSize, clock, clock+bt)
					if bt > stepMax {
						stepMax = bt
					}
				}
				if stepMax > 0 {
					// The per-block stream redirect (one array access
					// before the refill) that iterationCost folds into
					// the step.
					tl.Add(obs.Span{Track: "controller", Name: "stream redirect",
						Cat: "overhead", Start: clock + stepMax, Dur: fill})
					stepMax += fill
				}
				clock += stepMax

				if s.cfg.DataSharing && step > 0 {
					r := s.onchip.Cycle().Times(float64(s.cfg.RerouteCycles))
					tl.Add(obs.Span{Track: "router", Name: "reroute", Cat: "route",
						Start: clock, Dur: r,
						Args: map[string]any{"step": step, "sbx": x, "sby": y}})
					clock += r
				}
				controller("sync", "sync", s.cfg.SyncOverhead,
					map[string]any{"step": step})
			}

			if !s.cfg.DataSharing || x == pn-1 {
				for i := 0; i < n; i++ {
					iv := y*n + i
					bytes := s.intervalBytes(iv)
					t, _, _ := s.transferCost(bytes, true)
					controller(fmt.Sprintf("writeback I%d", iv), "writeback", t,
						map[string]any{"interval": iv, "bytes": bytes})
				}
			}
		}
	}

	if s.gate == nil {
		// No gating: the edge region is one always-awake lane.
		tl.Add(obs.Span{Track: "edge-memory", Name: "awake (ungated)", Cat: "gate",
			Start: 0, Dur: clock})
		return tl, nil
	}
	// Awake windows under the idle-timeout policy: wake at first access,
	// linger for IdleTimeout after the last, clamped to the iteration.
	for b := 0; b < totalBanks; b++ {
		first, ok := bankFirst[b]
		if !ok {
			continue
		}
		end := bankLast[b] + s.gate.Params.IdleTimeout
		if end > clock {
			end = clock
		}
		tl.Add(obs.Span{
			Track: fmt.Sprintf("edge-bank %d", b),
			Name:  "awake", Cat: "gate",
			Start: first, Dur: end - first,
			Args: map[string]any{"bank": b},
		})
	}
	return tl, nil
}

package core

import (
	"fmt"
	"math"

	"repro/internal/energy"
	"repro/internal/graph"
	"repro/internal/units"
)

// PerEdgeStage exposes the Eq. (1) pipeline bound the simulator charges
// per streamed edge — max(T_edge, T_src, T_pu, T_dst) at cfg's operating
// points — so the conformance harness can hold the simulated ProcessTime
// against the analytic model's per-edge term.
func PerEdgeStage(cfg Config, w Workload) (units.Time, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	s, err := newSim(cfg, w)
	if err != nil {
		return 0, err
	}
	return s.stages().perEdge, nil
}

// approxEq reports a ≈ b within relative tolerance tol (absolute below 1).
func approxEq(a, b, tol float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	if scale := math.Max(math.Abs(a), math.Abs(b)); scale > 1 {
		diff /= scale
	}
	return diff <= tol && !math.IsNaN(diff)
}

// CheckResult verifies a completed simulation against everything the
// cost model promises: non-negative finite phases and traffic, the
// schedule geometry, the run-time identity Time = IterTime×iters +
// gate latency penalty, gating physics, the Eq. (1) bounds on
// ProcessTime, and — for configurations with the on-chip hierarchy — an
// address-exact replay of the controller trace whose per-kind traffic
// must reconcile with the Detail counters to the byte.
func CheckResult(cfg Config, w Workload, r *Result) error {
	d := &r.Detail
	for _, t := range []struct {
		name string
		v    units.Time
	}{
		{"total time", r.Report.Time},
		{"load time", d.LoadTime},
		{"process time", d.ProcessTime},
		{"writeback time", d.WritebackTime},
		{"overhead time", d.OverheadTime},
	} {
		if t.v < 0 || math.IsNaN(float64(t.v)) || math.IsInf(float64(t.v), 0) {
			return fmt.Errorf("core: %s is %v", t.name, t.v)
		}
	}
	if d.SrcLoadBytes < 0 || d.DstLoadBytes < 0 || d.WritebackBytes < 0 || d.EdgeBytes < 0 {
		return fmt.Errorf("core: negative traffic counters %+v", d)
	}
	if d.P <= 0 || d.P%cfg.NumPUs != 0 {
		return fmt.Errorf("core: P=%d is not a positive multiple of N=%d", d.P, cfg.NumPUs)
	}
	if d.SuperBlockSide != d.P/cfg.NumPUs {
		return fmt.Errorf("core: super-block side %d, want P/N = %d", d.SuperBlockSide, d.P/cfg.NumPUs)
	}
	if d.Iterations <= 0 || r.Report.Iterations != d.Iterations {
		return fmt.Errorf("core: iteration counts disagree (report %d, detail %d)",
			r.Report.Iterations, d.Iterations)
	}

	const tol = 1e-9
	iters := float64(d.Iterations)
	wantTime := d.IterTime().Times(iters) + d.Gate.LatencyPenalty
	if !approxEq(float64(r.Report.Time), float64(wantTime), tol) {
		return fmt.Errorf("core: total time %v, want IterTime×%d + gate penalty = %v",
			r.Report.Time, d.Iterations, wantTime)
	}

	var sum units.Energy
	for _, c := range energy.Components() {
		e := r.Report.Energy.Get(c)
		if e < 0 || math.IsNaN(float64(e)) {
			return fmt.Errorf("core: %s energy is %v", c, e)
		}
		sum += e
	}
	if !approxEq(float64(sum), float64(r.Report.Energy.Total()), tol) {
		return fmt.Errorf("core: component energies sum to %v, total says %v", sum, r.Report.Energy.Total())
	}

	s, err := newSim(cfg, w)
	if err != nil {
		return err
	}
	if s.p != d.P {
		return fmt.Errorf("core: rebuilt machine picks P=%d, result has %d", s.p, d.P)
	}

	if cfg.PowerGating {
		if err := d.Gate.CheckInvariants(s.gate.TotalBanks); err != nil {
			return err
		}
		if d.Gate.Transitions == 0 {
			return fmt.Errorf("core: power gating enabled but no gate transitions recorded")
		}
		if !approxEq(float64(d.Gate.TotalTime), float64(d.IterTime().Times(iters)), tol) {
			return fmt.Errorf("core: gate integrated time %v, want iteration time %v",
				d.Gate.TotalTime, d.IterTime().Times(iters))
		}
	} else if d.Gate.Transitions != 0 || d.Gate.LatencyPenalty != 0 {
		return fmt.Errorf("core: gating disabled but stats recorded %+v", d.Gate)
	}

	// Eq. (1) bounds: per-iteration streaming is Σ_steps max_p(block), so
	// it sits between a perfectly balanced schedule (|E|/N edges on the
	// critical PU) and a fully serialized one (|E| edges).
	perEdge := s.stages().perEdge
	e := float64(w.Graph.NumEdges())
	lo := perEdge.Times(e / float64(cfg.NumPUs))
	hi := perEdge.Times(e)
	if float64(d.ProcessTime) < float64(lo)*(1-tol) || float64(d.ProcessTime) > float64(hi)*(1+tol) {
		return fmt.Errorf("core: process time %v outside Eq. 1 bounds [%v, %v]", d.ProcessTime, lo, hi)
	}
	edgeSize := int64(graph.EdgeBytes)
	if w.Program.NeedsWeights() {
		edgeSize += 4
	}
	if want := int64(w.Graph.NumEdges()) * edgeSize; d.EdgeBytes != want {
		return fmt.Errorf("core: edge stream bytes %d, want |E|×%d = %d", d.EdgeBytes, edgeSize, want)
	}

	if !cfg.UseOnChipSRAM {
		return nil
	}
	return checkTrace(cfg, w, s, d, edgeSize)
}

// checkTrace replays one iteration of the controller trace and
// reconciles it with the cost model's Detail counters: per-kind byte
// sums match exactly, every non-empty block is streamed exactly once,
// and every access stays inside its memory image.
func checkTrace(cfg Config, w Workload, s *machine, d *Detail, edgeSize int64) error {
	img, edgeOffsets, err := BuildEdgeImageScheduled(s.grid, cfg.NumPUs)
	if err != nil {
		return err
	}
	vtxOffsets := vertexImageOffsets(s.grid.Assigner, s.valueBytes)

	var srcB, dstB, wbB, edgeB int64
	blockReads := make(map[[2]int]int)
	var traceErr error
	fail := func(format string, args ...any) {
		if traceErr == nil {
			traceErr = fmt.Errorf(format, args...)
		}
	}
	visit := func(a Access) {
		if traceErr != nil {
			return
		}
		if a.Bytes < 0 {
			fail("core: trace access with negative size: %+v", a)
			return
		}
		switch a.Kind {
		case EdgeBlockRead:
			edgeB += a.Bytes
			blockReads[[2]int{a.BlockX, a.BlockY}]++
			if a.Bytes%edgeSize != 0 {
				fail("core: block (%d,%d) read of %d bytes is not a whole number of %d-byte edges",
					a.BlockX, a.BlockY, a.Bytes, edgeSize)
				return
			}
			// The image serializes 8-byte edges; modeled weight bytes ride
			// along in Bytes but not in the stored image.
			stored := a.Bytes / edgeSize * graph.EdgeBytes
			if a.Addr < EdgeImageHeaderBytes || a.Addr+stored > int64(len(img)) {
				fail("core: block (%d,%d) read [%d,%d) outside edge image of %d bytes",
					a.BlockX, a.BlockY, a.Addr, a.Addr+stored, len(img))
			}
			if want, aerr := EdgeAddress(edgeOffsets, s.p, a.BlockX, a.BlockY); aerr != nil || want != a.Addr {
				fail("core: block (%d,%d) read at %d, image says %d (%v)", a.BlockX, a.BlockY, a.Addr, want, aerr)
			}
		case SourceLoad, DestLoad, DestWriteback:
			switch a.Kind {
			case SourceLoad:
				srcB += a.Bytes
			case DestLoad:
				dstB += a.Bytes
			default:
				wbB += a.Bytes
			}
			if a.Interval < 0 || a.Interval >= s.p {
				fail("core: trace references interval %d outside [0,%d)", a.Interval, s.p)
				return
			}
			if end := a.Addr + a.Bytes; end != vtxOffsets[a.Interval+1] {
				fail("core: interval %d transfer ends at %d, image boundary is %d",
					a.Interval, end, vtxOffsets[a.Interval+1])
			}
		default:
			fail("core: unknown trace access kind %v", a.Kind)
		}
	}
	if err := TraceIteration(cfg, w, visit); err != nil {
		return err
	}
	if traceErr != nil {
		return traceErr
	}
	if srcB != d.SrcLoadBytes || dstB != d.DstLoadBytes || wbB != d.WritebackBytes || edgeB != d.EdgeBytes {
		return fmt.Errorf("core: trace traffic (src %d, dst %d, wb %d, edge %d) does not reconcile with detail (src %d, dst %d, wb %d, edge %d)",
			srcB, dstB, wbB, edgeB, d.SrcLoadBytes, d.DstLoadBytes, d.WritebackBytes, d.EdgeBytes)
	}
	if len(blockReads) != s.grid.NonEmpty() {
		return fmt.Errorf("core: trace streamed %d distinct blocks, grid has %d non-empty", len(blockReads), s.grid.NonEmpty())
	}
	for blk, n := range blockReads {
		if n != 1 {
			return fmt.Errorf("core: block (%d,%d) streamed %d times in one iteration", blk[0], blk[1], n)
		}
		if s.grid.BlockLen(blk[0], blk[1]) == 0 {
			return fmt.Errorf("core: trace streamed empty block (%d,%d)", blk[0], blk[1])
		}
	}
	return nil
}

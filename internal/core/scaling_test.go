package core

import (
	"math"
	"testing"

	"repro/internal/algo"
	"repro/internal/graph"
)

// The substitution argument of DESIGN.md §1: running a down-scaled
// instance with full-scale capacity sizing preserves the figure of merit.
// Simulate the "same" workload at two instance scales — identical
// |E|/|V|, identical full-scale sizes, identical P — and require the
// MTEPS/W to agree closely. This is what makes the 1/64-scale LJ and
// 1/1024-scale TW instances faithful stand-ins.
func TestScaleInvarianceOfEnergyEfficiency(t *testing.T) {
	const fullV, fullE = 4_850_000, 69_000_000
	makeWorkload := func(scale int, seed uint64) Workload {
		g, err := graph.GenerateRMAT(fullV/scale, fullE/scale, graph.DefaultRMAT, seed)
		if err != nil {
			t.Fatal(err)
		}
		return Workload{
			DatasetName:  "scaled",
			Graph:        g,
			FullVertices: fullV,
			FullEdges:    fullE,
			Program:      algo.NewPageRank(),
			Iterations:   10,
		}
	}
	for _, cfg := range []Config{HyVE(), HyVEOpt(), SRAMDRAM()} {
		coarse := simulate(t, cfg, makeWorkload(512, 1))
		fine := simulate(t, cfg, makeWorkload(128, 1))
		if coarse.Detail.P != fine.Detail.P {
			t.Fatalf("%s: P differs across scales: %d vs %d", cfg.Name, coarse.Detail.P, fine.Detail.P)
		}
		a := coarse.Report.MTEPSPerWatt()
		b := fine.Report.MTEPSPerWatt()
		if rel := math.Abs(a-b) / b; rel > 0.12 {
			t.Errorf("%s: MTEPS/W not scale-invariant: %.1f at 1/512 vs %.1f at 1/128 (%.0f%% apart)",
				cfg.Name, a, b, 100*rel)
		}
	}
}

// Time and energy themselves must scale linearly with the instance (the
// ratios above are quotients of two linear quantities).
func TestTimeAndEnergyScaleLinearly(t *testing.T) {
	const fullV, fullE = 4_850_000, 69_000_000
	mk := func(scale int) Workload {
		g, err := graph.GenerateRMAT(fullV/scale, fullE/scale, graph.DefaultRMAT, 7)
		if err != nil {
			t.Fatal(err)
		}
		return Workload{
			DatasetName: "scaled", Graph: g,
			FullVertices: fullV, FullEdges: fullE,
			Program: algo.NewPageRank(), Iterations: 10,
		}
	}
	small := simulate(t, HyVEOpt(), mk(512))
	large := simulate(t, HyVEOpt(), mk(128))
	tRatio := large.Report.Time.Seconds() / small.Report.Time.Seconds()
	eRatio := large.Report.Energy.Total().Joules() / small.Report.Energy.Total().Joules()
	for what, r := range map[string]float64{"time": tRatio, "energy": eRatio} {
		if r < 3.4 || r > 4.6 {
			t.Errorf("%s ratio at 4x instance = %.2f, want ≈4", what, r)
		}
	}
}

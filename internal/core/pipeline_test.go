package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

// The closed form fill + n·max(stages) must converge to the DES pipeline
// for long streams: the request-level simulation and the Eq. (1) algebra
// agree up to the pipeline's drain (sum of the non-binding stages).
func TestClosedFormMatchesDESPipeline(t *testing.T) {
	p := PipelineStages{
		EdgeFetch: 1983 * units.Picosecond,
		SrcRead:   960 * units.Picosecond,
		Process:   1878 * units.Picosecond,
		DstRMW:    1517 * units.Picosecond,
		Fill:      29310 * units.Picosecond,
	}
	for _, n := range []int{1, 10, 1000, 50_000} {
		des, err := SimulateBlockPipeline(p, n)
		if err != nil {
			t.Fatal(err)
		}
		closed := p.ClosedFormBlockTime(n)
		// The DES includes the drain of the trailing stages (≤ sum of
		// all stages); beyond that the two must agree exactly.
		drain := p.EdgeFetch + p.SrcRead + p.Process + p.DstRMW
		diff := float64(des - closed)
		if diff < 0 || diff > float64(drain) {
			t.Errorf("n=%d: DES %v vs closed form %v (diff %v, allowed [0,%v])",
				n, des, closed, units.Time(diff), drain)
		}
		// Relative agreement tightens with stream length.
		if n >= 1000 {
			if rel := math.Abs(diff) / float64(closed); rel > 0.01 {
				t.Errorf("n=%d: closed form off by %.2f%%", n, 100*rel)
			}
		}
	}
}

// Whatever the stage assignment, the DES never beats the closed form
// (the closed form is the steady-state lower bound plus fill) and never
// exceeds it by more than the drain.
func TestClosedFormBoundsQuick(t *testing.T) {
	f := func(a, b, c, d uint16, n uint8) bool {
		p := PipelineStages{
			EdgeFetch: units.Time(a%5000) + 1,
			SrcRead:   units.Time(b%5000) + 1,
			Process:   units.Time(c%5000) + 1,
			DstRMW:    units.Time(d%5000) + 1,
		}
		edges := int(n%200) + 1
		des, err := SimulateBlockPipeline(p, edges)
		if err != nil {
			return false
		}
		closed := p.ClosedFormBlockTime(edges)
		drain := p.EdgeFetch + p.SrcRead + p.Process + p.DstRMW
		return des >= closed && des <= closed+drain
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPipelineDegenerateCases(t *testing.T) {
	p := PipelineStages{EdgeFetch: 1, SrcRead: 1, Process: 1, DstRMW: 1}
	if got, err := SimulateBlockPipeline(p, 0); err != nil || got != 0 {
		t.Errorf("empty block: %v, %v", got, err)
	}
	if p.ClosedFormBlockTime(0) != 0 {
		t.Error("closed form of empty block not zero")
	}
	bad := PipelineStages{EdgeFetch: -1}
	if _, err := SimulateBlockPipeline(bad, 5); err == nil {
		t.Error("negative stage accepted")
	}
}

// Single-edge case: DES time is the sum of all stages plus fill (no
// overlap possible with one edge).
func TestSingleEdgeIsStageSum(t *testing.T) {
	p := PipelineStages{
		EdgeFetch: 10, SrcRead: 20, Process: 30, DstRMW: 40, Fill: 100,
	}
	got, err := SimulateBlockPipeline(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if want := units.Time(200); got != want {
		t.Errorf("single edge = %v, want %v", got, want)
	}
}

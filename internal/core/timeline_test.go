package core

import (
	"fmt"
	"math"
	"strings"
	"testing"
)

// TestTimelineMatchesIterationCost holds BuildTimeline's clock against
// the cost simulator: for the same configuration and workload, the
// timeline's last span must end exactly where Detail.IterTime() says an
// iteration ends (small relative tolerance: IterTime sums its four
// phase accumulators in a different float order than the walk's single
// running clock).
func TestTimelineMatchesIterationCost(t *testing.T) {
	w := testWorkload(t, "PR")
	for _, cfg := range []Config{HyVE(), HyVEOpt(), SRAMDRAM()} {
		tl, err := BuildTimeline(cfg, w)
		if err != nil {
			t.Fatalf("BuildTimeline(%s): %v", cfg.Name, err)
		}
		r := simulate(t, cfg, w)
		got := float64(tl.End())
		want := float64(r.Detail.IterTime())
		if rel := math.Abs(got-want) / want; rel > 1e-9 {
			t.Errorf("%s: timeline ends at %v, IterTime is %v (rel err %.2e)",
				cfg.Name, tl.End(), r.Detail.IterTime(), rel)
		}
	}
}

// TestTimelineTracks checks the expected lanes exist per configuration:
// PU tracks always, a router track only with data sharing, bank tracks
// only with power gating (ungated configs get one edge-memory lane).
func TestTimelineTracks(t *testing.T) {
	w := testWorkload(t, "PR")

	has := func(tracks []string, name string) bool {
		for _, tr := range tracks {
			if tr == name {
				return true
			}
		}
		return false
	}
	countPrefix := func(tracks []string, prefix string) int {
		n := 0
		for _, tr := range tracks {
			if strings.HasPrefix(tr, prefix) {
				n++
			}
		}
		return n
	}

	plain, err := BuildTimeline(HyVE(), w)
	if err != nil {
		t.Fatal(err)
	}
	tracks := plain.Tracks()
	cfg := HyVE()
	for p := 0; p < cfg.NumPUs; p++ {
		if !has(tracks, fmt.Sprintf("PU %d", p)) {
			t.Errorf("HyVE timeline missing track PU %d", p)
		}
	}
	if has(tracks, "router") {
		t.Error("router track present without data sharing")
	}
	if countPrefix(tracks, "edge-bank ") != 0 || !has(tracks, "edge-memory") {
		t.Errorf("ungated config should have one edge-memory lane, got %v", tracks)
	}

	opt, err := BuildTimeline(HyVEOpt(), w)
	if err != nil {
		t.Fatal(err)
	}
	tracks = opt.Tracks()
	if !has(tracks, "router") {
		t.Error("HyVE-opt timeline missing router track")
	}
	if countPrefix(tracks, "edge-bank ") == 0 {
		t.Errorf("gated config has no bank tracks: %v", tracks)
	}

	// Every span must lie within the iteration and have non-negative
	// duration; bank awake windows may linger only up to the clamp.
	end := opt.End()
	for _, s := range opt.Spans() {
		if s.Dur < 0 || s.Start < 0 || s.End() > end {
			t.Errorf("span %q on %s out of range: [%v, %v] within [0, %v]",
				s.Name, s.Track, s.Start, s.End(), end)
		}
	}
}

// TestTimelineRejectsNoSRAM mirrors the tracer's constraint: without the
// on-chip hierarchy there is no per-PU schedule to render.
func TestTimelineRejectsNoSRAM(t *testing.T) {
	w := testWorkload(t, "PR")
	if _, err := BuildTimeline(AccDRAM(), w); err == nil {
		t.Error("BuildTimeline accepted a config without on-chip SRAM")
	}
}

// Package core implements the HyVE architecture simulator: the hybrid
// vertex-edge memory hierarchy (paper §3), the super-block scheduler with
// inter-PU data sharing (§4.2–4.3, Algorithm 2), and bank-level power
// gating of the non-volatile edge memory (§4.1). The same simulator,
// configured with different memory bindings, also produces the paper's
// accelerator baselines (acc+DRAM, acc+ReRAM, acc+SRAM+DRAM of Fig. 16).
//
// The simulator is block-grained and access-exact (DESIGN.md §4.1): it
// walks the exact super-block schedule over the exact partitioned graph,
// charges every device access at its calibrated operating point, and
// bounds per-edge time by the pipeline maximum of Eq. (1).
package core

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/device/dram"
	"repro/internal/device/rram"
	"repro/internal/fault"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/units"
)

// SimSchema identifies the semantic version of the simulator for
// content-addressed result caching (internal/cache): two runs of the
// same point under the same SimSchema produce byte-identical results.
// Bump it on ANY change that can alter simulation output — cost model
// constants, scheduling, accounting, device pricing — so cached results
// from an older simulator can never be mistaken for current ones.
const SimSchema = "hyve/sim/v1"

// MemKind selects the technology backing a memory role.
type MemKind int

// Memory technologies.
const (
	MemDRAM MemKind = iota
	MemReRAM
)

func (k MemKind) String() string {
	switch k {
	case MemDRAM:
		return "DRAM"
	case MemReRAM:
		return "ReRAM"
	default:
		return fmt.Sprintf("MemKind(%d)", int(k))
	}
}

// Config describes one accelerator memory-hierarchy configuration.
type Config struct {
	// Name labels the configuration in reports ("acc+HyVE", …).
	Name string
	// NumPUs is N, the processing-unit count (paper: 8).
	NumPUs int
	// SRAMBytes is the per-PU on-chip vertex memory capacity (source
	// section + destination section together), when UseOnChipSRAM.
	SRAMBytes int64
	// UseOnChipSRAM enables the on-chip vertex memory; without it,
	// per-edge vertex accesses go straight to the off-chip vertex
	// memory (the acc+DRAM / acc+ReRAM baselines).
	UseOnChipSRAM bool
	// EdgeMemory and VertexMemory pick technologies for the two off-chip
	// roles. HyVE: ReRAM edges + DRAM vertices.
	EdgeMemory   MemKind
	VertexMemory MemKind
	// DataSharing enables the §4.2 router scheme (sources handed between
	// PUs instead of reloaded from off-chip).
	DataSharing bool
	// PowerGating enables §4.1 bank-level power gating of a non-volatile
	// edge memory. It has no effect on a DRAM edge memory (gating DRAM
	// loses data).
	PowerGating bool

	// RRAM, DRAM, and Gate are the device design points.
	RRAM rram.Config
	DRAM dram.Config
	Gate mem.PowerGateParams

	// CustomEdgeDevice, when non-nil, overrides the edge-memory device
	// entirely (used by the NVM-alternatives ablation to try PCM or
	// STT-MRAM in the edge role). EdgeMemory still selects whether the
	// role is treated as non-volatile for power gating.
	CustomEdgeDevice device.Memory

	// Fault configures the edge-memory fault-injection and resilience
	// layer: seeded read-disturb/stuck-at/bank-failure injection, SECDED
	// ECC priced into every edge access, spare-bank remapping. The zero
	// value disables the layer entirely; a disabled-fault simulation is
	// bit-identical to one predating the layer (golden-tested).
	Fault fault.Config

	// Parallelism bounds the host CPU workers a single run may use for
	// its own internal work: the parallel grid build and the
	// block-parallel functional execution. It is a host-resource knob,
	// not a model parameter — results are bit-identical at every value.
	// 0 (the default) means GOMAXPROCS; 1 reproduces the fully
	// sequential behavior.
	Parallelism int

	// SyncOverhead is the per-step PU barrier cost (Algorithm 2 line 12).
	SyncOverhead units.Time
	// RerouteCycles is the router reconfiguration cost in on-chip SRAM
	// cycles (§4.2: "the access latency of the remote interval is
	// approximately 5 to 10 SRAM operating clock cycles").
	RerouteCycles int

	// Recorder, when non-nil, receives the run's metrics: per-phase
	// simulated time, per-component energy, traffic counters, gating
	// outcomes. Nil falls back to the process-global obs.Default(),
	// which is a no-op unless a driver installed one — so unobserved
	// simulations pay nothing.
	Recorder obs.Recorder
}

// recorder resolves the run's metrics sink.
func (c Config) recorder() obs.Recorder {
	if c.Recorder != nil {
		return c.Recorder
	}
	return obs.Default()
}

// Validate checks the configuration for consistency.
func (c Config) Validate() error {
	if c.NumPUs <= 0 {
		return fmt.Errorf("core: non-positive PU count %d", c.NumPUs)
	}
	if c.UseOnChipSRAM && c.SRAMBytes <= 0 {
		return fmt.Errorf("core: on-chip SRAM enabled with capacity %d", c.SRAMBytes)
	}
	if c.DataSharing && !c.UseOnChipSRAM {
		return fmt.Errorf("core: data sharing requires on-chip vertex memory")
	}
	if c.PowerGating && c.EdgeMemory != MemReRAM {
		return fmt.Errorf("core: power gating requires a non-volatile edge memory")
	}
	if c.SyncOverhead < 0 || c.RerouteCycles < 0 {
		return fmt.Errorf("core: negative scheduling overheads")
	}
	if c.Parallelism < 0 {
		return fmt.Errorf("core: negative parallelism %d", c.Parallelism)
	}
	if err := c.Fault.Validate(); err != nil {
		return err
	}
	return nil
}

func baseConfig(name string) Config {
	return Config{
		Name:          name,
		NumPUs:        8,
		SRAMBytes:     2 << 20,
		UseOnChipSRAM: true,
		EdgeMemory:    MemReRAM,
		VertexMemory:  MemDRAM,
		RRAM:          rram.DefaultConfig(),
		DRAM:          dram.DefaultConfig(),
		Gate:          mem.DefaultPowerGateParams(),
		SyncOverhead:  5 * units.Nanosecond,
		RerouteCycles: 10,
	}
}

// HyVE returns the base acc+HyVE configuration (§3): ReRAM edge memory,
// DRAM off-chip vertex memory, SRAM on-chip vertex memory — without the
// §4 optimizations.
func HyVE() Config { return baseConfig("acc+HyVE") }

// HyVEOpt returns acc+HyVE-opt: HyVE plus data sharing and bank-level
// power gating.
func HyVEOpt() Config {
	c := baseConfig("acc+HyVE-opt")
	c.DataSharing = true
	c.PowerGating = true
	return c
}

// SRAMDRAM returns the acc+SRAM+DRAM ("SD") conventional hierarchy:
// like HyVE but with a DRAM edge memory.
func SRAMDRAM() Config {
	c := baseConfig("acc+SRAM+DRAM")
	c.EdgeMemory = MemDRAM
	return c
}

// AccDRAM returns the acc+DRAM true baseline: DRAM everywhere, no
// on-chip vertex memory.
func AccDRAM() Config {
	c := baseConfig("acc+DRAM")
	c.EdgeMemory = MemDRAM
	c.UseOnChipSRAM = false
	c.SRAMBytes = 0
	return c
}

// AccReRAM returns acc+ReRAM: naive technology substitution, ReRAM for
// both edge and vertex roles, no on-chip vertex memory.
func AccReRAM() Config {
	c := baseConfig("acc+ReRAM")
	c.EdgeMemory = MemReRAM
	c.VertexMemory = MemReRAM
	c.UseOnChipSRAM = false
	c.SRAMBytes = 0
	return c
}

// Fig16Configs returns the accelerator configurations of Fig. 16, in
// presentation order.
func Fig16Configs() []Config {
	return []Config{AccDRAM(), AccReRAM(), SRAMDRAM(), HyVE(), HyVEOpt()}
}

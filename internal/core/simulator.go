package core

import (
	"context"
	"fmt"

	"repro/internal/algo"
	"repro/internal/device"
	"repro/internal/device/dram"
	"repro/internal/device/rram"
	"repro/internal/device/sram"
	"repro/internal/energy"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/units"
)

// Workload binds a graph instance, the full-scale sizes used for
// capacity decisions, and a program.
type Workload struct {
	// DatasetName labels the workload in reports.
	DatasetName string
	// Graph is the instance actually streamed.
	Graph *graph.Graph
	// FullVertices/FullEdges are the capacity-sizing counts. When zero
	// they default to the instance's own sizes. For the paper's
	// down-scaled dataset instances these carry the published full
	// sizes, which keeps the partition count P — and therefore every
	// traffic ratio — identical to the full-scale run (DESIGN.md §1).
	FullVertices int64
	FullEdges    int64
	// Program is the algorithm to execute.
	Program algo.Program
	// Iterations overrides the iteration count; 0 derives it from a
	// functional run of the program.
	Iterations int
	// ActivityFactor is the fraction of edge traversals whose scatter
	// was active; UpdateFactor the fraction that wrote the destination.
	// Zero means unknown: derived from the functional run when
	// Iterations is 0, else treated as 1 (every edge updates). The
	// factors scale update-side dynamic energy (the pipeline still
	// streams every edge, so timing is unaffected).
	ActivityFactor float64
	UpdateFactor   float64
}

// WorkloadFor assembles the standard workload for a paper dataset.
func WorkloadFor(d graph.Dataset, p algo.Program) (Workload, error) {
	g, err := d.Load()
	if err != nil {
		return Workload{}, err
	}
	if p.NeedsWeights() && !g.Weighted() {
		g = g.Clone()
		graph.AttachUniformWeights(g, 8, d.Seed^0x5EED)
	}
	return Workload{
		DatasetName:  d.Name,
		Graph:        g,
		FullVertices: d.FullVertices,
		FullEdges:    d.FullEdges,
		Program:      p,
	}, nil
}

func (w Workload) fullVertices() int64 {
	if w.FullVertices > 0 {
		return w.FullVertices
	}
	return int64(w.Graph.NumVertices)
}

func (w Workload) fullEdges() int64 {
	if w.FullEdges > 0 {
		return w.FullEdges
	}
	return int64(w.Graph.NumEdges())
}

// Detail exposes the per-iteration anatomy of a simulated run, used by
// the optimization experiments (Figs. 14/15/17/18) and tests.
type Detail struct {
	P              int // interval count
	SuperBlockSide int // P / N
	Iterations     int

	// Per-iteration time split.
	LoadTime      units.Time // interval loading (sources + destinations)
	ProcessTime   units.Time // edge streaming through the PUs
	WritebackTime units.Time
	OverheadTime  units.Time // sync + reroute + fills

	// Per-iteration off-chip vertex traffic in bytes.
	SrcLoadBytes   int64
	DstLoadBytes   int64
	WritebackBytes int64
	EdgeBytes      int64

	// Gating outcome over the whole run (zero value when disabled).
	Gate mem.GateStats

	// Fault is the injected-error outcome over the whole run (zero value
	// when the fault layer is disabled).
	Fault fault.Stats
}

// IterTime is the per-iteration wall time.
func (d *Detail) IterTime() units.Time {
	return d.LoadTime + d.ProcessTime + d.WritebackTime + d.OverheadTime
}

// Result is a completed simulation.
type Result struct {
	Report energy.Report
	Detail Detail
}

// routerWordEnergy is the wire+mux energy of moving one 32-bit word
// through the pipelined N×N source router (§4.2). The paper bounds the
// router's latency (5–10 SRAM cycles, hidden by pipelining) and treats
// its energy as small; 2 pJ/word is the on-chip interconnect scale for
// millimeter-range 22 nm wires.
const routerWordEnergy = units.Energy(2)

// gridRowHitRate is the row-buffer hit rate of per-edge vertex accesses
// in the SRAM-less baselines (acc+DRAM, acc+ReRAM). Those configurations
// still run the interval-block schedule, so their "random" vertex
// accesses are confined to the current interval pair — a working set of
// a few hundred DRAM rows spread over the banks — rather than the whole
// graph; most accesses reopen a recently used row. The rate scales with
// the open-row footprint: a DRAM bank exposes an 8 KB page, while a
// ReRAM mat exposes only its 64-byte output line, so ReRAM gets almost
// no reuse (8192/64 = 128× smaller window).
func gridRowHitRate(kind MemKind) float64 {
	if kind == MemDRAM {
		return 0.75
	}
	return 0.05
}

// Simulate runs w under cfg and returns time, energy, and detail.
//
// Simulate is safe to call from concurrent goroutines, including on a
// shared Workload: cfg and w are passed by value, all mutable run state
// (partitioning, schedule, gate windows, accumulated report) lives in
// locals created here, and the only data reached through w — the graph
// and the program — is read-only by contract (graphs are never mutated
// after generation, programs are stateless). The parallel experiment
// harness and internal/experiments/race_test.go depend on this.
func Simulate(cfg Config, w Workload) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if w.Graph == nil || w.Graph.NumVertices == 0 {
		return nil, graph.ErrEmptyGraph
	}
	if w.Program == nil {
		return nil, fmt.Errorf("core: workload has no program")
	}

	s, err := newSim(cfg, w)
	if err != nil {
		return nil, err
	}
	return s.run()
}

// machine holds the assembled simulator for one run.
type machine struct {
	cfg Config
	w   Workload

	edgeDev device.Memory
	vtxDev  device.Memory
	edgeReg *mem.Region
	vtxReg  *mem.Region
	onchip  *sram.SRAM // nil without on-chip vertex memory
	pu      *device.CMOSPU
	gate    *mem.GatedBanks // nil without power gating

	p          int // intervals
	grid       *partition.Grid
	valueBytes int
	words      int // 32-bit words per vertex value
	edgeBanks  int // banks across the edge region (all chips)

	// traceParent, when non-nil during run(), parents the run's
	// per-iteration phase spans (set by Machine.SimulateTraced; the
	// cache scheduler passes its point span here).
	traceParent *obs.SpanHandle
}

func newSim(cfg Config, w Workload) (*machine, error) {
	s := &machine{cfg: cfg, w: w, pu: device.NewCMOSPU()}
	s.valueBytes = w.Program.ValueBytes()
	s.words = (s.valueBytes + 3) / 4

	rchip, err := rram.New(cfg.RRAM)
	if err != nil {
		return nil, err
	}
	dchip, err := dram.New(cfg.DRAM)
	if err != nil {
		return nil, err
	}
	pick := func(k MemKind) device.Memory {
		if k == MemReRAM {
			return rchip
		}
		return dchip
	}
	s.edgeDev = pick(cfg.EdgeMemory)
	if cfg.CustomEdgeDevice != nil {
		s.edgeDev = cfg.CustomEdgeDevice
	}
	if cfg.Fault.Enabled {
		// Price the ECC into every edge access before the region is
		// sized: the check cells occupy real array capacity, the decode
		// tree adds per-line latency and energy. With ECCNone the wrap
		// is the identity, so a code-free fault config changes nothing.
		s.edgeDev = fault.Wrap(s.edgeDev, cfg.Fault.ECCParams())
	}
	s.vtxDev = pick(cfg.VertexMemory)

	// Regions sized for the full-scale workload (§3.4 layout: blocks and
	// intervals stored sequentially, plus headers — headers are <1% and
	// folded into the data size).
	edgeBytes := w.fullEdges() * graph.EdgeBytes
	if w.Program.NeedsWeights() {
		edgeBytes += w.fullEdges() * 4
	}
	// The edge memory is main-memory scale and DIMM-organized: a rank of
	// eight x8 devices populates the channel (§3.1 "organized the same
	// way as commodity DRAM counterparts"). The vertex memory is a small
	// dedicated device on the second channel of the §3.3 dual-channel bus.
	if s.edgeReg, err = mem.NewRankedRegion("edge", s.edgeDev, edgeBytes, 8); err != nil {
		return nil, err
	}
	// Edge bank geometry, used by power gating and fault injection: the
	// ReRAM chip's own bank count, or 8 banks per chip for a custom NVM
	// device (banked organization is the commodity norm, §3.1).
	banksPerChip := rchip.NumBanks()
	if cfg.CustomEdgeDevice != nil {
		banksPerChip = 8
	}
	s.edgeBanks = banksPerChip * s.edgeReg.Chips
	if s.vtxReg, err = mem.NewRegion("vertex", s.vtxDev, w.fullVertices()*int64(s.valueBytes)); err != nil {
		return nil, err
	}

	if cfg.UseOnChipSRAM {
		if s.onchip, err = sram.New(cfg.SRAMBytes); err != nil {
			return nil, err
		}
	}
	if s.p, err = ChoosePFor(cfg, w); err != nil {
		return nil, err
	}

	asg, err := partition.NewHashed(w.Graph.NumVertices, s.p)
	if err != nil {
		return nil, err
	}
	if s.grid, err = partition.BuildParallel(w.Graph, asg, cfg.Parallelism); err != nil {
		return nil, err
	}

	if cfg.PowerGating {
		// Leakage split for gating: the ReRAM chip's calibrated values
		// when it is the edge device; a custom NVM device has its
		// background split pro rata across its banks.
		bankLeak := rchip.BankLeakage()
		ioLeak := rchip.IOLeakage()
		if cfg.CustomEdgeDevice != nil {
			bankLeak = units.Power(float64(s.edgeDev.Background()) * 0.8 / float64(banksPerChip))
			ioLeak = units.Power(float64(s.edgeDev.Background()) * 0.2)
		}
		s.gate, err = mem.NewGatedBanks(cfg.Gate, bankLeak, s.edgeBanks,
			units.Power(float64(ioLeak)*float64(s.edgeReg.Chips)))
		if err != nil {
			return nil, err
		}
		s.gate.SetRecorder(cfg.recorder())
	}
	return s, nil
}

// ChoosePFor returns the interval count the simulator will partition
// w's graph into under cfg — the same decision newSim makes, exposed so
// offline tooling (hyve-prep -grid auto) can pre-partition a container
// at exactly the P a later simulation will request and hit the prepared
// fast path.
func ChoosePFor(cfg Config, w Workload) (int, error) {
	if cfg.UseOnChipSRAM {
		// P from full-scale vertices so partition counts match the
		// paper's machine; clamped to the instance so intervals are
		// non-empty.
		p, err := partition.ChooseP(w.fullVertices(), int(cfg.SRAMBytes), w.Program.ValueBytes(), cfg.NumPUs)
		if err != nil {
			return 0, err
		}
		return clampP(p, w.Graph.NumVertices, cfg.NumPUs), nil
	}
	// Without on-chip vertex memory the schedule degenerates to N
	// parallel streams; keep one interval per PU for block shape.
	return clampP(cfg.NumPUs, w.Graph.NumVertices, cfg.NumPUs), nil
}

// clampP keeps P a positive multiple of n that does not exceed the
// instance vertex count.
func clampP(p, numVertices, n int) int {
	if p > numVertices {
		p = numVertices / n * n
	}
	if p < n {
		p = n
	}
	return p
}

// stageCosts are the per-edge pipeline stages of Eq. (1):
// max(T_edge, T_src, T_pu, T_dst) bounds the streaming rate.
type stageCosts struct {
	perEdge units.Time

	edgeEnergy units.Energy // edge memory share per edge
	srcEnergy  units.Energy // source vertex read per edge
	dstRead    units.Energy // destination read per edge (always: the gather compares)
	dstWrite   units.Energy // destination write per *updating* edge
	puEnergy   units.Energy // control + sequencing per edge
	puOpEnergy units.Energy // arithmetic op per *active* edge
	srcOffchip bool         // source/destination accesses hit the off-chip region
	activity   float64      // fraction of edges whose scatter fired
	updates    float64      // fraction of edges that wrote the destination
}

// perEdgeEnergy folds the activity factors into one edge's dynamic cost.
func (st *stageCosts) vertexEnergy() units.Energy {
	return st.srcEnergy + st.dstRead + st.dstWrite.Times(st.updates)
}

func (st *stageCosts) logicEnergy() units.Energy {
	return st.puEnergy + st.puOpEnergy.Times(st.activity)
}

func (s *machine) stages() stageCosts {
	edgeLine := s.edgeReg.Read(true)
	edgeSize := int64(graph.EdgeBytes)
	if s.w.Program.NeedsWeights() {
		edgeSize += 4
	}
	edgesPerLine := float64(s.edgeReg.LineBytes()) / float64(edgeSize)
	if edgesPerLine < 1 {
		edgesPerLine = 1
	}
	// N PU streams share the edge channel.
	edgeStage := units.Time(float64(edgeLine.Latency) * float64(s.cfg.NumPUs) / edgesPerLine)

	var st stageCosts
	st.edgeEnergy = units.Energy(float64(edgeLine.Energy) / edgesPerLine)
	st.puEnergy = s.pu.CtrlEnergy
	st.puOpEnergy = s.pu.Op().Energy
	st.activity = 1
	st.updates = 1
	if s.w.ActivityFactor > 0 {
		st.activity = s.w.ActivityFactor
	}
	if s.w.UpdateFactor > 0 {
		st.updates = s.w.UpdateFactor
	}
	puStage := s.pu.Op().Latency

	var srcStage, dstStage units.Time
	if s.onchip != nil {
		rd, wr := s.onchip.Read(false), s.onchip.Write(false)
		srcStage = rd.Latency.Times(float64(s.words))
		dstStage = (rd.Latency + wr.Latency).Times(float64(s.words))
		st.srcEnergy = rd.Energy.Times(float64(s.words))
		st.dstRead = rd.Energy.Times(float64(s.words))
		st.dstWrite = wr.Energy.Times(float64(s.words))
	} else {
		// Interval-confined accesses: blend open-row and full-activation
		// costs at the device's schedule-induced hit rate.
		h := gridRowHitRate(s.cfg.VertexMemory)
		blend := func(hit, miss device.Cost) device.Cost {
			return hit.Times(h).Plus(miss.Times(1 - h))
		}
		rd := blend(s.vtxReg.Read(true), s.vtxReg.Read(false))
		wr := blend(s.vtxReg.Write(true), s.vtxReg.Write(false))
		srcStage = rd.Latency
		dstStage = rd.Latency + wr.Latency
		st.srcEnergy = rd.Energy
		st.dstRead = rd.Energy
		st.dstWrite = wr.Energy
		st.srcOffchip = true
	}
	st.perEdge = units.MaxTime(edgeStage, srcStage, puStage, dstStage)
	return st
}

// intervalBytes returns the vertex-value bytes of interval i.
func (s *machine) intervalBytes(i int) int64 {
	return int64(s.grid.Assigner.IntervalLen(i)) * int64(s.valueBytes)
}

// transferCost models moving an interval between the off-chip vertex
// memory and an on-chip section through the load port: the stream issues
// one off-chip line per max(off-chip line interval, SRAM cycle), and
// energy is charged on both sides (per-line off-chip, per-word on-chip).
func (s *machine) transferCost(bytes int64, toOffchip bool) (units.Time, units.Energy, units.Energy) {
	if bytes <= 0 {
		return 0, 0, 0
	}
	lines := device.Lines(s.vtxDev, bytes)
	var off device.Cost
	if toOffchip {
		off = s.vtxReg.Write(true)
	} else {
		off = s.vtxReg.Read(true)
	}
	interval := units.MaxTime(off.Latency, s.onchip.Cycle())
	t := interval.Times(float64(lines))
	offE := off.Energy.Times(float64(lines))
	words := float64((bytes + 3) / 4)
	var onE units.Energy
	if toOffchip {
		onE = s.onchip.Read(true).Energy.Times(words)
	} else {
		onE = s.onchip.Write(true).Energy.Times(words)
	}
	return t, offE, onE
}

// run walks Algorithm 2 once to price an iteration, derives the
// iteration count from a functional run (or the workload override), and
// assembles the report.
func (s *machine) run() (*Result, error) {
	iters := s.w.Iterations
	var edgesProcessed int64
	if iters <= 0 {
		fr, err := algo.Run(s.w.Program, s.w.Graph)
		if err != nil {
			return nil, err
		}
		iters = fr.Iterations
		edgesProcessed = fr.EdgesProcessed
		if s.w.ActivityFactor == 0 {
			s.w.ActivityFactor = fr.ActivityRatio()
		}
		if s.w.UpdateFactor == 0 {
			s.w.UpdateFactor = fr.UpdateRatio()
		}
	} else {
		edgesProcessed = int64(iters) * int64(s.w.Graph.NumEdges())
	}

	iterTime, iterBD, detail := s.iterationCost()
	detail.Iterations = iters

	totalTime := iterTime.Times(float64(iters))
	var bd energy.Breakdown
	for it := 0; it < iters; it++ {
		bd.AddAll(&iterBD)
	}

	// Background energy over the whole run.
	bd.Add(energy.VertexMemoryOffChip, s.vtxReg.Background().Over(totalTime))
	if s.onchip != nil {
		perPU := s.onchip.Background()
		bd.Add(energy.VertexMemoryOnChip, units.Power(float64(perPU)*float64(s.cfg.NumPUs)).Over(totalTime))
	}
	bd.Add(energy.Logic, units.Power(float64(s.pu.Leakage)*float64(s.cfg.NumPUs)).Over(totalTime))

	// Edge memory background: gated (streaming windows only) or full.
	if s.gate != nil {
		banksTouched := s.banksTouched()
		for it := 0; it < iters; it++ {
			ge, penalty := s.gate.Streaming(detail.ProcessTime, banksTouched)
			bd.Add(energy.EdgeMemory, ge)
			bd.Add(energy.EdgeMemory, s.gate.Idle(iterTime-detail.ProcessTime))
			totalTime += penalty
		}
		detail.Gate = s.gate.Stats()
	} else {
		bd.Add(energy.EdgeMemory, s.edgeReg.Background().Over(totalTime))
	}

	if s.cfg.Fault.Enabled {
		if err := s.injectFaults(&bd, &totalTime, &detail, iters); err != nil {
			return nil, err
		}
	}

	rep := energy.Report{
		Config:         s.cfg.Name,
		Algorithm:      s.w.Program.Name(),
		Dataset:        s.w.DatasetName,
		Time:           totalTime,
		Energy:         bd,
		EdgesProcessed: edgesProcessed,
		Iterations:     iters,
	}
	s.report(&rep, &detail)
	return &Result{Report: rep, Detail: detail}, nil
}

// banksTouched returns how many edge banks the streamed edge data
// occupies: the stream fills banks sequentially from bank 0 (§3.4
// layout), so the footprint is a prefix of the bank space.
func (s *machine) banksTouched() int {
	edgeBytesUsed := s.w.fullEdges() * graph.EdgeBytes
	bankBytes := s.edgeDev.CapacityBytes() / int64(s.edgeBanks/s.edgeReg.Chips)
	return int((edgeBytesUsed + bankBytes - 1) / bankBytes)
}

// injectFaults runs the seeded error processes over the finished run's
// edge-stream footprint and prices the resilience machinery into it:
// every corrected word pays the ECC shift-and-flip, whole-bank hard
// failures consume spares one-for-one (the spare inherits the victim's
// gate schedule — mem.BankRemap — so gating statistics are invariant),
// and the run aborts with ErrBankLoss / ErrUncorrectable when the
// damage exceeds what the configured resilience can absorb.
func (s *machine) injectFaults(bd *energy.Breakdown, totalTime *units.Time, d *Detail, iters int) error {
	inj, err := fault.NewInjector(s.cfg.Fault)
	if err != nil {
		return err
	}
	lineBytes := s.edgeReg.LineBytes()
	linesPerIter := (d.EdgeBytes + int64(lineBytes) - 1) / int64(lineBytes)
	stats, err := inj.Sweep(linesPerIter, lineBytes, iters)
	if err != nil {
		return err
	}

	// Whole-bank hard failures among the banks the stream occupies.
	touched := s.banksTouched()
	if touched > s.edgeBanks {
		touched = s.edgeBanks
	}
	if victims := inj.Victims(touched); len(victims) > 0 {
		remap, err := mem.NewBankRemap(s.edgeBanks, s.cfg.Fault.SpareBanks)
		if err != nil {
			return err
		}
		stats.BanksFailed = int64(len(victims))
		for _, b := range victims {
			if _, err := remap.Fail(b); err != nil {
				stats.BanksRemapped = int64(remap.Remapped())
				d.Fault = stats
				return fmt.Errorf("core: %w: %v", fault.ErrBankLoss, err)
			}
		}
		stats.BanksRemapped = int64(remap.Remapped())
		// The spares replay the victims' gate windows verbatim, so
		// Detail.Gate needs no adjustment — remapping is gate-invariant.
	}

	ecc := inj.ECC()
	if stats.Corrected > 0 {
		*totalTime += ecc.CorrectLatency.Times(float64(stats.Corrected))
		bd.Add(energy.EdgeMemory, ecc.CorrectEnergy.Times(float64(stats.Corrected)))
	}
	d.Fault = stats
	if s.cfg.Fault.AbortOnUncorrectable && stats.Uncorrectable > 0 {
		return fmt.Errorf("core: %d words: %w", stats.Uncorrectable, fault.ErrUncorrectable)
	}
	return nil
}

// report publishes the finished run as first-class named metrics: the
// Algorithm 2 phase anatomy, the Fig. 17 energy components, the
// off-chip traffic, and the gating outcome. Reporting happens once per
// run — never per edge — so the hot path is untouched, and a no-op
// recorder reduces the whole call to a handful of interface calls.
func (s *machine) report(rep *energy.Report, d *Detail) {
	rec := s.cfg.recorder()
	iters := float64(d.Iterations)
	rec.Count("sim.runs", 1)
	rec.Count("sim.iterations", int64(d.Iterations))
	rec.Count("sim.edges.processed", rep.EdgesProcessed)
	rec.PhaseTime("sim.phase.load", d.LoadTime.Times(iters))
	rec.PhaseTime("sim.phase.process", d.ProcessTime.Times(iters))
	rec.PhaseTime("sim.phase.writeback", d.WritebackTime.Times(iters))
	rec.PhaseTime("sim.phase.overhead", d.OverheadTime.Times(iters))
	rec.PhaseTime("sim.time.total", rep.Time)
	for _, c := range energy.Components() {
		if e := rep.Energy.Get(c); e > 0 {
			rec.PhaseEnergy("sim.energy."+c.String(), e)
		}
	}
	rec.Count("sim.bytes.src-load", int64(iters)*d.SrcLoadBytes)
	rec.Count("sim.bytes.dst-load", int64(iters)*d.DstLoadBytes)
	rec.Count("sim.bytes.writeback", int64(iters)*d.WritebackBytes)
	rec.Count("sim.bytes.edge-stream", int64(iters)*d.EdgeBytes)
	if d.Gate.Transitions > 0 {
		rec.Count("sim.gate.transitions", d.Gate.Transitions)
		rec.PhaseTime("sim.gate.awake-bank", d.Gate.AwakeBankTime)
		rec.PhaseEnergy("sim.gate.saved", d.Gate.UngatedEnergy-d.Gate.GatedEnergy)
	}
	if s.cfg.Fault.Enabled {
		rec.Count("fault.injected", d.Fault.Injected)
		rec.Count("fault.corrected", d.Fault.Corrected)
		rec.Count("fault.detected", d.Fault.Detected)
		rec.Count("fault.uncorrectable", d.Fault.Uncorrectable)
		rec.Count("fault.silent", d.Fault.Silent)
		rec.Count("mem.banks_remapped", d.Fault.BanksRemapped)
	}
	s.emitPhaseSpans(d)
}

// maxTracedIterations caps the per-iteration phase spans one run emits:
// past this the trace adds repetition, not information (the model's
// per-iteration split is uniform), and a pathological iteration count
// must not monopolize the bounded trace ring.
const maxTracedIterations = 32

// emitPhaseSpans reconstructs the run's Algorithm 2 timeline as
// simulated-timebase spans — load/process/writeback/overhead per
// iteration, sequential from t=0 — parented under the scheduler's point
// span (or a fresh root for direct core.Simulate callers), so a span
// trace nests run → experiment → point → phase. Free when tracing is
// disabled.
func (s *machine) emitPhaseSpans(d *Detail) {
	if !obs.TracingEnabled() {
		return
	}
	parent := s.traceParent
	track := "sim " + s.cfg.Name + "/" + s.w.DatasetName
	if parent == nil {
		var root *obs.SpanHandle
		_, root = obs.StartSpan(context.Background(), track,
			"config", s.cfg.Name, "dataset", s.w.DatasetName)
		defer root.End()
		parent = root
	}
	phases := [4]struct {
		name string
		dur  units.Time
	}{
		{"load", d.LoadTime},
		{"process", d.ProcessTime},
		{"writeback", d.WritebackTime},
		{"overhead", d.OverheadTime},
	}
	iters := d.Iterations
	if iters > maxTracedIterations {
		parent.SetAttr("iterations_traced",
			fmt.Sprintf("%d of %d", maxTracedIterations, iters))
		iters = maxTracedIterations
	}
	var t units.Time
	for it := 0; it < iters; it++ {
		for _, ph := range phases {
			if ph.dur <= 0 {
				continue
			}
			obs.AddSimSpan(parent, track, ph.name, t, ph.dur)
			t += ph.dur
		}
	}
}

// iterationCost walks one full pass of Algorithm 2 over the grid and
// returns its time, dynamic energy, and phase detail. The walk is exact:
// every block's edge count prices its step, every interval's true length
// prices its transfers.
func (s *machine) iterationCost() (units.Time, energy.Breakdown, Detail) {
	var bd energy.Breakdown
	var d Detail
	d.P = s.p
	n := s.cfg.NumPUs
	pn := s.p / n
	d.SuperBlockSide = pn
	st := s.stages()

	var total units.Time
	// One stream fill at iteration start (the edge memory is a
	// continuous read-only stream thereafter, §3.1).
	fill := s.edgeReg.Read(false).Latency
	total += fill
	d.OverheadTime += fill

	edgeSize := int64(graph.EdgeBytes)
	if s.w.Program.NeedsWeights() {
		edgeSize += 4
	}

	loadInterval := func(i int) units.Time { // off-chip → on-chip
		bytes := s.intervalBytes(i)
		t, offE, onE := s.transferCost(bytes, false)
		bd.Add(energy.VertexMemoryOffChip, offE)
		bd.Add(energy.VertexMemoryOnChip, onE)
		d.SrcLoadBytes += bytes // callers fix up dst counters
		return t
	}

	for y := 0; y < pn; y++ {
		for x := 0; x < pn; x++ {
			if s.onchip != nil {
				// Destination intervals: with sharing they stay on-chip
				// for the whole y-column; without, they bounce per
				// super block (Fig. 14 baseline).
				if (s.cfg.DataSharing && x == 0) || !s.cfg.DataSharing {
					for i := 0; i < n; i++ {
						iv := y*n + i
						t := loadInterval(iv)
						b := s.intervalBytes(iv)
						d.SrcLoadBytes -= b
						d.DstLoadBytes += b
						total += t
						d.LoadTime += t
					}
				}
				// Source intervals: shared mode loads each once per
				// super block.
				if s.cfg.DataSharing {
					for i := 0; i < n; i++ {
						t := loadInterval(x*n + i)
						total += t
						d.LoadTime += t
					}
				}
			}

			for step := 0; step < n; step++ {
				if s.onchip != nil && !s.cfg.DataSharing {
					// Every PU fetches the source interval it is about
					// to consume from off-chip (serialized on the
					// channel) — the reloading the router scheme avoids.
					for p := 0; p < n; p++ {
						t := loadInterval(x*n + (p+step)%n)
						total += t
						d.LoadTime += t
					}
				}
				var stepMax units.Time
				for p := 0; p < n; p++ {
					src := x*n + (p+step)%n
					dst := y*n + p
					blkLen := s.grid.BlockLen(src, dst)
					if blkLen == 0 {
						continue
					}
					bt := st.perEdge.Times(float64(blkLen))
					if bt > stepMax {
						stepMax = bt
					}
					e := float64(blkLen)
					bd.Add(energy.EdgeMemory, st.edgeEnergy.Times(e))
					bd.Add(energy.Logic, st.logicEnergy().Times(e))
					if st.srcOffchip {
						bd.Add(energy.VertexMemoryOffChip, st.vertexEnergy().Times(e))
					} else {
						bd.Add(energy.VertexMemoryOnChip, st.vertexEnergy().Times(e))
						if s.cfg.DataSharing && step > 0 {
							// Remote source interval through the router.
							bd.Add(energy.Router, routerWordEnergy.Times(e*float64(s.words)))
						}
					}
					d.EdgeBytes += int64(blkLen) * edgeSize
				}
				d.ProcessTime += stepMax
				if stepMax > 0 {
					// Each PU's block starts at a fresh edge-memory
					// region: the stream redirects and pays one array
					// access latency before refilling (the per-block
					// cost behind Fig. 18's slight HyVE degradation).
					fill := s.edgeReg.Read(false).Latency
					stepMax += fill
					d.OverheadTime += fill
				}
				total += stepMax

				if s.cfg.DataSharing && step > 0 {
					r := s.onchip.Cycle().Times(float64(s.cfg.RerouteCycles))
					total += r
					d.OverheadTime += r
				}
				total += s.cfg.SyncOverhead
				d.OverheadTime += s.cfg.SyncOverhead
			}

			if s.onchip != nil && (!s.cfg.DataSharing || x == pn-1) {
				// Write destinations back (Algorithm 2 "Updating").
				for i := 0; i < n; i++ {
					bytes := s.intervalBytes(y*n + i)
					t, offE, onE := s.transferCost(bytes, true)
					bd.Add(energy.VertexMemoryOffChip, offE)
					bd.Add(energy.VertexMemoryOnChip, onE)
					d.WritebackBytes += bytes
					total += t
					d.WritebackTime += t
				}
			}
		}
	}
	return total, bd, d
}

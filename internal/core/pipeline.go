package core

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/units"
)

// Pipeline cross-validation: the cost simulator prices a block as
// fill + nEdges × max(stage latencies) — the closed form of the paper's
// Eq. (1). This file simulates the same four-stage pipeline (edge fetch →
// source read → process → destination read-modify-write) edge by edge on
// the discrete-event engine, so tests can verify the closed form against
// an independent request-level execution instead of trusting the
// algebra.

// PipelineStages holds the per-edge service time of each stage.
type PipelineStages struct {
	EdgeFetch units.Time
	SrcRead   units.Time
	Process   units.Time
	DstRMW    units.Time
	// Fill is the one-time latency before the first edge's data arrives.
	Fill units.Time
}

// Validate rejects non-physical stages.
func (p PipelineStages) Validate() error {
	for _, t := range []units.Time{p.EdgeFetch, p.SrcRead, p.Process, p.DstRMW, p.Fill} {
		if t < 0 {
			return fmt.Errorf("core: negative pipeline stage in %+v", p)
		}
	}
	return nil
}

// Max returns the binding stage interval.
func (p PipelineStages) Max() units.Time {
	return units.MaxTime(p.EdgeFetch, p.SrcRead, p.Process, p.DstRMW)
}

// ClosedFormBlockTime is the Eq. (1)-style block cost the simulator uses.
func (p PipelineStages) ClosedFormBlockTime(nEdges int) units.Time {
	if nEdges <= 0 {
		return 0
	}
	return p.Fill + p.Max().Times(float64(nEdges))
}

// SimulateBlockPipeline runs nEdges through the four stages on the DES:
// each stage is a FIFO resource, edge i enters stage s only after edge i
// left stage s-1 and edge i-1 left stage s. Returns the completion time
// of the last edge.
func SimulateBlockPipeline(p PipelineStages, nEdges int) (units.Time, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if nEdges <= 0 {
		return 0, nil
	}
	eng := sim.New(0)
	stages := []*sim.Resource{
		sim.NewResource(eng), // edge fetch
		sim.NewResource(eng), // source read
		sim.NewResource(eng), // process
		sim.NewResource(eng), // destination RMW
	}
	service := []units.Time{p.EdgeFetch, p.SrcRead, p.Process, p.DstRMW}
	var last units.Time
	for i := 0; i < nEdges; i++ {
		// The first edge's data arrives after the fill latency.
		ready := p.Fill
		for s, res := range stages {
			_, end := res.AcquireAt(ready, service[s])
			ready = end
		}
		last = ready
	}
	if _, err := eng.Run(); err != nil {
		return 0, err
	}
	return last, nil
}

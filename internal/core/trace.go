package core

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/partition"
)

// Trace generation: the HyVE controller's off-chip access stream for one
// iteration of Algorithm 2, with byte-exact addresses against the §3.4
// memory images. This is the "address mapping" role of the hybrid memory
// controller (§3.3) made inspectable: every edge-memory block read and
// every vertex-memory interval transfer, in schedule order.
//
// The trace exists for validation and analysis: the tests replay it and
// require its traffic to reconcile exactly with the cost simulator's
// Detail counters, and its addresses to stay inside the images.

// AccessKind classifies one off-chip transaction of the controller.
type AccessKind int

// Controller access kinds.
const (
	// EdgeBlockRead streams one block from the edge memory.
	EdgeBlockRead AccessKind = iota
	// SourceLoad moves a source interval from off-chip vertex memory to
	// a PU's on-chip source section.
	SourceLoad
	// DestLoad moves a destination interval on-chip.
	DestLoad
	// DestWriteback moves a destination interval back off-chip.
	DestWriteback
)

func (k AccessKind) String() string {
	switch k {
	case EdgeBlockRead:
		return "edge-block-read"
	case SourceLoad:
		return "source-load"
	case DestLoad:
		return "dest-load"
	case DestWriteback:
		return "dest-writeback"
	default:
		return fmt.Sprintf("AccessKind(%d)", int(k))
	}
}

// Access is one controller transaction.
type Access struct {
	Kind AccessKind
	// Addr is the byte address in the owning image (edge image for
	// EdgeBlockRead, vertex image otherwise).
	Addr int64
	// Bytes is the payload size (headers excluded).
	Bytes int64
	// PU is the processing unit served (-1 for broadcast/controller).
	PU int
	// Block / Interval identify the object.
	BlockX, BlockY int // EdgeBlockRead
	Interval       int // vertex transfers
	// Step and SuperBlock locate the access in the schedule.
	SuperBlockX, SuperBlockY, Step int
}

// TraceIteration walks one iteration of Algorithm 2 under cfg and calls
// visit for every off-chip access, in issue order. The schedule is
// identical to the cost simulator's; the addresses come from the built
// memory images.
func TraceIteration(cfg Config, w Workload, visit func(Access)) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	s, err := newSim(cfg, w)
	if err != nil {
		return err
	}
	if s.onchip == nil {
		return fmt.Errorf("core: tracing requires the on-chip hierarchy (config %s has none)", cfg.Name)
	}
	// The production layout stores blocks in schedule order, so the
	// traced edge reads form one sequential sweep per iteration.
	_, edgeOffsets, err := BuildEdgeImageScheduled(s.grid, cfg.NumPUs)
	if err != nil {
		return err
	}
	vtxOffsets := vertexImageOffsets(s.grid.Assigner, s.valueBytes)

	n := s.cfg.NumPUs
	pn := s.p / n
	edgeSize := int64(graph.EdgeBytes)
	if w.Program.NeedsWeights() {
		edgeSize += 4
	}

	intervalBytes := func(i int) int64 {
		return int64(s.grid.Assigner.IntervalLen(i)) * int64(s.valueBytes)
	}
	emitVertex := func(kind AccessKind, interval, pu, sbx, sby, step int) {
		visit(Access{
			Kind: kind, Addr: vtxOffsets[interval] + VertexImageHeaderBytes,
			Bytes: intervalBytes(interval), PU: pu, Interval: interval,
			SuperBlockX: sbx, SuperBlockY: sby, Step: step,
		})
	}

	for y := 0; y < pn; y++ {
		for x := 0; x < pn; x++ {
			if (s.cfg.DataSharing && x == 0) || !s.cfg.DataSharing {
				for i := 0; i < n; i++ {
					emitVertex(DestLoad, y*n+i, i, x, y, -1)
				}
			}
			if s.cfg.DataSharing {
				for i := 0; i < n; i++ {
					emitVertex(SourceLoad, x*n+i, i, x, y, -1)
				}
			}
			for step := 0; step < n; step++ {
				if !s.cfg.DataSharing {
					for p := 0; p < n; p++ {
						emitVertex(SourceLoad, x*n+(p+step)%n, p, x, y, step)
					}
				}
				for p := 0; p < n; p++ {
					src := x*n + (p+step)%n
					dst := y*n + p
					blkLen := s.grid.BlockLen(src, dst)
					if blkLen == 0 {
						continue
					}
					visit(Access{
						Kind: EdgeBlockRead,
						Addr: edgeOffsets[src*s.p+dst] + EdgeImageHeaderBytes,
						// The weighted edge size accounts for the weight
						// stream the image stores alongside (weights are
						// modeled, not serialized, in the image).
						Bytes: int64(blkLen) * edgeSize,
						PU:    p, BlockX: src, BlockY: dst,
						SuperBlockX: x, SuperBlockY: y, Step: step,
					})
				}
			}
			if !s.cfg.DataSharing || x == pn-1 {
				for i := 0; i < n; i++ {
					emitVertex(DestWriteback, y*n+i, i, x, y, -1)
				}
			}
		}
	}
	return nil
}

// vertexImageOffsets computes per-interval start offsets of a vertex
// image with the given value width (BuildVertexImage uses 8-byte values;
// the trace generalizes to the program's width).
func vertexImageOffsets(asg partition.Assigner, valueBytes int) []int64 {
	p := asg.P()
	offsets := make([]int64, p+1)
	var at int64
	for i := 0; i < p; i++ {
		offsets[i] = at
		at += VertexImageHeaderBytes + int64(asg.IntervalLen(i))*int64(valueBytes)
	}
	offsets[p] = at
	return offsets
}

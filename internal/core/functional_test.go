package core

import (
	"testing"

	"repro/internal/algo"
	"repro/internal/graph"
	"repro/internal/parallel"
	"repro/internal/partition"
)

// The block-parallel functional execution must be bit-identical to the
// sequential schedule at every worker count, for every program — the
// owner-computes argument (§4.2) made testable.
func TestBlockParallelFunctionalBitIdentical(t *testing.T) {
	for _, name := range []string{"PR", "BFS", "CC", "SSSP", "SpMV"} {
		t.Run(name, func(t *testing.T) {
			w := testWorkload(t, name)
			seqCfg := HyVEOpt()
			seqCfg.Parallelism = 1
			want, err := RunFunctional(seqCfg, w)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 3, 8, 0} {
				cfg := HyVEOpt()
				cfg.Parallelism = workers
				got, err := RunFunctional(cfg, w)
				if err != nil {
					t.Fatalf("Parallelism=%d: %v", workers, err)
				}
				if err := algo.CompareResults("block-parallel vs sequential", got, want); err != nil {
					t.Fatalf("Parallelism=%d: %v", workers, err)
				}
			}
		})
	}
}

// Small, ragged, and SRAM-less machine shapes exercise schedules where
// blocks are tiny or P degenerates to N.
func TestBlockParallelFunctionalOddShapes(t *testing.T) {
	g, err := graph.GenerateRMAT(100, 700, graph.DefaultRMAT, 9)
	if err != nil {
		t.Fatal(err)
	}
	w := Workload{DatasetName: "odd", Graph: g, Program: algo.NewCC()}
	for _, base := range []Config{HyVEOpt(), AccDRAM()} {
		for _, pus := range []int{2, 4} {
			seqCfg := base
			seqCfg.NumPUs = pus
			if seqCfg.UseOnChipSRAM {
				seqCfg.SRAMBytes = 1024 // force many intervals per PU
			}
			seqCfg.Parallelism = 1
			want, err := RunFunctional(seqCfg, w)
			if err != nil {
				t.Fatal(err)
			}
			parCfg := seqCfg
			parCfg.Parallelism = 8
			got, err := RunFunctional(parCfg, w)
			if err != nil {
				t.Fatal(err)
			}
			if err := algo.CompareResults("odd-shape parallel", got, want); err != nil {
				t.Fatalf("%s N=%d: %v", base.Name, pus, err)
			}
		}
	}
}

// Race hammer: many concurrent block-parallel functional runs over a
// shared workload. Run under -race this proves the worker pool's writes
// stay confined to owned destination intervals and per-worker stats.
func TestBlockParallelFunctionalRaceHammer(t *testing.T) {
	w := testWorkload(t, "PR")
	cfg := HyVEOpt()
	cfg.Parallelism = 4
	want, err := RunFunctional(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	results := make([]*algo.Result, 6)
	err = parallel.ForEach(6, 6, func(i int) error {
		r, err := RunFunctional(cfg, w)
		results[i] = r
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if err := algo.CompareResults("hammer run", r, want); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
}

// One Machine must serve the functional pre-run and the cost run off a
// single partition build, memoizing both.
func TestMachineSharesGrid(t *testing.T) {
	w := testWorkload(t, "PR")
	cfg := HyVEOpt()
	m, err := NewMachine(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	grid := m.Grid()
	if grid == nil || m.P() <= 0 {
		t.Fatal("machine has no grid")
	}
	fr, err := m.RunFunctional()
	if err != nil {
		t.Fatal(err)
	}
	sr, err := m.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	if m.Grid() != grid {
		t.Error("grid rebuilt between runs")
	}
	fr2, _ := m.RunFunctional()
	sr2, _ := m.Simulate()
	if fr2 != fr || sr2 != sr {
		t.Error("machine runs not memoized")
	}

	// Standalone entry points must agree with the machine's shared runs.
	wantF, err := RunFunctional(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if err := algo.CompareResults("machine vs standalone functional", fr, wantF); err != nil {
		t.Fatal(err)
	}
	wantS := simulate(t, cfg, w)
	if sr.Report.Time != wantS.Report.Time || sr.Report.Energy.Total() != wantS.Report.Energy.Total() {
		t.Errorf("machine simulate diverges: time %v vs %v, energy %v vs %v",
			sr.Report.Time, wantS.Report.Time, sr.Report.Energy.Total(), wantS.Report.Energy.Total())
	}

	// The machine's grid is the same partition Grid() reports.
	pg, p, err := Grid(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if p != m.P() || pg.NumEdges() != grid.NumEdges() {
		t.Errorf("Grid() disagrees with machine: P %d vs %d, edges %d vs %d",
			p, m.P(), pg.NumEdges(), grid.NumEdges())
	}
	var _ *partition.Grid = pg
}

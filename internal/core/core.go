package core

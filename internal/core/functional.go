package core

import (
	"repro/internal/algo"
	"repro/internal/partition"
)

// RunFunctional executes the workload's program through the exact
// Algorithm 2 super-block schedule — same partition, same block order,
// same step interleaving as the cost simulator — and returns the
// functional result. Because the execution model is synchronous
// (sources read-only during a super block, §4.2), this must produce
// bit-identical values to the flat algo.Run oracle; the tests enforce
// that equivalence, which is the correctness argument for the
// data-sharing schedule.
func RunFunctional(cfg Config, w Workload) (*algo.Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s, err := newSim(cfg, w)
	if err != nil {
		return nil, err
	}
	return s.runFunctional()
}

func (s *machine) runFunctional() (*algo.Result, error) {
	st, err := algo.NewState(s.w.Program, s.w.Graph)
	if err != nil {
		return nil, err
	}
	n := s.cfg.NumPUs
	pn := s.p / n
	for !st.Done() {
		if st.Iteration > st.MaxIterations() {
			return nil, errNoConvergence(s.w.Program.Name(), st.Iteration)
		}
		st.BeginIteration()
		for y := 0; y < pn; y++ {
			for x := 0; x < pn; x++ {
				for step := 0; step < n; step++ {
					for p := 0; p < n; p++ {
						s.processBlock(st, x*n+(p+step)%n, y*n+p)
					}
				}
			}
		}
		st.EndIteration()
	}
	return &algo.Result{
		Values:         st.Values,
		Iterations:     st.Iteration,
		EdgesProcessed: st.EdgesProcessed,
		ActiveEdges:    st.ActiveEdges,
		UpdatedGathers: st.UpdatedGathers,
		Converged:      st.Converged,
	}, nil
}

func (s *machine) processBlock(st *algo.State, src, dst int) {
	edges := s.grid.Block(src, dst)
	weights := s.grid.BlockWeights(src, dst)
	for i, e := range edges {
		w := float32(1)
		if weights != nil {
			w = weights[i]
		}
		st.ProcessEdge(e, w)
	}
}

// Grid exposes the simulator's partition for inspection in tests and
// experiments.
func Grid(cfg Config, w Workload) (*partition.Grid, int, error) {
	if err := cfg.Validate(); err != nil {
		return nil, 0, err
	}
	s, err := newSim(cfg, w)
	if err != nil {
		return nil, 0, err
	}
	return s.grid, s.p, nil
}

type convergenceError struct {
	prog  string
	iters int
}

func errNoConvergence(prog string, iters int) error {
	return &convergenceError{prog: prog, iters: iters}
}

func (e *convergenceError) Error() string {
	return "core: " + e.prog + " failed to converge through the blocked schedule"
}

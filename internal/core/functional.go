package core

import (
	"sync"

	"repro/internal/algo"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/partition"
)

// RunFunctional executes the workload's program through the exact
// Algorithm 2 super-block schedule — same partition, same block order,
// same step interleaving as the cost simulator — and returns the
// functional result. Because the execution model is synchronous
// (sources read-only during a super block, §4.2), this must produce
// bit-identical values to the flat algo.Run oracle; the tests enforce
// that equivalence, which is the correctness argument for the
// data-sharing schedule.
//
// The n blocks of one schedule step update owner-disjoint destination
// intervals (§4.2 owner-computes: PU p owns interval y·n+p), so they
// stream on cfg.Parallelism workers with a barrier per step; each
// destination still sees its edges in the canonical schedule order, so
// the result is bit-identical at every worker count.
func RunFunctional(cfg Config, w Workload) (*algo.Result, error) {
	m, err := NewMachine(cfg, w)
	if err != nil {
		return nil, err
	}
	return m.RunFunctional()
}

func (s *machine) runFunctional() (*algo.Result, error) {
	st, err := algo.NewState(s.w.Program, s.w.Graph)
	if err != nil {
		return nil, err
	}
	n := s.cfg.NumPUs
	pn := s.p / n
	workers := parallel.Workers(s.cfg.Parallelism)
	if workers > n {
		workers = n
	}
	// Per-PU counter slots, merged after each step's barrier; reused
	// across steps (each step overwrites every slot it touches).
	stats := make([]algo.KernelStats, n)
	for !st.Done() {
		if st.Iteration > st.MaxIterations() {
			return nil, errNoConvergence(s.w.Program.Name(), st.Iteration)
		}
		st.BeginIteration()
		for y := 0; y < pn; y++ {
			for x := 0; x < pn; x++ {
				for step := 0; step < n; step++ {
					err := parallel.ForEach(workers, n, func(p int) error {
						var ks algo.KernelStats
						src, dst := x*n+(p+step)%n, y*n+p
						st.ProcessEdgesInto(&ks, s.grid.Block(src, dst), s.grid.BlockWeights(src, dst))
						stats[p] = ks
						return nil
					})
					if err != nil {
						return nil, err
					}
					for p := 0; p < n; p++ {
						st.AddStats(stats[p])
					}
				}
			}
		}
		st.EndIteration()
	}
	return &algo.Result{
		Values:         st.Values,
		Iterations:     st.Iteration,
		EdgesProcessed: st.EdgesProcessed,
		ActiveEdges:    st.ActiveEdges,
		UpdatedGathers: st.UpdatedGathers,
		Converged:      st.Converged,
	}, nil
}

// Grid exposes the simulator's partition for inspection in tests and
// experiments.
func Grid(cfg Config, w Workload) (*partition.Grid, int, error) {
	m, err := NewMachine(cfg, w)
	if err != nil {
		return nil, 0, err
	}
	return m.Grid(), m.P(), nil
}

// Machine is one assembled simulator instance for a (Config, Workload)
// point: the devices, regions, and — most importantly — the partitioned
// grid are built once and shared by every run of the point. Use it when
// the same point needs both the functional pre-run and the cost run
// (the conformance harness, experiment sweeps that cross-check), which
// previously paid a full grid rebuild for each.
//
// Both runs are memoized: the machine executes each at most once, so
// accumulating internals (the power-gate statistics) stay single-run
// exact. A Machine must not be shared across goroutines without
// external synchronization beyond the memoized getters, which are
// mutex-guarded and safe.
type Machine struct {
	s *machine

	mu      sync.Mutex
	funcRes *algo.Result
	funcErr error
	funcRun bool
	simRes  *Result
	simErr  error
	simRun  bool
}

// NewMachine validates the point and assembles the simulator once.
func NewMachine(cfg Config, w Workload) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s, err := newSim(cfg, w)
	if err != nil {
		return nil, err
	}
	return &Machine{s: s}, nil
}

// Grid returns the shared partitioned graph.
func (m *Machine) Grid() *partition.Grid { return m.s.grid }

// P returns the interval count the machine chose.
func (m *Machine) P() int { return m.s.p }

// Config returns the configuration the machine was assembled for.
func (m *Machine) Config() Config { return m.s.cfg }

// Workload returns the workload the machine was assembled for.
func (m *Machine) Workload() Workload { return m.s.w }

// RunFunctional runs (once; memoized) the blocked functional execution.
func (m *Machine) RunFunctional() (*algo.Result, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.funcRun {
		m.funcRes, m.funcErr = m.s.runFunctional()
		m.funcRun = true
	}
	return m.funcRes, m.funcErr
}

// Simulate runs (once; memoized) the cost simulation.
func (m *Machine) Simulate() (*Result, error) {
	return m.SimulateTraced(nil)
}

// SimulateTraced is Simulate with a parent span for the run's
// per-iteration phase spans (see EmitPhaseSpans): the cache scheduler
// passes its point span so traces nest run → experiment → point →
// phase. The parent only matters on the first call — the run is
// memoized — and a nil parent (or disabled tracing) costs nothing.
func (m *Machine) SimulateTraced(parent *obs.SpanHandle) (*Result, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.simRun {
		m.s.traceParent = parent
		m.simRes, m.simErr = m.s.run()
		m.s.traceParent = nil
		m.simRun = true
	}
	return m.simRes, m.simErr
}

type convergenceError struct {
	prog  string
	iters int
}

func errNoConvergence(prog string, iters int) error {
	return &convergenceError{prog: prog, iters: iters}
}

func (e *convergenceError) Error() string {
	return "core: " + e.prog + " failed to converge through the blocked schedule"
}

package core

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/units"
)

// Request-accurate execution of one super block (§3.3's hybrid memory
// controller made explicit): every PU issues per-edge requests through
// DES resources — the shared edge channel, the shared off-chip vertex
// channel, each PU's on-chip SRAM port, each PU's arithmetic pipeline —
// and the §3.3 stall rule is enforced structurally: interval transfers
// occupy the SRAM port, so on-chip accesses issued "during scheduling"
// queue behind them.
//
// The block-level cost simulator prices the same schedule with closed
// forms (max-of-stages × edges, serialized transfers). This module exists
// to check that algebra against request-level contention; the tests
// require agreement within a tight band on real workloads.

// SuperBlockTiming is the outcome of a request-accurate super-block run.
type SuperBlockTiming struct {
	// Total is the makespan from first load to last writeback.
	Total units.Time
	// LoadTime, ProcessTime, WritebackTime decompose it at barriers.
	LoadTime      units.Time
	ProcessTime   units.Time
	WritebackTime units.Time
	// Edges processed across all PUs and steps.
	Edges int64
}

// SimulateSuperBlockDES executes super block (sbx, sby) of the workload
// under cfg at request granularity and returns its timing.
func SimulateSuperBlockDES(cfg Config, w Workload, sbx, sby int) (*SuperBlockTiming, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m, err := newSim(cfg, w)
	if err != nil {
		return nil, err
	}
	if m.onchip == nil {
		return nil, fmt.Errorf("core: request-level simulation needs the on-chip hierarchy")
	}
	n := cfg.NumPUs
	pn := m.p / n
	if sbx < 0 || sby < 0 || sbx >= pn || sby >= pn {
		return nil, fmt.Errorf("core: super block (%d,%d) out of %d×%d", sbx, sby, pn, pn)
	}

	eng := sim.New(0)
	edgeChannel := sim.NewResource(eng)
	vtxChannel := sim.NewResource(eng)
	// The on-chip vertex memory has a source section and a destination
	// section (§3.2) — independent ports.
	srcPort := make([]*sim.Resource, n)
	dstPort := make([]*sim.Resource, n)
	puPipe := make([]*sim.Resource, n)
	for i := 0; i < n; i++ {
		srcPort[i] = sim.NewResource(eng)
		dstPort[i] = sim.NewResource(eng)
		puPipe[i] = sim.NewResource(eng)
	}

	// Per-operation service times from the same device models the cost
	// simulator uses.
	edgeSize := int64(graph.EdgeBytes)
	if w.Program.NeedsWeights() {
		edgeSize += 4
	}
	edgesPerLine := m.edgeReg.LineBytes() / int(edgeSize)
	if edgesPerLine < 1 {
		edgesPerLine = 1
	}
	edgeLineT := m.edgeReg.Read(true).Latency
	srcReadT := m.onchip.Read(false).Latency.Times(float64(m.words))
	dstRMWT := (m.onchip.Read(false).Latency + m.onchip.Write(false).Latency).Times(float64(m.words))
	puT := m.pu.Op().Latency

	// transfer occupies the vertex channel AND the touched SRAM section's
	// port for the interval's duration (the §3.3 stall).
	transfer := func(after units.Time, port *sim.Resource, interval int, write bool) units.Time {
		bytes := m.intervalBytes(interval)
		lines := (bytes + int64(m.vtxReg.LineBytes()) - 1) / int64(m.vtxReg.LineBytes())
		per := units.MaxTime(m.vtxReg.Read(true).Latency, m.onchip.Cycle())
		if write {
			per = units.MaxTime(m.vtxReg.Write(true).Latency, m.onchip.Cycle())
		}
		dur := per.Times(float64(lines))
		_, chanEnd := vtxChannel.AcquireAt(after, dur)
		// Mirror the occupancy on the section port so PU-side requests
		// stall behind it.
		port.AcquireAt(chanEnd-dur, dur)
		return chanEnd
	}

	st := &SuperBlockTiming{}
	var clock units.Time // barrier clock

	// --- Loading phase.
	loadEnd := clock
	for i := 0; i < n; i++ {
		end := transfer(clock, dstPort[i], sby*n+i, false) // destination interval
		if end > loadEnd {
			loadEnd = end
		}
	}
	for i := 0; i < n; i++ {
		end := transfer(clock, srcPort[i], sbx*n+i, false) // source interval
		if end > loadEnd {
			loadEnd = end
		}
	}
	st.LoadTime = loadEnd - clock
	clock = loadEnd

	// --- Steps.
	processStart := clock
	for step := 0; step < n; step++ {
		stepEnd := clock
		for p := 0; p < n; p++ {
			src := sbx*n + (p+step)%n
			dst := sby*n + p
			blk := m.grid.BlockLen(src, dst)
			if blk == 0 {
				continue
			}
			st.Edges += int64(blk)
			ready := clock
			var done units.Time
			for e := 0; e < blk; e++ {
				// One edge-line fetch feeds edgesPerLine edges.
				if e%edgesPerLine == 0 {
					_, lineEnd := edgeChannel.AcquireAt(ready, edgeLineT)
					ready = lineEnd
				}
				_, srcEnd := srcPort[p].AcquireAt(ready, srcReadT)
				_, opEnd := puPipe[p].AcquireAt(srcEnd, puT)
				_, dstEnd := dstPort[p].AcquireAt(opEnd, dstRMWT)
				done = dstEnd
			}
			if done > stepEnd {
				stepEnd = done
			}
		}
		// Synchronizing barrier (Algorithm 2 line 12).
		clock = stepEnd + cfg.SyncOverhead
	}
	st.ProcessTime = clock - processStart

	// --- Writeback phase.
	wbEnd := clock
	for i := 0; i < n; i++ {
		end := transfer(clock, dstPort[i], sby*n+i, true)
		if end > wbEnd {
			wbEnd = end
		}
	}
	st.WritebackTime = wbEnd - clock
	st.Total = wbEnd
	if _, err := eng.Run(); err != nil {
		return nil, err
	}
	return st, nil
}

// closedFormSuperBlock assembles the block-level model's estimate for
// the same super block (data-sharing schedule, loads serialized on the
// channel, steps bounded by the per-edge stage maximum), for the
// cross-check tests.
func closedFormSuperBlock(cfg Config, w Workload, sbx, sby int) (units.Time, error) {
	m, err := newSim(cfg, w)
	if err != nil {
		return 0, err
	}
	n := cfg.NumPUs
	stg := m.stages()
	var total units.Time
	for i := 0; i < n; i++ {
		t, _, _ := m.transferCost(m.intervalBytes(sby*n+i), false)
		total += t
		t, _, _ = m.transferCost(m.intervalBytes(sbx*n+i), false)
		total += t
	}
	for step := 0; step < n; step++ {
		var stepMax units.Time
		for p := 0; p < n; p++ {
			blk := m.grid.BlockLen(sbx*n+(p+step)%n, sby*n+p)
			if bt := stg.perEdge.Times(float64(blk)); bt > stepMax {
				stepMax = bt
			}
		}
		total += stepMax + cfg.SyncOverhead
	}
	for i := 0; i < n; i++ {
		t, _, _ := m.transferCost(m.intervalBytes(sby*n+i), true)
		total += t
	}
	return total, nil
}

package core

import (
	"math"
	"testing"

	"repro/internal/units"
)

// The block-level closed forms must agree with the request-accurate DES
// execution of the same super block. The DES resolves contention the
// closed form folds into maxima, so exact equality is not expected —
// but the band must be tight (within 25%) and the DES must never be
// faster than the closed form's steady-state bound by more than the
// schedule's slack.
func TestClosedFormMatchesRequestLevelDES(t *testing.T) {
	w := testWorkload(t, "PR")
	cfg := HyVEOpt()
	des, err := SimulateSuperBlockDES(cfg, w, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	closed, err := closedFormSuperBlock(cfg, w, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if des.Total <= 0 || closed <= 0 {
		t.Fatalf("degenerate times: des %v, closed %v", des.Total, closed)
	}
	rel := math.Abs(des.Total.Seconds()-closed.Seconds()) / closed.Seconds()
	if rel > 0.25 {
		t.Errorf("request-level %v vs closed form %v: %.0f%% apart", des.Total, closed, 100*rel)
	}
}

// Phase decomposition: loads precede processing precede writeback, and
// the phases fill the makespan.
func TestDESPhaseDecomposition(t *testing.T) {
	w := testWorkload(t, "BFS")
	des, err := SimulateSuperBlockDES(HyVE(), w, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if des.LoadTime <= 0 || des.ProcessTime <= 0 || des.WritebackTime <= 0 {
		t.Fatalf("empty phase: %+v", des)
	}
	sum := des.LoadTime + des.ProcessTime + des.WritebackTime
	if math.Abs(sum.Seconds()-des.Total.Seconds()) > 1e-15 {
		t.Errorf("phases %v do not fill makespan %v", sum, des.Total)
	}
	if des.Edges <= 0 {
		t.Error("no edges processed")
	}
}

// The §3.3 stall rule: interval transfers occupy the SRAM ports, so a
// super block's makespan grows when transfers lengthen — even with
// processing unchanged.
func TestTransferStallLengthensMakespan(t *testing.T) {
	w := testWorkload(t, "PR")
	short, err := SimulateSuperBlockDES(HyVEOpt(), w, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Same machine with a big-value program (SpMV: 8-byte values) moves
	// twice the interval bytes.
	w2 := w
	w2.Program = w.Program // same program; instead stretch via SRAM cycle:
	slow := HyVEOpt()
	slow.SRAMBytes = 32 << 20 // slower SRAM cycle lengthens transfers
	long, err := SimulateSuperBlockDES(slow, w2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if long.LoadTime <= short.LoadTime {
		t.Errorf("slower SRAM did not lengthen loads: %v vs %v", long.LoadTime, short.LoadTime)
	}
}

func TestDESValidation(t *testing.T) {
	w := testWorkload(t, "PR")
	if _, err := SimulateSuperBlockDES(AccDRAM(), w, 0, 0); err == nil {
		t.Error("SRAM-less config accepted")
	}
	if _, err := SimulateSuperBlockDES(HyVE(), w, 99, 0); err == nil {
		t.Error("out-of-range super block accepted")
	}
	bad := HyVE()
	bad.NumPUs = -1
	if _, err := SimulateSuperBlockDES(bad, w, 0, 0); err == nil {
		t.Error("invalid config accepted")
	}
}

// Every super block of a small workload stays within the agreement band.
func TestAllSuperBlocksAgree(t *testing.T) {
	w := testWorkload(t, "BFS")
	cfg := HyVEOpt()
	m, err := newSim(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	pn := m.p / cfg.NumPUs
	if pn > 4 {
		pn = 4 // bound the sweep
	}
	for x := 0; x < pn; x++ {
		for y := 0; y < pn; y++ {
			des, err := SimulateSuperBlockDES(cfg, w, x, y)
			if err != nil {
				t.Fatal(err)
			}
			closed, err := closedFormSuperBlock(cfg, w, x, y)
			if err != nil {
				t.Fatal(err)
			}
			rel := math.Abs(des.Total.Seconds()-closed.Seconds()) / closed.Seconds()
			if rel > 0.3 {
				t.Errorf("super block (%d,%d): DES %v vs closed %v (%.0f%%)", x, y, des.Total, closed, 100*rel)
			}
		}
	}
	_ = units.Time(0)
}

package core

import (
	"testing"

	"repro/internal/graph"
)

func collectTrace(t *testing.T, cfg Config, w Workload) []Access {
	t.Helper()
	var trace []Access
	if err := TraceIteration(cfg, w, func(a Access) { trace = append(trace, a) }); err != nil {
		t.Fatal(err)
	}
	return trace
}

// The trace's edge traffic must cover every block exactly once per
// iteration and reconcile byte-for-byte with the cost simulator.
func TestTraceCoversEveryBlockOnce(t *testing.T) {
	w := testWorkload(t, "PR")
	cfg := HyVEOpt()
	trace := collectTrace(t, cfg, w)
	r := simulate(t, cfg, w)

	grid, p, err := Grid(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[[2]int]int)
	var edgeBytes int64
	for _, a := range trace {
		if a.Kind != EdgeBlockRead {
			continue
		}
		seen[[2]int{a.BlockX, a.BlockY}]++
		edgeBytes += a.Bytes
	}
	for x := 0; x < p; x++ {
		for y := 0; y < p; y++ {
			want := 0
			if grid.BlockLen(x, y) > 0 {
				want = 1
			}
			if got := seen[[2]int{x, y}]; got != want {
				t.Fatalf("block (%d,%d) read %d times, want %d", x, y, got, want)
			}
		}
	}
	if edgeBytes != r.Detail.EdgeBytes {
		t.Errorf("trace edge bytes %d != simulator %d", edgeBytes, r.Detail.EdgeBytes)
	}
}

// Vertex traffic in the trace must reconcile with the Detail counters,
// for both sharing modes.
func TestTraceVertexTrafficMatchesSimulator(t *testing.T) {
	w := testWorkload(t, "PR")
	for _, sharing := range []bool{false, true} {
		cfg := HyVE()
		cfg.DataSharing = sharing
		trace := collectTrace(t, cfg, w)
		r := simulate(t, cfg, w)
		var src, dst, wb int64
		for _, a := range trace {
			switch a.Kind {
			case SourceLoad:
				src += a.Bytes
			case DestLoad:
				dst += a.Bytes
			case DestWriteback:
				wb += a.Bytes
			}
		}
		if src != r.Detail.SrcLoadBytes {
			t.Errorf("sharing=%v: trace src bytes %d != simulator %d", sharing, src, r.Detail.SrcLoadBytes)
		}
		if dst != r.Detail.DstLoadBytes {
			t.Errorf("sharing=%v: trace dst bytes %d != simulator %d", sharing, dst, r.Detail.DstLoadBytes)
		}
		if wb != r.Detail.WritebackBytes {
			t.Errorf("sharing=%v: trace writeback bytes %d != simulator %d", sharing, wb, r.Detail.WritebackBytes)
		}
		if sharing && src >= r.Detail.SrcLoadBytes*2 {
			t.Error("sharing trace should carry less source traffic")
		}
	}
}

// Every traced address must fall inside its image.
func TestTraceAddressesInBounds(t *testing.T) {
	w := testWorkload(t, "BFS")
	cfg := HyVEOpt()
	s, err := newSim(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	edgeImg, _ := BuildEdgeImage(s.grid)
	vtxOffsets := vertexImageOffsets(s.grid.Assigner, s.valueBytes)
	vtxSize := vtxOffsets[len(vtxOffsets)-1]
	for _, a := range collectTrace(t, cfg, w) {
		switch a.Kind {
		case EdgeBlockRead:
			// The image stores 8-byte edges; a weighted program's trace
			// bytes may exceed the image span, but unweighted BFS must
			// fit exactly.
			if a.Addr < 0 || a.Addr+a.Bytes > int64(len(edgeImg)) {
				t.Fatalf("edge access [%d,%d) outside image of %d bytes", a.Addr, a.Addr+a.Bytes, len(edgeImg))
			}
		default:
			if a.Addr < 0 || a.Addr+a.Bytes > vtxSize {
				t.Fatalf("%v access [%d,%d) outside vertex image of %d bytes", a.Kind, a.Addr, a.Addr+a.Bytes, vtxSize)
			}
		}
	}
}

// With data sharing, each source interval is loaded once per super
// block; without, N times (once per step).
func TestTraceSourceLoadMultiplicity(t *testing.T) {
	w := testWorkload(t, "CC")
	countLoads := func(sharing bool) map[int]int {
		cfg := HyVE()
		cfg.DataSharing = sharing
		counts := map[int]int{}
		for _, a := range collectTrace(t, cfg, w) {
			if a.Kind == SourceLoad {
				counts[a.Interval]++
			}
		}
		return counts
	}
	shared := countLoads(true)
	unshared := countLoads(false)
	for interval, n := range shared {
		if unshared[interval] != n*8 {
			t.Fatalf("interval %d: %d unshared loads vs %d shared (want 8x)", interval, unshared[interval], n)
		}
	}
}

func TestTraceRejectsNoSRAMConfigs(t *testing.T) {
	w := testWorkload(t, "PR")
	if err := TraceIteration(AccDRAM(), w, func(Access) {}); err == nil {
		t.Error("tracing a hierarchy without on-chip memory should fail")
	}
	bad := HyVE()
	bad.NumPUs = 0
	if err := TraceIteration(bad, w, func(Access) {}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestAccessKindStrings(t *testing.T) {
	for _, k := range []AccessKind{EdgeBlockRead, SourceLoad, DestLoad, DestWriteback} {
		if k.String() == "" {
			t.Error("empty access kind name")
		}
	}
	if AccessKind(9).String() == "" {
		t.Error("unknown kind name empty")
	}
	_ = graph.Edge{}
}

// Under the scheduled layout, the iteration's edge reads are one
// sequential sweep: every consecutive pair of block reads is contiguous
// up to the 12-byte block header.
func TestTraceEdgeStreamIsSequential(t *testing.T) {
	w := testWorkload(t, "PR")
	var cursor int64 = -1
	var jumps, steps int
	for _, a := range collectTrace(t, HyVEOpt(), w) {
		if a.Kind != EdgeBlockRead {
			continue
		}
		if cursor >= 0 {
			if a.Addr >= cursor && a.Addr-cursor <= EdgeImageHeaderBytes*2 {
				steps++
			} else {
				jumps++
			}
		}
		cursor = a.Addr + a.Bytes
	}
	if steps == 0 {
		t.Fatal("no block transitions observed")
	}
	if frac := float64(steps) / float64(steps+jumps); frac < 0.99 {
		t.Errorf("edge stream only %.1f%% sequential under the scheduled layout", 100*frac)
	}
}

package core

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/partition"
)

func imageFixture(t *testing.T) (*graph.Graph, partition.Assigner, *partition.Grid) {
	t.Helper()
	g, err := graph.GenerateRMAT(600, 4000, graph.DefaultRMAT, 17)
	if err != nil {
		t.Fatal(err)
	}
	asg, err := partition.NewHashed(g.NumVertices, 8)
	if err != nil {
		t.Fatal(err)
	}
	grid, err := partition.Build(g, asg)
	if err != nil {
		t.Fatal(err)
	}
	return g, asg, grid
}

func TestEdgeImageRoundTrip(t *testing.T) {
	g, _, grid := imageFixture(t)
	img, offsets := BuildEdgeImage(grid)
	// Size: P² headers + all edges.
	wantSize := int64(8*8)*EdgeImageHeaderBytes + int64(g.NumEdges())*graph.EdgeBytes
	if int64(len(img)) != wantSize {
		t.Fatalf("image size %d, want %d", len(img), wantSize)
	}
	parsed, err := ParseEdgeImage(img, 8)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.NumEdges() != g.NumEdges() {
		t.Fatalf("parsed %d edges, want %d", parsed.NumEdges(), g.NumEdges())
	}
	for x := 0; x < 8; x++ {
		for y := 0; y < 8; y++ {
			want := grid.Block(x, y)
			got := parsed.Block(x, y)
			if len(got) != len(want) {
				t.Fatalf("block (%d,%d): %d edges, want %d", x, y, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("block (%d,%d) edge %d: %v vs %v", x, y, i, got[i], want[i])
				}
			}
		}
	}
	// Offsets are monotone and end at the image size.
	for b := 0; b < 64; b++ {
		if offsets[b+1] <= offsets[b] {
			t.Fatalf("offsets not monotone at block %d", b)
		}
	}
	if offsets[64] != int64(len(img)) {
		t.Fatalf("final offset %d != image size %d", offsets[64], len(img))
	}
}

func TestEdgeImageRejectsCorruption(t *testing.T) {
	_, _, grid := imageFixture(t)
	img, _ := BuildEdgeImage(grid)
	if _, err := ParseEdgeImage(img[:len(img)-3], 8); err == nil {
		t.Error("truncated image accepted")
	}
	corrupt := append([]byte(nil), img...)
	corrupt[0] ^= 0xFF // break the first block header
	if _, err := ParseEdgeImage(corrupt, 8); err == nil {
		t.Error("corrupt header accepted")
	}
	if _, err := ParseEdgeImage(append(img, 0, 0, 0, 0), 8); err == nil {
		t.Error("trailing bytes accepted")
	}
	if _, err := ParseEdgeImage(img, 0); err == nil {
		t.Error("P=0 accepted")
	}
}

func TestVertexImageRoundTrip(t *testing.T) {
	g, asg, _ := imageFixture(t)
	values := make([]float64, g.NumVertices)
	rng := graph.NewRNG(5)
	for v := range values {
		values[v] = rng.Float64() * 100
	}
	img, offsets, err := BuildVertexImage(asg, values)
	if err != nil {
		t.Fatal(err)
	}
	wantSize := int64(8)*VertexImageHeaderBytes + int64(g.NumVertices)*8
	if int64(len(img)) != wantSize {
		t.Fatalf("image size %d, want %d", len(img), wantSize)
	}
	got, err := ParseVertexImage(img, asg)
	if err != nil {
		t.Fatal(err)
	}
	for v := range values {
		if got[v] != values[v] {
			t.Fatalf("vertex %d: %v vs %v", v, got[v], values[v])
		}
	}
	if offsets[8] != int64(len(img)) {
		t.Fatalf("final offset %d != size %d", offsets[8], len(img))
	}
}

func TestVertexImageValidation(t *testing.T) {
	_, asg, _ := imageFixture(t)
	if _, _, err := BuildVertexImage(asg, make([]float64, 3)); err == nil {
		t.Error("wrong value count accepted")
	}
	values := make([]float64, asg.NumVertices())
	img, _, err := BuildVertexImage(asg, values)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseVertexImage(img[:10], asg); err == nil {
		t.Error("truncated vertex image accepted")
	}
	corrupt := append([]byte(nil), img...)
	corrupt[0] = 7 // wrong interval index
	if _, err := ParseVertexImage(corrupt, asg); err == nil {
		t.Error("corrupt interval header accepted")
	}
	if _, err := ParseVertexImage(append(img, 1), asg); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestEdgeAddressMapping(t *testing.T) {
	_, _, grid := imageFixture(t)
	img, offsets := BuildEdgeImage(grid)
	// The address of each block's first edge must point at that edge's
	// bytes in the image.
	for x := 0; x < 8; x++ {
		for y := 0; y < 8; y++ {
			blk := grid.Block(x, y)
			if len(blk) == 0 {
				continue
			}
			addr, err := EdgeAddress(offsets, 8, x, y)
			if err != nil {
				t.Fatal(err)
			}
			src := uint32(img[addr]) | uint32(img[addr+1])<<8 | uint32(img[addr+2])<<16 | uint32(img[addr+3])<<24
			if src != blk[0].Src {
				t.Fatalf("block (%d,%d) address %d points at src %d, want %d", x, y, addr, src, blk[0].Src)
			}
		}
	}
	if _, err := EdgeAddress(offsets, 8, 8, 0); err == nil {
		t.Error("out-of-grid block accepted")
	}
	if _, err := EdgeAddress(offsets, 8, -1, 0); err == nil {
		t.Error("negative block accepted")
	}
}

// The scheduled layout must cover every block exactly once and make the
// traced iteration a sequential sweep.
func TestScheduleBlockOrderIsPermutation(t *testing.T) {
	for _, pn := range [][2]int{{8, 8}, {16, 8}, {32, 8}, {24, 4}} {
		p, n := pn[0], pn[1]
		order := ScheduleBlockOrder(p, n)
		if len(order) != p*p {
			t.Fatalf("P=%d N=%d: order has %d entries, want %d", p, n, len(order), p*p)
		}
		seen := make([]bool, p*p)
		for _, b := range order {
			if b < 0 || b >= p*p || seen[b] {
				t.Fatalf("P=%d N=%d: order not a permutation at %d", p, n, b)
			}
			seen[b] = true
		}
	}
}

func TestScheduledImageRoundTrip(t *testing.T) {
	g, _, grid := imageFixture(t)
	img, offsets, err := BuildEdgeImageScheduled(grid, 8)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseEdgeImage(img, 8)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.NumEdges() != g.NumEdges() {
		t.Fatalf("parsed %d edges, want %d", parsed.NumEdges(), g.NumEdges())
	}
	for x := 0; x < 8; x++ {
		for y := 0; y < 8; y++ {
			want := grid.Block(x, y)
			got := parsed.Block(x, y)
			if len(got) != len(want) {
				t.Fatalf("block (%d,%d): %d edges, want %d", x, y, len(got), len(want))
			}
		}
	}
	// Offsets in schedule order are strictly increasing.
	order := ScheduleBlockOrder(8, 8)
	var prev int64 = -1
	for _, b := range order {
		if offsets[b] <= prev {
			t.Fatalf("scheduled offsets not increasing at block %d", b)
		}
		prev = offsets[b]
	}
	if _, _, err := BuildEdgeImageScheduled(grid, 3); err == nil {
		t.Error("P not multiple of N accepted")
	}
}

// Package partition implements the interval-block (grid) partitioning at
// the heart of HyVE's data layout (paper §2.1, Fig. 1): vertices are
// divided into P intervals and edges into P² blocks, where block B(x,y)
// holds the edges whose source lies in interval x and destination in
// interval y. It also provides the hash-based interval assignment the
// paper borrows from ForeGraph/GraphH for load balance, block-occupancy
// statistics (Table 1), and the capacity math that picks P from the
// on-chip SRAM size.
package partition

import (
	"fmt"

	"repro/internal/graph"
)

// Assigner maps vertices to intervals. Implementations must form a
// partition: every vertex belongs to exactly one interval, and
// IndexWithin gives its dense position inside that interval (the on-chip
// vertex memory address).
type Assigner interface {
	// P returns the number of intervals.
	P() int
	// NumVertices returns the size of the vertex universe.
	NumVertices() int
	// IntervalOf returns the interval of v, in [0, P).
	IntervalOf(v graph.VertexID) int
	// IndexWithin returns v's dense index inside its interval.
	IndexWithin(v graph.VertexID) int
	// IntervalLen returns the number of vertices in interval i.
	IntervalLen(i int) int
	// VertexAt is the inverse of (IntervalOf, IndexWithin).
	VertexAt(interval, index int) graph.VertexID
}

// Contiguous assigns interval i the index range
// [i·ceil(V/P), (i+1)·ceil(V/P)): the straightforward "partitioned
// according to indices" scheme of §2.1. Natural-graph skew can unbalance
// it, which is exactly why the paper adopts hashing; both are provided so
// the imbalance is measurable.
type Contiguous struct {
	numVertices, p, span int
}

// NewContiguous builds a contiguous assigner with p intervals.
func NewContiguous(numVertices, p int) (*Contiguous, error) {
	if err := checkPartitionArgs(numVertices, p); err != nil {
		return nil, err
	}
	span := (numVertices + p - 1) / p
	return &Contiguous{numVertices: numVertices, p: p, span: span}, nil
}

// P implements Assigner.
func (c *Contiguous) P() int { return c.p }

// NumVertices implements Assigner.
func (c *Contiguous) NumVertices() int { return c.numVertices }

// IntervalOf implements Assigner.
func (c *Contiguous) IntervalOf(v graph.VertexID) int { return int(v) / c.span }

// IndexWithin implements Assigner.
func (c *Contiguous) IndexWithin(v graph.VertexID) int { return int(v) % c.span }

// IntervalLen implements Assigner.
func (c *Contiguous) IntervalLen(i int) int {
	lo := i * c.span
	hi := lo + c.span
	if hi > c.numVertices {
		hi = c.numVertices
	}
	if hi < lo {
		return 0
	}
	return hi - lo
}

// VertexAt implements Assigner.
func (c *Contiguous) VertexAt(interval, index int) graph.VertexID {
	return graph.VertexID(interval*c.span + index)
}

// Hashed assigns vertex v to interval v mod P, the ForeGraph/GraphH-style
// balanced assignment the paper uses "to ensure the balance of workloads
// among processing units" (§4.3). Striding spreads consecutive vertices —
// and in particular the low-index hubs of natural and R-MAT graphs —
// across intervals, while v/P stays a dense on-chip address.
type Hashed struct {
	numVertices, p int
}

// NewHashed builds a hashed (strided) assigner with p intervals.
func NewHashed(numVertices, p int) (*Hashed, error) {
	if err := checkPartitionArgs(numVertices, p); err != nil {
		return nil, err
	}
	return &Hashed{numVertices: numVertices, p: p}, nil
}

// P implements Assigner.
func (h *Hashed) P() int { return h.p }

// NumVertices implements Assigner.
func (h *Hashed) NumVertices() int { return h.numVertices }

// IntervalOf implements Assigner.
func (h *Hashed) IntervalOf(v graph.VertexID) int { return int(v) % h.p }

// IndexWithin implements Assigner.
func (h *Hashed) IndexWithin(v graph.VertexID) int { return int(v) / h.p }

// IntervalLen implements Assigner: interval i holds the vertex ids
// ≡ i (mod p) below numVertices.
func (h *Hashed) IntervalLen(i int) int {
	n, p := h.numVertices, h.p
	return (n - i + p - 1) / p
}

// VertexAt implements Assigner.
func (h *Hashed) VertexAt(interval, index int) graph.VertexID {
	return graph.VertexID(index*h.p + interval)
}

func checkPartitionArgs(numVertices, p int) error {
	if numVertices <= 0 {
		return fmt.Errorf("partition: non-positive vertex count %d", numVertices)
	}
	if p <= 0 {
		return fmt.Errorf("partition: non-positive interval count %d", p)
	}
	if p > numVertices {
		return fmt.Errorf("partition: more intervals (%d) than vertices (%d)", p, numVertices)
	}
	return nil
}

// ChooseP returns the number of intervals needed so one interval's vertex
// values fit in each on-chip vertex memory section, rounded up to a
// multiple of the PU count N (Algorithm 2 requires P ≡ 0 mod N).
//
// Per §3.2 the on-chip vertex memory of a PU holds a source section and a
// destination section, so each section gets sramBytes/2.
func ChooseP(numVertices int64, sramBytes int, valueBytes int, numPUs int) (int, error) {
	if numVertices <= 0 || sramBytes <= 0 || valueBytes <= 0 || numPUs <= 0 {
		return 0, fmt.Errorf("partition: invalid ChooseP args (V=%d sram=%d value=%d N=%d)",
			numVertices, sramBytes, valueBytes, numPUs)
	}
	sectionVerts := int64(sramBytes / 2 / valueBytes)
	if sectionVerts == 0 {
		return 0, fmt.Errorf("partition: SRAM section smaller than one vertex value")
	}
	p := int((numVertices + sectionVerts - 1) / sectionVerts)
	if p < numPUs {
		p = numPUs
	}
	if rem := p % numPUs; rem != 0 {
		p += numPUs - rem
	}
	return p, nil
}

package partition

import (
	"reflect"
	"testing"

	"repro/internal/graph"
)

// sequentialReference rebuilds the grid the way the pre-parallel Build
// did — one interface-dispatched counting sort — as the byte-identity
// oracle for BuildParallel.
func sequentialReference(t *testing.T, g *graph.Graph, a Assigner) *Grid {
	t.Helper()
	p := a.P()
	nb := p * p
	offsets := make([]int64, nb+1)
	for _, e := range g.Edges {
		offsets[blockID(a, e)+1]++
	}
	for b := 0; b < nb; b++ {
		offsets[b+1] += offsets[b]
	}
	edges := make([]graph.Edge, len(g.Edges))
	var weights []float32
	if g.Weights != nil {
		weights = make([]float32, len(g.Edges))
	}
	next := make([]int64, nb)
	copy(next, offsets[:nb])
	for i, e := range g.Edges {
		b := blockID(a, e)
		at := next[b]
		edges[at] = e
		if weights != nil {
			weights[at] = g.Weights[i]
		}
		next[b]++
	}
	return &Grid{Assigner: a, edges: edges, weights: weights, offsets: offsets}
}

func gridsIdentical(t *testing.T, label string, got, want *Grid) {
	t.Helper()
	if !reflect.DeepEqual(got.edges, want.edges) {
		t.Fatalf("%s: edge layout differs", label)
	}
	if !reflect.DeepEqual(got.weights, want.weights) {
		t.Fatalf("%s: weight layout differs", label)
	}
	if !reflect.DeepEqual(got.offsets, want.offsets) {
		t.Fatalf("%s: block offsets differ", label)
	}
}

// BuildParallel must produce a byte-identical Grid to the sequential
// counting sort at every worker count, for both assigners, power-of-two
// and ragged interval counts, weighted and unweighted graphs.
func TestBuildParallelByteIdentical(t *testing.T) {
	unweighted := testGraph(t)
	weighted := unweighted.Clone()
	graph.AttachUniformWeights(weighted, 8, 3)
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{{"unweighted", unweighted}, {"weighted", weighted}} {
		for _, p := range []int{1, 7, 8, 32, 100} {
			for name, a := range assigners(t, tc.g.NumVertices, p) {
				want := sequentialReference(t, tc.g, a)
				for _, workers := range []int{1, 2, 3, 8, 0} {
					got, err := BuildParallel(tc.g, a, workers)
					if err != nil {
						t.Fatal(err)
					}
					label := tc.name + "/" + name
					if got.P() != p {
						t.Fatalf("%s: P=%d, want %d", label, got.P(), p)
					}
					gridsIdentical(t, label, got, want)
				}
			}
		}
	}
}

// Degenerate inputs: an edgeless graph and a single-vertex graph must
// still produce well-formed (empty) grids at any worker count.
func TestBuildParallelDegenerate(t *testing.T) {
	for _, g := range []*graph.Graph{
		{NumVertices: 1},
		{NumVertices: 16},
	} {
		a, err := NewHashed(g.NumVertices, g.NumVertices)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 4} {
			gr, err := BuildParallel(g, a, workers)
			if err != nil {
				t.Fatal(err)
			}
			if gr.NumEdges() != 0 || gr.NonEmpty() != 0 {
				t.Fatalf("empty graph produced %d edges, %d non-empty blocks",
					gr.NumEdges(), gr.NonEmpty())
			}
			if err := gr.CheckPartition(g); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// The self-loop corner: loops land on the diagonal under both assigners
// at every worker count.
func TestBuildParallelSelfLoops(t *testing.T) {
	g := &graph.Graph{NumVertices: 9, Edges: []graph.Edge{
		{Src: 0, Dst: 0}, {Src: 4, Dst: 4}, {Src: 8, Dst: 8}, {Src: 0, Dst: 8},
	}}
	for name, a := range assigners(t, 9, 3) {
		for _, workers := range []int{1, 3} {
			gr, err := BuildParallel(g, a, workers)
			if err != nil {
				t.Fatal(err)
			}
			diag := 0
			for i := 0; i < 3; i++ {
				diag += gr.BlockLen(i, i)
			}
			if diag != 3 {
				t.Fatalf("%s workers=%d: %d diagonal edges, want 3", name, workers, diag)
			}
			if err := gr.CheckPartition(g); err != nil {
				t.Fatal(err)
			}
		}
	}
}

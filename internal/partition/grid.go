package partition

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/parallel"
)

// Grid is the interval-block partitioned form of a graph: all edges
// grouped by block, stored contiguously (block after block) exactly as
// HyVE lays them out in the edge memory (§3.4: "Several blocks are
// sequentially stored in the edge memory"). Edge order inside a block and
// block-major order follow the build; the flattened edge array index
// multiplied by graph.EdgeBytes is the edge-memory byte address.
type Grid struct {
	Assigner Assigner
	// edges holds every edge, grouped by block in row-major block order
	// (block id = x·P + y).
	edges   []graph.Edge
	weights []float32
	// offsets[b]..offsets[b+1] delimit block b in edges.
	offsets []int64
}

// Build partitions g under the assigner using a two-pass counting sort:
// O(|E|) time, no per-block allocation. This is the production layout
// path used by the simulator; it parallelizes across all available CPUs
// (see BuildParallel for the worker knob and the determinism argument).
func Build(g *graph.Graph, a Assigner) (*Grid, error) {
	return BuildParallel(g, a, 0)
}

// BuildParallel is Build with an explicit worker count (≤0 means
// GOMAXPROCS, 1 runs fully inline). The layout is byte-identical at any
// worker count: pass one computes per-chunk block histograms in
// parallel, a sequential prefix sum turns them into per-chunk write
// cursors — chunks in edge-list order, so the sort stays stable — and
// pass two scatters each chunk into its disjoint slots of the
// preallocated edge/weight arrays.
func BuildParallel(g *graph.Graph, a Assigner, workers int) (*Grid, error) {
	if g.NumVertices != a.NumVertices() {
		return nil, fmt.Errorf("partition: assigner built for %d vertices, graph has %d",
			a.NumVertices(), g.NumVertices)
	}
	p := a.P()
	nb := p * p
	ne := len(g.Edges)
	if int64(p)*int64(p) > math.MaxInt32 {
		return nil, fmt.Errorf("partition: %d intervals produce more blocks than addressable", p)
	}

	// Prepared fast path: a graph loaded from a v2 container may carry
	// the stored grid layout. When the requested partitioning matches it
	// exactly — same P, same assignment family, same weightedness — the
	// stored layout IS the layout this build would produce (StreamGridInto
	// and BuildParallel are byte-identical by construction, pinned by the
	// stream tests), so return it without touching the edge list. Only
	// the two production assigners qualify; a custom Assigner could
	// disagree with the stored family even at equal P.
	switch a.(type) {
	case *Hashed:
		if off, edges, w, ok := g.PreparedGrid(p, false, g.Weights != nil); ok {
			return &Grid{Assigner: a, edges: edges, weights: w, offsets: off}, nil
		}
	case *Contiguous:
		if off, edges, w, ok := g.PreparedGrid(p, true, g.Weights != nil); ok {
			return &Grid{Assigner: a, edges: edges, weights: w, offsets: off}, nil
		}
	}

	// Chunking: one chunk per worker, but never so many that histogram
	// storage (chunks·P² cursors) dwarfs the edge list itself.
	chunks := parallel.Workers(workers)
	for chunks > 1 && (ne/chunks < 4096 || chunks*nb > 4*ne+nb) {
		chunks--
	}
	chunkBounds := func(c int) (int, int) { return c * ne / chunks, (c + 1) * ne / chunks }

	// Pass 1: per-chunk histograms, memoizing each edge's block id so the
	// scatter pass does not recompute the two interval divisions.
	ids := make([]int32, ne)
	counts := make([]int64, chunks*nb)
	_ = parallel.ForEach(chunks, chunks, func(c int) error {
		lo, hi := chunkBounds(c)
		fillBlockIDs(a, g.Edges, ids, lo, hi, counts[c*nb:(c+1)*nb])
		return nil
	})

	// Prefix sum in (block, chunk) order: offsets delimit blocks, and
	// each chunk's counter becomes its private write cursor inside the
	// block — earlier chunks write earlier slots, preserving edge order.
	offsets := make([]int64, nb+1)
	var total int64
	for b := 0; b < nb; b++ {
		offsets[b] = total
		for c := 0; c < chunks; c++ {
			n := counts[c*nb+b]
			counts[c*nb+b] = total
			total += n
		}
	}
	offsets[nb] = total

	// Pass 2: parallel scatter; chunks write disjoint index ranges per
	// block, so the only shared state is read-only.
	edges := make([]graph.Edge, ne)
	var weights []float32
	if g.Weights != nil {
		weights = make([]float32, ne)
	}
	_ = parallel.ForEach(chunks, chunks, func(c int) error {
		lo, hi := chunkBounds(c)
		cur := counts[c*nb : (c+1)*nb]
		if weights != nil {
			for i := lo; i < hi; i++ {
				at := cur[ids[i]]
				cur[ids[i]]++
				edges[at] = g.Edges[i]
				weights[at] = g.Weights[i]
			}
		} else {
			for i := lo; i < hi; i++ {
				at := cur[ids[i]]
				cur[ids[i]]++
				edges[at] = g.Edges[i]
			}
		}
		return nil
	})
	return &Grid{Assigner: a, edges: edges, weights: weights, offsets: offsets}, nil
}

// fillBlockIDs computes block ids for edges[lo:hi] into ids and bumps
// the per-block histogram. The two production assigners get
// monomorphized loops — the interface-dispatched fallback costs three
// dynamic calls per edge, which at hundreds of millions of edges is the
// dominant build cost.
func fillBlockIDs(a Assigner, edges []graph.Edge, ids []int32, lo, hi int, counts []int64) {
	switch t := a.(type) {
	case *Hashed:
		p := uint32(t.p)
		if p&(p-1) == 0 {
			// Power-of-two interval count (every ChooseP result with a
			// power-of-two PU count and SRAM size): mask instead of mod.
			mask, shift := p-1, log2(p)
			for i := lo; i < hi; i++ {
				e := edges[i]
				b := int32((e.Src&mask)<<shift | e.Dst&mask)
				ids[i] = b
				counts[b]++
			}
			return
		}
		for i := lo; i < hi; i++ {
			e := edges[i]
			b := int32(e.Src%p*p + e.Dst%p)
			ids[i] = b
			counts[b]++
		}
	case *Contiguous:
		p, span := uint32(t.p), uint32(t.span)
		if span&(span-1) == 0 {
			shift := log2(span)
			for i := lo; i < hi; i++ {
				e := edges[i]
				b := int32((e.Src>>shift)*p + e.Dst>>shift)
				ids[i] = b
				counts[b]++
			}
			return
		}
		for i := lo; i < hi; i++ {
			e := edges[i]
			b := int32(e.Src/span*p + e.Dst/span)
			ids[i] = b
			counts[b]++
		}
	default:
		for i := lo; i < hi; i++ {
			b := int32(blockID(a, edges[i]))
			ids[i] = b
			counts[b]++
		}
	}
}

// GridFromParts assembles a Grid directly from pre-built storage —
// offsets delimiting p²+1 block boundaries over edges (and optional
// per-edge weights). Used by the streaming builder's readback path and
// by verifiers over v2 container grid sections. The slices are aliased,
// not copied, and must be treated as read-only.
func GridFromParts(a Assigner, offsets []int64, edges []graph.Edge, weights []float32) (*Grid, error) {
	nb := a.P() * a.P()
	if len(offsets) != nb+1 {
		return nil, fmt.Errorf("partition: %d offsets for %d blocks", len(offsets), nb)
	}
	if offsets[0] != 0 || offsets[nb] != int64(len(edges)) {
		return nil, fmt.Errorf("partition: offsets span [%d,%d], edges span [0,%d]",
			offsets[0], offsets[nb], len(edges))
	}
	if weights != nil && len(weights) != len(edges) {
		return nil, fmt.Errorf("partition: %d weights for %d edges", len(weights), len(edges))
	}
	return &Grid{Assigner: a, edges: edges, weights: weights, offsets: offsets}, nil
}

// BuildBuckets partitions g with per-block dynamic arrays (append-based),
// the implementation style whose addressing overhead the paper measures
// in Fig. 12: it is equivalent in output to Build but its cost grows with
// the number of blocks. Exposed so the preprocessing experiments can
// measure that effect on real executions.
func BuildBuckets(g *graph.Graph, a Assigner) (*Grid, error) {
	if g.NumVertices != a.NumVertices() {
		return nil, fmt.Errorf("partition: assigner built for %d vertices, graph has %d",
			a.NumVertices(), g.NumVertices)
	}
	p := a.P()
	nb := p * p
	buckets := make([][]graph.Edge, nb)
	var wbuckets [][]float32
	if g.Weights != nil {
		wbuckets = make([][]float32, nb)
	}
	for i, e := range g.Edges {
		b := blockID(a, e)
		buckets[b] = append(buckets[b], e)
		if wbuckets != nil {
			wbuckets[b] = append(wbuckets[b], g.Weights[i])
		}
	}
	gr := &Grid{
		Assigner: a,
		edges:    make([]graph.Edge, 0, len(g.Edges)),
		offsets:  make([]int64, nb+1),
	}
	if g.Weights != nil {
		gr.weights = make([]float32, 0, len(g.Edges))
	}
	for b := 0; b < nb; b++ {
		gr.edges = append(gr.edges, buckets[b]...)
		if wbuckets != nil {
			gr.weights = append(gr.weights, wbuckets[b]...)
		}
		gr.offsets[b+1] = int64(len(gr.edges))
	}
	return gr, nil
}

func blockID(a Assigner, e graph.Edge) int {
	return a.IntervalOf(e.Src)*a.P() + a.IntervalOf(e.Dst)
}

// log2 returns the exponent of a power of two.
func log2(p uint32) uint32 {
	var s uint32
	for p > 1 {
		p >>= 1
		s++
	}
	return s
}

// P returns the number of intervals per dimension.
func (gr *Grid) P() int { return gr.Assigner.P() }

// NumEdges returns the total edge count.
func (gr *Grid) NumEdges() int { return len(gr.edges) }

// Block returns the edges of block (x, y): source interval x, destination
// interval y. The slice aliases grid storage and must not be modified.
func (gr *Grid) Block(x, y int) []graph.Edge {
	b := x*gr.P() + y
	return gr.edges[gr.offsets[b]:gr.offsets[b+1]]
}

// BlockWeights returns the weights of block (x, y), or nil for an
// unweighted grid.
func (gr *Grid) BlockWeights(x, y int) []float32 {
	if gr.weights == nil {
		return nil
	}
	b := x*gr.P() + y
	return gr.weights[gr.offsets[b]:gr.offsets[b+1]]
}

// BlockLen returns the number of edges in block (x, y).
func (gr *Grid) BlockLen(x, y int) int {
	b := x*gr.P() + y
	return int(gr.offsets[b+1] - gr.offsets[b])
}

// BlockOffset returns the index of block (x, y)'s first edge within the
// flattened edge array; ×graph.EdgeBytes gives the edge-memory address.
func (gr *Grid) BlockOffset(x, y int) int64 {
	return gr.offsets[x*gr.P()+y]
}

// NonEmpty counts blocks with at least one edge.
func (gr *Grid) NonEmpty() int {
	n := 0
	for b := 0; b < gr.P()*gr.P(); b++ {
		if gr.offsets[b+1] > gr.offsets[b] {
			n++
		}
	}
	return n
}

// IntervalEdgeCounts returns, per destination interval, the number of
// edges that update it — the per-PU workload whose balance the hash
// assignment improves.
func (gr *Grid) IntervalEdgeCounts() []int64 {
	p := gr.P()
	counts := make([]int64, p)
	for x := 0; x < p; x++ {
		for y := 0; y < p; y++ {
			counts[y] += int64(gr.BlockLen(x, y))
		}
	}
	return counts
}

// Occupancy summarizes block occupancy for a virtual grid with fixed
// interval width (in vertices) without materializing the grid. It is the
// measurement behind Table 1: GraphR processes the graph in 8×8-vertex
// blocks, so Navg = |E| / non-empty blocks with intervalVerts = 8.
type Occupancy struct {
	IntervalVerts  int
	NonEmpty       int64
	TotalEdges     int64
	AvgEdgesPerBlk float64 // the paper's Navg
	MaxEdgesPerBlk int64
}

// ComputeOccupancy scans g once, hashing block coordinates.
func ComputeOccupancy(g *graph.Graph, intervalVerts int) (Occupancy, error) {
	if intervalVerts <= 0 {
		return Occupancy{}, fmt.Errorf("partition: non-positive interval width %d", intervalVerts)
	}
	counts := make(map[uint64]int64, len(g.Edges)/2+1)
	for _, e := range g.Edges {
		bx := uint64(e.Src) / uint64(intervalVerts)
		by := uint64(e.Dst) / uint64(intervalVerts)
		counts[bx<<32|by]++
	}
	occ := Occupancy{IntervalVerts: intervalVerts, TotalEdges: int64(len(g.Edges))}
	occ.NonEmpty = int64(len(counts))
	for _, c := range counts {
		if c > occ.MaxEdgesPerBlk {
			occ.MaxEdgesPerBlk = c
		}
	}
	if occ.NonEmpty > 0 {
		occ.AvgEdgesPerBlk = float64(occ.TotalEdges) / float64(occ.NonEmpty)
	}
	return occ, nil
}

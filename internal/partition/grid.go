package partition

import (
	"fmt"

	"repro/internal/graph"
)

// Grid is the interval-block partitioned form of a graph: all edges
// grouped by block, stored contiguously (block after block) exactly as
// HyVE lays them out in the edge memory (§3.4: "Several blocks are
// sequentially stored in the edge memory"). Edge order inside a block and
// block-major order follow the build; the flattened edge array index
// multiplied by graph.EdgeBytes is the edge-memory byte address.
type Grid struct {
	Assigner Assigner
	// edges holds every edge, grouped by block in row-major block order
	// (block id = x·P + y).
	edges   []graph.Edge
	weights []float32
	// offsets[b]..offsets[b+1] delimit block b in edges.
	offsets []int64
}

// Build partitions g under the assigner using a two-pass counting sort:
// O(|E|) time, no per-block allocation. This is the production layout
// path used by the simulator.
func Build(g *graph.Graph, a Assigner) (*Grid, error) {
	if g.NumVertices != a.NumVertices() {
		return nil, fmt.Errorf("partition: assigner built for %d vertices, graph has %d",
			a.NumVertices(), g.NumVertices)
	}
	p := a.P()
	nb := p * p
	offsets := make([]int64, nb+1)
	for _, e := range g.Edges {
		offsets[blockID(a, e)+1]++
	}
	for b := 0; b < nb; b++ {
		offsets[b+1] += offsets[b]
	}
	edges := make([]graph.Edge, len(g.Edges))
	var weights []float32
	if g.Weights != nil {
		weights = make([]float32, len(g.Edges))
	}
	next := make([]int64, nb)
	copy(next, offsets[:nb])
	for i, e := range g.Edges {
		b := blockID(a, e)
		at := next[b]
		edges[at] = e
		if weights != nil {
			weights[at] = g.Weights[i]
		}
		next[b]++
	}
	return &Grid{Assigner: a, edges: edges, weights: weights, offsets: offsets}, nil
}

// BuildBuckets partitions g with per-block dynamic arrays (append-based),
// the implementation style whose addressing overhead the paper measures
// in Fig. 12: it is equivalent in output to Build but its cost grows with
// the number of blocks. Exposed so the preprocessing experiments can
// measure that effect on real executions.
func BuildBuckets(g *graph.Graph, a Assigner) (*Grid, error) {
	if g.NumVertices != a.NumVertices() {
		return nil, fmt.Errorf("partition: assigner built for %d vertices, graph has %d",
			a.NumVertices(), g.NumVertices)
	}
	p := a.P()
	nb := p * p
	buckets := make([][]graph.Edge, nb)
	var wbuckets [][]float32
	if g.Weights != nil {
		wbuckets = make([][]float32, nb)
	}
	for i, e := range g.Edges {
		b := blockID(a, e)
		buckets[b] = append(buckets[b], e)
		if wbuckets != nil {
			wbuckets[b] = append(wbuckets[b], g.Weights[i])
		}
	}
	gr := &Grid{
		Assigner: a,
		edges:    make([]graph.Edge, 0, len(g.Edges)),
		offsets:  make([]int64, nb+1),
	}
	if g.Weights != nil {
		gr.weights = make([]float32, 0, len(g.Edges))
	}
	for b := 0; b < nb; b++ {
		gr.edges = append(gr.edges, buckets[b]...)
		if wbuckets != nil {
			gr.weights = append(gr.weights, wbuckets[b]...)
		}
		gr.offsets[b+1] = int64(len(gr.edges))
	}
	return gr, nil
}

func blockID(a Assigner, e graph.Edge) int {
	return a.IntervalOf(e.Src)*a.P() + a.IntervalOf(e.Dst)
}

// P returns the number of intervals per dimension.
func (gr *Grid) P() int { return gr.Assigner.P() }

// NumEdges returns the total edge count.
func (gr *Grid) NumEdges() int { return len(gr.edges) }

// Block returns the edges of block (x, y): source interval x, destination
// interval y. The slice aliases grid storage and must not be modified.
func (gr *Grid) Block(x, y int) []graph.Edge {
	b := x*gr.P() + y
	return gr.edges[gr.offsets[b]:gr.offsets[b+1]]
}

// BlockWeights returns the weights of block (x, y), or nil for an
// unweighted grid.
func (gr *Grid) BlockWeights(x, y int) []float32 {
	if gr.weights == nil {
		return nil
	}
	b := x*gr.P() + y
	return gr.weights[gr.offsets[b]:gr.offsets[b+1]]
}

// BlockLen returns the number of edges in block (x, y).
func (gr *Grid) BlockLen(x, y int) int {
	b := x*gr.P() + y
	return int(gr.offsets[b+1] - gr.offsets[b])
}

// BlockOffset returns the index of block (x, y)'s first edge within the
// flattened edge array; ×graph.EdgeBytes gives the edge-memory address.
func (gr *Grid) BlockOffset(x, y int) int64 {
	return gr.offsets[x*gr.P()+y]
}

// NonEmpty counts blocks with at least one edge.
func (gr *Grid) NonEmpty() int {
	n := 0
	for b := 0; b < gr.P()*gr.P(); b++ {
		if gr.offsets[b+1] > gr.offsets[b] {
			n++
		}
	}
	return n
}

// IntervalEdgeCounts returns, per destination interval, the number of
// edges that update it — the per-PU workload whose balance the hash
// assignment improves.
func (gr *Grid) IntervalEdgeCounts() []int64 {
	p := gr.P()
	counts := make([]int64, p)
	for x := 0; x < p; x++ {
		for y := 0; y < p; y++ {
			counts[y] += int64(gr.BlockLen(x, y))
		}
	}
	return counts
}

// Occupancy summarizes block occupancy for a virtual grid with fixed
// interval width (in vertices) without materializing the grid. It is the
// measurement behind Table 1: GraphR processes the graph in 8×8-vertex
// blocks, so Navg = |E| / non-empty blocks with intervalVerts = 8.
type Occupancy struct {
	IntervalVerts  int
	NonEmpty       int64
	TotalEdges     int64
	AvgEdgesPerBlk float64 // the paper's Navg
	MaxEdgesPerBlk int64
}

// ComputeOccupancy scans g once, hashing block coordinates.
func ComputeOccupancy(g *graph.Graph, intervalVerts int) (Occupancy, error) {
	if intervalVerts <= 0 {
		return Occupancy{}, fmt.Errorf("partition: non-positive interval width %d", intervalVerts)
	}
	counts := make(map[uint64]int64, len(g.Edges)/2+1)
	for _, e := range g.Edges {
		bx := uint64(e.Src) / uint64(intervalVerts)
		by := uint64(e.Dst) / uint64(intervalVerts)
		counts[bx<<32|by]++
	}
	occ := Occupancy{IntervalVerts: intervalVerts, TotalEdges: int64(len(g.Edges))}
	occ.NonEmpty = int64(len(counts))
	for _, c := range counts {
		if c > occ.MaxEdgesPerBlk {
			occ.MaxEdgesPerBlk = c
		}
	}
	if occ.NonEmpty > 0 {
		occ.AvgEdgesPerBlk = float64(occ.TotalEdges) / float64(occ.NonEmpty)
	}
	return occ, nil
}

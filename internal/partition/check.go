package partition

import (
	"fmt"

	"repro/internal/graph"
)

// CheckAssigner verifies that a forms a true partition of its vertex
// universe: interval lengths sum to the vertex count, every vertex maps
// to an in-range (interval, index) pair, and VertexAt inverts that pair.
func CheckAssigner(a Assigner) error {
	p, nv := a.P(), a.NumVertices()
	if p <= 0 || nv <= 0 {
		return fmt.Errorf("partition: degenerate assigner (P=%d, V=%d)", p, nv)
	}
	total := 0
	for i := 0; i < p; i++ {
		l := a.IntervalLen(i)
		if l < 0 {
			return fmt.Errorf("partition: interval %d has negative length %d", i, l)
		}
		total += l
	}
	if total != nv {
		return fmt.Errorf("partition: interval lengths sum to %d, want %d vertices", total, nv)
	}
	for v := 0; v < nv; v++ {
		id := graph.VertexID(v)
		iv := a.IntervalOf(id)
		if iv < 0 || iv >= p {
			return fmt.Errorf("partition: vertex %d maps to interval %d outside [0,%d)", v, iv, p)
		}
		idx := a.IndexWithin(id)
		if idx < 0 || idx >= a.IntervalLen(iv) {
			return fmt.Errorf("partition: vertex %d has index %d outside interval %d (len %d)",
				v, idx, iv, a.IntervalLen(iv))
		}
		if back := a.VertexAt(iv, idx); back != id {
			return fmt.Errorf("partition: VertexAt(%d,%d) = %d, want %d", iv, idx, back, v)
		}
	}
	return nil
}

// CheckPartition verifies that the grid is an exact re-grouping of g's
// edges: block offsets tile the flattened array contiguously, every edge
// sits in the block its endpoints' intervals select, and the grid's edge
// multiset equals the graph's (no edge lost, duplicated, or invented).
func (gr *Grid) CheckPartition(g *graph.Graph) error {
	if gr.NumEdges() != len(g.Edges) {
		return fmt.Errorf("partition: grid holds %d edges, graph has %d", gr.NumEdges(), len(g.Edges))
	}
	a := gr.Assigner
	p := gr.P()
	var at int64
	for x := 0; x < p; x++ {
		for y := 0; y < p; y++ {
			if off := gr.BlockOffset(x, y); off != at {
				return fmt.Errorf("partition: block (%d,%d) starts at %d, want contiguous %d", x, y, off, at)
			}
			blk := gr.Block(x, y)
			if len(blk) != gr.BlockLen(x, y) {
				return fmt.Errorf("partition: block (%d,%d) slice/len mismatch", x, y)
			}
			for _, e := range blk {
				if a.IntervalOf(e.Src) != x || a.IntervalOf(e.Dst) != y {
					return fmt.Errorf("partition: edge %d->%d stored in block (%d,%d), belongs in (%d,%d)",
						e.Src, e.Dst, x, y, a.IntervalOf(e.Src), a.IntervalOf(e.Dst))
				}
			}
			at += int64(len(blk))
		}
	}
	counts := make(map[graph.Edge]int, len(g.Edges))
	for _, e := range g.Edges {
		counts[e]++
	}
	for x := 0; x < p; x++ {
		for y := 0; y < p; y++ {
			for _, e := range gr.Block(x, y) {
				counts[e]--
				if counts[e] == 0 {
					delete(counts, e)
				}
			}
		}
	}
	if len(counts) != 0 {
		for e, c := range counts {
			return fmt.Errorf("partition: edge %d->%d multiplicity off by %+d between graph and grid", e.Src, e.Dst, -c)
		}
	}
	return nil
}

package partition

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := graph.GenerateRMAT(1024, 8192, graph.DefaultRMAT, 77)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func assigners(t *testing.T, v, p int) map[string]Assigner {
	t.Helper()
	c, err := NewContiguous(v, p)
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHashed(v, p)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Assigner{"contiguous": c, "hashed": h}
}

// Every assigner must form a bijection between vertices and
// (interval, index) pairs with indices dense within interval lengths.
func TestAssignerBijection(t *testing.T) {
	const v, p = 1000, 7
	for name, a := range assigners(t, v, p) {
		t.Run(name, func(t *testing.T) {
			seen := map[[2]int]bool{}
			for vid := 0; vid < v; vid++ {
				iv := a.IntervalOf(graph.VertexID(vid))
				ix := a.IndexWithin(graph.VertexID(vid))
				if iv < 0 || iv >= p {
					t.Fatalf("vertex %d: interval %d out of range", vid, iv)
				}
				if ix < 0 || ix >= a.IntervalLen(iv) {
					t.Fatalf("vertex %d: index %d out of interval %d len %d", vid, ix, iv, a.IntervalLen(iv))
				}
				key := [2]int{iv, ix}
				if seen[key] {
					t.Fatalf("vertex %d: duplicate (interval,index) %v", vid, key)
				}
				seen[key] = true
				if back := a.VertexAt(iv, ix); back != graph.VertexID(vid) {
					t.Fatalf("VertexAt(%d,%d) = %d, want %d", iv, ix, back, vid)
				}
			}
			// Interval lengths must sum to the vertex count.
			total := 0
			for i := 0; i < p; i++ {
				total += a.IntervalLen(i)
			}
			if total != v {
				t.Fatalf("interval lengths sum to %d, want %d", total, v)
			}
		})
	}
}

func TestAssignerArgValidation(t *testing.T) {
	if _, err := NewContiguous(0, 4); err == nil {
		t.Error("zero vertices accepted")
	}
	if _, err := NewContiguous(10, 0); err == nil {
		t.Error("zero intervals accepted")
	}
	if _, err := NewHashed(4, 10); err == nil {
		t.Error("p > V accepted")
	}
}

func TestGridPartitionInvariant(t *testing.T) {
	g := testGraph(t)
	for name, a := range assigners(t, g.NumVertices, 8) {
		t.Run(name, func(t *testing.T) {
			gr, err := Build(g, a)
			if err != nil {
				t.Fatal(err)
			}
			// Every edge in exactly one block, in the right block.
			total := 0
			for x := 0; x < gr.P(); x++ {
				for y := 0; y < gr.P(); y++ {
					blk := gr.Block(x, y)
					total += len(blk)
					for _, e := range blk {
						if a.IntervalOf(e.Src) != x || a.IntervalOf(e.Dst) != y {
							t.Fatalf("edge %v misplaced in block (%d,%d)", e, x, y)
						}
					}
					if gr.BlockLen(x, y) != len(blk) {
						t.Fatalf("BlockLen mismatch at (%d,%d)", x, y)
					}
				}
			}
			if total != g.NumEdges() {
				t.Fatalf("blocks hold %d edges, graph has %d", total, g.NumEdges())
			}
		})
	}
}

func TestBuildBucketsMatchesBuild(t *testing.T) {
	g := testGraph(t)
	graph.AttachUniformWeights(g, 5, 3)
	a, err := NewHashed(g.NumVertices, 16)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Build(g, a)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := BuildBuckets(g, a)
	if err != nil {
		t.Fatal(err)
	}
	if fast.NumEdges() != slow.NumEdges() {
		t.Fatalf("edge counts differ: %d vs %d", fast.NumEdges(), slow.NumEdges())
	}
	for x := 0; x < 16; x++ {
		for y := 0; y < 16; y++ {
			fb, sb := fast.Block(x, y), slow.Block(x, y)
			if len(fb) != len(sb) {
				t.Fatalf("block (%d,%d) length differs: %d vs %d", x, y, len(fb), len(sb))
			}
			// Both builds preserve input edge order within a block
			// (counting sort and append are both stable).
			for i := range fb {
				if fb[i] != sb[i] {
					t.Fatalf("block (%d,%d) edge %d differs", x, y, i)
				}
			}
			fw, sw := fast.BlockWeights(x, y), slow.BlockWeights(x, y)
			for i := range fw {
				if fw[i] != sw[i] {
					t.Fatalf("block (%d,%d) weight %d differs", x, y, i)
				}
			}
		}
	}
}

func TestBuildRejectsMismatchedAssigner(t *testing.T) {
	g := testGraph(t)
	a, err := NewContiguous(g.NumVertices*2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(g, a); err == nil {
		t.Error("mismatched assigner accepted by Build")
	}
	if _, err := BuildBuckets(g, a); err == nil {
		t.Error("mismatched assigner accepted by BuildBuckets")
	}
}

func TestBlockOffsetsAreSequential(t *testing.T) {
	g := testGraph(t)
	a, _ := NewHashed(g.NumVertices, 8)
	gr, err := Build(g, a)
	if err != nil {
		t.Fatal(err)
	}
	var prevEnd int64
	for x := 0; x < 8; x++ {
		for y := 0; y < 8; y++ {
			off := gr.BlockOffset(x, y)
			if off != prevEnd {
				t.Fatalf("block (%d,%d) starts at %d, previous ended at %d", x, y, off, prevEnd)
			}
			prevEnd = off + int64(gr.BlockLen(x, y))
		}
	}
	if prevEnd != int64(g.NumEdges()) {
		t.Fatalf("last block ends at %d, want %d", prevEnd, g.NumEdges())
	}
}

// Hash partitioning must balance destination-interval workload much
// better than contiguous partitioning on a skewed graph.
func TestHashedBalancesBetterThanContiguous(t *testing.T) {
	g := testGraph(t)
	imbalance := func(a Assigner) float64 {
		gr, err := Build(g, a)
		if err != nil {
			t.Fatal(err)
		}
		counts := gr.IntervalEdgeCounts()
		var max, sum int64
		for _, c := range counts {
			if c > max {
				max = c
			}
			sum += c
		}
		if sum != int64(g.NumEdges()) {
			t.Fatalf("interval counts sum to %d, want %d", sum, g.NumEdges())
		}
		return float64(max) * float64(len(counts)) / float64(sum)
	}
	as := assigners(t, g.NumVertices, 8)
	ci := imbalance(as["contiguous"])
	hi := imbalance(as["hashed"])
	if hi >= ci {
		t.Errorf("hashed imbalance %.3f not below contiguous %.3f", hi, ci)
	}
}

func TestComputeOccupancySmall(t *testing.T) {
	// 2-vertex-wide intervals; edges land in 3 distinct blocks.
	g := &graph.Graph{NumVertices: 8, Edges: []graph.Edge{
		{Src: 0, Dst: 1}, // block (0,0)
		{Src: 1, Dst: 0}, // block (0,0)
		{Src: 2, Dst: 3}, // block (1,1)
		{Src: 7, Dst: 0}, // block (3,0)
	}}
	occ, err := ComputeOccupancy(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if occ.NonEmpty != 3 {
		t.Errorf("non-empty = %d, want 3", occ.NonEmpty)
	}
	if occ.AvgEdgesPerBlk != 4.0/3.0 {
		t.Errorf("Navg = %v, want 4/3", occ.AvgEdgesPerBlk)
	}
	if occ.MaxEdgesPerBlk != 2 {
		t.Errorf("max = %d, want 2", occ.MaxEdgesPerBlk)
	}
	if _, err := ComputeOccupancy(g, 0); err == nil {
		t.Error("zero interval width accepted")
	}
}

// Navg for 8×8 blocks on natural-like graphs is small (paper Table 1:
// 1.23–2.38) despite 64 possible slots — the sparsity argument against
// crossbar processing.
func TestOccupancyNavgIsSmallOnSkewedGraphs(t *testing.T) {
	for _, d := range graph.Datasets[:3] { // small three are near-full-scale
		g, err := d.Load()
		if err != nil {
			t.Fatal(err)
		}
		occ, err := ComputeOccupancy(g, 8)
		if err != nil {
			t.Fatal(err)
		}
		if occ.AvgEdgesPerBlk < 1 || occ.AvgEdgesPerBlk > 8 {
			t.Errorf("%s: Navg = %.2f, expected small (paper range 1.23–2.38)", d.Name, occ.AvgEdgesPerBlk)
		}
	}
}

func TestChooseP(t *testing.T) {
	// 4 MB SRAM, 4-byte values, 8 PUs: section = 2 MB = 512K vertices.
	p, err := ChooseP(4_850_000, 4<<20, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if p%8 != 0 {
		t.Errorf("P = %d not a multiple of N", p)
	}
	// 4.85 M / 512 K ≈ 9.25 → 10 → round to 16.
	if p != 16 {
		t.Errorf("P = %d, want 16", p)
	}
	// Small graph: P floors at N.
	p, err = ChooseP(100, 4<<20, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if p != 8 {
		t.Errorf("small-graph P = %d, want 8", p)
	}
	if _, err := ChooseP(0, 1, 1, 1); err == nil {
		t.Error("invalid args accepted")
	}
	if _, err := ChooseP(10, 4, 8, 1); err == nil {
		t.Error("section smaller than a value accepted")
	}
}

func TestChoosePProperties(t *testing.T) {
	f := func(v uint32, sramKB uint16, n uint8) bool {
		verts := int64(v%10_000_000) + 1
		sram := (int(sramKB%4096) + 1) * 1024
		pus := int(n%16) + 1
		p, err := ChooseP(verts, sram, 4, pus)
		if err != nil {
			return true // rejected inputs are fine
		}
		if p%pus != 0 || p < pus {
			return false
		}
		// One interval must fit in a section.
		section := int64(sram / 2 / 4)
		perInterval := (verts + int64(p) - 1) / int64(p)
		return perInterval <= section
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

package partition

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/graph"
)

// Streaming grid construction: produce the exact block-major layout
// BuildParallel produces, but with transient memory bounded by an
// explicit budget instead of O(|E|). Edges are consumed in list order
// in budget-sized runs; each run is counting-sorted by block (stable)
// and spilled to a temp file as fixed 16-byte records; a block-major
// merge then replays the runs in order. Stability per run plus
// run-order concatenation per block reproduces BuildParallel's stable
// counting sort exactly, so the emitted stream is byte-identical to the
// in-memory build at any budget — the property the stream tests pin and
// the v2 container format relies on (a grid section written by
// StreamGridInto must equal the grid BuildParallel derives from the
// edge section).
//
// This is the full-scale path the down-scaled datasets stand in for:
// live-journal at its published 69M edges partitions in a few hundred
// MB of transient memory regardless of P.

// StreamOptions tunes the streaming builder.
type StreamOptions struct {
	// BudgetBytes bounds transient memory (run buffers and sort
	// scratch). 0 means 256 MiB; values below 1 MiB are raised to it.
	BudgetBytes int64
	// TmpDir hosts the spill files; empty means os.TempDir().
	TmpDir string
}

const (
	streamDefaultBudget = 256 << 20
	streamMinBudget     = 1 << 20
	// streamRecBytes is the spill record: [block u32][src u32][dst u32]
	// [weight f32], weight 0 for unweighted graphs. Fixed width keeps
	// the merge readers trivially seekable.
	streamRecBytes = 16
	// streamRecCost is the per-entry transient cost charged against the
	// budget: the sorted record buffer (16 B), the block-id scratch
	// (4 B), and amortized I/O buffering.
	streamRecCost = 24
	// streamEmitEdges sizes the merge-side emission buffer.
	streamEmitEdges = 1 << 15
)

type streamRec struct {
	block    int32
	src, dst uint32
	w        float32
}

// streamGrid drives the two-pass build: it computes the block offsets
// and calls emit with consecutive chunks of the final block-major edge
// stream (weights non-nil iff g is weighted). Transient memory stays
// within opt.BudgetBytes (plus the P²-proportional offset/count arrays,
// which any grid representation needs).
func streamGrid(g *graph.Graph, a Assigner, opt StreamOptions,
	emit func(edges []graph.Edge, weights []float32) error) ([]int64, error) {

	if g.NumVertices != a.NumVertices() {
		return nil, fmt.Errorf("partition: assigner built for %d vertices, graph has %d",
			a.NumVertices(), g.NumVertices)
	}
	p := a.P()
	nb := p * p
	ne := len(g.Edges)
	if int64(p)*int64(p) > math.MaxInt32 {
		return nil, fmt.Errorf("partition: %d intervals produce more blocks than addressable", p)
	}

	budget := opt.BudgetBytes
	if budget <= 0 {
		budget = streamDefaultBudget
	}
	if budget < streamMinBudget {
		budget = streamMinBudget
	}
	runEntries := int(budget / streamRecCost)
	if runEntries < 1<<12 {
		runEntries = 1 << 12
	}
	runs := 0
	if ne > 0 {
		runs = (ne + runEntries - 1) / runEntries
	}

	counts := make([]int64, nb)    // global per-block totals → offsets
	runCounts := make([]int64, nb) // per-run histogram / sort cursors
	n := min(ne, runEntries)
	ids := make([]int32, n)        // per-run block ids
	sorted := make([]streamRec, n) // per-run counting-sort output

	// sortRun counting-sorts g.Edges[lo:hi] by block into sorted
	// (stable: list order within a block) and folds the histogram into
	// the global counts.
	sortRun := func(lo, hi int) []streamRec {
		m := hi - lo
		for b := range runCounts {
			runCounts[b] = 0
		}
		fillBlockIDs(a, g.Edges[lo:hi], ids[:m], 0, m, runCounts)
		var cur int64
		for b := 0; b < nb; b++ {
			c := runCounts[b]
			counts[b] += c
			runCounts[b] = cur
			cur += c
		}
		for i := 0; i < m; i++ {
			b := ids[i]
			at := runCounts[b]
			runCounts[b]++
			e := g.Edges[lo+i]
			r := streamRec{block: b, src: e.Src, dst: e.Dst}
			if g.Weights != nil {
				r.w = g.Weights[lo+i]
			}
			sorted[at] = r
		}
		return sorted[:m]
	}

	offsets := func() []int64 {
		off := make([]int64, nb+1)
		var total int64
		for b := 0; b < nb; b++ {
			off[b] = total
			total += counts[b]
		}
		off[nb] = total
		return off
	}

	emitRecs := func(recs []streamRec) error {
		eb := make([]graph.Edge, 0, min(len(recs), streamEmitEdges))
		var wb []float32
		if g.Weights != nil {
			wb = make([]float32, 0, cap(eb))
		}
		flush := func() error {
			if len(eb) == 0 {
				return nil
			}
			err := emit(eb, wb)
			eb = eb[:0]
			if wb != nil {
				wb = wb[:0]
			}
			return err
		}
		for _, r := range recs {
			eb = append(eb, graph.Edge{Src: r.src, Dst: r.dst})
			if wb != nil {
				wb = append(wb, r.w)
			}
			if len(eb) == cap(eb) {
				if err := flush(); err != nil {
					return err
				}
			}
		}
		return flush()
	}

	if runs <= 1 {
		// Everything fits in one run: sort in memory, emit directly.
		var recs []streamRec
		if ne > 0 {
			recs = sortRun(0, ne)
		}
		if err := emitRecs(recs); err != nil {
			return nil, err
		}
		return offsets(), nil
	}

	// Spill pass: sort each run and append its records to one temp file.
	spill, err := os.CreateTemp(opt.TmpDir, "hyve-stream-*.runs")
	if err != nil {
		return nil, err
	}
	defer func() {
		spill.Close()
		os.Remove(spill.Name())
	}()
	bw := bufio.NewWriterSize(spill, 1<<20)
	runBounds := make([]int64, runs+1) // record counts per run boundary
	var rec [streamRecBytes]byte
	for r := 0; r < runs; r++ {
		lo := r * ne / runs
		hi := (r + 1) * ne / runs
		for _, s := range sortRun(lo, hi) {
			binary.LittleEndian.PutUint32(rec[0:], uint32(s.block))
			binary.LittleEndian.PutUint32(rec[4:], s.src)
			binary.LittleEndian.PutUint32(rec[8:], s.dst)
			binary.LittleEndian.PutUint32(rec[12:], math.Float32bits(s.w))
			if _, err := bw.Write(rec[:]); err != nil {
				return nil, err
			}
		}
		runBounds[r+1] = runBounds[r] + int64(hi-lo)
	}
	if err := bw.Flush(); err != nil {
		return nil, err
	}

	// Merge pass: each run's records for block b are contiguous at its
	// reader's head when b comes around, so draining runs in order per
	// block replays BuildParallel's chunk-cursor scatter exactly.
	readers := make([]*runReader, runs)
	for r := 0; r < runs; r++ {
		readers[r] = newRunReader(spill, runBounds[r], runBounds[r+1])
	}
	eb := make([]graph.Edge, 0, streamEmitEdges)
	var wb []float32
	if g.Weights != nil {
		wb = make([]float32, 0, streamEmitEdges)
	}
	flush := func() error {
		if len(eb) == 0 {
			return nil
		}
		err := emit(eb, wb)
		eb = eb[:0]
		if wb != nil {
			wb = wb[:0]
		}
		return err
	}
	for b := int32(0); int(b) < nb; b++ {
		for _, rd := range readers {
			for rd.ok && rd.cur.block == b {
				eb = append(eb, graph.Edge{Src: rd.cur.src, Dst: rd.cur.dst})
				if wb != nil {
					wb = append(wb, rd.cur.w)
				}
				if len(eb) == cap(eb) {
					if err := flush(); err != nil {
						return nil, err
					}
				}
				if err := rd.advance(); err != nil {
					return nil, err
				}
			}
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	for _, rd := range readers {
		if rd.ok {
			return nil, fmt.Errorf("partition: stream merge left records behind (internal error)")
		}
	}
	return offsets(), nil
}

// runReader decodes one run's records sequentially with one-record
// lookahead, so the merge can test the head's block id.
type runReader struct {
	br  *bufio.Reader
	n   int64 // records remaining (including cur when ok)
	cur streamRec
	ok  bool
	// buf is the decode scratch; a field rather than a local so the
	// io.ReadFull interface boundary doesn't heap-allocate per record.
	buf [streamRecBytes]byte
}

func newRunReader(f *os.File, lo, hi int64) *runReader {
	rd := &runReader{
		br: bufio.NewReaderSize(io.NewSectionReader(f, lo*streamRecBytes, (hi-lo)*streamRecBytes), 1<<18),
		n:  hi - lo,
	}
	rd.ok = true
	// Prime the lookahead; an immediate error surfaces on first advance.
	_ = rd.advance()
	return rd
}

func (rd *runReader) advance() error {
	if rd.n == 0 {
		rd.ok = false
		return nil
	}
	if _, err := io.ReadFull(rd.br, rd.buf[:]); err != nil {
		rd.ok = false
		return fmt.Errorf("partition: reading spill run: %w", err)
	}
	rd.n--
	rd.cur = streamRec{
		block: int32(binary.LittleEndian.Uint32(rd.buf[0:])),
		src:   binary.LittleEndian.Uint32(rd.buf[4:]),
		dst:   binary.LittleEndian.Uint32(rd.buf[8:]),
		w:     math.Float32frombits(binary.LittleEndian.Uint32(rd.buf[12:])),
	}
	rd.ok = true
	return nil
}

// StreamGridInto streams g's grid layout under a into w as v2 grid
// sections (GOFF, GEDG, and GWGT when weighted) without materializing
// the grid. The assigner must be one of the two production families —
// the container header records which, so a loader can reconstruct the
// assigner and trust the stored layout.
func StreamGridInto(w *graph.V2Writer, g *graph.Graph, a Assigner, opt StreamOptions) error {
	switch t := a.(type) {
	case *Hashed:
		w.SetGrid(t.P(), false)
	case *Contiguous:
		w.SetGrid(t.P(), true)
	default:
		return fmt.Errorf("partition: v2 grid sections require a Hashed or Contiguous assigner, got %T", a)
	}

	// Weights must follow edges as their own section, so they are
	// spooled to a temp file during the edge pass and replayed after.
	var wspool *os.File
	var wbuf *bufio.Writer
	if g.Weights != nil {
		f, err := os.CreateTemp(opt.TmpDir, "hyve-stream-*.wgts")
		if err != nil {
			return err
		}
		defer func() {
			f.Close()
			os.Remove(f.Name())
		}()
		wspool, wbuf = f, bufio.NewWriterSize(f, 1<<20)
	}

	var offsets []int64
	var edgeBuf []byte
	emit := func(edges []graph.Edge, weights []float32) error {
		edgeBuf = edgeBuf[:0]
		for _, e := range edges {
			edgeBuf = binary.LittleEndian.AppendUint32(edgeBuf, e.Src)
			edgeBuf = binary.LittleEndian.AppendUint32(edgeBuf, e.Dst)
		}
		if _, err := w.Write(edgeBuf); err != nil {
			return err
		}
		if wbuf != nil {
			edgeBuf = edgeBuf[:0]
			for _, wt := range weights {
				edgeBuf = binary.LittleEndian.AppendUint32(edgeBuf, math.Float32bits(wt))
			}
			if _, err := wbuf.Write(edgeBuf); err != nil {
				return err
			}
		}
		return nil
	}

	// GEDG is written first: the stream yields edges immediately but
	// final offsets only at the end. Readers locate sections through the
	// table, so file order is free.
	if err := w.BeginSection(graph.SecGridEdg, graph.EncRaw); err != nil {
		return err
	}
	var err error
	offsets, err = streamGrid(g, a, opt, emit)
	if err != nil {
		return err
	}
	if err := w.EndSection(uint64(len(g.Edges))); err != nil {
		return err
	}

	if err := w.BeginSection(graph.SecGridOff, graph.EncRaw); err != nil {
		return err
	}
	var ob []byte
	for _, o := range offsets {
		ob = binary.LittleEndian.AppendUint64(ob, uint64(o))
	}
	if _, err := w.Write(ob); err != nil {
		return err
	}
	if err := w.EndSection(uint64(len(offsets))); err != nil {
		return err
	}

	if wspool != nil {
		if err := wbuf.Flush(); err != nil {
			return err
		}
		if _, err := wspool.Seek(0, io.SeekStart); err != nil {
			return err
		}
		if err := w.BeginSection(graph.SecGridWgt, graph.EncRaw); err != nil {
			return err
		}
		if _, err := io.Copy(w, bufio.NewReaderSize(wspool, 1<<20)); err != nil {
			return err
		}
		if err := w.EndSection(uint64(len(g.Weights))); err != nil {
			return err
		}
	}
	return nil
}

// StreamBuild builds the same Grid as BuildParallel with transient
// memory bounded by opt.BudgetBytes: the block-major stream is written
// to a temp file and mapped back, so the result's edge storage is
// file-backed (evictable under memory pressure) rather than heap. The
// returned closer releases the mapping and deletes the file; the Grid
// must not be used after closing. Hosts without mmap read the file back
// into heap slices (closer still deletes the file).
func StreamBuild(g *graph.Graph, a Assigner, opt StreamOptions) (*Grid, func() error, error) {
	f, err := os.CreateTemp(opt.TmpDir, "hyve-stream-*.grid")
	if err != nil {
		return nil, nil, err
	}
	fail := func(err error) (*Grid, func() error, error) {
		f.Close()
		os.Remove(f.Name())
		return nil, nil, err
	}

	weighted := g.Weights != nil
	bw := bufio.NewWriterSize(f, 1<<20)
	var wbytes int64
	var buf []byte
	// Layout in the temp file: all edges (8 B each), then all weights
	// (4 B each). Weights are buffered per emit chunk after the edge
	// region is known-sized? They are not — so spool weights in memory
	// per chunk is wrong. Use a second file for weights instead.
	var wf *os.File
	var wbw *bufio.Writer
	if weighted {
		wf, err = os.CreateTemp(opt.TmpDir, "hyve-stream-*.gridw")
		if err != nil {
			return fail(err)
		}
		wbw = bufio.NewWriterSize(wf, 1<<20)
	}
	failw := func(err error) (*Grid, func() error, error) {
		if wf != nil {
			wf.Close()
			os.Remove(wf.Name())
		}
		return fail(err)
	}

	emit := func(edges []graph.Edge, weights []float32) error {
		buf = buf[:0]
		for _, e := range edges {
			buf = binary.LittleEndian.AppendUint32(buf, e.Src)
			buf = binary.LittleEndian.AppendUint32(buf, e.Dst)
		}
		if _, err := bw.Write(buf); err != nil {
			return err
		}
		if weighted {
			buf = buf[:0]
			for _, wt := range weights {
				buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(wt))
			}
			wbytes += int64(len(buf))
			if _, err := wbw.Write(buf); err != nil {
				return err
			}
		}
		return nil
	}

	offsets, err := streamGrid(g, a, opt, emit)
	if err != nil {
		return failw(err)
	}
	if err := bw.Flush(); err != nil {
		return failw(err)
	}
	if weighted {
		if err := wbw.Flush(); err != nil {
			return failw(err)
		}
	}

	edges, eclose, err := mapOrRead(f, func(b []byte) ([]graph.Edge, bool) { return graph.EdgesFromBytes(b) }, decodeEdgeBytes)
	if err != nil {
		return failw(err)
	}
	var weights []float32
	wclose := func() error { return nil }
	if weighted {
		weights, wclose, err = mapOrRead(wf, func(b []byte) ([]float32, bool) { return graph.Float32sFromBytes(b) }, decodeWeightBytes)
		if err != nil {
			eclose()
			return failw(err)
		}
	}

	gr, err := GridFromParts(a, offsets, edges, weights)
	if err != nil {
		eclose()
		wclose()
		return failw(err)
	}
	closer := func() error {
		err1 := eclose()
		err2 := wclose()
		if err1 != nil {
			return err1
		}
		return err2
	}
	return gr, closer, nil
}

// mapOrRead turns a just-written temp file into a typed slice: mmap +
// zero-copy reinterpret when the host allows, full read-back otherwise.
// The returned closer unmaps (if mapped), closes, and deletes the file.
func mapOrRead[T any](f *os.File, view func([]byte) ([]T, bool), decode func([]byte) []T) ([]T, func() error, error) {
	cleanup := func() error {
		err := f.Close()
		os.Remove(f.Name())
		return err
	}
	if data, unmap, err := graph.MapFile(f); err == nil {
		if out, ok := view(data); ok {
			return out, func() error {
				err := unmap()
				cleanup()
				return err
			}, nil
		}
		// Mapped but not reinterpretable (alignment/byte order): decode
		// a heap copy and drop the mapping.
		out := decode(data)
		unmap()
		return out, cleanup, nil
	}
	st, err := f.Stat()
	if err != nil {
		cleanup()
		return nil, nil, err
	}
	raw := make([]byte, st.Size())
	if _, err := f.ReadAt(raw, 0); err != nil && st.Size() > 0 {
		cleanup()
		return nil, nil, err
	}
	return decode(raw), cleanup, nil
}

func decodeEdgeBytes(b []byte) []graph.Edge {
	out := make([]graph.Edge, len(b)/8)
	for i := range out {
		out[i] = graph.Edge{
			Src: binary.LittleEndian.Uint32(b[i*8:]),
			Dst: binary.LittleEndian.Uint32(b[i*8+4:]),
		}
	}
	return out
}

func decodeWeightBytes(b []byte) []float32 {
	out := make([]float32, len(b)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out
}

package partition

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/graph"
)

func streamTestGraph(t *testing.T, weighted bool) *graph.Graph {
	t.Helper()
	g, err := graph.GenerateRMAT(1<<11, 120_000, graph.RMATParams{A: 0.57, B: 0.19, C: 0.19, D: 0.05, Noise: 0.05}, 9)
	if err != nil {
		t.Fatal(err)
	}
	if weighted {
		graph.AttachUniformWeights(g, 8, 3)
	}
	return g
}

// TestStreamBuildMatchesBuildParallel pins the tentpole identity: the
// bounded-memory streaming builder produces byte-for-byte the layout of
// the in-memory build, at budgets small enough to force many spilled
// runs, for both assigner families and weighted/unweighted graphs.
func TestStreamBuildMatchesBuildParallel(t *testing.T) {
	for _, weighted := range []bool{false, true} {
		g := streamTestGraph(t, weighted)
		for _, mk := range []struct {
			name string
			make func() (Assigner, error)
		}{
			{"hashed", func() (Assigner, error) { return NewHashed(g.NumVertices, 8) }},
			{"contiguous", func() (Assigner, error) { return NewContiguous(g.NumVertices, 8) }},
		} {
			a, err := mk.make()
			if err != nil {
				t.Fatal(err)
			}
			want, err := BuildParallel(g, a, 0)
			if err != nil {
				t.Fatal(err)
			}
			// 1 MiB floor budget → ~43k-entry runs → 3 spilled runs.
			got, closer, err := StreamBuild(g, a, StreamOptions{BudgetBytes: 1, TmpDir: t.TempDir()})
			if err != nil {
				t.Fatalf("%s/weighted=%v: %v", mk.name, weighted, err)
			}
			gridsIdentical(t, "stream-spill", got, want)
			if err := closer(); err != nil {
				t.Errorf("closer: %v", err)
			}
			// And at a budget that keeps everything in one in-memory run.
			got2, closer2, err := StreamBuild(g, a, StreamOptions{TmpDir: t.TempDir()})
			if err != nil {
				t.Fatal(err)
			}
			gridsIdentical(t, "stream-mem", got2, want)
			if err := closer2(); err != nil {
				t.Errorf("closer: %v", err)
			}
		}
	}
}

// TestStreamGridIntoContainer writes grid sections through a V2Writer
// and checks a loaded container (a) carries the exact BuildParallel
// layout and (b) satisfies the prepared fast path, returning the stored
// layout without rebuilding.
func TestStreamGridIntoContainer(t *testing.T) {
	for _, weighted := range []bool{false, true} {
		g := streamTestGraph(t, weighted)
		a, err := NewHashed(g.NumVertices, 8)
		if err != nil {
			t.Fatal(err)
		}
		want, err := BuildParallel(g, a, 0)
		if err != nil {
			t.Fatal(err)
		}

		path := filepath.Join(t.TempDir(), "g.hyve2")
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		w, err := graph.NewV2Writer(f, g.NumVertices, len(g.Edges))
		if err != nil {
			t.Fatal(err)
		}
		if err := graph.WriteV2Into(w, g, graph.V2Options{}); err != nil {
			t.Fatal(err)
		}
		if err := StreamGridInto(w, g, a, StreamOptions{BudgetBytes: 1, TmpDir: t.TempDir()}); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}

		c, err := graph.OpenV2(path)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if c.GridP() != 8 {
			t.Fatalf("GridP = %d, want 8", c.GridP())
		}

		// Direct section verification.
		off, edges, wts, p, contig, ok := c.GridParts()
		if !ok || p != 8 || contig {
			t.Fatalf("GridParts: ok=%v p=%d contig=%v", ok, p, contig)
		}
		stored, err := GridFromParts(a, off, edges, wts)
		if err != nil {
			t.Fatal(err)
		}
		gridsIdentical(t, "stored", stored, want)

		// Fast path: building from the container's graph must return the
		// stored layout (aliased) for the matching assigner...
		fast, err := BuildParallel(c.Graph(), a, 0)
		if err != nil {
			t.Fatal(err)
		}
		gridsIdentical(t, "fastpath", fast, want)
		if len(fast.edges) > 0 && len(stored.edges) > 0 && &fast.edges[0] != &stored.edges[0] {
			t.Errorf("fast path did not alias the stored grid")
		}
		// ...and must NOT trigger for a different P or family.
		a4, err := NewHashed(g.NumVertices, 4)
		if err != nil {
			t.Fatal(err)
		}
		rebuilt, err := BuildParallel(c.Graph(), a4, 0)
		if err != nil {
			t.Fatal(err)
		}
		want4, err := BuildParallel(g, a4, 0)
		if err != nil {
			t.Fatal(err)
		}
		gridsIdentical(t, "rebuilt-p4", rebuilt, want4)
	}
}

// TestStreamGridIntoRejectsCustomAssigner: the container header can
// only name the two production families.
func TestStreamGridIntoRejectsCustomAssigner(t *testing.T) {
	g := streamTestGraph(t, false)
	f, err := os.Create(filepath.Join(t.TempDir(), "g.hyve2"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w, err := graph.NewV2Writer(f, g.NumVertices, len(g.Edges))
	if err != nil {
		t.Fatal(err)
	}
	if err := StreamGridInto(w, g, customAssigner{n: g.NumVertices}, StreamOptions{}); err == nil {
		t.Fatal("custom assigner accepted for container grid sections")
	}
}

type customAssigner struct{ n int }

func (c customAssigner) NumVertices() int                { return c.n }
func (c customAssigner) P() int                          { return 4 }
func (c customAssigner) IntervalOf(v graph.VertexID) int { return int(v) % 4 }
func (c customAssigner) IndexWithin(v graph.VertexID) int {
	return int(v) / 4
}
func (c customAssigner) IntervalLen(i int) int { return (c.n + 3 - i) / 4 }
func (c customAssigner) VertexAt(interval, index int) graph.VertexID {
	return graph.VertexID(index*4 + interval)
}

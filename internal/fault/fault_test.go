package fault

import (
	"errors"
	"math"
	"testing"

	"repro/internal/device"
	"repro/internal/units"
)

func TestCheckBits(t *testing.T) {
	// Hamming + overall parity: the classic geometries.
	for _, tc := range []struct{ data, want int }{
		{8, 5}, {16, 6}, {32, 7}, {64, 8}, {128, 9},
	} {
		if got := CheckBits(tc.data); got != tc.want {
			t.Errorf("CheckBits(%d) = %d, want %d", tc.data, got, tc.want)
		}
	}
}

// TestClassifyBoundary pins the SECDED decision boundary: exactly one
// bad bit corrects, exactly two detect without correcting, three or
// more are counted silent (the pessimistic aliasing bound), and with no
// code at all every errored word is silent.
func TestClassifyBoundary(t *testing.T) {
	secded := SECDED(64)
	var s Stats
	secded.classify(1, &s)
	if s.Corrected != 1 || s.Detected != 1 || s.Uncorrectable != 0 || s.Silent != 0 {
		t.Errorf("1-bit: %+v", s)
	}
	s = Stats{}
	secded.classify(2, &s)
	if s.Corrected != 0 || s.Detected != 1 || s.Uncorrectable != 1 || s.Silent != 0 {
		t.Errorf("2-bit: %+v", s)
	}
	for _, bits := range []int64{3, 4, 17} {
		s = Stats{}
		secded.classify(bits, &s)
		if s.Corrected != 0 || s.Detected != 0 || s.Uncorrectable != 0 || s.Silent != 1 {
			t.Errorf("%d-bit: %+v", bits, s)
		}
	}
	none := ECCParams{Kind: ECCNone, WordBits: 64}
	for _, bits := range []int64{1, 2, 5} {
		s = Stats{}
		none.classify(bits, &s)
		if s.Silent != 1 || s.Detected != 0 {
			t.Errorf("ECCNone %d-bit: %+v", bits, s)
		}
	}
}

func TestSweepDeterministic(t *testing.T) {
	cfg := Config{Enabled: true, Seed: 99, RawBER: 1e-4, StuckBitRate: 1e-5, ECC: ECCSECDED}
	in, err := NewInjector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := in.Sweep(5000, 64, 3)
	if err != nil {
		t.Fatal(err)
	}
	in2, _ := NewInjector(cfg)
	b, err := in2.Sweep(5000, 64, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same config, different stats:\n%+v\n%+v", a, b)
	}
	if a.Injected == 0 || a.WordDigest == 0 {
		t.Fatalf("sweep at BER 1e-4 injected nothing: %+v", a)
	}
	cfg.Seed = 100
	in3, _ := NewInjector(cfg)
	c, err := in3.Sweep(5000, 64, 3)
	if err != nil {
		t.Fatal(err)
	}
	if c.WordDigest == a.WordDigest {
		t.Error("different seeds produced identical flip-position digests")
	}
}

// TestSweepFlipCountTracksBER holds the exact sampler to its law: the
// realized flip count over a known bit space must sit near expectation
// (it is a true Bernoulli process, so 6 sigma bounds it generously).
func TestSweepFlipCountTracksBER(t *testing.T) {
	const (
		lines, lineBytes, iters = 10000, 64, 4
		ber                     = 1e-3
	)
	cfg := Config{Enabled: true, Seed: 7, RawBER: ber, ECC: ECCSECDED}
	in, err := NewInjector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := in.Sweep(lines, lineBytes, iters)
	if err != nil {
		t.Fatal(err)
	}
	wordsPerLine := (lineBytes*8 + 63) / 64
	codeBits := 64 + CheckBits(64)
	n := float64(lines) * float64(wordsPerLine) * float64(codeBits) * iters
	mean := n * ber
	sigma := math.Sqrt(n * ber * (1 - ber))
	if diff := math.Abs(float64(s.Flipped) - mean); diff > 6*sigma {
		t.Errorf("flips %d vs expectation %.0f (±%.0f): off by %.1f sigma",
			s.Flipped, mean, sigma, diff/sigma)
	}
	if s.LinesRead != lines*iters {
		t.Errorf("LinesRead = %d, want %d", s.LinesRead, lines*iters)
	}
}

func TestSweepStuckCellsRepeatPerIteration(t *testing.T) {
	cfg := Config{Enabled: true, Seed: 3, StuckBitRate: 1e-4, ECC: ECCSECDED}
	in, err := NewInjector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	one, err := in.Sweep(2000, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	four, err := in.Sweep(2000, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	if one.Stuck == 0 {
		t.Fatal("no stuck cells sampled at rate 1e-4")
	}
	if four.Stuck != one.Stuck {
		t.Errorf("stuck cell population changed with iteration count: %d vs %d", four.Stuck, one.Stuck)
	}
	if four.Injected != 4*one.Injected {
		t.Errorf("stuck cells must be re-observed every iteration: %d vs 4×%d", four.Injected, one.Injected)
	}
}

func TestSweepZeroConfig(t *testing.T) {
	in, err := NewInjector(Config{Enabled: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s, err := in.Sweep(1000, 64, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.Injected != 0 || s.WordDigest != 0 || s.LinesRead != 2000 {
		t.Errorf("zero-rate sweep: %+v", s)
	}
}

func TestVictimsDeterministicAndDistinct(t *testing.T) {
	cfg := Config{Enabled: true, Seed: 11, FailedBanks: 5}
	in, err := NewInjector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := in.Victims(64)
	b := in.Victims(64)
	if len(a) != 5 {
		t.Fatalf("got %d victims, want 5", len(a))
	}
	seen := map[int]bool{}
	for i, v := range a {
		if v != b[i] {
			t.Fatalf("victims not deterministic: %v vs %v", a, b)
		}
		if v < 0 || v >= 64 || seen[v] {
			t.Fatalf("victim %d out of range or repeated in %v", v, a)
		}
		seen[v] = true
	}
	if got := in.Victims(3); len(got) != 3 {
		t.Errorf("more failures than banks must fail every bank: %v", got)
	}
	if got := in.Victims(0); got != nil {
		t.Errorf("no banks touched but victims drawn: %v", got)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Enabled: true, RawBER: -0.1},
		{Enabled: true, RawBER: 1},
		{Enabled: true, StuckBitRate: 2},
		{Enabled: true, FailedBanks: -1},
		{Enabled: true, WordBits: 12},
		{Enabled: true, ECC: ECCKind(9)},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d (%+v) validated", i, c)
		}
	}
	if err := (Config{RawBER: -5}).Validate(); err != nil {
		t.Errorf("disabled config must not be validated: %v", err)
	}
	if err := (Config{Enabled: true, RawBER: 1e-3, ECC: ECCSECDED, WordBits: 32}).Validate(); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
}

// flatDev is a minimal fixed-cost device for exercising the ECC wrap.
type flatDev struct{}

func (flatDev) Name() string            { return "flat" }
func (flatDev) LineBytes() int          { return 64 }
func (flatDev) CapacityBytes() int64    { return 1 << 30 }
func (flatDev) Read(bool) device.Cost   { return device.Cost{Latency: 1000, Energy: 100} }
func (flatDev) Write(bool) device.Cost  { return device.Cost{Latency: 2000, Energy: 200} }
func (flatDev) Background() units.Power { return 5 }

func TestWrapPricesTheCode(t *testing.T) {
	p := SECDED(64)
	m := Wrap(flatDev{}, p)
	if m.LineBytes() != 64 {
		t.Errorf("data line width changed: %d", m.LineBytes())
	}
	// (72,64): capacity shrinks by 64/72, reads gain the decode latency,
	// energy scales by the sensed-cell overhead plus the decode tree.
	raw := float64(int64(1 << 30))
	if got, want := m.CapacityBytes(), int64(raw*64.0/72.0); got != want {
		t.Errorf("capacity = %d, want %d", got, want)
	}
	rd := m.Read(true)
	if rd.Latency != 1000+p.DecodeLatency {
		t.Errorf("read latency = %v", rd.Latency)
	}
	wantE := units.Energy(float64(100)*72.0/64.0) + p.DecodeEnergy
	if rd.Energy != wantE {
		t.Errorf("read energy = %v, want %v", rd.Energy, wantE)
	}
	if m.Background() != 5 {
		t.Errorf("background changed: %v", m.Background())
	}
	if same := Wrap(flatDev{}, ECCParams{Kind: ECCNone}); same != (flatDev{}) {
		t.Error("ECCNone wrap is not the identity")
	}
}

func TestSentinelErrors(t *testing.T) {
	if !errors.Is(ErrUncorrectable, ErrUncorrectable) || ErrUncorrectable.Error() == "" {
		t.Error("ErrUncorrectable malformed")
	}
	if ErrBankLoss.Error() == "" {
		t.Error("ErrBankLoss malformed")
	}
}

package fault

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/units"
)

// ECCKind selects the error-correcting code on the edge stream.
type ECCKind int

// ECC kinds.
const (
	// ECCNone stores raw data: every injected error is silent.
	ECCNone ECCKind = iota
	// ECCSECDED protects each WordBits-wide word with a Hamming code
	// plus overall parity: single-bit errors are corrected, double-bit
	// errors are detected, three or more bits may alias silently.
	ECCSECDED
)

func (k ECCKind) String() string {
	switch k {
	case ECCNone:
		return "none"
	case ECCSECDED:
		return "secded"
	default:
		return fmt.Sprintf("ECCKind(%d)", int(k))
	}
}

// DefaultWordBits is the codeword data width of the classic SECDED
// (72,64) geometry commodity ECC DIMMs use.
const DefaultWordBits = 64

// CheckBits returns the SECDED check-bit count for a data width: the
// smallest r with 2^r ≥ dataBits + r + 1, plus the overall parity bit.
func CheckBits(dataBits int) int {
	r := 1
	for (1 << r) < dataBits+r+1 {
		r++
	}
	return r + 1
}

// ECCParams price the code: the storage overhead is CheckBits extra
// cells sensed per word, the syndrome computation adds per-line decode
// latency and energy, and each correction pays an extra shift-and-flip.
// The operating points are XOR-tree scale estimates at the paper's
// 22 nm node, small against the ReRAM array access they ride on
// (~2 ns / ~100 pJ per 512-bit line, Table 3).
type ECCParams struct {
	Kind      ECCKind
	WordBits  int
	CheckBits int
	// DecodeLatency/DecodeEnergy are charged once per line read (the
	// syndrome trees for all words of the line operate in parallel).
	DecodeLatency units.Time
	DecodeEnergy  units.Energy
	// CorrectLatency/CorrectEnergy are charged per corrected word.
	CorrectLatency units.Time
	CorrectEnergy  units.Energy
}

// SECDED returns the default SECDED operating point for a data width.
func SECDED(wordBits int) ECCParams {
	if wordBits <= 0 {
		wordBits = DefaultWordBits
	}
	return ECCParams{
		Kind:           ECCSECDED,
		WordBits:       wordBits,
		CheckBits:      CheckBits(wordBits),
		DecodeLatency:  150 * units.Picosecond,
		DecodeEnergy:   1 * units.Picojoule,
		CorrectLatency: 500 * units.Picosecond,
		CorrectEnergy:  2 * units.Picojoule,
	}
}

// ECCParams resolves the configuration's code into its operating point.
func (c Config) ECCParams() ECCParams {
	if !c.Enabled || c.ECC == ECCNone {
		return ECCParams{Kind: ECCNone, WordBits: c.wordBits()}
	}
	return SECDED(c.wordBits())
}

// overhead is the storage/sensing overhead factor: code bits per data bit.
func (p ECCParams) overhead() float64 {
	if p.Kind == ECCNone || p.WordBits <= 0 {
		return 1
	}
	return float64(p.WordBits+p.CheckBits) / float64(p.WordBits)
}

// Apply prices the code into one per-line access cost: the extra check
// cells are sensed (energy scales with the overhead factor) and the
// syndrome decode is sequenced after the array delivers.
func (p ECCParams) Apply(c device.Cost) device.Cost {
	if p.Kind == ECCNone {
		return c
	}
	return device.Cost{
		Latency: c.Latency + p.DecodeLatency,
		Energy:  c.Energy.Times(p.overhead()) + p.DecodeEnergy,
	}
}

// classify maps a word's erroneous-bit count onto the ECC outcome.
func (p ECCParams) classify(bits int64, s *Stats) {
	if bits <= 0 {
		return
	}
	if p.Kind == ECCNone {
		s.Silent++
		return
	}
	switch bits {
	case 1:
		s.Corrected++
		s.Detected++
	case 2:
		s.Uncorrectable++
		s.Detected++
	default:
		// Three or more flipped bits can alias onto a valid or
		// single-error syndrome; count the word silent — the bound a
		// reliability analysis must price, not the optimistic case.
		s.Silent++
	}
}

// eccMemory wraps a device.Memory with the code priced into every
// access. Capacity shrinks by the overhead factor: the check cells
// occupy real array space.
type eccMemory struct {
	dev device.Memory
	p   ECCParams
}

// Wrap prices p into dev. With ECCNone the device is returned unchanged,
// so a disabled code is exactly free.
func Wrap(dev device.Memory, p ECCParams) device.Memory {
	if p.Kind == ECCNone {
		return dev
	}
	return &eccMemory{dev: dev, p: p}
}

// Name implements device.Memory.
func (m *eccMemory) Name() string {
	return fmt.Sprintf("%s+secded%d", m.dev.Name(), m.p.WordBits+m.p.CheckBits)
}

// LineBytes implements device.Memory: the data line the consumer sees is
// unchanged; the check cells ride in spare columns.
func (m *eccMemory) LineBytes() int { return m.dev.LineBytes() }

// CapacityBytes implements device.Memory.
func (m *eccMemory) CapacityBytes() int64 {
	return int64(float64(m.dev.CapacityBytes()) / m.p.overhead())
}

// Read implements device.Memory.
func (m *eccMemory) Read(sequential bool) device.Cost {
	return m.p.Apply(m.dev.Read(sequential))
}

// Write implements device.Memory: encoding mirrors the decode tree.
func (m *eccMemory) Write(sequential bool) device.Cost {
	return m.p.Apply(m.dev.Write(sequential))
}

// Background implements device.Memory.
func (m *eccMemory) Background() units.Power { return m.dev.Background() }

var _ device.Memory = (*eccMemory)(nil)

// Package fault is the resilience layer of the simulator stack: a
// deterministic, seeded fault-injection framework for the ReRAM edge
// memory (read-disturb bit flips, stuck-at cells, whole-bank failures),
// a SECDED ECC model whose correction and detection are priced into the
// per-access cost the simulators charge, and graceful degradation via
// spare-bank remapping (internal/mem.BankRemap).
//
// Every outcome derives only from the configuration — seed, rates, and
// the streamed geometry — never from wall-clock, map order, or worker
// count: the same seed produces the same flip positions, the same
// corrected/uncorrectable counts, and therefore the same artifact bytes
// at any parallelism. The framework doubles as the test bed for the
// harness-hardening work (panic isolation in internal/parallel, point
// timeouts in internal/check, crash-safe artifact writes in
// internal/obs): faults injected here must degrade every layer above
// gracefully, never corrupt it.
package fault

import (
	"errors"
	"fmt"
)

// Config selects what is injected into the edge-memory stream. The zero
// value is "no faults": every rate zero, ECC off, nothing priced — a
// simulation with the zero Config is bit-identical to one without the
// fault layer at all (golden-tested).
type Config struct {
	// Enabled turns the fault layer on. With it false every other field
	// is ignored and the simulator takes its pre-fault paths untouched.
	Enabled bool
	// Seed drives every random draw. Same seed ⇒ same flip positions,
	// same victim banks, same counts — at any worker count.
	Seed uint64
	// RawBER is the raw per-bit read-disturb probability: each code bit
	// of each line read flips independently with this probability.
	RawBER float64
	// StuckBitRate is the fraction of array cell positions stuck at a
	// value that disagrees with the stored data: every read of a line
	// holding a stuck cell sees that bit in error (the pessimistic,
	// deterministic reading of a stuck-at fault).
	StuckBitRate float64
	// FailedBanks is the number of whole-bank hard failures present at
	// run start among the banks the edge stream touches. Each victim is
	// remapped onto a spare bank; with the spare pool exhausted the run
	// aborts with ErrBankLoss (stored edges are gone).
	FailedBanks int
	// SpareBanks is the size of the spare-bank pool available for
	// remapping (§graceful degradation). A remapped bank inherits the
	// victim's gate schedule, so bank-level power gating statistics are
	// invariant under remapping.
	SpareBanks int
	// ECC selects the per-word error-correcting code on the edge
	// stream. ECCNone leaves every injected error a silent corruption.
	ECC ECCKind
	// WordBits is the ECC codeword data width (default 64, giving the
	// classic SECDED (72,64) geometry).
	WordBits int
	// AbortOnUncorrectable makes the simulator return ErrUncorrectable
	// when a detected-uncorrectable word is encountered, instead of
	// completing the run with the count recorded.
	AbortOnUncorrectable bool
}

// Validate rejects non-physical configurations.
func (c Config) Validate() error {
	if !c.Enabled {
		return nil
	}
	if c.RawBER < 0 || c.RawBER >= 1 {
		return fmt.Errorf("fault: raw BER %v outside [0, 1)", c.RawBER)
	}
	if c.StuckBitRate < 0 || c.StuckBitRate >= 1 {
		return fmt.Errorf("fault: stuck-bit rate %v outside [0, 1)", c.StuckBitRate)
	}
	if c.FailedBanks < 0 || c.SpareBanks < 0 {
		return fmt.Errorf("fault: negative bank counts (failed %d, spare %d)", c.FailedBanks, c.SpareBanks)
	}
	if c.WordBits < 0 {
		return fmt.Errorf("fault: negative ECC word width %d", c.WordBits)
	}
	if c.WordBits != 0 && c.WordBits%8 != 0 {
		return fmt.Errorf("fault: ECC word width %d not a multiple of 8", c.WordBits)
	}
	switch c.ECC {
	case ECCNone, ECCSECDED:
	default:
		return fmt.Errorf("fault: unknown ECC kind %d", int(c.ECC))
	}
	return nil
}

// wordBits resolves the codeword data width.
func (c Config) wordBits() int {
	if c.WordBits > 0 {
		return c.WordBits
	}
	return DefaultWordBits
}

// Stats is the outcome of one injected run. All counts are exact for
// the seed, not expectations.
type Stats struct {
	// LinesRead is the number of line reads scanned (per-iteration lines
	// × iterations).
	LinesRead int64
	// Injected is the total erroneous bits observed across all reads:
	// read-disturb flips plus stuck-cell disagreements.
	Injected int64
	// Flipped counts read-disturb flip events; Stuck counts distinct
	// stuck cells inside the streamed footprint (each contributes one
	// erroneous bit per iteration).
	Flipped int64
	Stuck   int64
	// Corrected is the number of words the ECC corrected (single-bit).
	Corrected int64
	// Detected is the number of words where the ECC saw an error at all
	// (corrected + uncorrectable).
	Detected int64
	// Uncorrectable is the number of detected-but-uncorrectable words
	// (double-bit under SECDED).
	Uncorrectable int64
	// Silent is the number of corrupted words no ECC flagged: every
	// errored word under ECCNone, and ≥3-bit words under SECDED (aliasing
	// is counted as silent — the pessimistic bound).
	Silent int64
	// BanksFailed and BanksRemapped record the hard-failure outcome.
	BanksFailed   int64
	BanksRemapped int64
	// WordDigest is an order-independent hash of every (word index,
	// error count) pair — two runs with identical flip positions have
	// identical digests, which is how the determinism tests pin
	// "identical positions", not just identical counts.
	WordDigest uint64
}

// ErrUncorrectable is returned (wrapped) by simulations configured to
// abort when a detected-uncorrectable word is encountered.
var ErrUncorrectable = errors.New("fault: uncorrectable edge-memory error")

// ErrBankLoss is returned (wrapped) when more banks fail than the spare
// pool can absorb: the edges stored there are unrecoverable.
var ErrBankLoss = errors.New("fault: bank failure with spare pool exhausted")

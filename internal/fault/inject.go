package fault

import (
	"fmt"
	"math"
)

// Injector samples the configured error processes over a streamed line
// sequence. Sampling is exact (a true Bernoulli process realized by
// geometric gap-walking, cost proportional to the number of faults, not
// the number of bits) and deterministic: every draw comes from a
// private generator seeded only by Config.Seed, so identical
// configurations produce identical flip positions regardless of worker
// count, map iteration, or host.
type Injector struct {
	cfg Config
	ecc ECCParams
}

// NewInjector validates cfg and builds the sampler.
func NewInjector(cfg Config) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Injector{cfg: cfg, ecc: cfg.ECCParams()}, nil
}

// ECC returns the injector's resolved code operating point.
func (in *Injector) ECC() ECCParams { return in.ecc }

// splitmix64 is the avalanche mixer used to derive independent stream
// seeds from the base seed; each sampling stream (flips, stuck cells,
// bank victims) gets its own label so adding one never perturbs another.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// prng is the sequential generator behind one sampling stream
// (xorshift64*, the same core internal/graph.RNG uses).
type prng struct{ state uint64 }

func newPRNG(seed, label uint64) *prng {
	s := splitmix64(seed ^ splitmix64(label))
	if s == 0 {
		s = 0x9E3779B97F4A7C15
	}
	return &prng{state: s}
}

func (r *prng) uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// float64 returns a uniform value in (0, 1]: the open-at-zero side keeps
// log(u) finite in the geometric sampler.
func (r *prng) float64() float64 {
	return float64(r.uint64()>>11+1) / (1 << 53)
}

// geometric walks a Bernoulli(p) process over [0, n) bit positions,
// calling visit for each success. Cost is O(n·p), not O(n).
func geometric(r *prng, n float64, p float64, visit func(pos uint64)) {
	if p <= 0 || n <= 0 {
		return
	}
	lq := math.Log1p(-p)
	pos := 0.0
	for {
		// Gap to the next success, inclusive of the current position.
		gap := math.Floor(math.Log(r.float64()) / lq)
		pos += gap
		if pos >= n {
			return
		}
		visit(uint64(pos))
		pos++
	}
}

// Sweep injects the configured error processes into a run that streams
// linesPerIter lines per iteration for iters iterations, classifying
// every erroneous word through the configured ECC. The scan is a pure
// function of (Config, linesPerIter, lineBytes, iters).
func (in *Injector) Sweep(linesPerIter int64, lineBytes, iters int) (Stats, error) {
	var s Stats
	if linesPerIter <= 0 || iters <= 0 {
		return s, nil
	}
	if lineBytes <= 0 {
		return s, fmt.Errorf("fault: non-positive line width %d bytes", lineBytes)
	}
	wordBits := in.ecc.WordBits
	if wordBits <= 0 {
		wordBits = DefaultWordBits
	}
	wordsPerLine := (lineBytes*8 + wordBits - 1) / wordBits
	codeBits := wordBits + in.ecc.CheckBits
	bitsPerWord := float64(codeBits)
	bitsPerIter := float64(linesPerIter) * float64(wordsPerLine) * bitsPerWord
	totalBits := bitsPerIter * float64(iters)
	s.LinesRead = linesPerIter * int64(iters)

	// Erroneous bits per (iteration, line, word) read. Keys are dense
	// word-read indices; values the number of bad bits that read saw.
	words := map[uint64]int64{}
	wordOf := func(bit uint64) uint64 { return bit / uint64(codeBits) }

	// Read-disturb flips: independent per code bit per read, so one
	// Bernoulli walk over the whole run's read-bit space.
	flips := newPRNG(in.cfg.Seed, 0xF11B)
	geometric(flips, totalBits, in.cfg.RawBER, func(bit uint64) {
		s.Flipped++
		words[wordOf(bit)]++
	})

	// Stuck cells: a fixed set of positions in the one-iteration
	// footprint; every iteration's read of that line re-observes them.
	stride := uint64(linesPerIter) * uint64(wordsPerLine) * uint64(codeBits)
	stuck := newPRNG(in.cfg.Seed, 0x57C4)
	geometric(stuck, bitsPerIter, in.cfg.StuckBitRate, func(bit uint64) {
		s.Stuck++
		for it := 0; it < iters; it++ {
			words[wordOf(bit+uint64(it)*stride)]++
		}
	})

	for w, bits := range words {
		s.Injected += bits
		in.ecc.classify(bits, &s)
		// Order-independent position digest: XOR of per-entry mixes.
		s.WordDigest ^= splitmix64(w*0x9E37 + uint64(bits))
	}
	return s, nil
}

// Victims draws the distinct banks (among the banksTouched banks the
// stream visits) struck by whole-bank hard failures, deterministically
// from the seed. When more failures are configured than banks exist,
// every bank fails.
func (in *Injector) Victims(banksTouched int) []int {
	n := in.cfg.FailedBanks
	if n <= 0 || banksTouched <= 0 {
		return nil
	}
	if n > banksTouched {
		n = banksTouched
	}
	r := newPRNG(in.cfg.Seed, 0xBA4C)
	// Partial Fisher–Yates over the touched banks.
	ids := make([]int, banksTouched)
	for i := range ids {
		ids[i] = i
	}
	for i := 0; i < n; i++ {
		j := i + int(r.uint64()%uint64(banksTouched-i))
		ids[i], ids[j] = ids[j], ids[i]
	}
	return ids[:n]
}

// Package sim is a minimal discrete-event simulation engine: a time-
// ordered event queue with deterministic FIFO tie-breaking. The memory-
// channel models (internal/mem) use it to simulate request-level bank
// timing — the paper's "custom cycle-accurate simulator" fidelity for
// the questions that need it (interleaving policies, §3.1).
package sim

import (
	"container/heap"
	"fmt"

	"repro/internal/units"
)

// Event is a scheduled callback.
type event struct {
	at  units.Time
	seq uint64 // FIFO order among simultaneous events
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Engine runs events in time order. The zero value is NOT ready; use New.
type Engine struct {
	now    units.Time
	queue  eventQueue
	seq    uint64
	fired  int64
	budget int64
}

// New returns an engine at time zero. maxEvents bounds runaway
// simulations (0 means a generous default).
func New(maxEvents int64) *Engine {
	if maxEvents <= 0 {
		maxEvents = 1 << 30
	}
	return &Engine{budget: maxEvents}
}

// Now returns the current simulation time.
func (e *Engine) Now() units.Time { return e.now }

// Fired returns how many events have executed.
func (e *Engine) Fired() int64 { return e.fired }

// At schedules fn at an absolute time; scheduling in the past panics
// (it is always a model bug).
func (e *Engine) At(t units.Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, e.now))
	}
	e.seq++
	heap.Push(&e.queue, &event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn delay after the current time.
func (e *Engine) After(delay units.Time, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	e.At(e.now+delay, fn)
}

// Run executes events until the queue drains and returns the final time.
func (e *Engine) Run() (units.Time, error) {
	for e.queue.Len() > 0 {
		if e.fired >= e.budget {
			return e.now, fmt.Errorf("sim: event budget %d exhausted at t=%v", e.budget, e.now)
		}
		ev := heap.Pop(&e.queue).(*event)
		e.now = ev.at
		e.fired++
		ev.fn()
	}
	return e.now, nil
}

// Resource is a single-server FIFO resource: requests acquire it for a
// service duration and callers learn their completion time. It is the
// building block for banks, subbanks, and channel ports.
type Resource struct {
	eng      *Engine
	freeAt   units.Time
	BusyTime units.Time
	Served   int64
}

// NewResource attaches a resource to an engine.
func NewResource(eng *Engine) *Resource {
	return &Resource{eng: eng}
}

// Acquire reserves the resource for service starting no earlier than the
// current simulation time, returning (start, end). The caller typically
// schedules its completion callback at end.
func (r *Resource) Acquire(service units.Time) (start, end units.Time) {
	return r.AcquireAt(r.eng.Now(), service)
}

// AcquireAt reserves the resource for service starting no earlier than
// both `earliest` and the resource's own availability — the FIFO
// queueing primitive for chained resources (array → port).
func (r *Resource) AcquireAt(earliest, service units.Time) (start, end units.Time) {
	if service < 0 {
		panic("sim: negative service time")
	}
	start = r.eng.Now()
	if earliest > start {
		start = earliest
	}
	if r.freeAt > start {
		start = r.freeAt
	}
	end = start + service
	r.freeAt = end
	r.BusyTime += service
	r.Served++
	return start, end
}

// FreeAt returns when the resource next becomes idle.
func (r *Resource) FreeAt() units.Time { return r.freeAt }

package sim

import (
	"testing"

	"repro/internal/units"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	e := New(0)
	var order []int
	e.At(30*units.Nanosecond, func() { order = append(order, 3) })
	e.At(10*units.Nanosecond, func() { order = append(order, 1) })
	e.At(20*units.Nanosecond, func() { order = append(order, 2) })
	end, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if end != 30*units.Nanosecond {
		t.Errorf("final time = %v", end)
	}
	for i, v := range order {
		if v != i+1 {
			t.Fatalf("order = %v", order)
		}
	}
	if e.Fired() != 3 {
		t.Errorf("fired = %d", e.Fired())
	}
}

func TestSimultaneousEventsAreFIFO(t *testing.T) {
	e := New(0)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5*units.Nanosecond, func() { order = append(order, i) })
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events not FIFO: %v", order)
		}
	}
}

func TestEventsCanScheduleEvents(t *testing.T) {
	e := New(0)
	hops := 0
	var hop func()
	hop = func() {
		hops++
		if hops < 5 {
			e.After(units.Nanosecond, hop)
		}
	}
	e.At(0, hop)
	end, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if hops != 5 || end != 4*units.Nanosecond {
		t.Errorf("hops=%d end=%v", hops, end)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := New(0)
	e.At(10*units.Nanosecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5*units.Nanosecond, func() {})
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Negative delay likewise.
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	e.After(-units.Nanosecond, func() {})
}

func TestEventBudget(t *testing.T) {
	e := New(3)
	var loop func()
	loop = func() { e.After(units.Nanosecond, loop) }
	e.At(0, loop)
	if _, err := e.Run(); err == nil {
		t.Error("runaway simulation not stopped")
	}
}

func TestResourceFIFO(t *testing.T) {
	e := New(0)
	r := NewResource(e)
	s1, e1 := r.Acquire(10 * units.Nanosecond)
	s2, e2 := r.Acquire(5 * units.Nanosecond)
	if s1 != 0 || e1 != 10*units.Nanosecond {
		t.Errorf("first acquire (%v,%v)", s1, e1)
	}
	if s2 != 10*units.Nanosecond || e2 != 15*units.Nanosecond {
		t.Errorf("second acquire queued wrong: (%v,%v)", s2, e2)
	}
	if r.BusyTime != 15*units.Nanosecond || r.Served != 2 {
		t.Errorf("stats: busy=%v served=%d", r.BusyTime, r.Served)
	}
}

func TestResourceAcquireAt(t *testing.T) {
	e := New(0)
	r := NewResource(e)
	// Earliest in the future delays the start.
	s, end := r.AcquireAt(7*units.Nanosecond, 2*units.Nanosecond)
	if s != 7*units.Nanosecond || end != 9*units.Nanosecond {
		t.Errorf("AcquireAt = (%v,%v)", s, end)
	}
	// But the resource's own availability still dominates.
	s2, _ := r.AcquireAt(time0(), 1*units.Nanosecond)
	if s2 != 9*units.Nanosecond {
		t.Errorf("second AcquireAt start = %v, want 9ns", s2)
	}
	if r.FreeAt() != 10*units.Nanosecond {
		t.Errorf("FreeAt = %v", r.FreeAt())
	}
}

func time0() units.Time { return 0 }

func TestNegativeServicePanics(t *testing.T) {
	e := New(0)
	r := NewResource(e)
	defer func() {
		if recover() == nil {
			t.Error("negative service did not panic")
		}
	}()
	r.Acquire(-units.Nanosecond)
}

package parallel

import (
	"context"
	"time"
)

// Backoff defaults, used wherever the corresponding field is zero.
const (
	DefaultBackoffBase   = 50 * time.Millisecond
	DefaultBackoffCap    = 2 * time.Second
	DefaultBackoffJitter = 0.5
)

// Backoff is the shared capped jittered exponential delay schedule for
// retrying failed work: the pool's per-point retries, the cluster
// coordinator's shard reassignments, and a worker's reconnect loop all
// draw their delays from it. Attempt k (0-based) waits roughly
// Base·2^k, capped at Cap, with the top Jitter fraction of each delay
// randomized so independent retriers (different points, different
// shards, different workers) decorrelate instead of stampeding in
// lockstep.
//
// The jitter is deterministic: it derives from (Seed, attempt) alone
// via a splitmix64 hash, so a given schedule is reproducible — use
// ForKey to give each retrier its own decorrelated stream. Determinism
// matters here the same way it does everywhere else in this repo: a
// retry schedule observed in a failure report can be replayed exactly.
//
// The zero value is ready to use with the package defaults.
type Backoff struct {
	// Base is the delay before the first re-attempt (0 = DefaultBackoffBase).
	Base time.Duration
	// Cap bounds any single delay (0 = DefaultBackoffCap).
	Cap time.Duration
	// Jitter is the fraction of each delay that is randomized, in [0, 1]:
	// attempt k waits in [d·(1−Jitter), d] for d the capped exponential
	// delay. 0 means DefaultBackoffJitter; negative disables jitter.
	Jitter float64
	// Seed selects the deterministic jitter stream (see ForKey).
	Seed uint64
	// After is the timer Wait sleeps on; nil means time.After. Tests
	// inject a fake to pin the schedule without real sleeping.
	After func(time.Duration) <-chan time.Time
}

// ForKey returns a copy of b whose jitter stream is decorrelated by
// key: every shard, point index, or worker retrying under the same
// policy should pass its own key so their jittered delays spread out.
func (b Backoff) ForKey(key uint64) Backoff {
	b.Seed = splitmix64(b.Seed ^ (key + 0x9E3779B97F4A7C15))
	return b
}

// Delay returns the delay before re-attempt number attempt (0-based):
// capped exponential growth from Base with deterministic jitter.
func (b Backoff) Delay(attempt int) time.Duration {
	base, cap, jitter := b.Base, b.Cap, b.Jitter
	if base <= 0 {
		base = DefaultBackoffBase
	}
	if cap <= 0 {
		cap = DefaultBackoffCap
	}
	switch {
	case jitter == 0:
		jitter = DefaultBackoffJitter
	case jitter < 0:
		jitter = 0
	case jitter > 1:
		jitter = 1
	}
	if attempt < 0 {
		attempt = 0
	}
	d := base
	for i := 0; i < attempt && d < cap; i++ {
		d *= 2
	}
	if d > cap {
		d = cap
	}
	if jitter > 0 {
		// u in [0, 1) from the (Seed, attempt) hash: the delay lands in
		// [d·(1−jitter), d], never above the cap.
		u := float64(splitmix64(b.Seed^uint64(attempt))>>11) / float64(1<<53)
		d = time.Duration(float64(d) * (1 - jitter*u))
	}
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

// Wait sleeps for Delay(attempt), returning early with ctx.Err() if the
// context is cancelled first.
func (b Backoff) Wait(ctx context.Context, attempt int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	after := b.After
	if after == nil {
		after = time.After
	}
	select {
	case <-after(b.Delay(attempt)):
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// splitmix64 is the standard 64-bit finalizing hash, giving each
// (Seed, attempt) pair an independent uniform draw without any shared
// mutable RNG state.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(4); got != 4 {
		t.Errorf("Workers(4) = %d", got)
	}
	want := runtime.GOMAXPROCS(0)
	if got := Workers(0); got != want {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, want)
	}
	if got := Workers(-3); got != want {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS %d", got, want)
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		const n = 100
		hits := make([]atomic.Int32, n)
		err := ForEach(workers, n, func(i int) error {
			hits[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if c := hits[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(8, 0, func(int) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestForEachReportsLowestFailingIndex(t *testing.T) {
	fail := map[int]bool{13: true, 5: true, 70: true}
	for _, workers := range []int{1, 8} {
		err := ForEach(workers, 100, func(i int) error {
			if fail[i] {
				return fmt.Errorf("point %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "point 5" {
			t.Errorf("workers=%d: err = %v, want point 5", workers, err)
		}
	}
}

func TestForEachBoundsConcurrency(t *testing.T) {
	const workers, n = 3, 50
	var inFlight, peak atomic.Int32
	err := ForEach(workers, n, func(int) error {
		now := inFlight.Add(1)
		for {
			p := peak.Load()
			if now <= p || peak.CompareAndSwap(p, now) {
				break
			}
		}
		inFlight.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("observed %d concurrent points, cap %d", p, workers)
	}
}

func TestForEachSequentialShortCircuits(t *testing.T) {
	ran := 0
	err := ForEach(1, 10, func(i int) error {
		ran++
		if i == 3 {
			return errors.New("stop")
		}
		return nil
	})
	if err == nil || ran != 4 {
		t.Errorf("ran %d points (err %v), want short-circuit after index 3", ran, err)
	}
}

package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(4); got != 4 {
		t.Errorf("Workers(4) = %d", got)
	}
	want := runtime.GOMAXPROCS(0)
	if got := Workers(0); got != want {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, want)
	}
	if got := Workers(-3); got != want {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS %d", got, want)
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		const n = 100
		hits := make([]atomic.Int32, n)
		err := ForEach(workers, n, func(i int) error {
			hits[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if c := hits[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(8, 0, func(int) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestForEachReportsLowestFailingIndex(t *testing.T) {
	fail := map[int]bool{13: true, 5: true, 70: true}
	for _, workers := range []int{1, 8} {
		err := ForEach(workers, 100, func(i int) error {
			if fail[i] {
				return fmt.Errorf("point %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "point 5" {
			t.Errorf("workers=%d: err = %v, want point 5", workers, err)
		}
	}
}

func TestForEachBoundsConcurrency(t *testing.T) {
	const workers, n = 3, 50
	var inFlight, peak atomic.Int32
	err := ForEach(workers, n, func(int) error {
		now := inFlight.Add(1)
		for {
			p := peak.Load()
			if now <= p || peak.CompareAndSwap(p, now) {
				break
			}
		}
		inFlight.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("observed %d concurrent points, cap %d", p, workers)
	}
}

func TestForEachSequentialShortCircuits(t *testing.T) {
	ran := 0
	err := ForEach(1, 10, func(i int) error {
		ran++
		if i == 3 {
			return errors.New("stop")
		}
		return nil
	})
	if err == nil || ran != 4 {
		t.Errorf("ran %d points (err %v), want short-circuit after index 3", ran, err)
	}
}

func TestForEachRecoversPanicsIntoPointErrors(t *testing.T) {
	for _, workers := range []int{1, 8} {
		var ran atomic.Int32
		err := ForEach(workers, 40, func(i int) error {
			ran.Add(1)
			if i == 7 {
				panic("poisoned point")
			}
			return nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want *PanicError", workers, err)
		}
		if pe.Index != 7 || pe.Value != "poisoned point" {
			t.Errorf("workers=%d: PanicError = {%d %v}", workers, pe.Index, pe.Value)
		}
		if pe.Stack == "" || !strings.Contains(pe.Error(), "poisoned point") {
			t.Errorf("workers=%d: panic error lacks stack or value: %q", workers, pe.Error())
		}
		if workers > 1 && ran.Load() != 40 {
			// Pooled mode drains: the other 39 points still run.
			t.Errorf("workers=%d: ran %d of 40 points after panic", workers, ran.Load())
		}
	}
}

func TestForEachPanickingPointReportsLowestIndex(t *testing.T) {
	err := ForEach(8, 100, func(i int) error {
		switch i {
		case 11:
			panic(11)
		case 42:
			return errors.New("plain failure")
		}
		return nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Index != 11 {
		t.Fatalf("err = %v, want panic at index 11", err)
	}
}

func TestForEachOptRetriesTransientFailures(t *testing.T) {
	for _, workers := range []int{1, 8} {
		var failures [30]atomic.Int32
		err := ForEachOpt(workers, 30, Options{Retries: 2}, func(i int) error {
			// Every point fails twice (one panic, one error) then succeeds.
			switch failures[i].Add(1) {
			case 1:
				panic("transient panic")
			case 2:
				return errors.New("transient error")
			}
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
	}
}

func TestForEachOptRetriesExhaust(t *testing.T) {
	var attempts atomic.Int32
	err := ForEachOpt(1, 1, Options{Retries: 3}, func(int) error {
		attempts.Add(1)
		return errors.New("deterministic failure")
	})
	if err == nil || err.Error() != "deterministic failure" {
		t.Fatalf("err = %v", err)
	}
	if got := attempts.Load(); got != 4 {
		t.Fatalf("attempts = %d, want 1 + 3 retries", got)
	}
}

// TestForEachPanicHammer is the race-condition hammer: many workers,
// many points, a third of them panicking, run under -race in CI. The
// pool must drain cleanly, report the lowest poisoned index, and never
// double-run or skip a point.
func TestForEachPanicHammer(t *testing.T) {
	for round := 0; round < 20; round++ {
		const n = 300
		hits := make([]atomic.Int32, n)
		err := ForEach(16, n, func(i int) error {
			hits[i].Add(1)
			if i%3 == 0 {
				panic(i)
			}
			return nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) || pe.Index != 0 {
			t.Fatalf("round %d: err = %v, want panic at index 0", round, err)
		}
		for i := range hits {
			if c := hits[i].Load(); c != 1 {
				t.Fatalf("round %d: index %d ran %d times", round, i, c)
			}
		}
	}
}

// TestForEachCtxStopsDispatchOnCancel proves the ForEachCtx contract:
// cancellation stops new points from being claimed, points already in
// flight run to completion (their slots are fully written), and the
// pool reports ctx.Err() when no point itself failed.
func TestForEachCtxStopsDispatchOnCancel(t *testing.T) {
	const n, workers = 64, 4
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var (
		mu      sync.Mutex
		ran     = make([]bool, n)
		started = make(chan int, n)
		release = make(chan struct{})
	)
	// Once every worker holds a point, cancel the context, then let the
	// in-flight points finish.
	go func() {
		for j := 0; j < workers; j++ {
			<-started
		}
		cancel()
		close(release)
	}()
	err := ForEachCtx(ctx, workers, n, Options{}, func(i int) error {
		started <- i
		<-release
		mu.Lock()
		ran[i] = true
		mu.Unlock()
		return nil
	})
	if err != context.Canceled {
		t.Fatalf("cancelled pool returned %v, want context.Canceled", err)
	}
	mu.Lock()
	defer mu.Unlock()
	var count int
	for _, r := range ran {
		if r {
			count++
		}
	}
	// Exactly the in-flight points at cancellation time completed; none
	// was abandoned half-done and none was dispatched afterwards.
	if count != workers {
		t.Fatalf("%d points ran, want exactly the %d in flight at cancellation", count, workers)
	}
}

// ForEachCtx with a pre-cancelled context runs nothing.
func TestForEachCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var runs atomic.Int64
	for _, workers := range []int{1, 8} {
		if err := ForEachCtx(ctx, workers, 16, Options{}, func(i int) error {
			runs.Add(1)
			return nil
		}); err != context.Canceled {
			t.Fatalf("workers=%d: got %v, want context.Canceled", workers, err)
		}
	}
	if runs.Load() != 0 {
		t.Fatalf("%d points ran under a pre-cancelled context", runs.Load())
	}
}

// A point error from the completed prefix still beats ctx.Err().
func TestForEachCtxPointErrorWinsOverCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	boom := errors.New("boom")
	err := ForEachCtx(ctx, 2, 8, Options{}, func(i int) error {
		if i == 0 {
			cancel()
			return boom
		}
		return nil
	})
	if err != boom {
		t.Fatalf("got %v, want the point error", err)
	}
}

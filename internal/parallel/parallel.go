// Package parallel provides the bounded worker pool behind the
// experiment sweep engine. Every consumer follows the same discipline:
// independent points are identified by a dense index, workers compute
// each point into caller-owned index-addressed storage, and the caller
// emits results in index order after ForEach returns — so output is
// byte-identical at any worker count and the only shared state is the
// result slice, which is written at disjoint indices.
//
// The pool is panic-isolated: a panicking point is captured with its
// stack and reported as that point's error (a *PanicError), never as a
// process crash — one poisoned point cannot take down a sweep that has
// hours of other points in flight. Workers drain normally after a
// panic; remaining points still run.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Workers resolves a requested worker count: values above zero are taken
// as-is, anything else means one worker per available CPU (GOMAXPROCS).
func Workers(requested int) int {
	if requested > 0 {
		return requested
	}
	return runtime.GOMAXPROCS(0)
}

// PanicError is the per-point error a recovered panic becomes: the
// panic value plus the goroutine stack at the panic site, so a crash in
// a long sweep is diagnosable from the sweep's own error output.
type PanicError struct {
	Index int    // the point that panicked
	Value any    // the value passed to panic()
	Stack string // debug.Stack() captured inside the recover
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: point %d panicked: %v\n%s", e.Index, e.Value, e.Stack)
}

// Options tunes a sweep's resilience policy.
type Options struct {
	// Retries is how many additional attempts a failing point gets
	// before its error is reported (0 = fail on first error, the
	// default). Retrying is sound for the deterministic workloads this
	// pool runs — a deterministic failure fails every attempt and is
	// reported unchanged — and rescues points hit by transient host
	// conditions (file-system hiccups, memory pressure kills).
	Retries int
	// Backoff schedules the delay between a point's attempts (capped
	// jittered exponential, decorrelated per point index). The zero
	// value applies the package defaults; retries used to fire
	// back-to-back with zero delay, which turned a transient host
	// condition into an instant triple-failure.
	Backoff Backoff
}

// ForEach runs fn(i) for every i in [0, n) on at most
// Workers(workers) goroutines and returns the error of the lowest
// failing index — the same error a sequential loop that runs every
// point would report, regardless of schedule. fn must confine its
// writes to index i's slot of the caller's result storage.
//
// With one worker (or n <= 1) the points run inline on the calling
// goroutine, short-circuiting at the first error exactly like the
// pre-pool sequential loops; because later points are independent of
// earlier ones, the reported error is identical either way.
//
// A panic inside fn does not escape: it is recovered into a
// *PanicError for that index (see ForEachOpt for the policy knobs).
func ForEach(workers, n int, fn func(i int) error) error {
	return ForEachOpt(workers, n, Options{}, fn)
}

// ForEachOpt is ForEach with an explicit resilience policy.
//
// The pool is instrumented: point execution latencies and
// pool-start-to-point-start queue waits feed log-bucketed histograms
// ("parallel.point.exec.seconds", "parallel.point.queue.seconds"), each
// worker publishes its busy fraction as a labeled utilization gauge
// when its pool drains, and a recovered panic lands in the flight
// recorder and triggers an automatic flight dump (if a driver installed
// a dump writer). All of it goes through obs.Default(), so an
// unobserved process pays only no-op interface calls.
func ForEachOpt(workers, n int, opt Options, fn func(i int) error) error {
	return ForEachCtx(context.Background(), workers, n, opt, fn)
}

// ForEachCtx is ForEachOpt under a caller context: once ctx is
// cancelled no further point is dispatched, but points already
// executing finish normally — the pool never abandons work mid-point,
// so index-addressed results are always either complete or untouched.
// When ctx was cancelled before every point ran and no point failed,
// the return is ctx.Err(); a point error from the completed prefix
// still wins (lowest failing index, as ever). This is the backpressure
// seam hyve-serve leans on: a dropped request or a draining process
// stops a sweep at the next point boundary without corrupting any
// in-flight computation.
func ForEachCtx(ctx context.Context, workers, n int, opt Options, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	rec := obs.Default()
	rec.Gauge("parallel.workers", float64(w))
	poolStart := time.Now()
	attempt := func(i int) (err error) {
		defer func() {
			if r := recover(); r != nil {
				rec.Count("parallel.points.panicked", 1)
				obs.Flight().Record("parallel.point.panicked", strconv.Itoa(i),
					"value", fmt.Sprint(r))
				obs.DumpFlight("worker panic at point " + strconv.Itoa(i))
				err = &PanicError{Index: i, Value: r, Stack: string(debug.Stack())}
			}
		}()
		return fn(i)
	}
	point := func(i int) error {
		obs.Observe(rec, "parallel.point.queue.seconds", time.Since(poolStart).Seconds())
		rec.Count("parallel.points.inflight", 1)
		start := time.Now()
		err := attempt(i)
		for r := 0; err != nil && r < opt.Retries; r++ {
			// Back off before the re-attempt; a cancellation mid-backoff
			// means no more attempts, and the point's own error stands
			// (it did genuinely fail).
			if opt.Backoff.ForKey(uint64(i)).Wait(ctx, r) != nil {
				break
			}
			rec.Count("parallel.points.retried", 1)
			err = attempt(i)
		}
		obs.ObserveSince(rec, "parallel.point.exec.seconds", start)
		rec.Count("parallel.points.inflight", -1)
		rec.Count("parallel.points.completed", 1)
		return err
	}
	// utilization publishes worker k's busy fraction over the pool's
	// lifetime as a labeled gauge (last pool wins — the live view
	// tracks the most recent fan-out).
	utilization := func(k int, busy time.Duration) {
		wall := time.Since(poolStart)
		if wall <= 0 {
			return
		}
		rec.Gauge(obs.WithLabel("parallel.worker.utilization", "worker", strconv.Itoa(k)),
			busy.Seconds()/wall.Seconds())
	}
	if w <= 1 {
		var busy time.Duration
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				utilization(0, busy)
				return err
			}
			t0 := time.Now()
			err := point(i)
			busy += time.Since(t0)
			if err != nil {
				utilization(0, busy)
				return err
			}
		}
		utilization(0, busy)
		return nil
	}

	var (
		next      atomic.Int64
		wg        sync.WaitGroup
		mu        sync.Mutex
		firstIdx  = n
		firstErr  error
		cancelled atomic.Bool
	)
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			var busy time.Duration
			defer func() { utilization(k, busy) }()
			for {
				// The cancellation check guards the claim, not the
				// execution: a point that was claimed runs to the end.
				if ctx.Err() != nil {
					cancelled.Store(true)
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				t0 := time.Now()
				err := point(i)
				busy += time.Since(t0)
				if err != nil {
					mu.Lock()
					if i < firstIdx {
						firstIdx, firstErr = i, err
					}
					mu.Unlock()
				}
			}
		}(k)
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	if cancelled.Load() {
		return ctx.Err()
	}
	return nil
}

// Package parallel provides the bounded worker pool behind the
// experiment sweep engine. Every consumer follows the same discipline:
// independent points are identified by a dense index, workers compute
// each point into caller-owned index-addressed storage, and the caller
// emits results in index order after ForEach returns — so output is
// byte-identical at any worker count and the only shared state is the
// result slice, which is written at disjoint indices.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// Workers resolves a requested worker count: values above zero are taken
// as-is, anything else means one worker per available CPU (GOMAXPROCS).
func Workers(requested int) int {
	if requested > 0 {
		return requested
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach runs fn(i) for every i in [0, n) on at most
// Workers(workers) goroutines and returns the error of the lowest
// failing index — the same error a sequential loop that runs every
// point would report, regardless of schedule. fn must confine its
// writes to index i's slot of the caller's result storage.
//
// With one worker (or n <= 1) the points run inline on the calling
// goroutine, short-circuiting at the first error exactly like the
// pre-pool sequential loops; because later points are independent of
// earlier ones, the reported error is identical either way.
func ForEach(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	rec := obs.Default()
	point := func(i int) error {
		rec.Count("parallel.points.inflight", 1)
		err := fn(i)
		rec.Count("parallel.points.inflight", -1)
		rec.Count("parallel.points.completed", 1)
		return err
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			if err := point(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstIdx = n
		firstErr error
	)
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := point(i); err != nil {
					mu.Lock()
					if i < firstIdx {
						firstIdx, firstErr = i, err
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

package parallel

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestBackoffDelaySchedule pins the capped exponential shape: with
// jitter disabled the sequence is exactly Base·2^k clamped at Cap.
func TestBackoffDelaySchedule(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Cap: 80 * time.Millisecond, Jitter: -1}
	want := []time.Duration{10, 20, 40, 80, 80, 80}
	for k, w := range want {
		if got := b.Delay(k); got != w*time.Millisecond {
			t.Errorf("Delay(%d) = %v, want %v", k, got, w*time.Millisecond)
		}
	}
}

// TestBackoffJitterBoundedAndDeterministic: jittered delays stay in
// [d·(1−j), d], never exceed the cap, and replay exactly for the same
// (Seed, attempt) while differing across ForKey streams.
func TestBackoffJitterBoundedAndDeterministic(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Cap: time.Second, Jitter: 0.5, Seed: 7}
	for k := 0; k < 12; k++ {
		d := b.Delay(k)
		full := Backoff{Base: b.Base, Cap: b.Cap, Jitter: -1}.Delay(k)
		if d > full || d < time.Duration(float64(full)*0.5) {
			t.Errorf("Delay(%d) = %v outside [%v, %v]", k, d, time.Duration(float64(full)*0.5), full)
		}
		if d != b.Delay(k) {
			t.Errorf("Delay(%d) not deterministic", k)
		}
	}
	if b.ForKey(1).Delay(3) == b.ForKey(2).Delay(3) {
		t.Error("ForKey streams should decorrelate jitter")
	}
}

// TestBackoffWaitFakeClock drives Wait through an injected timer: the
// requested delays must follow the schedule without any real sleeping,
// pinning that ForEachOpt's retry loop actually waits between attempts.
func TestBackoffWaitFakeClock(t *testing.T) {
	var asked []time.Duration
	fired := make(chan time.Time)
	close(fired)
	b := Backoff{
		Base: 10 * time.Millisecond, Cap: 40 * time.Millisecond, Jitter: -1,
		After: func(d time.Duration) <-chan time.Time { asked = append(asked, d); return fired },
	}

	fail := errors.New("transient")
	attempts := 0
	err := ForEachOpt(1, 1, Options{Retries: 3, Backoff: b}, func(i int) error {
		attempts++
		if attempts < 3 {
			return fail
		}
		return nil
	})
	if err != nil {
		t.Fatalf("ForEachOpt = %v, want success on third attempt", err)
	}
	if attempts != 3 {
		t.Fatalf("attempts = %d, want 3", attempts)
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond}
	if len(asked) != len(want) {
		t.Fatalf("timer asked for %v, want %v", asked, want)
	}
	for i := range want {
		if asked[i] != want[i] {
			t.Errorf("backoff %d = %v, want %v", i, asked[i], want[i])
		}
	}
}

// TestBackoffWaitHonorsCancellation: a cancelled context ends the wait
// immediately, and a cancellation mid-backoff stops the retry loop with
// the point's own error (not ctx.Err()).
func TestBackoffWaitHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	b := Backoff{Base: time.Hour, Jitter: -1}
	if err := b.Wait(ctx, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait under cancelled ctx = %v, want context.Canceled", err)
	}

	fail := errors.New("persistent")
	ctx2, cancel2 := context.WithCancel(context.Background())
	attempts := 0
	err := ForEachCtx(ctx2, 1, 1, Options{
		Retries: 5,
		Backoff: Backoff{Base: time.Hour, Jitter: -1, After: func(d time.Duration) <-chan time.Time {
			cancel2() // cancelled while backing off: no further attempts
			return make(chan time.Time)
		}},
	}, func(i int) error { attempts++; return fail })
	if !errors.Is(err, fail) {
		t.Fatalf("err = %v, want the point's own error", err)
	}
	if attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (cancellation stops retrying)", attempts)
	}
}

// Package check is the differential-conformance harness: it draws
// randomized-but-seeded (dataset, algorithm, configuration) points and
// holds the repository's independent models of the same machine against
// each other — the Algorithm 2 cost simulator, the address-exact
// controller trace, the analytic Eq. 1–16 model, the GraphR cost model
// and its functional crossbar emulation, and the GAS engines against
// their textbook references. Each invariant lives as an exported
// CheckInvariants-style hook next to the package it constrains; this
// package only generates points and drives the hooks.
package check

import (
	"fmt"

	"repro/internal/algo"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/graph"
)

// Point is one randomly drawn conformance test point. Every field
// derives deterministically from Seed, so a failure report's seed is a
// complete reproduction recipe.
type Point struct {
	Seed uint64
	// GraphDesc names the drawn topology ("rmat-v612-e2448").
	GraphDesc string
	Graph     *graph.Graph
	Prog      algo.Program
	Cfg       core.Config
	Workload  core.Workload
	// Sched, when non-nil, is the cache scheduler the point's machine
	// is resolved through, so a sweep shares machines and results with
	// every other consumer of the same scheduler. Nil assembles a
	// private machine (the -no-cache behavior).
	Sched *cache.Scheduler

	machine    *core.Machine
	machineErr error
	flat       *algo.Result
	flatErr    error
}

// Machine memoizes the assembled simulator of the point: the grid is
// partitioned once and shared by the cost run and the blocked
// functional run (which previously each rebuilt it). With a scheduler
// attached, the machine additionally comes from the process-wide cache,
// generalizing that per-point memoization across the sweep.
func (p *Point) Machine() (*core.Machine, error) {
	if p.machine == nil && p.machineErr == nil {
		if p.Sched != nil {
			p.machine, p.machineErr = p.Sched.Machine(p.Cfg, p.Workload)
		} else {
			p.machine, p.machineErr = core.NewMachine(p.Cfg, p.Workload)
		}
	}
	return p.machine, p.machineErr
}

// Sim memoizes the cost-model simulation of the point: several
// invariants interrogate the same run, and simulating (which includes a
// functional execution to derive the iteration count) dominates a
// point's cost.
func (p *Point) Sim() (*core.Result, error) {
	m, err := p.Machine()
	if err != nil {
		return nil, err
	}
	return m.Simulate()
}

// Blocked memoizes the blocked (Algorithm 2 schedule) functional run of
// the point, on the same machine — and therefore the same grid — as Sim.
func (p *Point) Blocked() (*algo.Result, error) {
	m, err := p.Machine()
	if err != nil {
		return nil, err
	}
	return m.RunFunctional()
}

// Flat memoizes the flat (edge-order) functional run of the program.
func (p *Point) Flat() (*algo.Result, error) {
	if p.flat == nil && p.flatErr == nil {
		p.flat, p.flatErr = algo.Run(p.Prog, p.Graph)
	}
	return p.flat, p.flatErr
}

// String identifies the point in failure reports.
func (p *Point) String() string {
	return fmt.Sprintf("seed=%d %s/%s/%s", p.Seed, p.GraphDesc, p.Prog.Name(), p.Cfg.Name)
}

// NewPoint draws the point for a seed: a topology from the generator
// zoo, one of the five paper programs, and one of the five Fig. 16
// machine configurations with randomized PU count, SRAM capacity, and
// gate predictiveness.
func NewPoint(seed uint64) (*Point, error) {
	rng := graph.NewRNG(seed)
	nv := 64 + rng.Intn(1025)
	deg := 2 + rng.Intn(8)
	ne := nv * deg

	var g *graph.Graph
	var desc string
	var err error
	switch rng.Intn(3) {
	case 0:
		g, err = graph.GenerateRMAT(nv, ne, graph.DefaultRMAT, seed^0xA5A5)
		desc = fmt.Sprintf("rmat-v%d-e%d", nv, ne)
	case 1:
		g, err = graph.GenerateUniform(nv, ne, seed^0x5A5A)
		desc = fmt.Sprintf("uniform-v%d-e%d", nv, ne)
	default:
		g, err = graph.GenerateChain(nv)
		desc = fmt.Sprintf("chain-v%d", nv)
	}
	if err != nil {
		return nil, fmt.Errorf("check: seed %d: generating %s: %w", seed, desc, err)
	}

	progs := algo.All()
	prog := progs[rng.Intn(len(progs))]
	if prog.NeedsWeights() && !g.Weighted() {
		graph.AttachUniformWeights(g, 8, seed^0x5EED)
	}

	cfgs := core.Fig16Configs()
	cfg := cfgs[rng.Intn(len(cfgs))]
	cfg.NumPUs = []int{2, 4, 8}[rng.Intn(3)]
	if cfg.UseOnChipSRAM {
		// Small sections force interesting P (many intervals per PU).
		cfg.SRAMBytes = 1024 << rng.Intn(5)
	}
	if cfg.PowerGating {
		cfg.Gate.Predictive = rng.Intn(2) == 0
	}
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("check: seed %d: drawn config invalid: %w", seed, err)
	}

	return &Point{
		Seed:      seed,
		GraphDesc: desc,
		Graph:     g,
		Prog:      prog,
		Cfg:       cfg,
		Workload:  core.Workload{DatasetName: desc, Graph: g, Program: prog},
	}, nil
}

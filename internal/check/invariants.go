package check

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"repro/internal/algo"
	"repro/internal/analytic"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/device/dram"
	"repro/internal/device/rram"
	"repro/internal/device/sram"
	"repro/internal/dynamic"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/graphr"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/partition"
)

// Invariant is one cross-model or structural property checked at every
// point it applies to.
type Invariant struct {
	// Name identifies the invariant in reports ("cost-vs-trace").
	Name string
	// Tolerance documents the agreement the check demands.
	Tolerance string
	// Applies filters points (nil = every point).
	Applies func(*Point) bool
	// Check runs the invariant; a non-nil error is a conformance failure.
	Check func(*Point) error
}

// Invariants returns the full registry, in evaluation order.
func Invariants() []Invariant {
	return []Invariant{
		{
			Name:      "engine-vs-reference",
			Tolerance: "BFS/CC exact; PR/SpMV ≤1e-9; SSSP ≤1e-6 (rel above 1)",
			Check: func(p *Point) error {
				return algo.CheckAgainstReference(p.Prog, p.Graph)
			},
		},
		{
			Name:      "blocked-vs-flat",
			Tolerance: "≤1e-9 (blocked streaming reorders float accumulation)",
			Check:     checkBlockedVsFlat,
		},
		{
			Name:      "kernel-vs-oracle",
			Tolerance: "exact: bit-identical values, identical counters",
			Check:     checkKernelVsOracle,
		},
		{
			Name:      "cost-vs-trace",
			Tolerance: "times ≤1e-9 rel; trace traffic byte-exact vs Detail counters",
			Check: func(p *Point) error {
				r, err := p.Sim()
				if err != nil {
					return err
				}
				return core.CheckResult(p.Cfg, p.Workload, r)
			},
		},
		{
			Name:      "analytic-decomposition",
			Tolerance: "Time ≥ bound, EDP ≥ Eq. 6 bound, (Σ terms)² = bound ≤1e-9",
			Check:     checkAnalyticDecomposition,
		},
		{
			Name:      "analytic-vs-sim",
			Tolerance: "|E|/N ≤ ProcessTime/perEdgeStage ≤ |E| (Eq. 1 pipeline bound)",
			Check:     checkAnalyticVsSim,
		},
		{
			Name:      "graphr-vs-emulation",
			Tolerance: "occupancy exact; compute ≤1e-9 rel; crossbar PR error ≤10%",
			Check: func(p *Point) error {
				cfg := graphr.Default()
				cfg.Parallel = []int{8, 16, 32}[int(p.Seed%3)]
				return graphr.CheckModelVsEmulation(cfg, p.Workload)
			},
		},
		{
			Name:      "gate-vs-replay",
			Tolerance: "awake time within IdleTimeout×banks + 10% of ProcessTime",
			Applies:   func(p *Point) bool { return p.Cfg.PowerGating },
			Check:     checkGateVsReplay,
		},
		{
			Name:      "partition-coverage",
			Tolerance: "exact: blocks tile and cover the edge multiset",
			Check:     checkPartitionCoverage,
		},
		{
			Name:      "dynamic-stores",
			Tolerance: "exact: HyVE and GraphR stores agree on live edges",
			Check:     checkDynamicStores,
		},
		{
			Name:      "artifact-roundtrip",
			Tolerance: "byte-exact canonical re-encoding after decode",
			Check:     checkArtifactRoundtrip,
		},
		{
			Name:      "cache-hit-identity",
			Tolerance: "byte-exact: memory and disk hits identical to fresh execution",
			Check:     checkCacheHitIdentity,
		},
		{
			Name:      "v2-load-identity",
			Tolerance: "byte-exact: v2-loaded graphs keep the cache key and result bytes",
			Check:     checkV2LoadIdentity,
		},
		{
			Name:      "fault-zero-rate",
			Tolerance: "exact: zero-rate fault layer bit-identical to no layer",
			Check:     checkFaultZeroRate,
		},
		{
			Name:      "fault-secded",
			Tolerance: "counts consistent, seed-deterministic, overhead ≥ 0",
			Check:     checkFaultSECDED,
		},
	}
}

// checkBlockedVsFlat compares the blocked (grid-scheduled) functional
// execution against the flat edge-order run: the synchronous GAS
// semantics make results independent of traversal order, so the two must
// agree to float reassociation noise.
func checkBlockedVsFlat(p *Point) error {
	flat, err := p.Flat()
	if err != nil {
		return err
	}
	blocked, err := p.Blocked()
	if err != nil {
		return err
	}
	if blocked.Iterations != flat.Iterations {
		return fmt.Errorf("check: blocked run took %d iterations, flat took %d",
			blocked.Iterations, flat.Iterations)
	}
	return algo.CompareValues("blocked vs flat", blocked.Values, flat.Values, 1e-9)
}

// checkKernelVsOracle holds every rewritten hot path against the generic
// interface-dispatched engine: the monomorphized kernels and the
// owner-computes parallel runner on the flat edge list (algo hook), then
// the block-parallel Algorithm 2 schedule against its sequential
// (Parallelism=1) execution — all bit-identical, counters included.
func checkKernelVsOracle(p *Point) error {
	if err := algo.CheckKernelVsOracle(p.Prog, p.Graph); err != nil {
		return err
	}
	seqCfg := p.Cfg
	seqCfg.Parallelism = 1
	seq, err := core.RunFunctional(seqCfg, p.Workload)
	if err != nil {
		return err
	}
	parCfg := p.Cfg
	parCfg.Parallelism = 4
	par, err := core.RunFunctional(parCfg, p.Workload)
	if err != nil {
		return err
	}
	return algo.CompareResults("block-parallel vs sequential schedule", par, seq)
}

// analyticModel instantiates the Eq. 1–16 model at the point's operating
// points: global vertex memory per the config, local memory the on-chip
// SRAM (or the global device in the SRAM-less baselines), the edge
// device's sequential read, and the CMOS PU op.
func analyticModel(p *Point) (analytic.Model, error) {
	_, gp, err := core.Grid(p.Cfg, p.Workload)
	if err != nil {
		return analytic.Model{}, err
	}
	counts, err := analytic.HyVECounts(int64(p.Graph.NumVertices), int64(p.Graph.NumEdges()), gp, p.Cfg.NumPUs)
	if err != nil {
		return analytic.Model{}, err
	}
	rchip, err := rram.New(p.Cfg.RRAM)
	if err != nil {
		return analytic.Model{}, err
	}
	dchip, err := dram.New(p.Cfg.DRAM)
	if err != nil {
		return analytic.Model{}, err
	}
	pick := func(k core.MemKind) device.Memory {
		if k == core.MemReRAM {
			return rchip
		}
		return dchip
	}
	global := pick(p.Cfg.VertexMemory)
	local := global
	if p.Cfg.UseOnChipSRAM {
		s, err := sram.New(p.Cfg.SRAMBytes)
		if err != nil {
			return analytic.Model{}, err
		}
		local = s
	}
	costs := analytic.VertexOps(global, local)
	costs.EdgeRead = pick(p.Cfg.EdgeMemory).Read(true)
	costs.PU = device.NewCMOSPU().Op()
	return analytic.Model{N: counts, C: costs}, nil
}

func checkAnalyticDecomposition(p *Point) error {
	m, err := analyticModel(p)
	if err != nil {
		return err
	}
	return m.CheckInvariants()
}

// checkAnalyticVsSim holds the simulator's per-iteration streaming time
// against the Eq. 1 per-edge pipeline bound: a perfectly balanced
// schedule streams |E|/N edges on the critical PU, a fully serialized
// one streams |E|.
func checkAnalyticVsSim(p *Point) error {
	r, err := p.Sim()
	if err != nil {
		return err
	}
	perEdge, err := core.PerEdgeStage(p.Cfg, p.Workload)
	if err != nil {
		return err
	}
	if perEdge <= 0 {
		return fmt.Errorf("check: non-positive per-edge stage %v", perEdge)
	}
	e := float64(p.Graph.NumEdges())
	lo := perEdge.Times(e / float64(p.Cfg.NumPUs))
	hi := perEdge.Times(e)
	const slack = 1e-9
	got := float64(r.Detail.ProcessTime)
	if got < float64(lo)*(1-slack) || got > float64(hi)*(1+slack) {
		return fmt.Errorf("check: process time %v outside [%v, %v] for |E|=%d N=%d",
			r.Detail.ProcessTime, lo, hi, p.Graph.NumEdges(), p.Cfg.NumPUs)
	}
	return nil
}

// checkGateVsReplay rebuilds one iteration's bank-activity windows from
// the simulated streaming phase and replays them through the exact
// idle-timeout policy, requiring the analytic gating stats to track the
// replay.
func checkGateVsReplay(p *Point) error {
	r, err := p.Sim()
	if err != nil {
		return err
	}
	stats := r.Detail.Gate
	iters := int64(r.Detail.Iterations)
	if iters <= 0 || stats.Transitions == 0 || stats.Transitions%iters != 0 {
		return fmt.Errorf("check: gate transitions %d do not divide into %d iterations",
			stats.Transitions, iters)
	}
	banks := int(stats.Transitions / iters)
	d := r.Detail.ProcessTime
	seg := d.Times(1 / float64(banks))
	windows := make([]mem.BankWindow, banks)
	for b := 0; b < banks; b++ {
		windows[b] = mem.BankWindow{
			Bank:  b,
			Start: seg.Times(float64(b)),
			End:   seg.Times(float64(b + 1)),
		}
	}
	awake, transitions, err := mem.ReplayGating(p.Cfg.Gate, windows)
	if err != nil {
		return err
	}
	if transitions != int64(banks) {
		return fmt.Errorf("check: replay made %d transitions for %d disjoint banks", transitions, banks)
	}
	perIter := stats.AwakeBankTime.Times(1 / float64(iters))
	slack := p.Cfg.Gate.IdleTimeout.Times(float64(banks)) + d.Times(0.1)
	if diff := math.Abs(float64(awake - perIter)); diff > float64(slack) {
		return fmt.Errorf("check: replay awake bank-time %v vs model %v differs by more than %v",
			awake, perIter, slack)
	}
	return nil
}

// checkPartitionCoverage builds both assigners over the point's graph
// and verifies each is a true partition whose grid exactly covers the
// edge set.
func checkPartitionCoverage(p *Point) error {
	nv := p.Graph.NumVertices
	ps := []int{p.Cfg.NumPUs}
	if nv >= 7 {
		ps = append(ps, 7) // a non-divisor exercises ragged intervals
	}
	for _, np := range ps {
		if np > nv {
			continue
		}
		hashed, err := partition.NewHashed(nv, np)
		if err != nil {
			return err
		}
		contig, err := partition.NewContiguous(nv, np)
		if err != nil {
			return err
		}
		for _, a := range []partition.Assigner{hashed, contig} {
			if err := partition.CheckAssigner(a); err != nil {
				return err
			}
			grid, err := partition.Build(p.Graph, a)
			if err != nil {
				return err
			}
			if err := grid.CheckPartition(p.Graph); err != nil {
				return err
			}
		}
	}
	return nil
}

// checkDynamicStores replays one seeded request stream into both
// dynamic-store implementations and requires them to agree on the
// surviving edge set size — the differential check behind the Fig. 20
// comparison's fairness.
func checkDynamicStores(p *Point) error {
	rng := graph.NewRNG(p.Seed ^ 0xD15C)
	add := 1 + rng.Intn(50)
	del := rng.Intn(101 - add)
	av := rng.Intn(101 - add - del)
	mix := dynamic.Mix{AddEdgePct: add, DeleteEdgePct: del, AddVertexPct: av,
		DeleteVertexPct: 100 - add - del - av}
	n := 500 + rng.Intn(1501)
	reqs, err := dynamic.GenerateRequests(p.Graph, n, mix, p.Seed^0xBEEF)
	if err != nil {
		return err
	}
	np := 8
	if p.Graph.NumVertices < np {
		np = 1
	}
	asg, err := partition.NewHashed(p.Graph.NumVertices, np)
	if err != nil {
		return err
	}
	hy, err := dynamic.NewHyVEStore(p.Graph, asg, 0.3)
	if err != nil {
		return err
	}
	gr, err := dynamic.NewGraphRStore(p.Graph, 8)
	if err != nil {
		return err
	}
	for i, r := range reqs {
		if _, err := dynamic.Apply(hy, r); err != nil {
			return fmt.Errorf("check: HyVE store rejects request %d (%v): %w", i, r.Kind, err)
		}
		if _, err := dynamic.Apply(gr, r); err != nil {
			return fmt.Errorf("check: GraphR store rejects request %d (%v): %w", i, r.Kind, err)
		}
	}
	if hy.NumEdges() != gr.NumEdges() {
		return fmt.Errorf("check: stores disagree after %d requests: HyVE %d edges, GraphR %d",
			n, hy.NumEdges(), gr.NumEdges())
	}
	if got := int64(len(hy.Edges())); got != hy.NumEdges() {
		return fmt.Errorf("check: HyVE store reports %d edges but snapshots %d", hy.NumEdges(), got)
	}
	return nil
}

// checkFaultZeroRate holds the fault layer's "disabled-equivalent"
// contract: enabling the layer with every rate zero and no ECC must
// reproduce the fault-free simulation bit-for-bit — same time, same
// per-component energy, same phase anatomy. Only the bookkeeping
// LinesRead count may differ (the sweep still scans).
func checkFaultZeroRate(p *Point) error {
	base, err := p.Sim()
	if err != nil {
		return err
	}
	cfg := p.Cfg
	cfg.Fault = fault.Config{Enabled: true, Seed: p.Seed}
	r, err := core.Simulate(cfg, p.Workload)
	if err != nil {
		return err
	}
	if r.Report != base.Report {
		return fmt.Errorf("check: zero-rate fault layer perturbed the report: time %v vs %v, energy %v vs %v",
			r.Report.Time, base.Report.Time, r.Report.Energy.Total(), base.Report.Energy.Total())
	}
	if s := r.Detail.Fault; s.Injected != 0 || s.Corrected != 0 || s.Detected != 0 ||
		s.Uncorrectable != 0 || s.Silent != 0 || s.BanksFailed != 0 || s.WordDigest != 0 {
		return fmt.Errorf("check: zero-rate sweep injected something: %+v", s)
	}
	got, want := r.Detail, base.Detail
	got.Fault = fault.Stats{}
	if got != want {
		return fmt.Errorf("check: zero-rate fault layer perturbed the detail: %+v vs %+v", got, want)
	}
	return nil
}

// checkFaultSECDED drives the layer hard — a raw BER high enough to put
// multi-bit words in every run — and holds the outcome to its internal
// arithmetic: detected = corrected + uncorrectable, every injected bit
// accounted, the whole Stats struct (digest included) identical on a
// re-run with the same seed, and the resilience overhead non-negative
// in both time and energy against the point's fault-free run.
func checkFaultSECDED(p *Point) error {
	base, err := p.Sim()
	if err != nil {
		return err
	}
	cfg := p.Cfg
	cfg.Fault = fault.Config{
		Enabled: true, Seed: p.Seed,
		RawBER:       1e-4,
		StuckBitRate: 1e-6,
		ECC:          fault.ECCSECDED,
	}
	r1, err := core.Simulate(cfg, p.Workload)
	if err != nil {
		return err
	}
	r2, err := core.Simulate(cfg, p.Workload)
	if err != nil {
		return err
	}
	s := r1.Detail.Fault
	if s != r2.Detail.Fault {
		return fmt.Errorf("check: same seed, different fault stats: %+v vs %+v", s, r2.Detail.Fault)
	}
	if r1.Report != r2.Report {
		return fmt.Errorf("check: same seed, different faulted report")
	}
	if s.Detected != s.Corrected+s.Uncorrectable {
		return fmt.Errorf("check: detected %d ≠ corrected %d + uncorrectable %d",
			s.Detected, s.Corrected, s.Uncorrectable)
	}
	if s.Injected < s.Flipped {
		return fmt.Errorf("check: injected %d bits but flipped %d", s.Injected, s.Flipped)
	}
	// Positivity only where a zero outcome is statistically implausible:
	// each line carries at least one (72,64) codeword, so the expected
	// flip count is ≥ LinesRead·72·BER. Above 30 expected, P(none) is
	// e^-30 — tiny conformance graphs legitimately draw zero flips.
	if minExpected := float64(s.LinesRead) * 72 * cfg.Fault.RawBER; minExpected > 30 && s.Injected == 0 {
		return fmt.Errorf("check: injected 0 bits at BER %v over %d lines (expected ≥ %.0f)",
			cfg.Fault.RawBER, s.LinesRead, minExpected)
	}
	words := s.Corrected + s.Uncorrectable + s.Silent
	if words > s.Injected {
		return fmt.Errorf("check: %d errored words from %d injected bits", words, s.Injected)
	}
	if s.Injected > 0 && words == 0 {
		return fmt.Errorf("check: %d injected bits produced no errored word", s.Injected)
	}
	if r1.Report.Time < base.Report.Time {
		return fmt.Errorf("check: ECC made the run faster: %v vs %v", r1.Report.Time, base.Report.Time)
	}
	if r1.Report.Energy.Total() < base.Report.Energy.Total() {
		return fmt.Errorf("check: ECC made the run cheaper: %v vs %v",
			r1.Report.Energy.Total(), base.Report.Energy.Total())
	}
	return nil
}

// checkCacheHitIdentity holds the result cache to its core contract: a
// cache hit is indistinguishable from a fresh execution. The point runs
// once through a disk-backed scheduler (asserting it actually executed),
// is fetched back from the in-memory LRU, and then fetched by a second,
// cold scheduler that can only find it in the on-disk store — and every
// one of those results, plus the sweep's own independently simulated
// baseline, must encode to identical canonical bytes.
func checkCacheHitIdentity(p *Point) error {
	base, err := p.Sim()
	if err != nil {
		return err
	}
	baseBytes, err := cache.EncodeResult(base)
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "hyve-cache-check")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	warm := cache.New(cache.Config{Dir: dir})
	executed, err := warm.Simulate(p.Cfg, p.Workload)
	if err != nil {
		return err
	}
	if st := warm.Stats(); st.Executed != 1 || st.Bypassed != 0 {
		return fmt.Errorf("check: cold scheduler stats %+v, want exactly one execution", st)
	}
	memHit, err := warm.Simulate(p.Cfg, p.Workload)
	if err != nil {
		return err
	}
	if st := warm.Stats(); st.MemHits != 1 {
		return fmt.Errorf("check: repeat submission stats %+v, want one memory hit", st)
	}

	cold := cache.New(cache.Config{Dir: dir})
	diskHit, err := cold.Simulate(p.Cfg, p.Workload)
	if err != nil {
		return err
	}
	if st := cold.Stats(); st.DiskHits != 1 || st.Executed != 0 {
		return fmt.Errorf("check: fresh scheduler over same store stats %+v, want one disk hit and no execution", st)
	}

	for _, tc := range []struct {
		name string
		r    *core.Result
	}{{"executed", executed}, {"memory hit", memHit}, {"disk hit", diskHit}} {
		b, err := cache.EncodeResult(tc.r)
		if err != nil {
			return fmt.Errorf("check: encoding %s result: %w", tc.name, err)
		}
		if !bytes.Equal(b, baseBytes) {
			return fmt.Errorf("check: %s result differs from fresh execution (%d vs %d bytes)",
				tc.name, len(b), len(baseBytes))
		}
	}
	return nil
}

// checkV2LoadIdentity holds the prepared-container pipeline (PR 9) to
// the generation contract: a graph round-tripped through a v2 container
// — CSR and pre-partitioned grid sections included — must be
// indistinguishable from the in-process instance. The point's graph is
// compiled to a temp container at the P its own simulation will choose,
// then loaded back through both readers (mmap via OpenV2 and the
// streaming ReadV2). For each, the cache key must not move and a full
// simulation over the loaded graph — whose grid comes from the stored
// sections via the partition fast path — must encode to the same
// canonical bytes as the fresh run.
func checkV2LoadIdentity(p *Point) error {
	base, err := p.Sim()
	if err != nil {
		return err
	}
	baseBytes, err := cache.EncodeResult(base)
	if err != nil {
		return err
	}
	baseKey, err := cache.PointDigest(p.Cfg, p.Workload)
	if err != nil {
		return err
	}
	gridP, err := core.ChoosePFor(p.Cfg, p.Workload)
	if err != nil {
		return err
	}

	dir, err := os.MkdirTemp("", "hyve-v2-check")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "point.hyve2")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w, err := graph.NewV2Writer(f, p.Graph.NumVertices, p.Graph.NumEdges())
	if err != nil {
		return err
	}
	if err := graph.WriteV2Into(w, p.Graph, graph.V2Options{CSR: true, Seed: p.Seed}); err != nil {
		return err
	}
	asg, err := partition.NewHashed(p.Graph.NumVertices, gridP)
	if err != nil {
		return err
	}
	// A 1-byte budget forces the spilled-run path, so the check also
	// covers the bounded-memory builder's layout identity.
	if err := partition.StreamGridInto(w, p.Graph, asg, partition.StreamOptions{BudgetBytes: 1, TmpDir: dir}); err != nil {
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}

	for _, rd := range []struct {
		name string
		open func() (*graph.Container, error)
	}{
		{"mmap", func() (*graph.Container, error) { return graph.OpenV2(path) }},
		{"stream", func() (*graph.Container, error) {
			cf, err := os.Open(path)
			if err != nil {
				return nil, err
			}
			defer cf.Close()
			st, err := cf.Stat()
			if err != nil {
				return nil, err
			}
			return graph.ReadV2(cf, st.Size())
		}},
	} {
		c, err := rd.open()
		if err != nil {
			return fmt.Errorf("check: %s reader: %w", rd.name, err)
		}
		lw := p.Workload
		lw.Graph = c.Graph()
		key, err := cache.PointDigest(p.Cfg, lw)
		if err != nil {
			c.Close()
			return err
		}
		if key != baseKey {
			c.Close()
			return fmt.Errorf("check: %s-loaded graph moved the cache key (%s vs %s)", rd.name, key, baseKey)
		}
		r, err := core.Simulate(p.Cfg, lw)
		if err != nil {
			c.Close()
			return fmt.Errorf("check: simulating %s-loaded graph: %w", rd.name, err)
		}
		b, err := cache.EncodeResult(r)
		if err != nil {
			c.Close()
			return err
		}
		if !bytes.Equal(b, baseBytes) {
			c.Close()
			return fmt.Errorf("check: %s-loaded result differs from fresh execution (%d vs %d bytes)",
				rd.name, len(b), len(baseBytes))
		}
		if err := c.Close(); err != nil {
			return fmt.Errorf("check: closing %s container: %w", rd.name, err)
		}
	}
	return nil
}

// checkArtifactRoundtrip builds a canonical artifact from the point's
// simulation, validates it, and requires decode → re-encode to be
// byte-identical — the stability contract of the hyve/artifact/v1
// format.
func checkArtifactRoundtrip(p *Point) error {
	r, err := p.Sim()
	if err != nil {
		return err
	}
	art := obs.NewArtifact(
		fmt.Sprintf("check-%d", p.Seed),
		fmt.Sprintf("conformance point %s", p.GraphDesc),
		obs.Manifest{Datasets: []obs.DatasetRef{{
			Name: p.GraphDesc, Seed: p.Seed,
			FullVertices: int64(p.Graph.NumVertices),
			FullEdges:    int64(p.Graph.NumEdges()),
		}}})
	art.AddMetric("time", r.Report.Time.Seconds(), "s")
	art.AddMetric("energy", r.Report.Energy.Total().Joules(), "J")
	art.AddMetric("iterations", float64(r.Report.Iterations), "")
	art.AddTable("phases", []string{"phase", "time"}, [][]string{
		{"load", r.Detail.LoadTime.String()},
		{"process", r.Detail.ProcessTime.String()},
		{"writeback", r.Detail.WritebackTime.String()},
		{"overhead", r.Detail.OverheadTime.String()},
	})
	art.AddNote(fmt.Sprintf("config %s, program %s", p.Cfg.Name, p.Prog.Name()))
	if err := art.Validate(); err != nil {
		return err
	}
	var first bytes.Buffer
	if err := art.EncodeJSON(&first); err != nil {
		return err
	}
	decoded, err := obs.DecodeJSON(bytes.NewReader(first.Bytes()))
	if err != nil {
		return err
	}
	if err := decoded.Validate(); err != nil {
		return err
	}
	var second bytes.Buffer
	if err := decoded.EncodeJSON(&second); err != nil {
		return err
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		return fmt.Errorf("check: artifact re-encoding is not canonical (%d vs %d bytes)",
			first.Len(), second.Len())
	}
	return nil
}

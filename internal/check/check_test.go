package check

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestNewPointDeterministic(t *testing.T) {
	a, err := NewPoint(7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewPoint(7)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("same seed drew different points: %s vs %s", a, b)
	}
	if a.Graph.NumEdges() != b.Graph.NumEdges() {
		t.Fatalf("same seed drew different graphs: %d vs %d edges",
			a.Graph.NumEdges(), b.Graph.NumEdges())
	}
	c, err := NewPoint(8)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() == c.String() && a.Graph.NumEdges() == c.Graph.NumEdges() {
		t.Fatalf("seeds 7 and 8 drew the identical point %s", a)
	}
}

func TestRunSweepPasses(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is not short")
	}
	var buf bytes.Buffer
	sum, err := Run(Options{Seed: 1, Points: 8, Out: &buf})
	if err != nil {
		t.Fatalf("sweep errored: %v\n%s", err, buf.String())
	}
	if !sum.OK() {
		sum.WriteReport(&buf)
		t.Fatalf("sweep found violations:\n%s", buf.String())
	}
	if sum.Points != 8 {
		t.Fatalf("ran %d points, want 8", sum.Points)
	}
	for _, inv := range sum.Invariants {
		if inv.Runs == 0 {
			t.Errorf("invariant %q never ran in 8 points", inv.Name)
		}
	}
}

func TestRunDurationBudget(t *testing.T) {
	sum, err := Run(Options{Seed: 1, Duration: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Points < 1 {
		t.Fatalf("expired budget must still run one point, ran %d", sum.Points)
	}
}

func TestRunDefaultBudget(t *testing.T) {
	// Neither Points nor Duration: documented default size. Only check
	// the plumbing (point count), not the invariants, to keep this fast —
	// TestRunSweepPasses covers correctness.
	if testing.Short() {
		t.Skip("default sweep is not short")
	}
	sum, err := Run(Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Points != DefaultPoints {
		t.Fatalf("default sweep ran %d points, want %d", sum.Points, DefaultPoints)
	}
	if !sum.OK() {
		var buf bytes.Buffer
		sum.WriteReport(&buf)
		t.Fatalf("default sweep found violations:\n%s", buf.String())
	}
}

func TestWriteReportListsEveryInvariant(t *testing.T) {
	sum, err := Run(Options{Seed: 1, Points: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	sum.WriteReport(&buf)
	out := buf.String()
	for _, inv := range Invariants() {
		if !strings.Contains(out, inv.Name) {
			t.Errorf("report omits invariant %q:\n%s", inv.Name, out)
		}
	}
	if !strings.Contains(out, "PASS") {
		t.Errorf("passing report lacks verdict:\n%s", out)
	}
}

func TestInvariantRegistryWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, inv := range Invariants() {
		if inv.Name == "" || inv.Check == nil {
			t.Fatalf("malformed invariant %+v", inv)
		}
		if inv.Tolerance == "" {
			t.Errorf("invariant %q does not document its tolerance", inv.Name)
		}
		if seen[inv.Name] {
			t.Errorf("duplicate invariant name %q", inv.Name)
		}
		seen[inv.Name] = true
	}
}

func TestRunPointTimeoutAbandonsAndContinues(t *testing.T) {
	var out bytes.Buffer
	// A nanosecond limit is below any real point's build time, so every
	// point must be abandoned: no failures, no completed points, every
	// seed recorded, and the sweep itself still terminates.
	sum, err := Run(Options{Seed: 1, Points: 3, PointTimeout: time.Nanosecond, Out: &out})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Points != 0 || len(sum.TimedOut) != 3 {
		t.Fatalf("Points=%d TimedOut=%d, want 0 and 3", sum.Points, len(sum.TimedOut))
	}
	for i, to := range sum.TimedOut {
		if to.Seed != uint64(1+i) || to.Limit != time.Nanosecond {
			t.Errorf("TimedOut[%d] = %+v", i, to)
		}
	}
	if !sum.OK() {
		t.Error("timed-out points must not count as violations")
	}
	if sum.Complete() {
		t.Error("Complete() must be false with abandoned points")
	}
	if !strings.Contains(out.String(), "TIMEOUT seed=1") {
		t.Errorf("missing TIMEOUT progress line:\n%s", out.String())
	}
	var rep bytes.Buffer
	sum.WriteReport(&rep)
	if !strings.Contains(rep.String(), "PASS (incomplete)") {
		t.Errorf("report must flag the incomplete pass:\n%s", rep.String())
	}
	if !strings.Contains(rep.String(), "-seed 1 -points 1") {
		t.Errorf("report must say how to reproduce the abandoned seed:\n%s", rep.String())
	}
}

func TestRunGenerousPointTimeoutCompletes(t *testing.T) {
	sum, err := Run(Options{Seed: 1, Points: 1, PointTimeout: 10 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Points != 1 || !sum.Complete() {
		t.Fatalf("Points=%d TimedOut=%d, want a completed sweep", sum.Points, len(sum.TimedOut))
	}
}

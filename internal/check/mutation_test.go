package check

// Mutation tests: the acceptance bar for the conformance harness is that
// a deliberately broken constant is caught. Each test takes a point that
// passes cleanly, corrupts one quantity the way a wrong constant or a
// dropped term would, and requires the relevant invariant to object.

import (
	"strings"
	"testing"

	"repro/internal/algo"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/units"
)

// findPoint scans deterministic seeds for a point matching pred.
func findPoint(t *testing.T, pred func(*Point) bool) *Point {
	t.Helper()
	for seed := uint64(1); seed < 500; seed++ {
		p, err := NewPoint(seed)
		if err != nil {
			t.Fatal(err)
		}
		if pred(p) {
			return p
		}
	}
	t.Fatal("no seed in [1,500) draws a matching point")
	return nil
}

// mutate re-checks a simulated point after corrupting a copy of its
// result, and fails the test unless CheckResult objects.
func mutate(t *testing.T, p *Point, name string, corrupt func(*core.Result)) {
	t.Helper()
	r, err := p.Sim()
	if err != nil {
		t.Fatal(err)
	}
	if err := core.CheckResult(p.Cfg, p.Workload, r); err != nil {
		t.Fatalf("clean result already fails: %v", err)
	}
	bad := *r
	corrupt(&bad)
	if err := core.CheckResult(p.Cfg, p.Workload, &bad); err == nil {
		t.Errorf("%s: corrupted result passed CheckResult", name)
	} else {
		t.Logf("%s caught: %v", name, err)
	}
}

func TestMutationEdgeBytes(t *testing.T) {
	p := findPoint(t, func(p *Point) bool { return true })
	mutate(t, p, "EdgeBytes+1", func(r *core.Result) { r.Detail.EdgeBytes++ })
}

func TestMutationProcessTime(t *testing.T) {
	p := findPoint(t, func(p *Point) bool { return true })
	// A doubled per-edge latency constant would land here: ProcessTime
	// moves but the run-time identity and Eq. 1 bounds do not move with it.
	mutate(t, p, "ProcessTime×2", func(r *core.Result) { r.Detail.ProcessTime *= 2 })
}

func TestMutationReportTime(t *testing.T) {
	p := findPoint(t, func(p *Point) bool { return true })
	mutate(t, p, "Report.Time+1ns", func(r *core.Result) { r.Report.Time += units.Nanosecond })
}

func TestMutationTraceTraffic(t *testing.T) {
	p := findPoint(t, func(p *Point) bool { return p.Cfg.UseOnChipSRAM })
	mutate(t, p, "SrcLoadBytes+8", func(r *core.Result) { r.Detail.SrcLoadBytes += 8 })
}

func TestMutationGateStats(t *testing.T) {
	p := findPoint(t, func(p *Point) bool { return p.Cfg.PowerGating })
	mutate(t, p, "Transitions→0", func(r *core.Result) { r.Detail.Gate.Transitions = 0 })
	mutate(t, p, "GatedEnergy×10", func(r *core.Result) {
		r.Detail.Gate.GatedEnergy = (r.Detail.Gate.UngatedEnergy+r.Detail.Gate.TransitionSpend)*2 + units.Picojoule
	})
}

func TestMutationGateStatsDirect(t *testing.T) {
	s := mem.GateStats{
		Transitions:   4,
		AwakeBankTime: 10 * units.Nanosecond,
		TotalTime:     100 * units.Nanosecond,
		GatedEnergy:   units.Picojoule,
		UngatedEnergy: 2 * units.Picojoule,
	}
	if err := s.CheckInvariants(8); err != nil {
		t.Fatalf("clean stats fail: %v", err)
	}
	bad := s
	bad.AwakeBankTime = s.TotalTime*8 + units.Nanosecond
	if err := bad.CheckInvariants(8); err == nil {
		t.Error("awake time beyond banks×total passed")
	}
	bad = s
	bad.Transitions = -1
	if err := bad.CheckInvariants(8); err == nil {
		t.Error("negative transition count passed")
	}
}

func TestMutationAnalyticModel(t *testing.T) {
	p := findPoint(t, func(p *Point) bool { return true })
	m, err := analyticModel(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("clean model fails: %v", err)
	}
	bad := m
	bad.C.PU.Latency = -units.Picosecond
	if err := bad.CheckInvariants(); err == nil {
		t.Error("negative PU latency constant passed CheckInvariants")
	}
	bad = m
	bad.N.EdgeReads = -1
	if err := bad.CheckInvariants(); err == nil {
		t.Error("negative edge-read count passed CheckInvariants")
	}
}

func TestMutationCompareValues(t *testing.T) {
	got := []float64{1, 2, 3}
	want := []float64{1, 2, 3}
	if err := algo.CompareValues("v", got, want, 0); err != nil {
		t.Fatalf("identical values fail: %v", err)
	}
	got[1] += 1e-6
	err := algo.CompareValues("v", got, want, 1e-9)
	if err == nil {
		t.Fatal("drifted value passed CompareValues")
	}
	if !strings.Contains(err.Error(), "v") {
		t.Errorf("error does not name the series: %v", err)
	}
	if err := algo.CompareValues("v", []float64{1}, []float64{1, 2}, 0); err == nil {
		t.Fatal("length mismatch passed CompareValues")
	}
}

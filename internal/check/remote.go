package check

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/cache"
)

// PointDocSchema identifies the canonical conformance-point document —
// the payload a cluster worker returns for one check point. Like
// hyve/result/v1, the encoding is canonical (ordered struct fields, one
// trailing newline), so the same seed produces the same bytes on every
// correct worker and merged sweep artifacts are byte-identical to
// single-process runs.
const PointDocSchema = "hyve/checkpoint/v1"

// PointDoc is one conformance point's outcome in wire form.
type PointDoc struct {
	Schema string `json:"schema"`
	Seed   uint64 `json:"seed"`
	// Point is the human description ("" when the point timed out).
	Point string `json:"point,omitempty"`
	// Checks counts invariant runs at this point.
	Checks int `json:"checks"`
	// Invariants and Runs are parallel: the invariant registry's names
	// in order, and how many times each ran at this point (0 or 1). The
	// names pin the registry the worker ran against — a worker built
	// with a different invariant set cannot silently merge.
	Invariants []string          `json:"invariants"`
	Runs       []int             `json:"runs"`
	Failures   []PointDocFailure `json:"failures,omitempty"`
	// TimedOut marks a point abandoned at LimitMS.
	TimedOut bool  `json:"timed_out,omitempty"`
	LimitMS  int64 `json:"limit_ms,omitempty"`
}

// PointDocFailure is one invariant violation in wire form.
type PointDocFailure struct {
	Invariant string `json:"invariant"`
	Err       string `json:"err"`
}

// RunPointDoc runs seed's conformance point (under timeout, exactly as
// Run would) and encodes the outcome as a canonical PointDoc.
func RunPointDoc(seed uint64, timeout time.Duration, sched *cache.Scheduler) ([]byte, error) {
	invs := Invariants()
	doc := PointDoc{Schema: PointDocSchema, Seed: seed, Runs: make([]int, len(invs))}
	for _, inv := range invs {
		doc.Invariants = append(doc.Invariants, inv.Name)
	}
	res, err := runPointWithTimeout(seed, invs, timeout, sched)
	if err != nil {
		return nil, err
	}
	if res == nil {
		doc.TimedOut = true
		doc.LimitMS = timeout.Milliseconds()
	} else {
		doc.Point = res.point
		doc.Checks = res.checks
		copy(doc.Runs, res.runs)
		for _, f := range res.failures {
			doc.Failures = append(doc.Failures, PointDocFailure{Invariant: f.Invariant, Err: f.Err.Error()})
		}
	}
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(&doc); err != nil {
		return nil, fmt.Errorf("check: encoding point doc: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodePointDoc parses a PointDoc strictly: wrong schema, unknown
// fields, or a Runs/Invariants length mismatch is an error.
func DecodePointDoc(data []byte) (*PointDoc, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var doc PointDoc
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("check: decoding point doc: %w", err)
	}
	if doc.Schema != PointDocSchema {
		return nil, fmt.Errorf("check: point doc schema %q, want %q", doc.Schema, PointDocSchema)
	}
	if len(doc.Runs) != len(doc.Invariants) {
		return nil, fmt.Errorf("check: point doc has %d runs for %d invariants", len(doc.Runs), len(doc.Invariants))
	}
	return &doc, nil
}

// NewSummary builds an empty Summary over the local invariant registry,
// ready for AddDoc to merge remote points into.
func NewSummary() *Summary {
	invs := Invariants()
	sum := &Summary{Invariants: make([]InvariantSummary, len(invs))}
	for i, inv := range invs {
		sum.Invariants[i] = InvariantSummary{Name: inv.Name, Tolerance: inv.Tolerance}
	}
	return sum
}

// AddDoc merges one remote point into the summary. The doc's invariant
// registry must match the local one name for name — a mismatch means
// the worker ran a different build, and its numbers cannot be trusted
// into this table.
func (s *Summary) AddDoc(doc *PointDoc) error {
	if len(doc.Invariants) != len(s.Invariants) {
		return fmt.Errorf("check: point doc has %d invariants, this build has %d", len(doc.Invariants), len(s.Invariants))
	}
	for i, name := range doc.Invariants {
		if s.Invariants[i].Name != name {
			return fmt.Errorf("check: point doc invariant %d is %q, this build has %q", i, name, s.Invariants[i].Name)
		}
	}
	if doc.TimedOut {
		s.TimedOut = append(s.TimedOut, TimedOutPoint{Seed: doc.Seed, Limit: time.Duration(doc.LimitMS) * time.Millisecond})
		return nil
	}
	s.Points++
	s.Checks += doc.Checks
	for i, r := range doc.Runs {
		s.Invariants[i].Runs += r
	}
	for _, f := range doc.Failures {
		for i := range s.Invariants {
			if s.Invariants[i].Name == f.Invariant {
				s.Invariants[i].Failures++
				break
			}
		}
		s.Failures = append(s.Failures, Failure{
			Invariant: f.Invariant, Seed: doc.Seed, Point: doc.Point,
			Err: fmt.Errorf("%s", f.Err),
		})
	}
	return nil
}

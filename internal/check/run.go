package check

import (
	"fmt"
	"io"
	"strconv"
	"time"

	"repro/internal/cache"
	"repro/internal/obs"
)

// Options configures a conformance sweep.
type Options struct {
	// Seed is the base seed; point i uses Seed+i.
	Seed uint64
	// Points caps the number of points (0 = until Duration).
	Points int
	// Duration caps wall-clock time (0 = until Points). With both zero
	// the sweep runs DefaultPoints points.
	Duration time.Duration
	// Verbose streams one line per point to Out.
	Verbose bool
	// Out receives progress and the closing table (nil = discard).
	Out io.Writer
	// PointTimeout bounds the wall-clock time of a single point (build +
	// every invariant). A point that exceeds it is abandoned — its seed
	// recorded in Summary.TimedOut, its goroutine left to finish or hang
	// on its own — and the sweep moves on, so one pathological seed
	// cannot wedge a CI sweep forever. 0 means no limit.
	PointTimeout time.Duration
	// Cache is the scheduler points resolve their machines through, so a
	// sweep shares assembled grids and results with any other consumer of
	// the same scheduler. Nil builds a private in-memory scheduler for
	// the sweep; cache.Off() disables sharing entirely (the -no-cache
	// escape hatch).
	Cache *cache.Scheduler
}

// DefaultPoints is the sweep size when neither budget is set.
const DefaultPoints = 16

// Failure records one invariant violation.
type Failure struct {
	Invariant string
	Seed      uint64
	Point     string
	Err       error
}

// InvariantSummary aggregates one invariant over the sweep.
type InvariantSummary struct {
	Name      string
	Tolerance string
	Runs      int
	Failures  int
}

// TimedOutPoint records a point abandoned at Options.PointTimeout: the
// seed reproduces it (-seed N -points 1), the limit says how long it
// was given.
type TimedOutPoint struct {
	Seed  uint64
	Limit time.Duration
}

// Summary is the outcome of a sweep.
type Summary struct {
	Points     int
	Checks     int
	Invariants []InvariantSummary
	Failures   []Failure
	// TimedOut lists abandoned points. They are not failures — no
	// invariant was violated — but a sweep with timed-out points did not
	// actually check everything it was asked to, so drivers must not let
	// it pass silently (hyve-check exits 2).
	TimedOut []TimedOutPoint
}

// OK reports whether every completed check passed.
func (s *Summary) OK() bool { return len(s.Failures) == 0 }

// Complete reports whether every point actually ran to completion.
func (s *Summary) Complete() bool { return len(s.TimedOut) == 0 }

// Run executes the conformance sweep: deterministic seeds Seed, Seed+1,
// … drive randomized points, and every applicable invariant runs at
// every point. At least one point always runs, even under an expired
// duration budget, so a sweep can never vacuously pass.
func Run(opt Options) (*Summary, error) {
	out := opt.Out
	if out == nil {
		out = io.Discard
	}
	invs := Invariants()
	sum := &Summary{Invariants: make([]InvariantSummary, len(invs))}
	for i, inv := range invs {
		sum.Invariants[i] = InvariantSummary{Name: inv.Name, Tolerance: inv.Tolerance}
	}

	points := opt.Points
	if points <= 0 && opt.Duration <= 0 {
		points = DefaultPoints
	}
	sched := opt.Cache
	if sched == nil {
		sched = cache.New(cache.Config{})
	}
	deadline := time.Time{}
	if opt.Duration > 0 {
		deadline = time.Now().Add(opt.Duration)
	}

	for i := 0; ; i++ {
		if points > 0 && i >= points {
			break
		}
		if i > 0 && !deadline.IsZero() && time.Now().After(deadline) {
			break
		}
		seed := opt.Seed + uint64(i)
		res, err := runPointWithTimeout(seed, invs, opt.PointTimeout, sched)
		if err != nil {
			return sum, err
		}
		if res == nil {
			// Abandoned at the limit; its goroutine finishes (or hangs)
			// on its own and its results, if any, are discarded.
			sum.TimedOut = append(sum.TimedOut, TimedOutPoint{Seed: seed, Limit: opt.PointTimeout})
			fmt.Fprintf(out, "TIMEOUT seed=%d abandoned after %v\n", seed, opt.PointTimeout)
			continue
		}
		sum.Points++
		sum.Checks += res.checks
		for j := range invs {
			sum.Invariants[j].Runs += res.runs[j]
		}
		for _, f := range res.failures {
			sum.Invariants[f.invIndex].Failures++
			sum.Failures = append(sum.Failures, f.Failure)
			fmt.Fprintf(out, "FAIL %-22s %s\n     %v\n", f.Invariant, f.Point, f.Err)
		}
		if opt.Verbose && len(res.failures) == 0 {
			fmt.Fprintf(out, "ok   %s\n", res.point)
		}
	}
	return sum, nil
}

// pointResult is one point's completed outcome, assembled off to the
// side so a timed-out point can be discarded wholesale without having
// touched the shared summary.
type pointResult struct {
	point    string
	checks   int
	runs     []int // per-invariant applicable-run counts
	failures []indexedFailure
}

type indexedFailure struct {
	Failure
	invIndex int
}

// runPoint builds the seed's point and runs every applicable invariant.
// Each invariant's wall time feeds a labeled histogram
// ("check.invariant.seconds"|invariant=<name>), so a sweep's slowest
// invariants are visible on /metrics, and point lifecycle events land in
// the flight recorder for the timeout dump.
func runPoint(seed uint64, invs []Invariant, sched *cache.Scheduler) (*pointResult, error) {
	rec := obs.Default()
	obs.Flight().Record("check.point.start", strconv.FormatUint(seed, 10))
	p, err := NewPoint(seed)
	if err != nil {
		return nil, fmt.Errorf("check: building point for seed %d: %w", seed, err)
	}
	p.Sched = sched
	res := &pointResult{point: p.String(), runs: make([]int, len(invs))}
	for j := range invs {
		inv := &invs[j]
		if inv.Applies != nil && !inv.Applies(p) {
			continue
		}
		res.checks++
		res.runs[j]++
		start := time.Now()
		err := inv.Check(p)
		obs.ObserveSince(rec, obs.WithLabel("check.invariant.seconds", "invariant", inv.Name), start)
		if err != nil {
			obs.Flight().Record("check.invariant.fail", inv.Name,
				"seed", strconv.FormatUint(seed, 10), "err", err.Error())
			res.failures = append(res.failures, indexedFailure{
				Failure:  Failure{Invariant: inv.Name, Seed: seed, Point: p.String(), Err: err},
				invIndex: j,
			})
		}
	}
	obs.Flight().Record("check.point.done", strconv.FormatUint(seed, 10))
	return res, nil
}

// runPointWithTimeout runs the point under a wall-clock limit. A nil,
// nil return means the limit expired: the point's goroutine is left
// running (a wedged simulation cannot be cancelled from outside; the
// leak is bounded by one goroutine per timed-out point) and delivers
// its eventual result into a buffered channel nobody reads.
func runPointWithTimeout(seed uint64, invs []Invariant, limit time.Duration, sched *cache.Scheduler) (*pointResult, error) {
	if limit <= 0 {
		return runPoint(seed, invs, sched)
	}
	type outcome struct {
		res *pointResult
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		r, err := runPoint(seed, invs, sched)
		ch <- outcome{r, err}
	}()
	timer := time.NewTimer(limit)
	defer timer.Stop()
	select {
	case o := <-ch:
		return o.res, o.err
	case <-timer.C:
		obs.Default().Count("check.points.timedout", 1)
		obs.Flight().Record("check.point.timeout", strconv.FormatUint(seed, 10),
			"limit", limit.String())
		obs.DumpFlight("check point timeout at seed " + strconv.FormatUint(seed, 10))
		return nil, nil
	}
}

// WriteReport renders the per-invariant table and verdict.
func (s *Summary) WriteReport(w io.Writer) {
	fmt.Fprintf(w, "\n%d points, %d checks\n", s.Points, s.Checks)
	fmt.Fprintf(w, "%-22s %5s %5s  %s\n", "invariant", "runs", "fail", "tolerance")
	for _, inv := range s.Invariants {
		fmt.Fprintf(w, "%-22s %5d %5d  %s\n", inv.Name, inv.Runs, inv.Failures, inv.Tolerance)
	}
	for _, to := range s.TimedOut {
		fmt.Fprintf(w, "TIMEOUT: seed %d abandoned after %v; reproduce with -seed %d -points 1\n",
			to.Seed, to.Limit, to.Seed)
	}
	if s.OK() {
		if !s.Complete() {
			fmt.Fprintf(w, "PASS (incomplete): no violations, but %d point(s) timed out\n", len(s.TimedOut))
			return
		}
		fmt.Fprintln(w, "PASS: every invariant held at every point")
		return
	}
	fmt.Fprintf(w, "FAIL: %d violations; reproduce one with -seed <seed> -points 1:\n", len(s.Failures))
	for _, f := range s.Failures {
		fmt.Fprintf(w, "  %s at %s: %v\n", f.Invariant, f.Point, f.Err)
	}
}

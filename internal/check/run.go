package check

import (
	"fmt"
	"io"
	"time"
)

// Options configures a conformance sweep.
type Options struct {
	// Seed is the base seed; point i uses Seed+i.
	Seed uint64
	// Points caps the number of points (0 = until Duration).
	Points int
	// Duration caps wall-clock time (0 = until Points). With both zero
	// the sweep runs DefaultPoints points.
	Duration time.Duration
	// Verbose streams one line per point to Out.
	Verbose bool
	// Out receives progress and the closing table (nil = discard).
	Out io.Writer
}

// DefaultPoints is the sweep size when neither budget is set.
const DefaultPoints = 16

// Failure records one invariant violation.
type Failure struct {
	Invariant string
	Seed      uint64
	Point     string
	Err       error
}

// InvariantSummary aggregates one invariant over the sweep.
type InvariantSummary struct {
	Name      string
	Tolerance string
	Runs      int
	Failures  int
}

// Summary is the outcome of a sweep.
type Summary struct {
	Points     int
	Checks     int
	Invariants []InvariantSummary
	Failures   []Failure
}

// OK reports whether the sweep passed.
func (s *Summary) OK() bool { return len(s.Failures) == 0 }

// Run executes the conformance sweep: deterministic seeds Seed, Seed+1,
// … drive randomized points, and every applicable invariant runs at
// every point. At least one point always runs, even under an expired
// duration budget, so a sweep can never vacuously pass.
func Run(opt Options) (*Summary, error) {
	out := opt.Out
	if out == nil {
		out = io.Discard
	}
	invs := Invariants()
	sum := &Summary{Invariants: make([]InvariantSummary, len(invs))}
	for i, inv := range invs {
		sum.Invariants[i] = InvariantSummary{Name: inv.Name, Tolerance: inv.Tolerance}
	}

	points := opt.Points
	if points <= 0 && opt.Duration <= 0 {
		points = DefaultPoints
	}
	deadline := time.Time{}
	if opt.Duration > 0 {
		deadline = time.Now().Add(opt.Duration)
	}

	for i := 0; ; i++ {
		if points > 0 && i >= points {
			break
		}
		if i > 0 && !deadline.IsZero() && time.Now().After(deadline) {
			break
		}
		seed := opt.Seed + uint64(i)
		p, err := NewPoint(seed)
		if err != nil {
			return sum, fmt.Errorf("check: building point for seed %d: %w", seed, err)
		}
		sum.Points++
		var pointFailures int
		for j := range invs {
			inv := &invs[j]
			if inv.Applies != nil && !inv.Applies(p) {
				continue
			}
			sum.Checks++
			sum.Invariants[j].Runs++
			if err := inv.Check(p); err != nil {
				sum.Invariants[j].Failures++
				pointFailures++
				sum.Failures = append(sum.Failures, Failure{
					Invariant: inv.Name, Seed: seed, Point: p.String(), Err: err,
				})
				fmt.Fprintf(out, "FAIL %-22s %s\n     %v\n", inv.Name, p, err)
			}
		}
		if opt.Verbose && pointFailures == 0 {
			fmt.Fprintf(out, "ok   %s\n", p)
		}
	}
	return sum, nil
}

// WriteReport renders the per-invariant table and verdict.
func (s *Summary) WriteReport(w io.Writer) {
	fmt.Fprintf(w, "\n%d points, %d checks\n", s.Points, s.Checks)
	fmt.Fprintf(w, "%-22s %5s %5s  %s\n", "invariant", "runs", "fail", "tolerance")
	for _, inv := range s.Invariants {
		fmt.Fprintf(w, "%-22s %5d %5d  %s\n", inv.Name, inv.Runs, inv.Failures, inv.Tolerance)
	}
	if s.OK() {
		fmt.Fprintln(w, "PASS: every invariant held at every point")
		return
	}
	fmt.Fprintf(w, "FAIL: %d violations; reproduce one with -seed <seed> -points 1:\n", len(s.Failures))
	for _, f := range s.Failures {
		fmt.Fprintf(w, "  %s at %s: %v\n", f.Invariant, f.Point, f.Err)
	}
}

package device

import (
	"testing"

	"repro/internal/units"
)

// fakeMem is a trivially costed memory for exercising the helpers.
type fakeMem struct{ line int }

func (f fakeMem) Name() string            { return "fake" }
func (f fakeMem) LineBytes() int          { return f.line }
func (f fakeMem) CapacityBytes() int64    { return 1 << 20 }
func (f fakeMem) Background() units.Power { return 0 }
func (f fakeMem) Read(seq bool) Cost {
	if seq {
		return Cost{Latency: 1 * units.Nanosecond, Energy: 10}
	}
	return Cost{Latency: 5 * units.Nanosecond, Energy: 20}
}
func (f fakeMem) Write(seq bool) Cost {
	if seq {
		return Cost{Latency: 2 * units.Nanosecond, Energy: 15}
	}
	return Cost{Latency: 7 * units.Nanosecond, Energy: 30}
}

func TestCostArithmetic(t *testing.T) {
	a := Cost{Latency: units.Nanosecond, Energy: 2}
	b := Cost{Latency: 3 * units.Nanosecond, Energy: 5}
	sum := a.Plus(b)
	if sum.Latency != 4*units.Nanosecond || sum.Energy != 7 {
		t.Errorf("Plus = %v", sum)
	}
	scaled := a.Times(2.5)
	if scaled.Latency != units.Time(2500) || scaled.Energy != 5 {
		t.Errorf("Times = %v", scaled)
	}
	if got := a.EDP(); got != units.EDPOf(2, units.Nanosecond) {
		t.Errorf("EDP = %v", got)
	}
}

func TestSweepRoundsUpToLines(t *testing.T) {
	m := fakeMem{line: 64}
	// 65 bytes needs 2 lines.
	got := Sweep(m, 65, true, false)
	want := m.Read(true).Times(2)
	if got != want {
		t.Errorf("Sweep(65B seq read) = %v, want %v", got, want)
	}
	if got := Sweep(m, 0, true, false); got != (Cost{}) {
		t.Errorf("Sweep(0) = %v, want zero", got)
	}
	if got := Sweep(m, -5, true, false); got != (Cost{}) {
		t.Errorf("Sweep(-5) = %v, want zero", got)
	}
	// Write path.
	got = Sweep(m, 64, false, true)
	if got != m.Write(false) {
		t.Errorf("Sweep(64B rand write) = %v, want %v", got, m.Write(false))
	}
}

func TestLines(t *testing.T) {
	m := fakeMem{line: 8}
	cases := []struct {
		bytes int64
		want  int64
	}{{0, 0}, {-1, 0}, {1, 1}, {8, 1}, {9, 2}, {64, 8}}
	for _, c := range cases {
		if got := Lines(m, c.bytes); got != c.want {
			t.Errorf("Lines(%d) = %d, want %d", c.bytes, got, c.want)
		}
	}
}

func TestCMOSPUPipelining(t *testing.T) {
	pu := NewCMOSPU()
	op := pu.Op()
	unpiped := pu.UnpipelinedOp()
	if op.Energy != unpiped.Energy {
		t.Error("pipelining must not change per-op energy")
	}
	if op.Latency >= unpiped.Latency {
		t.Errorf("pipelined issue interval %v not below op latency %v", op.Latency, unpiped.Latency)
	}
	// Paper constants.
	if unpiped.Latency != units.Time(18.783*float64(units.Nanosecond)) {
		t.Errorf("op latency = %v, want 18.783ns", unpiped.Latency)
	}
	if unpiped.Energy != units.Energy(3.7) {
		t.Errorf("op energy = %v, want 3.7pJ", unpiped.Energy)
	}
	// Degenerate stage count falls back to unpipelined.
	pu.PipelineStages = 0
	if got := pu.Op(); got.Latency != unpiped.Latency {
		t.Errorf("stages=0 Op latency = %v, want %v", got.Latency, unpiped.Latency)
	}
}

package nvmalt

import (
	"testing"

	"repro/internal/device/rram"
)

func chip(t *testing.T, k Kind) *Chip {
	t.Helper()
	c, err := New(Config{Kind: k, DensityGb: 4})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestValidation(t *testing.T) {
	if _, err := New(Config{Kind: PCM, DensityGb: 3}); err == nil {
		t.Error("bad density accepted")
	}
	if _, err := New(Config{Kind: Kind(9), DensityGb: 4}); err == nil {
		t.Error("unknown kind accepted")
	}
}

// §2.3's comparison points against the calibrated ReRAM chip.
func TestPCMVersusReRAM(t *testing.T) {
	pcm := chip(t, PCM)
	rr, err := rram.New(rram.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// "lower energy usage for write operations" (ReRAM vs PCM):
	if rr.Write(true).Energy >= pcm.Write(true).Energy {
		t.Error("ReRAM write energy should be below PCM's")
	}
	if rr.Write(true).Latency >= pcm.Write(true).Latency {
		t.Error("ReRAM write should be faster than PCM's crystallization")
	}
	// "superior endurance (>10¹⁰)":
	if pcm.Endurance() >= 1e10 {
		t.Error("PCM endurance should be below ReRAM's 1e10 threshold")
	}
	// Drift scrubbing shows up as background ReRAM does not pay.
	if pcm.Background() <= rr.Background() {
		t.Error("PCM background (drift scrubbing) should exceed ReRAM's")
	}
}

func TestSTTMRAMCharacter(t *testing.T) {
	stt := chip(t, STTMRAM)
	pcm := chip(t, PCM)
	if stt.Write(true).Latency >= pcm.Write(true).Latency {
		t.Error("STT-MRAM writes should be far faster than PCM's")
	}
	if stt.Endurance() <= pcm.Endurance() {
		t.Error("STT-MRAM endurance should exceed PCM's")
	}
	// Density penalty: the same target density yields half the per-chip
	// capacity.
	if stt.CapacityBytes() != pcm.CapacityBytes()/2 {
		t.Errorf("STT capacity %d, want half of PCM's %d", stt.CapacityBytes(), pcm.CapacityBytes())
	}
}

func TestMemoryInterfaceBasics(t *testing.T) {
	for _, k := range []Kind{PCM, STTMRAM} {
		c := chip(t, k)
		if c.Name() == "" || c.LineBytes() != 64 {
			t.Errorf("%v: bad identity", k)
		}
		if c.Read(false).Latency <= c.Read(true).Latency {
			t.Errorf("%v: random read not slower", k)
		}
		if c.Write(true).Energy <= c.Read(true).Energy {
			t.Errorf("%v: write not costlier than read", k)
		}
		if c.Background() <= 0 {
			t.Errorf("%v: no background power", k)
		}
	}
	if PCM.String() != "PCM" || STTMRAM.String() != "STT-MRAM" || Kind(7).String() == "" {
		t.Error("kind names wrong")
	}
}

func TestDensityScaling(t *testing.T) {
	small := chip(t, PCM)
	big, err := New(Config{Kind: PCM, DensityGb: 16})
	if err != nil {
		t.Fatal(err)
	}
	if big.CapacityBytes() != 4*small.CapacityBytes() {
		t.Error("capacity not scaling with density")
	}
	if big.Read(true).Energy <= small.Read(true).Energy {
		t.Error("denser chip should pay more wire energy")
	}
}

// Package nvmalt models the alternative non-volatile memories the paper
// weighs ReRAM against in §2.3 — phase-change memory (PCM) and
// STT-MRAM — as drop-in edge-memory devices. The paper dismisses PCM
// qualitatively ("ReRAMs benefit from superior endurance (>10¹⁰), no
// resistance drift and lower energy usage for write operations"); these
// models let the repository's ablation experiments quantify that choice
// on the same workloads instead of taking it on faith.
//
// Operating points are representative 22 nm-era published values, scaled
// to the same 512-bit line interface as the calibrated ReRAM chip.
package nvmalt

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/units"
)

// Kind selects an alternative NVM technology.
type Kind int

// Technologies.
const (
	PCM Kind = iota
	STTMRAM
)

func (k Kind) String() string {
	switch k {
	case PCM:
		return "PCM"
	case STTMRAM:
		return "STT-MRAM"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Config selects a chip design point.
type Config struct {
	Kind      Kind
	DensityGb int // 4, 8, or 16
}

// Chip is a configured alternative-NVM device implementing device.Memory
// at the 64-byte line granularity shared by the comparison set.
type Chip struct {
	cfg                 Config
	readSeq, readRand   device.Cost
	writeSeq, writeRand device.Cost
	background          units.Power
	endurance           float64
}

// New builds the chip.
func New(cfg Config) (*Chip, error) {
	switch cfg.DensityGb {
	case 4, 8, 16:
	default:
		return nil, fmt.Errorf("nvmalt: unsupported density %d Gb", cfg.DensityGb)
	}
	ds := map[int]float64{4: 1, 8: 1.19, 16: 1.41}[cfg.DensityGb]
	c := &Chip{cfg: cfg}
	ns := func(x float64) units.Time { return units.Time(x * float64(units.Nanosecond) * ds) }
	pj := func(x float64) units.Energy { return units.Energy(x * ds) }
	mw := func(x float64) units.Power { return units.Power(x * float64(units.Milliwatt) * ds) }
	switch cfg.Kind {
	case PCM:
		// PCM reads are close to ReRAM; writes crystallize (SET ~150 ns)
		// or melt-quench (RESET, high current): slow and energy-hungry.
		// Resistance drift forces periodic scrubbing, a small background
		// adder a ReRAM chip does not pay.
		c.readSeq = device.Cost{Latency: ns(2.4), Energy: pj(175)}
		c.readRand = device.Cost{Latency: ns(55), Energy: pj(228)}
		c.writeSeq = device.Cost{Latency: ns(150), Energy: pj(2200)}
		c.writeRand = device.Cost{Latency: ns(155), Energy: pj(2860)}
		// Periphery plus drift scrubbing: resistance drift forces a
		// refresh-like background sweep that ReRAM does not pay.
		c.background = mw(26)
		c.endurance = 1e9
	case STTMRAM:
		// STT-MRAM is fast both ways but its read energy is above
		// ReRAM's (larger sense margins against read disturb), and its
		// large cell (~40 F²) costs density → more chips per byte.
		c.readSeq = device.Cost{Latency: ns(1.1), Energy: pj(210)}
		c.readRand = device.Cost{Latency: ns(12), Energy: pj(273)}
		c.writeSeq = device.Cost{Latency: ns(10), Energy: pj(640)}
		c.writeRand = device.Cost{Latency: ns(13), Energy: pj(832)}
		c.background = mw(10)
		c.endurance = 1e15
	default:
		return nil, fmt.Errorf("nvmalt: unknown kind %v", cfg.Kind)
	}
	return c, nil
}

// Name implements device.Memory.
func (c *Chip) Name() string { return fmt.Sprintf("%v-%dGb", c.cfg.Kind, c.cfg.DensityGb) }

// LineBytes implements device.Memory.
func (c *Chip) LineBytes() int { return 64 }

// CapacityBytes implements device.Memory. STT-MRAM's big cell halves the
// per-die capacity at equal area; the config's density is the *target*,
// so the chip count doubles instead.
func (c *Chip) CapacityBytes() int64 {
	bytes := int64(c.cfg.DensityGb) << 30 / 8
	if c.cfg.Kind == STTMRAM {
		return bytes / 2
	}
	return bytes
}

// Read implements device.Memory.
func (c *Chip) Read(sequential bool) device.Cost {
	if sequential {
		return c.readSeq
	}
	return c.readRand
}

// Write implements device.Memory.
func (c *Chip) Write(sequential bool) device.Cost {
	if sequential {
		return c.writeSeq
	}
	return c.writeRand
}

// Background implements device.Memory.
func (c *Chip) Background() units.Power { return c.background }

// Endurance returns the write-cycle endurance (the §2.3 criterion that
// rules PCM out for write-heavy roles).
func (c *Chip) Endurance() float64 { return c.endurance }

var _ device.Memory = (*Chip)(nil)

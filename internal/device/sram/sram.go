// Package sram models the on-chip vertex memories of HyVE (CACTI-6.5-
// style SRAM under 22 nm, per §7.1) and the register files GraphR uses
// for its local vertex buffers. The models are anchored to the operating
// points the paper quotes verbatim:
//
//	2 MB SRAM: 960.03 ps / 23.84 pJ per 32-bit read,
//	           557.089 ps / 24.74 pJ per 32-bit write,
//	           1.071 ns operating cycle (1.808 ns at 4 MB);
//	register file: 11.976 ps / 1.227 pJ read, 10.563 ps / 1.209 pJ write.
//
// Other capacities scale with the wire-dominated exponents implied by the
// paper's own 2 MB → 4 MB cycle-time pair.
package sram

import (
	"fmt"
	"math"

	"repro/internal/device"
	"repro/internal/units"
)

// Anchor capacity for the calibrated operating point.
const anchorBytes = 2 << 20

// Calibrated 2 MB operating point (32-bit access).
const (
	anchorReadPs   = 960.03
	anchorReadPJ   = 23.84
	anchorWritePs  = 557.089
	anchorWritePJ  = 24.74
	anchorCyclePs  = 1071.0
	cycle4MBPs     = 1808.0
	anchorLeakMWMB = 6.0 // leakage per MB; CACTI-scale 22 nm low-standby SRAM
)

// latencyExp is derived from the paper's own pair of cycle times:
// 1.071 ns @ 2 MB → 1.808 ns @ 4 MB ⇒ exponent log2(1.808/1.071) ≈ 0.755.
var latencyExp = math.Log2(cycle4MBPs / anchorCyclePs)

// energyExp: access energy in large SRAMs is wire-dominated and grows
// roughly with the square root of capacity.
const energyExp = 0.5

// SRAM is an on-chip scratchpad of the given capacity with 32-bit access
// granularity. It implements device.Memory; sequential and random
// accesses cost the same (scratchpads have no row-buffer state), which is
// what lets the PUs "issue consecutive read/write requests to SRAM
// without waiting for extra clock cycles" (§3.2).
type SRAM struct {
	capacity int64
	read     device.Cost
	write    device.Cost
	cycle    units.Time
	leak     units.Power
}

// New builds an SRAM of the given capacity in bytes.
func New(capacityBytes int64) (*SRAM, error) {
	if capacityBytes <= 0 {
		return nil, fmt.Errorf("sram: non-positive capacity %d", capacityBytes)
	}
	ratio := float64(capacityBytes) / float64(anchorBytes)
	latScale := math.Pow(ratio, latencyExp)
	enScale := math.Pow(ratio, energyExp)
	return &SRAM{
		capacity: capacityBytes,
		read: device.Cost{
			Latency: units.Time(anchorReadPs * latScale),
			Energy:  units.Energy(anchorReadPJ * enScale),
		},
		write: device.Cost{
			Latency: units.Time(anchorWritePs * latScale),
			Energy:  units.Energy(anchorWritePJ * enScale),
		},
		cycle: units.Time(anchorCyclePs * latScale),
		leak:  units.Power(anchorLeakMWMB * float64(capacityBytes) / (1 << 20) * float64(units.Milliwatt)),
	}, nil
}

// Name implements device.Memory.
func (s *SRAM) Name() string { return fmt.Sprintf("SRAM-%dKB", s.capacity>>10) }

// LineBytes implements device.Memory: 32-bit word access.
func (s *SRAM) LineBytes() int { return 4 }

// CapacityBytes implements device.Memory.
func (s *SRAM) CapacityBytes() int64 { return s.capacity }

// Read implements device.Memory.
func (s *SRAM) Read(bool) device.Cost { return s.read }

// Write implements device.Memory.
func (s *SRAM) Write(bool) device.Cost { return s.write }

// Background implements device.Memory: SRAM leakage, which is what makes
// over-provisioned on-chip memory lose in Table 4.
func (s *SRAM) Background() units.Power { return s.leak }

// Cycle returns the operating clock period (used for the router transfer
// pipeline in §4.2).
func (s *SRAM) Cycle() units.Time { return s.cycle }

var _ device.Memory = (*SRAM)(nil)

// RegisterFile is GraphR's local vertex buffer: tiny, very fast, very
// low energy per access — but so small that graphs must be cut into many
// more partitions, which is the paper's Fig. 11 argument.
type RegisterFile struct {
	capacity int64
}

// NewRegisterFile builds a register file of the given capacity.
func NewRegisterFile(capacityBytes int64) (*RegisterFile, error) {
	if capacityBytes <= 0 {
		return nil, fmt.Errorf("sram: non-positive register file capacity %d", capacityBytes)
	}
	return &RegisterFile{capacity: capacityBytes}, nil
}

// Name implements device.Memory.
func (r *RegisterFile) Name() string { return fmt.Sprintf("RegFile-%dB", r.capacity) }

// LineBytes implements device.Memory.
func (r *RegisterFile) LineBytes() int { return 4 }

// CapacityBytes implements device.Memory.
func (r *RegisterFile) CapacityBytes() int64 { return r.capacity }

// Read implements device.Memory (paper: 11.976 ps, 1.227 pJ per 32 bits).
func (r *RegisterFile) Read(bool) device.Cost {
	return device.Cost{Latency: units.Time(11.976), Energy: units.Energy(1.227)}
}

// Write implements device.Memory (paper: 10.563 ps, 1.209 pJ per 32 bits).
func (r *RegisterFile) Write(bool) device.Cost {
	return device.Cost{Latency: units.Time(10.563), Energy: units.Energy(1.209)}
}

// Background implements device.Memory.
func (r *RegisterFile) Background() units.Power {
	// Flip-flop arrays leak roughly in proportion to bit count; tiny at
	// GraphR's 8-vertex buffers.
	return units.Power(0.05 * float64(r.capacity) / 1024 * float64(units.Milliwatt))
}

var _ device.Memory = (*RegisterFile)(nil)

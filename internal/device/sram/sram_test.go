package sram

import (
	"math"
	"testing"

	"repro/internal/units"
)

func mustSRAM(t *testing.T, bytes int64) *SRAM {
	t.Helper()
	s, err := New(bytes)
	if err != nil {
		t.Fatalf("New(%d): %v", bytes, err)
	}
	return s
}

// The 2 MB anchor must reproduce the paper's quoted CACTI numbers
// exactly.
func TestAnchorOperatingPoint(t *testing.T) {
	s := mustSRAM(t, 2<<20)
	rd, wr := s.Read(true), s.Write(true)
	if rd.Latency != units.Time(960.03) {
		t.Errorf("2MB read latency = %v ps, want 960.03", rd.Latency.Picoseconds())
	}
	if rd.Energy != units.Energy(23.84) {
		t.Errorf("2MB read energy = %v pJ, want 23.84", rd.Energy.Picojoules())
	}
	if wr.Latency != units.Time(557.089) {
		t.Errorf("2MB write latency = %v ps, want 557.089", wr.Latency.Picoseconds())
	}
	if wr.Energy != units.Energy(24.74) {
		t.Errorf("2MB write energy = %v pJ, want 24.74", wr.Energy.Picojoules())
	}
	if s.Cycle() != units.Time(1071) {
		t.Errorf("2MB cycle = %v ps, want 1071", s.Cycle().Picoseconds())
	}
}

// The paper also quotes the 4 MB cycle time (1.808 ns); the scaling
// exponent is derived from it, so it must come back out.
func TestFourMBCycleMatchesPaper(t *testing.T) {
	s := mustSRAM(t, 4<<20)
	got := s.Cycle().Picoseconds()
	if math.Abs(got-1808) > 1 {
		t.Errorf("4MB cycle = %v ps, want 1808", got)
	}
}

func TestScalingMonotone(t *testing.T) {
	sizes := []int64{1 << 20, 2 << 20, 4 << 20, 8 << 20, 16 << 20, 32 << 20}
	var prevLat units.Time
	var prevEn units.Energy
	var prevLeak units.Power
	for _, b := range sizes {
		s := mustSRAM(t, b)
		rd := s.Read(true)
		if rd.Latency <= prevLat || rd.Energy <= prevEn || s.Background() <= prevLeak {
			t.Errorf("%dMB: scaling not monotone (lat %v, en %v, leak %v)",
				b>>20, rd.Latency, rd.Energy, s.Background())
		}
		prevLat, prevEn, prevLeak = rd.Latency, rd.Energy, s.Background()
	}
}

// Table 4's driver: leakage grows linearly with capacity, so a 16×
// larger SRAM leaks 16× more.
func TestLeakageLinearInCapacity(t *testing.T) {
	s2 := mustSRAM(t, 2<<20)
	s32 := mustSRAM(t, 32<<20)
	ratio := float64(s32.Background()) / float64(s2.Background())
	if math.Abs(ratio-16) > 1e-6 {
		t.Errorf("leakage ratio 32MB/2MB = %v, want 16", ratio)
	}
}

func TestSRAMSequentialEqualsRandom(t *testing.T) {
	s := mustSRAM(t, 2<<20)
	if s.Read(true) != s.Read(false) || s.Write(true) != s.Write(false) {
		t.Error("scratchpad access cost must not depend on locality")
	}
}

func TestSRAMValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := New(-4); err == nil {
		t.Error("negative capacity accepted")
	}
}

func TestSRAMIdentity(t *testing.T) {
	s := mustSRAM(t, 2<<20)
	if s.Name() != "SRAM-2048KB" {
		t.Errorf("Name = %q", s.Name())
	}
	if s.LineBytes() != 4 {
		t.Errorf("LineBytes = %d, want 4", s.LineBytes())
	}
	if s.CapacityBytes() != 2<<20 {
		t.Errorf("CapacityBytes = %d", s.CapacityBytes())
	}
}

func TestRegisterFilePaperPoint(t *testing.T) {
	r, err := NewRegisterFile(64)
	if err != nil {
		t.Fatal(err)
	}
	if r.Read(true) != (r.Read(false)) {
		t.Error("register file access must not depend on locality")
	}
	if got := r.Read(true).Latency.Picoseconds(); got != 11.976 {
		t.Errorf("regfile read latency = %v ps, want 11.976", got)
	}
	if got := r.Read(true).Energy.Picojoules(); got != 1.227 {
		t.Errorf("regfile read energy = %v pJ, want 1.227", got)
	}
	if got := r.Write(true).Latency.Picoseconds(); got != 10.563 {
		t.Errorf("regfile write latency = %v ps, want 10.563", got)
	}
	if got := r.Write(true).Energy.Picojoules(); got != 1.209 {
		t.Errorf("regfile write energy = %v pJ, want 1.209", got)
	}
}

// The paper's Fig. 11 contrast: register files are ~80× faster and ~20×
// cheaper per access than a 2 MB SRAM — and the SRAM still wins overall
// because of partitioning. The device-level gap must be present.
func TestRegisterFileFarCheaperThanSRAM(t *testing.T) {
	r, err := NewRegisterFile(64)
	if err != nil {
		t.Fatal(err)
	}
	s := mustSRAM(t, 2<<20)
	if r.Read(true).Latency.Times(10) > s.Read(true).Latency {
		t.Error("register file latency advantage missing")
	}
	if r.Read(true).Energy.Times(5) > s.Read(true).Energy {
		t.Error("register file energy advantage missing")
	}
}

func TestRegisterFileValidation(t *testing.T) {
	if _, err := NewRegisterFile(0); err == nil {
		t.Error("zero capacity accepted")
	}
}

package rram

import (
	"math"
	"testing"

	"repro/internal/units"
)

func mustChip(t *testing.T, cfg Config) *Chip {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New(%+v): %v", cfg, err)
	}
	return c
}

// The 4 Gb SLC chip must reproduce the paper's Table 3 operating points
// exactly: those numbers are the calibration contract with NVSim.
func TestTable3Reproduction(t *testing.T) {
	for _, op := range Table3 {
		cfg := DefaultConfig()
		cfg.Optimize = op.Optimize
		cfg.OutputBits = op.OutputBits
		c := mustChip(t, cfg)
		rd := c.Read(true)
		if rd.Energy != op.Energy {
			t.Errorf("%v/%db: read energy %v, want %v", op.Optimize, op.OutputBits, rd.Energy, op.Energy)
		}
		if rd.Latency != op.Period {
			t.Errorf("%v/%db: read period %v, want %v", op.Optimize, op.OutputBits, rd.Latency, op.Period)
		}
	}
}

// Table 3's published power-per-bit column: the energy-optimized 512-bit
// configuration is the chosen design at ~0.10 mW/bit.
func TestPowerPerBitMatchesPaper(t *testing.T) {
	want := map[[2]int]float64{ // {optimize, bits} → mW/bit
		{0, 64}: 0.26, {0, 128}: 0.13, {0, 256}: 0.11, {0, 512}: 0.10,
		{1, 64}: 9.13, {1, 128}: 5.01, {1, 256}: 2.53, {1, 512}: 2.45,
	}
	for _, op := range Table3 {
		w := want[[2]int{int(op.Optimize), op.OutputBits}]
		got := op.PowerPerBit().Milliwatts()
		if math.Abs(got-w) > 0.25*w {
			t.Errorf("%v/%db: power/bit = %.3f mW, paper says %.2f", op.Optimize, op.OutputBits, got, w)
		}
	}
	// And the minimum across all rows is the energy-optimized 512-bit point.
	best := Table3[0]
	for _, op := range Table3 {
		if op.PowerPerBit() < best.PowerPerBit() {
			best = op
		}
	}
	if best.Optimize != EnergyOptimized || best.OutputBits != 512 {
		t.Errorf("best power/bit point = %v/%db, paper chooses energy-optimized/512", best.Optimize, best.OutputBits)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{DensityGb: 5, Banks: 8, OutputBits: 512, Cell: PaperCell(1)},
		{DensityGb: 4, Banks: 0, OutputBits: 512, Cell: PaperCell(1)},
		{DensityGb: 4, Banks: 8, OutputBits: 100, Cell: PaperCell(1)},
		{DensityGb: 4, Banks: 8, OutputBits: 512, Cell: PaperCell(0)},
		{DensityGb: 4, Banks: 8, OutputBits: 512, Cell: PaperCell(4)},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
	}
}

// Writes must be much slower than reads (the paper's central premise:
// "similar read delay but much higher write delay").
func TestWriteMuchSlowerThanRead(t *testing.T) {
	c := mustChip(t, DefaultConfig())
	rd, wr := c.Read(true), c.Write(true)
	if wr.Latency < rd.Latency.Times(4) {
		t.Errorf("write latency %v not ≫ read latency %v", wr.Latency, rd.Latency)
	}
	if wr.Energy <= rd.Energy {
		t.Errorf("write energy %v not above read energy %v", wr.Energy, rd.Energy)
	}
	// Set pulse dominates write latency.
	if wr.Latency < units.Time(10*float64(units.Nanosecond)) {
		t.Errorf("write latency %v below the 10ns set pulse", wr.Latency)
	}
}

func TestRandomCostsExceedSequential(t *testing.T) {
	c := mustChip(t, DefaultConfig())
	if c.Read(false).Latency <= c.Read(true).Latency {
		t.Error("random read not slower than sequential")
	}
	if c.Read(false).Energy <= c.Read(true).Energy {
		t.Error("random read not costlier than sequential")
	}
	if c.Write(false).Latency <= c.Write(true).Latency {
		t.Error("random write not slower than sequential")
	}
}

// Fig. 13: SLC beats MLC on energy per read despite lower density.
func TestMLCReadEnergyOrdering(t *testing.T) {
	var prev units.Energy
	for bits := 1; bits <= 3; bits++ {
		cfg := DefaultConfig()
		cfg.Cell = PaperCell(bits)
		c := mustChip(t, cfg)
		e := c.Read(true).Energy
		if bits > 1 && e <= prev {
			t.Errorf("%d-bit cell read energy %v not above %d-bit %v", bits, e, bits-1, prev)
		}
		prev = e
	}
}

func TestMLCWriteCostOrdering(t *testing.T) {
	var prevE units.Energy
	var prevT units.Time
	for bits := 1; bits <= 3; bits++ {
		cfg := DefaultConfig()
		cfg.Cell = PaperCell(bits)
		c := mustChip(t, cfg)
		w := c.Write(true)
		if bits > 1 && (w.Energy <= prevE || w.Latency <= prevT) {
			t.Errorf("%d-bit write cost %v not above %d-bit (%v,%v)", bits, w, bits-1, prevT, prevE)
		}
		prevE, prevT = w.Energy, w.Latency
	}
}

func TestDensityScaling(t *testing.T) {
	var prevBg units.Power
	var prevCap int64
	for _, d := range []int{4, 8, 16} {
		cfg := DefaultConfig()
		cfg.DensityGb = d
		c := mustChip(t, cfg)
		if c.CapacityBytes() <= prevCap {
			t.Errorf("%dGb capacity %d not above previous %d", d, c.CapacityBytes(), prevCap)
		}
		if c.Background() <= prevBg {
			t.Errorf("%dGb background %v not above previous %v", d, c.Background(), prevBg)
		}
		prevBg, prevCap = c.Background(), c.CapacityBytes()
	}
	c := mustChip(t, DefaultConfig())
	if got := c.CapacityBytes(); got != 512<<20 {
		t.Errorf("4Gb capacity = %d bytes, want 512MiB", got)
	}
}

func TestBackgroundDecomposition(t *testing.T) {
	c := mustChip(t, DefaultConfig())
	want := units.Power(float64(c.BankLeakage())*float64(c.NumBanks())) + c.IOLeakage()
	if math.Abs(float64(c.Background()-want)) > 1e-9 {
		t.Errorf("Background %v != banks×leak + IO %v", c.Background(), want)
	}
	if c.NumBanks() != 8 {
		t.Errorf("NumBanks = %d, want 8", c.NumBanks())
	}
}

func TestLineBytesMatchesOutputWidth(t *testing.T) {
	for _, bits := range []int{64, 128, 256, 512} {
		cfg := DefaultConfig()
		cfg.OutputBits = bits
		c := mustChip(t, cfg)
		if got := c.LineBytes(); got != bits/8 {
			t.Errorf("LineBytes(%db) = %d, want %d", bits, got, bits/8)
		}
	}
}

func TestPaperCellConstants(t *testing.T) {
	cell := PaperCell(1)
	if cell.ReadVoltage != 0.4 || cell.SetVoltage != 0.7 {
		t.Error("cell voltages drifted from §7.1")
	}
	if cell.SetPulse != units.Time(10*float64(units.Nanosecond)) {
		t.Error("set pulse drifted from 10ns")
	}
	if cell.SetEnergy != units.Energy(0.6) {
		t.Error("set energy drifted from 0.6pJ")
	}
	if cell.OnRes != 100e3 || cell.OffRes != 10e6 {
		t.Error("cell resistances drifted")
	}
}

func TestNameIsDescriptive(t *testing.T) {
	c := mustChip(t, DefaultConfig())
	if c.Name() == "" || c.Config().DensityGb != 4 {
		t.Error("chip identity lost")
	}
	if c.Point().OutputBits != 512 {
		t.Error("operating point not retained")
	}
}

package rram

import (
	"math"
	"testing"

	"repro/internal/units"
)

func derive(t *testing.T, b BankDesign) DerivedPoint {
	t.Helper()
	dp, err := DerivePoint(Process22nm(), b, PaperCell(1))
	if err != nil {
		t.Fatal(err)
	}
	return dp
}

func within(t *testing.T, what string, got, want, tol float64) {
	t.Helper()
	if want == 0 {
		t.Fatalf("%s: zero reference", what)
	}
	if rel := math.Abs(got-want) / want; rel > tol {
		t.Errorf("%s = %.2f, want %.2f (off by %.0f%%, tolerance %.0f%%)",
			what, got, want, 100*rel, 100*tol)
	}
}

// The structural model must rederive every Table 3 operating point from
// circuit equations: energies within 12%, periods within 20%. This is
// the validation of the calibration contract (the chip model consumes
// the published points; the structure explains them).
func TestDerivePointMatchesTable3(t *testing.T) {
	for _, op := range Table3 {
		b, err := Table3Design(op.Optimize, op.OutputBits)
		if err != nil {
			t.Fatal(err)
		}
		if got := b.OutputBits(); got != op.OutputBits {
			t.Fatalf("%v/%db: design outputs %d bits", op.Optimize, op.OutputBits, got)
		}
		dp := derive(t, b)
		within(t, op.Optimize.String()+" energy", dp.ReadEnergy.Picojoules(), op.Energy.Picojoules(), 0.12)
		within(t, op.Optimize.String()+" period", dp.CyclePeriod.Picoseconds(), op.Period.Picoseconds(), 0.20)
	}
}

// The over-fetch explanation of the latency-optimized family: 64–256-bit
// outputs sense the same 256 bits, so their energies are nearly flat.
func TestLatencyOptimizedOverFetchIsFlat(t *testing.T) {
	var energies []float64
	for _, bits := range []int{64, 128, 256} {
		b, err := Table3Design(LatencyOptimized, bits)
		if err != nil {
			t.Fatal(err)
		}
		if b.SensedBits() != 256 {
			t.Fatalf("%d-bit design senses %d bits, want 256", bits, b.SensedBits())
		}
		energies = append(energies, derive(t, b).ReadEnergy.Picojoules())
	}
	if spread := (energies[2] - energies[0]) / energies[0]; spread > 0.05 {
		t.Errorf("over-fetched energies not flat: %v (spread %.1f%%)", energies, 100*spread)
	}
}

// Latency-optimized designs must be faster but leak more than
// energy-optimized ones — the reason Table 3's chosen design is the
// energy-optimized 512-bit point.
func TestDesignStyleTradeoffs(t *testing.T) {
	eo, err := Table3Design(EnergyOptimized, 512)
	if err != nil {
		t.Fatal(err)
	}
	lo, err := Table3Design(LatencyOptimized, 512)
	if err != nil {
		t.Fatal(err)
	}
	dpE, dpL := derive(t, eo), derive(t, lo)
	if dpL.CyclePeriod >= dpE.CyclePeriod {
		t.Error("latency-optimized not faster")
	}
	if dpL.ReadEnergy <= dpE.ReadEnergy {
		t.Error("latency-optimized not more energy per read")
	}
	if dpL.Leakage <= dpE.Leakage {
		t.Error("latency-optimized (more periphery) not leakier")
	}
}

// §4.1: one power gate per bank has a low area penalty.
func TestGateOverheadIsSmall(t *testing.T) {
	b, err := Table3Design(EnergyOptimized, 512)
	if err != nil {
		t.Fatal(err)
	}
	ov, err := GateOverhead(Process22nm(), b, PaperCell(1))
	if err != nil {
		t.Fatal(err)
	}
	if ov.Fraction <= 0 || ov.Fraction > 0.02 {
		t.Errorf("gate area overhead %.3f%% outside (0, 2%%]", 100*ov.Fraction)
	}
	if ov.GateAreaMM2 <= 0 || ov.BankAreaMM2 <= 0 {
		t.Error("degenerate areas")
	}
}

// §3.1: widening the per-bank output port by N× costs <1%.
func TestWiringOverheadUnderOnePercent(t *testing.T) {
	b, err := Table3Design(EnergyOptimized, 512)
	if err != nil {
		t.Fatal(err)
	}
	frac, err := WiringOverhead(Process22nm(), b, 512)
	if err != nil {
		t.Fatal(err)
	}
	if frac <= 0 || frac >= 0.01 {
		t.Errorf("wiring overhead %.3f%% outside (0, 1%%)", 100*frac)
	}
	if _, err := WiringOverhead(Process22nm(), b, -1); err == nil {
		t.Error("negative extra bits accepted")
	}
}

func TestDesignValidation(t *testing.T) {
	bad := []BankDesign{
		{Mat: MatDesign{Rows: 0, Cols: 8, SensedBits: 4}, MatRows: 1, MatCols: 1, ActiveMats: 1},
		{Mat: MatDesign{Rows: 8, Cols: 8, SensedBits: 0}, MatRows: 1, MatCols: 1, ActiveMats: 1},
		{Mat: MatDesign{Rows: 8, Cols: 8, SensedBits: 16}, MatRows: 1, MatCols: 1, ActiveMats: 1},
		{Mat: MatDesign{Rows: 8, Cols: 8, SensedBits: 4}, MatRows: 0, MatCols: 1, ActiveMats: 1},
		{Mat: MatDesign{Rows: 8, Cols: 8, SensedBits: 4}, MatRows: 1, MatCols: 1, ActiveMats: 2},
		{Mat: MatDesign{Rows: 8, Cols: 8, SensedBits: 4}, MatRows: 1, MatCols: 1, ActiveMats: 1, Output: -1},
	}
	for i, b := range bad {
		if _, err := DerivePoint(Process22nm(), b, PaperCell(1)); err == nil {
			t.Errorf("bad design %d accepted: %+v", i, b)
		}
	}
	if _, err := Table3Design(EnergyOptimized, 100); err == nil {
		t.Error("unsupported width accepted")
	}
}

func TestOutputBitsOverFetchSemantics(t *testing.T) {
	b := BankDesign{
		Mat:     MatDesign{Rows: 8, Cols: 512, SensedBits: 256},
		MatRows: 2, MatCols: 2, ActiveMats: 1, Output: 64,
	}
	if b.SensedBits() != 256 || b.OutputBits() != 64 {
		t.Errorf("over-fetch semantics wrong: sensed %d out %d", b.SensedBits(), b.OutputBits())
	}
	b.Output = 0
	if b.OutputBits() != 256 {
		t.Errorf("zero Output should pass everything sensed: %d", b.OutputBits())
	}
	b.Output = 1024 // wider than sensed: clamp to sensed
	if b.OutputBits() != 256 {
		t.Errorf("oversized Output should clamp: %d", b.OutputBits())
	}
}

// Structural monotonicity: wider outputs cost more energy; bigger mats
// (longer bitlines) develop more slowly.
func TestStructuralMonotonicity(t *testing.T) {
	var prev units.Energy
	for _, bits := range []int{64, 128, 256, 512} {
		b, err := Table3Design(EnergyOptimized, bits)
		if err != nil {
			t.Fatal(err)
		}
		dp := derive(t, b)
		if dp.ReadEnergy <= prev {
			t.Errorf("%d-bit energy %v not above previous %v", bits, dp.ReadEnergy, prev)
		}
		prev = dp.ReadEnergy
	}
	small := BankDesign{Mat: MatDesign{Rows: 128, Cols: 512, SensedBits: 64}, MatRows: 4, MatCols: 4, ActiveMats: 1}
	big := BankDesign{Mat: MatDesign{Rows: 2048, Cols: 512, SensedBits: 64}, MatRows: 4, MatCols: 4, ActiveMats: 1}
	if derive(t, small).CyclePeriod >= derive(t, big).CyclePeriod {
		t.Error("longer bitlines should develop more slowly")
	}
}

func TestCapacityAndArea(t *testing.T) {
	b, err := Table3Design(EnergyOptimized, 512)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.CapacityBits(); got != int64(1024)*1024*64 {
		t.Errorf("capacity = %d bits", got)
	}
	dp := derive(t, b)
	if dp.AreaMM2 <= 0 || dp.AreaMM2 > 10 {
		t.Errorf("bank area %.2f mm² implausible", dp.AreaMM2)
	}
	if dp.Leakage <= 0 {
		t.Error("non-positive leakage")
	}
}

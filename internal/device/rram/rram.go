// Package rram models the ReRAM main-memory chip HyVE uses as edge
// memory: a DDR-style chip of banks, each bank a grid of crossbar mats
// (paper Fig. 3), characterized the way the authors characterized it —
// through NVSim operating points under the 22 nm process with the cell
// parameters published in §7.1 (0.4 V read / 0.7 V set, 0.16 µW read
// power, 10 ns set pulse, 0.6 pJ set energy, 100 kΩ/10 MΩ on/off).
//
// The bank read operating points are calibrated to the paper's Table 3
// (energy- vs latency-optimized, 64–512-bit output); writes derive from
// the set-pulse cell parameters; multi-level cells follow the parallel
// sensing scheme of Xu et al. (DAC'13), the reference the paper uses for
// its MLC modification of NVSim.
package rram

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/units"
)

// OptTarget selects which NVSim optimization objective produced the bank
// design (Table 3 compares both).
type OptTarget int

// Optimization targets.
const (
	EnergyOptimized OptTarget = iota
	LatencyOptimized
)

func (t OptTarget) String() string {
	switch t {
	case EnergyOptimized:
		return "energy-optimized"
	case LatencyOptimized:
		return "latency-optimized"
	default:
		return fmt.Sprintf("OptTarget(%d)", int(t))
	}
}

// CellParams are the ReRAM cell characteristics from §7.1.
type CellParams struct {
	ReadVoltage float64     // V
	SetVoltage  float64     // V
	ReadPower   units.Power // per-cell read sensing power
	SetPulse    units.Time  // duration of one set pulse
	SetEnergy   units.Energy
	OnRes       float64 // Ω at read voltage
	OffRes      float64 // Ω at read voltage
	Bits        int     // bits per cell: 1 (SLC) to 3 (MLC)
}

// PaperCell returns the published cell operating point with the given
// bits per cell.
func PaperCell(bits int) CellParams {
	return CellParams{
		ReadVoltage: 0.4,
		SetVoltage:  0.7,
		ReadPower:   units.Power(0.16 * float64(units.Microwatt)),
		SetPulse:    units.Time(10 * float64(units.Nanosecond)),
		SetEnergy:   units.Energy(0.6 * float64(units.Picojoule)),
		OnRes:       100e3,
		OffRes:      10e6,
		Bits:        bits,
	}
}

// OperatingPoint is one row of the paper's Table 3: the NVSim result for
// a bank with the given output width under the given objective. Energy
// and Period are per read operation of OutputBits bits (SLC).
type OperatingPoint struct {
	Optimize   OptTarget
	OutputBits int
	Energy     units.Energy
	Period     units.Time
}

// PowerPerBit returns mW/bit, the figure of merit Table 3 reports
// (energy ÷ period ÷ bits).
func (op OperatingPoint) PowerPerBit() units.Power {
	return units.Power(float64(op.Energy) / float64(op.Period) * 1e3 / float64(op.OutputBits))
}

// Table3 is the paper's published NVSim calibration set.
var Table3 = []OperatingPoint{
	{EnergyOptimized, 64, units.Energy(20.13), units.Time(1221)},
	{EnergyOptimized, 128, units.Energy(33.87), units.Time(1983)},
	{EnergyOptimized, 256, units.Energy(57.31), units.Time(1983)},
	{EnergyOptimized, 512, units.Energy(102.07), units.Time(1983)},
	{LatencyOptimized, 64, units.Energy(381.47), units.Time(653)},
	{LatencyOptimized, 128, units.Energy(378.57), units.Time(590)},
	{LatencyOptimized, 256, units.Energy(382.37), units.Time(590)},
	{LatencyOptimized, 512, units.Energy(660.23), units.Time(527)},
}

func lookupPoint(t OptTarget, outputBits int) (OperatingPoint, bool) {
	for _, op := range Table3 {
		if op.Optimize == t && op.OutputBits == outputBits {
			return op, true
		}
	}
	return OperatingPoint{}, false
}

// Config selects a chip design point.
type Config struct {
	// DensityGb is the chip density in gigabits: 4, 8, or 16 (Fig. 9/10).
	DensityGb int
	// Banks per chip; the paper's baseline organization mirrors
	// commodity DRAM (8 banks).
	Banks int
	// OutputBits is the bank output width: 64, 128, 256, or 512.
	OutputBits int
	// Optimize selects the NVSim objective.
	Optimize OptTarget
	// Cell is the cell design; PaperCell(1) is the paper's final choice
	// (§7.2.1: "SLC ReRAM is adopted in later evaluations").
	Cell CellParams
}

// DefaultConfig is the design the paper converges on: 4 Gb chip, 8 banks,
// 512-bit energy-optimized output, SLC cells.
func DefaultConfig() Config {
	return Config{DensityGb: 4, Banks: 8, OutputBits: 512, Optimize: EnergyOptimized, Cell: PaperCell(1)}
}

// Chip is a configured ReRAM memory chip. It implements device.Memory.
type Chip struct {
	cfg   Config
	point OperatingPoint

	readSeq, readRand   device.Cost
	writeSeq, writeRand device.Cost
	bankLeak            units.Power
	ioLeak              units.Power
}

// Random-access overheads on top of the streaming operating point: a
// random read re-drives the global decode path (address register, global
// wordline decoder, block/mat selectors of Fig. 3) instead of continuing
// within an open mat row.
const (
	randLatencyFactor = 3.0
	randEnergyFactor  = 1.3
	// End-to-end array read latency (sensing a high-resistance cell
	// through the full decode path). Matches the ReRAM read latency
	// GraphR publishes (29.31 ns), which the paper reuses in §7.4.3.
	arrayReadLatencyNs = 29.31
)

// MLC multipliers per Xu et al. (DAC'13): an n-bit cell exposes 2ⁿ−1
// resistance boundaries; parallel sensing replicates reference sense
// amps (energy up, latency roughly flat), and program-and-verify write
// loops multiply both write energy and latency.
func mlcReadEnergyFactor(bits int) float64 {
	switch bits {
	case 2:
		return 1.55
	case 3:
		return 2.40
	default:
		return 1
	}
}

func mlcWriteFactor(bits int) (energy, latency float64) {
	switch bits {
	case 2:
		return 2.6, 1.7
	case 3:
		return 5.2, 2.9
	default:
		return 1, 1
	}
}

// densityScale grows peripheral wire energy/latency gently with density:
// doubling capacity lengthens global H-tree wiring by ~√2 per dimension.
func densityScale(densityGb int) float64 {
	switch densityGb {
	case 4:
		return 1
	case 8:
		return 1.19 // 2^0.25
	case 16:
		return 1.41 // 2^0.5
	default:
		return 1
	}
}

// New validates cfg and derives the chip's per-access costs.
func New(cfg Config) (*Chip, error) {
	if cfg.Banks <= 0 {
		return nil, fmt.Errorf("rram: non-positive bank count %d", cfg.Banks)
	}
	switch cfg.DensityGb {
	case 4, 8, 16:
	default:
		return nil, fmt.Errorf("rram: unsupported density %d Gb (want 4, 8, or 16)", cfg.DensityGb)
	}
	if cfg.Cell.Bits < 1 || cfg.Cell.Bits > 3 {
		return nil, fmt.Errorf("rram: unsupported cell bits %d (want 1–3)", cfg.Cell.Bits)
	}
	point, ok := lookupPoint(cfg.Optimize, cfg.OutputBits)
	if !ok {
		return nil, fmt.Errorf("rram: no NVSim operating point for %v/%d-bit output", cfg.Optimize, cfg.OutputBits)
	}
	c := &Chip{cfg: cfg, point: point}
	ds := densityScale(cfg.DensityGb)

	// Reads: streaming issues one OutputBits line per bank period; the
	// fill latency of a random access is the full array read path.
	readEnergy := point.Energy.Times(ds * mlcReadEnergyFactor(cfg.Cell.Bits))
	c.readSeq = device.Cost{Latency: point.Period.Times(ds), Energy: readEnergy}
	c.readRand = device.Cost{
		Latency: units.MaxTime(point.Period.Times(ds*randLatencyFactor), units.Time(arrayReadLatencyNs*float64(units.Nanosecond))),
		Energy:  readEnergy.Times(randEnergyFactor),
	}

	// Writes: every cell in the line pays the set energy; the line write
	// is limited by the set pulse. Peripheral (decode + drivers) costs
	// mirror the read peripheral share.
	wEnergyF, wLatencyF := mlcWriteFactor(cfg.Cell.Bits)
	cells := float64(cfg.OutputBits) / float64(cfg.Cell.Bits)
	cellWrite := cfg.Cell.SetEnergy.Times(cells * wEnergyF)
	peripheral := point.Energy.Times(0.8 * ds) // drive/decode share of a read op
	writeLatency := units.Time(float64(cfg.Cell.SetPulse)*wLatencyF*ds) + point.Period.Times(ds)
	c.writeSeq = device.Cost{Latency: writeLatency, Energy: cellWrite + peripheral}
	c.writeRand = device.Cost{
		Latency: writeLatency + point.Period.Times(ds*(randLatencyFactor-1)),
		Energy:  (cellWrite + peripheral).Times(randEnergyFactor),
	}

	// Leakage: non-volatile cells leak nothing; what remains is the
	// CMOS periphery per bank plus shared I/O. These are the quantities
	// the bank-level power-gating scheme (§4.1) eliminates.
	c.bankLeak = units.Power(2.0 * float64(units.Milliwatt) * ds)
	c.ioLeak = units.Power(4 * float64(units.Milliwatt) * ds)
	return c, nil
}

// Name implements device.Memory.
func (c *Chip) Name() string {
	return fmt.Sprintf("ReRAM-%dGb-%db-%s-%dbit", c.cfg.DensityGb, c.cfg.OutputBits, c.cfg.Optimize, c.cfg.Cell.Bits)
}

// LineBytes implements device.Memory.
func (c *Chip) LineBytes() int { return c.cfg.OutputBits / 8 }

// CapacityBytes implements device.Memory.
func (c *Chip) CapacityBytes() int64 { return int64(c.cfg.DensityGb) << 30 / 8 }

// Read implements device.Memory.
func (c *Chip) Read(sequential bool) device.Cost {
	if sequential {
		return c.readSeq
	}
	return c.readRand
}

// Write implements device.Memory.
func (c *Chip) Write(sequential bool) device.Cost {
	if sequential {
		return c.writeSeq
	}
	return c.writeRand
}

// Background implements device.Memory: all banks plus I/O awake
// (the no-power-gating baseline).
func (c *Chip) Background() units.Power {
	return units.Power(float64(c.bankLeak)*float64(c.cfg.Banks)) + c.ioLeak
}

// NumBanks returns the banks per chip.
func (c *Chip) NumBanks() int { return c.cfg.Banks }

// BankLeakage returns the background power of one awake bank; the BPG
// controller integrates this only over awake windows.
func (c *Chip) BankLeakage() units.Power { return c.bankLeak }

// IOLeakage returns the always-on shared I/O power (not gateable: the
// chip interface must answer the controller).
func (c *Chip) IOLeakage() units.Power { return c.ioLeak }

// Config returns the chip's configuration.
func (c *Chip) Config() Config { return c.cfg }

// Point returns the calibrated NVSim operating point in use.
func (c *Chip) Point() OperatingPoint { return c.point }

var _ device.Memory = (*Chip)(nil)

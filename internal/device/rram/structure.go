package rram

import (
	"fmt"
	"math"

	"repro/internal/units"
)

// This file is the structural half of the ReRAM model: an NVSim-style
// circuit decomposition (paper Fig. 3 — mats with local wordline
// decoders and bitline muxes, a bank as an M×N mat grid behind a global
// decoder and an H-tree, I/O gating on top) from which read energy,
// cycle time, leakage, and area are *derived* rather than tabulated.
//
// The chip model in rram.go uses the paper's published Table 3 operating
// points directly — they are the calibration contract. The structural
// model here serves three purposes:
//
//  1. it validates that contract: DerivePoint reproduces every Table 3
//     row from first principles within a modest tolerance (tested);
//  2. it prices what the paper asserts qualitatively — the <1% wiring
//     overhead of widening bank outputs (§3.1), the "low area penalty"
//     of one power gate per bank (§4.1);
//  3. it extrapolates to design points outside the published table
//     (wider outputs, other mat aspect ratios) for the design-space
//     experiments.

// Process holds the 22 nm technology constants the circuit equations
// consume. Values are standard planar-CMOS/ReRAM numbers at the scale
// NVSim uses; the handful marked "fitted" are calibrated once against
// the paper's Table 3 (see TestDerivePointMatchesTable3) and then held
// fixed for every derived design point.
type Process struct {
	// FeatureNm is the half-pitch (22 for the paper's setup).
	FeatureNm float64
	// VDD is the peripheral logic supply.
	VDD float64
	// WireCapPFPerMM and WireResOhmPerMM characterize intermediate-layer
	// interconnect.
	WireCapPFPerMM  float64
	WireResOhmPerMM float64
	// CellAreaF2 is the 1T1R cell area in F².
	CellAreaF2 float64
	// CellCapFF is the per-cell bitline loading.
	CellCapFF float64
	// SenseAmpEnergyPJ and SenseAmpLatencyPS price one current-mode
	// sense amplifier evaluation (fitted).
	SenseAmpEnergyPJ  float64
	SenseAmpLatencyPS float64
	// SenseAmpAreaF2 is the layout footprint of one sense amp.
	SenseAmpAreaF2 float64
	// GlobalDecodePJPerBit prices one global address bit's switching
	// through the bank's address register and global wordline decoder
	// (fitted).
	GlobalDecodePJPerBit float64
	// LocalDecodePJPerBit prices one locally decoded row-address bit in
	// a mat's wordline decoder (fitted).
	LocalDecodePJPerBit float64
	// FastSenseEnergyPJ and FastSenseLatencyPS price the large-swing
	// sense amplifier a latency-optimized design substitutes: an order
	// of magnitude faster settling bought with ~20× the evaluation
	// energy (fitted).
	FastSenseEnergyPJ  float64
	FastSenseLatencyPS float64
	// GlobalMuxStagePS is the pipeline stage the shared global bitline
	// mux adds when more than one mat drives a *shared* output bus
	// concurrently (fitted to the energy-optimized multi-mat period).
	GlobalMuxStagePS float64
	// GateDelayPS is the FO4-ish delay of one decode stage.
	GateDelayPS float64
	// LeakNWPerSenseAmp and LeakNWPerDecoderBit set peripheral leakage.
	LeakNWPerSenseAmp   float64
	LeakNWPerDecoderBit float64
}

// Process22nm returns the calibration process.
func Process22nm() Process {
	return Process{
		FeatureNm:            22,
		VDD:                  0.9,
		WireCapPFPerMM:       0.15,
		WireResOhmPerMM:      2500,
		CellAreaF2:           16, // 4F × 4F 1T1R
		CellCapFF:            0.18,
		SenseAmpEnergyPJ:     0.06,
		SenseAmpLatencyPS:    420,
		SenseAmpAreaF2:       9000,
		GlobalDecodePJPerBit: 0.31,
		LocalDecodePJPerBit:  0.145,
		FastSenseEnergyPJ:    1.35,
		FastSenseLatencyPS:   300,
		GlobalMuxStagePS:     1983,
		GateDelayPS:          8,
		LeakNWPerSenseAmp:    180,
		LeakNWPerDecoderBit:  45,
	}
}

// MatDesign is one crossbar mat with its local periphery (Fig. 3 right).
type MatDesign struct {
	Rows, Cols int
	// SensedBits is how many bits one mat *senses* per access (the local
	// bitline mux selects SensedBits of Cols columns). A latency-
	// optimized design over-fetches: it senses more bits than the bank
	// outputs and discards the rest at the global mux, trading energy
	// for a short, wide, fast array access.
	SensedBits int
}

// Validate checks mat geometry.
func (m MatDesign) Validate() error {
	if m.Rows <= 0 || m.Cols <= 0 {
		return fmt.Errorf("rram: non-positive mat geometry %dx%d", m.Rows, m.Cols)
	}
	if m.SensedBits <= 0 || m.SensedBits > m.Cols {
		return fmt.Errorf("rram: sensed bits %d out of (0,%d]", m.SensedBits, m.Cols)
	}
	return nil
}

// BankDesign is a grid of mats behind a global decoder and H-tree
// (Fig. 3 left).
type BankDesign struct {
	Mat MatDesign
	// MatRows×MatCols is the mat grid.
	MatRows, MatCols int
	// ActiveMats is the sub-bank interleave width: how many mats fire
	// per access. ActiveMats × Mat.SensedBits = sensed bits.
	ActiveMats int
	// Output restricts the bank output width below the sensed width
	// (over-fetch). Zero outputs everything sensed.
	Output int
	// FastSense selects the latency-optimized sense amplifier.
	FastSense bool
	// SharedGlobalMux marks designs whose active mats share one global
	// output bus (the energy-optimized organization): ganging mats then
	// costs a fixed arbitration stage. Latency-optimized designs
	// replicate the global routing instead.
	SharedGlobalMux bool
}

// Validate checks bank geometry.
func (b BankDesign) Validate() error {
	if err := b.Mat.Validate(); err != nil {
		return err
	}
	if b.MatRows <= 0 || b.MatCols <= 0 {
		return fmt.Errorf("rram: non-positive mat grid %dx%d", b.MatRows, b.MatCols)
	}
	if b.ActiveMats <= 0 || b.ActiveMats > b.MatRows*b.MatCols {
		return fmt.Errorf("rram: active mats %d out of (0,%d]", b.ActiveMats, b.MatRows*b.MatCols)
	}
	if b.Output < 0 {
		return fmt.Errorf("rram: negative output width %d", b.Output)
	}
	return nil
}

// BankDesign's OutputBits may be narrower than the sensed width when the
// design over-fetches; zero means "everything sensed is output".

// SensedBits is how many bits the bank senses per access.
func (b BankDesign) SensedBits() int { return b.ActiveMats * b.Mat.SensedBits }

// OutputBits is the bank's access width: the over-fetch mux discards
// sensed bits beyond Output, when Output is set.
func (b BankDesign) OutputBits() int {
	if b.Output > 0 && b.Output < b.SensedBits() {
		return b.Output
	}
	return b.SensedBits()
}

// CapacityBits is the bank's storage (SLC).
func (b BankDesign) CapacityBits() int64 {
	return int64(b.Mat.Rows) * int64(b.Mat.Cols) * int64(b.MatRows) * int64(b.MatCols)
}

// matDimensionsMM returns one mat's width and height in millimeters.
func (b BankDesign) matDimensionsMM(p Process) (w, h float64) {
	f := p.FeatureNm * 1e-6 // nm → mm
	cell := math.Sqrt(p.CellAreaF2) * f
	return float64(b.Mat.Cols) * cell, float64(b.Mat.Rows) * cell
}

// htreeMM estimates the global routing distance from the bank edge to
// the average mat: half the bank perimeter walk.
func (b BankDesign) htreeMM(p Process) float64 {
	w, h := b.matDimensionsMM(p)
	return (w*float64(b.MatCols) + h*float64(b.MatRows)) / 2
}

// DerivedPoint is the structural model's output for one bank design.
type DerivedPoint struct {
	ReadEnergy  units.Energy
	CyclePeriod units.Time
	Leakage     units.Power
	AreaMM2     float64
}

// DerivePoint evaluates the circuit equations for a bank design and cell.
func DerivePoint(p Process, b BankDesign, cell CellParams) (DerivedPoint, error) {
	if err := b.Validate(); err != nil {
		return DerivedPoint{}, err
	}
	matW, matH := b.matDimensionsMM(p)
	htree := b.htreeMM(p)
	sensed := float64(b.SensedBits())
	out := float64(b.OutputBits())
	active := float64(b.ActiveMats)

	// --- Energy per read.
	// Global decode: the bank-level address path switches once per
	// access regardless of how many mats fire.
	addrBits := math.Log2(float64(b.CapacityBits()))
	globalDecode := p.GlobalDecodePJPerBit * addrBits
	// Per active mat: local wordline decode plus the wordline swing.
	localAddr := math.Log2(float64(b.Mat.Rows))
	wlCap := p.WireCapPFPerMM * matW
	perMat := p.LocalDecodePJPerBit*localAddr + wlCap*p.VDD*p.VDD
	// Per sensed bit: bitline swing at read voltage, cell read current
	// over the sense window, and the sense amplifier. Over-fetched bits
	// pay all of this even though they are discarded.
	senseE, senseT := p.SenseAmpEnergyPJ, p.SenseAmpLatencyPS
	if b.FastSense {
		senseE, senseT = p.FastSenseEnergyPJ, p.FastSenseLatencyPS
	}
	blCap := float64(b.Mat.Rows)*p.CellCapFF*1e-3 + p.WireCapPFPerMM*matH
	perSensed := blCap*cell.ReadVoltage*cell.ReadVoltage +
		float64(cell.ReadPower)*senseT*1e-3 +
		senseE
	// Per output bit: the H-tree traversal to the I/O gating.
	perOut := p.WireCapPFPerMM * htree * p.VDD * p.VDD
	energy := units.Energy(globalDecode + perMat*active + perSensed*sensed + perOut*out)

	// --- Cycle period: decode → wordline RC → bitline development →
	// sense, pipelined against the global-mux/H-tree stage, so the
	// period is the slowest stage rather than the sum (NVSim's reported
	// period behaves the same way). Small mats are fast (short RC);
	// ganging several mats onto the shared global bitline mux costs a
	// fixed arbitration stage.
	decodeT := p.GateDelayPS * addrBits
	wlRC := 0.5 * (p.WireResOhmPerMM * matW) * (p.WireCapPFPerMM * matW) // Elmore, Ω·pF = ps
	// Bitline development: the cell resistance charges the bitline to a
	// sensable swing (a fraction of full rail through Roff).
	develop := cell.OffRes * blCap * 0.00025 // Ω·pF = ps
	array := decodeT + wlRC + develop + senseT
	period := array
	if b.SharedGlobalMux && b.ActiveMats > 1 {
		period = math.Max(period, p.GlobalMuxStagePS)
	}
	cycle := units.Time(period)

	// --- Leakage: sense amps and decoders of the whole bank.
	totalAmps := float64(b.MatRows*b.MatCols) * float64(b.Mat.SensedBits)
	_ = out
	leakNW := totalAmps*p.LeakNWPerSenseAmp + addrBits*float64(b.MatRows*b.MatCols)*p.LeakNWPerDecoderBit
	leak := units.Power(leakNW * float64(units.Nanowatt))

	// --- Area: cells plus periphery.
	f2 := p.FeatureNm * p.FeatureNm * 1e-12 // F² in mm²... (nm² → mm²)
	cellsArea := float64(b.CapacityBits()) * p.CellAreaF2 * f2
	periArea := (totalAmps*p.SenseAmpAreaF2 + addrBits*8000*float64(b.MatRows*b.MatCols)) * f2
	area := cellsArea + periArea

	return DerivedPoint{ReadEnergy: energy, CyclePeriod: cycle, Leakage: leak, AreaMM2: area}, nil
}

// Table3Design returns the bank design that NVSim's optimizer would pick
// for the given objective and output width — reconstructed so DerivePoint
// lands on the published Table 3 numbers. Energy-optimized banks use
// large mats (long, slow, efficient bitlines) with exactly enough mats
// active to cover the output; latency-optimized banks cut the mats small
// and replicate periphery.
func Table3Design(t OptTarget, outputBits int) (BankDesign, error) {
	switch outputBits {
	case 64, 128, 256, 512:
	default:
		return BankDesign{}, fmt.Errorf("rram: no Table 3 design for %d-bit output", outputBits)
	}
	if t == EnergyOptimized {
		// Large, slow mats; exactly enough of them fire to cover the
		// output, nothing over-fetched.
		return BankDesign{
			Mat:             MatDesign{Rows: 1024, Cols: 1024, SensedBits: 64},
			MatRows:         8,
			MatCols:         8,
			ActiveMats:      outputBits / 64,
			SharedGlobalMux: true,
		}, nil
	}
	// Small, fast mats sensing full 256-bit rows; narrow outputs discard
	// the over-fetch at the mux (hence the flat ~380 pJ across 64–256-bit
	// rows of Table 3), and the 512-bit point doubles the sensing.
	active := 1
	if outputBits > 256 {
		active = 2
	}
	return BankDesign{
		Mat:        MatDesign{Rows: 128, Cols: 512, SensedBits: 256},
		MatRows:    16,
		MatCols:    16,
		ActiveMats: active,
		Output:     outputBits,
		FastSense:  true,
	}, nil
}

// PowerGateOverhead prices §4.1's claim that one header/footer gate per
// bank costs little area: the gate is sized to carry the bank's peak
// read current, and its area is compared against the bank itself.
type PowerGateOverhead struct {
	GateAreaMM2 float64
	BankAreaMM2 float64
	Fraction    float64
}

// GateOverhead computes the power-gate area overhead for a bank design.
func GateOverhead(p Process, b BankDesign, cell CellParams) (PowerGateOverhead, error) {
	dp, err := DerivePoint(p, b, cell)
	if err != nil {
		return PowerGateOverhead{}, err
	}
	// Peak current: read energy over a period at VDD.
	peakMA := float64(dp.ReadEnergy) / float64(dp.CyclePeriod) / p.VDD * 1e3 // pJ/ps/V → mA
	// Sleep-transistor sizing: ~1 mm² per ~50 A at 22 nm scales down to
	// ~0.02 mm²/A; a bank draws milliamps.
	gateArea := peakMA * 1e-3 * 0.02
	frac := gateArea / (dp.AreaMM2 + gateArea)
	return PowerGateOverhead{GateAreaMM2: gateArea, BankAreaMM2: dp.AreaMM2, Fraction: frac}, nil
}

// WiringOverhead prices §3.1's claim that widening the per-bank output
// port (to keep bandwidth without bank interleaving) costs <1%: the
// extra global wires' area against the bank area.
func WiringOverhead(p Process, b BankDesign, extraBits int) (float64, error) {
	dp, err := DerivePoint(p, b, PaperCell(1))
	if err != nil {
		return 0, err
	}
	if extraBits < 0 {
		return 0, fmt.Errorf("rram: negative extra bits %d", extraBits)
	}
	// Output wires run at 2F pitch along the H-tree trunk (a quarter of
	// the perimeter walk: they fan out from the I/O edge).
	wirePitchMM := 2 * p.FeatureNm * 1e-6
	wireArea := float64(extraBits) * wirePitchMM * b.htreeMM(p) / 4
	return wireArea / (dp.AreaMM2 + wireArea), nil
}

// Package dram models the DDR4 SDRAM the paper uses for its conventional
// baselines and for HyVE's off-chip vertex memory. Parameters follow the
// paper's setup (§7.1): "generated using Micron System Power Calculators,
// with a default DDR4 SDRAM configuration (e.g., Speed Grade is -093)",
// i.e. DDR4-2133. Energy is computed with the standard Micron IDD
// arithmetic over datasheet current values; timing from the -093 grade.
//
// Like the paper ("for a fair comparison … we set the same output width
// for both DRAMs and ReRAMs"), the device is modeled at the same 512-bit
// line granularity as the ReRAM edge memory.
package dram

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/units"
)

// IDD holds the datasheet current values (mA) the Micron power
// calculator consumes. Defaults are representative DDR4 x8 values.
type IDD struct {
	IDD0  float64 // activate-precharge average
	IDD2N float64 // precharge standby
	IDD3N float64 // active standby
	IDD4R float64 // burst read
	IDD4W float64 // burst write
	IDD5B float64 // burst refresh
}

// Config selects a DDR4 device design point.
type Config struct {
	// DensityGb is the device density in gigabits: 4, 8, or 16.
	DensityGb int
	// DataRateMTs is the transfer rate; 2133 corresponds to the -093
	// speed grade the paper uses.
	DataRateMTs int
	// VDD is the supply voltage (1.2 V for DDR4).
	VDD float64
	// Currents are the datasheet IDD values.
	Currents IDD
	// RowBytes is the page (row buffer) size.
	RowBytes int
}

// DefaultConfig returns the paper's DDR4-2133 (-093) setup at 4 Gb.
func DefaultConfig() Config {
	return Config{
		DensityGb:   4,
		DataRateMTs: 2133,
		VDD:         1.2,
		Currents: IDD{
			IDD0:  58,
			IDD2N: 34,
			IDD3N: 44,
			IDD4R: 140,
			IDD4W: 150,
			IDD5B: 190,
		},
		RowBytes: 8192,
	}
}

// Chip is a configured DDR4 device (modeled at rank granularity, 512-bit
// line). It implements device.Memory.
type Chip struct {
	cfg Config

	readSeq, readRand   device.Cost
	writeSeq, writeRand device.Cost
	background          units.Power
}

// lineBytes is the modeled transfer granularity — matched to the ReRAM
// edge memory's 512-bit output per the paper's fair-comparison rule.
const lineBytes = 64

// New validates cfg and derives per-access costs via the Micron IDD
// arithmetic.
func New(cfg Config) (*Chip, error) {
	switch cfg.DensityGb {
	case 4, 8, 16:
	default:
		return nil, fmt.Errorf("dram: unsupported density %d Gb (want 4, 8, or 16)", cfg.DensityGb)
	}
	if cfg.DataRateMTs <= 0 {
		return nil, fmt.Errorf("dram: non-positive data rate %d", cfg.DataRateMTs)
	}
	if cfg.VDD <= 0 {
		return nil, fmt.Errorf("dram: non-positive VDD %v", cfg.VDD)
	}
	if cfg.RowBytes <= 0 {
		return nil, fmt.Errorf("dram: non-positive row size %d", cfg.RowBytes)
	}
	c := &Chip{cfg: cfg}

	tCK := units.Time(2.0 / float64(cfg.DataRateMTs) * 1e6 * float64(units.Picosecond)) // 2 ns·MT/s / rate
	// -093 grade timing (ns): CL=tRCD=tRP=14.06, tRAS=33, tRC=47.06.
	tRCD := units.Time(15 * float64(tCK))
	tCL := tRCD
	tRP := tRCD
	tRAS := units.Time(35 * float64(tCK))
	tRC := tRAS + tRP
	burst := tCK.Times(4) // BL8 on a double data rate bus

	mAToPJ := func(mA float64, t units.Time) units.Energy {
		// I(mA) × V × t(ps) → pJ: mA·V = mW = pJ/ns.
		return units.Power(mA * cfg.VDD).Over(t)
	}

	// Larger devices burn slightly more core energy per access (longer
	// global wires) and much more background/refresh (more rows).
	ds := map[int]float64{4: 1, 8: 1.19, 16: 1.41}[cfg.DensityGb]
	bg := map[int]float64{4: 1, 8: 1.45, 16: 2.1}[cfg.DensityGb]

	idd := cfg.Currents
	// Activation + precharge energy of one row (Micron formula).
	eAct := mAToPJ(idd.IDD0, tRC) - mAToPJ(idd.IDD3N, tRAS) - mAToPJ(idd.IDD2N, tRP)
	// Read/write burst energy above standby.
	eRd := mAToPJ(idd.IDD4R-idd.IDD3N, burst).Times(ds)
	eWr := mAToPJ(idd.IDD4W-idd.IDD3N, burst).Times(ds)

	linesPerRow := float64(cfg.RowBytes / lineBytes)
	// Sequential: open-page streaming; the row activation amortizes over
	// the whole row, and the interface issues one line per core period.
	seqPeriod := tCK.Times(1.6)
	c.readSeq = device.Cost{Latency: seqPeriod, Energy: eRd + eAct.Times(ds/linesPerRow)}
	c.writeSeq = device.Cost{Latency: seqPeriod, Energy: eWr + eAct.Times(ds/linesPerRow)}
	// Random: every access pays the closed-page activate→access path.
	c.readRand = device.Cost{Latency: tRCD + tCL + burst, Energy: eRd + eAct.Times(ds)}
	c.writeRand = device.Cost{Latency: tRCD + tCL + burst, Energy: eWr + eAct.Times(ds)}

	// Background: active standby plus distributed refresh
	// (8192 REFs per 64 ms window at tRFC).
	standby := units.Power(idd.IDD3N * cfg.VDD * float64(units.Milliwatt))
	tRFC := units.Time(350 * float64(units.Nanosecond))
	refreshDuty := 8192 * tRFC.Seconds() / 64e-3
	refresh := units.Power((idd.IDD5B - idd.IDD3N) * cfg.VDD * refreshDuty * float64(units.Milliwatt))
	c.background = units.Power((float64(standby) + float64(refresh)) * bg)
	return c, nil
}

// Name implements device.Memory.
func (c *Chip) Name() string {
	return fmt.Sprintf("DDR4-%d-%dGb", c.cfg.DataRateMTs, c.cfg.DensityGb)
}

// LineBytes implements device.Memory.
func (c *Chip) LineBytes() int { return lineBytes }

// CapacityBytes implements device.Memory.
func (c *Chip) CapacityBytes() int64 { return int64(c.cfg.DensityGb) << 30 / 8 }

// Read implements device.Memory.
func (c *Chip) Read(sequential bool) device.Cost {
	if sequential {
		return c.readSeq
	}
	return c.readRand
}

// Write implements device.Memory.
func (c *Chip) Write(sequential bool) device.Cost {
	if sequential {
		return c.writeSeq
	}
	return c.writeRand
}

// Background implements device.Memory.
func (c *Chip) Background() units.Power { return c.background }

// Config returns the device configuration.
func (c *Chip) Config() Config { return c.cfg }

var _ device.Memory = (*Chip)(nil)

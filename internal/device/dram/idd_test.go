package dram

import (
	"math"
	"testing"

	"repro/internal/units"
)

// Hand-check the Micron IDD arithmetic at DDR4-2133 defaults: the model
// must equal the spreadsheet formulas computed independently here.
func TestIDDArithmeticByHand(t *testing.T) {
	cfg := DefaultConfig()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tCK := 2.0 / 2133.0 * 1e3 // ns
	burst := 4 * tCK
	tRCD := 15 * tCK
	tRAS := 35 * tCK
	tRP := tRCD
	tRC := tRAS + tRP

	// E = I(mA) × V × t(ns) → pJ.
	eAct := cfg.Currents.IDD0*1.2*tRC - cfg.Currents.IDD3N*1.2*tRAS - cfg.Currents.IDD2N*1.2*tRP
	eRd := (cfg.Currents.IDD4R - cfg.Currents.IDD3N) * 1.2 * burst
	linesPerRow := float64(cfg.RowBytes / 64)

	wantSeq := eRd + eAct/linesPerRow
	if got := c.Read(true).Energy.Picojoules(); math.Abs(got-wantSeq) > 0.01*wantSeq {
		t.Errorf("seq read energy = %.2f pJ, hand calc %.2f", got, wantSeq)
	}
	wantRand := eRd + eAct
	if got := c.Read(false).Energy.Picojoules(); math.Abs(got-wantRand) > 0.01*wantRand {
		t.Errorf("rand read energy = %.2f pJ, hand calc %.2f", got, wantRand)
	}
	// Random latency = tRCD + tCL + burst.
	wantLat := (tRCD + tRCD + burst) * 1e3 // ps
	if got := c.Read(false).Latency.Picoseconds(); math.Abs(got-wantLat) > 1 {
		t.Errorf("rand read latency = %.0f ps, hand calc %.0f", got, wantLat)
	}
	// Background = IDD3N standby + refresh duty share of (IDD5B−IDD3N).
	refreshDuty := 8192 * 350e-9 / 64e-3
	wantBg := cfg.Currents.IDD3N*1.2 + (cfg.Currents.IDD5B-cfg.Currents.IDD3N)*1.2*refreshDuty
	if got := c.Background().Milliwatts(); math.Abs(got-wantBg) > 0.01*wantBg {
		t.Errorf("background = %.2f mW, hand calc %.2f", got, wantBg)
	}
	_ = units.Time(0)
}

// The activation-energy formula must stay positive for sane datasheets
// (IDD0 above the weighted standby currents).
func TestActivationEnergyPositive(t *testing.T) {
	c, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	act := c.Read(false).Energy - c.Read(true).Energy
	if act <= 0 {
		t.Errorf("activation premium %v not positive", act)
	}
}

package dram

import (
	"testing"

	"repro/internal/units"
)

func mustChip(t *testing.T, cfg Config) *Chip {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

func TestConfigValidation(t *testing.T) {
	bad := DefaultConfig()
	bad.DensityGb = 3
	if _, err := New(bad); err == nil {
		t.Error("bad density accepted")
	}
	bad = DefaultConfig()
	bad.DataRateMTs = 0
	if _, err := New(bad); err == nil {
		t.Error("zero data rate accepted")
	}
	bad = DefaultConfig()
	bad.VDD = 0
	if _, err := New(bad); err == nil {
		t.Error("zero VDD accepted")
	}
	bad = DefaultConfig()
	bad.RowBytes = 0
	if _, err := New(bad); err == nil {
		t.Error("zero row size accepted")
	}
}

func TestSequentialBeatsRandom(t *testing.T) {
	c := mustChip(t, DefaultConfig())
	if c.Read(true).Latency >= c.Read(false).Latency {
		t.Error("sequential read not faster than random")
	}
	if c.Read(true).Energy >= c.Read(false).Energy {
		t.Error("sequential read not cheaper than random")
	}
	if c.Write(true).Latency >= c.Write(false).Latency {
		t.Error("sequential write not faster than random")
	}
}

// Random access pays a full activate: latency ~tRCD+tCL+burst ≈ 32ns at
// DDR4-2133, an order of magnitude above the streaming interval.
func TestRandomLatencyIsActivatePath(t *testing.T) {
	c := mustChip(t, DefaultConfig())
	lat := c.Read(false).Latency
	if lat < 25*units.Nanosecond || lat > 40*units.Nanosecond {
		t.Errorf("random read latency %v outside the DDR4-2133 activate window", lat)
	}
	if seq := c.Read(true).Latency; seq > 3*units.Nanosecond {
		t.Errorf("sequential line interval %v too slow for a 2133 MT/s stream", seq)
	}
}

func TestBackgroundIncludesRefreshAndScalesWithDensity(t *testing.T) {
	var prev units.Power
	for _, d := range []int{4, 8, 16} {
		cfg := DefaultConfig()
		cfg.DensityGb = d
		c := mustChip(t, cfg)
		if c.Background() <= prev {
			t.Errorf("%dGb background %v not above previous %v", d, c.Background(), prev)
		}
		prev = c.Background()
	}
	// Background must exceed bare standby (refresh adds on top).
	cfg := DefaultConfig()
	c := mustChip(t, cfg)
	standby := units.Power(cfg.Currents.IDD3N * cfg.VDD * float64(units.Milliwatt))
	if c.Background() <= standby {
		t.Errorf("background %v does not exceed standby %v (refresh missing)", c.Background(), standby)
	}
}

func TestLineAndCapacity(t *testing.T) {
	c := mustChip(t, DefaultConfig())
	if c.LineBytes() != 64 {
		t.Errorf("LineBytes = %d, want 64 (512-bit fair-comparison width)", c.LineBytes())
	}
	if c.CapacityBytes() != 512<<20 {
		t.Errorf("4Gb capacity = %d, want 512MiB", c.CapacityBytes())
	}
	if c.Name() == "" {
		t.Error("empty name")
	}
	if c.Config().DataRateMTs != 2133 {
		t.Error("config not retained")
	}
}

func TestWriteCostsAtLeastRead(t *testing.T) {
	c := mustChip(t, DefaultConfig())
	if c.Write(true).Energy < c.Read(true).Energy {
		t.Error("IDD4W>IDD4R implies write energy ≥ read energy")
	}
}

func TestDensityRaisesAccessEnergy(t *testing.T) {
	c4 := mustChip(t, DefaultConfig())
	cfg := DefaultConfig()
	cfg.DensityGb = 16
	c16 := mustChip(t, cfg)
	if c16.Read(true).Energy <= c4.Read(true).Energy {
		t.Error("denser device should pay more wire energy per access")
	}
}

// Package device defines the common vocabulary for memory and compute
// device models — per-access cost pairs, the Memory interface consumed by
// the architecture simulators — plus the CMOS processing-unit model the
// paper uses for HyVE's edge-update logic.
//
// Concrete memory technologies live in the subpackages rram, dram, sram,
// and crossbar. Each is calibrated against the operating points the paper
// publishes (NVSim, CACTI 6.5, Micron power calculator, GraphR) so the
// simulators consume the same numbers the authors' simulator did.
package device

import (
	"fmt"

	"repro/internal/units"
)

// Cost is the (latency, energy) price of one device operation.
type Cost struct {
	Latency units.Time
	Energy  units.Energy
}

// Plus returns the element-wise sum of two costs (sequenced operations).
func (c Cost) Plus(o Cost) Cost {
	return Cost{Latency: c.Latency + o.Latency, Energy: c.Energy + o.Energy}
}

// Times scales the cost by a count of identical operations.
func (c Cost) Times(n float64) Cost {
	return Cost{Latency: c.Latency.Times(n), Energy: c.Energy.Times(n)}
}

// EDP returns the cost's energy-delay product.
func (c Cost) EDP() units.EDP { return units.EDPOf(c.Energy, c.Latency) }

func (c Cost) String() string {
	return fmt.Sprintf("{%v, %v}", c.Latency, c.Energy)
}

// Memory is the device abstraction the architecture simulators consume:
// a line-oriented storage with distinct sequential and random access
// costs and a background (leakage + refresh) power draw.
//
// Sequential accesses stream consecutive lines (row-buffer/page hits for
// DRAM, same-mat streaming for ReRAM); random accesses pay the full
// activation path. This is exactly the distinction the paper builds
// HyVE around (§3: "Edge data access is essentially a sequential read …
// vertex data access involves fine-grained random read and write").
type Memory interface {
	// Name identifies the device for reports ("ReRAM-4Gb", "DDR4-2133-8Gb" …).
	Name() string
	// LineBytes is the native transfer granularity: one access moves one line.
	LineBytes() int
	// CapacityBytes is the total storage of the configured device.
	CapacityBytes() int64
	// Read returns the cost of reading one line.
	Read(sequential bool) Cost
	// Write returns the cost of writing one line.
	Write(sequential bool) Cost
	// Background is the always-on power of the device when it is powered
	// (leakage, refresh, peripheral standby). Power gating, where
	// applicable, is modeled by the memory-system layer, not here.
	Background() units.Power
}

// Sweep computes the total cost of moving the given number of bytes
// through m: accesses are rounded up to whole lines, and each line pays
// the device's per-line cost. Latencies accumulate as pipelined streaming
// throughput (one line per line-latency), which is how both the paper's
// Eq. (1) and real burst interfaces behave for bulk transfers.
func Sweep(m Memory, bytes int64, sequential, write bool) Cost {
	if bytes <= 0 {
		return Cost{}
	}
	lines := (bytes + int64(m.LineBytes()) - 1) / int64(m.LineBytes())
	var per Cost
	if write {
		per = m.Write(sequential)
	} else {
		per = m.Read(sequential)
	}
	return per.Times(float64(lines))
}

// Lines returns how many native lines of m the given byte count spans.
func Lines(m Memory, bytes int64) int64 {
	if bytes <= 0 {
		return 0
	}
	return (bytes + int64(m.LineBytes()) - 1) / int64(m.LineBytes())
}

package crossbar

import (
	"math"
	"testing"

	"repro/internal/units"
)

func mustXbar(t *testing.T) *Crossbar {
	t.Helper()
	c, err := New(GraphRParams())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestGraphRParams(t *testing.T) {
	p := GraphRParams()
	if p.Dim != 8 || p.CellBits != 4 || p.ValueBits != 16 {
		t.Errorf("GraphR geometry drifted: %+v", p)
	}
	if p.ReadCost.Latency != units.Time(29.31*1000) {
		t.Errorf("read latency = %v, want 29.31ns", p.ReadCost.Latency)
	}
	if p.WriteCost.Energy != units.Energy(3.91*1000) {
		t.Errorf("write energy = %v, want 3.91nJ", p.WriteCost.Energy)
	}
}

func TestValidation(t *testing.T) {
	p := GraphRParams()
	p.Dim = 0
	if _, err := New(p); err == nil {
		t.Error("zero dim accepted")
	}
	p = GraphRParams()
	p.ValueBits = 10 // not a multiple of 4
	if _, err := New(p); err == nil {
		t.Error("non-multiple value bits accepted")
	}
	p = GraphRParams()
	p.CellBits = 0
	if _, err := New(p); err == nil {
		t.Error("zero cell bits accepted")
	}
}

func TestGangCount(t *testing.T) {
	c := mustXbar(t)
	if c.Gangs() != 4 {
		t.Errorf("Gangs = %d, want 4 (16-bit ops over 4-bit cells)", c.Gangs())
	}
}

func TestProgramBlockScalesWithEdges(t *testing.T) {
	c := mustXbar(t)
	one := c.ProgramBlock(1)
	ten := c.ProgramBlock(10)
	if ten.Latency != one.Latency.Times(10) || ten.Energy != one.Energy.Times(10) {
		t.Errorf("ProgramBlock not linear: 1→%v, 10→%v", one, ten)
	}
	// Energy counts all four gangs per edge.
	if one.Energy != GraphRParams().WriteCost.Energy.Times(4) {
		t.Errorf("per-edge program energy = %v, want 4×3.91nJ", one.Energy)
	}
	if got := c.ProgramBlock(0); got != c.ProgramBlock(-1) || got.Energy != 0 {
		t.Error("empty block should cost nothing")
	}
}

func TestRowWiseCostsDimTimesMVM(t *testing.T) {
	c := mustXbar(t)
	mvm := c.MVM()
	rw := c.RowWiseOps()
	if rw.Latency != mvm.Latency.Times(8) || rw.Energy != mvm.Energy.Times(8) {
		t.Errorf("row-wise %v != 8× MVM %v", rw, mvm)
	}
}

// The paper's Eq. (15) per-edge energy must agree with the block-level
// cost divided by occupancy when every block holds exactly navg edges.
func TestPerEdgeEnergyConsistentWithBlockCost(t *testing.T) {
	c := mustXbar(t)
	for _, n := range []int{1, 2, 5, 64} {
		blk := c.ProcessBlockMVM(n)
		perEdge := float64(blk.Energy) / float64(n)
		eq15 := float64(c.PerEdgeEnergyMVM(float64(n)))
		if math.Abs(perEdge-eq15) > 1e-6*eq15 {
			t.Errorf("n=%d: block/n = %v pJ, Eq.15 = %v pJ", n, perEdge, eq15)
		}
	}
	if c.PerEdgeEnergyMVM(0) != 0 || c.PerEdgeLatencyMVM(-1) != 0 {
		t.Error("degenerate navg should cost nothing")
	}
}

func TestPerEdgeLatencyEq16(t *testing.T) {
	c := mustXbar(t)
	p := GraphRParams()
	navg := 1.44 // Table 1, YT
	want := float64(p.WriteCost.Latency) + float64(p.ReadCost.Latency)/navg
	if got := float64(c.PerEdgeLatencyMVM(navg)); math.Abs(got-want) > 1e-9 {
		t.Errorf("Eq.16 latency = %v, want %v", got, want)
	}
}

// §6.4's headline: writing an edge into the crossbar costs far more than
// a CMOS op (3.91 nJ ≫ 3.7 pJ), hence E_cb_pu,mv > E_cmos_pu.
func TestCrossbarEdgeDominatesCMOS(t *testing.T) {
	c := mustXbar(t)
	const cmosOpPJ = 3.7
	perEdge := float64(c.PerEdgeEnergyMVM(2.38)) // best-case Navg from Table 1
	if perEdge < 100*cmosOpPJ {
		t.Errorf("crossbar per-edge energy %v pJ should dwarf CMOS %v pJ", perEdge, cmosOpPJ)
	}
}

func TestProcessBlockVariants(t *testing.T) {
	c := mustXbar(t)
	n := 3
	mvm := c.ProcessBlockMVM(n)
	rw := c.ProcessBlockRowWise(n)
	if rw.Latency <= mvm.Latency || rw.Energy <= mvm.Energy {
		t.Error("row-wise processing must cost more than a single MVM")
	}
	if c.ProcessBlockMVM(0).Energy != 0 || c.ProcessBlockRowWise(0).Energy != 0 {
		t.Error("empty blocks should cost nothing")
	}
}

// Package crossbar models the ReRAM crossbar used *as a compute unit* by
// GraphR (HPCA'18), the prior ReRAM graph accelerator the paper compares
// against in §6.4 and §7.4. An 8×8 crossbar holds one graph block as an
// adjacency sub-matrix; processing a block means programming (writing)
// its edges into the cells, then performing analog matrix-vector reads.
//
// Operating points are the ones the paper takes from GraphR:
// read 29.31 ns / 1.08 pJ, write 50.88 ns / 3.91 nJ per operation; 4-bit
// cells, so a 16-bit operation uses 4 crossbars ganged together (Eq. 11),
// and non-MVM algorithms drive rows one at a time, turning one logical
// MVM into 8 sequential row operations plus a CMOS op at each output
// port (Eq. 12).
package crossbar

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/units"
)

// Params describes a GraphR-style compute crossbar array.
type Params struct {
	// Dim is the crossbar dimension (GraphR: 8).
	Dim int
	// CellBits is the precision of one cell (GraphR: 4).
	CellBits int
	// ValueBits is the operand precision (GraphR: 16), so
	// ValueBits/CellBits crossbars gang together per operation.
	ValueBits int
	// ReadCost is one analog MVM read of the whole crossbar.
	ReadCost device.Cost
	// WriteCost is programming one cell (one edge).
	WriteCost device.Cost
}

// GraphRParams returns the published GraphR operating point.
func GraphRParams() Params {
	return Params{
		Dim:       8,
		CellBits:  4,
		ValueBits: 16,
		ReadCost: device.Cost{
			Latency: units.Time(29.31 * float64(units.Nanosecond)),
			Energy:  units.Energy(1.08 * float64(units.Picojoule)),
		},
		WriteCost: device.Cost{
			Latency: units.Time(50.88 * float64(units.Nanosecond)),
			Energy:  units.Energy(3.91 * float64(units.Nanojoule)),
		},
	}
}

// Crossbar is a configured compute crossbar.
type Crossbar struct {
	p     Params
	gangs int
}

// New validates p.
func New(p Params) (*Crossbar, error) {
	if p.Dim <= 0 {
		return nil, fmt.Errorf("crossbar: non-positive dimension %d", p.Dim)
	}
	if p.CellBits <= 0 || p.ValueBits <= 0 || p.ValueBits%p.CellBits != 0 {
		return nil, fmt.Errorf("crossbar: value bits %d not a multiple of cell bits %d", p.ValueBits, p.CellBits)
	}
	return &Crossbar{p: p, gangs: p.ValueBits / p.CellBits}, nil
}

// Params returns the configured parameters.
func (c *Crossbar) Params() Params { return c.p }

// Gangs returns how many physical crossbars implement one full-precision
// operation (GraphR: 4).
func (c *Crossbar) Gangs() int { return c.gangs }

// ProgramBlock returns the cost of writing nEdges edges of a block into
// the ganged crossbars. Every edge is programmed in each of the gangs
// (its value is bit-sliced), but the programming pulses of one edge's
// slices overlap across gangs, so latency counts once per edge.
func (c *Crossbar) ProgramBlock(nEdges int) device.Cost {
	if nEdges <= 0 {
		return device.Cost{}
	}
	return device.Cost{
		Latency: c.p.WriteCost.Latency.Times(float64(nEdges)),
		Energy:  c.p.WriteCost.Energy.Times(float64(nEdges) * float64(c.gangs)),
	}
}

// MVM returns the cost of one full-precision matrix-vector operation over
// the programmed block (Eq. 11's read part): the gangs fire in parallel
// (latency once) but each consumes read energy.
func (c *Crossbar) MVM() device.Cost {
	return device.Cost{
		Latency: c.p.ReadCost.Latency,
		Energy:  c.p.ReadCost.Energy.Times(float64(c.gangs)),
	}
}

// RowWiseOps returns the cost of a non-MVM traversal of the block
// (Eq. 12): rows are selected in turn, so the crossbar read repeats Dim
// times; the per-destination CMOS operation at the output ports is the
// caller's to add.
func (c *Crossbar) RowWiseOps() device.Cost {
	return device.Cost{
		Latency: c.p.ReadCost.Latency.Times(float64(c.p.Dim)),
		Energy:  c.p.ReadCost.Energy.Times(float64(c.gangs) * float64(c.p.Dim)),
	}
}

// ProcessBlockMVM is the full Eq. (14) block cost: program every edge,
// then one ganged MVM read.
func (c *Crossbar) ProcessBlockMVM(nEdges int) device.Cost {
	if nEdges <= 0 {
		return device.Cost{}
	}
	return c.ProgramBlock(nEdges).Plus(c.MVM())
}

// ProcessBlockRowWise is the non-MVM variant: program, then row-by-row
// reads.
func (c *Crossbar) ProcessBlockRowWise(nEdges int) device.Cost {
	if nEdges <= 0 {
		return device.Cost{}
	}
	return c.ProgramBlock(nEdges).Plus(c.RowWiseOps())
}

// PerEdgeEnergyMVM is Eq. (15): the equivalent energy of processing one
// edge through the crossbar given the average block occupancy navg,
// E = gangs·E_w + gangs·E_r/navg.
func (c *Crossbar) PerEdgeEnergyMVM(navg float64) units.Energy {
	if navg <= 0 {
		return 0
	}
	g := float64(c.gangs)
	return c.p.WriteCost.Energy.Times(g) + c.p.ReadCost.Energy.Times(g/navg)
}

// PerEdgeLatencyMVM is Eq. (16): T = T_w + T_r/navg.
func (c *Crossbar) PerEdgeLatencyMVM(navg float64) units.Time {
	if navg <= 0 {
		return 0
	}
	return c.p.WriteCost.Latency + units.Time(float64(c.p.ReadCost.Latency)/navg)
}

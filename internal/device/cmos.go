package device

import "repro/internal/units"

// CMOSPU models HyVE's conventional CMOS processing unit. The paper's
// operating point is a pipelined 32-bit floating-point multiplier
// (zipcores datasheet): 18.783 ns latency, 3.7 pJ per operation, with
// the note that "the latency of a CMOS multiplier can be further reduced
// by introducing pipelining" — so per-edge *throughput* is one op per
// pipeline stage while *latency* is the full datasheet figure.
type CMOSPU struct {
	// OpLatency is the end-to-end latency of one edge-update operation.
	OpLatency units.Time
	// OpEnergy is the energy of one edge-update operation.
	OpEnergy units.Energy
	// PipelineStages divides OpLatency to give the issue interval of a
	// fully pipelined unit. 1 disables pipelining.
	PipelineStages int
	// CtrlEnergy is the per-edge control and datapath overhead beyond
	// the arithmetic op itself: sequencing, queues, address generation —
	// the "other logic units" of the paper's Fig. 17 breakdown.
	CtrlEnergy units.Energy
	// Leakage is the static power of one PU's logic.
	Leakage units.Power
}

// NewCMOSPU returns the paper's PU operating point.
func NewCMOSPU() *CMOSPU {
	return &CMOSPU{
		OpLatency:      units.Time(18.783 * float64(units.Nanosecond)),
		OpEnergy:       units.Energy(3.7 * float64(units.Picojoule)),
		PipelineStages: 10,
		CtrlEnergy:     units.Energy(12 * float64(units.Picojoule)),
		Leakage:        units.Power(2 * float64(units.Milliwatt)),
	}
}

// Op returns the cost of processing one edge: throughput-limited latency
// (issue interval) and full per-op energy. Use OpLatency for the fill
// latency of the first edge in a stream.
func (p *CMOSPU) Op() Cost {
	stages := p.PipelineStages
	if stages < 1 {
		stages = 1
	}
	return Cost{
		Latency: units.Time(float64(p.OpLatency) / float64(stages)),
		Energy:  p.OpEnergy,
	}
}

// UnpipelinedOp returns the cost of one isolated (non-overlapped)
// operation.
func (p *CMOSPU) UnpipelinedOp() Cost {
	return Cost{Latency: p.OpLatency, Energy: p.OpEnergy}
}

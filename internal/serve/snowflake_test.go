package serve

import (
	"testing"
	"time"
)

func TestSnowflakeUniqueAndOrdered(t *testing.T) {
	s := NewSnowflake(7)
	const n = 10_000
	seen := make(map[uint64]bool, n)
	var prev uint64
	for i := 0; i < n; i++ {
		id := s.Next()
		if seen[id] {
			t.Fatalf("duplicate id %x at mint %d", id, i)
		}
		seen[id] = true
		if id <= prev {
			t.Fatalf("id %x not greater than predecessor %x", id, prev)
		}
		prev = id
	}
}

func TestSnowflakeClockRegression(t *testing.T) {
	clk := newFakeClock()
	s := NewSnowflake(1)
	s.now = clk.now

	a := s.Next()
	clk.advance(-5 * time.Second) // clock steps backwards
	b := s.Next()
	if b <= a {
		t.Fatalf("id %x minted after clock regression not greater than %x", b, a)
	}
}

func TestSnowflakeRoundTrip(t *testing.T) {
	clk := newFakeClock()
	s := NewSnowflake(1023)
	s.now = clk.now

	str := s.NextString()
	if len(str) != 16 {
		t.Fatalf("NextString length = %d, want 16", len(str))
	}
	id, err := ParseRunID(str)
	if err != nil {
		t.Fatalf("ParseRunID(%q): %v", str, err)
	}
	if got := SnowflakeTime(id); !got.Equal(clk.now().Truncate(time.Millisecond)) {
		t.Errorf("SnowflakeTime = %v, want %v", got, clk.now())
	}
	if node := id >> snowSeqBits & snowNodeMax; node != 1023 {
		t.Errorf("embedded node = %d, want 1023", node)
	}
}

func TestSnowflakeNodeTruncated(t *testing.T) {
	s := NewSnowflake(1 << 12) // beyond 10 bits
	if s.node != 0 {
		t.Errorf("node = %d, want truncation to 10 bits", s.node)
	}
}

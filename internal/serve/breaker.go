package serve

import (
	"sync"
	"time"
)

// BreakerState is one circuit-breaker position.
type BreakerState int

// Breaker states: Closed admits everything, Open rejects everything
// until the cooldown expires, HalfOpen admits a single probe whose
// outcome decides between them.
const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// Breaker is a consecutive-failure circuit breaker guarding one class
// of expensive work (hyve-serve keys one per dataset, so a wedged
// full-scale graph cannot poison cheap points on other datasets).
// Threshold consecutive failures — execution errors or request
// timeouts — trip it open; after Cooldown it half-opens and admits one
// probe at a time: a probe success closes the circuit, a probe failure
// re-opens it for another cooldown.
type Breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	state     BreakerState
	failures  int       // consecutive, while closed
	openedAt  time.Time // last trip
	probing   bool      // a half-open probe is in flight
	now       func() time.Time
}

// NewBreaker builds a breaker tripping after threshold consecutive
// failures and cooling down for cooldown before probing. Nonpositive
// values fall back to 5 failures / 30s.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold <= 0 {
		threshold = 5
	}
	if cooldown <= 0 {
		cooldown = 30 * time.Second
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// Allow reports whether one execution may proceed; when it may not,
// retryAfter is the remaining cooldown. Every admitted execution MUST
// be matched by exactly one Record call with its outcome — in the
// half-open state Allow admits only the single probe whose Record
// settles the circuit.
func (b *Breaker) Allow() (ok bool, retryAfter time.Duration) {
	if b == nil {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true, 0
	case BreakerOpen:
		if remaining := b.cooldown - b.now().Sub(b.openedAt); remaining > 0 {
			return false, remaining
		}
		b.state = BreakerHalfOpen
		b.probing = false
		fallthrough
	default: // BreakerHalfOpen
		if b.probing {
			return false, b.cooldown
		}
		b.probing = true
		return true, 0
	}
}

// Record reports the outcome of an admitted execution. A timeout counts
// as a failure exactly like an error: err is nil on success.
func (b *Breaker) Record(err error) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		if err == nil {
			b.failures = 0
			return
		}
		b.failures++
		if b.failures >= b.threshold {
			b.state = BreakerOpen
			b.openedAt = b.now()
		}
	case BreakerHalfOpen:
		b.probing = false
		if err == nil {
			b.state = BreakerClosed
			b.failures = 0
			return
		}
		b.state = BreakerOpen
		b.openedAt = b.now()
	case BreakerOpen:
		// A late Record from an execution admitted before the trip;
		// the circuit is already open, nothing to update.
	}
}

// State returns the breaker's current position (an Open breaker past
// its cooldown still reports Open until the next Allow probes it).
func (b *Breaker) State() BreakerState {
	if b == nil {
		return BreakerClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// breakerSet is a lazily-populated keyed breaker family sharing one
// policy — hyve-serve keys it by dataset.
type breakerSet struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	m         map[string]*Breaker
}

func newBreakerSet(threshold int, cooldown time.Duration) *breakerSet {
	return &breakerSet{threshold: threshold, cooldown: cooldown, m: make(map[string]*Breaker)}
}

func (s *breakerSet) get(key string) *Breaker {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.m[key]
	if !ok {
		b = NewBreaker(s.threshold, s.cooldown)
		s.m[key] = b
	}
	return b
}

// openCount reports how many breakers are currently open — the
// hyve_serve_breaker_open gauge.
func (s *breakerSet) openCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int
	for _, b := range s.m {
		if b.State() != BreakerClosed {
			n++
		}
	}
	return n
}

// Package serve is the long-running simulation service behind
// cmd/hyve-serve: an HTTP/JSON front end that accepts single
// (dataset, algorithm, configuration) points and sweep specs, routes
// every execution through the content-addressed cache.Scheduler (so a
// repeated point is a sub-millisecond hit and concurrent duplicates
// coalesce onto one execution), and streams results back — plain JSON
// for a point, NDJSON events for a sweep.
//
// The service is built to survive heavy concurrent traffic:
//
//   - token-bucket admission control (429 + Retry-After when the point
//     budget is spent; a sweep spends one token per point),
//   - a per-dataset circuit breaker around expensive points (trips on
//     consecutive errors/timeouts, half-open probes after a cooldown,
//     503 + Retry-After while open),
//   - backpressure from a bounded execution-slot pool shared across all
//     requests (internal/parallel fans each sweep, a global semaphore
//     bounds total simulation concurrency),
//   - per-request deadlines, snowflake run ids stamped into responses
//     and spans, and graceful drain: a draining server stops admitting,
//     finishes every in-flight request, and only then lets the process
//     exit.
//
// Served bytes are the cache-hit-identity invariant extended to the
// wire: a point response body is byte-identical to cache.EncodeResult
// of a direct core.Simulate of the same point.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/algo"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/parallel"
)

// Metric names the service reports through the process-global Recorder
// (exposed as hyve_serve_* Prometheus families, see EXPERIMENTS.md).
const (
	MetricAdmitted        = "serve.requests.admitted"
	MetricRejected        = "serve.requests.rejected"
	MetricBreakerRejected = "serve.breaker.rejected"
	MetricBreakerOpen     = "serve.breaker.open"
	MetricInflight        = "serve.inflight"
	MetricRequestSec      = "serve.request.seconds"
	MetricPointsServed    = "serve.points.served"
	MetricDrains          = "serve.drains"
)

// RegisterMetrics announces every serve counter at zero so a scrape
// right after startup sees the full family set.
func RegisterMetrics(rec obs.Recorder) {
	for _, name := range []string{
		MetricAdmitted, MetricRejected, MetricBreakerRejected,
		MetricPointsServed, MetricDrains,
	} {
		rec.Count(name, 0)
	}
	rec.Count(MetricInflight, 0)
	rec.Gauge(MetricBreakerOpen, 0)
}

// Config tunes a Server. The zero value is serviceable: private
// in-memory cache, 50 points/s with burst 100, breaker at 5 consecutive
// failures / 30s cooldown, 2-minute request deadline, GOMAXPROCS
// execution slots.
type Config struct {
	// Sched is the scheduler every execution is submitted through. Nil
	// builds a private in-memory one; hand in cache.New(cache.Config{
	// Dir: ...}) to persist results across restarts.
	Sched *cache.Scheduler
	// Workers bounds concurrent simulation executions across ALL
	// requests (0 = GOMAXPROCS) — the service's backpressure: requests
	// beyond it queue on the slot pool instead of oversubscribing the
	// host.
	Workers int
	// Rate and Burst shape the token-bucket admission controller
	// (points per second and bucket capacity).
	Rate  float64
	Burst int
	// BreakerFailures consecutive errors/timeouts on one dataset trip
	// its circuit breaker open for BreakerCooldown.
	BreakerFailures int
	BreakerCooldown time.Duration
	// RequestTimeout is the per-request deadline (a client may shorten
	// it per request via timeout_ms, never lengthen it).
	RequestTimeout time.Duration
	// MaxSweepPoints rejects sweep specs whose cross product exceeds it.
	MaxSweepPoints int
	// MaxInflight caps concurrently admitted requests; excess gets 429.
	MaxInflight int
	// Node is the snowflake node id stamped into run ids.
	Node uint64
	// Log receives request-level logfmt lines (nil = quiet).
	Log *obs.Logger
}

// Defaults for the zero Config.
const (
	DefaultRequestTimeout = 2 * time.Minute
	DefaultMaxSweepPoints = 4096
	DefaultMaxInflight    = 64
)

// Server is the simulation service. Create with New, mount Handler on
// an http.Server, and call Drain before exiting.
type Server struct {
	cfg      Config
	sched    *cache.Scheduler
	limiter  *Limiter
	breakers *breakerSet
	ids      *Snowflake
	sem      chan struct{} // global execution slots

	inflight  sync.WaitGroup
	inflightN atomic.Int64
	draining  atomic.Bool

	// simulate is the execution seam: cache.Scheduler.SimulateCtx in
	// production, a gated fake in the drain/cancellation tests.
	simulate func(ctx context.Context, cfg core.Config, w core.Workload) (*core.Result, error)

	log *obs.Logger
}

// New builds a Server from cfg, filling zero fields with the defaults
// documented on Config.
func New(cfg Config) *Server {
	if cfg.Sched == nil {
		cfg.Sched = cache.New(cache.Config{})
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = DefaultRequestTimeout
	}
	if cfg.MaxSweepPoints <= 0 {
		cfg.MaxSweepPoints = DefaultMaxSweepPoints
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = DefaultMaxInflight
	}
	s := &Server{
		cfg:      cfg,
		sched:    cfg.Sched,
		limiter:  NewLimiter(cfg.Rate, cfg.Burst),
		breakers: newBreakerSet(cfg.BreakerFailures, cfg.BreakerCooldown),
		ids:      NewSnowflake(cfg.Node),
		sem:      make(chan struct{}, parallel.Workers(cfg.Workers)),
		log:      cfg.Log,
	}
	s.simulate = s.sched.SimulateCtx
	return s
}

// Handler returns the service mux: POST (or GET with query parameters)
// /point and /sweep, plus GET /healthz.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/point", s.handlePoint)
	mux.HandleFunc("/sweep", s.handleSweep)
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

// Drain puts the server into draining mode — every subsequent request
// is rejected with 503 — and waits for in-flight requests to finish,
// bounded by ctx. On a clean drain every admitted request ran to
// completion: nothing in flight is ever dropped.
func (s *Server) Drain(ctx context.Context) error {
	if s.draining.CompareAndSwap(false, true) {
		obs.Default().Count(MetricDrains, 1)
		if s.log != nil {
			s.log.Info("serve.draining", "inflight", s.inflightN.Load())
		}
	}
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		// A drain that is effectively complete (the last request just
		// unwound) should not report failure because its context died in
		// the same instant: give the waiter one scheduling grace.
		select {
		case <-done:
			return nil
		case <-time.After(10 * time.Millisecond):
			return fmt.Errorf("serve: drain incomplete, %d request(s) still in flight: %w",
				s.inflightN.Load(), ctx.Err())
		}
	}
}

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Inflight reports the number of admitted, unfinished requests.
func (s *Server) Inflight() int64 { return s.inflightN.Load() }

// --- request plumbing ----------------------------------------------------

// apiError is the JSON error body every non-2xx response carries.
type apiError struct {
	Error        string `json:"error"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
	RunID        string `json:"run_id,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// reject writes an error response; a positive retryAfter adds the
// Retry-After header (whole seconds, rounded up, at least 1).
func reject(w http.ResponseWriter, code int, retryAfter time.Duration, msg, runID string) {
	if retryAfter > 0 {
		secs := int64(math.Ceil(retryAfter.Seconds()))
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
	}
	writeJSON(w, code, apiError{Error: msg, RetryAfterMS: retryAfter.Milliseconds(), RunID: runID})
}

// admit runs the shared admission pipeline for a request of n points:
// drain check, inflight cap, token bucket. On success the request is
// registered in flight and the returned release must be called exactly
// once when it finishes.
func (s *Server) admit(w http.ResponseWriter, runID string, n int) (release func(), ok bool) {
	rec := obs.Default()
	if s.draining.Load() {
		w.Header().Set("Connection", "close")
		reject(w, http.StatusServiceUnavailable, 0, "draining: not accepting new work", runID)
		return nil, false
	}
	if s.inflightN.Load() >= int64(s.cfg.MaxInflight) {
		rec.Count(MetricRejected, 1)
		reject(w, http.StatusTooManyRequests, time.Second,
			fmt.Sprintf("at capacity: %d requests in flight", s.cfg.MaxInflight), runID)
		return nil, false
	}
	if allowed, retryAfter := s.limiter.AllowN(n); !allowed {
		rec.Count(MetricRejected, 1)
		reject(w, http.StatusTooManyRequests, retryAfter,
			fmt.Sprintf("rate limited: %d point(s) exceed the admission budget", n), runID)
		return nil, false
	}
	rec.Count(MetricAdmitted, 1)
	rec.Count(MetricInflight, 1)
	s.inflight.Add(1)
	s.inflightN.Add(1)
	start := time.Now()
	return func() {
		obs.ObserveSince(rec, MetricRequestSec, start)
		rec.Count(MetricInflight, -1)
		s.inflightN.Add(-1)
		s.inflight.Done()
	}, true
}

// requestCtx derives the request's execution context: the server
// deadline, optionally shortened by the client's timeout_ms.
func (s *Server) requestCtx(r *http.Request, timeoutMS int64) (context.Context, context.CancelFunc) {
	d := s.cfg.RequestTimeout
	if timeoutMS > 0 {
		if c := time.Duration(timeoutMS) * time.Millisecond; c < d {
			d = c
		}
	}
	return context.WithTimeout(r.Context(), d)
}

// --- point resolution ----------------------------------------------------

// accConfigByName maps a wire config name to an accelerator Config.
// The service simulates the five core configurations; the analytic
// CPU/GraphR baselines have no core.Result and are not served.
func accConfigByName(name string) (core.Config, error) {
	switch name {
	case "hyve":
		return core.HyVE(), nil
	case "hyve-opt":
		return core.HyVEOpt(), nil
	case "sd":
		return core.SRAMDRAM(), nil
	case "dram":
		return core.AccDRAM(), nil
	case "reram":
		return core.AccReRAM(), nil
	}
	return core.Config{}, fmt.Errorf("unknown config %q (want hyve, hyve-opt, sd, dram, reram)", name)
}

// pointSpec is one validated (dataset, algorithm, config) coordinate;
// the workload is assembled lazily at execution time, inside the
// bounded slot pool.
type pointSpec struct {
	dataset graph.Dataset
	program algo.Program
	cfgName string
	sramMB  int64
}

func resolveSpec(dataset, algon, config string, sramMB int64) (pointSpec, error) {
	d, err := graph.DatasetByName(dataset)
	if err != nil {
		return pointSpec{}, err
	}
	p, err := algo.ByName(algon)
	if err != nil {
		return pointSpec{}, err
	}
	if _, err := accConfigByName(config); err != nil {
		return pointSpec{}, err
	}
	return pointSpec{dataset: d, program: p, cfgName: config, sramMB: sramMB}, nil
}

// assemble builds the executable (Config, Workload) pair for a spec —
// identical to what a direct `hyve-sim -dataset -algo -config -sram`
// invocation builds, which is what makes the wire bytes comparable.
func (p pointSpec) assemble() (core.Config, core.Workload, error) {
	cfg, err := accConfigByName(p.cfgName)
	if err != nil {
		return core.Config{}, core.Workload{}, err
	}
	if cfg.UseOnChipSRAM && p.sramMB > 0 {
		cfg.SRAMBytes = p.sramMB << 20
	}
	w, err := core.WorkloadFor(p.dataset, p.program)
	if err != nil {
		return core.Config{}, core.Workload{}, err
	}
	return cfg, w, nil
}

// errBreakerOpen marks a rejection by an open circuit breaker.
type errBreakerOpen struct {
	dataset    string
	retryAfter time.Duration
}

func (e errBreakerOpen) Error() string {
	return fmt.Sprintf("circuit breaker open for dataset %s (retry in %s)", e.dataset, e.retryAfter.Round(time.Millisecond))
}

// execPoint runs one spec under the breaker and the global slot pool
// and returns the result and its content digest.
func (s *Server) execPoint(ctx context.Context, spec pointSpec) (*core.Result, string, error) {
	rec := obs.Default()
	br := s.breakers.get(spec.dataset.Name)
	allowed, retryAfter := br.Allow()
	if !allowed {
		rec.Count(MetricBreakerRejected, 1)
		return nil, "", errBreakerOpen{dataset: spec.dataset.Name, retryAfter: retryAfter}
	}
	outcome := func(err error) {
		// Client cancellation says nothing about the backend's health;
		// only executions the service itself failed or timed out count.
		if errors.Is(err, context.Canceled) {
			err = nil
		}
		br.Record(err)
		rec.Gauge(MetricBreakerOpen, float64(s.breakers.openCount()))
	}

	// One global slot per executing simulation: the backpressure that
	// keeps a burst of requests from oversubscribing the host.
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		outcome(ctx.Err())
		return nil, "", ctx.Err()
	}
	defer func() { <-s.sem }()

	cfg, w, err := spec.assemble()
	if err != nil {
		outcome(err)
		return nil, "", err
	}
	var digest string
	if d, derr := cache.PointDigest(cfg, w); derr == nil {
		digest = d.String()
	}
	res, err := s.simulate(ctx, cfg, w)
	outcome(err)
	if err != nil {
		return nil, digest, err
	}
	rec.Count(MetricPointsServed, 1)
	return res, digest, nil
}

// errStatus maps an execution error to its HTTP status.
func errStatus(err error) int {
	var open errBreakerOpen
	switch {
	case errors.As(err, &open):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499 // client closed request (nginx convention)
	default:
		return http.StatusInternalServerError
	}
}

// --- /point --------------------------------------------------------------

// PointRequest is the /point request schema (POST body, or the same
// fields as query parameters on GET).
type PointRequest struct {
	Dataset string `json:"dataset"`
	Algo    string `json:"algo"`
	Config  string `json:"config"`
	// SRAMMB overrides the per-PU on-chip vertex memory (MB) for
	// configurations that have one; 0 keeps the configuration default.
	SRAMMB int64 `json:"sram_mb,omitempty"`
	// TimeoutMS shortens the server's per-request deadline.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

func (s *Server) handlePoint(w http.ResponseWriter, r *http.Request) {
	runID := s.ids.NextString()
	w.Header().Set("X-Hyve-Run-Id", runID)
	var req PointRequest
	if !decodeRequest(w, r, runID, &req) {
		return
	}
	spec, err := resolveSpec(req.Dataset, req.Algo, req.Config, req.SRAMMB)
	if err != nil {
		reject(w, http.StatusBadRequest, 0, err.Error(), runID)
		return
	}
	release, ok := s.admit(w, runID, 1)
	if !ok {
		return
	}
	defer release()

	ctx, cancel := s.requestCtx(r, req.TimeoutMS)
	defer cancel()
	ctx, sp := obs.StartSpan(ctx, "request /point", "run_id", runID,
		"dataset", req.Dataset, "algo", req.Algo, "config", req.Config)
	defer sp.End()

	res, digest, err := s.execPoint(ctx, spec)
	if err != nil {
		sp.SetAttr("error", err.Error())
		s.logRequest("point", runID, r, err)
		reject(w, errStatus(err), retryAfterOf(err), err.Error(), runID)
		return
	}
	payload, err := cache.EncodeResult(res)
	if err != nil {
		reject(w, http.StatusInternalServerError, 0, err.Error(), runID)
		return
	}
	// The body is exactly the canonical result document — byte-identical
	// to cache.EncodeResult(core.Simulate(point)) — so identity survives
	// the wire; run id and digest ride in headers, never in the bytes.
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Hyve-Point-Digest", digest)
	w.Header().Set("X-Hyve-Result-Schema", cache.ResultSchema)
	_, _ = w.Write(payload)
	s.logRequest("point", runID, r, nil)
}

// retryAfterOf extracts the client back-off hint carried by breaker
// rejections (zero otherwise).
func retryAfterOf(err error) time.Duration {
	var open errBreakerOpen
	if errors.As(err, &open) {
		return open.retryAfter
	}
	return 0
}

// decodeRequest fills req from a POST JSON body or GET query
// parameters, rejecting anything else.
func decodeRequest(w http.ResponseWriter, r *http.Request, runID string, req *PointRequest) bool {
	switch r.Method {
	case http.MethodPost:
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(req); err != nil {
			reject(w, http.StatusBadRequest, 0, "invalid request body: "+err.Error(), runID)
			return false
		}
	case http.MethodGet:
		q := r.URL.Query()
		req.Dataset = q.Get("dataset")
		req.Algo = q.Get("algo")
		req.Config = q.Get("config")
		if v := q.Get("sram_mb"); v != "" {
			fmt.Sscanf(v, "%d", &req.SRAMMB)
		}
		if v := q.Get("timeout_ms"); v != "" {
			fmt.Sscanf(v, "%d", &req.TimeoutMS)
		}
	default:
		w.Header().Set("Allow", "GET, POST")
		reject(w, http.StatusMethodNotAllowed, 0, "use GET with query parameters or POST with a JSON body", runID)
		return false
	}
	return true
}

// --- /sweep --------------------------------------------------------------

// SweepRequest is the /sweep request schema: the cross product of the
// three lists, dataset-major then algorithm then configuration — the
// same order hyve-sim sweeps.
type SweepRequest struct {
	Datasets  []string `json:"datasets"`
	Algos     []string `json:"algos"`
	Configs   []string `json:"configs"`
	SRAMMB    int64    `json:"sram_mb,omitempty"`
	TimeoutMS int64    `json:"timeout_ms,omitempty"`
}

// SweepEvent is one NDJSON line of a /sweep response stream.
type SweepEvent struct {
	// Event is "start", "point", "error", or "done".
	Event string `json:"event"`
	RunID string `json:"run_id,omitempty"`
	// Points (start) is the sweep size; Index (point/error) the point's
	// position in dataset-major order.
	Points  int    `json:"points,omitempty"`
	Index   *int   `json:"index,omitempty"`
	Dataset string `json:"dataset,omitempty"`
	Algo    string `json:"algo,omitempty"`
	Config  string `json:"config,omitempty"`
	Digest  string `json:"digest,omitempty"`
	// Result (point) is the canonical hyve/result/v1 document.
	Result json.RawMessage `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
	// Completed/Errors/ElapsedMS summarize the run on "done".
	Completed int   `json:"completed,omitempty"`
	Errors    int   `json:"errors,omitempty"`
	ElapsedMS int64 `json:"elapsed_ms,omitempty"`
	// Aborted marks a "done" event for a sweep cut short by the request
	// deadline or a client disconnect; undispatched points never ran.
	Aborted bool `json:"aborted,omitempty"`
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	runID := s.ids.NextString()
	w.Header().Set("X-Hyve-Run-Id", runID)
	req, ok := decodeSweepRequest(w, r, runID)
	if !ok {
		return
	}
	specs := make([]pointSpec, 0, len(req.Datasets)*len(req.Algos)*len(req.Configs))
	if len(req.Datasets) == 0 || len(req.Algos) == 0 || len(req.Configs) == 0 {
		reject(w, http.StatusBadRequest, 0, "datasets, algos, and configs must each name at least one value", runID)
		return
	}
	names := make([][3]string, 0, cap(specs))
	for _, d := range req.Datasets {
		for _, a := range req.Algos {
			for _, c := range req.Configs {
				spec, err := resolveSpec(d, a, c, req.SRAMMB)
				if err != nil {
					reject(w, http.StatusBadRequest, 0, err.Error(), runID)
					return
				}
				specs = append(specs, spec)
				names = append(names, [3]string{d, a, c})
			}
		}
	}
	n := len(specs)
	if n > s.cfg.MaxSweepPoints {
		reject(w, http.StatusBadRequest, 0,
			fmt.Sprintf("sweep of %d points exceeds the %d-point limit", n, s.cfg.MaxSweepPoints), runID)
		return
	}
	release, ok := s.admit(w, runID, n)
	if !ok {
		return
	}
	defer release()

	ctx, cancel := s.requestCtx(r, req.TimeoutMS)
	defer cancel()
	ctx, sp := obs.StartSpan(ctx, "request /sweep", "run_id", runID, "points", fmt.Sprint(n))
	defer sp.End()

	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	emit := func(ev SweepEvent) {
		_ = enc.Encode(ev)
		if flusher != nil {
			flusher.Flush()
		}
	}
	start := time.Now()
	emit(SweepEvent{Event: "start", RunID: runID, Points: n})

	// Points fan across the bounded pool; the stream emits them in
	// dataset-major order as soon as each index (and all before it) has
	// finished, so the result sequence is deterministic while progress
	// still streams during the run.
	results := make([]*core.Result, n)
	digests := make([]string, n)
	errs := make([]error, n)
	done := make([]chan struct{}, n)
	for i := range done {
		done[i] = make(chan struct{})
	}
	poolErr := make(chan error, 1)
	go func() {
		poolErr <- parallel.ForEachCtx(ctx, cap(s.sem), n, parallel.Options{}, func(i int) error {
			results[i], digests[i], errs[i] = s.execPoint(ctx, specs[i])
			close(done[i])
			return nil // per-point failures stream as events, they never kill the sweep
		})
	}()

	completed, failed := 0, 0
	aborted := false
emitLoop:
	for i := 0; i < n; i++ {
		select {
		case <-done[i]:
		case <-ctx.Done():
			aborted = true
			break emitLoop
		}
		idx := i
		ev := SweepEvent{
			RunID: runID, Index: &idx,
			Dataset: names[i][0], Algo: names[i][1], Config: names[i][2],
			Digest: digests[i],
		}
		if errs[i] != nil {
			ev.Event, ev.Error = "error", errs[i].Error()
			failed++
		} else {
			payload, err := cache.EncodeResult(results[i])
			if err != nil {
				ev.Event, ev.Error = "error", err.Error()
				failed++
			} else {
				ev.Event = "point"
				ev.Result = json.RawMessage(payload)
				completed++
			}
		}
		emit(ev)
	}
	// Wait for in-flight points even on an abort: the pool never
	// abandons a claimed point, and drain accounting (the surrounding
	// release) must not fire while simulations still run.
	<-poolErr
	emit(SweepEvent{
		Event: "done", RunID: runID,
		Completed: completed, Errors: failed,
		ElapsedMS: time.Since(start).Milliseconds(),
		Aborted:   aborted,
	})
	if aborted {
		sp.SetAttr("aborted", "true")
	}
	s.logRequest("sweep", runID, r, ctx.Err())
}

// decodeSweepRequest fills a SweepRequest from POST JSON or GET query
// parameters (comma-separated lists).
func decodeSweepRequest(w http.ResponseWriter, r *http.Request, runID string) (SweepRequest, bool) {
	var req SweepRequest
	switch r.Method {
	case http.MethodPost:
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			reject(w, http.StatusBadRequest, 0, "invalid request body: "+err.Error(), runID)
			return req, false
		}
	case http.MethodGet:
		q := r.URL.Query()
		req.Datasets = splitList(q.Get("datasets"))
		req.Algos = splitList(q.Get("algos"))
		req.Configs = splitList(q.Get("configs"))
		if v := q.Get("sram_mb"); v != "" {
			fmt.Sscanf(v, "%d", &req.SRAMMB)
		}
		if v := q.Get("timeout_ms"); v != "" {
			fmt.Sscanf(v, "%d", &req.TimeoutMS)
		}
	default:
		w.Header().Set("Allow", "GET, POST")
		reject(w, http.StatusMethodNotAllowed, 0, "use GET with query parameters or POST with a JSON body", runID)
		return req, false
	}
	return req, true
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// --- /healthz ------------------------------------------------------------

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	code := http.StatusOK
	if s.draining.Load() {
		status, code = "draining", http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"status":   status,
		"inflight": s.inflightN.Load(),
	})
}

func (s *Server) logRequest(kind, runID string, r *http.Request, err error) {
	if s.log == nil {
		return
	}
	if err != nil {
		s.log.Warn("serve.request", "kind", kind, "run_id", runID, "remote", r.RemoteAddr, "err", err)
		return
	}
	s.log.Debug("serve.request", "kind", kind, "run_id", runID, "remote", r.RemoteAddr)
}

package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/algo"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
)

// smallResult is a once-computed real simulation result the fake
// execution seams hand back, so response bodies are genuine canonical
// documents without paying for a full dataset point per request.
var (
	smallOnce sync.Once
	smallRes  *core.Result
)

func smallResult(t *testing.T) *core.Result {
	t.Helper()
	smallOnce.Do(func() {
		g, err := graph.GenerateUniform(256, 1024, 42)
		if err != nil {
			panic(err)
		}
		w := core.Workload{
			DatasetName: "test",
			Graph:       g,
			Program:     algo.NewPageRank(),
		}
		smallRes, err = core.Simulate(core.HyVE(), w)
		if err != nil {
			panic(err)
		}
	})
	if smallRes == nil {
		t.Fatal("small reference simulation failed")
	}
	return smallRes
}

// newTestServer builds a Server with generous admission defaults and an
// instant fake execution seam (override srv.simulate for other shapes).
func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Rate == 0 {
		cfg.Rate = 1e6
	}
	if cfg.Burst == 0 {
		cfg.Burst = 1 << 20
	}
	srv := New(cfg)
	res := smallResult(t)
	srv.simulate = func(ctx context.Context, _ core.Config, _ core.Workload) (*core.Result, error) {
		return res, nil
	}
	return srv
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestServedPointMatchesDirectSimulate is the wire-identity acceptance
// test: the /point response body must be byte-for-byte the canonical
// document of a direct core.Simulate of the same point.
func TestServedPointMatchesDirectSimulate(t *testing.T) {
	srv := New(Config{Rate: 1e6, Burst: 1 << 20}) // real execution path, in-memory cache
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/point", PointRequest{Dataset: "YT", Algo: "PR", Config: "sd"})
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body: %s", resp.StatusCode, body)
	}

	d, err := graph.DatasetByName("YT")
	if err != nil {
		t.Fatal(err)
	}
	p, err := algo.ByName("PR")
	if err != nil {
		t.Fatal(err)
	}
	w, err := core.WorkloadFor(d, p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.SRAMDRAM()
	res, err := core.Simulate(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	want, err := cache.EncodeResult(res)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, want) {
		t.Errorf("served body differs from direct simulation:\nserved %d bytes: %.120s\ndirect %d bytes: %.120s",
			len(body), body, len(want), want)
	}

	digest, err := cache.PointDigest(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Header.Get("X-Hyve-Point-Digest"); got != digest.String() {
		t.Errorf("digest header = %q, want %q", got, digest.String())
	}
	runID := resp.Header.Get("X-Hyve-Run-Id")
	if _, err := ParseRunID(runID); err != nil || len(runID) != 16 {
		t.Errorf("run id header %q is not a 16-hex-digit snowflake: %v", runID, err)
	}

	// A repeat of the same point is a cache hit with identical bytes.
	resp2 := postJSON(t, ts.URL+"/point", PointRequest{Dataset: "YT", Algo: "PR", Config: "sd"})
	body2 := readAll(t, resp2)
	if !bytes.Equal(body, body2) {
		t.Error("repeated point served different bytes")
	}
	if st := srv.sched.Stats(); st.MemHits == 0 {
		t.Errorf("repeat point did not hit the cache: %+v", st)
	}
}

func TestPointValidation(t *testing.T) {
	srv := newTestServer(t, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := []struct {
		req  PointRequest
		want int
	}{
		{PointRequest{Dataset: "NOPE", Algo: "PR", Config: "sd"}, http.StatusBadRequest},
		{PointRequest{Dataset: "YT", Algo: "NOPE", Config: "sd"}, http.StatusBadRequest},
		{PointRequest{Dataset: "YT", Algo: "PR", Config: "cpu"}, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp := postJSON(t, ts.URL+"/point", c.req)
		readAll(t, resp)
		if resp.StatusCode != c.want {
			t.Errorf("%+v: status = %d, want %d", c.req, resp.StatusCode, c.want)
		}
	}

	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/point", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, resp)
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("PUT status = %d, want 405", resp.StatusCode)
	}
}

// TestOverloadRejectsWith429 pins the admission contract: past the
// token budget, requests get 429 with a Retry-After hint instead of
// queueing without bound.
func TestOverloadRejectsWith429(t *testing.T) {
	srv := newTestServer(t, Config{Rate: 0.001, Burst: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/point", PointRequest{Dataset: "YT", Algo: "PR", Config: "sd"})
	readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first request status = %d, want 200", resp.StatusCode)
	}

	resp = postJSON(t, ts.URL+"/point", PointRequest{Dataset: "YT", Algo: "PR", Config: "sd"})
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload status = %d, want 429 (body %s)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 carried no Retry-After header")
	}
	var apiErr apiError
	if err := json.Unmarshal(body, &apiErr); err != nil || apiErr.RetryAfterMS <= 0 {
		t.Errorf("429 body %s lacks a positive retry_after_ms", body)
	}

	// A sweep spends one token per point: 2 points > burst of 1.
	resp = postJSON(t, ts.URL+"/sweep", SweepRequest{
		Datasets: []string{"YT"}, Algos: []string{"PR", "BFS"}, Configs: []string{"sd"},
	})
	readAll(t, resp)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("oversized sweep status = %d, want 429", resp.StatusCode)
	}
}

// TestBreakerOpensPerDataset pins the breaker contract: consecutive
// failures on one dataset trip a 503 for that dataset only.
func TestBreakerOpensPerDataset(t *testing.T) {
	srv := newTestServer(t, Config{BreakerFailures: 2, BreakerCooldown: time.Minute})
	srv.simulate = func(ctx context.Context, _ core.Config, _ core.Workload) (*core.Result, error) {
		return nil, errors.New("simulated execution failure")
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for i := 0; i < 2; i++ {
		resp := postJSON(t, ts.URL+"/point", PointRequest{Dataset: "YT", Algo: "PR", Config: "sd"})
		readAll(t, resp)
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("failing request %d status = %d, want 500", i, resp.StatusCode)
		}
	}

	resp := postJSON(t, ts.URL+"/point", PointRequest{Dataset: "YT", Algo: "PR", Config: "sd"})
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("tripped-breaker status = %d, want 503 (body %s)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("breaker 503 carried no Retry-After header")
	}
	if !strings.Contains(string(body), "circuit breaker") {
		t.Errorf("breaker 503 body %s does not name the breaker", body)
	}

	// Another dataset's breaker is untouched: its request is admitted
	// (and fails on execution with 500, not rejected with 503).
	resp = postJSON(t, ts.URL+"/point", PointRequest{Dataset: "WK", Algo: "PR", Config: "sd"})
	readAll(t, resp)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("other-dataset status = %d, want 500 (independent breaker)", resp.StatusCode)
	}
}

// decodeSweepEvents parses an NDJSON response body.
func decodeSweepEvents(t *testing.T, body []byte) []SweepEvent {
	t.Helper()
	var evs []SweepEvent
	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		var ev SweepEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		evs = append(evs, ev)
	}
	return evs
}

func TestSweepStreamsOrderedEvents(t *testing.T) {
	srv := newTestServer(t, Config{Workers: 4})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/sweep", SweepRequest{
		Datasets: []string{"YT"}, Algos: []string{"PR", "BFS"}, Configs: []string{"sd", "dram"},
	})
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q, want application/x-ndjson", ct)
	}

	evs := decodeSweepEvents(t, body)
	if len(evs) != 6 { // start + 4 points + done
		t.Fatalf("got %d events, want 6: %+v", len(evs), evs)
	}
	if evs[0].Event != "start" || evs[0].Points != 4 {
		t.Errorf("first event = %+v, want start with 4 points", evs[0])
	}
	want, _ := cache.EncodeResult(smallResult(t))
	wantOrder := [][3]string{
		{"YT", "PR", "sd"}, {"YT", "PR", "dram"},
		{"YT", "BFS", "sd"}, {"YT", "BFS", "dram"},
	}
	for i, ev := range evs[1:5] {
		if ev.Event != "point" || ev.Index == nil || *ev.Index != i {
			t.Fatalf("event %d = %+v, want point with index %d (dataset-major order)", i, ev, i)
		}
		if got := [3]string{ev.Dataset, ev.Algo, ev.Config}; got != wantOrder[i] {
			t.Errorf("point %d coordinates = %v, want %v", i, got, wantOrder[i])
		}
		if !bytes.Equal(append(bytes.TrimRight(ev.Result, "\n"), '\n'), want) {
			t.Errorf("point %d result is not the canonical document", i)
		}
	}
	last := evs[5]
	if last.Event != "done" || last.Completed != 4 || last.Errors != 0 || last.Aborted {
		t.Errorf("final event = %+v, want clean done with 4 completed", last)
	}
	if last.RunID != resp.Header.Get("X-Hyve-Run-Id") {
		t.Errorf("done event run id %q != header %q", last.RunID, resp.Header.Get("X-Hyve-Run-Id"))
	}
}

func TestSweepStreamsPointErrors(t *testing.T) {
	srv := newTestServer(t, Config{Workers: 1}) // serial: call order == index order
	var calls atomic.Int64
	res := smallResult(t)
	srv.simulate = func(ctx context.Context, _ core.Config, _ core.Workload) (*core.Result, error) {
		if calls.Add(1) == 2 {
			return nil, errors.New("point 1 exploded")
		}
		return res, nil
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/sweep", SweepRequest{
		Datasets: []string{"YT"}, Algos: []string{"PR", "BFS"}, Configs: []string{"sd"},
	})
	body := readAll(t, resp)
	evs := decodeSweepEvents(t, body)
	if len(evs) != 4 {
		t.Fatalf("got %d events, want 4: %s", len(evs), body)
	}
	if evs[1].Event != "point" {
		t.Errorf("event for index 0 = %+v, want point", evs[1])
	}
	if evs[2].Event != "error" || !strings.Contains(evs[2].Error, "exploded") {
		t.Errorf("event for index 1 = %+v, want the execution error", evs[2])
	}
	if done := evs[3]; done.Completed != 1 || done.Errors != 1 {
		t.Errorf("done = %+v, want 1 completed / 1 error", done)
	}
}

// TestGracefulDrain pins the drain contract: a draining server rejects
// new work with 503 while every already-admitted request runs to
// completion and delivers its full response — zero dropped in flight.
func TestGracefulDrain(t *testing.T) {
	started := make(chan struct{})
	gate := make(chan struct{})
	srv := newTestServer(t, Config{})
	res := smallResult(t)
	srv.simulate = func(ctx context.Context, _ core.Config, _ core.Workload) (*core.Result, error) {
		close(started)
		<-gate
		return res, nil
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	type reply struct {
		code int
		body []byte
	}
	inflight := make(chan reply, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/point", "application/json",
			strings.NewReader(`{"dataset":"YT","algo":"PR","config":"sd"}`))
		if err != nil {
			inflight <- reply{code: -1}
			return
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		inflight <- reply{code: resp.StatusCode, body: b}
	}()
	<-started

	drained := make(chan error, 1)
	go func() { drained <- srv.Drain(context.Background()) }()
	waitUntil(t, "server to enter draining", srv.Draining)

	// New work is refused while the admitted request still runs.
	resp := postJSON(t, ts.URL+"/point", PointRequest{Dataset: "YT", Algo: "PR", Config: "sd"})
	readAll(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("request during drain status = %d, want 503", resp.StatusCode)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hb := readAll(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(hb), "draining") {
		t.Errorf("healthz during drain = %d %s, want 503 draining", resp.StatusCode, hb)
	}
	select {
	case err := <-drained:
		t.Fatalf("drain returned %v with a request still in flight", err)
	default:
	}

	close(gate)
	r := <-inflight
	want, _ := cache.EncodeResult(res)
	if r.code != http.StatusOK || !bytes.Equal(r.body, want) {
		t.Errorf("in-flight request finished %d with %d bytes; want 200 with the full canonical body", r.code, len(r.body))
	}
	if err := <-drained; err != nil {
		t.Errorf("drain returned %v after the last request finished", err)
	}
	if n := srv.Inflight(); n != 0 {
		t.Errorf("inflight after drain = %d, want 0", n)
	}

	// An expiring drain context reports how much it abandoned.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Errorf("drain of an idle server must succeed even with a dead context, got %v", err)
	}
}

// TestClientCancelAbortsCleanly is the kill-mid-request test: a client
// disconnect mid-execution aborts the request without leaving a
// half-made cache entry, and the on-disk store stays valid for the
// next process.
func TestClientCancelAbortsCleanly(t *testing.T) {
	dir := t.TempDir()
	sched := cache.New(cache.Config{Dir: dir})
	srv := New(Config{Sched: sched, Rate: 1e6, Burst: 1 << 20})
	inner := srv.simulate
	started := make(chan struct{})
	var once sync.Once
	srv.simulate = func(ctx context.Context, cfg core.Config, w core.Workload) (*core.Result, error) {
		// First call: hold the point at the scheduler's door until the
		// server has observed the client disconnect, so the abort path
		// (not a completed execution) is what's under test.
		once.Do(func() { close(started); <-ctx.Done() })
		return inner(ctx, cfg, w)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	point := `{"dataset":"YT","algo":"PR","config":"sd"}`
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/point", strings.NewReader(point))
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		errc <- err
	}()
	<-started
	cancel() // client walks away mid-request
	if err := <-errc; err == nil {
		t.Fatal("cancelled client request reported success")
	}
	waitUntil(t, "aborted request to unwind", func() bool { return srv.Inflight() == 0 })
	if st := sched.Stats(); st.Executed != 0 {
		t.Fatalf("aborted request executed %d point(s); the abort was not clean", st.Executed)
	}

	// The same point served fresh afterwards succeeds and persists.
	resp := postJSON(t, ts.URL+"/point", PointRequest{Dataset: "YT", Algo: "PR", Config: "sd"})
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-abort request status = %d, body %s", resp.StatusCode, body)
	}

	// A fresh scheduler over the same directory must read the entry
	// back — the store holds a complete, decodable document, never a
	// torn one.
	d, _ := graph.DatasetByName("YT")
	p, _ := algo.ByName("PR")
	w, err := core.WorkloadFor(d, p)
	if err != nil {
		t.Fatal(err)
	}
	sched2 := cache.New(cache.Config{Dir: dir})
	res, err := sched2.SimulateCtx(context.Background(), core.SRAMDRAM(), w)
	if err != nil {
		t.Fatal(err)
	}
	if st := sched2.Stats(); st.DiskHits != 1 || st.Executed != 0 {
		t.Errorf("fresh scheduler stats = %+v, want one disk hit and zero executions", st)
	}
	got, _ := cache.EncodeResult(res)
	if !bytes.Equal(got, body) {
		t.Error("disk-restored result differs from the served bytes")
	}
}

// TestRegisterMetricsFamilies pins the exposition contract: every
// hyve_serve_* family announces at startup, lints clean, and
// serve.inflight is typed as a gauge.
func TestRegisterMetricsFamilies(t *testing.T) {
	reg := obs.NewRegistry()
	RegisterMetrics(reg)
	var buf bytes.Buffer
	if err := obs.WriteProm(&buf, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	doc, errs := obs.LintProm(bytes.NewReader(buf.Bytes()))
	for _, e := range errs {
		t.Errorf("lint: %v", e)
	}
	for _, fam := range []string{
		"hyve_serve_requests_admitted_total",
		"hyve_serve_requests_rejected_total",
		"hyve_serve_breaker_rejected_total",
		"hyve_serve_breaker_open",
		"hyve_serve_inflight",
		"hyve_serve_points_served_total",
		"hyve_serve_drains_total",
	} {
		if _, ok := doc.Types[fam]; !ok {
			t.Errorf("family %s absent from a fresh registration:\n%s", fam, buf.String())
		}
	}
	if typ := doc.Types["hyve_serve_inflight"]; typ != "gauge" {
		t.Errorf("hyve_serve_inflight typed %q, want gauge (it counts down)", typ)
	}
}

// TestHealthzOK is the smoke probe contract.
func TestHealthzOK(t *testing.T) {
	srv := newTestServer(t, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"ok"`) {
		t.Errorf("healthz = %d %s, want 200 ok", resp.StatusCode, body)
	}
}

// TestPointGETQueryParams pins the curl-friendly GET form.
func TestPointGETQueryParams(t *testing.T) {
	srv := newTestServer(t, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/point?dataset=YT&algo=PR&config=sd")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET point = %d, body %s", resp.StatusCode, body)
	}
	want, _ := cache.EncodeResult(smallResult(t))
	if !bytes.Equal(body, want) {
		t.Error("GET body is not the canonical result document")
	}
}

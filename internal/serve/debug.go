package serve

import (
	"context"
	"expvar"
	"net/http"
	"net/http/pprof"
	"time"

	"repro/internal/cache"
	"repro/internal/obs"
)

// Shared HTTP wiring for every process that exposes the introspection
// surface — hyve-serve mounts it next to its API, hyve-bench and
// hyve-check behind -pprof. Centralizing it fixes what the CLIs used to
// get wrong: a bare http.ListenAndServe on the default mux has no
// ReadHeaderTimeout (one slowloris connection per worker pins the
// listener) and no shutdown path (the goroutine leaks past the run).

// DebugMux returns a mux serving the full introspection surface:
// /metrics (Prometheus text), /debug/vars (expvar), /debug/flight,
// /debug/trace, and /debug/pprof/* — explicitly registered, so nothing
// rides on the global DefaultServeMux.
func DebugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", obs.Metrics().PromHandler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.Handle("/debug/flight", obs.FlightHandler())
	mux.Handle("/debug/trace", obs.TraceHandler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// NewHTTPServer returns an http.Server configured the way every hyve
// process should listen: a ReadHeaderTimeout so a slow-header client
// cannot hold a connection open indefinitely (slowloris), an idle
// timeout reclaiming dead keep-alives, and no WriteTimeout — sweep
// responses stream for as long as the simulation runs, bounded by the
// per-request deadline instead.
func NewHTTPServer(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
}

// DebugServer wires the standard observability stack (expvar + metrics
// recorder, span tracing, cache metric families) and returns a
// configured server for the debug mux, started by the caller and shut
// down on drain:
//
//	srv := serve.DebugServer(addr)
//	go srv.ListenAndServe()
//	defer serve.ShutdownServer(srv, 5*time.Second)
func DebugServer(addr string) *http.Server {
	obs.SetDefault(obs.Multi(obs.Expvar(), obs.Metrics()))
	obs.EnableTracing(0)
	cache.RegisterMetrics(obs.Default())
	return NewHTTPServer(addr, DebugMux())
}

// ShutdownServer drains srv gracefully within timeout: the listener
// closes immediately, in-flight requests get until the deadline, then
// the server is forcibly closed. A nil srv is a no-op.
func ShutdownServer(srv *http.Server, timeout time.Duration) {
	if srv == nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		_ = srv.Close()
	}
}

package serve

import (
	"strconv"
	"sync"
	"time"
)

// Snowflake-style run identifiers: 64 bits packing a millisecond
// timestamp, a node id, and a per-millisecond sequence, so ids minted by
// one process are unique, ordered by time, and cheap — no coordination,
// no allocation beyond the formatted string. The layout follows the
// classic scheme (41 timestamp bits, 10 node bits, 12 sequence bits),
// which gives 4096 ids per node per millisecond for ~69 years from the
// epoch below.
const (
	snowNodeBits = 10
	snowSeqBits  = 12
	snowNodeMax  = 1<<snowNodeBits - 1
	snowSeqMax   = 1<<snowSeqBits - 1
)

// snowEpoch is the custom epoch (2026-01-01T00:00:00Z) run ids count
// milliseconds from; a fixed recent epoch keeps the timestamp inside 41
// bits for decades.
var snowEpoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// Snowflake mints run ids. The zero value is not ready; use
// NewSnowflake. Safe for concurrent use.
type Snowflake struct {
	mu   sync.Mutex
	node uint64
	last int64 // ms since epoch of the most recent id
	seq  uint64
	now  func() time.Time // injectable for tests
}

// NewSnowflake returns a generator stamping node (truncated to 10 bits)
// into every id.
func NewSnowflake(node uint64) *Snowflake {
	return &Snowflake{node: node & snowNodeMax, now: time.Now}
}

// Next mints one id. Within a single millisecond ids differ by
// sequence; when the sequence saturates, Next spins to the next
// millisecond. A clock stepping backwards never reissues an id: the
// timestamp is pinned to the highest value seen.
func (s *Snowflake) Next() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	ms := s.now().Sub(snowEpoch).Milliseconds()
	if ms < s.last {
		ms = s.last // monotone under clock regression
	}
	if ms == s.last {
		s.seq = (s.seq + 1) & snowSeqMax
		if s.seq == 0 {
			for ms <= s.last {
				ms = s.now().Sub(snowEpoch).Milliseconds()
			}
		}
	} else {
		s.seq = 0
	}
	s.last = ms
	return uint64(ms)<<(snowNodeBits+snowSeqBits) | s.node<<snowSeqBits | s.seq
}

// NextString is Next formatted the way run ids appear on the wire and
// in spans: lowercase hex, fixed 16 digits.
func (s *Snowflake) NextString() string {
	id := s.Next()
	const hexDigits = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hexDigits[id&0xf]
		id >>= 4
	}
	return string(b[:])
}

// SnowflakeTime recovers the wall-clock millisecond a run id was minted
// at — useful when correlating server logs with client-held ids.
func SnowflakeTime(id uint64) time.Time {
	ms := int64(id >> (snowNodeBits + snowSeqBits))
	return snowEpoch.Add(time.Duration(ms) * time.Millisecond)
}

// ParseRunID parses a NextString-formatted id back to its integer form.
func ParseRunID(s string) (uint64, error) {
	return strconv.ParseUint(s, 16, 64)
}

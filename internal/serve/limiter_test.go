package serve

import (
	"testing"
	"time"
)

// fakeClock is an injectable time source shared by the limiter,
// breaker, and snowflake tests.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)}
}
func (c *fakeClock) now() time.Time           { return c.t }
func (c *fakeClock) advance(d time.Duration)  { c.t = c.t.Add(d) }

func TestLimiterSpendsAndRefills(t *testing.T) {
	clk := newFakeClock()
	l := NewLimiter(10, 5) // 10 tokens/s, bucket of 5
	l.now = clk.now
	l.last = clk.now()

	for i := 0; i < 5; i++ {
		if ok, _ := l.Allow(); !ok {
			t.Fatalf("request %d rejected with a full bucket", i)
		}
	}
	ok, retry := l.Allow()
	if ok {
		t.Fatal("6th request admitted from an empty bucket")
	}
	if want := 100 * time.Millisecond; retry != want {
		t.Errorf("retryAfter = %v, want %v (1 token at 10/s)", retry, want)
	}

	clk.advance(100 * time.Millisecond) // exactly one token refilled
	if ok, _ := l.Allow(); !ok {
		t.Error("request rejected after the refill interval it was told to wait")
	}
	if ok, _ := l.Allow(); ok {
		t.Error("second request admitted off a single refilled token")
	}
}

func TestLimiterSweepSpendsPerPoint(t *testing.T) {
	clk := newFakeClock()
	l := NewLimiter(10, 10)
	l.now = clk.now
	l.last = clk.now()

	if ok, _ := l.AllowN(8); !ok {
		t.Fatal("8-point sweep rejected with 10 tokens banked")
	}
	if ok, _ := l.AllowN(8); ok {
		t.Fatal("second 8-point sweep admitted with only 2 tokens left")
	}
	if ok, _ := l.AllowN(2); !ok {
		t.Error("2-point request rejected with 2 tokens left")
	}
}

func TestLimiterOversizedRequestReportsFiniteHorizon(t *testing.T) {
	clk := newFakeClock()
	l := NewLimiter(10, 10)
	l.now = clk.now
	l.last = clk.now()
	l.tokens = 0

	// A request larger than the burst can never fully accumulate; the
	// deficit is capped at the bucket so the hint stays finite.
	ok, retry := l.AllowN(1000)
	if ok {
		t.Fatal("1000-point request admitted against a 10-token bucket")
	}
	if want := time.Second; retry != want {
		t.Errorf("retryAfter = %v, want %v (full bucket at 10/s)", retry, want)
	}
}

func TestLimiterDefaultsAndNil(t *testing.T) {
	l := NewLimiter(0, 0)
	if l.rate != 50 || l.burst != 100 {
		t.Errorf("defaults = %g/%g, want 50/100", l.rate, l.burst)
	}
	var nilL *Limiter
	if ok, _ := nilL.AllowN(1_000_000); !ok {
		t.Error("nil limiter must admit everything")
	}
}

package serve

import (
	"errors"
	"testing"
	"time"
)

func newTestBreaker(clk *fakeClock) *Breaker {
	b := NewBreaker(3, 10*time.Second)
	b.now = clk.now
	return b
}

func TestBreakerTripsOnConsecutiveFailures(t *testing.T) {
	clk := newFakeClock()
	b := newTestBreaker(clk)
	boom := errors.New("boom")

	// Two failures, then a success: the consecutive counter resets.
	for i := 0; i < 2; i++ {
		b.Record(boom)
	}
	b.Record(nil)
	for i := 0; i < 2; i++ {
		b.Record(boom)
	}
	if b.State() != BreakerClosed {
		t.Fatal("breaker tripped on non-consecutive failures")
	}

	b.Record(boom) // third consecutive
	if b.State() != BreakerOpen {
		t.Fatalf("state after threshold failures = %v, want open", b.State())
	}
	ok, retry := b.Allow()
	if ok {
		t.Fatal("open breaker admitted an execution")
	}
	if retry <= 0 || retry > 10*time.Second {
		t.Errorf("retryAfter = %v, want within (0, cooldown]", retry)
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	clk := newFakeClock()
	boom := errors.New("boom")

	trip := func() *Breaker {
		b := newTestBreaker(clk)
		for i := 0; i < 3; i++ {
			b.Record(boom)
		}
		return b
	}

	// Probe fails: re-open for a fresh cooldown.
	b := trip()
	clk.advance(10 * time.Second)
	if ok, _ := b.Allow(); !ok {
		t.Fatal("cooled-down breaker refused the half-open probe")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state during probe = %v, want half-open", b.State())
	}
	if ok, _ := b.Allow(); ok {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	b.Record(boom)
	if b.State() != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", b.State())
	}
	if ok, _ := b.Allow(); ok {
		t.Fatal("breaker admitted immediately after a failed probe")
	}

	// Probe succeeds: close and forget the failure history.
	b = trip()
	clk.advance(10 * time.Second)
	if ok, _ := b.Allow(); !ok {
		t.Fatal("cooled-down breaker refused the probe")
	}
	b.Record(nil)
	if b.State() != BreakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", b.State())
	}
	if ok, _ := b.Allow(); !ok {
		t.Error("closed breaker rejected an execution")
	}
}

func TestBreakerSetKeysIndependently(t *testing.T) {
	set := newBreakerSet(1, time.Minute)
	set.get("TW").Record(errors.New("wedged"))
	if got := set.get("TW").State(); got != BreakerOpen {
		t.Fatalf("TW breaker = %v, want open", got)
	}
	if got := set.get("YT").State(); got != BreakerClosed {
		t.Fatalf("YT breaker = %v, want closed (datasets must not share trips)", got)
	}
	if n := set.openCount(); n != 1 {
		t.Errorf("openCount = %d, want 1", n)
	}
}

func TestBreakerNilSafe(t *testing.T) {
	var b *Breaker
	if ok, _ := b.Allow(); !ok {
		t.Error("nil breaker must admit")
	}
	b.Record(errors.New("x")) // must not panic
	if b.State() != BreakerClosed {
		t.Error("nil breaker state != closed")
	}
}

package serve

import (
	"math"
	"sync"
	"time"
)

// Limiter is a token-bucket admission controller: tokens refill at Rate
// per second up to Burst, and every admitted unit of work spends one.
// When the bucket cannot cover a request the limiter rejects it and
// says how long until it could — the Retry-After the HTTP layer sends
// with a 429, so well-behaved clients back off by exactly the refill
// schedule instead of hammering.
//
// The unit is a simulation point, not a request: a sweep of n points
// spends n tokens at admission, so a 1000-point sweep draws a
// proportionate share of the budget rather than slipping in as one
// cheap request.
type Limiter struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64 // bucket capacity
	tokens float64
	last   time.Time
	now    func() time.Time // injectable for tests
}

// NewLimiter builds a limiter refilling rate tokens/second with
// capacity burst. Nonpositive values fall back to 50/s and 100.
func NewLimiter(rate float64, burst int) *Limiter {
	if rate <= 0 {
		rate = 50
	}
	if burst <= 0 {
		burst = 100
	}
	l := &Limiter{rate: rate, burst: float64(burst), now: time.Now}
	l.tokens = l.burst
	l.last = l.now()
	return l
}

// AllowN spends n tokens if the bucket holds them. On rejection it
// returns how long until n tokens will have accumulated (capped at the
// time to fill the bucket from empty, so a request larger than the
// burst reports the honest "never under this budget" horizon rather
// than infinity).
func (l *Limiter) AllowN(n int) (ok bool, retryAfter time.Duration) {
	if l == nil || n <= 0 {
		return true, 0
	}
	need := float64(n)
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	l.tokens = math.Min(l.burst, l.tokens+now.Sub(l.last).Seconds()*l.rate)
	l.last = now
	if l.tokens >= need {
		l.tokens -= need
		return true, 0
	}
	deficit := math.Min(need, l.burst) - l.tokens
	return false, time.Duration(math.Ceil(deficit/l.rate*float64(time.Second)))
}

// Allow is AllowN(1).
func (l *Limiter) Allow() (bool, time.Duration) { return l.AllowN(1) }

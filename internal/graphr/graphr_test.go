package graphr

import (
	"testing"

	"repro/internal/algo"
	"repro/internal/core"
	"repro/internal/graph"
)

func testWorkload(t *testing.T, progName string) core.Workload {
	t.Helper()
	g, err := graph.GenerateRMAT(2048, 16384, graph.DefaultRMAT, 123)
	if err != nil {
		t.Fatal(err)
	}
	p, err := algo.ByName(progName)
	if err != nil {
		t.Fatal(err)
	}
	if p.NeedsWeights() {
		graph.AttachUniformWeights(g, 4, 55)
	}
	return core.Workload{DatasetName: "test", Graph: g, Program: p}
}

func simulate(t *testing.T, cfg Config, w core.Workload) *Result {
	t.Helper()
	r, err := Simulate(cfg, w)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	return r
}

func TestValidation(t *testing.T) {
	bad := Default()
	bad.Parallel = 0
	if bad.Validate() == nil {
		t.Error("zero parallelism accepted")
	}
	bad = Default()
	bad.BlockDim = 0
	if bad.Validate() == nil {
		t.Error("zero block dim accepted")
	}
	w := testWorkload(t, "PR")
	if _, err := Simulate(Default(), core.Workload{Program: w.Program}); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := Simulate(Default(), core.Workload{Graph: w.Graph}); err == nil {
		t.Error("nil program accepted")
	}
}

func TestReportBasics(t *testing.T) {
	w := testWorkload(t, "PR")
	r := simulate(t, Default(), w)
	if r.Report.Time <= 0 || r.Report.Energy.Total() <= 0 {
		t.Fatal("non-positive time or energy")
	}
	if r.Report.Iterations != 10 {
		t.Errorf("PR iterations = %d, want 10", r.Report.Iterations)
	}
	if r.Detail.Navg <= 0 || r.Detail.NonEmptyBlocks <= 0 {
		t.Error("occupancy not computed")
	}
	// R-MAT block occupancy mirrors Table 1's small values.
	if r.Detail.Navg > 8 {
		t.Errorf("Navg = %.2f implausibly dense", r.Detail.Navg)
	}
}

// §6.4's conclusion: programming the crossbar dominates — GraphR's
// logic (crossbar) energy per edge must dwarf HyVE's CMOS PU energy.
func TestCrossbarDominatesEnergy(t *testing.T) {
	w := testWorkload(t, "PR")
	r := simulate(t, Default(), w)
	logicShare := r.Report.Energy.Fraction(4 /* Logic */)
	if logicShare < 0.5 {
		t.Errorf("crossbar share = %.2f, expected programming to dominate", logicShare)
	}
	perEdge := float64(r.Report.Energy.Total()) / float64(r.Report.EdgesProcessed)
	// ≥ 4 gangs × 3.91 nJ of programming per edge.
	if perEdge < 4*3910 {
		t.Errorf("per-edge energy %v pJ below the programming floor", perEdge)
	}
}

// §7.4.3: HyVE beats GraphR on delay, energy, and EDP.
func TestHyVEBeatsGraphR(t *testing.T) {
	for _, name := range []string{"PR", "BFS", "CC", "SSSP", "SpMV"} {
		w := testWorkload(t, name)
		gr := simulate(t, Default(), w)
		hv, err := core.Simulate(core.HyVE(), w)
		if err != nil {
			t.Fatal(err)
		}
		if gr.Report.Time <= hv.Report.Time {
			t.Errorf("%s: GraphR not slower (%v vs %v)", name, gr.Report.Time, hv.Report.Time)
		}
		if gr.Report.Energy.Total() <= hv.Report.Energy.Total() {
			t.Errorf("%s: GraphR not more energy (%v vs %v)",
				name, gr.Report.Energy.Total(), hv.Report.Energy.Total())
		}
		if gr.Report.EDP() <= hv.Report.EDP() {
			t.Errorf("%s: GraphR not worse EDP", name)
		}
	}
}

// Non-MVM algorithms pay the row-by-row path (Eq. 12): more crossbar
// reads per block than the single ganged MVM.
func TestNonMVMCostsMore(t *testing.T) {
	wMVM := testWorkload(t, "PR")
	wRow := testWorkload(t, "CC")
	// Equalize iteration counts so the per-iteration structure compares.
	wMVM.Iterations = 5
	wRow.Iterations = 5
	mvm := simulate(t, Default(), wMVM)
	row := simulate(t, Default(), wRow)
	perIterMVM := float64(mvm.Report.Energy.Get(4)) / 5
	perIterRow := float64(row.Report.Energy.Get(4)) / 5
	if perIterRow <= perIterMVM {
		t.Errorf("row-wise logic energy %.0f not above MVM %.0f", perIterRow, perIterMVM)
	}
}

func TestParallelismSpeedsCompute(t *testing.T) {
	w := testWorkload(t, "PR")
	slow := Default()
	slow.Parallel = 1
	fast := Default()
	fast.Parallel = 64
	rs := simulate(t, slow, w)
	rf := simulate(t, fast, w)
	if rf.Detail.ComputeTime >= rs.Detail.ComputeTime {
		t.Error("parallelism did not cut compute time")
	}
	if rf.Report.Time >= rs.Report.Time {
		t.Error("parallelism did not cut total time")
	}
}

func TestIterationOverride(t *testing.T) {
	w := testWorkload(t, "BFS")
	w.Iterations = 4
	r := simulate(t, Default(), w)
	if r.Report.Iterations != 4 {
		t.Errorf("iterations = %d", r.Report.Iterations)
	}
	if want := int64(4) * int64(w.Graph.NumEdges()); r.Report.EdgesProcessed != want {
		t.Errorf("edges = %d, want %d", r.Report.EdgesProcessed, want)
	}
}

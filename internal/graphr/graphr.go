// Package graphr models GraphR (Song et al., HPCA'18), the prior
// ReRAM-based graph accelerator the paper compares against in §6 and
// §7.4. GraphR stores the graph in ReRAM main memory, cuts it into
// 8×8-vertex blocks, and processes each non-empty block by *programming*
// its edges into a ReRAM compute crossbar and then performing analog
// matrix-vector reads — MVM-shaped algorithms (PR, SpMV) with one ganged
// read per block (Eq. 11), everything else row-by-row with CMOS operators
// at the output ports (Eq. 12).
//
// The model implements exactly the equations and constants the paper
// uses: crossbar read 29.31 ns / 1.08 pJ, write 50.88 ns / 3.91 nJ,
// 4×4-bit cells per 16-bit value, register-file vertex buffers, and
// vertex traffic N_v,s = 16 × non-empty blocks (Eq. 9).
package graphr

import (
	"fmt"

	"repro/internal/algo"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/device/crossbar"
	"repro/internal/device/rram"
	"repro/internal/device/sram"
	"repro/internal/energy"
	"repro/internal/graph"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/units"
)

// Config selects the GraphR machine.
type Config struct {
	// Name labels reports.
	Name string
	// Parallel is the number of crossbar compute units working
	// concurrently (GraphR's graph-engine array).
	Parallel int
	// Crossbar is the compute-crossbar design point.
	Crossbar crossbar.Params
	// RRAM is the global (main) memory device; GraphR is an all-ReRAM
	// design.
	RRAM rram.Config
	// BlockDim is the vertex width of a block (8 in GraphR).
	BlockDim int
	// Recorder, when non-nil, receives the run's metrics (phase times,
	// per-component energy, block counts); nil falls back to the
	// process-global obs.Default().
	Recorder obs.Recorder
}

// recorder resolves the run's metrics sink.
func (c Config) recorder() obs.Recorder {
	if c.Recorder != nil {
		return c.Recorder
	}
	return obs.Default()
}

// Default returns the published GraphR configuration.
func Default() Config {
	return Config{
		Name:     "GraphR",
		Parallel: 32,
		Crossbar: crossbar.GraphRParams(),
		RRAM:     rram.DefaultConfig(),
		BlockDim: 8,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Parallel <= 0 {
		return fmt.Errorf("graphr: non-positive parallelism %d", c.Parallel)
	}
	if c.BlockDim <= 0 {
		return fmt.Errorf("graphr: non-positive block dimension %d", c.BlockDim)
	}
	return nil
}

// Detail exposes the model's intermediate quantities.
type Detail struct {
	NonEmptyBlocks int64
	Navg           float64 // Table 1's average edges per non-empty block
	Iterations     int
	ComputeTime    units.Time // crossbar program+read per iteration
	StreamTime     units.Time // edge stream per iteration
	VertexTime     units.Time // global vertex traffic per iteration
}

// Result is a completed GraphR simulation.
type Result struct {
	Report energy.Report
	Detail Detail
}

// Simulate runs the workload on the GraphR model.
func Simulate(cfg Config, w core.Workload) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if w.Graph == nil || w.Graph.NumVertices == 0 {
		return nil, graph.ErrEmptyGraph
	}
	if w.Program == nil {
		return nil, fmt.Errorf("graphr: workload has no program")
	}
	xbar, err := crossbar.New(cfg.Crossbar)
	if err != nil {
		return nil, err
	}
	chip, err := rram.New(cfg.RRAM)
	if err != nil {
		return nil, err
	}
	valueBytes := w.Program.ValueBytes()
	words := (valueBytes + 3) / 4

	fullV, fullE := w.FullVertices, w.FullEdges
	if fullV == 0 {
		fullV = int64(w.Graph.NumVertices)
	}
	if fullE == 0 {
		fullE = int64(w.Graph.NumEdges())
	}
	// GraphR's main memory is DIMM-organized like HyVE's edge memory.
	global, err := mem.NewRankedRegion("global", chip, fullE*graph.EdgeBytes+fullV*int64(valueBytes), 8)
	if err != nil {
		return nil, err
	}
	regfile, err := sram.NewRegisterFile(int64(2 * cfg.BlockDim * valueBytes))
	if err != nil {
		return nil, err
	}
	pu := device.NewCMOSPU()

	occ, err := partition.ComputeOccupancy(w.Graph, cfg.BlockDim)
	if err != nil {
		return nil, err
	}

	iters := w.Iterations
	var edgesProcessed int64
	if iters <= 0 {
		fr, err := algo.Run(w.Program, w.Graph)
		if err != nil {
			return nil, err
		}
		iters = fr.Iterations
		edgesProcessed = fr.EdgesProcessed
	} else {
		edgesProcessed = int64(iters) * int64(w.Graph.NumEdges())
	}

	e := float64(w.Graph.NumEdges())
	blocks := float64(occ.NonEmpty)

	var bd energy.Breakdown
	var d Detail
	d.NonEmptyBlocks = occ.NonEmpty
	d.Navg = occ.AvgEdgesPerBlk
	d.Iterations = iters

	// --- Per-iteration compute (the crossbars, charged to Logic: in
	// GraphR the crossbar *is* the processing unit, §6.4). Every edge is
	// programmed into a crossbar each time its block is processed.
	program := xbar.ProgramBlock(1).Times(e)
	var reads device.Cost
	var cmosOps device.Cost
	if w.Program.MVMBased() {
		reads = xbar.MVM().Times(blocks)
	} else {
		reads = xbar.RowWiseOps().Times(blocks)
		// Non-MVM algorithms still run a CMOS operator per edge at the
		// output ports (Eq. 12's E_op term).
		cmosOps = device.Cost{Latency: pu.Op().Latency, Energy: pu.Op().Energy}.Times(e)
	}
	compute := program.Plus(reads).Plus(cmosOps)
	bd.Add(energy.Logic, compute.Energy.Times(float64(iters)))
	d.ComputeTime = units.Time(float64(compute.Latency) / float64(cfg.Parallel))

	// --- Per-iteration edge stream from the global ReRAM.
	stream := global.SweepCost(int64(w.Graph.NumEdges())*graph.EdgeBytes, true, false)
	bd.Add(energy.EdgeMemory, stream.Energy.Times(float64(iters)))
	d.StreamTime = stream.Latency

	// --- Per-iteration vertex traffic: Eq. (9) N_v,s = 16·blocks reads,
	// plus one write per vertex, through the register files.
	seqVerts := 2 * float64(cfg.BlockDim) * blocks // 16 per block
	vload := global.SweepCost(int64(seqVerts)*int64(valueBytes), true, false)
	vstore := global.SweepCost(fullVtoLocal(w)*int64(valueBytes), true, true)
	bd.Add(energy.VertexMemoryOffChip, vload.Energy.Times(float64(iters))+vstore.Energy.Times(float64(iters)))
	d.VertexTime = vload.Latency + vstore.Latency

	// Register-file activity: per edge one source read and one
	// destination read-modify-write; per loaded vertex one fill write.
	rf := regfile.Read(false).Energy.Times(e*float64(words)) +
		(regfile.Read(false).Energy + regfile.Write(false).Energy).Times(e*float64(words)) +
		regfile.Write(false).Energy.Times(seqVerts*float64(words))
	bd.Add(energy.VertexMemoryOnChip, rf.Times(float64(iters)))

	// --- Time: compute overlaps the edge stream (program-while-stream);
	// vertex transfers serialize with processing, as in HyVE.
	iterTime := units.MaxTime(d.ComputeTime, d.StreamTime) + d.VertexTime
	total := iterTime.Times(float64(iters))

	// --- Background: global ReRAM (random-access role: not gateable,
	// §4.1) plus register files and crossbar periphery.
	bg := global.Background() +
		units.Power(float64(regfile.Background())*float64(cfg.Parallel)) +
		units.Power(float64(units.Milliwatt)*float64(cfg.Parallel)) // crossbar periphery, 1 mW/unit
	bd.Add(energy.EdgeMemory, bg.Over(total))

	rep := energy.Report{
		Config:         cfg.Name,
		Algorithm:      w.Program.Name(),
		Dataset:        w.DatasetName,
		Time:           total,
		Energy:         bd,
		EdgesProcessed: edgesProcessed,
		Iterations:     iters,
	}

	rec := cfg.recorder()
	rec.Count("graphr.runs", 1)
	rec.Count("graphr.blocks.nonempty", d.NonEmptyBlocks)
	rec.Count("graphr.edges.processed", edgesProcessed)
	rec.PhaseTime("graphr.phase.compute", d.ComputeTime.Times(float64(iters)))
	rec.PhaseTime("graphr.phase.stream", d.StreamTime.Times(float64(iters)))
	rec.PhaseTime("graphr.phase.vertex", d.VertexTime.Times(float64(iters)))
	rec.PhaseTime("graphr.time.total", total)
	for _, c := range energy.Components() {
		if e := bd.Get(c); e > 0 {
			rec.PhaseEnergy("graphr.energy."+c.String(), e)
		}
	}
	return &Result{Report: rep, Detail: d}, nil
}

// fullVtoLocal returns the per-iteration written vertex count (Eq. 7:
// every vertex written back once), at instance scale.
func fullVtoLocal(w core.Workload) int64 {
	return int64(w.Graph.NumVertices)
}

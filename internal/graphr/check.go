package graphr

import (
	"fmt"
	"math"

	"repro/internal/algo"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/device/crossbar"
	"repro/internal/partition"
	"repro/internal/units"
)

func relEq(a, b, tol float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	if scale := math.Max(math.Abs(a), math.Abs(b)); scale > 1 {
		diff /= scale
	}
	return diff <= tol && !math.IsNaN(diff)
}

// CheckModelVsEmulation holds the GraphR cost model (Eq. 9–16) against
// independent recomputations and, for PageRank at the paper's block
// geometry, against the functional bit-sliced crossbar emulation: block
// occupancy must match a fresh scan, the compute-time decomposition must
// reproduce from the crossbar design point, the total-time identity must
// hold, and the quantized crossbar ranks must track the float64 oracle.
func CheckModelVsEmulation(cfg Config, w core.Workload) error {
	r, err := Simulate(cfg, w)
	if err != nil {
		return err
	}
	d := &r.Detail
	for _, t := range []struct {
		name string
		v    units.Time
	}{
		{"total time", r.Report.Time},
		{"compute time", d.ComputeTime},
		{"stream time", d.StreamTime},
		{"vertex time", d.VertexTime},
	} {
		if t.v < 0 || math.IsNaN(float64(t.v)) || math.IsInf(float64(t.v), 0) {
			return fmt.Errorf("graphr: %s is %v", t.name, t.v)
		}
	}
	if e := r.Report.Energy.Total(); e < 0 || math.IsNaN(float64(e)) {
		return fmt.Errorf("graphr: total energy is %v", e)
	}

	occ, err := partition.ComputeOccupancy(w.Graph, cfg.BlockDim)
	if err != nil {
		return err
	}
	if d.NonEmptyBlocks != occ.NonEmpty {
		return fmt.Errorf("graphr: model saw %d non-empty blocks, occupancy scan says %d",
			d.NonEmptyBlocks, occ.NonEmpty)
	}
	if !relEq(d.Navg, occ.AvgEdgesPerBlk, 1e-12) {
		return fmt.Errorf("graphr: model Navg %v, occupancy scan says %v", d.Navg, occ.AvgEdgesPerBlk)
	}

	// Recompute the Eq. 11/12 compute term from the crossbar design point.
	xbar, err := crossbar.New(cfg.Crossbar)
	if err != nil {
		return err
	}
	e := float64(w.Graph.NumEdges())
	blocks := float64(occ.NonEmpty)
	compute := xbar.ProgramBlock(1).Times(e)
	if w.Program.MVMBased() {
		compute = compute.Plus(xbar.MVM().Times(blocks))
	} else {
		pu := device.NewCMOSPU()
		compute = compute.Plus(xbar.RowWiseOps().Times(blocks)).Plus(pu.Op().Times(e))
	}
	wantCompute := units.Time(float64(compute.Latency) / float64(cfg.Parallel))
	const tol = 1e-9
	if !relEq(float64(d.ComputeTime), float64(wantCompute), tol) {
		return fmt.Errorf("graphr: compute time %v, Eq. 11/12 recomputation says %v", d.ComputeTime, wantCompute)
	}

	iterTime := units.MaxTime(d.ComputeTime, d.StreamTime) + d.VertexTime
	if !relEq(float64(r.Report.Time), float64(iterTime.Times(float64(d.Iterations))), tol) {
		return fmt.Errorf("graphr: total time %v, want iteration time %v × %d",
			r.Report.Time, iterTime, d.Iterations)
	}

	// Functional fidelity: run PageRank through the quantized crossbar
	// emulation at the published 16-bit/4-cell geometry and require the
	// analog path to track the exact ranks.
	if pr, ok := w.Program.(*algo.PageRank); ok && cfg.BlockDim == 8 && pr.Warm == nil {
		q, err := NewQuantizer(16, 4, 1)
		if err != nil {
			return err
		}
		ranks, maxRel, err := PageRankCrossbar(w.Graph, q, pr.Damping, 3)
		if err != nil {
			return err
		}
		if maxRel > 0.10 {
			return fmt.Errorf("graphr: 16-bit crossbar PageRank error %.4f exceeds 10%%", maxRel)
		}
		var sum float64
		for _, rank := range ranks {
			if rank < 0 || math.IsNaN(rank) {
				return fmt.Errorf("graphr: crossbar produced rank %v", rank)
			}
			sum += rank
		}
		if sum <= 0 || sum > 1.5 {
			return fmt.Errorf("graphr: crossbar rank mass %v outside (0, 1.5]", sum)
		}
	}
	return nil
}

package graphr

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/partition"
)

// Functional emulation of GraphR's analog compute: values are quantized
// to ValueBits fixed point, bit-sliced over ValueBits/CellBits crossbar
// copies (§6.4: "GraphR uses 4 crossbars with 4-bit cells to perform
// 16-bit operations"), each slice performs an integer matrix-vector
// product (the digital stand-in for the analog current summation), and
// the slices recombine by shift-and-add. Running PageRank through this
// path quantifies the precision the crossbar actually delivers — the
// fidelity dimension the paper's energy model leaves implicit.

// Quantizer maps non-negative reals to ValueBits fixed point with a
// fixed scale, and slices them into CellBits planes.
type Quantizer struct {
	ValueBits int
	CellBits  int
	// Scale is the real value represented by the full-scale code.
	Scale float64
}

// NewQuantizer validates the geometry.
func NewQuantizer(valueBits, cellBits int, scale float64) (*Quantizer, error) {
	if valueBits <= 0 || valueBits > 30 || cellBits <= 0 || valueBits%cellBits != 0 {
		return nil, fmt.Errorf("graphr: bad quantizer geometry %d/%d", valueBits, cellBits)
	}
	if scale <= 0 {
		return nil, fmt.Errorf("graphr: non-positive scale %v", scale)
	}
	return &Quantizer{ValueBits: valueBits, CellBits: cellBits, Scale: scale}, nil
}

// Levels returns the code count.
func (q *Quantizer) Levels() uint32 { return 1 << q.ValueBits }

// Quantize clamps x to [0, Scale] and returns its code.
func (q *Quantizer) Quantize(x float64) uint32 {
	if x <= 0 {
		return 0
	}
	if x >= q.Scale {
		return q.Levels() - 1
	}
	return uint32(math.Round(x / q.Scale * float64(q.Levels()-1)))
}

// Dequantize inverts Quantize.
func (q *Quantizer) Dequantize(code uint32) float64 {
	return float64(code) / float64(q.Levels()-1) * q.Scale
}

// Slices splits a code into ValueBits/CellBits planes, least significant
// first.
func (q *Quantizer) Slices(code uint32) []uint32 {
	n := q.ValueBits / q.CellBits
	mask := uint32(1<<q.CellBits) - 1
	out := make([]uint32, n)
	for i := 0; i < n; i++ {
		out[i] = code >> (i * q.CellBits) & mask
	}
	return out
}

// Recombine shift-adds slice-plane dot products back into a full-width
// integer result.
func (q *Quantizer) Recombine(sliceSums []uint64) uint64 {
	var acc uint64
	for i, s := range sliceSums {
		acc += s << (i * q.CellBits)
	}
	return acc
}

// CrossbarMVM computes out[j] = Σ_i in[i]·cell[i][j] through the sliced
// planes: the matrix is stored sliced (as the four 4-bit crossbars hold
// it), inputs are applied full-width (GraphR drives DACs per row), and
// each plane's integer products recombine by shift-add.
func (q *Quantizer) CrossbarMVM(cells [][]uint32, in []uint32) []uint64 {
	dim := len(cells)
	out := make([]uint64, dim)
	planes := q.ValueBits / q.CellBits
	mask := uint32(1<<q.CellBits) - 1
	for p := 0; p < planes; p++ {
		shift := p * q.CellBits
		for i := 0; i < dim; i++ {
			v := uint64(in[i])
			if v == 0 {
				continue
			}
			row := cells[i]
			for j := 0; j < dim; j++ {
				g := uint64(row[j] >> shift & mask)
				if g != 0 {
					out[j] += (v * g) << shift
				}
			}
		}
	}
	return out
}

// PageRankCrossbar runs PageRank for `iters` iterations with all edge
// propagation performed through quantized 8×8 crossbar MVMs, and returns
// the ranks plus the maximum relative error against the float64 oracle.
func PageRankCrossbar(g *graph.Graph, q *Quantizer, damping float64, iters int) ([]float64, float64, error) {
	if g.NumVertices == 0 {
		return nil, 0, graph.ErrEmptyGraph
	}
	if iters <= 0 || damping <= 0 || damping >= 1 {
		return nil, 0, fmt.Errorf("graphr: bad PageRank parameters (iters=%d, damping=%v)", iters, damping)
	}
	const dim = 8
	n := g.NumVertices
	outDeg := g.OutDegrees()

	// Block directory: sparse 8×8 blocks holding 1/outdeg weights — what
	// GraphR programs into a crossbar per block.
	type blockKey struct{ bx, by uint32 }
	blocks := map[blockKey][][]uint32{}
	// Weight quantizer: weights are 1/outdeg ∈ (0, 1].
	wq, err := NewQuantizer(q.ValueBits, q.CellBits, 1)
	if err != nil {
		return nil, 0, err
	}
	for _, e := range g.Edges {
		k := blockKey{e.Src / dim, e.Dst / dim}
		b := blocks[k]
		if b == nil {
			b = make([][]uint32, dim)
			for i := range b {
				b[i] = make([]uint32, dim)
			}
			blocks[k] = b
		}
		// Multi-edges accumulate weight codes (saturating at full scale).
		w := wq.Quantize(1 / float64(outDeg[e.Src]))
		cell := &b[e.Src%dim][e.Dst%dim]
		if sum := *cell + w; sum < wq.Levels() {
			*cell = sum
		} else {
			*cell = wq.Levels() - 1
		}
	}

	// Iterate blocks in a fixed order: the per-vertex accumulation below
	// is float64 addition, and letting map order pick the association
	// perturbs maxRank — which sets the next iteration's quantizer scale
	// and can flip a code, making runs disagree in the fourth decimal.
	keys := make([]blockKey, 0, len(blocks))
	for k := range blocks {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].bx != keys[j].bx {
			return keys[i].bx < keys[j].bx
		}
		return keys[i].by < keys[j].by
	})

	rank := make([]float64, n)
	for v := range rank {
		rank[v] = 1 / float64(n)
	}
	// Rank quantizer scale: ranks stay below ~64/n on natural graphs;
	// rescale each iteration to the current maximum for full dynamic
	// range (GraphR's DAC reference voltage).
	for it := 0; it < iters; it++ {
		maxRank := 0.0
		for _, r := range rank {
			if r > maxRank {
				maxRank = r
			}
		}
		rq, err := NewQuantizer(q.ValueBits, q.CellBits, maxRank)
		if err != nil {
			return nil, 0, err
		}
		next := make([]float64, n)
		base := (1 - damping) / float64(n)
		for v := range next {
			next[v] = base
		}
		full := float64(uint64(rq.Levels()-1)) * float64(uint64(wq.Levels()-1))
		for _, k := range keys {
			cells := blocks[k]
			in := make([]uint32, dim)
			for i := 0; i < dim; i++ {
				v := int(k.bx)*dim + i
				if v < n {
					in[i] = rq.Quantize(rank[v])
				}
			}
			out := q.CrossbarMVM(cells, in)
			for j := 0; j < dim; j++ {
				u := int(k.by)*dim + j
				if u < n && out[j] > 0 {
					// Dequantize the integer dot product: codes multiply,
					// so the real value is out / (rankFull × weightFull)
					// × rankScale × weightScale.
					next[u] += damping * float64(out[j]) / full * maxRank
				}
			}
		}
		rank = next
	}

	// Oracle comparison.
	exact, err := exactPageRank(g, damping, iters)
	if err != nil {
		return nil, 0, err
	}
	maxRel := 0.0
	for v := range rank {
		if exact[v] == 0 {
			continue
		}
		if rel := math.Abs(rank[v]-exact[v]) / exact[v]; rel > maxRel {
			maxRel = rel
		}
	}
	return rank, maxRel, nil
}

func exactPageRank(g *graph.Graph, damping float64, iters int) ([]float64, error) {
	n := g.NumVertices
	outDeg := g.OutDegrees()
	rank := make([]float64, n)
	for v := range rank {
		rank[v] = 1 / float64(n)
	}
	for it := 0; it < iters; it++ {
		next := make([]float64, n)
		base := (1 - damping) / float64(n)
		for v := range next {
			next[v] = base
		}
		for _, e := range g.Edges {
			next[e.Dst] += damping * rank[e.Src] / float64(outDeg[e.Src])
		}
		rank = next
	}
	return rank, nil
}

// BlockOccupancyOf re-exports the Table 1 statistic for callers that
// already hold a graph (keeps the GraphR package self-contained).
func BlockOccupancyOf(g *graph.Graph, dim int) (partition.Occupancy, error) {
	return partition.ComputeOccupancy(g, dim)
}

package graphr

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestQuantizerValidation(t *testing.T) {
	for _, bad := range [][2]int{{0, 4}, {16, 0}, {16, 5}, {31, 1}} {
		if _, err := NewQuantizer(bad[0], bad[1], 1); err == nil {
			t.Errorf("geometry %v accepted", bad)
		}
	}
	if _, err := NewQuantizer(16, 4, 0); err == nil {
		t.Error("zero scale accepted")
	}
}

func TestQuantizeRoundTrip(t *testing.T) {
	q, err := NewQuantizer(16, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if q.Quantize(-1) != 0 || q.Quantize(0) != 0 {
		t.Error("non-positive values must map to 0")
	}
	if q.Quantize(5) != q.Levels()-1 {
		t.Error("overscale values must clamp to full scale")
	}
	// Dequantize(Quantize(x)) within half an LSB.
	lsb := 2.0 / float64(q.Levels()-1)
	for _, x := range []float64{0.001, 0.5, 1.0, 1.999} {
		back := q.Dequantize(q.Quantize(x))
		if math.Abs(back-x) > lsb {
			t.Errorf("round trip of %v → %v off by more than an LSB", x, back)
		}
	}
}

// Slicing and recombining is the identity on codes.
func TestSliceRecombineIdentity(t *testing.T) {
	q, err := NewQuantizer(16, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	f := func(code uint16) bool {
		slices := q.Slices(uint32(code))
		if len(slices) != 4 {
			return false
		}
		sums := make([]uint64, len(slices))
		for i, s := range slices {
			if s > 15 {
				return false
			}
			sums[i] = uint64(s)
		}
		return q.Recombine(sums) == uint64(code)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// The bit-sliced MVM must equal the direct integer MVM exactly: slicing
// is algebraically lossless; only quantization loses information.
func TestCrossbarMVMMatchesIntegerMVM(t *testing.T) {
	q, err := NewQuantizer(16, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := graph.NewRNG(9)
	const dim = 8
	cells := make([][]uint32, dim)
	in := make([]uint32, dim)
	for i := range cells {
		cells[i] = make([]uint32, dim)
		for j := range cells[i] {
			cells[i][j] = uint32(rng.Intn(1 << 16))
		}
		in[i] = uint32(rng.Intn(1 << 16))
	}
	got := q.CrossbarMVM(cells, in)
	for j := 0; j < dim; j++ {
		var want uint64
		for i := 0; i < dim; i++ {
			want += uint64(in[i]) * uint64(cells[i][j])
		}
		if got[j] != want {
			t.Fatalf("column %d: sliced %d vs direct %d", j, got[j], want)
		}
	}
}

// 16-bit crossbar PageRank tracks the float64 oracle closely; 8-bit
// drifts further — quantization precision is the fidelity price of the
// analog compute.
func TestPageRankCrossbarPrecision(t *testing.T) {
	g, err := graph.GenerateRMAT(1024, 8192, graph.DefaultRMAT, 12)
	if err != nil {
		t.Fatal(err)
	}
	q16, err := NewQuantizer(16, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	ranks, err16, err := PageRankCrossbar(g, q16, 0.85, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranks) != g.NumVertices {
		t.Fatal("wrong rank vector size")
	}
	if err16 > 0.05 {
		t.Errorf("16-bit crossbar PR max relative error %.4f, want ≤5%%", err16)
	}
	q8, err := NewQuantizer(8, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, err8, err := PageRankCrossbar(g, q8, 0.85, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err8 <= err16 {
		t.Errorf("8-bit error %.4f not above 16-bit %.4f", err8, err16)
	}
}

func TestPageRankCrossbarValidation(t *testing.T) {
	q, _ := NewQuantizer(16, 4, 1)
	if _, _, err := PageRankCrossbar(&graph.Graph{}, q, 0.85, 10); err == nil {
		t.Error("empty graph accepted")
	}
	g, _ := graph.GenerateChain(10)
	if _, _, err := PageRankCrossbar(g, q, 0.85, 0); err == nil {
		t.Error("zero iterations accepted")
	}
	if _, _, err := PageRankCrossbar(g, q, 1.5, 5); err == nil {
		t.Error("bad damping accepted")
	}
}

func TestBlockOccupancyOf(t *testing.T) {
	g, _ := graph.GenerateChain(16)
	occ, err := BlockOccupancyOf(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	if occ.TotalEdges != int64(g.NumEdges()) {
		t.Error("occupancy lost edges")
	}
}

// TestPageRankCrossbarDeterministic pins a verification-found flake:
// the emulation used to accumulate rank contributions in block-map
// iteration order, and the float64 reassociation noise occasionally
// flipped a quantization code through the next iteration's rescaled
// quantizer — two runs on the same graph could disagree in the fourth
// decimal. Map order changes per range loop, so repeated in-process
// runs exercise it.
func TestPageRankCrossbarDeterministic(t *testing.T) {
	g, err := graph.GenerateRMAT(512, 4096, graph.DefaultRMAT, 3)
	if err != nil {
		t.Fatal(err)
	}
	q, err := NewQuantizer(8, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	ranks0, rel0, err := PageRankCrossbar(g, q, 0.85, 5)
	if err != nil {
		t.Fatal(err)
	}
	for run := 1; run <= 5; run++ {
		ranks, rel, err := PageRankCrossbar(g, q, 0.85, 5)
		if err != nil {
			t.Fatal(err)
		}
		if rel != rel0 {
			t.Fatalf("run %d: maxRel %v, first run said %v", run, rel, rel0)
		}
		for v := range ranks {
			if ranks[v] != ranks0[v] {
				t.Fatalf("run %d: rank[%d] = %v, first run said %v", run, v, ranks[v], ranks0[v])
			}
		}
	}
}

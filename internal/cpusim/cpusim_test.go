package cpusim

import (
	"testing"

	"repro/internal/algo"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/units"
)

func testWorkload(t *testing.T) core.Workload {
	t.Helper()
	g, err := graph.GenerateRMAT(2048, 16384, graph.DefaultRMAT, 123)
	if err != nil {
		t.Fatal(err)
	}
	return core.Workload{DatasetName: "test", Graph: g, Program: algo.NewPageRank()}
}

func TestValidate(t *testing.T) {
	for _, m := range []Model{NXgraph(), Galois()} {
		if err := m.Validate(); err != nil {
			t.Errorf("%s invalid: %v", m.Name, err)
		}
	}
	bad := NXgraph()
	bad.Cores = 0
	if bad.Validate() == nil {
		t.Error("zero cores accepted")
	}
	bad = NXgraph()
	bad.BytesPerEdge = 0
	if bad.Validate() == nil {
		t.Error("zero traffic accepted")
	}
	bad = NXgraph()
	bad.PackagePower = 0
	if bad.Validate() == nil {
		t.Error("zero power accepted")
	}
}

func TestPerEdgeTimeIsMaxOfBounds(t *testing.T) {
	m := NXgraph()
	// NXgraph at these parameters is memory-bound: 40 B / 17 GB/s ≈ 2.35 ns.
	got := m.PerEdgeTime().Nanoseconds()
	if got < 2 || got > 3 {
		t.Errorf("per-edge time = %v ns, want ≈2.35 (memory-bound)", got)
	}
	// Starve bandwidth: the memory bound must take over proportionally.
	m.MemBandwidthGBs = 1
	if m.PerEdgeTime().Nanoseconds() < 39 {
		t.Errorf("per-edge time did not follow the memory bound: %v ns", m.PerEdgeTime().Nanoseconds())
	}
	// Compute bound: huge bandwidth, one core.
	m = NXgraph()
	m.MemBandwidthGBs = 1000
	m.Cores = 1
	want := m.InstrPerEdge / (m.IPC * m.ClockGHz)
	if got := m.PerEdgeTime().Nanoseconds(); got < want*0.99 || got > want*1.01 {
		t.Errorf("compute-bound per-edge time = %v ns, want %v", got, want)
	}
}

func TestGaloisFasterThanNXgraph(t *testing.T) {
	if Galois().PerEdgeTime() >= NXgraph().PerEdgeTime() {
		t.Error("the optimized baseline must be faster")
	}
}

func TestSimulateReport(t *testing.T) {
	w := testWorkload(t)
	r, err := Simulate(NXgraph(), w)
	if err != nil {
		t.Fatal(err)
	}
	if r.Iterations != 10 {
		t.Errorf("iterations = %d", r.Iterations)
	}
	wantTime := NXgraph().PerEdgeTime().Times(float64(r.EdgesProcessed))
	if r.Time != wantTime {
		t.Errorf("time = %v, want %v", r.Time, wantTime)
	}
	// Average power equals package + DRAM.
	wantPower := (85 + 6.0)
	if got := r.AvgPower().Watts(); got < wantPower*0.999 || got > wantPower*1.001 {
		t.Errorf("avg power = %v W, want %v", got, wantPower)
	}
}

// The headline anchor: the accelerator beats the CPU by about two orders
// of magnitude in MTEPS/W.
func TestTwoOrdersOfMagnitudeGap(t *testing.T) {
	w := testWorkload(t)
	cpu, err := Simulate(NXgraph(), w)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := core.Simulate(core.HyVEOpt(), w)
	if err != nil {
		t.Fatal(err)
	}
	ratio := acc.Report.MTEPSPerWatt() / cpu.MTEPSPerWatt()
	if ratio < 30 || ratio > 3000 {
		t.Errorf("HyVE-opt/CPU efficiency ratio = %.0f, want order-100", ratio)
	}
	// CPU efficiency itself is single-digit MTEPS/W on a ~90 W machine.
	if cpu.MTEPSPerWatt() > 30 {
		t.Errorf("CPU efficiency %.1f MTEPS/W implausibly high", cpu.MTEPSPerWatt())
	}
}

func TestSimulateValidation(t *testing.T) {
	w := testWorkload(t)
	if _, err := Simulate(NXgraph(), core.Workload{Program: w.Program}); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := Simulate(NXgraph(), core.Workload{Graph: w.Graph}); err == nil {
		t.Error("nil program accepted")
	}
	bad := NXgraph()
	bad.IPC = 0
	if _, err := Simulate(bad, w); err == nil {
		t.Error("invalid model accepted")
	}
}

func TestIterationOverride(t *testing.T) {
	w := testWorkload(t)
	w.Iterations = 2
	r, err := Simulate(Galois(), w)
	if err != nil {
		t.Fatal(err)
	}
	if r.Iterations != 2 || r.EdgesProcessed != 2*int64(w.Graph.NumEdges()) {
		t.Errorf("override ignored: %d iters, %d edges", r.Iterations, r.EdgesProcessed)
	}
	_ = units.Time(0)
}

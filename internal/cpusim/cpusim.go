// Package cpusim models the paper's CPU reference points: a hexa-core
// Intel i7 at 3.3 GHz running NXgraph-style in-memory edge-centric
// processing ("CPU+DRAM") and Galois ("CPU+DRAM-opt"), with power
// measured the way the authors measured it — whole-package plus DRAM —
// via Intel PCM (§7.1). The model reproduces that measurement from first
// principles: per-edge time from the memory-traffic bound of an
// edge-centric sweep, package power from the processor's running draw.
//
// The CPU exists in the paper only to anchor the "two orders of
// magnitude" headline; it needs the right order, not cycle accuracy.
package cpusim

import (
	"fmt"

	"repro/internal/algo"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/graph"
	"repro/internal/units"
)

// Model parameterizes a software graph-processing baseline.
type Model struct {
	// Name labels reports ("CPU+DRAM", "CPU+DRAM-opt").
	Name string
	// Cores and ClockGHz describe the processor (hexa-core i7, 3.3 GHz).
	Cores    int
	ClockGHz float64
	// InstrPerEdge and IPC bound the compute rate of the inner loop.
	InstrPerEdge float64
	IPC          float64
	// BytesPerEdge is the effective memory traffic per traversed edge:
	// the 8-byte edge plus the cache-miss-weighted share of 64-byte
	// vertex lines. Locality-optimized systems (Galois) miss less.
	BytesPerEdge float64
	// MemBandwidthGBs is the sustained DRAM bandwidth.
	MemBandwidthGBs float64
	// PackagePower and DRAMPower are the PCM-measured running draws.
	PackagePower units.Power
	DRAMPower    units.Power
}

// NXgraph returns the paper's CPU+DRAM baseline: NXgraph-like in-memory
// edge-centric processing, 8 threads pinned to cores.
func NXgraph() Model {
	return Model{
		Name:            "CPU+DRAM",
		Cores:           6,
		ClockGHz:        3.3,
		InstrPerEdge:    12,
		IPC:             2,
		BytesPerEdge:    8 + 32, // edge stream + ~half a line of vertex misses
		MemBandwidthGBs: 17,
		PackagePower:    units.Power(85 * float64(units.Watt)),
		DRAMPower:       units.Power(6 * float64(units.Watt)),
	}
}

// Galois returns the paper's CPU+DRAM-opt baseline: the
// state-of-the-art in-memory system with better locality and a leaner
// inner loop.
func Galois() Model {
	m := NXgraph()
	m.Name = "CPU+DRAM-opt"
	m.InstrPerEdge = 9
	m.BytesPerEdge = 8 + 20
	return m
}

// Validate rejects non-physical parameters.
func (m Model) Validate() error {
	if m.Cores <= 0 || m.ClockGHz <= 0 || m.IPC <= 0 {
		return fmt.Errorf("cpusim: bad core parameters %+v", m)
	}
	if m.InstrPerEdge <= 0 || m.BytesPerEdge <= 0 || m.MemBandwidthGBs <= 0 {
		return fmt.Errorf("cpusim: bad per-edge parameters %+v", m)
	}
	if m.PackagePower <= 0 {
		return fmt.Errorf("cpusim: bad power %+v", m)
	}
	return nil
}

// PerEdgeTime is the steady-state wall time per traversed edge: the
// worse of the compute bound (instructions across cores) and the memory
// bound (bytes over sustained bandwidth).
func (m Model) PerEdgeTime() units.Time {
	computeNs := m.InstrPerEdge / (m.IPC * m.ClockGHz * float64(m.Cores))
	memNs := m.BytesPerEdge / m.MemBandwidthGBs
	ns := computeNs
	if memNs > ns {
		ns = memNs
	}
	return units.Time(ns * float64(units.Nanosecond))
}

// Simulate runs the workload on the CPU model: functional execution for
// the iteration count, analytic time/energy.
func Simulate(m Model, w core.Workload) (*energy.Report, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if w.Graph == nil || w.Graph.NumVertices == 0 {
		return nil, graph.ErrEmptyGraph
	}
	if w.Program == nil {
		return nil, fmt.Errorf("cpusim: workload has no program")
	}
	iters := w.Iterations
	var edges int64
	if iters <= 0 {
		fr, err := algo.Run(w.Program, w.Graph)
		if err != nil {
			return nil, err
		}
		iters = fr.Iterations
		edges = fr.EdgesProcessed
	} else {
		edges = int64(iters) * int64(w.Graph.NumEdges())
	}

	t := m.PerEdgeTime().Times(float64(edges))
	var bd energy.Breakdown
	bd.Add(energy.Logic, m.PackagePower.Over(t))
	bd.Add(energy.VertexMemoryOffChip, m.DRAMPower.Over(t))

	return &energy.Report{
		Config:         m.Name,
		Algorithm:      w.Program.Name(),
		Dataset:        w.DatasetName,
		Time:           t,
		Energy:         bd,
		EdgesProcessed: edges,
		Iterations:     iters,
	}, nil
}

package cluster

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
)

// Wire protocol: every message is one length-framed, CRC-checked frame.
//
//	offset size
//	0      4   magic "HYCL"
//	4      1   protocol version (ProtoVersion)
//	5      1   frame type
//	6      2   flags (big endian; must be zero in version 1)
//	8      4   payload length (big endian; ≤ MaxPayload)
//	12     4   CRC-32C over bytes [4, 12) plus the payload
//	16     …   payload
//
// Decoding is strict in the same spirit as graph.ReadBinary: a wrong
// magic, unknown version or type, nonzero flags, oversized length, or
// CRC mismatch is an error, never a guess — the coordinator drops the
// connection (reclaiming its leases) rather than acting on a frame it
// cannot vouch for, and allocation is bounded by MaxPayload so a forged
// length cannot balloon memory.
//
// Control payloads are canonical JSON decoded with unknown fields
// disallowed; the result frame is binary (three big-endian uint64
// headers, then the raw point payload) because its body is already a
// canonical document that must survive byte-exactly.
const (
	protoMagic = 0x4859434C // "HYCL"

	// ProtoVersion is the wire protocol version; bump on any breaking
	// frame or message change.
	ProtoVersion = 1

	// MaxPayload bounds a frame's payload; a header announcing more is
	// rejected before any allocation.
	MaxPayload = 16 << 20

	headerSize = 16
)

// Frame types.
const (
	fHello     = 1  // worker → coordinator: helloMsg
	fJob       = 2  // coordinator → worker: jobMsg
	fLeaseReq  = 3  // worker → coordinator: empty
	fLease     = 4  // coordinator → worker: leaseMsg
	fNoWork    = 5  // coordinator → worker: noWorkMsg
	fHeartbeat = 6  // worker → coordinator: hbMsg
	fAck       = 7  // coordinator → worker: ackMsg (heartbeat/result/done)
	fResult    = 8  // worker → coordinator: binary result
	fPointErr  = 9  // worker → coordinator: pointErrMsg
	fShardDone = 10 // worker → coordinator: hbMsg
	fBye       = 11 // worker → coordinator: empty
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

type helloMsg struct {
	Name string `json:"name"`
	Pid  int    `json:"pid"`
}

type jobMsg struct {
	Spec        json.RawMessage `json:"spec"`
	Points      int             `json:"points"`
	HeartbeatMS int64           `json:"heartbeat_ms"`
	LeaseTTLMS  int64           `json:"lease_ttl_ms"`
}

type leaseMsg struct {
	Shard int    `json:"shard"`
	Gen   uint64 `json:"gen"`
	Start int    `json:"start"`
	End   int    `json:"end"` // exclusive
	TTLMS int64  `json:"ttl_ms"`
}

type noWorkMsg struct {
	Done    bool  `json:"done"`
	RetryMS int64 `json:"retry_ms"`
}

type hbMsg struct {
	Shard     int    `json:"shard"`
	Gen       uint64 `json:"gen"`
	Completed int    `json:"completed"`
}

type ackMsg struct {
	OK     bool   `json:"ok"`
	Reason string `json:"reason,omitempty"`
}

type pointErrMsg struct {
	Shard int    `json:"shard"`
	Gen   uint64 `json:"gen"`
	Index int    `json:"index"`
	Err   string `json:"err"`
}

// writeFrame writes one frame.
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload) > MaxPayload {
		return fmt.Errorf("cluster: frame payload %d bytes exceeds limit %d", len(payload), MaxPayload)
	}
	var h [headerSize]byte
	binary.BigEndian.PutUint32(h[0:4], protoMagic)
	h[4] = ProtoVersion
	h[5] = typ
	binary.BigEndian.PutUint16(h[6:8], 0)
	binary.BigEndian.PutUint32(h[8:12], uint32(len(payload)))
	crc := crc32.Update(crc32.Checksum(h[4:12], crcTable), crcTable, payload)
	binary.BigEndian.PutUint32(h[12:16], crc)
	if _, err := w.Write(h[:]); err != nil {
		return err
	}
	if len(payload) == 0 {
		// Never issue a zero-byte write: on synchronous transports
		// (net.Pipe) it blocks for a reader rendezvous that a zero-byte
		// ReadFull on the far side never performs.
		return nil
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads and verifies one frame, returning its type and
// payload.
func readFrame(r io.Reader) (byte, []byte, error) {
	var h [headerSize]byte
	if _, err := io.ReadFull(r, h[:]); err != nil {
		return 0, nil, err
	}
	if binary.BigEndian.Uint32(h[0:4]) != protoMagic {
		return 0, nil, fmt.Errorf("cluster: bad frame magic %#x", binary.BigEndian.Uint32(h[0:4]))
	}
	if h[4] != ProtoVersion {
		return 0, nil, fmt.Errorf("cluster: protocol version %d, want %d", h[4], ProtoVersion)
	}
	typ := h[5]
	if typ < fHello || typ > fBye {
		return 0, nil, fmt.Errorf("cluster: unknown frame type %d", typ)
	}
	if flags := binary.BigEndian.Uint16(h[6:8]); flags != 0 {
		return 0, nil, fmt.Errorf("cluster: unknown frame flags %#x", flags)
	}
	n := binary.BigEndian.Uint32(h[8:12])
	if n > MaxPayload {
		return 0, nil, fmt.Errorf("cluster: frame payload %d bytes exceeds limit %d", n, MaxPayload)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("cluster: truncated frame payload: %w", err)
	}
	want := binary.BigEndian.Uint32(h[12:16])
	if got := crc32.Update(crc32.Checksum(h[4:12], crcTable), crcTable, payload); got != want {
		return 0, nil, fmt.Errorf("cluster: frame CRC mismatch (got %#x, want %#x)", got, want)
	}
	return typ, payload, nil
}

// encodeMsg renders a control message as canonical JSON.
func encodeMsg(v any) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("cluster: encoding message: %w", err)
	}
	return b, nil
}

// decodeMsg parses a control payload strictly: unknown fields — a
// message from an incompatible build — are an error.
func decodeMsg(payload []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(payload))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("cluster: decoding message: %w", err)
	}
	return nil
}

// resultHeaderSize prefixes a result frame: shard, gen, index.
const resultHeaderSize = 24

// encodeResultFrame builds the binary result payload.
func encodeResultFrame(shard int, gen uint64, index int, payload []byte) []byte {
	buf := make([]byte, resultHeaderSize+len(payload))
	binary.BigEndian.PutUint64(buf[0:8], uint64(shard))
	binary.BigEndian.PutUint64(buf[8:16], gen)
	binary.BigEndian.PutUint64(buf[16:24], uint64(index))
	copy(buf[resultHeaderSize:], payload)
	return buf
}

// decodeResultFrame splits a binary result payload.
func decodeResultFrame(b []byte) (shard int, gen uint64, index int, payload []byte, err error) {
	if len(b) < resultHeaderSize {
		return 0, 0, 0, nil, fmt.Errorf("cluster: result frame %d bytes, want ≥ %d", len(b), resultHeaderSize)
	}
	s := binary.BigEndian.Uint64(b[0:8])
	i := binary.BigEndian.Uint64(b[16:24])
	const maxIndex = 1 << 40 // far beyond any real sweep; rejects forged headers
	if s > maxIndex || i > maxIndex {
		return 0, 0, 0, nil, fmt.Errorf("cluster: result frame shard/index out of range")
	}
	return int(s), binary.BigEndian.Uint64(b[8:16]), int(i), b[resultHeaderSize:], nil
}

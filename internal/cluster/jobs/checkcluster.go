package jobs

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/cache"
	"repro/internal/check"
	"repro/internal/cluster"
)

// RunCheckCluster runs a conformance sweep through the cluster
// machinery with workers in-process worker connections (over net.Pipe),
// then merges the point documents into the same Summary a sequential
// check.Run would produce. It requires an explicit point count —
// distribution needs a dense index space, so duration-bounded sweeps
// stay sequential. With workers == 0 the coordinator's local executor
// runs the whole sweep itself: the degradation path, exercised
// deliberately.
func RunCheckCluster(opt check.Options, workers int) (*check.Summary, error) {
	if opt.Points <= 0 {
		return nil, errors.New("jobs: a distributed check sweep needs an explicit -points count")
	}
	if workers < 0 {
		return nil, fmt.Errorf("jobs: negative worker count %d", workers)
	}
	out := opt.Out
	if out == nil {
		out = io.Discard
	}
	sched := opt.Cache
	if sched == nil {
		sched = cache.New(cache.Config{})
	}
	spec, err := NewCheckSpec(opt.Seed, opt.Points, opt.PointTimeout)
	if err != nil {
		return nil, err
	}
	execOpt := ExecOptions{Cache: sched}
	job, err := Decode(spec, execOpt)
	if err != nil {
		return nil, err
	}
	coord, err := cluster.NewCoordinator(cluster.CoordinatorConfig{
		Spec:      spec,
		Points:    opt.Points,
		ShardSize: 1, // check points are heavyweight; lease them singly
		Validate:  job.Validate,
		Local:     job,
	})
	if err != nil {
		return nil, err
	}

	ctx := context.Background()
	runErr := make(chan error, 1)
	go func() { runErr <- coord.Run(ctx) }()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		cSide, wSide := net.Pipe()
		go coord.ServeConn(cSide)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cluster.RunWorker(ctx, wSide, cluster.WorkerConfig{
				Name:    fmt.Sprintf("inproc%d", i),
				Factory: Factory(execOpt),
			})
		}(w)
	}
	if err := <-runErr; err != nil {
		return nil, err
	}
	wg.Wait()

	sum := check.NewSummary()
	for i, payload := range coord.Results() {
		doc, err := check.DecodePointDoc(payload)
		if err != nil {
			return nil, fmt.Errorf("jobs: merged point %d: %w", i, err)
		}
		if err := sum.AddDoc(doc); err != nil {
			return nil, err
		}
		switch {
		case doc.TimedOut:
			fmt.Fprintf(out, "TIMEOUT seed=%d abandoned after %v\n", doc.Seed, opt.PointTimeout)
		case len(doc.Failures) > 0:
			for _, f := range doc.Failures {
				fmt.Fprintf(out, "FAIL %-22s %s\n     %s\n", f.Invariant, doc.Point, f.Err)
			}
		case opt.Verbose:
			fmt.Fprintf(out, "ok   %s\n", doc.Point)
		}
	}
	return sum, nil
}

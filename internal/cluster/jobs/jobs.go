// Package jobs binds the cluster machinery to the repo's two real
// sweeps: simulation sweeps (the hyve-sim cross product, one canonical
// hyve/result/v1 document per point) and conformance sweeps (hyve-check
// seeds, one hyve/checkpoint/v1 document per point). A Spec is the
// self-describing envelope the coordinator ships to workers at
// handshake; both sides build the identical Job from it, which is what
// makes a worker's Execute and the coordinator's Validate agree.
package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"repro/internal/cache"
	"repro/internal/check"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/graph"

	"repro/internal/algo"
)

// Spec is the wire envelope for a distributable sweep.
type Spec struct {
	Kind  string     `json:"kind"` // "sim" or "check"
	Sim   *SimSpec   `json:"sim,omitempty"`
	Check *CheckSpec `json:"check,omitempty"`
}

// SimSpec describes a simulation sweep: the same dataset-major cross
// product hyve-sim runs, point i mapping to
// (datasets[i/(A·C)], algos[(i/C)%A], configs[i%C]).
type SimSpec struct {
	Datasets []string `json:"datasets"`
	Algos    []string `json:"algos"`
	Configs  []string `json:"configs"`
	SRAMMB   int64    `json:"sram_mb"`
}

// CheckSpec describes a conformance sweep: seeds Seed … Seed+Points-1.
type CheckSpec struct {
	Seed           uint64 `json:"seed"`
	Points         int    `json:"points"`
	PointTimeoutMS int64  `json:"point_timeout_ms,omitempty"`
}

// ExecOptions carries the local execution environment a spec does not
// describe: the scheduler machines resolve through and where prepared
// datasets live.
type ExecOptions struct {
	// Cache is the scheduler points resolve through (nil = a private
	// in-memory scheduler per job).
	Cache *cache.Scheduler
	// PrepDir, when nonempty, loads datasets from hyve-prep containers
	// (missing datasets are generated, exactly as everywhere else).
	PrepDir string
}

// NewSimSpec encodes a simulation sweep spec, validating that every
// named dataset, algorithm, and configuration resolves — a coordinator
// should refuse an impossible sweep before leasing anything.
func NewSimSpec(datasets, algos, configs []string, sramMB int64) ([]byte, error) {
	if len(datasets) == 0 || len(algos) == 0 || len(configs) == 0 {
		return nil, errors.New("jobs: a sim sweep needs at least one dataset, algorithm, and configuration")
	}
	for _, d := range datasets {
		if _, err := graph.DatasetByName(d); err != nil {
			return nil, err
		}
	}
	for _, a := range algos {
		if _, err := algo.ByName(a); err != nil {
			return nil, err
		}
	}
	for _, c := range configs {
		if _, err := coreConfig(c); err != nil {
			return nil, err
		}
	}
	return encodeSpec(Spec{Kind: "sim", Sim: &SimSpec{
		Datasets: datasets, Algos: algos, Configs: configs, SRAMMB: sramMB,
	}})
}

// NewCheckSpec encodes a conformance sweep spec.
func NewCheckSpec(seed uint64, points int, pointTimeout time.Duration) ([]byte, error) {
	if points <= 0 {
		return nil, errors.New("jobs: a check sweep needs an explicit positive point count")
	}
	return encodeSpec(Spec{Kind: "check", Check: &CheckSpec{
		Seed: seed, Points: points, PointTimeoutMS: pointTimeout.Milliseconds(),
	}})
}

func encodeSpec(s Spec) ([]byte, error) {
	b, err := json.Marshal(s)
	if err != nil {
		return nil, fmt.Errorf("jobs: encoding spec: %w", err)
	}
	return b, nil
}

// Decode builds the Job a spec describes. Both sides of the wire call
// it: workers through Factory, coordinators directly (for Validate and
// local degradation).
func Decode(spec []byte, opt ExecOptions) (cluster.Job, error) {
	dec := json.NewDecoder(bytes.NewReader(spec))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("jobs: decoding spec: %w", err)
	}
	if opt.PrepDir != "" {
		graph.SetPreparedDir(opt.PrepDir)
	}
	sched := opt.Cache
	if sched == nil {
		sched = cache.New(cache.Config{})
	}
	switch s.Kind {
	case "sim":
		if s.Sim == nil {
			return nil, errors.New("jobs: sim spec missing sim body")
		}
		if len(s.Sim.Datasets) == 0 || len(s.Sim.Algos) == 0 || len(s.Sim.Configs) == 0 {
			return nil, errors.New("jobs: sim spec names no points")
		}
		return &simJob{spec: *s.Sim, sched: sched}, nil
	case "check":
		if s.Check == nil {
			return nil, errors.New("jobs: check spec missing check body")
		}
		if s.Check.Points <= 0 {
			return nil, errors.New("jobs: check spec names no points")
		}
		return &checkJob{spec: *s.Check, sched: sched}, nil
	default:
		return nil, fmt.Errorf("jobs: unknown spec kind %q", s.Kind)
	}
}

// Factory adapts Decode into the worker-side cluster.JobFactory.
func Factory(opt ExecOptions) cluster.JobFactory {
	return func(spec []byte) (cluster.Job, error) { return Decode(spec, opt) }
}

// coreConfig resolves a sweep configuration name. Only the five core
// configurations exist here: the analytic graphr/cpu baselines have no
// canonical result document, so they cannot ride a distributed sweep
// (exactly the hyve-sim -result rule).
func coreConfig(name string) (core.Config, error) {
	switch name {
	case "hyve":
		return core.HyVE(), nil
	case "hyve-opt":
		return core.HyVEOpt(), nil
	case "sd":
		return core.SRAMDRAM(), nil
	case "dram":
		return core.AccDRAM(), nil
	case "reram":
		return core.AccReRAM(), nil
	}
	return core.Config{}, fmt.Errorf("jobs: unknown config %q (a distributed sweep covers hyve, hyve-opt, sd, dram, reram)", name)
}

// simJob executes simulation points through the shared scheduler and
// returns canonical hyve/result/v1 documents.
type simJob struct {
	spec  SimSpec
	sched *cache.Scheduler
}

// Points implements cluster.Job.
func (j *simJob) Points() int {
	return len(j.spec.Datasets) * len(j.spec.Algos) * len(j.spec.Configs)
}

// pointAt maps a sweep index dataset-major, exactly as hyve-sim does —
// the merged artifact's order is hyve-sim's output order.
func (j *simJob) pointAt(i int) (dataset, algon, config string) {
	perDataset := len(j.spec.Algos) * len(j.spec.Configs)
	return j.spec.Datasets[i/perDataset],
		j.spec.Algos[i/len(j.spec.Configs)%len(j.spec.Algos)],
		j.spec.Configs[i%len(j.spec.Configs)]
}

// Execute implements cluster.Job.
func (j *simJob) Execute(ctx context.Context, i int) ([]byte, error) {
	if i < 0 || i >= j.Points() {
		return nil, fmt.Errorf("jobs: sim point %d outside sweep of %d", i, j.Points())
	}
	dn, an, cn := j.pointAt(i)
	d, err := graph.DatasetByName(dn)
	if err != nil {
		return nil, err
	}
	p, err := algo.ByName(an)
	if err != nil {
		return nil, err
	}
	wl, err := core.WorkloadFor(d, p)
	if err != nil {
		return nil, err
	}
	cfg, err := coreConfig(cn)
	if err != nil {
		return nil, err
	}
	if cfg.UseOnChipSRAM {
		cfg.SRAMBytes = j.spec.SRAMMB << 20
	}
	r, err := j.sched.SimulateCtx(ctx, cfg, wl)
	if err != nil {
		return nil, err
	}
	return cache.EncodeResult(r)
}

// Validate implements cluster.Job: the payload must be a well-formed
// canonical result document.
func (j *simJob) Validate(i int, payload []byte) error {
	if i < 0 || i >= j.Points() {
		return fmt.Errorf("jobs: sim point %d outside sweep of %d", i, j.Points())
	}
	_, err := cache.DecodeResult(payload)
	return err
}

// checkJob executes conformance points and returns canonical
// hyve/checkpoint/v1 documents.
type checkJob struct {
	spec  CheckSpec
	sched *cache.Scheduler
}

// Points implements cluster.Job.
func (j *checkJob) Points() int { return j.spec.Points }

// Execute implements cluster.Job.
func (j *checkJob) Execute(ctx context.Context, i int) ([]byte, error) {
	if i < 0 || i >= j.spec.Points {
		return nil, fmt.Errorf("jobs: check point %d outside sweep of %d", i, j.spec.Points)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return check.RunPointDoc(j.spec.Seed+uint64(i),
		time.Duration(j.spec.PointTimeoutMS)*time.Millisecond, j.sched)
}

// Validate implements cluster.Job: the payload must decode as a point
// doc carrying exactly the seed index i maps to.
func (j *checkJob) Validate(i int, payload []byte) error {
	if i < 0 || i >= j.spec.Points {
		return fmt.Errorf("jobs: check point %d outside sweep of %d", i, j.spec.Points)
	}
	doc, err := check.DecodePointDoc(payload)
	if err != nil {
		return err
	}
	if want := j.spec.Seed + uint64(i); doc.Seed != want {
		return fmt.Errorf("jobs: check point %d carries seed %d, want %d", i, doc.Seed, want)
	}
	return nil
}

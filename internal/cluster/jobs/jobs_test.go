package jobs

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"os"
	"os/exec"
	"testing"
	"time"

	"repro/internal/check"
	"repro/internal/cluster"
)

// TestMain doubles as the worker-subprocess entry point: when the
// gate env var is set, this test binary IS a hyve-worker (the standard
// helper-process pattern, so the SIGKILL chaos test needs no separate
// build step).
func TestMain(m *testing.M) {
	if addr := os.Getenv("HYVE_TEST_WORKER_CONNECT"); addr != "" {
		os.Exit(workerHelper(addr))
	}
	os.Exit(m.Run())
}

// workerHelper runs a real worker process against the coordinator at
// addr. HYVE_TEST_WORKER_CHAOS_MS, when set, stretches each point's
// reporting to hold leases open for the kill window.
func workerHelper(addr string) int {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "worker helper: dial:", err)
		return 1
	}
	var chaos time.Duration
	if ms := os.Getenv("HYVE_TEST_WORKER_CHAOS_MS"); ms != "" {
		var n int
		fmt.Sscanf(ms, "%d", &n)
		chaos = time.Duration(n) * time.Millisecond
	}
	done, err := cluster.RunWorker(context.Background(), conn, cluster.WorkerConfig{
		Name:       "helper",
		Factory:    Factory(ExecOptions{}),
		Parallel:   1,
		ChaosDelay: chaos,
	})
	if done {
		return 0
	}
	fmt.Fprintln(os.Stderr, "worker helper:", err)
	return 1
}

// simSpecSmall is the sweep every identity test runs: small enough for
// test time, wide enough to cross shard boundaries.
func simSpecSmall(t *testing.T) ([]byte, cluster.Job) {
	t.Helper()
	spec, err := NewSimSpec([]string{"YT"}, []string{"PR", "BFS"}, []string{"hyve-opt", "sd"}, 2)
	if err != nil {
		t.Fatalf("NewSimSpec: %v", err)
	}
	job, err := Decode(spec, ExecOptions{})
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	return spec, job
}

// sequentialBytes computes the single-process reference artifact.
func sequentialBytes(t *testing.T, job cluster.Job) [][]byte {
	t.Helper()
	out := make([][]byte, job.Points())
	for i := range out {
		p, err := job.Execute(context.Background(), i)
		if err != nil {
			t.Fatalf("sequential point %d: %v", i, err)
		}
		out[i] = p
	}
	return out
}

// TestClusterIdentity: two in-process workers over pipes, one yanked
// mid-sweep — the merged artifact is byte-identical to a sequential
// single-process run.
func TestClusterIdentity(t *testing.T) {
	spec, job := simSpecSmall(t)
	want := sequentialBytes(t, job)

	coord, err := cluster.NewCoordinator(cluster.CoordinatorConfig{
		Spec:      spec,
		Points:    job.Points(),
		ShardSize: 1,
		LeaseTTL:  time.Second,
		Validate:  job.Validate,
		Local:     job, // dead workers must never wedge the test
	})
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	runErr := make(chan error, 1)
	go func() { runErr <- coord.Run(ctx) }()

	// Worker 1 computes slowly (chaos delay) and is yanked mid-sweep.
	s1, c1 := net.Pipe()
	go coord.ServeConn(s1)
	go cluster.RunWorker(ctx, c1, cluster.WorkerConfig{
		Name: "doomed", Factory: Factory(ExecOptions{}), Parallel: 1,
		ChaosDelay: 200 * time.Millisecond,
	})
	// Worker 2 behaves.
	s2, c2 := net.Pipe()
	go coord.ServeConn(s2)
	go cluster.RunWorker(ctx, c2, cluster.WorkerConfig{
		Name: "steady", Factory: Factory(ExecOptions{}), Parallel: 1,
	})

	// Yank worker 1 once the sweep is moving.
	deadline := time.Now().Add(time.Minute)
	for coord.Stats().Granted == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	c1.Close()

	if err := <-runErr; err != nil {
		t.Fatalf("Run: %v", err)
	}
	got := coord.Results()
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("point %d differs from single-process run (%d vs %d bytes)", i, len(got[i]), len(want[i]))
		}
	}
}

// TestClusterSIGKILL is the full chaos article: a real worker
// subprocess is SIGKILLed while holding a lease, the lease is
// reclaimed, a second real subprocess (plus local degradation)
// finishes the sweep, and the artifact is still byte-identical to a
// single-process run.
func TestClusterSIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos test skipped in -short")
	}
	spec, job := simSpecSmall(t)
	want := sequentialBytes(t, job)

	// No local executor: the sweep can only finish through real worker
	// subprocesses, so the reclaim → reassign path MUST work.
	coord, err := cluster.NewCoordinator(cluster.CoordinatorConfig{
		Spec:      spec,
		Points:    job.Points(),
		ShardSize: 2,
		LeaseTTL:  time.Second,
		Validate:  job.Validate,
	})
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go coord.Serve(ln)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	runErr := make(chan error, 1)
	go func() { runErr <- coord.Run(ctx) }()

	// The victim: a real OS process, computing slowly enough to be
	// mid-lease when the signal lands.
	victim := exec.Command(os.Args[0])
	victim.Env = append(os.Environ(),
		"HYVE_TEST_WORKER_CONNECT="+ln.Addr().String(),
		"HYVE_TEST_WORKER_CHAOS_MS=400")
	victim.Stderr = os.Stderr
	if err := victim.Start(); err != nil {
		t.Fatalf("starting victim worker: %v", err)
	}
	defer victim.Process.Kill()

	// Wait until it holds a lease, then SIGKILL — no goodbye, no
	// connection teardown beyond the kernel's.
	deadline := time.Now().Add(time.Minute)
	for coord.Stats().Granted == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if coord.Stats().Granted == 0 {
		t.Fatal("victim worker never took a lease")
	}
	if err := victim.Process.Kill(); err != nil {
		t.Fatalf("SIGKILL: %v", err)
	}
	victim.Wait()

	// A second, well-behaved real subprocess finishes the job.
	helper := exec.Command(os.Args[0])
	helper.Env = append(os.Environ(), "HYVE_TEST_WORKER_CONNECT="+ln.Addr().String())
	helper.Stderr = os.Stderr
	if err := helper.Start(); err != nil {
		t.Fatalf("starting helper worker: %v", err)
	}
	defer helper.Process.Kill()

	if err := <-runErr; err != nil {
		t.Fatalf("Run: %v", err)
	}
	got := coord.Results()
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("point %d differs from single-process run after SIGKILL chaos", i)
		}
	}
	if st := coord.Stats(); st.Reclaimed == 0 {
		t.Fatalf("victim's lease never reclaimed: %+v", st)
	}
}

// TestCheckClusterMatchesSequential: the distributed conformance sweep
// renders the identical report a sequential check.Run produces.
func TestCheckClusterMatchesSequential(t *testing.T) {
	opt := check.Options{Seed: 7, Points: 2}

	seq, err := check.Run(opt)
	if err != nil {
		t.Fatalf("check.Run: %v", err)
	}
	dist, err := RunCheckCluster(opt, 2)
	if err != nil {
		t.Fatalf("RunCheckCluster: %v", err)
	}

	var seqBuf, distBuf bytes.Buffer
	seq.WriteReport(&seqBuf)
	dist.WriteReport(&distBuf)
	if !bytes.Equal(seqBuf.Bytes(), distBuf.Bytes()) {
		t.Fatalf("reports differ:\nsequential:\n%s\ndistributed:\n%s", seqBuf.Bytes(), distBuf.Bytes())
	}
}

// TestCheckClusterZeroWorkers: the degradation path — no workers at
// all — still completes a distributed check sweep.
func TestCheckClusterZeroWorkers(t *testing.T) {
	sum, err := RunCheckCluster(check.Options{Seed: 7, Points: 1}, 0)
	if err != nil {
		t.Fatalf("RunCheckCluster: %v", err)
	}
	if sum.Points != 1 {
		t.Fatalf("merged %d points, want 1", sum.Points)
	}
}

// TestSpecValidation: impossible sweeps are refused before any lease.
func TestSpecValidation(t *testing.T) {
	if _, err := NewSimSpec([]string{"YT"}, []string{"PR"}, []string{"graphr"}, 2); err == nil {
		t.Fatal("graphr has no canonical result document; spec must be refused")
	}
	if _, err := NewSimSpec([]string{"NOPE"}, []string{"PR"}, []string{"hyve"}, 2); err == nil {
		t.Fatal("unknown dataset accepted")
	}
	if _, err := NewCheckSpec(1, 0, 0); err == nil {
		t.Fatal("zero-point check spec accepted")
	}
	if _, err := Decode([]byte(`{"kind":"nope"}`), ExecOptions{}); err == nil {
		t.Fatal("unknown kind decoded")
	}
	if _, err := Decode([]byte(`{"kind":"sim","sim":{"datasets":["YT"],"algos":["PR"],"configs":["hyve"],"sram_mb":2},"extra":1}`), ExecOptions{}); err == nil {
		t.Fatal("unknown spec field decoded")
	}
}

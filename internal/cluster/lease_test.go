package cluster

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/parallel"
)

// payloadFor is the test job's deterministic point payload.
func payloadFor(i int) []byte { return []byte(fmt.Sprintf("point-%d\n", i)) }

// newTestCoord builds a FakeClock coordinator over points with the
// given shard size: valid payloads are exactly payloadFor(i).
func newTestCoord(t *testing.T, points, shardSize int, clk Clock) *Coordinator {
	t.Helper()
	c, err := NewCoordinator(CoordinatorConfig{
		Spec:      []byte(`{"kind":"test"}`),
		Points:    points,
		ShardSize: shardSize,
		LeaseTTL:  10 * time.Second,
		Heartbeat: 2 * time.Second,
		Backoff:   parallel.Backoff{Base: time.Second, Cap: 8 * time.Second, Jitter: -1},
		Clock:     clk,
		Validate: func(i int, payload []byte) error {
			if !bytes.Equal(payload, payloadFor(i)) {
				return fmt.Errorf("payload %q, want %q", payload, payloadFor(i))
			}
			return nil
		},
	})
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	return c
}

// deliver merges every point of a lease and closes it out.
func deliver(t *testing.T, c *Coordinator, worker string, lease leaseMsg) {
	t.Helper()
	for i := lease.Start; i < lease.End; i++ {
		if ack := c.result(worker, lease.Shard, lease.Gen, i, payloadFor(i)); !ack.OK {
			t.Fatalf("result %d refused: %s", i, ack.Reason)
		}
	}
	if ack := c.shardDone(worker, lease.Shard, lease.Gen); !ack.OK {
		t.Fatalf("shardDone refused: %s", ack.Reason)
	}
}

// TestLeaseLifecycle walks the full story on a fake clock: grant →
// heartbeat keeps it alive → heartbeats stop → expiry → reclaim →
// reassignment to another worker at a higher generation → the late
// reply from the dead worker's generation is discarded → the sweep
// still completes with every point merged exactly once.
func TestLeaseLifecycle(t *testing.T) {
	clk := NewFakeClock(time.Unix(1000, 0))
	c := newTestCoord(t, 4, 4, clk)

	lease, ok, done := c.grant("w1")
	if !ok || done {
		t.Fatalf("grant: ok=%v done=%v", ok, done)
	}
	if lease.Gen != 1 || lease.Start != 0 || lease.End != 4 {
		t.Fatalf("lease %+v", lease)
	}

	// Heartbeats inside the TTL keep the lease alive across 3 TTLs.
	for i := 0; i < 6; i++ {
		clk.Advance(5 * time.Second)
		c.reclaimExpired()
		if ack := c.heartbeat("w1", lease.Shard, lease.Gen); !ack.OK {
			t.Fatalf("heartbeat %d refused: %s", i, ack.Reason)
		}
	}

	// w1 merges one point, then goes silent past the TTL.
	if ack := c.result("w1", lease.Shard, lease.Gen, 0, payloadFor(0)); !ack.OK {
		t.Fatalf("result refused: %s", ack.Reason)
	}
	clk.Advance(11 * time.Second)
	c.reclaimExpired()
	st := c.Stats()
	if st.Expired != 1 || st.Reclaimed != 1 {
		t.Fatalf("after expiry: %+v", st)
	}
	if ack := c.heartbeat("w1", lease.Shard, lease.Gen); ack.OK {
		t.Fatal("heartbeat on an expired lease succeeded")
	}

	// The shard sits behind its reassignment backoff (1s for grant 1).
	if _, ok, _ := c.grant("w2"); ok {
		t.Fatal("granted a shard still inside its reassignment backoff")
	}
	clk.Advance(2 * time.Second)
	lease2, ok, _ := c.grant("w2")
	if !ok {
		t.Fatal("no grant after backoff elapsed")
	}
	if lease2.Gen != 2 || lease2.Shard != lease.Shard {
		t.Fatalf("reassigned lease %+v", lease2)
	}

	// w1's late replies carry the dead generation: discarded, even for
	// a point it already merged.
	if ack := c.result("w1", lease.Shard, lease.Gen, 1, payloadFor(1)); ack.OK {
		t.Fatal("stale-generation result merged")
	}
	if ack := c.result("w1", lease.Shard, lease.Gen, 0, payloadFor(0)); ack.OK {
		t.Fatal("stale-generation re-delivery accepted")
	}

	// w2 re-delivers the already-merged point 0 (same bytes: fine,
	// counted duplicate) and finishes the rest.
	deliver(t, c, "w2", lease2)
	select {
	case <-c.Done():
	default:
		t.Fatal("sweep not done after every point merged")
	}
	if err := c.Err(); err != nil {
		t.Fatalf("Err: %v", err)
	}
	st = c.Stats()
	if st.Merged != 4 || st.Duplicate < 3 || st.Reassigned != 1 || st.ShardsDone != 1 {
		t.Fatalf("final stats %+v", st)
	}
	for i, p := range c.Results() {
		if !bytes.Equal(p, payloadFor(i)) {
			t.Fatalf("merged point %d = %q", i, p)
		}
	}
}

// TestPoisonQuarantine: a shard that distinct workers keep corrupting
// is quarantined instead of wedging the sweep, and the sweep fails
// loudly.
func TestPoisonQuarantine(t *testing.T) {
	clk := NewFakeClock(time.Unix(1000, 0))
	c := newTestCoord(t, 2, 2, clk)

	for n, w := range []string{"w1", "w2", "w3"} {
		clk.Advance(time.Minute) // clear any reassignment backoff
		lease, ok, done := c.grant(w)
		if !ok || done {
			t.Fatalf("grant %d to %s: ok=%v done=%v", n, w, ok, done)
		}
		if ack := c.result(w, lease.Shard, lease.Gen, lease.Start, []byte("garbage")); ack.OK {
			t.Fatalf("corrupt payload from %s merged", w)
		}
	}
	select {
	case <-c.Done():
	default:
		t.Fatal("sweep not settled after the only shard poisoned")
	}
	if err := c.Err(); err == nil {
		t.Fatal("poisoned sweep reported success")
	}
	st := c.Stats()
	if st.ShardsPoisoned != 1 || st.Corrupt != 3 {
		t.Fatalf("stats %+v", st)
	}
	if _, _, done := c.grant("w4"); !done {
		t.Fatal("grant after settlement did not report done")
	}
}

// TestMaxShardLease: heartbeats alone cannot hold a shard forever — the
// lifetime cap reclaims a slow-loris lease that pings but never
// produces.
func TestMaxShardLease(t *testing.T) {
	clk := NewFakeClock(time.Unix(1000, 0))
	c := newTestCoord(t, 2, 2, clk) // MaxShardLease defaults to 10×TTL = 100s

	lease, ok, _ := c.grant("loris")
	if !ok {
		t.Fatal("no grant")
	}
	for i := 0; i < 19; i++ { // 95s of dutiful heartbeats, zero results
		clk.Advance(5 * time.Second)
		if ack := c.heartbeat("loris", lease.Shard, lease.Gen); !ack.OK {
			t.Fatalf("heartbeat %d refused early: %s", i, ack.Reason)
		}
	}
	clk.Advance(6 * time.Second) // 101s > cap
	if ack := c.heartbeat("loris", lease.Shard, lease.Gen); ack.OK {
		t.Fatal("heartbeat beyond the lifetime cap succeeded")
	}
	if st := c.Stats(); st.Reclaimed != 1 {
		t.Fatalf("stats %+v", st)
	}
}

// TestMergeConflict: a re-delivered point must match the merged bytes
// exactly; different bytes mean one of the two workers is corrupt, and
// the one still talking loses its lease.
func TestMergeConflict(t *testing.T) {
	clk := NewFakeClock(time.Unix(1000, 0))
	c := newTestCoord(t, 2, 2, clk)

	lease, _, _ := c.grant("w1")
	if ack := c.result("w1", lease.Shard, lease.Gen, 0, payloadFor(0)); !ack.OK {
		t.Fatalf("merge refused: %s", ack.Reason)
	}
	clk.Advance(11 * time.Second)
	c.reclaimExpired()
	clk.Advance(time.Minute)
	lease2, ok, _ := c.grant("w2")
	if !ok {
		t.Fatal("no regrant")
	}
	// Same bytes: consistent duplicate, acknowledged.
	if ack := c.result("w2", lease2.Shard, lease2.Gen, 0, payloadFor(0)); !ack.OK {
		t.Fatalf("consistent re-delivery refused: %s", ack.Reason)
	}
	// Different bytes for a merged point: lease lost.
	if ack := c.result("w2", lease2.Shard, lease2.Gen, 1, payloadFor(0)); ack.OK {
		t.Fatal("conflicting bytes accepted")
	}
	if st := c.Stats(); st.Corrupt != 1 || st.Merged != 1 {
		t.Fatalf("stats %+v", st)
	}
}

// testJob adapts payloadFor into a cluster.Job for local execution.
type testJob struct{ points int }

func (j testJob) Points() int { return j.points }
func (j testJob) Execute(_ context.Context, i int) ([]byte, error) {
	return payloadFor(i), nil
}
func (j testJob) Validate(i int, payload []byte) error {
	if !bytes.Equal(payload, payloadFor(i)) {
		return fmt.Errorf("payload %q", payload)
	}
	return nil
}

// TestZeroWorkerDegradation: a coordinator with no workers at all
// completes the sweep through its local executor.
func TestZeroWorkerDegradation(t *testing.T) {
	job := testJob{points: 9}
	c, err := NewCoordinator(CoordinatorConfig{
		Spec:      []byte(`{"kind":"test"}`),
		Points:    job.points,
		ShardSize: 2,
		LeaseTTL:  2 * time.Second,
		Validate:  job.Validate,
		Local:     job,
	})
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := c.Run(ctx); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, p := range c.Results() {
		if !bytes.Equal(p, payloadFor(i)) {
			t.Fatalf("point %d = %q", i, p)
		}
	}
	if st := c.Stats(); st.Merged != 9 || st.ShardsDone != 5 {
		t.Fatalf("stats %+v", st)
	}
}

package cluster

import (
	"bytes"
	"context"
	"net"
	"testing"
	"time"
)

// chaosCoord builds a RealClock coordinator with aggressive timings so
// fault paths resolve in test time: 300ms leases, 75ms heartbeats,
// 500ms idle timeout, local degradation on.
func chaosCoord(t *testing.T, points, shardSize int, local bool) *Coordinator {
	t.Helper()
	job := testJob{points: points}
	cfg := CoordinatorConfig{
		Spec:        []byte(`{"kind":"test"}`),
		Points:      points,
		ShardSize:   shardSize,
		LeaseTTL:    300 * time.Millisecond,
		Heartbeat:   75 * time.Millisecond,
		IdleTimeout: 500 * time.Millisecond,
		Validate:    job.Validate,
	}
	if local {
		cfg.Local = job
	}
	c, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	return c
}

// runCoord drives Run in the background and returns a wait func.
func runCoord(t *testing.T, c *Coordinator) func() error {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	errCh := make(chan error, 1)
	go func() { errCh <- c.Run(ctx) }()
	return func() error {
		defer cancel()
		return <-errCh
	}
}

func checkMerged(t *testing.T, c *Coordinator) {
	t.Helper()
	for i, p := range c.Results() {
		if !bytes.Equal(p, payloadFor(i)) {
			t.Fatalf("point %d merged as %q", i, p)
		}
	}
}

// rawClient speaks the wire protocol by hand — the chaos tests' way of
// being a worker that misbehaves in precisely chosen ways.
type rawClient struct {
	t    *testing.T
	conn net.Conn
}

func dialRaw(t *testing.T, c *Coordinator) *rawClient {
	t.Helper()
	server, client := net.Pipe()
	go c.ServeConn(server)
	return &rawClient{t: t, conn: client}
}

func (r *rawClient) call(typ byte, payload []byte) (byte, []byte, error) {
	if err := writeFrame(r.conn, typ, payload); err != nil {
		return 0, nil, err
	}
	return readFrame(r.conn)
}

// handshake completes hello → job and returns.
func (r *rawClient) handshake(name string) {
	r.t.Helper()
	hello, err := encodeMsg(helloMsg{Name: name, Pid: 1})
	if err != nil {
		r.t.Fatalf("encode hello: %v", err)
	}
	typ, _, err := r.call(fHello, hello)
	if err != nil || typ != fJob {
		r.t.Fatalf("handshake: type %d err %v", typ, err)
	}
}

// lease requests work, failing the test if none is granted.
func (r *rawClient) lease() leaseMsg {
	r.t.Helper()
	typ, payload, err := r.call(fLeaseReq, nil)
	if err != nil || typ != fLease {
		r.t.Fatalf("lease: type %d err %v", typ, err)
	}
	var l leaseMsg
	if err := decodeMsg(payload, &l); err != nil {
		r.t.Fatalf("lease decode: %v", err)
	}
	return l
}

// TestChaosGarbageFrames: a connection that sends garbage after taking
// a lease is dropped and its lease reclaimed; the sweep completes
// through the local executor with correct bytes.
func TestChaosGarbageFrames(t *testing.T) {
	c := chaosCoord(t, 6, 2, true)
	// Take the lease before Run starts the local pump, so the vandal
	// deterministically holds work when it misbehaves.
	r := dialRaw(t, c)
	r.handshake("vandal")
	r.lease()
	wait := runCoord(t, c)
	r.conn.Write(bytes.Repeat([]byte{0x5A}, 64)) // not a frame
	// The coordinator must hang up on us.
	r.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	var one [1]byte
	if _, err := r.conn.Read(one[:]); err == nil {
		t.Fatal("coordinator kept talking to a garbage-spewing worker")
	}

	if err := wait(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	checkMerged(t, c)
	if st := c.Stats(); st.Reclaimed == 0 {
		t.Fatalf("garbage worker's lease never reclaimed: %+v", st)
	}
}

// TestChaosStalledHeartbeat: a worker that takes a lease and goes
// silent loses it at the TTL; the sweep completes without it.
func TestChaosStalledHeartbeat(t *testing.T) {
	c := chaosCoord(t, 6, 2, true)
	r := dialRaw(t, c)
	r.handshake("sleeper")
	lease := r.lease()
	wait := runCoord(t, c)
	// Stall: no heartbeats, no results. The janitor reclaims at the
	// TTL, long before our connection's idle timeout would.
	if err := wait(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	checkMerged(t, c)
	st := c.Stats()
	if st.Expired == 0 {
		t.Fatalf("stalled lease never expired: %+v", st)
	}

	// The late reply from the reclaimed lease is discarded, not merged.
	ackT, payload, err := r.call(fResult, encodeResultFrame(lease.Shard, lease.Gen, lease.Start, []byte("late-garbage")))
	if err == nil && ackT == fAck {
		var ack ackMsg
		if decodeMsg(payload, &ack) == nil && ack.OK {
			t.Fatal("late reply from a reclaimed lease was accepted")
		}
	}
	checkMerged(t, c)
}

// TestChaosSlowLoris: a connection that trickles half a frame and stops
// is cut off by the read deadline; its lease comes back.
func TestChaosSlowLoris(t *testing.T) {
	c := chaosCoord(t, 4, 2, true)
	r := dialRaw(t, c)
	r.handshake("loris")
	r.lease()
	wait := runCoord(t, c)
	// Half a frame header, then silence.
	var buf bytes.Buffer
	if err := writeFrame(&buf, fLeaseReq, nil); err != nil {
		t.Fatalf("writeFrame: %v", err)
	}
	r.conn.Write(buf.Bytes()[:7])

	r.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	var one [1]byte
	if _, err := r.conn.Read(one[:]); err == nil {
		t.Fatal("coordinator kept a slow-loris connection open")
	}
	if err := wait(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	checkMerged(t, c)
}

// TestChaosDisconnectReclaim: a worker that vanishes mid-lease has the
// lease reclaimed immediately on disconnect (no TTL wait).
func TestChaosDisconnectReclaim(t *testing.T) {
	c := chaosCoord(t, 6, 3, true)
	r := dialRaw(t, c)
	r.handshake("quitter")
	r.lease()
	wait := runCoord(t, c)
	r.conn.Close()

	if err := wait(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	checkMerged(t, c)
	if st := c.Stats(); st.Reclaimed == 0 {
		t.Fatalf("disconnected worker's lease never reclaimed: %+v", st)
	}
}

// TestChaosRealWorkerRecovers: an actual RunWorker (not a raw client)
// alongside a misbehaving one — the real worker and the local executor
// between them always finish the sweep with exact bytes.
func TestChaosRealWorkerRecovers(t *testing.T) {
	c := chaosCoord(t, 12, 2, true)

	// The vandal grabs a lease first, then disconnects mid-hold.
	r := dialRaw(t, c)
	r.handshake("vandal")
	r.lease()
	wait := runCoord(t, c)

	// One well-behaved in-process worker.
	server, client := net.Pipe()
	go c.ServeConn(server)
	workerDone := make(chan error, 1)
	go func() {
		_, err := RunWorker(context.Background(), client, WorkerConfig{
			Name:    "good",
			Factory: func(spec []byte) (Job, error) { return testJob{points: 12}, nil },
		})
		workerDone <- err
	}()

	r.conn.Close()

	if err := wait(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	checkMerged(t, c)
	select {
	case <-workerDone:
	case <-time.After(10 * time.Second):
		t.Fatal("well-behaved worker never exited after sweep completion")
	}
}

package cluster

import "repro/internal/obs"

// Metric names the cluster reports through the process-global Recorder,
// exposed on /metrics as the hyve_cluster_* families hyve-top's cluster
// panel renders. Counters are monotone; the three gauges track the live
// shape of the cluster; "cluster.shard.attempts" is a histogram of how
// many grants each completed shard needed (1 = first worker finished
// it; more = the fault machinery earned its keep).
const (
	MetricLeasesGranted   = "cluster.leases.granted"
	MetricLeasesReclaimed = "cluster.leases.reclaimed"
	MetricLeasesExpired   = "cluster.leases.expired"
	MetricLeasesCompleted = "cluster.leases.completed"
	MetricShardsReassigned = "cluster.shards.reassigned"
	MetricShardsPoisoned   = "cluster.shards.poisoned"
	MetricResultsMerged    = "cluster.results.merged"
	MetricResultsDuplicate = "cluster.results.duplicate"
	MetricResultsCorrupt   = "cluster.results.corrupt"
	MetricWorkersJoined    = "cluster.workers.joined"
	MetricWorkersLost      = "cluster.workers.lost"
	MetricFramesBad        = "cluster.frames.bad"
	MetricWorkersLive   = "cluster.workers.live"   // gauge
	MetricShardsKnown   = "cluster.shards"         // gauge (not *.total: a gauge family must not look like a counter)
	MetricShardsLeased  = "cluster.shards.leased"  // gauge
	MetricShardAttempts = "cluster.shard.attempts" // histogram
	// MetricWorkerPoints is labeled per worker ("cluster.worker.points"
	// |worker=<name>): merged points attributed to the worker that
	// computed them, the per-worker points/s source in hyve-top.
	MetricWorkerPoints = "cluster.worker.points"
)

// RegisterMetrics announces every cluster counter to rec at value zero,
// so a freshly scraped /metrics shows the full hyve_cluster_* set
// before the first lease is granted.
func RegisterMetrics(rec obs.Recorder) {
	for _, name := range []string{
		MetricLeasesGranted, MetricLeasesReclaimed, MetricLeasesExpired,
		MetricLeasesCompleted, MetricShardsReassigned, MetricShardsPoisoned,
		MetricResultsMerged, MetricResultsDuplicate, MetricResultsCorrupt,
		MetricWorkersJoined, MetricWorkersLost, MetricFramesBad,
	} {
		rec.Count(name, 0)
	}
	rec.Gauge(MetricWorkersLive, 0)
	rec.Gauge(MetricShardsLeased, 0)
}

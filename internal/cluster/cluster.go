// Package cluster shards a sweep's point index space across processes
// and machines: a coordinator cuts [0, points) into fixed-size shards,
// leases shard ranges to workers over a length-framed CRC-checked TCP
// protocol, and merges the returned per-point payloads into one
// index-addressed artifact — byte-identical to a single-process run,
// because every payload is deterministic and the merge is by index.
//
// The coordinator never trusts a worker more than the local fault
// machinery trusts a goroutine. Every lease carries a TTL and a
// generation number; workers heartbeat to keep a lease alive, and a
// worker that misses heartbeats, disconnects, trickles bytes, or
// returns bytes that fail validation loses the lease: the shard goes
// back to pending behind a capped jittered exponential backoff and is
// reassigned — to another worker, or to the coordinator's own local
// executor when no workers are live (graceful degradation to pure
// local execution). A late reply from a reclaimed lease carries a
// stale generation and is discarded, never double-merged; a shard that
// distinct workers keep failing is quarantined as poisoned rather than
// wedging the sweep forever.
//
// The payload contract is deliberately minimal: a Job maps a point
// index to canonical bytes (the sim job returns cache.EncodeResult
// documents; the check job returns hyve/checkpoint/v1 docs), and
// Validate rejects bytes a correct worker could never produce. The
// coordinator additionally cross-checks re-delivered points byte for
// byte — two workers disagreeing on a deterministic point is corruption
// by definition.
package cluster

import (
	"context"
	"time"
)

// Job is one distributable sweep: a dense point index space where every
// index deterministically maps to a canonical byte payload. The same
// Job definition runs on workers (Execute) and guards the coordinator's
// merge (Validate).
type Job interface {
	// Points is the size of the index space.
	Points() int
	// Execute computes point i's canonical payload. It must be
	// deterministic: every correct worker returns the same bytes for
	// the same index, which is what makes merged artifacts
	// byte-identical to a single-process run.
	Execute(ctx context.Context, i int) ([]byte, error)
	// Validate rejects a payload a correct execution of point i could
	// not have produced (wrong schema, undecodable document). It runs
	// on the coordinator before a payload is merged.
	Validate(i int, payload []byte) error
}

// JobFactory builds a worker's Job from the spec bytes the coordinator
// ships at handshake (internal/cluster/jobs supplies the production
// factory).
type JobFactory func(spec []byte) (Job, error)

// Clock abstracts wall time for the lease machinery, so the grant →
// heartbeat → expiry → reclaim lifecycle is unit-testable without real
// waiting. Production uses RealClock.
type Clock interface {
	Now() time.Time
	After(d time.Duration) <-chan time.Time
}

// RealClock is the production Clock.
type RealClock struct{}

// Now implements Clock.
func (RealClock) Now() time.Time { return time.Now() }

// After implements Clock.
func (RealClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

package cluster

import (
	"sync"
	"time"
)

// FakeClock is a manually advanced Clock for tests: Now returns the
// set time, and After fires when Advance moves past the deadline. It
// exists so lease-lifecycle tests can walk grant → heartbeat → expiry →
// reclaim deterministically, without sleeping.
type FakeClock struct {
	mu      sync.Mutex
	now     time.Time
	waiters []fakeWaiter
}

type fakeWaiter struct {
	at time.Time
	ch chan time.Time
}

// NewFakeClock starts a fake clock at t.
func NewFakeClock(t time.Time) *FakeClock { return &FakeClock{now: t} }

// Now implements Clock.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// After implements Clock: the returned channel fires (once) when the
// clock has been advanced to or past now+d. A nonpositive d fires
// immediately.
func (c *FakeClock) After(d time.Duration) <-chan time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch := make(chan time.Time, 1)
	at := c.now.Add(d)
	if d <= 0 {
		ch <- c.now
		return ch
	}
	c.waiters = append(c.waiters, fakeWaiter{at: at, ch: ch})
	return ch
}

// Advance moves the clock forward by d and fires every waiter whose
// deadline has passed.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	var keep []fakeWaiter
	var fire []fakeWaiter
	for _, w := range c.waiters {
		if !w.at.After(c.now) {
			fire = append(fire, w)
		} else {
			keep = append(keep, w)
		}
	}
	c.waiters = keep
	now := c.now
	c.mu.Unlock()
	for _, w := range fire {
		w.ch <- now
	}
}

package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/parallel"
)

// WorkerConfig configures one worker connection.
type WorkerConfig struct {
	// Name identifies the worker in coordinator logs and per-worker
	// metrics ("" = "worker").
	Name string
	// Factory builds the Job from the coordinator's spec; required.
	Factory JobFactory
	// Parallel is how many points of a lease execute concurrently
	// (0 = GOMAXPROCS via parallel.ForEachCtx).
	Parallel int
	// Backoff paces lease re-polls while the coordinator has no
	// eligible work. Zero value = parallel package defaults.
	Backoff parallel.Backoff
	// ChaosDelay, when positive, sleeps this long after computing each
	// point before reporting it — a fault-injection knob that holds
	// leases open so harnesses can kill the worker mid-lease.
	ChaosDelay time.Duration
	// Logf receives progress lines (nil = silent).
	Logf func(format string, args ...any)
}

func (cfg WorkerConfig) logf(format string, args ...any) {
	if cfg.Logf != nil {
		cfg.Logf(format, args...)
	}
}

// rpc serializes request/response exchanges over the worker's single
// connection: the heartbeat goroutine and concurrent point goroutines
// all funnel through one write-frame-then-read-frame critical section,
// so responses can never interleave across requests.
type rpc struct {
	mu   sync.Mutex
	conn net.Conn
}

func (r *rpc) call(typ byte, payload []byte) (byte, []byte, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := writeFrame(r.conn, typ, payload); err != nil {
		return 0, nil, err
	}
	return readFrame(r.conn)
}

// callAck performs one request expecting an ack response. The returned
// error is a connection-level failure; a refusal arrives as ack.OK ==
// false.
func (r *rpc) callAck(typ byte, payload []byte) (ackMsg, error) {
	rtyp, body, err := r.call(typ, payload)
	if err != nil {
		return ackMsg{}, err
	}
	if rtyp != fAck {
		return ackMsg{}, fmt.Errorf("cluster: expected ack, got frame type %d", rtyp)
	}
	var ack ackMsg
	if err := decodeMsg(body, &ack); err != nil {
		return ackMsg{}, err
	}
	return ack, nil
}

func (r *rpc) callAckMsg(typ byte, req any) (ackMsg, error) {
	payload, err := encodeMsg(req)
	if err != nil {
		return ackMsg{}, err
	}
	return r.callAck(typ, payload)
}

// errLeaseLost marks a lease the coordinator refused mid-flight — the
// shard was reclaimed from under us (or our bytes were judged corrupt).
// The lease is abandoned; the connection is still good.
var errLeaseLost = errors.New("cluster: lease lost")

// RunWorker speaks the worker side of the protocol over conn:
// handshake, then lease → execute → stream results → shard done,
// repeating until the coordinator reports the sweep finished, ctx is
// cancelled, or the connection fails. done reports whether the sweep
// finished — the caller's cue to exit instead of redialling.
func RunWorker(ctx context.Context, conn net.Conn, cfg WorkerConfig) (done bool, err error) {
	if cfg.Factory == nil {
		return false, errors.New("cluster: worker needs a job factory")
	}
	defer conn.Close()
	r := &rpc{conn: conn}

	hello, err := encodeMsg(helloMsg{Name: cfg.Name, Pid: pid()})
	if err != nil {
		return false, err
	}
	typ, payload, err := r.call(fHello, hello)
	if err != nil {
		return false, fmt.Errorf("cluster: handshake failed: %w", err)
	}
	if typ != fJob {
		return false, fmt.Errorf("cluster: expected job frame, got type %d", typ)
	}
	var job jobMsg
	if err := decodeMsg(payload, &job); err != nil {
		return false, err
	}
	j, err := cfg.Factory([]byte(job.Spec))
	if err != nil {
		return false, fmt.Errorf("cluster: building job from spec: %w", err)
	}
	if j.Points() != job.Points {
		return false, fmt.Errorf("cluster: job disagrees on sweep size: local %d points, coordinator %d", j.Points(), job.Points)
	}
	heartbeat := time.Duration(job.HeartbeatMS) * time.Millisecond
	if heartbeat <= 0 {
		heartbeat = DefaultLeaseTTL / 4
	}

	idle := 0
	for {
		if err := ctx.Err(); err != nil {
			return false, err
		}
		typ, payload, err := r.call(fLeaseReq, nil)
		if err != nil {
			return false, err
		}
		switch typ {
		case fNoWork:
			var nw noWorkMsg
			if err := decodeMsg(payload, &nw); err != nil {
				return false, err
			}
			if nw.Done {
				writeFrame(r.conn, fBye, nil) // best effort; the sweep is over either way
				return true, nil
			}
			// Nothing eligible right now (all shards leased, or pending
			// behind reassignment backoff): poll again after a capped
			// jittered delay, never hotter than the coordinator's hint.
			delay := cfg.Backoff.Delay(idle)
			if hint := time.Duration(nw.RetryMS) * time.Millisecond; delay < hint {
				delay = hint
			}
			idle++
			select {
			case <-ctx.Done():
				return false, ctx.Err()
			case <-time.After(delay):
			}
		case fLease:
			idle = 0
			var lease leaseMsg
			if err := decodeMsg(payload, &lease); err != nil {
				return false, err
			}
			if lease.Start < 0 || lease.End > job.Points || lease.Start >= lease.End {
				return false, fmt.Errorf("cluster: lease range [%d, %d) outside sweep of %d points", lease.Start, lease.End, job.Points)
			}
			cfg.logf("cluster: leased shard %d gen %d [%d, %d)", lease.Shard, lease.Gen, lease.Start, lease.End)
			if err := runLease(ctx, r, j, lease, heartbeat, cfg); err != nil {
				if errors.Is(err, errLeaseLost) || errors.Is(err, errPointFailed) {
					// Lease-level failure on a healthy connection:
					// loop around and ask for fresh work.
					cfg.logf("cluster: lease on shard %d ended early: %v", lease.Shard, err)
					continue
				}
				return false, err
			}
		default:
			return false, fmt.Errorf("cluster: expected lease or no-work, got frame type %d", typ)
		}
	}
}

// errPointFailed marks a lease abandoned because one of its points
// failed to execute; the coordinator was told via fPointErr.
var errPointFailed = errors.New("cluster: point execution failed")

// runLease executes one lease: a heartbeat goroutine keeps it alive
// while the points execute (optionally in parallel) and stream back in
// canonical form. Any error that isn't errLeaseLost/errPointFailed is
// connection-fatal.
func runLease(ctx context.Context, r *rpc, j Job, lease leaseMsg, heartbeat time.Duration, cfg WorkerConfig) error {
	leaseCtx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)

	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		t := time.NewTicker(heartbeat)
		defer t.Stop()
		for {
			select {
			case <-leaseCtx.Done():
				return
			case <-t.C:
			}
			ack, err := r.callAckMsg(fHeartbeat, hbMsg{Shard: lease.Shard, Gen: lease.Gen})
			if err != nil {
				cancel(err)
				return
			}
			if !ack.OK {
				cancel(errLeaseLost)
				return
			}
		}
	}()

	n := lease.End - lease.Start
	runErr := parallel.ForEachCtx(leaseCtx, cfg.Parallel, n, parallel.Options{}, func(k int) error {
		i := lease.Start + k
		payload, execErr := j.Execute(leaseCtx, i)
		if execErr != nil {
			if leaseCtx.Err() != nil {
				return context.Cause(leaseCtx)
			}
			// Report the failure so the coordinator's poison accounting
			// sees it, then abandon the lease.
			if _, err := r.callAckMsg(fPointErr, pointErrMsg{Shard: lease.Shard, Gen: lease.Gen, Index: i, Err: execErr.Error()}); err != nil {
				cancel(err)
				return err
			}
			cancel(errPointFailed)
			return fmt.Errorf("%w: point %d: %v", errPointFailed, i, execErr)
		}
		if cfg.ChaosDelay > 0 {
			select {
			case <-leaseCtx.Done():
				return context.Cause(leaseCtx)
			case <-time.After(cfg.ChaosDelay):
			}
		}
		ack, err := r.callAck(fResult, encodeResultFrame(lease.Shard, lease.Gen, i, payload))
		if err != nil {
			cancel(err)
			return err
		}
		if !ack.OK {
			cancel(errLeaseLost)
			return errLeaseLost
		}
		return nil
	})
	cancel(nil)
	hbWG.Wait()
	if runErr != nil {
		if cause := context.Cause(ctx); cause != nil {
			return cause
		}
		return runErr
	}
	ack, err := r.callAckMsg(fShardDone, hbMsg{Shard: lease.Shard, Gen: lease.Gen, Completed: n})
	if err != nil {
		return err
	}
	if !ack.OK {
		return errLeaseLost
	}
	cfg.logf("cluster: shard %d done", lease.Shard)
	return nil
}

package cluster

import (
	"bytes"
	"encoding/binary"
	"io"
	"strings"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte{0xAB}, 4096)}
	for _, p := range payloads {
		var buf bytes.Buffer
		if err := writeFrame(&buf, fResult, p); err != nil {
			t.Fatalf("writeFrame: %v", err)
		}
		typ, got, err := readFrame(&buf)
		if err != nil {
			t.Fatalf("readFrame: %v", err)
		}
		if typ != fResult || !bytes.Equal(got, p) {
			t.Fatalf("round trip: type %d payload %d bytes, want type %d payload %d bytes", typ, len(got), fResult, len(p))
		}
	}
}

// TestFrameRejectsCorruption walks every corruption class the decoder
// must refuse: wrong magic, wrong version, unknown type, nonzero flags,
// oversized length, flipped payload bit (CRC), truncated payload.
func TestFrameRejectsCorruption(t *testing.T) {
	frame := func() []byte {
		var buf bytes.Buffer
		if err := writeFrame(&buf, fHeartbeat, []byte(`{"shard":1,"gen":2,"completed":0}`)); err != nil {
			t.Fatalf("writeFrame: %v", err)
		}
		return buf.Bytes()
	}
	cases := []struct {
		name    string
		corrupt func(b []byte) []byte
		wantErr string
	}{
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xFF; return b }, "magic"},
		{"bad version", func(b []byte) []byte { b[4] = ProtoVersion + 1; return b }, "version"},
		{"unknown type", func(b []byte) []byte {
			b[5] = fBye + 1
			return b
		}, "frame type"},
		{"nonzero flags", func(b []byte) []byte { b[6] = 0x80; return b }, "flags"},
		{"oversized length", func(b []byte) []byte {
			binary.BigEndian.PutUint32(b[8:12], MaxPayload+1)
			return b
		}, "exceeds limit"},
		{"flipped payload bit", func(b []byte) []byte { b[headerSize] ^= 0x01; return b }, "CRC"},
		{"flipped crc", func(b []byte) []byte { b[12] ^= 0x01; return b }, "CRC"},
		{"truncated payload", func(b []byte) []byte { return b[:len(b)-3] }, "truncated"},
		{"truncated header", func(b []byte) []byte { return b[:headerSize-2] }, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.corrupt(frame())
			_, _, err := readFrame(bytes.NewReader(b))
			if err == nil {
				t.Fatalf("decoded a corrupted frame")
			}
			if tc.wantErr != "" && !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestFrameGarbageStream(t *testing.T) {
	// Pure garbage: decoder must reject at the magic, not wander.
	_, _, err := readFrame(bytes.NewReader(bytes.Repeat([]byte{0x5A}, 64)))
	if err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("garbage stream decoded: %v", err)
	}
	// Empty stream: clean EOF, the no-more-frames signal.
	if _, _, err := readFrame(bytes.NewReader(nil)); err != io.EOF {
		t.Fatalf("empty stream: %v, want io.EOF", err)
	}
}

func TestDecodeMsgRejectsUnknownFields(t *testing.T) {
	var hb hbMsg
	if err := decodeMsg([]byte(`{"shard":1,"gen":2,"completed":0,"extra":true}`), &hb); err == nil {
		t.Fatal("decoded a message with unknown fields")
	}
	if err := decodeMsg([]byte(`{"shard":1,"gen":2,"completed":3}`), &hb); err != nil {
		t.Fatalf("decodeMsg: %v", err)
	}
	if hb.Shard != 1 || hb.Gen != 2 || hb.Completed != 3 {
		t.Fatalf("decoded %+v", hb)
	}
}

func TestResultFrameRoundTrip(t *testing.T) {
	payload := []byte(`{"schema":"hyve/result/v1"}`)
	b := encodeResultFrame(7, 3, 42, payload)
	shard, gen, index, got, err := decodeResultFrame(b)
	if err != nil {
		t.Fatalf("decodeResultFrame: %v", err)
	}
	if shard != 7 || gen != 3 || index != 42 || !bytes.Equal(got, payload) {
		t.Fatalf("decoded shard=%d gen=%d index=%d payload=%q", shard, gen, index, got)
	}
	if _, _, _, _, err := decodeResultFrame(b[:10]); err == nil {
		t.Fatal("decoded a short result frame")
	}
	var forged [resultHeaderSize]byte
	binary.BigEndian.PutUint64(forged[16:24], 1<<50) // absurd index
	if _, _, _, _, err := decodeResultFrame(forged[:]); err == nil {
		t.Fatal("decoded a result frame with a forged index")
	}
}
